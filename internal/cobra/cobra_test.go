package cobra

import (
	"encoding/xml"
	"errors"
	"testing"

	"cobra/internal/monet"
	"cobra/internal/rules"
)

func newCat(t *testing.T) *Catalog {
	t.Helper()
	return NewCatalog(monet.NewStore())
}

func TestVideoRegistry(t *testing.T) {
	c := newCat(t)
	if err := c.PutVideo(Video{Name: "german-gp", Duration: 5400, FPS: 10}); err != nil {
		t.Fatal(err)
	}
	v, err := c.Video("german-gp")
	if err != nil {
		t.Fatal(err)
	}
	if v.Duration != 5400 || v.FPS != 10 {
		t.Fatalf("video = %+v", v)
	}
	if _, err := c.Video("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Replacement keeps one entry.
	c.PutVideo(Video{Name: "german-gp", Duration: 6000, FPS: 10})
	v, _ = c.Video("german-gp")
	if v.Duration != 6000 {
		t.Fatalf("replaced duration = %v", v.Duration)
	}
	if got := c.Videos(); len(got) != 1 || got[0] != "german-gp" {
		t.Fatalf("videos = %v", got)
	}
	if err := c.PutVideo(Video{Name: "", Duration: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestFeatureRoundTrip(t *testing.T) {
	c := newCat(t)
	vals := []float64{0.1, 0.5, 0.9}
	if err := c.PutFeature(Feature{Video: "v", Name: "motion", SampleRate: 10, Values: vals}); err != nil {
		t.Fatal(err)
	}
	if !c.HasFeature("v", "motion") || c.HasFeature("v", "nope") {
		t.Fatal("HasFeature wrong")
	}
	f, err := c.Feature("v", "motion")
	if err != nil {
		t.Fatal(err)
	}
	if f.SampleRate != 10 || len(f.Values) != 3 || f.Values[1] != 0.5 {
		t.Fatalf("feature = %+v", f)
	}
	names := c.FeatureNames("v")
	if len(names) != 1 || names[0] != "motion" {
		t.Fatalf("names = %v", names)
	}
	if _, err := c.Feature("v", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	c := newCat(t)
	events := []Event{
		{Video: "v", Type: "highlight", Interval: Interval{Start: 10, End: 20}, Confidence: 0.9},
		{Video: "v", Type: "pitstop", Interval: Interval{Start: 30, End: 44}, Confidence: 1,
			Attrs: map[string]string{"driver": "BARRICHELLO"}},
		{Video: "v", Type: "highlight", Interval: Interval{Start: 50, End: 60}, Confidence: 0.7},
	}
	if err := c.PutEvents("v", events); err != nil {
		t.Fatal(err)
	}
	all := c.Events("v", "")
	if len(all) != 3 {
		t.Fatalf("all events = %d", len(all))
	}
	hl := c.Events("v", "highlight")
	if len(hl) != 2 || hl[0].Interval.Start != 10 {
		t.Fatalf("highlights = %v", hl)
	}
	ps := c.Events("v", "pitstop")
	if len(ps) != 1 || ps[0].Attr("driver") != "BARRICHELLO" {
		t.Fatalf("pitstops = %v", ps)
	}
	if !c.HasEvents("v", "highlight") || c.HasEvents("v", "nope") {
		t.Fatal("HasEvents wrong")
	}
	// Append preserves existing.
	c.PutEvents("v", []Event{{Type: "flyout", Interval: Interval{Start: 70, End: 80}, Confidence: 0.6}})
	if len(c.Events("v", "")) != 4 {
		t.Fatal("append lost events")
	}
}

func TestDropEvents(t *testing.T) {
	c := newCat(t)
	c.PutEvents("v", []Event{
		{Type: "a", Interval: Interval{Start: 1, End: 2}, Confidence: 1},
		{Type: "b", Interval: Interval{Start: 3, End: 4}, Confidence: 1},
	})
	c.DropEvents("v", "a")
	if c.HasEvents("v", "a") {
		t.Fatal("a not dropped")
	}
	if !c.HasEvents("v", "b") {
		t.Fatal("b lost")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	c := newCat(t)
	o := Object{Video: "v", Name: "SCHUMACHER", Class: "driver",
		Appearances: []Interval{{Start: 1, End: 5}, {Start: 10, End: 12}}}
	if err := c.PutObject(o); err != nil {
		t.Fatal(err)
	}
	got, err := c.Object("v", "SCHUMACHER")
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != "driver" || len(got.Appearances) != 2 || got.Appearances[1].Start != 10 {
		t.Fatalf("object = %+v", got)
	}
	if _, err := c.Object("v", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCatalogSnapshotPersistence(t *testing.T) {
	store := monet.NewStore()
	c := NewCatalog(store)
	c.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	c.PutFeature(Feature{Video: "v", Name: "motion", SampleRate: 10, Values: []float64{1, 2}})
	c.PutEvents("v", []Event{{Type: "x", Interval: Interval{Start: 1, End: 2}, Confidence: 0.5}})
	dir := t.TempDir()
	if err := store.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	store2 := monet.NewStore()
	if err := store2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	c2 := NewCatalog(store2)
	if _, err := c2.Video("v"); err != nil {
		t.Fatal(err)
	}
	if !c2.HasFeature("v", "motion") || !c2.HasEvents("v", "x") {
		t.Fatal("snapshot lost metadata")
	}
}

// fakeExtractor provides requirements by writing stub metadata.
type fakeExtractor struct {
	name    string
	reqs    []Requirement
	cost    float64
	quality float64
	calls   *int
	fail    bool
}

func (f fakeExtractor) Name() string            { return f.name }
func (f fakeExtractor) Provides() []Requirement { return f.reqs }
func (f fakeExtractor) Cost() float64           { return f.cost }
func (f fakeExtractor) Quality() float64        { return f.quality }
func (f fakeExtractor) Extract(cat *Catalog, video string) error {
	*f.calls++
	if f.fail {
		return errors.New("boom")
	}
	for _, r := range f.reqs {
		switch r.Kind {
		case NeedFeature:
			cat.PutFeature(Feature{Video: video, Name: r.Name, SampleRate: 10, Values: []float64{0}})
		case NeedEvents:
			cat.PutEvents(video, []Event{{Type: r.Name, Interval: Interval{Start: 0, End: 1}, Confidence: 1}})
		}
	}
	return nil
}

func TestPreprocessorEnsure(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	p := NewPreprocessor(c)
	calls := 0
	p.Register(fakeExtractor{name: "motion-engine", cost: 1, quality: 0.8, calls: &calls,
		reqs: []Requirement{{NeedFeature, "motion"}}})
	plan, err := p.Ensure("v", []Requirement{{NeedFeature, "motion"}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(plan.Ran) != 1 || plan.Ran[0] != "motion-engine" {
		t.Fatalf("plan = %+v calls=%d", plan, calls)
	}
	// Second Ensure finds it materialized: no extraction.
	plan, err = p.Ensure("v", []Requirement{{NeedFeature, "motion"}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(plan.Ran) != 0 || len(plan.Satisfied) != 1 {
		t.Fatalf("second plan = %+v calls=%d", plan, calls)
	}
}

func TestPreprocessorCostQualityChoice(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	p := NewPreprocessor(c)
	cheapCalls, fancyCalls := 0, 0
	req := Requirement{NeedEvents, "highlight"}
	p.Register(fakeExtractor{name: "cheap", cost: 1, quality: 0.6, calls: &cheapCalls, reqs: []Requirement{req}})
	p.Register(fakeExtractor{name: "fancy", cost: 10, quality: 0.95, calls: &fancyCalls, reqs: []Requirement{req}})

	// Low quality floor: the cheap engine wins.
	if _, err := p.Ensure("v", []Requirement{req}, 0.5); err != nil {
		t.Fatal(err)
	}
	if cheapCalls != 1 || fancyCalls != 0 {
		t.Fatalf("cheap=%d fancy=%d", cheapCalls, fancyCalls)
	}
	// High quality floor on a fresh catalog: the fancy engine wins.
	c2 := newCat(t)
	c2.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	p2 := NewPreprocessor(c2)
	cheapCalls, fancyCalls = 0, 0
	p2.Register(fakeExtractor{name: "cheap", cost: 1, quality: 0.6, calls: &cheapCalls, reqs: []Requirement{req}})
	p2.Register(fakeExtractor{name: "fancy", cost: 10, quality: 0.95, calls: &fancyCalls, reqs: []Requirement{req}})
	if _, err := p2.Ensure("v", []Requirement{req}, 0.9); err != nil {
		t.Fatal(err)
	}
	if cheapCalls != 0 || fancyCalls != 1 {
		t.Fatalf("cheap=%d fancy=%d", cheapCalls, fancyCalls)
	}
}

func TestPreprocessorBestEffortWhenUnderQuality(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	p := NewPreprocessor(c)
	calls := 0
	req := Requirement{NeedFeature, "motion"}
	p.Register(fakeExtractor{name: "only", cost: 1, quality: 0.4, calls: &calls, reqs: []Requirement{req}})
	if _, err := p.Ensure("v", []Requirement{req}, 0.9); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("best-effort engine not used")
	}
}

func TestPreprocessorErrors(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 100, FPS: 10})
	p := NewPreprocessor(c)
	if _, err := p.Ensure("nope", nil, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown video err = %v", err)
	}
	if _, err := p.Ensure("v", []Requirement{{NeedFeature, "motion"}}, 0); !errors.Is(err, ErrNoExtractor) {
		t.Fatalf("no extractor err = %v", err)
	}
	calls := 0
	p.Register(fakeExtractor{name: "bad", cost: 1, quality: 1, calls: &calls, fail: true,
		reqs: []Requirement{{NeedFeature, "motion"}}})
	if _, err := p.Ensure("v", []Requirement{{NeedFeature, "motion"}}, 0); err == nil {
		t.Fatal("failing extractor not reported")
	}
}

func TestRequirementString(t *testing.T) {
	if (Requirement{NeedFeature, "motion"}).String() != "feature:motion" {
		t.Fatal("feature string")
	}
	if (Requirement{NeedEvents, "highlight"}).String() != "events:highlight" {
		t.Fatal("events string")
	}
}

func TestObjectsByClass(t *testing.T) {
	c := newCat(t)
	c.PutObject(Object{Video: "v", Name: "SCHUMACHER", Class: "driver",
		Appearances: []Interval{{Start: 1, End: 2}}})
	c.PutObject(Object{Video: "v", Name: "FERRARI", Class: "team"})
	drivers := c.Objects("v", "driver")
	if len(drivers) != 1 || drivers[0].Name != "SCHUMACHER" {
		t.Fatalf("drivers = %v", drivers)
	}
	if len(c.Objects("v", "")) != 2 {
		t.Fatal("all-objects query wrong")
	}
	if !c.HasObjects("v", "driver") || c.HasObjects("v", "car") {
		t.Fatal("HasObjects wrong")
	}
	if c.HasObjects("other", "") {
		t.Fatal("objects leaked across videos")
	}
}

func TestApplyRules(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 300, FPS: 10})
	c.PutEvents("v", []Event{
		{Type: "highlight", Interval: Interval{Start: 100, End: 110}, Confidence: 0.9},
		{Type: "pitstop", Interval: Interval{Start: 104, End: 118}, Confidence: 1,
			Attrs: map[string]string{"driver": "RALF"}},
	})
	rule, err := rules.ParseRule(`
RULE pit-highlight:
  h: highlight CONF >= 0.5
  p: pitstop
  h OVERLAPS|DURING|CONTAINS p
  => pit-highlight COPY driver = p.driver
`)
	if err != nil {
		t.Fatal(err)
	}
	added, err := ApplyRules(c, "v", []rules.Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d", added)
	}
	got := c.Events("v", "pit-highlight")
	if len(got) != 1 || got[0].Attr("driver") != "RALF" {
		t.Fatalf("derived = %v", got)
	}
	// Re-applying derives nothing new (idempotent materialization).
	added, err = ApplyRules(c, "v", []rules.Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-apply added = %d", added)
	}
	if len(c.Events("v", "pit-highlight")) != 1 {
		t.Fatal("duplicate derived events stored")
	}
}

func TestExportMPEG7(t *testing.T) {
	c := newCat(t)
	c.PutVideo(Video{Name: "v", Duration: 300, FPS: 10})
	c.PutFeature(Feature{Video: "v", Name: "dust", SampleRate: 10, Values: []float64{0, 0.5, 1}})
	c.PutEvents("v", []Event{
		{Type: "highlight", Interval: Interval{Start: 10, End: 20}, Confidence: 0.9,
			Attrs: map[string]string{"driver": "RALF"}},
		{Type: "flyout", Interval: Interval{Start: 0, End: 0.1}, Confidence: 0}, // sentinel: excluded
	})
	c.PutObject(Object{Video: "v", Name: "RALF", Class: "driver",
		Appearances: []Interval{{Start: 5, End: 25}}})
	out, err := ExportMPEG7(c, "v")
	if err != nil {
		t.Fatal(err)
	}
	// The output parses back into the document type.
	var doc MPEG7Document
	xmlBody := out[len(xml.Header):]
	if err := xml.Unmarshal(xmlBody, &doc); err != nil {
		t.Fatalf("export does not parse: %v\n%s", err, out)
	}
	if doc.Video.Name != "v" || doc.Video.Duration != 300 {
		t.Fatalf("video = %+v", doc.Video)
	}
	if len(doc.Video.Features) != 1 || doc.Video.Features[0].Max != 1 {
		t.Fatalf("features = %+v", doc.Video.Features)
	}
	if len(doc.Events) != 1 || doc.Events[0].Type != "highlight" {
		t.Fatalf("events = %+v", doc.Events)
	}
	if len(doc.Events[0].Attributes) != 1 || doc.Events[0].Attributes[0].Value != "RALF" {
		t.Fatalf("attrs = %+v", doc.Events[0].Attributes)
	}
	if len(doc.Objects) != 1 || doc.Objects[0].Class != "driver" {
		t.Fatalf("objects = %+v", doc.Objects)
	}
	if _, err := ExportMPEG7(c, "nope"); err == nil {
		t.Fatal("unknown video accepted")
	}
}
