// Package cobra implements the core of the Cobra video DBMS (§2): the
// four-layer video data model (raw data, features, objects, events),
// the metadata catalog that stores content abstractions in the Monet
// kernel as BATs, and the query preprocessor that checks metadata
// availability, selects extraction methods by cost and quality, and
// invokes feature/semantic extraction engines dynamically at query
// time.
package cobra

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/rules"
)

// Video is a raw-layer entry: a handle to registered video material.
type Video struct {
	// Name is the unique video identifier (e.g. "german-gp").
	Name string
	// Duration in seconds.
	Duration float64
	// FPS is the frame sampling rate of the stored feature streams.
	FPS float64
}

// Feature is a feature-layer entry: one named time series.
type Feature struct {
	Video string
	Name  string
	// SampleRate in samples per second (the paper samples at 10 Hz).
	SampleRate float64
	Values     []float64
}

// Interval re-exports the temporal interval type used across layers.
type Interval = rules.Interval

// Object is an object-layer entity: a spatial entity (driver, car)
// with the intervals in which it appears.
type Object struct {
	Video       string
	Name        string
	Class       string
	Appearances []Interval
}

// Event is an event-layer entity: a temporal concept with confidence
// and attributes.
type Event struct {
	Video      string
	Type       string
	Interval   Interval
	Confidence float64
	Attrs      map[string]string
}

// Attr returns an attribute value ("" when absent).
func (e Event) Attr(key string) string { return e.Attrs[key] }

// Catalog stores all content abstractions in a Monet store, following
// the decomposed storage model: every logical collection becomes a set
// of BATs sharing head OIDs.
type Catalog struct {
	store *monet.Store
	// tctx, when non-nil, carries the trace span of the request this
	// catalog view belongs to (see Traced); store mutations route
	// through it so journal/WAL waits are attributed to the trace.
	tctx context.Context
}

// ErrNotFound is returned for missing catalog entries.
var ErrNotFound = errors.New("cobra: not found")

// NewCatalog returns a catalog over the given kernel store.
func NewCatalog(store *monet.Store) *Catalog {
	return &Catalog{store: store}
}

// Traced returns a view of the catalog bound to the given trace span:
// same store, but mutations and selects made through the view are
// attributed to the span's trace. The preprocessor hands extractors a
// traced view so materialization shows up in the query's span tree
// without changing the Extractor interface. A nil span returns the
// catalog unchanged.
func (c *Catalog) Traced(sp *obs.Span) *Catalog {
	if sp == nil {
		return c
	}
	return &Catalog{store: c.store, tctx: obs.ContextWithSpan(context.Background(), sp)}
}

// ctx returns the trace context of this catalog view (Background for
// an untraced catalog).
func (c *Catalog) ctx() context.Context {
	if c.tctx != nil {
		return c.tctx
	}
	return context.Background()
}

// Store exposes the underlying kernel store (for snapshots and MIL
// sessions).
func (c *Catalog) Store() *monet.Store { return c.store }

// BAT name layout.
func videoBAT() string                     { return "cobra/videos" }
func featureBAT(video, name string) string { return "cobra/feature/" + video + "/" + name }
func eventBAT(video, col string) string    { return "cobra/event/" + video + "/" + col }
func objectBAT(video, col string) string   { return "cobra/object/" + video + "/" + col }

// PutVideo registers (or replaces) a raw-layer video entry.
func (c *Catalog) PutVideo(v Video) error {
	if v.Name == "" || v.Duration <= 0 {
		return errors.New("cobra: video needs a name and positive duration")
	}
	b, err := c.store.Get(videoBAT())
	if err != nil {
		b = monet.NewBAT(monet.StrT, monet.StrT)
	}
	b = b.Filter(func(h, _ monet.Value) bool { return h.Str() != v.Name })
	b.MustInsert(monet.NewStr(v.Name), monet.NewStr(fmt.Sprintf("%g|%g", v.Duration, v.FPS)))
	c.store.PutCtx(c.ctx(), videoBAT(), b)
	return nil
}

// Video returns a registered video.
func (c *Catalog) Video(name string) (Video, error) {
	b, err := c.store.Get(videoBAT())
	if err != nil {
		return Video{}, fmt.Errorf("%w: video %q", ErrNotFound, name)
	}
	v, ok := b.Find(monet.NewStr(name))
	if !ok {
		return Video{}, fmt.Errorf("%w: video %q", ErrNotFound, name)
	}
	var dur, fps float64
	if _, err := fmt.Sscanf(v.Str(), "%g|%g", &dur, &fps); err != nil {
		return Video{}, fmt.Errorf("cobra: corrupt video entry %q: %w", name, err)
	}
	return Video{Name: name, Duration: dur, FPS: fps}, nil
}

// Videos lists registered video names.
func (c *Catalog) Videos() []string {
	b, err := c.store.Get(videoBAT())
	if err != nil {
		return nil
	}
	names := make([]string, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		names = append(names, b.Head(i).Str())
	}
	sort.Strings(names)
	return names
}

// PutFeature stores a feature time series as a [void, dbl] BAT plus a
// metadata entry.
func (c *Catalog) PutFeature(f Feature) error {
	if f.Video == "" || f.Name == "" || f.SampleRate <= 0 {
		return errors.New("cobra: feature needs video, name and sample rate")
	}
	b := monet.NewBATCap(monet.Void, monet.FloatT, len(f.Values))
	for _, v := range f.Values {
		b.MustInsert(monet.VoidValue(), monet.NewFloat(v))
	}
	c.store.PutCtx(c.ctx(), featureBAT(f.Video, f.Name), b)
	c.store.PutCtx(c.ctx(), featureBAT(f.Video, f.Name)+"/rate", rateBAT(f.SampleRate))
	return nil
}

func rateBAT(rate float64) *monet.BAT {
	b := monet.NewBAT(monet.Void, monet.FloatT)
	b.MustInsert(monet.VoidValue(), monet.NewFloat(rate))
	return b
}

// HasFeature reports whether the feature is materialized.
func (c *Catalog) HasFeature(video, name string) bool {
	return c.store.Has(featureBAT(video, name))
}

// Feature loads a stored feature series.
func (c *Catalog) Feature(video, name string) (Feature, error) {
	b, err := c.store.Get(featureBAT(video, name))
	if err != nil {
		return Feature{}, fmt.Errorf("%w: feature %s/%s", ErrNotFound, video, name)
	}
	rb, err := c.store.Get(featureBAT(video, name) + "/rate")
	if err != nil || rb.Len() == 0 {
		return Feature{}, fmt.Errorf("cobra: feature %s/%s missing sample rate", video, name)
	}
	f := Feature{Video: video, Name: name, SampleRate: rb.Tail(0).Float()}
	f.Values = make([]float64, b.Len())
	for i := 0; i < b.Len(); i++ {
		f.Values[i] = b.Tail(i).Float()
	}
	return f, nil
}

// FeatureMeta returns the sample rate and sample count of a
// materialized feature without loading its values.
func (c *Catalog) FeatureMeta(video, name string) (rate float64, n int, err error) {
	b, err := c.store.Get(featureBAT(video, name))
	if err != nil {
		return 0, 0, fmt.Errorf("%w: feature %s/%s", ErrNotFound, video, name)
	}
	rb, err := c.store.Get(featureBAT(video, name) + "/rate")
	if err != nil || rb.Len() == 0 {
		return 0, 0, fmt.Errorf("cobra: feature %s/%s missing sample rate", video, name)
	}
	return rb.Tail(0).Float(), b.Len(), nil
}

// FeatureSelect returns the ascending sample positions whose value
// lies in [lo, hi], routed through the kernel's adaptive access paths
// (zone map, cracker or scan, chosen by the store's cost gate), along
// with the access path taken.
func (c *Catalog) FeatureSelect(video, name string, lo, hi float64) ([]int, *monet.AccessInfo, error) {
	return c.FeatureSelectCtx(c.ctx(), video, name, lo, hi)
}

// FeatureSelectCtx is FeatureSelect under a trace context: the kernel
// select records its access-path decision and morsel spans into the
// trace carried by ctx.
func (c *Catalog) FeatureSelectCtx(ctx context.Context, video, name string, lo, hi float64) ([]int, *monet.AccessInfo, error) {
	return c.store.SelectPositionsCtx(ctx, featureBAT(video, name), monet.NewFloat(lo), monet.NewFloat(hi))
}

// FeatureRunsCtx range-selects a feature series through the kernel's
// fused pipeline and returns the qualifying sample positions as
// maximal runs instead of a position slice: on the fused path no
// intermediate position list is materialized at all. The FusedInfo
// reports whether fusion ran and the access path taken.
func (c *Catalog) FeatureRunsCtx(ctx context.Context, video, name string, lo, hi float64) ([]monet.Run, *monet.FusedInfo, error) {
	return c.store.SelectRunsCtx(ctx, featureBAT(video, name), monet.NewFloat(lo), monet.NewFloat(hi))
}

// FeatureBATName is the kernel BAT name holding a feature series;
// EXPLAIN probes it for access plans.
func FeatureBATName(video, name string) string { return featureBAT(video, name) }

// FeatureNames lists materialized features of a video.
func (c *Catalog) FeatureNames(video string) []string {
	prefix := "cobra/feature/" + video + "/"
	var names []string
	for _, n := range c.store.Names() {
		if strings.HasPrefix(n, prefix) && !strings.HasSuffix(n, "/rate") {
			names = append(names, strings.TrimPrefix(n, prefix))
		}
	}
	return names
}

// encodeAttrs flattens an attribute map deterministically.
func encodeAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, ";")
}

func decodeAttrs(s string) map[string]string {
	if s == "" {
		return nil
	}
	attrs := map[string]string{}
	for _, part := range strings.Split(s, ";") {
		if kv := strings.SplitN(part, "=", 2); len(kv) == 2 {
			attrs[kv[0]] = kv[1]
		}
	}
	return attrs
}

// PutEvents appends event-layer entities for a video. Events are
// decomposed into five parallel BATs sharing head OIDs.
func (c *Catalog) PutEvents(video string, events []Event) error {
	if video == "" {
		return errors.New("cobra: events need a video")
	}
	cols := map[string]*monet.BAT{}
	for _, col := range []string{"type", "start", "end", "conf", "attrs"} {
		b, err := c.store.Get(eventBAT(video, col))
		if err != nil {
			t := monet.FloatT
			if col == "type" || col == "attrs" {
				t = monet.StrT
			}
			b = monet.NewBAT(monet.OIDT, t)
		}
		cols[col] = b
	}
	next := monet.OID(cols["type"].Len())
	for _, e := range events {
		oid := monet.NewOID(next)
		next++
		cols["type"].MustInsert(oid, monet.NewStr(e.Type))
		cols["start"].MustInsert(oid, monet.NewFloat(e.Interval.Start))
		cols["end"].MustInsert(oid, monet.NewFloat(e.Interval.End))
		cols["conf"].MustInsert(oid, monet.NewFloat(e.Confidence))
		cols["attrs"].MustInsert(oid, monet.NewStr(encodeAttrs(e.Attrs)))
	}
	for col, b := range cols {
		c.store.PutCtx(c.ctx(), eventBAT(video, col), b)
	}
	return nil
}

// Events returns a video's events, optionally filtered by type
// ("" = all), ordered by start time (ties keep append order, so the
// incremental tail reader reproduces this ordering exactly).
func (c *Catalog) Events(video, typ string) []Event {
	out, _ := c.EventsSince(video, typ, 0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// HasEvents reports whether any events of the given type are
// materialized for the video.
func (c *Catalog) HasEvents(video, typ string) bool {
	return len(c.Events(video, typ)) > 0
}

// DropEvents removes all events of the given type for a video.
func (c *Catalog) DropEvents(video, typ string) {
	types, err := c.store.Get(eventBAT(video, "type"))
	if err != nil {
		return
	}
	keep := make([]int, 0, types.Len())
	for i := 0; i < types.Len(); i++ {
		if types.Tail(i).Str() != typ {
			keep = append(keep, i)
		}
	}
	evs := c.Events(video, "")
	var kept []Event
	for _, e := range evs {
		if e.Type != typ {
			kept = append(kept, e)
		}
	}
	for _, col := range []string{"type", "start", "end", "conf", "attrs"} {
		c.store.DropCtx(c.ctx(), eventBAT(video, col))
	}
	if len(kept) > 0 {
		_ = c.PutEvents(video, kept)
	}
}

// PutObject stores an object-layer entity.
func (c *Catalog) PutObject(o Object) error {
	if o.Video == "" || o.Name == "" {
		return errors.New("cobra: object needs video and name")
	}
	b, err := c.store.Get(objectBAT(o.Video, "appearances"))
	if err != nil {
		b = monet.NewBAT(monet.StrT, monet.StrT)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|", o.Class)
	for i, iv := range o.Appearances {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g:%g", iv.Start, iv.End)
	}
	b = b.Filter(func(h, _ monet.Value) bool { return h.Str() != o.Name })
	b.MustInsert(monet.NewStr(o.Name), monet.NewStr(sb.String()))
	c.store.PutCtx(c.ctx(), objectBAT(o.Video, "appearances"), b)
	return nil
}

// Objects returns the video's object-layer entities of a class
// ("" = all).
func (c *Catalog) Objects(video, class string) []Object {
	b, err := c.store.Get(objectBAT(video, "appearances"))
	if err != nil {
		return nil
	}
	var out []Object
	for i := 0; i < b.Len(); i++ {
		o, err := c.Object(video, b.Head(i).Str())
		if err != nil {
			continue
		}
		if class == "" || o.Class == class {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HasObjects reports whether any objects of the class are
// materialized for the video.
func (c *Catalog) HasObjects(video, class string) bool {
	return len(c.Objects(video, class)) > 0
}

// Object returns an object-layer entity.
func (c *Catalog) Object(video, name string) (Object, error) {
	b, err := c.store.Get(objectBAT(video, "appearances"))
	if err != nil {
		return Object{}, fmt.Errorf("%w: object %s/%s", ErrNotFound, video, name)
	}
	v, ok := b.Find(monet.NewStr(name))
	if !ok {
		return Object{}, fmt.Errorf("%w: object %s/%s", ErrNotFound, video, name)
	}
	parts := strings.SplitN(v.Str(), "|", 2)
	o := Object{Video: video, Name: name, Class: parts[0]}
	if len(parts) == 2 && parts[1] != "" {
		for _, ivs := range strings.Split(parts[1], ",") {
			var iv Interval
			if _, err := fmt.Sscanf(ivs, "%g:%g", &iv.Start, &iv.End); err == nil {
				o.Appearances = append(o.Appearances, iv)
			}
		}
	}
	return o, nil
}
