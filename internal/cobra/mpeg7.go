package cobra

import (
	"encoding/xml"
	"fmt"
	"sort"
)

// The paper aligns the Cobra model with MPEG-7's four content layers.
// ExportMPEG7 serializes a video's materialized metadata as a
// simplified MPEG-7-style description document: the raw-layer handle,
// feature-layer descriptors (summaries, not full streams), and the
// object and event layers with their time intervals.

// MPEG7Document is the exported description root.
type MPEG7Document struct {
	XMLName xml.Name      `xml:"Mpeg7"`
	Video   MPEG7Video    `xml:"Description>MultimediaContent>Video"`
	Objects []MPEG7Object `xml:"Description>Semantics>Object,omitempty"`
	Events  []MPEG7Event  `xml:"Description>Semantics>Event,omitempty"`
}

// MPEG7Video is the raw-layer entry with feature descriptors.
type MPEG7Video struct {
	Name     string            `xml:"id,attr"`
	Duration float64           `xml:"MediaTime>MediaDuration"`
	FPS      float64           `xml:"MediaTime>MediaTimeUnit"`
	Features []MPEG7Descriptor `xml:"VisualDescriptor,omitempty"`
}

// MPEG7Descriptor summarizes one feature stream.
type MPEG7Descriptor struct {
	Name    string  `xml:"name,attr"`
	Samples int     `xml:"Samples"`
	Rate    float64 `xml:"SampleRate"`
	Mean    float64 `xml:"Mean"`
	Max     float64 `xml:"Max"`
}

// MPEG7Object is an object-layer entity.
type MPEG7Object struct {
	Name        string          `xml:"id,attr"`
	Class       string          `xml:"class,attr"`
	Appearances []MPEG7Interval `xml:"Appearance"`
}

// MPEG7Event is an event-layer entity.
type MPEG7Event struct {
	Type       string          `xml:"type,attr"`
	Confidence float64         `xml:"confidence,attr"`
	Interval   MPEG7Interval   `xml:"MediaTime"`
	Attributes []MPEG7Relation `xml:"Relation,omitempty"`
}

// MPEG7Interval is a media time interval in seconds.
type MPEG7Interval struct {
	Start float64 `xml:"MediaTimePoint"`
	End   float64 `xml:"MediaTimeEnd"`
}

// MPEG7Relation carries an event attribute.
type MPEG7Relation struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// ExportMPEG7 builds and serializes the description document for a
// video's materialized metadata.
func ExportMPEG7(cat *Catalog, video string) ([]byte, error) {
	v, err := cat.Video(video)
	if err != nil {
		return nil, err
	}
	doc := MPEG7Document{
		Video: MPEG7Video{Name: v.Name, Duration: v.Duration, FPS: v.FPS},
	}
	names := cat.FeatureNames(video)
	sort.Strings(names)
	for _, name := range names {
		f, err := cat.Feature(video, name)
		if err != nil {
			continue
		}
		d := MPEG7Descriptor{Name: name, Samples: len(f.Values), Rate: f.SampleRate}
		for _, x := range f.Values {
			d.Mean += x
			if x > d.Max {
				d.Max = x
			}
		}
		if len(f.Values) > 0 {
			d.Mean /= float64(len(f.Values))
		}
		doc.Video.Features = append(doc.Video.Features, d)
	}
	for _, o := range cat.Objects(video, "") {
		mo := MPEG7Object{Name: o.Name, Class: o.Class}
		for _, iv := range o.Appearances {
			mo.Appearances = append(mo.Appearances, MPEG7Interval{Start: iv.Start, End: iv.End})
		}
		doc.Objects = append(doc.Objects, mo)
	}
	for _, e := range cat.Events(video, "") {
		if e.Confidence <= 0 {
			continue // availability sentinels are internal
		}
		me := MPEG7Event{
			Type:       e.Type,
			Confidence: e.Confidence,
			Interval:   MPEG7Interval{Start: e.Interval.Start, End: e.Interval.End},
		}
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			me.Attributes = append(me.Attributes, MPEG7Relation{Name: k, Value: e.Attrs[k]})
		}
		doc.Events = append(doc.Events, me)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("cobra: mpeg7 export: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}
