package cobra

import (
	"cobra/internal/rules"
)

// ApplyRules runs a rule set over a video's materialized events and
// stores the derived events back into the catalog — the §5.6 flow
// where a user defines a new compound event and the system materializes
// it, speeding up future retrieval. It returns the number of events
// added.
func ApplyRules(cat *Catalog, video string, rs []rules.Rule) (int, error) {
	en, err := rules.NewEngine(rs...)
	if err != nil {
		return 0, err
	}
	store := rules.NewStore()
	for _, e := range cat.Events(video, "") {
		store.Assert(rules.Event{
			Type:       e.Type,
			Interval:   e.Interval,
			Confidence: e.Confidence,
			Attrs:      e.Attrs,
		})
	}
	added := en.Run(store)
	if added == 0 {
		return 0, nil
	}
	produced := map[string]bool{}
	for _, r := range rs {
		produced[r.Produces] = true
	}
	var out []Event
	existing := map[string]bool{}
	for _, e := range cat.Events(video, "") {
		existing[eventKey(e)] = true
	}
	for typ := range produced {
		for _, e := range store.Events(typ) {
			ce := Event{Video: video, Type: e.Type, Interval: e.Interval,
				Confidence: e.Confidence, Attrs: e.Attrs}
			if !existing[eventKey(ce)] {
				out = append(out, ce)
			}
		}
	}
	if len(out) == 0 {
		return 0, nil
	}
	if err := cat.PutEvents(video, out); err != nil {
		return 0, err
	}
	return len(out), nil
}

func eventKey(e Event) string {
	return e.Type + "|" + encodeAttrs(e.Attrs) +
		"|" + fmtFloat(e.Interval.Start) + "|" + fmtFloat(e.Interval.End)
}

func fmtFloat(v float64) string {
	// Fixed-point key formatting keeps dedupe stable across runs.
	const scale = 10000
	n := int64(v * scale)
	buf := make([]byte, 0, 20)
	if n < 0 {
		buf = append(buf, '-')
		n = -n
	}
	var digits [20]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(append(buf, digits[i:]...))
}
