package cobra

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"cobra/internal/obs"
)

// Preprocessor metrics: how often dynamic extraction runs and how long
// the engines take — the observable face of the paper's cost/quality
// method selection.
var (
	cEnsures     = obs.C("preprocess.ensures")
	cExtractions = obs.C("preprocess.extractions")
	hExtractLat  = obs.H("preprocess.extract.latency")
)

// RequirementKind distinguishes feature-layer from event-layer needs.
type RequirementKind uint8

// Requirement kinds.
const (
	NeedFeature RequirementKind = iota
	NeedEvents
	// NeedObjects requires object-layer entities of a class (e.g.
	// "driver") to be materialized.
	NeedObjects
)

// Requirement names a piece of metadata a query depends on.
type Requirement struct {
	Kind RequirementKind
	Name string
}

// String renders a requirement for diagnostics.
func (r Requirement) String() string {
	switch r.Kind {
	case NeedFeature:
		return "feature:" + r.Name
	case NeedObjects:
		return "objects:" + r.Name
	default:
		return "events:" + r.Name
	}
}

// Extractor is a feature/semantic extraction engine the preprocessor
// can invoke dynamically (§2): a video-processing routine, an HMM or
// DBN engine, or a rule run.
type Extractor interface {
	// Name identifies the engine.
	Name() string
	// Provides lists the requirements the engine can materialize.
	Provides() []Requirement
	// Cost estimates relative extraction cost (higher = slower).
	Cost() float64
	// Quality scores the expected result quality in [0, 1].
	Quality() float64
	// Extract materializes the engine's outputs for the video into the
	// catalog.
	Extract(cat *Catalog, video string) error
}

// Preprocessor is the query preprocessor: it checks metadata
// availability and, when something is missing, picks the cheapest
// registered engine of sufficient quality and runs it (§2's high-level
// optimisation during semantic extraction).
type Preprocessor struct {
	cat        *Catalog
	extractors []Extractor
}

// ErrNoExtractor is returned when a requirement cannot be satisfied.
var ErrNoExtractor = errors.New("cobra: no extractor provides requirement")

// NewPreprocessor returns a preprocessor over the catalog.
func NewPreprocessor(cat *Catalog) *Preprocessor {
	return &Preprocessor{cat: cat}
}

// Register adds an extraction engine.
func (p *Preprocessor) Register(e Extractor) {
	p.extractors = append(p.extractors, e)
}

// Catalog returns the underlying catalog.
func (p *Preprocessor) Catalog() *Catalog { return p.cat }

// available reports whether a requirement is already materialized.
func (p *Preprocessor) available(video string, r Requirement) bool {
	switch r.Kind {
	case NeedFeature:
		return p.cat.HasFeature(video, r.Name)
	case NeedEvents:
		return p.cat.HasEvents(video, r.Name)
	case NeedObjects:
		return p.cat.HasObjects(video, r.Name)
	}
	return false
}

// Plan describes what Ensure decided to run.
type Plan struct {
	// Satisfied lists requirements that were already materialized.
	Satisfied []Requirement
	// Ran lists extractor names invoked, in order.
	Ran []string
}

// Ensure makes every requirement available for the video, invoking
// extraction engines as needed. Among engines providing a missing
// requirement, those meeting minQuality are preferred and the cheapest
// one wins; if none meets it, the highest-quality engine is used (best
// effort, as the paper's cost/quality trade-off).
func (p *Preprocessor) Ensure(video string, reqs []Requirement, minQuality float64) (*Plan, error) {
	return p.EnsureTraced(video, reqs, minQuality, nil)
}

// EnsureTraced is Ensure with an optional (nil-safe) parent trace
// span: each method selection becomes a "select:<req>" child recording
// the chosen engine and its cost/quality, and each engine invocation a
// timed "extract:<engine>" child.
func (p *Preprocessor) EnsureTraced(video string, reqs []Requirement, minQuality float64, span *obs.Span) (*Plan, error) {
	cEnsures.Inc()
	if _, err := p.cat.Video(video); err != nil {
		return nil, err
	}
	plan := &Plan{}
	if p.cat.IsLive(video) {
		// A live stream's metadata is materialized continuously by the
		// ingest feed; running an extractor mid-broadcast would consume
		// raw material that has not aired yet. Queries evaluate against
		// whatever the feed has appended so far.
		plan.Satisfied = append(plan.Satisfied, reqs...)
		span.SetAttr("live", "feed-materialized")
		return plan, nil
	}
	ran := map[string]bool{}
	for _, r := range reqs {
		if p.available(video, r) {
			plan.Satisfied = append(plan.Satisfied, r)
			continue
		}
		sel := span.StartChild("select:" + r.String())
		sel.SetAttr("level", "conceptual")
		e, err := p.choose(r, minQuality)
		if err != nil {
			sel.SetAttr("error", err.Error())
			sel.Finish()
			return plan, err
		}
		sel.SetAttr("engine", e.Name())
		sel.SetAttr("cost", strconv.FormatFloat(e.Cost(), 'g', -1, 64))
		sel.SetAttr("quality", strconv.FormatFloat(e.Quality(), 'g', -1, 64))
		sel.Finish()
		if ran[e.Name()] {
			// Engine already ran for an earlier requirement but did not
			// produce this one.
			if !p.available(video, r) {
				return plan, fmt.Errorf("cobra: extractor %s did not materialize %v", e.Name(), r)
			}
			continue
		}
		ext := span.StartChild("extract:" + e.Name())
		ext.SetAttr("level", "conceptual")
		// The traced catalog view attributes the engine's store writes
		// (journal/WAL waits) to this query's trace.
		extErr := e.Extract(p.cat.Traced(ext), video)
		cExtractions.Inc()
		hExtractLat.Observe(ext.Finish())
		if extErr != nil {
			return plan, fmt.Errorf("cobra: extractor %s: %w", e.Name(), extErr)
		}
		ran[e.Name()] = true
		plan.Ran = append(plan.Ran, e.Name())
		if !p.available(video, r) {
			return plan, fmt.Errorf("cobra: extractor %s did not materialize %v", e.Name(), r)
		}
	}
	return plan, nil
}

// choose selects the engine for a requirement.
func (p *Preprocessor) choose(r Requirement, minQuality float64) (Extractor, error) {
	var candidates []Extractor
	for _, e := range p.extractors {
		for _, pr := range e.Provides() {
			if pr == r {
				candidates = append(candidates, e)
				break
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoExtractor, r)
	}
	var qualified []Extractor
	for _, e := range candidates {
		if e.Quality() >= minQuality {
			qualified = append(qualified, e)
		}
	}
	if len(qualified) > 0 {
		sort.Slice(qualified, func(i, j int) bool {
			if qualified[i].Cost() != qualified[j].Cost() {
				return qualified[i].Cost() < qualified[j].Cost()
			}
			return qualified[i].Quality() > qualified[j].Quality()
		})
		return qualified[0], nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Quality() != candidates[j].Quality() {
			return candidates[i].Quality() > candidates[j].Quality()
		}
		return candidates[i].Cost() < candidates[j].Cost()
	})
	return candidates[0], nil
}

// ExtractorFunc adapts plain functions into Extractors.
type ExtractorFunc struct {
	EngineName string
	Outputs    []Requirement
	CostVal    float64
	QualityVal float64
	Fn         func(cat *Catalog, video string) error
}

// Name implements Extractor.
func (e ExtractorFunc) Name() string { return e.EngineName }

// Provides implements Extractor.
func (e ExtractorFunc) Provides() []Requirement { return e.Outputs }

// Cost implements Extractor.
func (e ExtractorFunc) Cost() float64 { return e.CostVal }

// Quality implements Extractor.
func (e ExtractorFunc) Quality() float64 { return e.QualityVal }

// Extract implements Extractor.
func (e ExtractorFunc) Extract(cat *Catalog, video string) error { return e.Fn(cat, video) }
