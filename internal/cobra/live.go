package cobra

import (
	"errors"
	"fmt"

	"cobra/internal/monet"
)

// This file is the catalog's streaming-ingestion surface: live-video
// registration, copy-on-write appends of events and feature samples
// (backed by monet.Store.AppendColumns so concurrent readers keep
// consistent snapshots), and the tail readers the incremental query
// evaluator uses to re-scan only rows appended since a watermark.

// liveBAT names the BAT recording which videos are live streams.
func liveBAT() string { return "cobra/live" }

// eventCols is the fixed column order of the decomposed event
// relation; appends and reads must agree on it.
var eventCols = []string{"type", "start", "end", "conf", "attrs"}

// EventBATName is the kernel BAT name of one column of a video's
// decomposed event relation. The "type" column's watermark counts the
// video's event rows; subscriptions track its epoch for change
// detection.
func EventBATName(video, col string) string { return eventBAT(video, col) }

// ObjectBATName is the kernel BAT name of one column of a video's
// object-layer relation.
func ObjectBATName(video, col string) string { return objectBAT(video, col) }

// VideosBATName is the kernel BAT name of the raw-layer video table;
// its epoch advances whenever a live video's duration watermark moves.
func VideosBATName() string { return videoBAT() }

// SetLive marks (or unmarks) a video as a live stream. Live videos
// bypass the query preprocessor's dynamic extraction: their metadata
// arrives continuously from the ingest feed, and running an extractor
// mid-broadcast would read material that has not aired yet.
func (c *Catalog) SetLive(video string, live bool) error {
	if video == "" {
		return errors.New("cobra: live flag needs a video")
	}
	b, err := c.store.Get(liveBAT())
	if err != nil {
		b = monet.NewBAT(monet.StrT, monet.BoolT)
	}
	b = b.Filter(func(h, _ monet.Value) bool { return h.Str() != video })
	b.MustInsert(monet.NewStr(video), monet.NewBool(live))
	return c.store.PutCtx(c.ctx(), liveBAT(), b)
}

// IsLive reports whether the video is a live stream.
func (c *Catalog) IsLive(video string) bool {
	b, err := c.store.Get(liveBAT())
	if err != nil {
		return false
	}
	v, ok := b.Find(monet.NewStr(video))
	return ok && v.Bool()
}

// SetDuration moves a video's duration watermark, keeping its other
// raw-layer attributes. The ingest loop calls it after each appended
// chunk so queries (and NOT/window evaluation in particular) see the
// video exactly as long as it has aired.
func (c *Catalog) SetDuration(video string, duration float64) error {
	v, err := c.Video(video)
	if err != nil {
		return err
	}
	v.Duration = duration
	return c.PutVideo(v)
}

// AppendEvents appends event-layer entities without rewriting the
// existing rows: the five decomposed column BATs are extended in one
// kernel critical section (dense OID heads continue automatically),
// so readers iterating a pre-append snapshot are never invalidated.
// It returns the event-row watermark the append started at.
func (c *Catalog) AppendEvents(video string, events []Event) (fromRow int, err error) {
	if video == "" {
		return 0, errors.New("cobra: events need a video")
	}
	if err := c.ensureEventCols(video); err != nil {
		return 0, err
	}
	if len(events) == 0 {
		rows, _ := c.store.Watermark(eventBAT(video, "type"))
		return rows, nil
	}
	names := make([]string, len(eventCols))
	tails := make([][]monet.Value, len(eventCols))
	for i, col := range eventCols {
		names[i] = eventBAT(video, col)
		tails[i] = make([]monet.Value, len(events))
	}
	for r, e := range events {
		tails[0][r] = monet.NewStr(e.Type)
		tails[1][r] = monet.NewFloat(e.Interval.Start)
		tails[2][r] = monet.NewFloat(e.Interval.End)
		tails[3][r] = monet.NewFloat(e.Confidence)
		tails[4][r] = monet.NewStr(encodeAttrs(e.Attrs))
	}
	return c.store.AppendColumns(c.ctx(), names, tails)
}

// ensureEventCols registers the empty decomposed event relation for a
// video if it does not exist yet.
func (c *Catalog) ensureEventCols(video string) error {
	for _, col := range eventCols {
		if c.store.Has(eventBAT(video, col)) {
			continue
		}
		t := monet.FloatT
		if col == "type" || col == "attrs" {
			t = monet.StrT
		}
		if err := c.store.PutCtx(c.ctx(), eventBAT(video, col), monet.NewBAT(monet.OIDT, t)); err != nil {
			return err
		}
	}
	return nil
}

// AppendFeatureSamples extends a feature time series, creating the
// series (with the given sample rate) on first append. It returns the
// sample-row watermark the append started at.
func (c *Catalog) AppendFeatureSamples(video, name string, rate float64, vals []float64) (fromRow int, err error) {
	if video == "" || name == "" || rate <= 0 {
		return 0, errors.New("cobra: feature samples need video, name and sample rate")
	}
	bn := featureBAT(video, name)
	if !c.store.Has(bn) {
		if err := c.store.PutCtx(c.ctx(), bn, monet.NewBAT(monet.Void, monet.FloatT)); err != nil {
			return 0, err
		}
		if err := c.store.PutCtx(c.ctx(), bn+"/rate", rateBAT(rate)); err != nil {
			return 0, err
		}
	}
	if len(vals) == 0 {
		rows, _ := c.store.Watermark(bn)
		return rows, nil
	}
	tails := make([]monet.Value, len(vals))
	for i, v := range vals {
		tails[i] = monet.NewFloat(v)
	}
	return c.store.AppendColumns(c.ctx(), []string{bn}, [][]monet.Value{tails})
}

// FeatureTail reads the samples of a feature series from a row
// watermark on: vals holds rows [fromRow, total) of a consistent
// snapshot, in O(tail). The incremental evaluator carries its
// run-detection state across calls so re-evaluation touches only the
// appended rows.
func (c *Catalog) FeatureTail(video, name string, fromRow int) (vals []float64, rate float64, total int, err error) {
	b, err := c.store.Get(featureBAT(video, name))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: feature %s/%s", ErrNotFound, video, name)
	}
	rb, err := c.store.Get(featureBAT(video, name) + "/rate")
	if err != nil || rb.Len() == 0 {
		return nil, 0, 0, fmt.Errorf("cobra: feature %s/%s missing sample rate", video, name)
	}
	total = b.Len()
	if fromRow < 0 {
		fromRow = 0
	}
	if fromRow > total {
		fromRow = total
	}
	vals = make([]float64, 0, total-fromRow)
	for i := fromRow; i < total; i++ {
		vals = append(vals, b.Tail(i).Float())
	}
	return vals, rb.Tail(0).Float(), total, nil
}

// EventsSince reads a video's event rows from a row watermark on, in
// row (append) order, optionally filtered by type ("" = all). upTo is
// the consistent row count the read covered — pass it back as the
// next fromRow. Unlike Events, results are NOT sorted by start time:
// callers accumulating rows across watermarks sort once at the end,
// which reproduces Events' ordering exactly.
func (c *Catalog) EventsSince(video, typ string, fromRow int) (evs []Event, upTo int) {
	cols := make([]*monet.BAT, len(eventCols))
	for i, col := range eventCols {
		b, err := c.store.Get(eventBAT(video, col))
		if err != nil {
			return nil, fromRow
		}
		cols[i] = b
	}
	// The five column BATs are fetched under separate read locks, so a
	// concurrent append may be visible in some and not others. Rows
	// below the minimum length are consistent in all snapshots
	// (copy-on-write appends never rewrite a prefix).
	upTo = cols[0].Len()
	for _, b := range cols[1:] {
		if b.Len() < upTo {
			upTo = b.Len()
		}
	}
	if fromRow < 0 {
		fromRow = 0
	}
	for i := fromRow; i < upTo; i++ {
		et := cols[0].Tail(i).Str()
		if typ != "" && et != typ {
			continue
		}
		evs = append(evs, Event{
			Video:      video,
			Type:       et,
			Interval:   Interval{Start: cols[1].Tail(i).Float(), End: cols[2].Tail(i).Float()},
			Confidence: cols[3].Tail(i).Float(),
			Attrs:      decodeAttrs(cols[4].Tail(i).Str()),
		})
	}
	return evs, upTo
}
