package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/monet"
)

// bigFeatureEngine builds an engine over a feature series long enough
// to clear the kernel's index thresholds.
func bigFeatureEngine(t *testing.T, values []float64) *Engine {
	t.Helper()
	cat := cobra.NewCatalog(monet.NewStore())
	dur := float64(len(values)) / 10
	if err := cat.PutVideo(cobra.Video{Name: "race", Duration: dur, FPS: 25}); err != nil {
		t.Fatal(err)
	}
	if err := cat.PutFeature(cobra.Feature{Video: "race", Name: "speed", SampleRate: 10, Values: values}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(cobra.NewPreprocessor(cat))
}

func sameResults(t *testing.T, tag string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: indexed %d segments, legacy %d", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].Interval != b[i].Interval || a[i].Confidence != b[i].Confidence {
			t.Fatalf("%s: segment %d indexed %+v, legacy %+v", tag, i, a[i], b[i])
		}
	}
}

// TestFeatureCondIndexedMatchesLegacy runs every comparison operator
// repeatedly (so the cost gate graduates the column from zone map to
// cracker) and checks the indexed path returns segment-for-segment
// the legacy full-load evaluation.
func TestFeatureCondIndexedMatchesLegacy(t *testing.T) {
	n := 3 * monet.MorselSize
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, n)
	for i := range values {
		// Smooth-ish series with plateaus so threshold runs exceed the
		// 0.3 s noise floor.
		values[i] = 100 + 80*math.Sin(float64(i)/500) + float64(rng.Intn(3))
	}
	eIdx := bigFeatureEngine(t, values)
	eLegacy := bigFeatureEngine(t, values)
	eLegacy.NoIndex = true

	for _, op := range []string{">", ">=", "<", "<=", "="} {
		for round := 0; round < 4; round++ {
			src := fmt.Sprintf(`SELECT SEGMENTS FROM race WHERE FEATURE('speed') %s 150`, op)
			got, err := eIdx.Run(src)
			if err != nil {
				t.Fatalf("%s round %d: %v", op, round, err)
			}
			want, err := eLegacy.Run(src)
			if err != nil {
				t.Fatalf("%s round %d legacy: %v", op, round, err)
			}
			sameResults(t, fmt.Sprintf("%s round %d", op, round), got, want)
		}
	}
}

// TestFeatureCondIndexedAfterAppendLikeMutation replaces the feature
// (PutFeature overwrites the BAT) after indexes exist and checks the
// fresh data is what queries see.
func TestFeatureCondIndexedSeesReplacedFeature(t *testing.T) {
	n := 3 * monet.MorselSize
	values := make([]float64, n)
	e := bigFeatureEngine(t, values)
	src := `SELECT SEGMENTS FROM race WHERE FEATURE('speed') > 0.5`
	for round := 0; round < 4; round++ { // graduate to the cracker
		if res, err := e.Run(src); err != nil || len(res) != 0 {
			t.Fatalf("round %d: %d segments, err %v", round, len(res), err)
		}
	}
	for i := 1000; i < 1100; i++ {
		values[i] = 1
	}
	cat := e.pre.Catalog()
	if err := cat.PutFeature(cobra.Feature{Video: "race", Name: "speed", SampleRate: 10, Values: values}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 100 || res[0].Interval.End != 110 {
		t.Fatalf("post-replace segments = %+v", res)
	}
}

// TestFeatureCondNaNThresholdStaysLegacy: a NaN threshold has no range
// form; the engine must not panic and must return the legacy answer
// (no segments, since NaN compares false).
func TestFeatureCondNaNValuesMatchLegacy(t *testing.T) {
	n := 3 * monet.MorselSize
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	for i := 0; i < n; i += 997 {
		values[i] = math.NaN()
	}
	eIdx := bigFeatureEngine(t, values)
	eLegacy := bigFeatureEngine(t, values)
	eLegacy.NoIndex = true
	src := `SELECT SEGMENTS FROM race WHERE FEATURE('speed') >= 50`
	for round := 0; round < 4; round++ {
		got, err := eIdx.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eLegacy.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("nan round %d", round), got, want)
	}
}
