package query

import (
	"sort"
	"strconv"
	"strings"

	"cobra/internal/cobra"
)

// Canonical renders a parsed query to a normalized COQL string: the
// cache key of the serving layer's result cache. Two statements that
// differ only in spelling — whitespace, keyword case, attribute
// order, attribute-value case (matching is case-insensitive), float
// rendering ("0.50" vs ".5") — canonicalize identically and share one
// cache entry. Structurally different queries never collide because
// the rendering is an injective encoding of the AST.
//
// Canonicalization deliberately does NOT reorder AND/OR operands:
// evaluation is order-sensitive in its trace and (for OR) in result
// ordering, so commuted operands are distinct plans and distinct
// cache entries. Equivalence beyond spelling belongs to a rewriter,
// not the cache key.
func (q *Query) Canonical() string {
	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(q.Target)
	b.WriteString(" from ")
	b.WriteString(q.Video)
	if q.Where != nil {
		b.WriteString(" where ")
		canonCond(&b, q.Where)
	}
	if q.Window > 0 {
		b.WriteString(" last ")
		b.WriteString(canonFloat(q.Window))
	}
	if q.OrderBy != "" {
		b.WriteString(" order by ")
		b.WriteString(q.OrderBy)
		if q.Desc {
			b.WriteString(" desc")
		}
	}
	if q.Limit > 0 {
		b.WriteString(" limit ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	return b.String()
}

// canonCond renders one condition node. Parentheses are emitted around
// every composite operand, so precedence never depends on the reader.
func canonCond(b *strings.Builder, c Cond) {
	switch n := c.(type) {
	case *EventCond:
		b.WriteString("event(")
		b.WriteString(strconv.Quote(n.Type))
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(", ")
			b.WriteString(k)
			b.WriteString("=")
			// Attribute matching is case-insensitive (attrsMatch uses
			// EqualFold), so values fold to one spelling here.
			b.WriteString(strconv.Quote(strings.ToLower(n.Attrs[k])))
		}
		b.WriteString(")")
	case *TextCond:
		b.WriteString("text contains ")
		b.WriteString(strconv.Quote(n.Word))
	case *ObjectCond:
		b.WriteString("object(")
		b.WriteString(strconv.Quote(n.Name))
		b.WriteString(")")
	case *FeatureCond:
		b.WriteString("feature(")
		b.WriteString(strconv.Quote(n.Name))
		b.WriteString(") ")
		b.WriteString(n.Op)
		b.WriteString(" ")
		b.WriteString(canonFloat(n.Val))
	case *NotCond:
		b.WriteString("not (")
		canonCond(b, n.X)
		b.WriteString(")")
	case *AndCond:
		b.WriteString("(")
		canonCond(b, n.L)
		b.WriteString(") and (")
		canonCond(b, n.R)
		b.WriteString(")")
	case *OrCond:
		b.WriteString("(")
		canonCond(b, n.L)
		b.WriteString(") or (")
		canonCond(b, n.R)
		b.WriteString(")")
	case *TemporalCond:
		b.WriteString("(")
		canonCond(b, n.L)
		b.WriteString(") ")
		b.WriteString(n.Rel)
		if n.Rel == "within" {
			b.WriteString(" ")
			b.WriteString(canonFloat(n.Gap))
			b.WriteString(" of")
		}
		b.WriteString(" (")
		canonCond(b, n.R)
		b.WriteString(")")
	}
}

// canonFloat renders a float the shortest way that round-trips, so
// "0.50", ".5" and "0.5" spell one key.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DepNamesOf returns the kernel BAT names a query reads, in
// deterministic walk order: the query's dependency set. The epochs of
// these names are the query's freshness fingerprint — the result
// cache pairs Canonical() with qcache.Fingerprint over this set, and
// the subscription manager skips re-evaluation while none has
// advanced. Queries whose result depends on the video's duration — a
// trailing window, a NOT complement, or no WHERE clause at all —
// additionally depend on the raw-layer video table, whose epoch
// advances with every watermark move.
func DepNamesOf(q *Query) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	needDuration := q.Window > 0 || q.Where == nil
	var walk func(Cond)
	walk = func(c Cond) {
		switch n := c.(type) {
		case *EventCond:
			// All event types share the video's decomposed event relation;
			// the "type" column's epoch covers every append.
			add(cobra.EventBATName(q.Video, "type"))
		case *TextCond:
			add(cobra.EventBATName(q.Video, "type"))
		case *ObjectCond:
			add(cobra.ObjectBATName(q.Video, "appearances"))
		case *FeatureCond:
			add(cobra.FeatureBATName(q.Video, n.Name))
		case *NotCond:
			needDuration = true
			walk(n.X)
		case *AndCond:
			walk(n.L)
			walk(n.R)
		case *OrCond:
			walk(n.L)
			walk(n.R)
		case *TemporalCond:
			walk(n.L)
			walk(n.R)
		}
	}
	if q.Where != nil {
		walk(q.Where)
	}
	if needDuration {
		add(cobra.VideosBATName())
	}
	return out
}
