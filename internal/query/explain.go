package query

import (
	"fmt"
	"strconv"
	"strings"

	"cobra/internal/cobra"
	"cobra/internal/milcheck"
	"cobra/internal/monet"
	"cobra/internal/obs"
)

// EXPLAIN: translate a COQL condition tree into the MIL access plan
// the physical layer would run, then statically verify it with
// milcheck against the live catalog store. The plan works in the
// kernel's late-materialization style: each condition node produces a
// qualifying OID set ([oid,void]), combinators operate on OID sets,
// and the segment columns are gathered once for the root set.
// Logical-layer work the kernel cannot express (attribute decoding,
// run extraction, Allen relations) is annotated in comments.

// Explanation is the result of Engine.Explain.
type Explanation struct {
	// Query is the parsed COQL statement.
	Query *Query
	// Plan is the emitted MIL access plan.
	Plan string
	// Diags are milcheck's findings over the plan (sorted, errors
	// first at equal positions).
	Diags []milcheck.Diagnostic
}

// OK reports whether the plan passed verification without errors.
func (e *Explanation) OK() bool { return !milcheck.HasErrors(e.Diags) }

// String renders the explanation for the shell.
func (e *Explanation) String() string {
	var b strings.Builder
	b.WriteString(e.Plan)
	if len(e.Diags) == 0 {
		b.WriteString("# milcheck: plan OK\n")
		return b.String()
	}
	for _, d := range e.Diags {
		fmt.Fprintf(&b, "# milcheck: %s\n", d)
	}
	return b.String()
}

// Explain parses a COQL statement and emits its verified MIL access
// plan. Parse failures are returned as err; plan verification findings
// are reported in the Explanation.
func (e *Engine) Explain(src string) (*Explanation, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.explainQuery(q), nil
}

// explainQuery emits and verifies the plan for an already-parsed
// query: the compilation step the prepared-plan cache memoizes.
func (e *Engine) explainQuery(q *Query) *Explanation {
	pl := &planner{video: q.Video, store: e.pre.Catalog().Store()}
	if q.Where == nil {
		pl.printf("# no WHERE clause: the whole video qualifies")
		pl.printf("RETURN bat(%s).find(%s);", milStr("cobra/videos"), milStr(q.Video))
	} else {
		root := pl.emit(q.Where)
		ev := func(col string) string { return milStr("cobra/event/" + q.Video + "/" + col) }
		pl.printf("# materialize the segment columns of the qualifying OID set")
		pl.printf("VAR res_start := bat(%s).semijoin(%s);", ev("start"), root)
		pl.printf("VAR res_end := bat(%s).semijoin(%s);", ev("end"), root)
		pl.printf("VAR res_conf := bat(%s).semijoin(%s);", ev("conf"), root)
		pl.printf("print(res_end.max);")
		pl.printf("print(res_conf.avg);")
		pl.printf("RETURN res_start;")
	}
	plan := pl.b.String()
	diags, err := milcheck.CheckSource(plan, &milcheck.Options{
		Funcs:      milcheck.ExtensionSigs(),
		ResolveBAT: milcheck.StoreResolver(e.pre.Catalog().Store()),
	})
	if err != nil {
		// The emitter produced unparseable MIL: surface it as a
		// diagnostic rather than failing the EXPLAIN.
		diags = []milcheck.Diagnostic{{Line: 1, Col: 1, Severity: milcheck.Error,
			Code: "emit-parse", Msg: err.Error()}}
	}
	return &Explanation{Query: q, Plan: plan, Diags: diags}
}

// ExplainAnalyze emits the verified plan, then actually executes the
// statement: the returned trace's physical-level spans carry the
// access paths the kernel really took (zone-map prune counts, cracker
// piece counts), where the static plan only predicts them.
func (e *Engine) ExplainAnalyze(src string) (*Explanation, []Result, *obs.Span, error) {
	ex, err := e.Explain(src)
	if err != nil {
		return nil, nil, nil, err
	}
	res, span, err := e.RunTraced(src)
	if err != nil {
		return nil, nil, nil, err
	}
	return ex, res, span, nil
}

// planner emits MIL statements with fresh per-node variable names.
type planner struct {
	video string
	store *monet.Store
	b     strings.Builder
	n     int
}

func (p *planner) printf(format string, args ...any) {
	fmt.Fprintf(&p.b, format+"\n", args...)
}

// milStr quotes a string as a MIL literal (catalog names contain no
// control bytes).
func milStr(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`)
	return `"` + r.Replace(s) + `"`
}

func (p *planner) fresh() string {
	p.n++
	return "s" + strconv.Itoa(p.n)
}

// emit compiles one condition node, returning the name of the
// [oid,void] variable holding its qualifying event OIDs.
func (p *planner) emit(c Cond) string {
	name := p.fresh()
	typeScan := milStr("cobra/event/" + p.video + "/type")
	switch n := c.(type) {
	case *EventCond:
		p.printf("# %s: event %q", name, n.Type)
		p.printf("VAR %s := bat(%s).uselect(%s);", name, typeScan, milStr(n.Type))
		if len(n.Attrs) > 0 {
			p.printf("# %s: attribute match decodes %s at the logical layer",
				name, milStr("cobra/event/"+p.video+"/attrs"))
		}

	case *TextCond:
		p.printf("# %s: text %q over caption events, word matched at the logical layer", name, n.Word)
		p.printf("VAR %s := bat(%s).uselect(%s);", name, typeScan, milStr(CaptionEventType))

	case *ObjectCond:
		p.printf("# %s: object %q, appearance list decodes at the logical layer", name, n.Name)
		p.printf("print(bat(%s).find(%s));", milStr("cobra/object/"+p.video+"/appearances"), milStr(n.Name))
		p.printf("VAR %s := new(oid, void);", name)

	case *FeatureCond:
		p.printf("# %s: feature %s %s %v, threshold runs extracted at the logical layer", name, n.Name, n.Op, n.Val)
		p.accessPath(name, n)
		p.printf("print(threshold(bat(%s), %s).count);",
			milStr("cobra/feature/"+p.video+"/"+n.Name), formatFloat(n.Val))
		p.printf("VAR %s := new(oid, void);", name)

	case *NotCond:
		x := p.emit(n.X)
		p.printf("# %s: NOT %s, complement within the video duration at the logical layer", name, x)
		p.printf("VAR %s := %s;", name, x)

	case *AndCond:
		l := p.emit(n.L)
		r := p.emit(n.R)
		p.printf("# %s: %s AND %s (interval intersection; OID semijoin approximation)", name, l, r)
		p.printf("VAR %s := %s.semijoin(%s);", name, l, r)

	case *OrCond:
		l := p.emit(n.L)
		r := p.emit(n.R)
		p.printf("# %s: %s OR %s", name, l, r)
		p.printf("VAR %s := %s.kunion(%s);", name, l, r)

	case *TemporalCond:
		l := p.emit(n.L)
		r := p.emit(n.R)
		p.printf("# %s: %s %s %s (Allen relations at the logical layer)", name, l, strings.ToUpper(n.Rel), r)
		p.printf("VAR %s := %s.semijoin(%s);", name, l, r)

	default:
		p.printf("# %s: unknown condition %T", name, c)
		p.printf("VAR %s := new(oid, void);", name)
	}
	return name
}

// accessPath annotates a feature condition with the access path the
// kernel's cost gate would choose for it right now, plus the fused
// pipeline stages the select→runs execution would take (or the
// fallback reason pinning it to operator-at-a-time). Both probes are
// side-effect-free, so EXPLAIN never builds indexes or moves the
// column through the gate's graduation counters.
func (p *planner) accessPath(name string, n *FeatureCond) {
	if p.store == nil {
		return
	}
	lo, hi, ok := featureBounds(n.Op, n.Val)
	if !ok {
		p.printf("# %s: access path: scan (no range form, legacy evaluation)", name)
		return
	}
	bat := cobra.FeatureBATName(p.video, n.Name)
	info, err := p.store.PlanAccess(bat, monet.NewFloat(lo), monet.NewFloat(hi))
	if err != nil {
		return // feature not materialized yet: nothing to plan against
	}
	fused := "fused=select→runs"
	if d := p.store.FusedDecision(bat, bat, monet.NewFloat(lo), monet.NewFloat(hi), "count"); d != "fused" {
		fused = "fused=no" + strings.TrimPrefix(d, "fallback")
	}
	p.printf("# %s: access path: %s %s", name, info, fused)
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}
