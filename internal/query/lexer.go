// Package query implements COQL, the conceptual-level query language
// of the Cobra VDBMS (§5.6). Queries select video segments by event
// predicates, recognized caption text, raw feature thresholds and
// temporal relationships; the engine asks the query preprocessor to
// materialize any missing metadata before evaluation (dynamic
// feature/semantic extraction, §2).
//
// Examples from the paper, in COQL:
//
//	SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop', driver='BARRICHELLO')
//	SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight') AND TEXT CONTAINS 'SCHUMACHER'
//	SELECT SEGMENTS FROM german-gp WHERE EVENT('flyout') OR FEATURE('dust') > 0.5
//	SELECT SEGMENTS FROM german-gp WHERE EVENT('highlight') WITHIN 10 OF EVENT('pitstop')
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tPunct // ( ) , =
	tOp    // > >= < <=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// keywords are case-insensitive.
var keywords = map[string]bool{
	"select": true, "retrieve": true, "segments": true, "events": true,
	"from": true, "where": true, "and": true, "or": true, "not": true,
	"event": true, "text": true, "contains": true, "feature": true,
	"object": true,
	"within": true, "of": true, "before": true, "after": true,
	"during": true, "overlaps": true, "meets": true, "s": true,
	"order": true, "by": true, "confidence": true, "start": true,
	"desc": true, "asc": true, "limit": true, "last": true,
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: %d: unterminated string", i)
			}
			toks = append(toks, token{kind: tString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tNumber, text: src[i:j], pos: i})
			i = j
		case c == '(' || c == ')' || c == ',' || c == '=':
			toks = append(toks, token{kind: tPunct, text: string(c), pos: i})
			i++
		case c == '>' || c == '<':
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, token{kind: tOp, text: src[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				j++
			}
			toks = append(toks, token{kind: tIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: %d: unexpected character %q", i, rune(c))
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

// isKeyword matches an ident token against a keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tIdent && strings.EqualFold(t.text, kw) && keywords[strings.ToLower(kw)]
}
