package query

import (
	"strings"
	"testing"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// collectSpans walks a span tree depth-first and returns every span
// with the given name.
func collectSpans(root *obs.Span, name string) []*obs.Span {
	var out []*obs.Span
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if s == nil {
			return
		}
		if s.Name() == name {
			out = append(out, s)
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

// levelsIn returns the set of "level" attribute values present in a
// span tree.
func levelsIn(root *obs.Span) map[string]bool {
	levels := map[string]bool{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if l := s.Attr("level"); l != "" {
			levels[l] = true
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return levels
}

// TestRunTracedSpansAllLevels is the tracing acceptance test: one
// traced COQL query must yield a span tree covering all three DBMS
// levels — conceptual (coql.query), logical (moa.eval / eval:feature)
// and physical (monet.select with the cost-gate access path, plus
// morsel spans carrying queue-wait attribution) — with per-query
// resources attached and the trace retained in the default ring.
func TestRunTracedSpansAllLevels(t *testing.T) {
	// Morsel fan-out needs a pool wider than one worker; the default
	// follows GOMAXPROCS, which may be 1 on small CI machines.
	prev := monet.SetDefaultPoolWorkers(4)
	defer monet.SetDefaultPoolWorkers(prev)

	// Three morsels: the first entirely below the threshold (so the
	// zone map prunes it and the cost gate reports path=zonemap), the
	// other two qualifying (so the surviving scan fans out over more
	// than one morsel and records morsel spans).
	n := 3 * monet.MorselSize
	values := make([]float64, n)
	for i := range values {
		if i < monet.MorselSize {
			values[i] = 100
		} else {
			values[i] = 200
		}
	}
	e := bigFeatureEngine(t, values)

	const src = "SELECT SEGMENTS FROM race WHERE FEATURE('speed') > 150"
	res, root, err := e.RunTraced(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("traced query returned no segments")
	}

	// Conceptual level: the root span.
	if root.Name() != "coql.query" {
		t.Fatalf("root span = %q, want coql.query", root.Name())
	}
	if root.TraceID() == "" {
		t.Fatal("root span has no trace ID")
	}
	if root.Attr("level") != "conceptual" {
		t.Fatalf("root level = %q", root.Attr("level"))
	}
	if root.Attr("query") != src {
		t.Fatalf("root query attr = %q", root.Attr("query"))
	}
	if !strings.Contains(root.Attr("resources"), "rows_scanned=") {
		t.Fatalf("root resources attr = %q", root.Attr("resources"))
	}

	// All three levels must appear in the tree.
	levels := levelsIn(root)
	for _, want := range []string{"conceptual", "logical", "physical"} {
		if !levels[want] {
			t.Fatalf("span tree missing level %q (have %v)\n%s", want, levels, root.Render())
		}
	}

	// Logical level: the moa evaluation and the feature leaf.
	if got := collectSpans(root, "moa.eval"); len(got) != 1 || got[0].Attr("level") != "logical" {
		t.Fatalf("moa.eval spans = %v\n%s", got, root.Render())
	}
	leaves := collectSpans(root, "eval:feature")
	if len(leaves) != 1 {
		t.Fatalf("eval:feature spans = %d\n%s", len(leaves), root.Render())
	}

	// Physical level: the kernel select must nest under the feature
	// leaf and carry the PR 5 cost-gate decision.
	sels := collectSpans(leaves[0], "monet.select")
	if len(sels) != 1 {
		t.Fatalf("monet.select spans under eval:feature = %d\n%s", len(sels), root.Render())
	}
	sel := sels[0]
	if sel.Attr("level") != "physical" {
		t.Fatalf("monet.select level = %q", sel.Attr("level"))
	}
	access := sel.Attr("access")
	if !strings.Contains(access, "path=zonemap") || !strings.Contains(access, "pruned=1") {
		t.Fatalf("monet.select access = %q, want zone-map path with one pruned morsel", access)
	}

	// Morsel spans: queue-wait and run time attribution per morsel.
	morsels := collectSpans(sel, "monet.morsel")
	if len(morsels) == 0 {
		t.Fatalf("no monet.morsel spans under monet.select\n%s", root.Render())
	}
	for _, m := range morsels {
		if m.Attr("queue_wait") == "" || m.Attr("run") == "" {
			t.Fatalf("morsel span missing queue_wait/run attrs: %v", m.Attrs())
		}
	}

	// Shared per-trace resource attribution.
	stat := root.Resources().Stat()
	if stat.RowsScanned == 0 || stat.RowsReturned == 0 || stat.Morsels == 0 {
		t.Fatalf("resource stat not attributed: %+v", stat)
	}
	// Zone map pruned one of three morsels: only two morsels' worth of
	// rows were touched.
	if want := int64(2 * monet.MorselSize); stat.RowsScanned != want {
		t.Fatalf("rows scanned = %d, want %d", stat.RowsScanned, want)
	}

	// The completed trace is retained in the default ring for
	// TRACEDUMP, keyed by the root's trace ID.
	tr, ok := obs.DefaultTraces.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not in DefaultTraces", root.TraceID())
	}
	if tr.Query != src || tr.Root == nil || tr.Root.TraceID() != root.TraceID() {
		t.Fatalf("ring trace = %+v", tr)
	}

	// The same tree must export as Chrome trace-event JSON, including
	// the physical-level events.
	out, err := obs.ChromeTraceJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"coql.query"`, `"monet.select"`, `"monet.morsel"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("Chrome export missing %s", want)
		}
	}
}
