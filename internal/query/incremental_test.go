package query

import (
	"context"
	"fmt"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/f1"
	"cobra/internal/monet"
	"cobra/internal/synth"
)

// incrementalQueries exercises every leaf kind, the set operators, and
// the LAST window against a live feed.
var incrementalQueries = []string{
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')",
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('pitstop', driver='SCHUMACHER')",
	"SELECT SEGMENTS FROM live-gp WHERE TEXT CONTAINS 'PIT'",
	"SELECT SEGMENTS FROM live-gp WHERE FEATURE('audioex') > 0.6",
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('passing') AND FEATURE('motion') > 0.5",
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('flyout') OR FEATURE('dust') > 0.5",
	"SELECT SEGMENTS FROM live-gp WHERE NOT EVENT('replay')",
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('pitstop') WITHIN 10 OF EVENT('passing')",
	"SELECT SEGMENTS FROM live-gp WHERE EVENT('passing') LAST 30 S ORDER BY CONFIDENCE DESC LIMIT 5",
	"SELECT SEGMENTS FROM live-gp LAST 15",
}

// TestIncrementalMatchesOneShot drives a live ingest and checks, at
// every watermark and at several kernel pool widths, that the
// incremental evaluator's rendered result is byte-identical to a
// one-shot execution of the same query — the streaming acceptance
// criterion.
func TestIncrementalMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full live-feed equivalence sweep in -short mode")
	}
	for _, width := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			prev := monet.SetDefaultPoolWorkers(width)
			defer monet.SetDefaultPoolWorkers(prev)

			cat := cobra.NewCatalog(monet.NewStore())
			race := synth.GenerateRace(synth.GermanGP, 120, 42)
			ing, err := f1.NewLiveIngestor(cat, "live-gp", race, 7)
			if err != nil {
				t.Fatalf("NewLiveIngestor: %v", err)
			}
			eng := NewEngine(cobra.NewPreprocessor(cat))

			queries := make([]*Query, len(incrementalQueries))
			incs := make([]*Incremental, len(incrementalQueries))
			for i, src := range incrementalQueries {
				q, err := Parse(src)
				if err != nil {
					t.Fatalf("Parse(%q): %v", src, err)
				}
				queries[i] = q
				incs[i] = NewIncremental(eng, q)
			}

			for !ing.Done() {
				w, err := ing.Step(7.3)
				if err != nil {
					t.Fatalf("Step: %v", err)
				}
				for i, inc := range incs {
					got, err := inc.Eval(context.Background(), nil)
					if err != nil {
						t.Fatalf("w=%.1f Eval(%q): %v", w, incrementalQueries[i], err)
					}
					want, err := eng.Execute(queries[i])
					if err != nil {
						t.Fatalf("w=%.1f Execute(%q): %v", w, incrementalQueries[i], err)
					}
					if len(got) != len(want) {
						t.Fatalf("w=%.1f %q: incremental %d segments, one-shot %d",
							w, incrementalQueries[i], len(got), len(want))
					}
					for j := range got {
						g, wnt := FormatResult(got[j]), FormatResult(want[j])
						if g != wnt {
							t.Fatalf("w=%.1f %q: segment %d differs\nincremental: %s\none-shot:    %s",
								w, incrementalQueries[i], j, g, wnt)
						}
					}
				}
			}
		})
	}
}

// TestParseLastWindow checks the LAST clause's grammar corner cases.
func TestParseLastWindow(t *testing.T) {
	q, err := Parse("SELECT SEGMENTS FROM v WHERE EVENT('passing') LAST 30 S ORDER BY START LIMIT 2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Window != 30 || q.OrderBy != "start" || q.Limit != 2 {
		t.Fatalf("got window=%v orderBy=%q limit=%d", q.Window, q.OrderBy, q.Limit)
	}
	if q, err = Parse("SELECT SEGMENTS FROM v LAST 7.5"); err != nil || q.Window != 7.5 {
		t.Fatalf("unitless LAST: q=%+v err=%v", q, err)
	}
	for _, bad := range []string{
		"SELECT SEGMENTS FROM v LAST",
		"SELECT SEGMENTS FROM v LAST 0",
		"SELECT SEGMENTS FROM v LAST x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestPostProcessWindow pins the window semantics: a segment survives
// when it overlaps the trailing window (End strictly past the cut).
func TestPostProcessWindow(t *testing.T) {
	q := &Query{Window: 10}
	res := []Result{
		{Interval: cobra.Interval{Start: 0, End: 95}},  // straddles the cut
		{Interval: cobra.Interval{Start: 0, End: 90}},  // ends exactly at the cut
		{Interval: cobra.Interval{Start: 95, End: 99}}, // inside the window
	}
	out := postProcess(q, 100, res)
	if len(out) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(out), out)
	}
	if out[0].Interval.End != 95 || out[1].Interval.End != 99 {
		t.Fatalf("unexpected survivors: %+v", out)
	}
}
