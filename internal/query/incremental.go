package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cobra/internal/cobra"
	"cobra/internal/obs"
)

// FormatResult renders one result segment in the wire format shared by
// one-shot COQL responses and streaming notifications:
//
//	<start> <end> <confidence> <attrs>
//
// with attrs comma-joined as key=value pairs in key order, or "-" when
// the segment carries none. The streaming acceptance criterion — a
// SUBSCRIBE notification is byte-identical to a one-shot query at the
// same watermark — is checked against this rendering.
func FormatResult(r Result) string {
	return fmt.Sprintf("%.1f %.1f %.3f %s", r.Interval.Start, r.Interval.End, r.Confidence, formatAttrs(r.Attrs))
}

func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(attrs))
	for k, v := range attrs {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Catalog exposes the engine's catalog. The subscription manager reads
// kernel watermarks and epochs through it to decide which standing
// queries a batch of appends may have affected.
func (e *Engine) Catalog() *cobra.Catalog { return e.pre.Catalog() }

// eventLeaf accumulates the type-filtered event rows an EVENT or TEXT
// condition has consumed, in append (row) order. Each re-evaluation
// reads only rows past the watermark; sorting the accumulated rows
// stably by start time reproduces Catalog.Events' ordering exactly
// (ties keep append order on both paths).
type eventLeaf struct {
	rows int
	evs  []cobra.Event
}

// featureLeaf carries featureRuns' run-detection state machine across
// watermarks: rows consumed, whether a run is open and where it
// started, and the closed runs found so far. The state machine is
// prefix-composable, so feeding it the appended tail yields the same
// runs as re-scanning the full series.
type featureLeaf struct {
	rows   int
	open   bool
	start  float64
	closed []Result
}

// Incremental evaluates one parsed COQL query repeatedly over a
// growing video, re-scanning only rows appended since the previous
// evaluation. Leaf conditions cache per-node state (event rows in
// append order, feature run-detection state); combination operators
// recompute over the cached leaf sets with the same code the one-shot
// engine uses, so every Eval returns exactly what Engine.Execute would
// return at the same watermark — the basis for the streaming path's
// byte-identity guarantee.
//
// An Incremental is not safe for concurrent use; the subscription
// manager serializes evaluations per subscription.
type Incremental struct {
	eng *Engine
	q   *Query

	events   map[Cond]*eventLeaf
	features map[*FeatureCond]*featureLeaf
}

// NewIncremental prepares a standing evaluation of q against the
// engine's catalog.
func NewIncremental(eng *Engine, q *Query) *Incremental {
	return &Incremental{
		eng:      eng,
		q:        q,
		events:   map[Cond]*eventLeaf{},
		features: map[*FeatureCond]*featureLeaf{},
	}
}

// Query returns the parsed standing query.
func (inc *Incremental) Query() *Query { return inc.q }

// DepNames returns the kernel BAT names whose epochs gate
// re-evaluation: if none has advanced since the last Eval, the
// standing query's result cannot have changed and the subscription
// manager skips it. The walk is shared with the result cache's
// freshness fingerprint — see DepNamesOf.
func (inc *Incremental) DepNames() []string {
	return DepNamesOf(inc.q)
}

// Eval re-evaluates the standing query at the current watermark. The
// span (nil-safe) receives the same child structure as a one-shot
// execution, with tail scans annotated by their starting row.
func (inc *Incremental) Eval(ctx context.Context, span *obs.Span) ([]Result, error) {
	q := inc.q
	reqs := requirements(q.Where)
	ensSp := span.StartChild("preprocess.ensure")
	ensSp.SetAttr("level", "conceptual")
	_, err := inc.eng.pre.EnsureTraced(q.Video, reqs, inc.eng.MinQuality, ensSp)
	ensSp.Finish()
	if err != nil && !errors.Is(err, cobra.ErrNoExtractor) {
		return nil, err
	}
	cat := inc.eng.pre.Catalog()
	v, err := cat.Video(q.Video)
	if err != nil {
		return nil, err
	}
	if q.Where == nil {
		whole := []Result{{Interval: cobra.Interval{Start: 0, End: v.Duration}, Confidence: 1}}
		return postProcess(q, v.Duration, whole), nil
	}
	evalSp := span.StartChild("moa.eval")
	evalSp.SetAttr("level", "logical")
	evalSp.SetAttr("mode", "incremental")
	res, err := inc.evalCond(ctx, cat, q.Video, v.Duration, q.Where, evalSp)
	evalSp.SetAttr("segments", strconv.Itoa(len(res)))
	evalSp.Finish()
	if err != nil {
		return nil, err
	}
	return postProcess(q, v.Duration, res), nil
}

// evalCond mirrors Engine.eval node for node. Event, text and feature
// leaves read only the appended tail through their caches; object
// leaves delegate to the one-shot path (the object layer is not
// append-streamed); combination operators reuse the engine's set
// algebra verbatim, which is what makes incremental output provably
// identical to a full re-scan.
func (inc *Incremental) evalCond(ctx context.Context, cat *cobra.Catalog, video string, duration float64, c Cond, span *obs.Span) ([]Result, error) {
	switch n := c.(type) {
	case *EventCond:
		leaf := span.StartChild("eval:event")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("type", n.Type)
		defer leaf.Finish()
		evs := inc.eventRows(cat, video, n.Type, c, leaf)
		var out []Result
		for _, ev := range evs {
			if !attrsMatch(ev.Attrs, n.Attrs) {
				continue
			}
			out = append(out, Result{Interval: ev.Interval, Confidence: ev.Confidence, Attrs: ev.Attrs})
		}
		return out, nil

	case *TextCond:
		leaf := span.StartChild("eval:text")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("word", n.Word)
		defer leaf.Finish()
		evs := inc.eventRows(cat, video, CaptionEventType, c, leaf)
		var out []Result
		for _, ev := range evs {
			if strings.EqualFold(ev.Attr("word"), n.Word) {
				out = append(out, Result{Interval: ev.Interval, Confidence: ev.Confidence, Attrs: ev.Attrs})
			}
		}
		return out, nil

	case *FeatureCond:
		leaf := span.StartChild("eval:feature")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("feature", n.Name)
		defer leaf.Finish()
		return inc.featureRows(cat, video, n, leaf)

	case *ObjectCond:
		return inc.eng.eval(ctx, cat, video, duration, n, span)

	case *NotCond:
		op := span.StartChild("eval:not")
		op.SetAttr("level", "logical")
		defer op.Finish()
		x, err := inc.evalCond(ctx, cat, video, duration, n.X, op)
		if err != nil {
			return nil, err
		}
		return complement(x, duration), nil

	case *AndCond:
		op := span.StartChild("eval:and")
		op.SetAttr("level", "logical")
		defer op.Finish()
		l, r, err := inc.evalBoth(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return intersect(l, r), nil

	case *OrCond:
		op := span.StartChild("eval:or")
		op.SetAttr("level", "logical")
		defer op.Finish()
		l, r, err := inc.evalBoth(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil

	case *TemporalCond:
		op := span.StartChild("eval:temporal")
		op.SetAttr("level", "logical")
		op.SetAttr("rel", n.Rel)
		defer op.Finish()
		l, r, err := inc.evalBoth(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return temporalSemijoin(l, r, n.Rel, n.Gap)
	}
	return nil, fmt.Errorf("query: unknown condition %T", c)
}

// evalBoth evaluates a binary condition's operands sequentially. The
// one-shot engine fans the pair out on the kernel pool; standing
// queries get their parallelism across subscriptions instead, and
// sequential evaluation keeps the per-node leaf caches free of locks.
func (inc *Incremental) evalBoth(ctx context.Context, cat *cobra.Catalog, video string, duration float64, l, r Cond, span *obs.Span) ([]Result, []Result, error) {
	lRes, lErr := inc.evalCond(ctx, cat, video, duration, l, span)
	rRes, rErr := inc.evalCond(ctx, cat, video, duration, r, span)
	return lRes, rRes, errors.Join(lErr, rErr)
}

// eventRows returns the accumulated events of one type in start order,
// reading only rows appended since the leaf's watermark.
func (inc *Incremental) eventRows(cat *cobra.Catalog, video, typ string, key Cond, span *obs.Span) []cobra.Event {
	leaf := inc.events[key]
	if leaf == nil {
		leaf = &eventLeaf{}
		inc.events[key] = leaf
	}
	scan := scanSpan(span, "cobra/event/"+video+"/*")
	fresh, upTo := cat.EventsSince(video, typ, leaf.rows)
	scan.SetAttr("rows", strconv.Itoa(len(fresh)))
	scan.SetAttr("access", "tail from="+strconv.Itoa(leaf.rows))
	scan.Resources().AddScanned(len(fresh))
	scan.Finish()
	leaf.evs = append(leaf.evs, fresh...)
	leaf.rows = upTo
	out := append([]cobra.Event(nil), leaf.evs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// featureRows advances a feature leaf's run-detection state over the
// appended samples and returns all runs found so far, including the
// provisional run still open at the watermark (exactly what a full
// featureRuns scan would report).
func (inc *Incremental) featureRows(cat *cobra.Catalog, video string, n *FeatureCond, span *obs.Span) ([]Result, error) {
	st := inc.features[n]
	if st == nil {
		st = &featureLeaf{}
		inc.features[n] = st
	}
	scan := scanSpan(span, "cobra/feature/"+video+"/"+n.Name)
	vals, rate, total, err := cat.FeatureTail(video, n.Name, st.rows)
	if err != nil {
		scan.SetAttr("error", err.Error())
		scan.Finish()
		return nil, err
	}
	scan.SetAttr("rows", strconv.Itoa(len(vals)))
	scan.SetAttr("access", "tail from="+strconv.Itoa(st.rows))
	scan.Resources().AddScanned(len(vals))
	scan.Finish()
	test := featureTest(n.Op, n.Val)
	step := 1 / rate
	for k, v := range vals {
		t := float64(st.rows+k) * step
		if test(v) {
			if !st.open {
				st.open = true
				st.start = t
			}
			continue
		}
		if st.open {
			st.open = false
			if t-st.start >= minRunDur {
				st.closed = append(st.closed, Result{Interval: cobra.Interval{Start: st.start, End: t}, Confidence: 1})
			}
		}
	}
	st.rows = total
	out := append([]Result(nil), st.closed...)
	if st.open {
		end := float64(total) * step
		if end-st.start >= minRunDur {
			out = append(out, Result{Interval: cobra.Interval{Start: st.start, End: end}, Confidence: 1})
		}
	}
	return out, nil
}
