package query

import (
	"container/list"
	"strconv"
	"sync"

	"cobra/internal/obs"
)

// Prepared-plan cache: EXPLAIN compiles a COQL statement into a
// verified MIL access plan — parse, emit, milcheck, access-path
// costing — and none of that work depends on anything but the query's
// canonical form and the state of its dependency BATs. The PlanCache
// memoizes the compiled Explanation under (Canonical, dep-epoch
// fingerprint), so the server's hot EXPLAIN path and the execute
// path's plan annotations skip recompilation until a dependency
// actually changes: preparing a statement is paying the compile cost
// once per epoch, not once per request.
var (
	cPlanHits   = obs.C("plancache.hits")
	cPlanMisses = obs.C("plancache.misses")
)

// DefaultPlanEntries bounds a zero-configured plan cache. Plans are a
// few hundred bytes; 256 of them is noise.
const DefaultPlanEntries = 256

// PlanCache memoizes compiled Explanations. Safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits, misses int64
}

// planEntry is one cached compilation.
type planEntry struct {
	key string
	ex  *Explanation
}

// NewPlanCache returns an empty plan cache holding at most max
// compiled plans (DefaultPlanEntries when max <= 0).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanEntries
	}
	return &PlanCache{max: max, entries: map[string]*list.Element{}, lru: list.New()}
}

// Explain returns the compiled, verified plan for src, reusing a
// cached compilation when the canonical query and its dependency
// epochs both match. hit reports whether compilation was skipped.
// Parse errors are returned uncached — they are cheap to rediscover
// and keying on raw source would let typo'd spellings crowd out real
// plans.
func (pc *PlanCache) Explain(e *Engine, src string) (ex *Explanation, hit bool, err error) {
	q, err := Parse(src)
	if err != nil {
		return nil, false, err
	}
	key := q.Canonical() + "\x00" + pc.fingerprint(e, q)
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits++
		ex = el.Value.(*planEntry).ex
		pc.mu.Unlock()
		cPlanHits.Inc()
		return ex, true, nil
	}
	pc.misses++
	pc.mu.Unlock()
	cPlanMisses.Inc()

	ex = e.explainQuery(q)
	pc.mu.Lock()
	if _, ok := pc.entries[key]; !ok {
		pc.entries[key] = pc.lru.PushFront(&planEntry{key: key, ex: ex})
		for pc.lru.Len() > pc.max {
			back := pc.lru.Back()
			delete(pc.entries, back.Value.(*planEntry).key)
			pc.lru.Remove(back)
		}
	}
	pc.mu.Unlock()
	return ex, false, nil
}

// fingerprint renders the epochs of the query's dependency set. A
// dependency epoch move re-keys the plan rather than deleting it:
// stale keys age out through the LRU. Compilation reads more than the
// result rows do (schema shape, index state for access-path
// annotations), all of which only changes alongside the dependency
// BATs themselves.
func (pc *PlanCache) fingerprint(e *Engine, q *Query) string {
	store := e.pre.Catalog().Store()
	deps := DepNamesOf(q)
	epochs := store.Epochs(deps)
	buf := make([]byte, 0, 8*len(epochs))
	for i, ep := range epochs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, ep, 10)
	}
	return string(buf)
}

// Stats reports hit/miss counts and current population.
func (pc *PlanCache) Stats() (hits, misses, entries int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, int64(len(pc.entries))
}
