package query

import (
	"strings"
	"testing"
)

func TestExplainEventQueryVerifies(t *testing.T) {
	e := testEngine(t)
	ex, err := e.Explain(`SELECT SEGMENTS FROM v WHERE EVENT('pitstop', driver='BARRICHELLO')`)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.OK() {
		t.Fatalf("plan has errors:\n%s", ex)
	}
	if len(ex.Diags) != 0 {
		t.Errorf("plan should be warning-clean, got:\n%s", ex)
	}
	for _, want := range []string{
		`bat("cobra/event/v/type").uselect("pitstop")`,
		`bat("cobra/event/v/start").semijoin(s1)`,
		"RETURN res_start;",
		"# milcheck: plan OK",
	} {
		if !strings.Contains(ex.String(), want) {
			t.Errorf("explanation missing %q:\n%s", want, ex)
		}
	}
}

func TestExplainCompositeQueryVerifies(t *testing.T) {
	e := testEngine(t)
	ex, err := e.Explain(`SELECT SEGMENTS FROM v WHERE
		(EVENT('highlight') AND TEXT CONTAINS 'SCHUMACHER')
		OR FEATURE('dust') >= 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Diags) != 0 {
		t.Fatalf("composite plan should be clean, got:\n%s", ex)
	}
	for _, want := range []string{
		".semijoin(", // the AND node
		".kunion(",   // the OR node
		`threshold(bat("cobra/feature/v/dust"), 0.5)`, // the feature scan
	} {
		if !strings.Contains(ex.Plan, want) {
			t.Errorf("plan missing %q:\n%s", want, ex.Plan)
		}
	}
}

func TestExplainTemporalAndNot(t *testing.T) {
	e := testEngine(t)
	ex, err := e.Explain(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') WITHIN 10 S OF EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Diags) != 0 {
		t.Fatalf("temporal plan should be clean:\n%s", ex)
	}
	if !strings.Contains(ex.Plan, "WITHIN") {
		t.Errorf("temporal relation not annotated:\n%s", ex.Plan)
	}

	ex, err = e.Explain(`SELECT SEGMENTS FROM v WHERE NOT EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Diags) != 0 {
		t.Fatalf("NOT plan should be clean:\n%s", ex)
	}
}

func TestExplainNoWhere(t *testing.T) {
	e := testEngine(t)
	ex, err := e.Explain(`RETRIEVE EVENTS FROM v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Diags) != 0 {
		t.Fatalf("no-WHERE plan should be clean:\n%s", ex)
	}
	if !strings.Contains(ex.Plan, `bat("cobra/videos").find("v")`) {
		t.Errorf("plan = %s", ex.Plan)
	}
}

func TestExplainUnknownVideoDiagnoses(t *testing.T) {
	// Scanning a video absent from the catalog must surface as
	// unknown-bat diagnostics carrying positions, not silently pass as
	// clean nor panic.
	e := testEngine(t)
	ex, err := e.Explain(`SELECT SEGMENTS FROM nosuch WHERE EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Diags) == 0 {
		t.Fatalf("expected unknown-bat diagnostics:\n%s", ex)
	}
	found := false
	for _, d := range ex.Diags {
		if d.Code == "unknown-bat" {
			found = true
			if d.Line <= 0 || d.Col <= 0 {
				t.Errorf("diagnostic lacks position: %s", d)
			}
		}
	}
	if !found {
		t.Errorf("no unknown-bat diagnostic in:\n%s", ex)
	}
}

func TestExplainParseError(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Explain(`SELECT SEGMENTS FROM`); err == nil {
		t.Fatal("expected a parse error")
	}
}
