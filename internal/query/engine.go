package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/rules"
)

// Query-level metrics. The latency histogram backs the server's STATS
// p50/p95/p99 report; slow queries additionally land in
// obs.DefaultSlowLog.
var (
	cQueries     = obs.C("coql.queries")
	cQueryErrors = obs.C("coql.query.errors")
	hQueryLat    = obs.H("coql.query.latency")
)

// Result is one retrieved video segment.
type Result struct {
	Interval   cobra.Interval
	Confidence float64
	Attrs      map[string]string
}

// CaptionEventType is the event type under which recognized
// superimposed-text words are stored in the catalog; TextCond queries
// read it.
const CaptionEventType = "caption"

// Engine evaluates COQL queries against a catalog, routing missing
// metadata through the query preprocessor.
type Engine struct {
	pre *cobra.Preprocessor
	// MinQuality is the quality floor passed to the preprocessor.
	MinQuality float64
	// NoIndex forces feature conditions down the legacy full-load
	// path, bypassing the kernel's adaptive access paths. Used by
	// equivalence tests and as an escape hatch.
	NoIndex bool
}

// NewEngine returns a query engine over the preprocessor.
func NewEngine(pre *cobra.Preprocessor) *Engine {
	return &Engine{pre: pre, MinQuality: 0.5}
}

// Run parses and executes a COQL statement.
func (e *Engine) Run(src string) ([]Result, error) {
	res, _, err := e.RunTraced(src)
	return res, err
}

// RunTraced parses and executes a COQL statement under a fresh trace;
// see RunTracedCtx.
func (e *Engine) RunTraced(src string) ([]Result, *obs.Span, error) {
	return e.RunTracedCtx(context.Background(), src)
}

// RunTracedCtx parses and executes a COQL statement as one trace: the
// root "coql.query" span gets a process-unique trace ID and a shared
// resource accumulator, and the span handle rides ctx down through the
// preprocessor, the moa condition evaluator, and the monet kernel's
// morsel fan-outs. The span tree covers all three levels of the stack:
// conceptual (parse, preprocessing, method selection), logical
// (condition-tree evaluation) and physical (kernel selects with their
// cost-gate access paths and per-morsel queue-wait/run timings).
//
// On completion the trace is pushed to obs.DefaultTraces (TRACEDUMP's
// ring) and, when slow enough, to obs.DefaultSlowLog with its full
// span tree. The span is returned even on error, annotated with the
// failure.
func (e *Engine) RunTracedCtx(ctx context.Context, src string) ([]Result, *obs.Span, error) {
	root := obs.StartTrace("coql.query")
	root.SetAttr("level", "conceptual")
	root.SetAttr("query", src)
	cQueries.Inc()
	allocStart := obs.HeapAllocBytes()
	ctx = obs.ContextWithSpan(ctx, root)

	finish := func(nRes int, err error) {
		res := root.Resources()
		res.RowsReturned.Store(int64(nRes))
		res.AllocBytes.Store(obs.HeapAllocBytes() - allocStart)
		errStr := ""
		if err != nil {
			cQueryErrors.Inc()
			errStr = err.Error()
			root.SetAttr("error", errStr)
		}
		stat := res.Stat()
		root.SetAttr("resources", stat.String())
		d := root.Finish()
		hQueryLat.Observe(d)
		obs.DefaultTraces.Add(obs.Trace{
			ID:       root.TraceID(),
			Query:    src,
			Start:    root.StartTime(),
			Duration: d,
			Err:      errStr,
			Res:      stat,
			Root:     root,
		})
		obs.DefaultSlowLog.RecordTrace(src, d, root)
	}

	parseSp := root.StartChild("coql.parse")
	parseSp.SetAttr("level", "conceptual")
	q, err := Parse(src)
	parseSp.Finish()
	if err != nil {
		finish(0, err)
		return nil, root, err
	}
	res, err := e.executeTraced(ctx, q, root)
	finish(len(res), err)
	return res, root, err
}

// Execute evaluates a parsed query: it ensures required metadata is
// materialized, then evaluates the condition tree bottom-up over
// segment sets. Event types no engine provides are treated as
// user-defined, materialized-only types (they evaluate against
// whatever the catalog holds, possibly nothing); other extraction
// failures abort the query.
func (e *Engine) Execute(q *Query) ([]Result, error) {
	return e.executeTraced(context.Background(), q, nil)
}

// executeTraced is Execute with an optional (nil-safe) parent span;
// ctx carries the trace for the kernel layers below.
func (e *Engine) executeTraced(ctx context.Context, q *Query, span *obs.Span) ([]Result, error) {
	reqs := requirements(q.Where)
	ensSp := span.StartChild("preprocess.ensure")
	ensSp.SetAttr("level", "conceptual")
	plan, err := e.pre.EnsureTraced(q.Video, reqs, e.MinQuality, ensSp)
	if plan != nil {
		ensSp.SetAttr("satisfied", strconv.Itoa(len(plan.Satisfied)))
		ensSp.SetAttr("ran", strconv.Itoa(len(plan.Ran)))
	}
	ensSp.Finish()
	if err != nil && !errors.Is(err, cobra.ErrNoExtractor) {
		return nil, err
	}
	cat := e.pre.Catalog()
	v, err := cat.Video(q.Video)
	if err != nil {
		return nil, err
	}
	if q.Where == nil {
		whole := []Result{{Interval: cobra.Interval{Start: 0, End: v.Duration}, Confidence: 1}}
		return postProcess(q, v.Duration, whole), nil
	}
	evalSp := span.StartChild("moa.eval")
	evalSp.SetAttr("level", "logical")
	res, err := e.eval(ctx, cat, q.Video, v.Duration, q.Where, evalSp)
	evalSp.SetAttr("segments", strconv.Itoa(len(res)))
	evalSp.Finish()
	if err != nil {
		return nil, err
	}
	return postProcess(q, v.Duration, res), nil
}

// postProcess applies the query's trailing-window filter, ordering and
// limit to an evaluated segment set. Shared by the one-shot executor
// and the incremental (streaming) evaluator so both render identical
// results for the same watermark.
func postProcess(q *Query, duration float64, res []Result) []Result {
	if q.Window > 0 {
		cut := duration - q.Window
		kept := make([]Result, 0, len(res))
		for _, r := range res {
			if r.Interval.End > cut {
				kept = append(kept, r)
			}
		}
		res = kept
	}
	less := func(i, j int) bool { return res[i].Interval.Start < res[j].Interval.Start }
	if q.OrderBy == "confidence" {
		less = func(i, j int) bool {
			if res[i].Confidence != res[j].Confidence {
				return res[i].Confidence < res[j].Confidence
			}
			return res[i].Interval.Start < res[j].Interval.Start
		}
	}
	if q.Desc {
		inner := less
		less = func(i, j int) bool { return inner(j, i) }
	}
	sort.SliceStable(res, less)
	if q.Limit > 0 && len(res) > q.Limit {
		res = res[:q.Limit]
	}
	return res
}

// requirements walks the condition tree collecting metadata needs.
func requirements(c Cond) []cobra.Requirement {
	seen := map[string]bool{}
	var out []cobra.Requirement
	add := func(r cobra.Requirement) {
		k := r.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	var walk func(Cond)
	walk = func(c Cond) {
		switch n := c.(type) {
		case *EventCond:
			add(cobra.Requirement{Kind: cobra.NeedEvents, Name: n.Type})
		case *TextCond:
			add(cobra.Requirement{Kind: cobra.NeedEvents, Name: CaptionEventType})
		case *ObjectCond:
			add(cobra.Requirement{Kind: cobra.NeedObjects, Name: ""})
		case *FeatureCond:
			add(cobra.Requirement{Kind: cobra.NeedFeature, Name: n.Name})
		case *NotCond:
			walk(n.X)
		case *AndCond:
			walk(n.L)
			walk(n.R)
		case *OrCond:
			walk(n.L)
			walk(n.R)
		case *TemporalCond:
			walk(n.L)
			walk(n.R)
		}
	}
	if c != nil {
		walk(c)
	}
	return out
}

// scanSpan opens a physical-level span for a catalog/BAT scan; the
// caller finishes it via the returned func after recording row counts.
func scanSpan(parent *obs.Span, bat string) *obs.Span {
	sp := parent.StartChild("monet.scan")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", bat)
	return sp
}

func (e *Engine) eval(ctx context.Context, cat *cobra.Catalog, video string, duration float64, c Cond, span *obs.Span) ([]Result, error) {
	switch n := c.(type) {
	case *EventCond:
		leaf := span.StartChild("eval:event")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("type", n.Type)
		defer leaf.Finish()
		scan := scanSpan(leaf, "cobra/event/"+video+"/*")
		evs := cat.Events(video, n.Type)
		scan.SetAttr("rows", strconv.Itoa(len(evs)))
		scan.Resources().AddScanned(len(evs))
		scan.Finish()
		var out []Result
		for _, ev := range evs {
			if !attrsMatch(ev.Attrs, n.Attrs) {
				continue
			}
			out = append(out, Result{Interval: ev.Interval, Confidence: ev.Confidence, Attrs: ev.Attrs})
		}
		return out, nil

	case *ObjectCond:
		leaf := span.StartChild("eval:object")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("name", n.Name)
		defer leaf.Finish()
		scan := scanSpan(leaf, "cobra/object/"+video+"/appearances")
		obj, err := cat.Object(video, n.Name)
		scan.Finish()
		if err != nil {
			return nil, nil // object never appears: empty result
		}
		var out []Result
		for _, iv := range obj.Appearances {
			out = append(out, Result{Interval: iv, Confidence: 1,
				Attrs: map[string]string{"object": obj.Name, "class": obj.Class}})
		}
		return out, nil

	case *TextCond:
		leaf := span.StartChild("eval:text")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("word", n.Word)
		defer leaf.Finish()
		scan := scanSpan(leaf, "cobra/event/"+video+"/*")
		evs := cat.Events(video, CaptionEventType)
		scan.SetAttr("rows", strconv.Itoa(len(evs)))
		scan.Resources().AddScanned(len(evs))
		scan.Finish()
		var out []Result
		for _, ev := range evs {
			if strings.EqualFold(ev.Attr("word"), n.Word) {
				out = append(out, Result{Interval: ev.Interval, Confidence: ev.Confidence, Attrs: ev.Attrs})
			}
		}
		return out, nil

	case *FeatureCond:
		leaf := span.StartChild("eval:feature")
		leaf.SetAttr("level", "logical")
		leaf.SetAttr("feature", n.Name)
		defer leaf.Finish()
		if out, ok := e.indexedFeatureRuns(ctx, cat, video, n, leaf); ok {
			return out, nil
		}
		scan := scanSpan(leaf, "cobra/feature/"+video+"/"+n.Name)
		scan.SetAttr("access", "path=scan (legacy)")
		f, err := cat.Feature(video, n.Name)
		if err == nil {
			scan.SetAttr("rows", strconv.Itoa(len(f.Values)))
			scan.Resources().AddScanned(len(f.Values))
		}
		scan.Finish()
		if err != nil {
			return nil, err
		}
		return featureRuns(f, n.Op, n.Val)

	case *NotCond:
		op := span.StartChild("eval:not")
		op.SetAttr("level", "logical")
		defer op.Finish()
		x, err := e.eval(ctx, cat, video, duration, n.X, op)
		if err != nil {
			return nil, err
		}
		return complement(x, duration), nil

	case *AndCond:
		op := span.StartChild("eval:and")
		op.SetAttr("level", "logical")
		defer op.Finish()
		l, r, err := e.evalPair(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return intersect(l, r), nil

	case *OrCond:
		op := span.StartChild("eval:or")
		op.SetAttr("level", "logical")
		defer op.Finish()
		l, r, err := e.evalPair(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil

	case *TemporalCond:
		op := span.StartChild("eval:temporal")
		op.SetAttr("level", "logical")
		op.SetAttr("rel", n.Rel)
		defer op.Finish()
		l, r, err := e.evalPair(ctx, cat, video, duration, n.L, n.R, op)
		if err != nil {
			return nil, err
		}
		return temporalSemijoin(l, r, n.Rel, n.Gap)
	}
	return nil, fmt.Errorf("query: unknown condition %T", c)
}

// evalPair evaluates the two operands of a binary condition as tasks
// on the shared kernel pool, so independent subtrees of the condition
// tree overlap (catalog reads go through the store's read lock and
// spans are concurrency-safe). Errors from both sides are joined.
func (e *Engine) evalPair(ctx context.Context, cat *cobra.Catalog, video string, duration float64, l, r Cond, span *obs.Span) ([]Result, []Result, error) {
	var lRes, rRes []Result
	var lErr, rErr error
	batch := monet.DefaultPool().Batch()
	batch.Submit(func() { lRes, lErr = e.eval(ctx, cat, video, duration, l, span) })
	batch.Submit(func() { rRes, rErr = e.eval(ctx, cat, video, duration, r, span) })
	batch.Wait()
	return lRes, rRes, errors.Join(lErr, rErr)
}

func attrsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if !strings.EqualFold(have[k], v) {
			return false
		}
	}
	return true
}

// minRunDur is the noise floor for feature runs: threshold crossings
// shorter than this are discarded, on both evaluation paths.
const minRunDur = 0.3

// featureBounds converts a COQL comparison into the inclusive range
// the kernel's select understands; ok=false when the operator has no
// range form or the bound would not survive the float successor trick
// (NaN and infinite thresholds stay on the legacy path).
func featureBounds(op string, val float64) (lo, hi float64, ok bool) {
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return 0, 0, false
	}
	switch op {
	case ">":
		return math.Nextafter(val, math.Inf(1)), math.Inf(1), true
	case ">=":
		return val, math.Inf(1), true
	case "<":
		return math.Inf(-1), math.Nextafter(val, math.Inf(-1)), true
	case "<=":
		return math.Inf(-1), val, true
	case "=":
		return val, val, true
	}
	return 0, 0, false
}

// indexedFeatureRuns evaluates a feature condition through the
// kernel's fused select→runs pipeline: the threshold becomes an
// inclusive range select over the stored series whose qualifying
// positions come back as maximal runs — on the fused path no
// intermediate position list is materialized at all, and zone map,
// cracker or dictionary answer the predicate without loading the
// column into Go values. ok=false falls back to the legacy full-load
// path — when indexing is disabled, the operator has no range form,
// or the unfused kernel answered with a plain scan (a scan's Compare
// treats NaN as matching any range, so only fused loops — whose gate
// proves the column NaN-free — and NaN-free indexed paths are
// guaranteed equivalent to the legacy float comparison).
func (e *Engine) indexedFeatureRuns(ctx context.Context, cat *cobra.Catalog, video string, n *FeatureCond, leaf *obs.Span) ([]Result, bool) {
	if e.NoIndex {
		return nil, false
	}
	lo, hi, ok := featureBounds(n.Op, n.Val)
	if !ok {
		return nil, false
	}
	rate, total, err := cat.FeatureMeta(video, n.Name)
	if err != nil {
		return nil, false
	}
	runs, fi, err := cat.FeatureRunsCtx(obs.ContextWithSpan(ctx, leaf), video, n.Name, lo, hi)
	if err != nil || (!fi.Fused && (fi.Access == nil || fi.Access.Path == monet.PathScan)) {
		return nil, false
	}
	scan := scanSpan(leaf, "cobra/feature/"+video+"/"+n.Name)
	scan.SetAttr("rows", strconv.Itoa(total))
	scan.SetAttr("access", fi.Access.String())
	scan.SetAttr("fused", fi.String())
	scan.Finish()
	return resultsFromRuns(runs, rate), true
}

// resultsFromRuns converts the kernel's qualifying-position runs into
// segments, with boundaries and noise floor identical to featureRuns:
// a run of consecutive positions a..b spans [a*step, (b+1)*step).
func resultsFromRuns(runs []monet.Run, rate float64) []Result {
	step := 1 / rate
	var out []Result
	for _, r := range runs {
		start := float64(r.Start) * step
		end := float64(r.Start+r.Len) * step
		if end-start >= minRunDur {
			out = append(out, Result{Interval: cobra.Interval{Start: start, End: end}, Confidence: 1})
		}
	}
	return out
}

// featureTest compiles a COQL comparison operator into a per-sample
// predicate; unknown operators match nothing.
func featureTest(op string, val float64) func(float64) bool {
	return func(v float64) bool {
		switch op {
		case ">":
			return v > val
		case ">=":
			return v >= val
		case "<":
			return v < val
		case "<=":
			return v <= val
		case "=":
			return v == val
		}
		return false
	}
}

// featureRuns converts threshold-satisfying runs of a feature series
// into segments (runs shorter than 0.3 s are noise).
func featureRuns(f cobra.Feature, op string, val float64) ([]Result, error) {
	test := featureTest(op, val)
	step := 1 / f.SampleRate
	var out []Result
	open := false
	start := 0.0
	for i, v := range f.Values {
		t := float64(i) * step
		if test(v) {
			if !open {
				open = true
				start = t
			}
			continue
		}
		if open {
			open = false
			if t-start >= minRunDur {
				out = append(out, Result{Interval: cobra.Interval{Start: start, End: t}, Confidence: 1})
			}
		}
	}
	if open {
		end := float64(len(f.Values)) * step
		if end-start >= minRunDur {
			out = append(out, Result{Interval: cobra.Interval{Start: start, End: end}, Confidence: 1})
		}
	}
	return out, nil
}

// intersect pairs overlapping segments from both sides, returning the
// intersection intervals with merged attributes and the minimum
// confidence.
func intersect(l, r []Result) []Result {
	var out []Result
	for _, a := range l {
		for _, b := range r {
			if !a.Interval.Intersects(b.Interval) {
				continue
			}
			iv := a.Interval
			if b.Interval.Start > iv.Start {
				iv.Start = b.Interval.Start
			}
			if b.Interval.End < iv.End {
				iv.End = b.Interval.End
			}
			conf := a.Confidence
			if b.Confidence < conf {
				conf = b.Confidence
			}
			attrs := map[string]string{}
			for k, v := range a.Attrs {
				attrs[k] = v
			}
			for k, v := range b.Attrs {
				attrs[k] = v
			}
			out = append(out, Result{Interval: iv, Confidence: conf, Attrs: attrs})
		}
	}
	return out
}

// temporalSemijoin keeps left segments standing in the relation to at
// least one right segment.
func temporalSemijoin(l, r []Result, rel string, gap float64) ([]Result, error) {
	var rels []rules.Relation
	switch rel {
	case "before":
		rels = []rules.Relation{rules.Before, rules.Meets}
	case "after":
		rels = []rules.Relation{rules.After, rules.MetBy}
	case "during":
		rels = []rules.Relation{rules.During, rules.Starts, rules.Finishes, rules.Equals}
	case "overlaps":
		rels = []rules.Relation{rules.Overlaps, rules.OverlappedBy, rules.During,
			rules.Contains, rules.Starts, rules.StartedBy, rules.Finishes,
			rules.FinishedBy, rules.Equals}
	case "meets":
		rels = []rules.Relation{rules.Meets, rules.MetBy}
	case "within":
		// handled separately below
	default:
		return nil, fmt.Errorf("query: unknown temporal relation %q", rel)
	}
	var out []Result
	for _, a := range l {
		matched := false
		for _, b := range r {
			if rel == "within" {
				if gapBetween(a.Interval, b.Interval) <= gap {
					matched = true
				}
			} else {
				for _, rr := range rels {
					if rules.Holds(rr, a.Interval, b.Interval) {
						// Respect the gap for before/after if set.
						matched = true
						break
					}
				}
			}
			if matched {
				break
			}
		}
		if matched {
			out = append(out, a)
		}
	}
	return out, nil
}

// gapBetween returns 0 for intersecting intervals, else the distance
// between their closest endpoints.
func gapBetween(a, b rules.Interval) float64 {
	if a.Intersects(b) {
		return 0
	}
	if a.End <= b.Start {
		return b.Start - a.End
	}
	return a.Start - b.End
}

// complement returns the gaps the given segments leave within
// [0, duration).
func complement(res []Result, duration float64) []Result {
	sorted := append([]Result(nil), res...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Interval.Start < sorted[j].Interval.Start })
	var out []Result
	cursor := 0.0
	for _, r := range sorted {
		if r.Interval.Start > cursor {
			out = append(out, Result{Interval: cobra.Interval{Start: cursor, End: r.Interval.Start}, Confidence: 1})
		}
		if r.Interval.End > cursor {
			cursor = r.Interval.End
		}
	}
	if cursor < duration {
		out = append(out, Result{Interval: cobra.Interval{Start: cursor, End: duration}, Confidence: 1})
	}
	return out
}
