package query

import (
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/monet"
)

func TestParseBasics(t *testing.T) {
	q, err := Parse(`SELECT SEGMENTS FROM german-gp WHERE EVENT('pitstop', driver='BARRICHELLO')`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "segments" || q.Video != "german-gp" {
		t.Fatalf("query = %+v", q)
	}
	ec, ok := q.Where.(*EventCond)
	if !ok || ec.Type != "pitstop" || ec.Attrs["driver"] != "BARRICHELLO" {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseRetrieveAlias(t *testing.T) {
	q, err := Parse(`RETRIEVE EVENTS FROM v`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "events" || q.Where != nil {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseComposite(t *testing.T) {
	q, err := Parse(`select segments from v where
		(EVENT('highlight') AND TEXT CONTAINS 'SCHUMACHER')
		OR FEATURE('dust') >= 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(*OrCond)
	if !ok {
		t.Fatalf("root = %#v", q.Where)
	}
	if _, ok := or.L.(*AndCond); !ok {
		t.Fatalf("left = %#v", or.L)
	}
	fc, ok := or.R.(*FeatureCond)
	if !ok || fc.Op != ">=" || fc.Val != 0.5 {
		t.Fatalf("right = %#v", or.R)
	}
}

func TestParseTemporal(t *testing.T) {
	q, err := Parse(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') WITHIN 10 S OF EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	tc, ok := q.Where.(*TemporalCond)
	if !ok || tc.Rel != "within" || tc.Gap != 10 {
		t.Fatalf("where = %#v", q.Where)
	}
	q, err = Parse(`SELECT SEGMENTS FROM v WHERE EVENT('start') BEFORE EVENT('flyout')`)
	if err != nil {
		t.Fatal(err)
	}
	if tc := q.Where.(*TemporalCond); tc.Rel != "before" {
		t.Fatalf("rel = %v", tc.Rel)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT SEGMENTS`,
		`SELECT SEGMENTS FROM`,
		`SELECT SEGMENTS FROM v WHERE`,
		`SELECT SEGMENTS FROM v WHERE EVENT(pitstop)`,
		`SELECT SEGMENTS FROM v WHERE EVENT('x'`,
		`SELECT SEGMENTS FROM v WHERE FEATURE('x') >`,
		`SELECT SEGMENTS FROM v WHERE TEXT 'X'`,
		`SELECT SEGMENTS FROM v WHERE EVENT('x') WITHIN OF EVENT('y')`,
		`SELECT SEGMENTS FROM v trailing`,
		`SELECT SEGMENTS FROM v WHERE EVENT('x') AND`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// testEngine builds a populated catalog with a passthrough
// preprocessor.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	cat := cobra.NewCatalog(monet.NewStore())
	if err := cat.PutVideo(cobra.Video{Name: "v", Duration: 300, FPS: 10}); err != nil {
		t.Fatal(err)
	}
	cat.PutEvents("v", []cobra.Event{
		{Type: "highlight", Interval: cobra.Interval{Start: 30, End: 45}, Confidence: 0.9},
		{Type: "highlight", Interval: cobra.Interval{Start: 100, End: 112}, Confidence: 0.8},
		{Type: "pitstop", Interval: cobra.Interval{Start: 104, End: 118}, Confidence: 1,
			Attrs: map[string]string{"driver": "BARRICHELLO"}},
		{Type: "pitstop", Interval: cobra.Interval{Start: 200, End: 214}, Confidence: 1,
			Attrs: map[string]string{"driver": "MONTOYA"}},
		{Type: "flyout", Interval: cobra.Interval{Start: 150, End: 160}, Confidence: 0.7},
		{Type: CaptionEventType, Interval: cobra.Interval{Start: 105, End: 110}, Confidence: 1,
			Attrs: map[string]string{"word": "BARRICHELLO"}},
		{Type: CaptionEventType, Interval: cobra.Interval{Start: 105, End: 110}, Confidence: 1,
			Attrs: map[string]string{"word": "PIT"}},
	})
	dust := make([]float64, 3000)
	for i := 1500; i < 1620; i++ {
		dust[i] = 0.8
	}
	cat.PutFeature(cobra.Feature{Video: "v", Name: "dust", SampleRate: 10, Values: dust})
	return NewEngine(cobra.NewPreprocessor(cat))
}

func TestExecuteEventQuery(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('pitstop', driver='BARRICHELLO')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 104 {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteTextQuery(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE TEXT CONTAINS 'pit'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 105 {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteAndIntersection(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') AND EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	iv := res[0].Interval
	if iv.Start != 104 || iv.End != 112 {
		t.Fatalf("intersection = %v", iv)
	}
	if res[0].Attrs["driver"] != "BARRICHELLO" {
		t.Fatalf("attrs = %v", res[0].Attrs)
	}
	if res[0].Confidence != 0.8 {
		t.Fatalf("confidence = %v", res[0].Confidence)
	}
}

func TestExecuteOrUnion(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('flyout') OR EVENT('pitstop')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteFeatureThreshold(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE FEATURE('dust') > 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Interval.Start != 150 || res[0].Interval.End != 162 {
		t.Fatalf("run = %v", res[0].Interval)
	}
}

func TestExecuteTemporalWithin(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') WITHIN 5 OF EVENT('flyout')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results = %v (flyout at 150 is 38 s after highlight end)", res)
	}
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('pitstop') WITHIN 35 OF EVENT('flyout')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Attrs["driver"] != "BARRICHELLO" {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteTemporalBefore(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') BEFORE EVENT('flyout')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteNoWhere(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.End != 300 {
		t.Fatalf("results = %v", res)
	}
}

func TestExecuteUnknownVideo(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Run(`SELECT SEGMENTS FROM nope WHERE EVENT('highlight')`); err == nil {
		t.Fatal("unknown video accepted")
	}
}

// TestDynamicExtraction verifies the preprocessor hook: querying an
// unmaterialized event type invokes the registered engine.
func TestDynamicExtraction(t *testing.T) {
	cat := cobra.NewCatalog(monet.NewStore())
	cat.PutVideo(cobra.Video{Name: "v", Duration: 100, FPS: 10})
	pre := cobra.NewPreprocessor(cat)
	calls := 0
	pre.Register(cobra.ExtractorFunc{
		EngineName: "dbn-highlights",
		Outputs:    []cobra.Requirement{{Kind: cobra.NeedEvents, Name: "highlight"}},
		CostVal:    5, QualityVal: 0.9,
		Fn: func(cat *cobra.Catalog, video string) error {
			calls++
			return cat.PutEvents(video, []cobra.Event{
				{Type: "highlight", Interval: cobra.Interval{Start: 10, End: 20}, Confidence: 0.9},
			})
		},
	})
	e := NewEngine(pre)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(res) != 1 {
		t.Fatalf("calls=%d results=%v", calls, res)
	}
	// Metadata is now materialized: second query does not re-extract.
	if _, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("re-extracted: calls=%d", calls)
	}
}

func TestRequirementsCollection(t *testing.T) {
	q, err := Parse(`SELECT SEGMENTS FROM v WHERE
		(EVENT('highlight') AND TEXT CONTAINS 'PIT') OR FEATURE('dust') > 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	reqs := requirements(q.Where)
	if len(reqs) != 3 {
		t.Fatalf("requirements = %v", reqs)
	}
}

func TestParseAndExecuteObjectQuery(t *testing.T) {
	e := testEngine(t)
	cat := e.pre.Catalog()
	cat.PutObject(cobra.Object{Video: "v", Name: "SCHUMACHER", Class: "driver",
		Appearances: []cobra.Interval{{Start: 20, End: 40}, {Start: 90, End: 120}}})
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE OBJECT('schumacher')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Attrs["object"] != "SCHUMACHER" {
		t.Fatalf("results = %v", res)
	}
	// Paper query: highlights showing the car of a driver.
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') AND OBJECT('SCHUMACHER')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("composed results = %v", res)
	}
	// An object that never appears gives an empty result, not an error.
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE OBJECT('HAKKINEN')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("absent object = %v", res)
	}
}

func TestExecuteNot(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE NOT EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	// Highlights at [30,45] and [100,112] leave three gaps in [0,300).
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Interval.Start != 0 || res[0].Interval.End != 30 {
		t.Fatalf("first gap = %v", res[0].Interval)
	}
	if res[2].Interval.End != 300 {
		t.Fatalf("last gap = %v", res[2].Interval)
	}
	// Composition: flyout outside highlights.
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('flyout') AND NOT EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Interval.Start != 150 {
		t.Fatalf("composed = %v", res)
	}
}

func TestUserDefinedEventTypeQueries(t *testing.T) {
	e := testEngine(t)
	// No extractor provides "pit-highlight": the query still runs
	// against materialized events (none yet -> empty).
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('pit-highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results = %v", res)
	}
	// After a user materializes derived events, the same query finds
	// them.
	e.pre.Catalog().PutEvents("v", []cobra.Event{
		{Type: "pit-highlight", Interval: cobra.Interval{Start: 100, End: 118}, Confidence: 0.8},
	})
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('pit-highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine(t)
	res, err := e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') ORDER BY CONFIDENCE DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Confidence != 0.9 {
		t.Fatalf("ordered = %v", res)
	}
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') ORDER BY CONFIDENCE DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Confidence != 0.9 {
		t.Fatalf("limited = %v", res)
	}
	res, err = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') ORDER BY START DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Interval.Start != 100 {
		t.Fatalf("start desc = %v", res)
	}
	// Default ordering stays by start ascending.
	res, _ = e.Run(`SELECT SEGMENTS FROM v WHERE EVENT('highlight') LIMIT 1`)
	if res[0].Interval.Start != 30 {
		t.Fatalf("default order = %v", res)
	}
}

func TestOrderByParseErrors(t *testing.T) {
	bad := []string{
		`SELECT SEGMENTS FROM v ORDER CONFIDENCE`,
		`SELECT SEGMENTS FROM v ORDER BY BANANA`,
		`SELECT SEGMENTS FROM v LIMIT`,
		`SELECT SEGMENTS FROM v LIMIT 0`,
		`SELECT SEGMENTS FROM v LIMIT x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
