package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is a parsed COQL statement.
type Query struct {
	// Target is "segments" or "events".
	Target string
	// Video is the FROM source.
	Video string
	// Where is the root condition; nil selects everything.
	Where Cond
	// OrderBy is "", "start" or "confidence".
	OrderBy string
	// Desc reverses the ordering.
	Desc bool
	// Limit caps the result count; 0 = unlimited.
	Limit int
	// Window restricts results to segments overlapping the trailing
	// LAST n seconds of the video (0 = whole video). Over a live
	// stream the window slides with the duration watermark, making the
	// query a standing "what just happened" monitor.
	Window float64
}

// Cond is a condition node; every node evaluates to a set of segments.
type Cond interface{ cond() }

// EventCond selects events of a type, optionally constrained by
// attribute equalities and a minimum confidence.
type EventCond struct {
	Type  string
	Attrs map[string]string
}

// TextCond selects caption segments containing a word.
type TextCond struct {
	Word string
}

// ObjectCond selects the appearance intervals of an object-layer
// entity ("the video sequences showing the car of Michael
// Schumacher").
type ObjectCond struct {
	Name string
}

// FeatureCond selects runs where a feature satisfies a comparison.
type FeatureCond struct {
	Name string
	Op   string // > >= < <= =
	Val  float64
}

// NotCond complements a segment set within the video's duration.
type NotCond struct{ X Cond }

// AndCond intersects two segment sets temporally.
type AndCond struct{ L, R Cond }

// OrCond unions two segment sets.
type OrCond struct{ L, R Cond }

// TemporalCond keeps left segments standing in a relation to some
// right segment.
type TemporalCond struct {
	L, R Cond
	// Rel is one of before, after, during, overlaps, meets, within.
	Rel string
	// Gap bounds WITHIN n OF.
	Gap float64
}

func (*EventCond) cond()    {}
func (*ObjectCond) cond()   {}
func (*NotCond) cond()      {}
func (*TextCond) cond()     {}
func (*FeatureCond) cond()  {}
func (*AndCond) cond()      {}
func (*OrCond) cond()       {}
func (*TemporalCond) cond() {}

// parser is a recursive-descent COQL parser.
type parser struct {
	toks []token
	i    int
}

// Parse parses a COQL statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	if !p.acceptKeyword("select") && !p.acceptKeyword("retrieve") {
		return nil, p.errf("expected SELECT or RETRIEVE")
	}
	switch {
	case p.acceptKeyword("segments"):
		q.Target = "segments"
	case p.acceptKeyword("events"):
		q.Target = "events"
	default:
		return nil, p.errf("expected SEGMENTS or EVENTS")
	}
	if !p.acceptKeyword("from") {
		return nil, p.errf("expected FROM")
	}
	t := p.cur()
	if t.kind != tIdent && t.kind != tString {
		return nil, p.errf("expected video name")
	}
	q.Video = t.text
	p.i++
	if p.acceptKeyword("where") {
		c, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = c
	}
	if p.acceptKeyword("last") {
		t := p.cur()
		if t.kind != tNumber {
			return nil, p.errf("expected seconds after LAST")
		}
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil || n <= 0 {
			return nil, p.errf("bad LAST window %q", t.text)
		}
		p.i++
		p.acceptKeyword("s") // optional unit
		q.Window = n
	}
	if p.acceptKeyword("order") {
		if !p.acceptKeyword("by") {
			return nil, p.errf("expected BY after ORDER")
		}
		switch {
		case p.acceptKeyword("confidence"):
			q.OrderBy = "confidence"
		case p.acceptKeyword("start"):
			q.OrderBy = "start"
		default:
			return nil, p.errf("expected CONFIDENCE or START after ORDER BY")
		}
		if p.acceptKeyword("desc") {
			q.Desc = true
		} else {
			p.acceptKeyword("asc")
		}
	}
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tNumber {
			return nil, p.errf("expected count after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		p.i++
		q.Limit = n
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().isKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) orExpr() (Cond, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Cond, error) {
	l, err := p.temporal()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.temporal()
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) temporal() (Cond, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("before"), p.acceptKeyword("after"),
			p.acceptKeyword("during"), p.acceptKeyword("overlaps"),
			p.acceptKeyword("meets"):
			rel := strings.ToLower(p.toks[p.i-1].text)
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &TemporalCond{L: l, R: r, Rel: rel}
		case p.acceptKeyword("within"):
			t := p.cur()
			if t.kind != tNumber {
				return nil, p.errf("expected gap after WITHIN")
			}
			gap, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad gap %q", t.text)
			}
			p.i++
			p.acceptKeyword("s") // optional unit
			if !p.acceptKeyword("of") {
				return nil, p.errf("expected OF after WITHIN gap")
			}
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &TemporalCond{L: l, R: r, Rel: "within", Gap: gap}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (Cond, error) {
	switch {
	case p.acceptKeyword("not"):
		x, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &NotCond{X: x}, nil
	case p.acceptKeyword("event"):
		return p.eventCond()
	case p.acceptKeyword("object"):
		if p.cur().text != "(" {
			return nil, p.errf("expected ( after OBJECT")
		}
		p.i++
		t := p.cur()
		if t.kind != tString {
			return nil, p.errf("expected object name string")
		}
		p.i++
		if p.cur().text != ")" {
			return nil, p.errf("expected ) after object name")
		}
		p.i++
		return &ObjectCond{Name: strings.ToUpper(t.text)}, nil
	case p.acceptKeyword("text"):
		if !p.acceptKeyword("contains") {
			return nil, p.errf("expected CONTAINS after TEXT")
		}
		t := p.cur()
		if t.kind != tString {
			return nil, p.errf("expected word string")
		}
		p.i++
		return &TextCond{Word: strings.ToUpper(t.text)}, nil
	case p.acceptKeyword("feature"):
		return p.featureCond()
	case p.cur().kind == tPunct && p.cur().text == "(":
		p.i++
		c, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().text != ")" {
			return nil, p.errf("expected )")
		}
		p.i++
		return c, nil
	}
	return nil, p.errf("expected EVENT, TEXT, FEATURE or (")
}

func (p *parser) eventCond() (Cond, error) {
	if p.cur().text != "(" {
		return nil, p.errf("expected ( after EVENT")
	}
	p.i++
	t := p.cur()
	if t.kind != tString {
		return nil, p.errf("expected event type string")
	}
	ec := &EventCond{Type: t.text}
	p.i++
	for p.cur().text == "," {
		p.i++
		key := p.cur()
		if key.kind != tIdent {
			return nil, p.errf("expected attribute name")
		}
		p.i++
		if p.cur().text != "=" {
			return nil, p.errf("expected = after attribute name")
		}
		p.i++
		val := p.cur()
		if val.kind != tString {
			return nil, p.errf("expected attribute value string")
		}
		p.i++
		if ec.Attrs == nil {
			ec.Attrs = map[string]string{}
		}
		ec.Attrs[strings.ToLower(key.text)] = val.text
	}
	if p.cur().text != ")" {
		return nil, p.errf("expected ) after EVENT arguments")
	}
	p.i++
	return ec, nil
}

func (p *parser) featureCond() (Cond, error) {
	if p.cur().text != "(" {
		return nil, p.errf("expected ( after FEATURE")
	}
	p.i++
	t := p.cur()
	if t.kind != tString {
		return nil, p.errf("expected feature name string")
	}
	fc := &FeatureCond{Name: t.text}
	p.i++
	if p.cur().text != ")" {
		return nil, p.errf("expected ) after feature name")
	}
	p.i++
	op := p.cur()
	if op.kind != tOp && !(op.kind == tPunct && op.text == "=") {
		return nil, p.errf("expected comparison after FEATURE(...)")
	}
	fc.Op = op.text
	p.i++
	num := p.cur()
	if num.kind != tNumber {
		return nil, p.errf("expected number after comparison")
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return nil, p.errf("bad number %q", num.text)
	}
	fc.Val = v
	p.i++
	return fc, nil
}
