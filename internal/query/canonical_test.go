package query

import (
	"testing"

	"cobra/internal/cobra"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestCanonicalFoldsSpelling(t *testing.T) {
	// Each group spells one query several ways; every member must
	// canonicalize to the group's first member's form.
	groups := [][]string{
		{
			`SELECT segments FROM race WHERE event("overtaking", driver = "Senna")`,
			`select   segments from race where EVENT("overtaking", DRIVER="SENNA")`,
			`retrieve segments from race where event("overtaking", driver="senna")`,
		},
		{
			`select segments from race where feature("speed") > 0.5`,
			`select segments from race where feature("speed") > 0.50`,
			`select segments from race where feature("speed") > .5`,
		},
		{
			`select segments from race where text contains "pit" order by start asc`,
			`select segments from race where TEXT CONTAINS "PIT" ORDER BY START`,
		},
	}
	for _, g := range groups {
		want := mustParse(t, g[0]).Canonical()
		for _, src := range g[1:] {
			if got := mustParse(t, src).Canonical(); got != want {
				t.Errorf("Canonical(%q) = %q, want %q", src, got, want)
			}
		}
	}
}

func TestCanonicalAttrOrderInsensitive(t *testing.T) {
	a := mustParse(t, `select events from race where event("pit", team = "x", driver = "y")`)
	b := mustParse(t, `select events from race where event("pit", driver = "y", team = "x")`)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("attr order changed the key:\n%q\n%q", a.Canonical(), b.Canonical())
	}
}

func TestCanonicalDistinguishesStructure(t *testing.T) {
	// Distinct semantics must never share a key.
	srcs := []string{
		`select segments from race where event("a")`,
		`select events from race where event("a")`,
		`select segments from other where event("a")`,
		`select segments from race where event("a") and event("b")`,
		`select segments from race where event("b") and event("a")`,
		`select segments from race where event("a") or event("b")`,
		`select segments from race where not event("a")`,
		`select segments from race where event("a") before event("b")`,
		`select segments from race where event("a") within 5 of event("b")`,
		`select segments from race where feature("speed") > 0.5`,
		`select segments from race where feature("speed") >= 0.5`,
		`select segments from race where event("a") limit 3`,
		`select segments from race where event("a") last 10`,
		`select segments from race where event("a") order by confidence desc`,
	}
	seen := map[string]string{}
	for _, src := range srcs {
		key := mustParse(t, src).Canonical()
		if prev, ok := seen[key]; ok {
			t.Errorf("collision: %q and %q both canonicalize to %q", prev, src, key)
		}
		seen[key] = src
	}
}

func TestCanonicalQuotingIsInjective(t *testing.T) {
	// A crafted event type must not collide with an attribute-carrying
	// one: quoting keeps the encoding injective. (Built as an AST — the
	// COQL lexer has no escapes, so this type isn't even spellable.)
	a := &Query{Target: "segments", Video: "race", Where: &EventCond{Type: `pit", driver="x`}}
	b := mustParse(t, `select segments from race where event("pit", driver = "x")`)
	if a.Canonical() == b.Canonical() {
		t.Fatal("quote-injected event type collided with structured attrs")
	}
}

func TestCanonicalRoundTrips(t *testing.T) {
	// The canonical form is itself parseable COQL, and a fixed point:
	// parsing it and canonicalizing again changes nothing.
	srcs := []string{
		`select segments from race`,
		`select segments from race where event("overtaking", driver = "senna") and feature("speed") > 0.5`,
		`select events from race where (text contains "pit" or object("car")) within 2.5 of event("stop") last 30 order by start desc limit 7`,
	}
	for _, src := range srcs {
		c1 := mustParse(t, src).Canonical()
		c2 := mustParse(t, c1).Canonical()
		if c1 != c2 {
			t.Errorf("not a fixed point:\n%q\n%q", c1, c2)
		}
	}
}

func TestDepNamesOfMatchesIncremental(t *testing.T) {
	srcs := []string{
		`select segments from race`,
		`select segments from race where event("a")`,
		`select segments from race where not event("a")`,
		`select segments from race where feature("speed") > 0.5 and object("car") last 10`,
		`select segments from race where text contains "pit" or feature("crowd") >= 0.2`,
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		free := DepNamesOf(q)
		inc := NewIncremental(&Engine{}, q).DepNames()
		if len(free) != len(inc) {
			t.Fatalf("%q: DepNamesOf=%v DepNames=%v", src, free, inc)
		}
		for i := range free {
			if free[i] != inc[i] {
				t.Fatalf("%q: DepNamesOf=%v DepNames=%v", src, free, inc)
			}
		}
	}
}

func TestDepNamesOfDurationDependence(t *testing.T) {
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	videos := cobra.VideosBATName()
	for src, want := range map[string]bool{
		`select segments from race where event("a")`:         false,
		`select segments from race`:                          true,
		`select segments from race where not event("a")`:     true,
		`select segments from race where event("a") last 10`: true,
	} {
		q := mustParse(t, src)
		if got := has(DepNamesOf(q), videos); got != want {
			t.Errorf("%q: videos dep = %v, want %v", src, got, want)
		}
	}
}
