package moa

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Prepared-plan memo for the MIL emitters. The Plan* methods compile
// a logical-layer operation into MIL text by reading the flattened
// set's schema from the kernel and rendering literals — pure work
// that depends only on the operation's arguments and the schema BAT's
// state. The memo keys on exactly those: emitter name, argument
// tuple, and the mutation epoch of every involved prefix's schema
// BAT. Re-registering a set under a prefix bumps its schema epoch and
// silently re-keys every memoized plan that read it; stale keys age
// out of the LRU instead of being hunted down.
var (
	cEmitHits   = obs.C("moa.plancache.hits")
	cEmitMisses = obs.C("moa.plancache.misses")
)

// DefaultPlanEntries bounds a zero-configured emitter memo.
const DefaultPlanEntries = 256

// PlanCache memoizes emitted MIL plans. Safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits, misses int64
}

// emitEntry is one memoized emission.
type emitEntry struct {
	key  string
	plan string
}

// NewPlanCache returns an empty emitter memo holding at most max
// plans (DefaultPlanEntries when max <= 0).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanEntries
	}
	return &PlanCache{max: max, entries: map[string]*list.Element{}, lru: list.New()}
}

// key renders a memo key: the emitter, its argument tuple, and the
// schema epochs of the involved prefixes. Arguments are length-
// prefixed so no two tuples collide by concatenation.
func (pc *PlanCache) key(store *monet.Store, op string, prefixes []string, args ...string) string {
	var b strings.Builder
	b.WriteString(op)
	for _, a := range args {
		b.WriteByte('\x00')
		b.WriteString(strconv.Itoa(len(a)))
		b.WriteByte(':')
		b.WriteString(a)
	}
	names := make([]string, len(prefixes))
	for i, p := range prefixes {
		names[i] = p + "/_schema"
	}
	for _, e := range store.Epochs(names) {
		b.WriteByte('\x00')
		b.WriteString(strconv.FormatUint(e, 10))
	}
	return b.String()
}

// do serves one memoized emission.
func (pc *PlanCache) do(key string, emit func() (string, error)) (string, bool, error) {
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits++
		plan := el.Value.(*emitEntry).plan
		pc.mu.Unlock()
		cEmitHits.Inc()
		return plan, true, nil
	}
	pc.misses++
	pc.mu.Unlock()
	cEmitMisses.Inc()
	plan, err := emit()
	if err != nil {
		return "", false, err
	}
	pc.mu.Lock()
	if _, ok := pc.entries[key]; !ok {
		pc.entries[key] = pc.lru.PushFront(&emitEntry{key: key, plan: plan})
		for pc.lru.Len() > pc.max {
			back := pc.lru.Back()
			delete(pc.entries, back.Value.(*emitEntry).key)
			pc.lru.Remove(back)
		}
	}
	pc.mu.Unlock()
	return plan, false, nil
}

// SelectRange is a memoized FlatSet.PlanSelectRange.
func (pc *PlanCache) SelectRange(fs *FlatSet, dstPrefix, field string, lo, hi monet.Value) (string, bool, error) {
	loLit, err := MILLit(lo)
	if err != nil {
		return "", false, err
	}
	hiLit, err := MILLit(hi)
	if err != nil {
		return "", false, err
	}
	k := pc.key(fs.store, "selectrange", []string{fs.prefix}, fs.prefix, dstPrefix, field, loLit, hiLit)
	return pc.do(k, func() (string, error) { return fs.PlanSelectRange(dstPrefix, field, lo, hi) })
}

// Aggregate is a memoized FlatSet.PlanAggregate.
func (pc *PlanCache) Aggregate(fs *FlatSet, field, op string) (string, bool, error) {
	k := pc.key(fs.store, "aggregate", []string{fs.prefix}, fs.prefix, field, op)
	return pc.do(k, func() (string, error) { return fs.PlanAggregate(field, op) })
}

// AggregateWhere is a memoized FlatSet.PlanAggregateWhere. Unlike the
// schema-only keys of the other emitters, its key also spans the two
// data columns' mutation epochs and the kernel cost gate's
// fused-vs-fallback decision (computed from the gate's inputs:
// bound/column type agreement, NaN state, aggregate-column exactness).
// Appends that bump a column or column state that flips the gate
// re-key the entry, so a cached fused plan is never served once the
// fallback is required — stale keys age out of the LRU.
func (pc *PlanCache) AggregateWhere(fs *FlatSet, field, op, predField string, lo, hi monet.Value) (string, bool, error) {
	loLit, err := MILLit(lo)
	if err != nil {
		return "", false, err
	}
	hiLit, err := MILLit(hi)
	if err != nil {
		return "", false, err
	}
	pred := fs.prefix + "/" + predField
	agg := fs.prefix + "/" + field
	decision := fs.store.FusedDecision(pred, agg, lo, hi, op)
	var eb strings.Builder
	for _, e := range fs.store.Epochs([]string{pred, agg}) {
		eb.WriteString(strconv.FormatUint(e, 10))
		eb.WriteByte(',')
	}
	k := pc.key(fs.store, "aggregatewhere", []string{fs.prefix},
		fs.prefix, field, op, predField, loLit, hiLit, decision, eb.String())
	return pc.do(k, func() (string, error) { return fs.PlanAggregateWhere(field, op, predField, lo, hi) })
}

// JoinOn is a memoized FlatSet.PlanJoinOn; the key spans both sides'
// schema epochs.
func (pc *PlanCache) JoinOn(fs, other *FlatSet, dstPrefix, leftField, rightField string) (string, bool, error) {
	if fs.store != other.store {
		return "", false, fmt.Errorf("moa: plan cache cannot join sets from different stores")
	}
	k := pc.key(fs.store, "joinon", []string{fs.prefix, other.prefix},
		fs.prefix, other.prefix, dstPrefix, leftField, rightField)
	return pc.do(k, func() (string, error) { return fs.PlanJoinOn(other, dstPrefix, leftField, rightField) })
}

// Materialize is a memoized FlatSet.PlanMaterialize.
func (pc *PlanCache) Materialize(fs *FlatSet) (string, bool, error) {
	k := pc.key(fs.store, "materialize", []string{fs.prefix}, fs.prefix)
	return pc.do(k, func() (string, error) { return fs.PlanMaterialize() })
}

// Stats reports hit/miss counts and current population.
func (pc *PlanCache) Stats() (hits, misses, entries int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, int64(len(pc.entries))
}
