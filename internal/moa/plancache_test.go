package moa

import (
	"context"
	"math"
	"testing"

	"cobra/internal/monet"
)

func TestPlanCacheMemoizesEmission(t *testing.T) {
	store, lfs, dfs := planFixture(t)
	pc := NewPlanCache(0)

	direct, err := lfs.PlanSelectRange("fast", "time", monet.NewFloat(80), monet.NewFloat(85))
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := pc.SelectRange(lfs, "fast", "time", monet.NewFloat(80), monet.NewFloat(85))
	if err != nil || hit {
		t.Fatalf("first emission hit=%v err=%v", hit, err)
	}
	if got != direct {
		t.Fatalf("memoized plan differs from direct emission:\n%s\nvs\n%s", got, direct)
	}
	got2, hit, err := pc.SelectRange(lfs, "fast", "time", monet.NewFloat(80), monet.NewFloat(85))
	if err != nil || !hit || got2 != direct {
		t.Fatalf("second emission hit=%v err=%v", hit, err)
	}
	// Every emitter round-trips through the memo identically.
	for _, run := range []func() (string, bool, error){
		func() (string, bool, error) { return pc.Aggregate(lfs, "time", "avg") },
		func() (string, bool, error) { return pc.JoinOn(lfs, dfs, "joined", "driver", "driver") },
		func() (string, bool, error) { return pc.Materialize(lfs) },
	} {
		first, hit, err := run()
		if err != nil || hit {
			t.Fatalf("cold emission hit=%v err=%v", hit, err)
		}
		second, hit, err := run()
		if err != nil || !hit || second != first {
			t.Fatalf("warm emission hit=%v err=%v", hit, err)
		}
	}
	if hits, misses, entries := pc.Stats(); hits != 4 || misses != 4 || entries != 4 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, entries)
	}
	_ = store
}

func TestPlanCacheDistinguishesArgs(t *testing.T) {
	_, lfs, _ := planFixture(t)
	pc := NewPlanCache(0)
	if _, hit, err := pc.Aggregate(lfs, "time", "avg"); err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	// A different argument tuple is a different plan, not a hit.
	if _, hit, err := pc.Aggregate(lfs, "time", "max"); err != nil || hit {
		t.Fatalf("distinct op served stale plan: hit=%v err=%v", hit, err)
	}
	if _, hit, err := pc.Aggregate(lfs, "lap", "avg"); err != nil || hit {
		t.Fatalf("distinct field served stale plan: hit=%v err=%v", hit, err)
	}
}

func TestPlanCacheReKeysOnSchemaEpoch(t *testing.T) {
	store, lfs, _ := planFixture(t)
	pc := NewPlanCache(0)
	before, hit, err := pc.Materialize(lfs)
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	// Re-flatten the prefix with an extra column: the schema BAT's
	// epoch moves and the memoized plan must not be served.
	wider := NewSet(
		MustTuple([]string{"lap", "time", "driver", "pit"},
			[]Value{IntAtom(1), FloatAtom(83.2), StrAtom("mschumacher"), IntAtom(0)}),
	)
	if err := Flatten(store, "laps", wider); err != nil {
		t.Fatal(err)
	}
	after, hit, err := pc.Materialize(lfs)
	if err != nil || hit {
		t.Fatalf("schema change served stale plan: hit=%v err=%v", hit, err)
	}
	if before == after {
		t.Fatal("plan did not pick up the new schema")
	}
}

// TestPlanCacheAggregateWhereFusedDecision proves the AggregateWhere
// key carries the kernel's fused-vs-fallback decision, not just
// argument text and epochs: when column state flips the cost gate
// WITHOUT moving any epoch (a NaN discovered mid-execution marks the
// column unsafe), the memoized fused plan must not be served.
func TestPlanCacheAggregateWhereFusedDecision(t *testing.T) {
	store, lfs, _ := planFixture(t)
	pc := NewPlanCache(0)
	lo, hi := monet.NewFloat(80), monet.NewFloat(90)

	if _, hit, err := pc.AggregateWhere(lfs, "lap", "sum", "time", lo, hi); err != nil || hit {
		t.Fatalf("cold emission hit=%v err=%v", hit, err)
	}
	if _, hit, err := pc.AggregateWhere(lfs, "lap", "sum", "time", lo, hi); err != nil || !hit {
		t.Fatalf("warm emission hit=%v err=%v", hit, err)
	}

	// An append re-keys through the data-column epochs (the other
	// emitters only watch the schema epoch, which has not moved). Both
	// columns grow a row to stay aligned.
	if err := store.Append("laps/time", monet.VoidValue(), monet.NewFloat(math.NaN())); err != nil {
		t.Fatal(err)
	}
	if err := store.Append("laps/lap", monet.VoidValue(), monet.NewInt(4)); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := pc.AggregateWhere(lfs, "lap", "sum", "time", lo, hi); err != nil || hit {
		t.Fatalf("append served stale plan: hit=%v err=%v", hit, err)
	}
	// The NaN row is in the column but undiscovered: the gate still says
	// fused, and the fused plan just cached is served again.
	if _, hit, err := pc.AggregateWhere(lfs, "lap", "sum", "time", lo, hi); err != nil || !hit {
		t.Fatalf("pre-discovery emission hit=%v err=%v", hit, err)
	}

	// Executing the aggregate makes the gate's NaN pre-pass discover the
	// row and mark the column unsafe — no epoch moves, only the
	// decision. Without the decision in the key this would be a hit on
	// the stale fused plan.
	if _, fi, err := lfs.AggregateWhere(context.Background(), "lap", "sum", "time", lo, hi); err != nil {
		t.Fatal(err)
	} else if fi.Fused {
		t.Fatalf("NaN column still fused: %v", fi)
	}
	if _, hit, err := pc.AggregateWhere(lfs, "lap", "sum", "time", lo, hi); err != nil || hit {
		t.Fatalf("fused-decision flip served stale plan: hit=%v err=%v", hit, err)
	}
}

func TestPlanCacheLRUBound(t *testing.T) {
	_, lfs, _ := planFixture(t)
	pc := NewPlanCache(2)
	pc.Aggregate(lfs, "time", "avg")
	pc.Aggregate(lfs, "time", "max")
	pc.Aggregate(lfs, "time", "min") // evicts avg
	if _, hit, _ := pc.Aggregate(lfs, "time", "avg"); hit {
		t.Fatal("evicted plan served")
	}
	if _, _, entries := pc.Stats(); entries > 2 {
		t.Fatalf("bound breached: %d entries", entries)
	}
}
