package moa

import (
	"fmt"
	"testing"

	"cobra/internal/monet"
)

// bigFlatFixture stores a flattened set large enough to clear the
// kernel's parallel/index thresholds: id = 0..n-1, val = id % 1000,
// driver cycling over 40 labels.
func bigFlatFixture(t *testing.T, n int) (*monet.Store, *FlatSet) {
	t.Helper()
	store := monet.NewStore()
	id := monet.NewBATCap(monet.Void, monet.IntT, n)
	val := monet.NewBATCap(monet.Void, monet.IntT, n)
	driver := monet.NewBATCap(monet.Void, monet.StrT, n)
	for i := 0; i < n; i++ {
		id.MustInsert(monet.VoidValue(), monet.NewInt(int64(i)))
		val.MustInsert(monet.VoidValue(), monet.NewInt(int64(i%1000)))
		driver.MustInsert(monet.VoidValue(), monet.NewStr(fmt.Sprintf("label-%02d", i%40)))
	}
	store.Put("big/id", id)
	store.Put("big/val", val)
	store.Put("big/driver", driver)
	schema := monet.NewBAT(monet.Void, monet.StrT)
	for _, f := range []string{"id", "val", "driver"} {
		schema.MustInsert(monet.VoidValue(), monet.NewStr(f))
	}
	store.Put("big/_schema", schema)
	fs, err := Open(store, "big")
	if err != nil {
		t.Fatal(err)
	}
	return store, fs
}

func TestSelectRangeInfoGraduatesToCrack(t *testing.T) {
	n := 3 * monet.MorselSize
	_, fs := bigFlatFixture(t, n)
	want := 0
	for i := 0; i < n; i++ {
		if v := i % 1000; v >= 100 && v <= 199 {
			want++
		}
	}
	var last *monet.AccessInfo
	for q := 0; q < 4; q++ {
		out, info, err := fs.SelectRangeInfo(fmt.Sprintf("out%d", q), "val",
			monet.NewInt(100), monet.NewInt(199))
		if err != nil {
			t.Fatal(err)
		}
		got, err := out.Len()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d (path=%v): %d rows, want %d", q, info.Path, got, want)
		}
		last = info
	}
	if last.Path != monet.PathCrack {
		t.Fatalf("4th repeated select path = %v, want crack", last.Path)
	}
}

func TestSelectRangeInfoUsesDictForStrings(t *testing.T) {
	n := 3 * monet.MorselSize
	_, fs := bigFlatFixture(t, n)
	want := 0
	for i := 0; i < n; i++ {
		if i%40 == 5 {
			want++
		}
	}
	var last *monet.AccessInfo
	for q := 0; q < 2; q++ {
		out, info, err := fs.SelectRangeInfo(fmt.Sprintf("lab%d", q), "driver",
			monet.NewStr("label-05"), monet.NewStr("label-05"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := out.Len()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d (path=%v): %d rows, want %d", q, info.Path, got, want)
		}
		last = info
	}
	if last.Path != monet.PathDict {
		t.Fatalf("repeated string select path = %v, want dict", last.Path)
	}
}

func TestJoinOnInfoPrefilterPreservesJoin(t *testing.T) {
	n := 3 * monet.MorselSize
	store, fs := bigFlatFixture(t, n)

	tv := monet.NewBAT(monet.Void, monet.IntT)
	tt := monet.NewBAT(monet.Void, monet.StrT)
	for _, k := range []int64{100, 500} {
		tv.MustInsert(monet.VoidValue(), monet.NewInt(k))
		tt.MustInsert(monet.VoidValue(), monet.NewStr(fmt.Sprintf("team-%d", k)))
	}
	store.Put("teams/val", tv)
	store.Put("teams/team", tt)
	schema := monet.NewBAT(monet.Void, monet.StrT)
	schema.MustInsert(monet.VoidValue(), monet.NewStr("val"))
	schema.MustInsert(monet.VoidValue(), monet.NewStr("team"))
	store.Put("teams/_schema", schema)
	ts, err := Open(store, "teams")
	if err != nil {
		t.Fatal(err)
	}

	_, info, err := fs.JoinOnInfo(ts, "joined", "val", "val")
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("no prefilter ran on a parallel-sized probe column")
	}
	var wantIDs []int64
	for i := 0; i < n; i++ {
		if v := i % 1000; v == 100 || v == 500 {
			wantIDs = append(wantIDs, int64(i))
		}
	}
	ids, err := store.Get("joined/id")
	if err != nil {
		t.Fatal(err)
	}
	teams, err := store.Get("joined/team")
	if err != nil {
		t.Fatal(err)
	}
	if ids.Len() != len(wantIDs) {
		t.Fatalf("joined %d rows, want %d (prefilter %v)", ids.Len(), len(wantIDs), info)
	}
	for i, want := range wantIDs {
		if got := ids.Tail(i).Int(); got != want {
			t.Fatalf("joined row %d id = %d, want %d", i, got, want)
		}
		wantTeam := "team-100"
		if want%1000 == 500 {
			wantTeam = "team-500"
		}
		if got := teams.Tail(i).Str(); got != wantTeam {
			t.Fatalf("joined row %d team = %q, want %q", i, got, wantTeam)
		}
	}
}
