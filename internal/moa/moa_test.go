package moa

import (
	"strings"
	"testing"

	"cobra/internal/monet"
)

func segTuple(id int64, start, end float64, driver string) *Tuple {
	return MustTuple(
		[]string{"id", "start", "end", "driver"},
		[]Value{IntAtom(id), FloatAtom(start), FloatAtom(end), StrAtom(driver)},
	)
}

func TestTupleBasics(t *testing.T) {
	tp := segTuple(1, 0, 5, "SCHUMACHER")
	v, ok := tp.Field("driver")
	if !ok || v.(Atom).V.Str() != "SCHUMACHER" {
		t.Fatalf("field = %v", v)
	}
	if _, ok := tp.Field("nope"); ok {
		t.Fatal("missing field found")
	}
	if _, err := NewTuple([]string{"a"}, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if !strings.Contains(tp.String(), "driver") {
		t.Fatalf("String = %q", tp.String())
	}
}

func TestMapSelect(t *testing.T) {
	s := NewSet(IntAtom(1), IntAtom(2), IntAtom(3))
	doubled, err := Map(s, func(v Value) (Value, error) {
		return IntAtom(v.(Atom).V.Int() * 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Elems[2].(Atom).V.Int() != 6 {
		t.Fatalf("map = %v", doubled)
	}
	big, err := SelectWhere(doubled, func(v Value) (bool, error) {
		return v.(Atom).V.Int() > 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() != 2 {
		t.Fatalf("select = %v", big)
	}
}

func TestJoinTemporalOverlap(t *testing.T) {
	highlights := NewSet(segTuple(1, 10, 20, ""), segTuple(2, 50, 60, ""))
	pits := NewSet(segTuple(10, 15, 25, "BARRICHELLO"), segTuple(11, 100, 110, "MONTOYA"))
	joined, err := Join(highlights, pits,
		func(x, y Value) (bool, error) {
			xs, _ := x.(*Tuple).Field("start")
			xe, _ := x.(*Tuple).Field("end")
			ys, _ := y.(*Tuple).Field("start")
			ye, _ := y.(*Tuple).Field("end")
			return xs.(Atom).V.Float() < ye.(Atom).V.Float() &&
				ys.(Atom).V.Float() < xe.(Atom).V.Float(), nil
		},
		func(x, y Value) (Value, error) {
			d, _ := y.(*Tuple).Field("driver")
			return MustTuple([]string{"highlight", "driver"}, []Value{x, d}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 1 {
		t.Fatalf("join = %v", joined)
	}
	d, _ := joined.Elems[0].(*Tuple).Field("driver")
	if d.(Atom).V.Str() != "BARRICHELLO" {
		t.Fatalf("joined driver = %v", d)
	}
}

func TestProject(t *testing.T) {
	s := NewSet(segTuple(1, 0, 5, "A"), segTuple(2, 5, 9, "B"))
	p, err := Project(s, "driver", "id")
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Elems[0].(*Tuple)
	if len(tp.Names) != 2 || tp.Names[0] != "driver" {
		t.Fatalf("projected = %v", tp)
	}
	if _, err := Project(s, "nope"); err == nil {
		t.Fatal("missing field accepted")
	}
	if _, err := Project(NewSet(IntAtom(1)), "x"); err == nil {
		t.Fatal("non-tuple accepted")
	}
}

func TestNestUnnestRoundTrip(t *testing.T) {
	s := NewSet(
		segTuple(1, 0, 5, "A"),
		segTuple(2, 5, 9, "A"),
		segTuple(3, 9, 12, "B"),
	)
	nested, err := Nest(s, []string{"driver"}, "segments")
	if err != nil {
		t.Fatal(err)
	}
	if nested.Len() != 2 {
		t.Fatalf("nested = %v", nested)
	}
	g0 := nested.Elems[0].(*Tuple)
	segs, _ := g0.Field("segments")
	if segs.(*Set).Len() != 2 {
		t.Fatalf("group A = %v", segs)
	}
	flat, err := Unnest(nested, "segments")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() != 3 {
		t.Fatalf("unnested = %v", flat)
	}
}

func TestAggregate(t *testing.T) {
	s := NewSet(FloatAtom(1), FloatAtom(2), FloatAtom(3))
	cases := map[string]float64{"sum": 6, "avg": 2, "max": 3, "min": 1}
	for op, want := range cases {
		got, err := Aggregate(s, op)
		if err != nil {
			t.Fatal(err)
		}
		if got.V.Float() != want {
			t.Fatalf("%s = %v, want %v", op, got.V, want)
		}
	}
	if c, _ := Aggregate(s, "count"); c.V.Int() != 3 {
		t.Fatalf("count = %v", c.V)
	}
	if _, err := Aggregate(NewSet(), "sum"); err == nil {
		t.Fatal("empty sum accepted")
	}
	if _, err := Aggregate(s, "median"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("Double", func(args []Value) (Value, error) {
		return IntAtom(args[0].(Atom).V.Int() * 2), nil
	})
	v, err := r.Call("double", IntAtom(21))
	if err != nil {
		t.Fatal(err)
	}
	if v.(Atom).V.Int() != 42 {
		t.Fatalf("call = %v", v)
	}
	if _, err := r.Call("nope"); err == nil {
		t.Fatal("unknown op accepted")
	}
	if ops := r.Operations(); len(ops) != 1 || ops[0] != "double" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	store := monet.NewStore()
	s := NewSet(
		segTuple(1, 0, 5, "A"),
		segTuple(2, 5, 9, "B"),
	)
	if err := Flatten(store, "segs", s); err != nil {
		t.Fatal(err)
	}
	// The columns exist as kernel BATs and can be queried directly.
	b, err := store.Get("segs/driver")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Tail(1).Str() != "B" {
		t.Fatalf("driver column = %s", b.Dump(5))
	}
	got, err := Unflatten(store, "segs")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("unflattened = %v", got)
	}
	d, _ := got.Elems[0].(*Tuple).Field("driver")
	if d.(Atom).V.Str() != "A" {
		t.Fatalf("row 0 driver = %v", d)
	}
}

func TestFlattenErrors(t *testing.T) {
	store := monet.NewStore()
	if err := Flatten(store, "x", NewSet()); err == nil {
		t.Fatal("empty set accepted")
	}
	if err := Flatten(store, "x", NewSet(IntAtom(1))); err == nil {
		t.Fatal("non-tuple set accepted")
	}
	nested := MustTuple([]string{"inner"}, []Value{NewSet(IntAtom(1))})
	if err := Flatten(store, "x", NewSet(nested)); err == nil {
		t.Fatal("nested field accepted")
	}
	if _, err := Unflatten(store, "missing"); err == nil {
		t.Fatal("missing prefix accepted")
	}
}

func TestUnion(t *testing.T) {
	u := Union(NewSet(IntAtom(1)), NewSet(IntAtom(2), IntAtom(3)))
	if u.Len() != 3 {
		t.Fatalf("union = %v", u)
	}
}

func TestObjectString(t *testing.T) {
	o := &Object{Class: "Driver", State: MustTuple([]string{"name"}, []Value{StrAtom("RALF")})}
	if !strings.HasPrefix(o.String(), "Driver<") {
		t.Fatalf("String = %q", o.String())
	}
}

func flatFixture(t *testing.T) (*monet.Store, *FlatSet) {
	t.Helper()
	store := monet.NewStore()
	s := NewSet(
		segTuple(1, 0, 5, "SCHUMACHER"),
		segTuple(2, 5, 9, "HAKKINEN"),
		segTuple(3, 9, 30, "SCHUMACHER"),
	)
	if err := Flatten(store, "segs", s); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(store, "segs")
	if err != nil {
		t.Fatal(err)
	}
	return store, fs
}

func TestFlatSetSelectRange(t *testing.T) {
	_, fs := flatFixture(t)
	if n, _ := fs.Len(); n != 3 {
		t.Fatalf("len = %d", n)
	}
	sel, err := fs.SelectRange("long", "end", monet.NewFloat(9), monet.NewFloat(100))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("selected = %v", rows)
	}
	d, _ := rows.Elems[1].(*Tuple).Field("driver")
	if d.(Atom).V.Str() != "SCHUMACHER" {
		t.Fatalf("row 1 = %v", rows.Elems[1])
	}
}

func TestFlatSetAggregate(t *testing.T) {
	_, fs := flatFixture(t)
	if v, err := fs.Aggregate("end", "max"); err != nil || v.Float() != 30 {
		t.Fatalf("max = %v, %v", v, err)
	}
	if v, _ := fs.Aggregate("id", "count"); v.Int() != 3 {
		t.Fatalf("count = %v", v)
	}
	if v, _ := fs.Aggregate("start", "sum"); v.Float() != 14 {
		t.Fatalf("sum = %v", v)
	}
	if _, err := fs.Aggregate("nope", "sum"); err == nil {
		t.Fatal("missing field accepted")
	}
	if _, err := fs.Aggregate("id", "median"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestFlatSetJoinOn(t *testing.T) {
	store, fs := flatFixture(t)
	teams := NewSet(
		MustTuple([]string{"name", "team"}, []Value{StrAtom("SCHUMACHER"), StrAtom("FERRARI")}),
		MustTuple([]string{"name", "team"}, []Value{StrAtom("HAKKINEN"), StrAtom("MCLAREN")}),
	)
	if err := Flatten(store, "teams", teams); err != nil {
		t.Fatal(err)
	}
	ts, err := Open(store, "teams")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := fs.JoinOn(ts, "joined", "driver", "name")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := joined.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("joined = %v", rows)
	}
	teamsSeen := map[string]int{}
	for _, e := range rows.Elems {
		v, ok := e.(*Tuple).Field("team")
		if !ok {
			t.Fatalf("no team field in %v", e)
		}
		teamsSeen[v.(Atom).V.Str()]++
	}
	if teamsSeen["FERRARI"] != 2 || teamsSeen["MCLAREN"] != 1 {
		t.Fatalf("teams = %v", teamsSeen)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(monet.NewStore(), "nope"); err == nil {
		t.Fatal("missing prefix accepted")
	}
}
