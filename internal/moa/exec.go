package moa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Per-operation timing histograms for the Moa→MIL rewrite layer; each
// histogram's count doubles as the operation counter.
var (
	hSelectRange    = obs.H("moa.select_range.latency")
	hAggregate      = obs.H("moa.aggregate.latency")
	hAggregateWhere = obs.H("moa.aggregate_where.latency")
	hJoinOn         = obs.H("moa.join_on.latency")
)

// Kernel-executed algebra: operators over flattened sets run directly
// on the parallel BATs, the Moa→MIL rewrite of §3 ("for each Moa
// operation, there is a program written using an interface language
// understood by the physical layer").

// FlatSet is a handle to a flattened set stored under a prefix.
type FlatSet struct {
	store  *monet.Store
	prefix string
}

// Open returns a handle to the flattened set under prefix.
func Open(store *monet.Store, prefix string) (*FlatSet, error) {
	if !store.Has(prefix + "/_schema") {
		return nil, fmt.Errorf("moa: no flattened set under %q", prefix)
	}
	return &FlatSet{store: store, prefix: prefix}, nil
}

// Schema returns the field names.
func (fs *FlatSet) Schema() ([]string, error) {
	schema, err := fs.store.Get(fs.prefix + "/_schema")
	if err != nil {
		return nil, err
	}
	names := make([]string, schema.Len())
	for i := range names {
		names[i] = schema.Tail(i).Str()
	}
	return names, nil
}

// column fetches one field's BAT.
func (fs *FlatSet) column(field string) (*monet.BAT, error) {
	b, err := fs.store.Get(fs.prefix + "/" + field)
	if err != nil {
		return nil, fmt.Errorf("moa: flattened set %q has no field %q", fs.prefix, field)
	}
	return b, nil
}

// Len returns the row count.
func (fs *FlatSet) Len() (int, error) {
	names, err := fs.Schema()
	if err != nil {
		return 0, err
	}
	if len(names) == 0 {
		return 0, nil
	}
	b, err := fs.column(names[0])
	if err != nil {
		return 0, err
	}
	return b.Len(), nil
}

// SelectRange materializes a new flattened set under dstPrefix holding
// the rows whose field value lies in [lo, hi]. The plan is pure kernel
// algebra: uselect over the field column for the qualifying OIDs, then
// a semijoin per column. The per-column semijoins are independent, so
// they run as tasks on the shared kernel pool; results are stored
// serially in schema order afterwards.
func (fs *FlatSet) SelectRange(dstPrefix, field string, lo, hi monet.Value) (*FlatSet, error) {
	out, _, err := fs.SelectRangeInfo(dstPrefix, field, lo, hi)
	return out, err
}

// SelectRangeInfo is SelectRange routed through the kernel's adaptive
// access paths: the predicate column's uselect goes through the
// store's cost gate (scan, zone map, cracker or dictionary, chosen by
// column state), and the access path taken is returned alongside the
// result. Results are identical to the plain scan for every path.
func (fs *FlatSet) SelectRangeInfo(dstPrefix, field string, lo, hi monet.Value) (*FlatSet, *monet.AccessInfo, error) {
	defer func(start time.Time) { hSelectRange.Observe(time.Since(start)) }(time.Now())
	col, err := fs.column(field)
	if err != nil {
		return nil, nil, err
	}
	keys, info, err := fs.store.UselectRange(fs.prefix+"/"+field, lo, hi) // [oid, void]
	if err != nil {
		// The column vanished between fetch and select: degrade to the
		// direct scan over the fetched BAT.
		keys = col.Uselect(lo, hi)
		info = &monet.AccessInfo{Path: monet.PathScan, Rows: col.Len(), Matched: keys.Len()}
	}
	names, err := fs.Schema()
	if err != nil {
		return nil, nil, err
	}
	outs := make([]*monet.BAT, len(names))
	errs := make([]error, len(names))
	batch := monet.DefaultPool().Batch()
	for i, name := range names {
		i, name := i, name
		batch.Submit(func() {
			b, err := fs.column(name)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = b.Semijoin(keys)
		})
	}
	batch.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	for i, name := range names {
		fs.store.Put(dstPrefix+"/"+name, outs[i])
	}
	schema, _ := fs.store.Get(fs.prefix + "/_schema")
	fs.store.Put(dstPrefix+"/_schema", schema)
	return &FlatSet{store: fs.store, prefix: dstPrefix}, info, nil
}

// Aggregate computes count/sum/avg/max/min over one field using the
// kernel's aggregation operators.
func (fs *FlatSet) Aggregate(field, op string) (monet.Value, error) {
	defer func(start time.Time) { hAggregate.Observe(time.Since(start)) }(time.Now())
	col, err := fs.column(field)
	if err != nil {
		return monet.Value{}, err
	}
	switch op {
	case "count":
		return monet.NewInt(col.Count()), nil
	case "sum":
		s, err := col.Sum()
		return monet.NewFloat(s), err
	case "avg":
		a, err := col.Avg()
		return monet.NewFloat(a), err
	case "max":
		v, ok := col.Max()
		if !ok {
			return monet.Value{}, fmt.Errorf("moa: max over empty field %q", field)
		}
		return v, nil
	case "min":
		v, ok := col.Min()
		if !ok {
			return monet.Value{}, fmt.Errorf("moa: min over empty field %q", field)
		}
		return v, nil
	}
	return monet.Value{}, fmt.Errorf("moa: unknown aggregate %q", op)
}

// AggregateWhere computes op ("count", "sum", "avg", "min", "max")
// over field restricted to the rows whose predField value lies in
// [lo, hi] — the fused select→project→aggregate of SelectRange
// followed by Aggregate, executed through the kernel's Pipeline
// without materializing the selected set. The returned FusedInfo says
// whether the pipeline ran fused or took the byte-identical
// operator-at-a-time fallback, and which access path answered the
// predicate.
func (fs *FlatSet) AggregateWhere(ctx context.Context, field, op, predField string, lo, hi monet.Value) (monet.Value, *monet.FusedInfo, error) {
	defer func(start time.Time) { hAggregateWhere.Observe(time.Since(start)) }(time.Now())
	if _, err := fs.column(predField); err != nil {
		return monet.Value{}, nil, err
	}
	if _, err := fs.column(field); err != nil {
		return monet.Value{}, nil, err
	}
	return fs.store.Pipeline(fs.prefix+"/"+predField, lo, hi).
		Aggregate(ctx, fs.prefix+"/"+field, op)
}

// JoinOn materializes under dstPrefix the natural join of two
// flattened sets on leftField == rightField (kernel hash join over the
// key columns, then positional gathers through OID join results).
// Output fields are left's fields plus right's fields (right's join
// field dropped); name collisions take the left value.
func (fs *FlatSet) JoinOn(other *FlatSet, dstPrefix, leftField, rightField string) (*FlatSet, error) {
	out, _, err := fs.JoinOnInfo(other, dstPrefix, leftField, rightField)
	return out, err
}

// JoinOnInfo is JoinOn with a zone-map prefilter over the probe side:
// when the left key column is large enough to parallelize, the
// build side's [min, max] key range range-selects the probe column
// through the kernel's adaptive access paths before hashing. Rows
// outside the build side's key range cannot hash-match, so dropping
// them changes neither the emitted pairs nor their order. The
// returned AccessInfo describes the prefilter's access path; it is
// nil when no prefilter ran.
func (fs *FlatSet) JoinOnInfo(other *FlatSet, dstPrefix, leftField, rightField string) (*FlatSet, *monet.AccessInfo, error) {
	defer func(start time.Time) { hJoinOn.Observe(time.Since(start)) }(time.Now())
	lk, err := fs.column(leftField)
	if err != nil {
		return nil, nil, err
	}
	rk, err := other.column(rightField)
	if err != nil {
		return nil, nil, err
	}
	probe, info := lk, (*monet.AccessInfo)(nil)
	if lk.Len() >= monet.ParallelThreshold && rk.Len() > 0 && lk.TailType() == rk.TailType() {
		if mn, ok := rk.Min(); ok {
			if mx, ok := rk.Max(); ok {
				if f, fi, err := fs.store.SelectRange(fs.prefix+"/"+leftField, mn, mx); err == nil {
					probe, info = f, fi
				}
			}
		}
	}
	// [l-oid, value] join [value, r-oid] -> [l-oid, r-oid]
	pairs, err := probe.Join(rk.Reverse())
	if err != nil {
		return nil, nil, err
	}
	lNames, err := fs.Schema()
	if err != nil {
		return nil, nil, err
	}
	rNames, err := other.Schema()
	if err != nil {
		return nil, nil, err
	}
	// Each output field is an independent gather through the OID pair
	// list, so the fields materialize as tasks on the shared kernel
	// pool; the store writes and schema inserts stay serial and in
	// field order so the output schema is deterministic.
	type fieldJob struct {
		name string
		src  *monet.BAT
		key  func(i int) monet.Value
	}
	var jobs []fieldJob
	seen := map[string]bool{}
	for _, name := range lNames {
		src, err := fs.column(name)
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, fieldJob{name, src, func(i int) monet.Value { return pairs.Head(i) }})
		seen[name] = true
	}
	for _, name := range rNames {
		if name == rightField || seen[name] {
			continue
		}
		src, err := other.column(name)
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, fieldJob{name, src, func(i int) monet.Value { return pairs.Tail(i) }})
	}
	outs := make([]*monet.BAT, len(jobs))
	errs := make([]error, len(jobs))
	batch := monet.DefaultPool().Batch()
	for i, job := range jobs {
		i, job := i, job
		batch.Submit(func() {
			out := monet.NewBATCap(monet.Void, job.src.TailType(), pairs.Len())
			for r := 0; r < pairs.Len(); r++ {
				v, ok := job.src.Find(job.key(r))
				if !ok {
					errs[i] = fmt.Errorf("moa: join lost row %d of field %q", r, job.name)
					return
				}
				out.MustInsert(monet.VoidValue(), v)
			}
			outs[i] = out
		})
	}
	batch.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	outSchema := monet.NewBAT(monet.Void, monet.StrT)
	for i, job := range jobs {
		fs.store.Put(dstPrefix+"/"+job.name, outs[i])
		outSchema.MustInsert(monet.VoidValue(), monet.NewStr(job.name))
	}
	fs.store.Put(dstPrefix+"/_schema", outSchema)
	return &FlatSet{store: fs.store, prefix: dstPrefix}, info, nil
}

// Materialize reconstructs the flattened set as Moa structures.
func (fs *FlatSet) Materialize() (*Set, error) {
	return Unflatten(fs.store, fs.prefix)
}
