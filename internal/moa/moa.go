// Package moa implements the logical layer of the Cobra VDBMS: an
// object algebra in the style of Moa (§3), with the structure
// primitives set, tuple and object over the kernel's base types,
// algebra operators (map, select, join, project, nest, unnest,
// aggregate), an extension registry for named operations, and the
// "flattening" translation that decomposes sets of tuples into
// parallel kernel BATs.
package moa

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cobra/internal/monet"
)

// Value is a Moa structure: an Atom, *Tuple, *Set or *Object.
type Value interface {
	moa()
	// String renders the value for the shell.
	String() string
}

// Atom wraps an atomic kernel value.
type Atom struct{ V monet.Value }

// Tuple is an ordered collection of named fields.
type Tuple struct {
	Names  []string
	Values []Value
}

// Set is an unordered collection (represented in insertion order).
type Set struct{ Elems []Value }

// Object pairs a class name with a state tuple.
type Object struct {
	Class string
	State *Tuple
}

func (Atom) moa()    {}
func (*Tuple) moa()  {}
func (*Set) moa()    {}
func (*Object) moa() {}

// String implements Value.
func (a Atom) String() string { return a.V.String() }

// String implements Value.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Names))
	for i, n := range t.Names {
		parts[i] = n + ": " + t.Values[i].String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// String implements Value.
func (s *Set) String() string {
	parts := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// String implements Value.
func (o *Object) String() string { return o.Class + o.State.String() }

// Convenience constructors.

// NewAtom wraps a kernel value.
func NewAtom(v monet.Value) Atom { return Atom{V: v} }

// IntAtom wraps an int.
func IntAtom(i int64) Atom { return Atom{V: monet.NewInt(i)} }

// FloatAtom wraps a float.
func FloatAtom(f float64) Atom { return Atom{V: monet.NewFloat(f)} }

// StrAtom wraps a string.
func StrAtom(s string) Atom { return Atom{V: monet.NewStr(s)} }

// NewTuple builds a tuple; names and values must be parallel.
func NewTuple(names []string, values []Value) (*Tuple, error) {
	if len(names) != len(values) {
		return nil, errors.New("moa: tuple arity mismatch")
	}
	return &Tuple{Names: append([]string(nil), names...), Values: append([]Value(nil), values...)}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(names []string, values []Value) *Tuple {
	t, err := NewTuple(names, values)
	if err != nil {
		panic(err)
	}
	return t
}

// Field returns the named field value.
func (t *Tuple) Field(name string) (Value, bool) {
	for i, n := range t.Names {
		if n == name {
			return t.Values[i], true
		}
	}
	return nil, false
}

// NewSet builds a set from elements.
func NewSet(elems ...Value) *Set { return &Set{Elems: append([]Value(nil), elems...)} }

// Len returns the element count.
func (s *Set) Len() int { return len(s.Elems) }

// Algebra operators.

// Map applies f to every element of s.
func Map(s *Set, f func(Value) (Value, error)) (*Set, error) {
	out := &Set{Elems: make([]Value, 0, len(s.Elems))}
	for _, e := range s.Elems {
		v, err := f(e)
		if err != nil {
			return nil, err
		}
		out.Elems = append(out.Elems, v)
	}
	return out, nil
}

// SelectWhere keeps the elements for which pred returns true.
func SelectWhere(s *Set, pred func(Value) (bool, error)) (*Set, error) {
	out := &Set{}
	for _, e := range s.Elems {
		ok, err := pred(e)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Elems = append(out.Elems, e)
		}
	}
	return out, nil
}

// Join pairs elements of a and b that satisfy pred, combining each
// pair with combine.
func Join(a, b *Set, pred func(x, y Value) (bool, error), combine func(x, y Value) (Value, error)) (*Set, error) {
	out := &Set{}
	for _, x := range a.Elems {
		for _, y := range b.Elems {
			ok, err := pred(x, y)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			v, err := combine(x, y)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, v)
		}
	}
	return out, nil
}

// Project restricts every tuple in s to the given fields.
func Project(s *Set, fields ...string) (*Set, error) {
	return Map(s, func(e Value) (Value, error) {
		t, ok := e.(*Tuple)
		if !ok {
			return nil, fmt.Errorf("moa: project over non-tuple %T", e)
		}
		out := &Tuple{}
		for _, f := range fields {
			v, ok := t.Field(f)
			if !ok {
				return nil, fmt.Errorf("moa: project: no field %q", f)
			}
			out.Names = append(out.Names, f)
			out.Values = append(out.Values, v)
		}
		return out, nil
	})
}

// Union concatenates two sets.
func Union(a, b *Set) *Set {
	return &Set{Elems: append(append([]Value(nil), a.Elems...), b.Elems...)}
}

// Nest groups a set of tuples by key fields, producing tuples
// <key..., group: Set>.
func Nest(s *Set, keyFields []string, groupField string) (*Set, error) {
	type group struct {
		key   *Tuple
		elems []Value
	}
	var order []string
	groups := map[string]*group{}
	for _, e := range s.Elems {
		t, ok := e.(*Tuple)
		if !ok {
			return nil, fmt.Errorf("moa: nest over non-tuple %T", e)
		}
		key := &Tuple{}
		for _, f := range keyFields {
			v, ok := t.Field(f)
			if !ok {
				return nil, fmt.Errorf("moa: nest: no field %q", f)
			}
			key.Names = append(key.Names, f)
			key.Values = append(key.Values, v)
		}
		ks := key.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key}
			groups[ks] = g
			order = append(order, ks)
		}
		g.elems = append(g.elems, t)
	}
	out := &Set{}
	for _, ks := range order {
		g := groups[ks]
		t := &Tuple{
			Names:  append(append([]string(nil), g.key.Names...), groupField),
			Values: append(append([]Value(nil), g.key.Values...), &Set{Elems: g.elems}),
		}
		out.Elems = append(out.Elems, t)
	}
	return out, nil
}

// Unnest flattens tuples containing a set field back into one tuple
// per inner element.
func Unnest(s *Set, setField string) (*Set, error) {
	out := &Set{}
	for _, e := range s.Elems {
		t, ok := e.(*Tuple)
		if !ok {
			return nil, fmt.Errorf("moa: unnest over non-tuple %T", e)
		}
		inner, ok := t.Field(setField)
		if !ok {
			return nil, fmt.Errorf("moa: unnest: no field %q", setField)
		}
		innerSet, ok := inner.(*Set)
		if !ok {
			return nil, fmt.Errorf("moa: unnest: field %q is not a set", setField)
		}
		for _, iv := range innerSet.Elems {
			out.Elems = append(out.Elems, iv)
		}
	}
	return out, nil
}

// Aggregate computes count/sum/avg/max/min over a set of atoms.
func Aggregate(s *Set, op string) (Atom, error) {
	switch op {
	case "count":
		return IntAtom(int64(len(s.Elems))), nil
	}
	if len(s.Elems) == 0 {
		return Atom{}, errors.New("moa: aggregate over empty set")
	}
	sum := 0.0
	best := 0.0
	for i, e := range s.Elems {
		a, ok := e.(Atom)
		if !ok {
			return Atom{}, fmt.Errorf("moa: aggregate over non-atom %T", e)
		}
		v := a.V.Float()
		sum += v
		switch {
		case i == 0:
			best = v
		case op == "max" && v > best:
			best = v
		case op == "min" && v < best:
			best = v
		}
	}
	switch op {
	case "sum":
		return FloatAtom(sum), nil
	case "avg":
		return FloatAtom(sum / float64(len(s.Elems))), nil
	case "max", "min":
		return FloatAtom(best), nil
	}
	return Atom{}, fmt.Errorf("moa: unknown aggregate %q", op)
}

// Operation is a registered extension operation (the Moa extension
// mechanism of §3: video processing, HMM, DBN and rule operations are
// exposed to the algebra this way).
type Operation func(args []Value) (Value, error)

// Registry holds extension operations by name.
type Registry struct {
	ops map[string]Operation
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{ops: map[string]Operation{}} }

// Register installs an operation.
func (r *Registry) Register(name string, op Operation) {
	r.ops[strings.ToLower(name)] = op
}

// Call invokes a registered operation.
func (r *Registry) Call(name string, args ...Value) (Value, error) {
	op, ok := r.ops[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("moa: unknown operation %q", name)
	}
	return op(args)
}

// Operations lists registered operation names.
func (r *Registry) Operations() []string {
	names := make([]string, 0, len(r.ops))
	for n := range r.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
