package moa

import (
	"fmt"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Flatten/unflatten timings: the storage-mapping half of the Moa layer.
var (
	hFlatten   = obs.H("moa.flatten.latency")
	hUnflatten = obs.H("moa.unflatten.latency")
)

// Flatten decomposes a set of flat tuples (atom fields only) into
// parallel kernel BATs sharing dense head OIDs — the Moa-over-Monet
// storage mapping ("flattening an object algebra", §3). BATs are
// registered in the store under prefix/<field>.
func Flatten(store *monet.Store, prefix string, s *Set) error {
	defer func(start time.Time) { hFlatten.Observe(time.Since(start)) }(time.Now())
	if s.Len() == 0 {
		return fmt.Errorf("moa: cannot flatten an empty set (no schema)")
	}
	first, ok := s.Elems[0].(*Tuple)
	if !ok {
		return fmt.Errorf("moa: flatten expects a set of tuples, got %T", s.Elems[0])
	}
	cols := make(map[string]*monet.BAT, len(first.Names))
	for _, name := range first.Names {
		v, _ := first.Field(name)
		a, ok := v.(Atom)
		if !ok {
			return fmt.Errorf("moa: flatten: field %q is not atomic", name)
		}
		cols[name] = monet.NewBATCap(monet.Void, a.V.Typ, s.Len())
	}
	for i, e := range s.Elems {
		t, ok := e.(*Tuple)
		if !ok {
			return fmt.Errorf("moa: flatten: element %d is not a tuple", i)
		}
		if len(t.Names) != len(first.Names) {
			return fmt.Errorf("moa: flatten: element %d arity mismatch", i)
		}
		for _, name := range first.Names {
			v, ok := t.Field(name)
			if !ok {
				return fmt.Errorf("moa: flatten: element %d missing field %q", i, name)
			}
			a, ok := v.(Atom)
			if !ok {
				return fmt.Errorf("moa: flatten: element %d field %q is not atomic", i, name)
			}
			if err := cols[name].Insert(monet.VoidValue(), a.V); err != nil {
				return fmt.Errorf("moa: flatten: field %q: %w", name, err)
			}
		}
	}
	for name, b := range cols {
		store.Put(prefix+"/"+name, b)
	}
	schema := monet.NewBAT(monet.Void, monet.StrT)
	for _, name := range first.Names {
		schema.MustInsert(monet.VoidValue(), monet.NewStr(name))
	}
	store.Put(prefix+"/_schema", schema)
	return nil
}

// Unflatten reconstructs a set of tuples from the parallel BATs
// registered under prefix.
func Unflatten(store *monet.Store, prefix string) (*Set, error) {
	defer func(start time.Time) { hUnflatten.Observe(time.Since(start)) }(time.Now())
	schema, err := store.Get(prefix + "/_schema")
	if err != nil {
		return nil, fmt.Errorf("moa: unflatten: no schema under %q", prefix)
	}
	names := make([]string, schema.Len())
	cols := make([]*monet.BAT, schema.Len())
	n := -1
	for i := 0; i < schema.Len(); i++ {
		names[i] = schema.Tail(i).Str()
		b, err := store.Get(prefix + "/" + names[i])
		if err != nil {
			return nil, fmt.Errorf("moa: unflatten: missing column %q", names[i])
		}
		cols[i] = b
		if n < 0 {
			n = b.Len()
		} else if b.Len() != n {
			return nil, fmt.Errorf("moa: unflatten: ragged columns under %q", prefix)
		}
	}
	out := &Set{Elems: make([]Value, 0, n)}
	for row := 0; row < n; row++ {
		t := &Tuple{Names: append([]string(nil), names...), Values: make([]Value, len(names))}
		for col := range names {
			t.Values[col] = NewAtom(cols[col].Tail(row))
		}
		out.Elems = append(out.Elems, t)
	}
	return out, nil
}
