package moa

import (
	"fmt"
	"strconv"
	"strings"

	"cobra/internal/monet"
)

// MIL plan emission: the §3 translation made literal. Each FlatSet
// operation can, instead of calling the kernel directly, emit the MIL
// program that performs the same work at the physical layer. The
// emitted plans are verified by milcheck in tests (every structure op
// must type-check) and power the engine's EXPLAIN output.

// MILLit renders an atomic kernel value as a MIL literal.
func MILLit(v monet.Value) (string, error) {
	switch v.Typ {
	case monet.Void:
		return "nil", nil
	case monet.IntT:
		return strconv.FormatInt(v.Int(), 10), nil
	case monet.OIDT:
		return fmt.Sprintf("oid(%d)", v.OID()), nil
	case monet.BoolT:
		if v.Bool() {
			return "true", nil
		}
		return "false", nil
	case monet.FloatT:
		s := strconv.FormatFloat(v.Float(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s, nil
	case monet.StrT:
		return quoteMIL(v.Str())
	}
	return "", fmt.Errorf("moa: no MIL literal for type %v", v.Typ)
}

// quoteMIL quotes a string with the escapes the MIL lexer understands.
func quoteMIL(s string) (string, error) {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if c < 0x20 {
				return "", fmt.Errorf("moa: control byte %#x not representable in a MIL literal", c)
			}
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String(), nil
}

// identSafe converts a field name into a MIL variable suffix.
func identSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PlanFlatten emits the MIL load script equivalent of Flatten: one
// void-headed BAT per field filled by inserts, registered under
// prefix/<field>, plus the prefix/_schema name list.
func PlanFlatten(prefix string, s *Set) (string, error) {
	if s.Len() == 0 {
		return "", fmt.Errorf("moa: cannot plan flatten of an empty set (no schema)")
	}
	first, ok := s.Elems[0].(*Tuple)
	if !ok {
		return "", fmt.Errorf("moa: flatten expects a set of tuples, got %T", s.Elems[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# flatten %d tuple(s) into %s/*\n", s.Len(), prefix)
	for _, name := range first.Names {
		v, _ := first.Field(name)
		a, ok := v.(Atom)
		if !ok {
			return "", fmt.Errorf("moa: flatten: field %q is not atomic", name)
		}
		fmt.Fprintf(&b, "VAR col_%s := new(void, %s);\n", identSafe(name), milTypeName(a.V.Typ))
	}
	for i, e := range s.Elems {
		t, ok := e.(*Tuple)
		if !ok {
			return "", fmt.Errorf("moa: flatten: element %d is not a tuple", i)
		}
		if len(t.Names) != len(first.Names) {
			return "", fmt.Errorf("moa: flatten: element %d arity mismatch", i)
		}
		for _, name := range first.Names {
			v, ok := t.Field(name)
			if !ok {
				return "", fmt.Errorf("moa: flatten: element %d missing field %q", i, name)
			}
			a, ok := v.(Atom)
			if !ok {
				return "", fmt.Errorf("moa: flatten: element %d field %q is not atomic", i, name)
			}
			lit, err := MILLit(a.V)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "col_%s.insert(nil, %s);\n", identSafe(name), lit)
		}
	}
	b.WriteString("VAR schema := new(void, str);\n")
	for _, name := range first.Names {
		q, err := quoteMIL(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "schema.insert(nil, %s);\n", q)
	}
	for _, name := range first.Names {
		q, err := quoteMIL(prefix + "/" + name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "register(%s, col_%s);\n", q, identSafe(name))
	}
	q, err := quoteMIL(prefix + "/_schema")
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "register(%s, schema);\n", q)
	return b.String(), nil
}

func milTypeName(t monet.Type) string {
	switch t {
	case monet.Void:
		return "void"
	case monet.OIDT:
		return "oid"
	case monet.IntT:
		return "int"
	case monet.FloatT:
		return "dbl"
	case monet.StrT:
		return "str"
	case monet.BoolT:
		return "bit"
	}
	return "void"
}

// PlanSelectRange emits the MIL equivalent of SelectRange: uselect
// over the predicate column for the qualifying OIDs, then one semijoin
// per column.
func (fs *FlatSet) PlanSelectRange(dstPrefix, field string, lo, hi monet.Value) (string, error) {
	names, err := fs.Schema()
	if err != nil {
		return "", err
	}
	loLit, err := MILLit(lo)
	if err != nil {
		return "", err
	}
	hiLit, err := MILLit(hi)
	if err != nil {
		return "", err
	}
	fieldBAT, err := quoteMIL(fs.prefix + "/" + field)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# select %s in [%s,%s] from %s into %s\n", field, loLit, hiLit, fs.prefix, dstPrefix)
	fmt.Fprintf(&b, "VAR keys := bat(%s).uselect(%s, %s);\n", fieldBAT, loLit, hiLit)
	for _, name := range names {
		src, err := quoteMIL(fs.prefix + "/" + name)
		if err != nil {
			return "", err
		}
		dst, err := quoteMIL(dstPrefix + "/" + name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "register(%s, bat(%s).semijoin(keys));\n", dst, src)
	}
	srcSchema, err := quoteMIL(fs.prefix + "/_schema")
	if err != nil {
		return "", err
	}
	dstSchema, err := quoteMIL(dstPrefix + "/_schema")
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "register(%s, bat(%s));\n", dstSchema, srcSchema)
	return b.String(), nil
}

// PlanAggregate emits the MIL equivalent of Aggregate: a single kernel
// aggregation over the field column.
func (fs *FlatSet) PlanAggregate(field, op string) (string, error) {
	switch op {
	case "count", "sum", "avg", "max", "min":
	default:
		return "", fmt.Errorf("moa: unknown aggregate %q", op)
	}
	src, err := quoteMIL(fs.prefix + "/" + field)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("RETURN bat(%s).%s;\n", src, op), nil
}

// PlanAggregateWhere emits the MIL equivalent of AggregateWhere: one
// fusedaggr call carrying the whole select→aggregate pipeline, instead
// of a uselect / semijoin / aggregate chain with a materialized
// intermediate. The plan's comment line records the kernel cost gate's
// current fused-vs-fallback decision — the same string EXPLAIN prints
// — so a cached plan is keyed to the execution strategy it was emitted
// under.
func (fs *FlatSet) PlanAggregateWhere(field, op, predField string, lo, hi monet.Value) (string, error) {
	switch op {
	case "count", "sum", "avg", "max", "min":
	default:
		return "", fmt.Errorf("moa: unknown aggregate %q", op)
	}
	loLit, err := MILLit(lo)
	if err != nil {
		return "", err
	}
	hiLit, err := MILLit(hi)
	if err != nil {
		return "", err
	}
	pred, err := quoteMIL(fs.prefix + "/" + predField)
	if err != nil {
		return "", err
	}
	src, err := quoteMIL(fs.prefix + "/" + field)
	if err != nil {
		return "", err
	}
	opLit, err := quoteMIL(op)
	if err != nil {
		return "", err
	}
	decision := fs.store.FusedDecision(fs.prefix+"/"+predField, fs.prefix+"/"+field, lo, hi, op)
	var b strings.Builder
	fmt.Fprintf(&b, "# %s(%s) where %s in [%s,%s]  %s\n", op, field, predField, loLit, hiLit, decision)
	fmt.Fprintf(&b, "RETURN fusedaggr(%s, %s, %s, %s, %s);\n", pred, loLit, hiLit, src, opLit)
	return b.String(), nil
}

// PlanJoinOn emits the MIL equivalent of JoinOn. The key columns join
// into [l-oid, r-oid] pairs; marking the pairs yields per-side gather
// maps from output row number to source OID, and a join through each
// source column gathers the output columns in pair order.
func (fs *FlatSet) PlanJoinOn(other *FlatSet, dstPrefix, leftField, rightField string) (string, error) {
	lNames, err := fs.Schema()
	if err != nil {
		return "", err
	}
	rNames, err := other.Schema()
	if err != nil {
		return "", err
	}
	lk, err := quoteMIL(fs.prefix + "/" + leftField)
	if err != nil {
		return "", err
	}
	rk, err := quoteMIL(other.prefix + "/" + rightField)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# join %s.%s == %s.%s into %s\n", fs.prefix, leftField, other.prefix, rightField, dstPrefix)
	fmt.Fprintf(&b, "VAR pairs := bat(%s).join(bat(%s).reverse);\n", lk, rk)
	b.WriteString("VAR lmap := pairs.mark.reverse;\n")
	b.WriteString("VAR rmap := pairs.reverse.mark.reverse;\n")
	b.WriteString("VAR schema := new(void, str);\n")
	emit := func(side string, prefix, name string) error {
		src, err := quoteMIL(prefix + "/" + name)
		if err != nil {
			return err
		}
		dst, err := quoteMIL(dstPrefix + "/" + name)
		if err != nil {
			return err
		}
		q, err := quoteMIL(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "register(%s, %s.join(bat(%s)));\n", dst, side, src)
		fmt.Fprintf(&b, "schema.insert(nil, %s);\n", q)
		return nil
	}
	seen := map[string]bool{}
	for _, name := range lNames {
		if err := emit("lmap", fs.prefix, name); err != nil {
			return "", err
		}
		seen[name] = true
	}
	for _, name := range rNames {
		if name == rightField || seen[name] {
			continue
		}
		if err := emit("rmap", other.prefix, name); err != nil {
			return "", err
		}
	}
	dstSchema, err := quoteMIL(dstPrefix + "/_schema")
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "register(%s, schema);\n", dstSchema)
	return b.String(), nil
}

// PlanMaterialize emits the MIL that dumps every column of the
// flattened set, the shell-level equivalent of Unflatten.
func (fs *FlatSet) PlanMaterialize() (string, error) {
	names, err := fs.Schema()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# materialize %s\n", fs.prefix)
	for _, name := range names {
		src, err := quoteMIL(fs.prefix + "/" + name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "print(bat(%s));\n", src)
	}
	return b.String(), nil
}
