package moa

import (
	"testing"

	"cobra/internal/mil"
	"cobra/internal/milcheck"
	"cobra/internal/monet"
)

// planFixture flattens the two familiar F1 sets used across the moa
// tests: lap records and driver records.
func planFixture(t *testing.T) (*monet.Store, *FlatSet, *FlatSet) {
	t.Helper()
	store := monet.NewStore()
	laps := NewSet(
		MustTuple([]string{"lap", "time", "driver"},
			[]Value{IntAtom(1), FloatAtom(83.2), StrAtom("mschumacher")}),
		MustTuple([]string{"lap", "time", "driver"},
			[]Value{IntAtom(2), FloatAtom(85.9), StrAtom("mschumacher")}),
		MustTuple([]string{"lap", "time", "driver"},
			[]Value{IntAtom(1), FloatAtom(84.1), StrAtom("dcoulthard")}),
	)
	if err := Flatten(store, "laps", laps); err != nil {
		t.Fatal(err)
	}
	drivers := NewSet(
		MustTuple([]string{"driver", "team"},
			[]Value{StrAtom("mschumacher"), StrAtom("ferrari")}),
		MustTuple([]string{"driver", "team"},
			[]Value{StrAtom("dcoulthard"), StrAtom("mclaren")}),
	)
	if err := Flatten(store, "drivers", drivers); err != nil {
		t.Fatal(err)
	}
	lfs, err := Open(store, "laps")
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := Open(store, "drivers")
	if err != nil {
		t.Fatal(err)
	}
	return store, lfs, dfs
}

// checkPlan type-checks an emitted plan against the store and fails on
// any diagnostic at all — emitted plans must be warning-clean too.
func checkPlan(t *testing.T, store *monet.Store, plan string) *milcheck.Result {
	t.Helper()
	prog, err := mil.Parse(plan)
	if err != nil {
		t.Fatalf("emitted plan does not parse: %v\nplan:\n%s", err, plan)
	}
	res := milcheck.Analyze(prog, &milcheck.Options{ResolveBAT: milcheck.StoreResolver(store)})
	for _, d := range res.Diags {
		t.Errorf("emitted plan diagnostic: %s", d)
	}
	if t.Failed() {
		t.Fatalf("plan:\n%s", plan)
	}
	return res
}

// tailStrings renders a BAT's tail column for comparison.
func tailStrings(b *monet.BAT) []string {
	out := make([]string, b.Len())
	for i := range out {
		out[i] = b.Tail(i).String()
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanFlattenTypeChecksAndRoundTrips(t *testing.T) {
	_, lfs, _ := planFixture(t)
	set, err := lfs.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFlatten("laps2", set)
	if err != nil {
		t.Fatal(err)
	}
	fresh := monet.NewStore()
	res := checkPlan(t, fresh, plan)
	if got := res.Registered["laps2/time"].String(); got != "BAT[void,dbl]" {
		t.Errorf("laps2/time inferred as %s, want BAT[void,dbl]", got)
	}
	if got := res.Registered["laps2/_schema"].String(); got != "BAT[void,str]" {
		t.Errorf("laps2/_schema inferred as %s, want BAT[void,str]", got)
	}

	// The plan must reproduce the original set when executed.
	if _, err := mil.NewInterp(fresh).Exec(plan); err != nil {
		t.Fatalf("plan execution: %v\nplan:\n%s", err, plan)
	}
	back, err := Unflatten(fresh, "laps2")
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != set.String() {
		t.Errorf("round trip mismatch:\n got %s\nwant %s", back, set)
	}
}

func TestPlanSelectRangeMatchesKernelExecution(t *testing.T) {
	store, lfs, _ := planFixture(t)
	lo, hi := monet.NewFloat(83.0), monet.NewFloat(85.0)
	plan, err := lfs.PlanSelectRange("fastP", "time", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	res := checkPlan(t, store, plan)
	if got := res.Vars["keys"].String(); got != "BAT[oid,void]" {
		t.Errorf("keys inferred as %s, want BAT[oid,void]", got)
	}
	if got := res.Registered["fastP/driver"].String(); got != "BAT[void,str]" {
		t.Errorf("fastP/driver inferred as %s, want BAT[void,str]", got)
	}

	if _, err := mil.NewInterp(store).Exec(plan); err != nil {
		t.Fatalf("plan execution: %v\nplan:\n%s", err, plan)
	}
	if _, err := lfs.SelectRange("fastG", "time", lo, hi); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"lap", "time", "driver"} {
		p, err := store.Get("fastP/" + col)
		if err != nil {
			t.Fatal(err)
		}
		g, err := store.Get("fastG/" + col)
		if err != nil {
			t.Fatal(err)
		}
		if !eqStrings(tailStrings(p), tailStrings(g)) {
			t.Errorf("column %s: plan %v vs kernel %v", col, tailStrings(p), tailStrings(g))
		}
	}
}

func TestPlanAggregateAllOps(t *testing.T) {
	store, lfs, _ := planFixture(t)
	wantType := map[string]string{
		"count": "int", "sum": "dbl", "avg": "dbl", "max": "dbl", "min": "dbl",
	}
	for _, op := range []string{"count", "sum", "avg", "max", "min"} {
		plan, err := lfs.PlanAggregate("time", op)
		if err != nil {
			t.Fatal(err)
		}
		res := checkPlan(t, store, plan)
		if got := res.Value.String(); got != wantType[op] {
			t.Errorf("%s plan value inferred as %s, want %s", op, got, wantType[op])
		}
		pv, err := mil.NewInterp(store).Exec(plan)
		if err != nil {
			t.Fatalf("%s plan execution: %v", op, err)
		}
		gv, err := lfs.Aggregate("time", op)
		if err != nil {
			t.Fatal(err)
		}
		if pv.Atom.String() != gv.String() {
			t.Errorf("%s: plan %s vs kernel %s", op, pv.Atom, gv)
		}
	}
	if _, err := lfs.PlanAggregate("time", "median"); err == nil {
		t.Error("expected error for unknown aggregate")
	}
}

func TestPlanJoinOnMatchesKernelExecution(t *testing.T) {
	store, lfs, dfs := planFixture(t)
	plan, err := lfs.PlanJoinOn(dfs, "joinedP", "driver", "driver")
	if err != nil {
		t.Fatal(err)
	}
	res := checkPlan(t, store, plan)
	if got := res.Vars["pairs"].String(); got != "BAT[oid,oid]" {
		t.Errorf("pairs inferred as %s, want BAT[oid,oid]", got)
	}
	if got := res.Registered["joinedP/team"].String(); got != "BAT[oid,str]" {
		t.Errorf("joinedP/team inferred as %s, want BAT[oid,str]", got)
	}

	if _, err := mil.NewInterp(store).Exec(plan); err != nil {
		t.Fatalf("plan execution: %v\nplan:\n%s", err, plan)
	}
	if _, err := lfs.JoinOn(dfs, "joinedG", "driver", "driver"); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"lap", "time", "driver", "team"} {
		p, err := store.Get("joinedP/" + col)
		if err != nil {
			t.Fatal(err)
		}
		g, err := store.Get("joinedG/" + col)
		if err != nil {
			t.Fatal(err)
		}
		if !eqStrings(tailStrings(p), tailStrings(g)) {
			t.Errorf("column %s: plan %v vs kernel %v", col, tailStrings(p), tailStrings(g))
		}
	}
	// The join plan's schema must list left fields then right-only
	// fields, key deduplicated.
	sch, err := store.Get("joinedP/_schema")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, 4)
	for _, n := range []string{"lap", "time", "driver", "team"} {
		want = append(want, monet.NewStr(n).String())
	}
	if got := tailStrings(sch); !eqStrings(got, want) {
		t.Errorf("schema = %v, want %v", got, want)
	}
}

func TestPlanMaterializeTypeChecks(t *testing.T) {
	store, lfs, _ := planFixture(t)
	plan, err := lfs.PlanMaterialize()
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, store, plan)
	if _, err := mil.NewInterp(store).Exec(plan); err != nil {
		t.Fatalf("plan execution: %v", err)
	}
}

func TestMILLit(t *testing.T) {
	cases := []struct {
		v    monet.Value
		want string
	}{
		{monet.NewInt(42), "42"},
		{monet.NewFloat(1.5), "1.5"},
		{monet.NewFloat(2), "2.0"},
		{monet.NewStr(`he said "hi"`), `"he said \"hi\""`},
		{monet.NewOID(7), "oid(7)"},
		{monet.VoidValue(), "nil"},
	}
	for _, c := range cases {
		got, err := MILLit(c.v)
		if err != nil {
			t.Fatalf("MILLit(%v): %v", c.v, err)
		}
		if got != c.want {
			t.Errorf("MILLit(%v) = %s, want %s", c.v, got, c.want)
		}
		// Every emitted literal must parse back to the same value.
		iv, err := mil.NewInterp(nil).Exec("RETURN " + got + ";")
		if err != nil {
			t.Fatalf("literal %s does not evaluate: %v", got, err)
		}
		if c.v.Typ != monet.Void && iv.Atom.String() != c.v.String() {
			t.Errorf("literal %s evaluates to %s, want %s", got, iv.Atom, c.v)
		}
	}
}
