// Package qcache is the semantic query-result cache of the serving
// layer. Entries are keyed on the canonical form of a COQL statement
// and guarded by an epoch fingerprint — the per-name mutation epochs
// of every kernel BAT the query reads (its DepNames dependency set).
// A lookup whose fingerprint differs from the stored one invalidates
// the entry instead of serving it, so appends and live ingest can
// never surface stale rows: freshness is correct by construction, no
// invalidation callbacks needed.
//
// Why a fingerprint of all epochs and not their max: epochs are
// per-name counters, so after appending to dependency A of {A, B} the
// set's max can stay unchanged (B's larger epoch masks A's bump) and a
// max-keyed cache would serve stale rows. Equality over the full
// epoch vector has no such collision.
//
// The cache is bounded by a byte budget with LRU eviction, and
// concurrent identical misses collapse into one execution
// (single-flight): under a thundering herd of the same query, one
// request computes and the rest wait for its result. A result stores
// under the fingerprint observed BEFORE execution began — if a write
// raced the execution, the stored entry is already stale by its own
// fingerprint and the next lookup recomputes; the conservative
// direction, never the stale one.
package qcache

import (
	"container/list"
	"errors"
	"strconv"
	"sync"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Cache metrics, exported under /metrics as cobra_qcache_*. The
// hits:misses ratio is the ramp signal for the qcache.enabled gate;
// invalidations track write pressure on cached queries.
var (
	cHits     = obs.C("qcache.hits")
	cMisses   = obs.C("qcache.misses")
	cEvict    = obs.C("qcache.evictions")
	cInval    = obs.C("qcache.invalidations")
	cShared   = obs.C("qcache.singleflight_waits")
	cOversize = obs.C("qcache.oversize_skips")
	gEntries  = obs.G("qcache.entries")
	gBytes    = obs.G("qcache.bytes")
)

// DefaultMaxBytes is the byte budget a zero-configured cache gets:
// enough for tens of thousands of typical result sets without
// mattering next to the BATs themselves.
const DefaultMaxBytes = 64 << 20

// entryOverhead approximates the fixed per-entry bookkeeping cost
// (map slot, list element, headers) charged against the byte budget.
const entryOverhead = 128

// Fingerprint is the freshness key of one cached result: the epoch of
// every kernel BAT the query depends on, in DepNames order, rendered
// to a comparable string.
func Fingerprint(store *monet.Store, deps []string) string {
	epochs := store.Epochs(deps)
	// Epochs are small integers; decimal with a separator is compact
	// and collision-free for equality comparison.
	buf := make([]byte, 0, 8*len(epochs))
	for i, e := range epochs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, e, 10)
	}
	return string(buf)
}

// errAborted is handed to collapsed waiters whose flight's exec
// panicked instead of returning.
var errAborted = errors.New("qcache: execution aborted")

// entry is one cached result set.
type entry struct {
	key   string
	fp    string
	lines []string
	bytes int64
	elem  *list.Element
}

// flight is one in-progress execution that concurrent identical
// misses wait on.
type flight struct {
	done  chan struct{}
	lines []string
	err   error
}

// Stats is a point-in-time snapshot of one cache's counters, the body
// of the CACHESTATS protocol verb.
type Stats struct {
	// Hits counts lookups served from a stored, fingerprint-fresh entry.
	Hits int64
	// Misses counts lookups that had to execute the query.
	Misses int64
	// SingleflightWaits counts lookups collapsed onto another
	// request's in-progress execution.
	SingleflightWaits int64
	// Evictions counts entries removed by the LRU byte budget.
	Evictions int64
	// Invalidations counts entries removed because a dependency epoch
	// moved (an append or ingest made them stale).
	Invalidations int64
	// Entries and Bytes are the current cache population and its charge
	// against MaxBytes.
	Entries, Bytes, MaxBytes int64
}

// Cache is a bounded, single-flight, epoch-validated result cache.
// It is safe for concurrent use. Result line slices handed out by Do
// are shared and must be treated as immutable by callers.
type Cache struct {
	mu      sync.Mutex
	maxB    int64
	entries map[string]*entry
	lru     *list.List // front = most recent
	flights map[string]*flight
	bytes   int64

	hits, misses, waits, evicts, invals int64
}

// New returns an empty cache bounded to maxBytes (DefaultMaxBytes
// when maxBytes <= 0).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxB:    maxBytes,
		entries: map[string]*entry{},
		lru:     list.New(),
		flights: map[string]*flight{},
	}
}

// Do serves the result for key at freshness fp: from the cache when a
// fresh entry exists, by waiting on an identical in-progress
// execution, or by running exec and storing its result under fp.
// hit reports whether exec was avoided. An exec error is returned to
// every collapsed waiter and nothing is stored.
func (c *Cache) Do(key, fp string, exec func() ([]string, error)) (lines []string, hit bool, err error) {
	fk := key + "\x00" + fp
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.fp == fp {
			c.lru.MoveToFront(e.elem)
			c.hits++
			lines = e.lines
			c.mu.Unlock()
			cHits.Inc()
			return lines, true, nil
		}
		// A dependency epoch moved since this entry was stored: the
		// entry can never be served again (epochs only advance), drop it.
		c.removeLocked(e)
		c.invals++
		cInval.Inc()
	}
	if f, ok := c.flights[fk]; ok {
		c.waits++
		c.mu.Unlock()
		cShared.Inc()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.lines, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[fk] = f
	c.misses++
	c.mu.Unlock()
	cMisses.Inc()

	completed := false
	defer func() {
		// Always release the flight — a panicking exec must not strand
		// collapsed waiters on a channel nobody will close, nor hand
		// them a result that was never computed.
		c.mu.Lock()
		delete(c.flights, fk)
		if completed && f.err == nil {
			c.storeLocked(key, fp, f.lines)
		} else if !completed {
			f.err = errAborted
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.lines, f.err = exec()
	completed = true
	return f.lines, false, f.err
}

// Lookup reports whether a fresh entry exists for key at fp without
// executing anything or perturbing LRU order. Used by tests and the
// EXPLAIN surface.
func (c *Cache) Lookup(key, fp string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.fp != fp {
		return nil, false
	}
	return e.lines, true
}

// Flush drops every entry (counters survive).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.removeLocked(e)
	}
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		SingleflightWaits: c.waits,
		Evictions:         c.evicts,
		Invalidations:     c.invals,
		Entries:           int64(len(c.entries)),
		Bytes:             c.bytes,
		MaxBytes:          c.maxB,
	}
}

// storeLocked inserts a result, evicting from the LRU tail until the
// byte budget holds. Oversize results (bigger than the whole budget)
// are not stored at all.
func (c *Cache) storeLocked(key, fp string, lines []string) {
	size := int64(len(key)+len(fp)) + entryOverhead
	for _, l := range lines {
		size += int64(len(l)) + 16
	}
	if size > c.maxB {
		cOversize.Inc()
		return
	}
	if old, ok := c.entries[key]; ok {
		// A concurrent flight for a different fingerprint finished
		// first; replace whichever is older — last writer wins, and the
		// fingerprint check at lookup keeps either answer safe.
		c.removeLocked(old)
	}
	e := &entry{key: key, fp: fp, lines: lines, bytes: size}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	for c.bytes > c.maxB {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.evicts++
		cEvict.Inc()
	}
	gEntries.Set(int64(len(c.entries)))
	gBytes.Set(c.bytes)
}

// removeLocked unlinks an entry and returns its bytes to the budget.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	gEntries.Set(int64(len(c.entries)))
	gBytes.Set(c.bytes)
}
