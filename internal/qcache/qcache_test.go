package qcache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"cobra/internal/monet"
)

func mustLines(t *testing.T, c *Cache, key, fp string, lines []string) (got []string, hit bool) {
	t.Helper()
	got, hit, err := c.Do(key, fp, func() ([]string, error) { return lines, nil })
	if err != nil {
		t.Fatal(err)
	}
	return got, hit
}

func TestMissThenHit(t *testing.T) {
	c := New(1 << 20)
	got, hit := mustLines(t, c, "q1", "1", []string{"a", "b"})
	if hit || len(got) != 2 {
		t.Fatalf("first Do = %v hit=%v", got, hit)
	}
	execs := 0
	got, hit, err := c.Do("q1", "1", func() ([]string, error) { execs++; return nil, nil })
	if err != nil || !hit || execs != 0 || len(got) != 2 {
		t.Fatalf("second Do = %v hit=%v execs=%d err=%v", got, hit, execs, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(1 << 20)
	mustLines(t, c, "q1", "1", []string{"old"})
	got, hit := mustLines(t, c, "q1", "2", []string{"new"})
	if hit || got[0] != "new" {
		t.Fatalf("stale fingerprint served: %v hit=%v", got, hit)
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The fresh entry serves under the new fingerprint...
	if _, hit := mustLines(t, c, "q1", "2", nil); !hit {
		t.Fatal("fresh entry not served")
	}
	// ...and never again under the old one (epochs only advance).
	if _, ok := c.Lookup("q1", "1"); ok {
		t.Fatal("old fingerprint still resident")
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.Do("q", "1", func() ([]string, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	execs := 0
	_, hit, err := c.Do("q", "1", func() ([]string, error) { execs++; return []string{"ok"}, nil })
	if err != nil || hit || execs != 1 {
		t.Fatalf("error was cached: hit=%v execs=%d err=%v", hit, execs, err)
	}
}

func TestEmptyResultCached(t *testing.T) {
	c := New(1 << 20)
	mustLines(t, c, "q", "1", nil)
	execs := 0
	_, hit, err := c.Do("q", "1", func() ([]string, error) { execs++; return nil, nil })
	if err != nil || !hit || execs != 0 {
		t.Fatalf("empty result not cached: hit=%v execs=%d", hit, execs)
	}
}

func TestLRUByteBudgetEviction(t *testing.T) {
	// Budget for roughly three small entries.
	c := New(3 * 400)
	line := make([]byte, 128)
	for i := 0; i < 6; i++ {
		mustLines(t, c, fmt.Sprintf("q%d", i), "1", []string{string(line)})
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("over budget: %+v", st)
	}
	// The most recent entry survives, the oldest is gone.
	if _, ok := c.Lookup("q5", "1"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Lookup("q0", "1"); ok {
		t.Fatal("oldest entry survived a full wrap")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	// Room for three ~275-byte entries; a fourth forces one eviction.
	c := New(900)
	line := make([]byte, 128)
	for i := 0; i < 3; i++ {
		mustLines(t, c, fmt.Sprintf("q%d", i), "1", []string{string(line)})
	}
	// Touch q0 so q1 becomes the eviction victim.
	if _, hit := mustLines(t, c, "q0", "1", nil); !hit {
		t.Fatal("warm entry missed")
	}
	mustLines(t, c, "q3", "1", []string{string(line)})
	if _, ok := c.Lookup("q0", "1"); !ok {
		t.Fatal("recently touched entry evicted")
	}
	if _, ok := c.Lookup("q1", "1"); ok {
		t.Fatal("LRU victim survived")
	}
}

func TestOversizeResultNotStored(t *testing.T) {
	c := New(256)
	big := make([]byte, 1024)
	mustLines(t, c, "huge", "1", []string{string(big)})
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize entry stored: %+v", st)
	}
}

func TestSingleFlightCollapses(t *testing.T) {
	c := New(1 << 20)
	var execs atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([][]string, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lines, hit, err := c.Do("q", "1", func() ([]string, error) {
				execs.Add(1)
				<-gate
				return []string{"r"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = lines, hit
		}(i)
	}
	// Let the herd pile up on the flight, then release it. A short
	// sleep-free sync: wait until one exec started.
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("exec ran %d times under single-flight", got)
	}
	for i := range results {
		if len(results[i]) != 1 || results[i][0] != "r" {
			t.Fatalf("waiter %d got %v", i, results[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleflightWaits+st.Hits != n-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightPanicReleasesWaiters(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		c.Do("q", "1", func() ([]string, error) {
			close(started)
			<-release
			panic("exec exploded")
		})
	}()
	<-started
	go func() {
		_, _, err := c.Do("q", "1", func() ([]string, error) { return []string{"fresh"}, nil })
		waited <- err
	}()
	close(release)
	// The waiter must not hang: the panicking flight closes done on the
	// way out, handing waiters an "aborted" error. A waiter arriving
	// after the flight was torn down re-executes instead; both paths
	// terminate, neither fabricates an empty result as a success from
	// a shared flight.
	<-waited
}

func TestFingerprintSnapshotsStore(t *testing.T) {
	store := monet.NewStore()
	b := monet.NewBATCap(monet.Void, monet.IntT, 1)
	b.MustInsert(monet.VoidValue(), monet.NewInt(1))
	if err := store.Put("a", b); err != nil {
		t.Fatal(err)
	}
	fp1 := Fingerprint(store, []string{"a", "b"})
	fp2 := Fingerprint(store, []string{"a", "b"})
	if fp1 != fp2 {
		t.Fatalf("stable store, unstable fingerprint: %q vs %q", fp1, fp2)
	}
	if err := store.Append("a", monet.VoidValue(), monet.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if fp3 := Fingerprint(store, []string{"a", "b"}); fp3 == fp1 {
		t.Fatal("append did not move the fingerprint")
	}
	// The max-epoch trap the fingerprint exists to avoid: bumping a
	// low-epoch dependency must change the vector even when another
	// dependency holds a larger epoch.
	for i := 0; i < 5; i++ {
		if err := store.Append("a", monet.VoidValue(), monet.NewInt(3)); err != nil {
			t.Fatal(err)
		}
	}
	c := monet.NewBATCap(monet.Void, monet.IntT, 1)
	c.MustInsert(monet.VoidValue(), monet.NewInt(1))
	if err := store.Put("b", c); err != nil {
		t.Fatal(err)
	}
	before := Fingerprint(store, []string{"a", "b"})
	if err := store.Append("b", monet.VoidValue(), monet.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if after := Fingerprint(store, []string{"a", "b"}); after == before {
		t.Fatal("low-epoch dependency bump lost in the fingerprint")
	}
}

func TestFlush(t *testing.T) {
	c := New(1 << 20)
	mustLines(t, c, "q", "1", []string{"x"})
	c.Flush()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Flush left %+v", st)
	}
}
