// Package audio implements the paper's audio characterization scheme
// (§5.2): short-time energy over frequency sub-bands, autocorrelation
// pitch, mel-frequency cepstral coefficients, pause rate, speech
// endpoint detection with the paper's thresholds, and the per-clip
// statistics (average, maximum, dynamic range) that feed the
// probabilistic networks.
//
// Terminology follows the paper: a *frame* is a 10 ms segment and a
// *clip* is a 0.1 s segment (10 frames). Sub-band energies are computed
// from the frame power spectrum, which is equivalent to the paper's
// "STE after sub-band division" filtering formulation.
package audio

import (
	"errors"
	"fmt"
	"math"

	"cobra/internal/dsp"
)

// Config parameterizes the analyzer. DefaultConfig matches the paper.
type Config struct {
	// SampleRate of the input PCM in Hz (the paper digitizes at 22 kHz).
	SampleRate float64
	// FrameDur is the frame duration in seconds (paper: 0.01 s).
	FrameDur float64
	// ClipDur is the clip duration in seconds (paper: 0.1 s).
	ClipDur float64
	// WindowDur is the analysis window length in seconds; windows are
	// centered on frame starts (hop = FrameDur).
	WindowDur float64
	// EndpointSTE is the speech endpoint threshold on the weighted sum
	// of average, maximum and dynamic range of low-band STE
	// (paper: 2.2e-3).
	EndpointSTE float64
	// EndpointMFCC is the endpoint threshold on the sum of the average
	// and dynamic range of the first three MFCCs (paper: 1.3).
	EndpointMFCC float64
	// SilenceEnergy is the per-frame full-band energy below which a
	// frame counts as silent for the pause-rate feature.
	SilenceEnergy float64
	// NumMFCC is the number of cepstral coefficients (paper: 12, of
	// which the first three are used for detection).
	NumMFCC int
	// PitchMinHz and PitchMaxHz bound the pitch search (speech pitch is
	// "usually under 1 kHz"; the useful range starts near 50 Hz).
	PitchMinHz float64
	PitchMaxHz float64
}

// DefaultConfig returns the paper's parameters for 22 kHz audio.
func DefaultConfig() Config {
	return Config{
		SampleRate:    22050,
		FrameDur:      0.010,
		ClipDur:       0.100,
		WindowDur:     0.020,
		EndpointSTE:   2.2e-3,
		EndpointMFCC:  1.3,
		SilenceEnergy: 1e-4,
		NumMFCC:       12,
		PitchMinHz:    50,
		PitchMaxHz:    1000,
	}
}

// FrameFeatures holds the per-frame measurements.
type FrameFeatures struct {
	// STELow is short-time energy in the 0–882 Hz band used for speech
	// endpoint detection.
	STELow float64
	// STEMid is short-time energy in the 882–2205 Hz band used for
	// excited-speech detection.
	STEMid float64
	// Pitch is the fundamental frequency estimate in Hz (0 when the
	// frame is unvoiced).
	Pitch float64
	// MFCC3 is the sum of the first three mel-frequency cepstral
	// coefficients.
	MFCC3 float64
	// Silent reports whether the frame's full-band energy falls below
	// the silence threshold.
	Silent bool
}

// ClipFeatures aggregates one 0.1 s clip: the unit of evidence for the
// probabilistic networks.
type ClipFeatures struct {
	// Time is the clip start in seconds.
	Time float64
	// Speech reports the endpoint detector's decision for the clip.
	Speech bool
	// PauseRate is the fraction of silent frames in the clip.
	PauseRate float64
	// Low-band STE statistics (endpoint detection).
	STELowAvg, STELowMax, STELowDyn float64
	// Mid-band STE statistics (excited speech).
	STEAvg, STEMax, STEDyn float64
	// Pitch statistics over voiced frames.
	PitchAvg, PitchMax, PitchDyn float64
	// MFCC statistics (first three coefficients).
	MFCCAvg, MFCCMax, MFCCDyn float64
}

// Analyzer computes frame and clip features from PCM samples.
type Analyzer struct {
	cfg      Config
	mel      *dsp.MelFilterbank
	frameLen int
	winLen   int
	nfft     int
	window   []float64
	binHz    float64
	minLag   int
	maxLag   int
}

// NewAnalyzer validates the configuration and builds an analyzer.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if cfg.SampleRate <= 0 || cfg.FrameDur <= 0 || cfg.ClipDur <= 0 {
		return nil, errors.New("audio: sample rate and durations must be positive")
	}
	if cfg.ClipDur < cfg.FrameDur {
		return nil, errors.New("audio: clip shorter than frame")
	}
	if cfg.NumMFCC < 3 {
		return nil, fmt.Errorf("audio: NumMFCC %d < 3", cfg.NumMFCC)
	}
	if cfg.WindowDur < cfg.FrameDur {
		cfg.WindowDur = cfg.FrameDur
	}
	if cfg.PitchMinHz <= 0 || cfg.PitchMaxHz <= cfg.PitchMinHz {
		return nil, errors.New("audio: invalid pitch range")
	}
	a := &Analyzer{
		cfg:      cfg,
		frameLen: int(cfg.SampleRate * cfg.FrameDur),
		winLen:   int(cfg.SampleRate * cfg.WindowDur),
	}
	if a.frameLen < 8 {
		return nil, errors.New("audio: frame too short")
	}
	a.nfft = 1
	for a.nfft < a.winLen {
		a.nfft <<= 1
	}
	a.window = dsp.HammingWindow(a.winLen)
	a.binHz = cfg.SampleRate / float64(a.nfft)
	// MFCCs are computed over the low-passed 0–882 Hz region (§5.2).
	mel, err := dsp.NewMelFilterbank(2*cfg.NumMFCC, a.nfft/2+1, cfg.SampleRate, 0, 882)
	if err != nil {
		return nil, err
	}
	a.mel = mel
	a.minLag = int(cfg.SampleRate / cfg.PitchMaxHz)
	a.maxLag = int(cfg.SampleRate / cfg.PitchMinHz)
	if a.maxLag >= a.winLen {
		a.maxLag = a.winLen - 1
	}
	if a.minLag < 2 {
		a.minLag = 2
	}
	return a, nil
}

// FrameLen returns the number of samples per frame.
func (a *Analyzer) FrameLen() int { return a.frameLen }

// FramesPerClip returns the number of frames per clip.
func (a *Analyzer) FramesPerClip() int {
	return int(math.Round(a.cfg.ClipDur / a.cfg.FrameDur))
}

// AnalyzeFrames computes per-frame features for the whole signal.
func (a *Analyzer) AnalyzeFrames(samples []float64) []FrameFeatures {
	nFrames := len(samples) / a.frameLen
	out := make([]FrameFeatures, nFrames)
	re := make([]float64, a.nfft)
	im := make([]float64, a.nfft)
	for f := 0; f < nFrames; f++ {
		start := f * a.frameLen
		end := start + a.winLen
		if end > len(samples) {
			end = len(samples)
		}
		win := samples[start:end]

		// Full-band energy for the silence decision.
		e := dsp.Energy(win)
		ff := &out[f]
		ff.Silent = e < a.cfg.SilenceEnergy

		// Windowed power spectrum.
		for i := range re {
			re[i], im[i] = 0, 0
		}
		for i, v := range win {
			re[i] = v * a.window[i]
		}
		dsp.FFT(re, im)
		// Sub-band energies. Normalizing by window length keeps the
		// scale comparable to time-domain STE.
		lowHi := int(882 / a.binHz)
		midHi := int(2205 / a.binHz)
		var low, mid, full float64
		half := a.nfft / 2
		power := make([]float64, half+1)
		for b := 0; b <= half; b++ {
			p := (re[b]*re[b] + im[b]*im[b]) / float64(a.nfft)
			power[b] = p
			full += p
			if b <= lowHi {
				low += p
			} else if b <= midHi {
				mid += p
			}
		}
		norm := float64(len(win))
		ff.STELow = low / norm
		ff.STEMid = mid / norm

		// MFCCs from the mel filterbank over the low band.
		melE := a.mel.Apply(power)
		cc := dsp.DCTII(melE, 3)
		ff.MFCC3 = cc[0] + cc[1] + cc[2]

		// Pitch by autocorrelation over voiced-plausible lags.
		if !ff.Silent {
			ff.Pitch = a.pitch(win)
		}
	}
	return out
}

// pitch estimates the fundamental frequency of one analysis window by
// normalized autocorrelation peak picking; it returns 0 for frames
// judged unvoiced.
func (a *Analyzer) pitch(win []float64) float64 {
	ac := dsp.Autocorrelation(win, a.maxLag)
	if len(ac) == 0 || ac[0] <= 0 {
		return 0
	}
	hi := a.maxLag
	if hi >= len(ac) {
		hi = len(ac) - 1
	}
	// Skip the decaying shoulder of the lag-0 lobe: begin the peak
	// search only after the autocorrelation first crosses zero,
	// otherwise small lags on the main lobe win spuriously.
	start := a.minLag
	for start <= hi && ac[start] > 0 {
		start++
	}
	if start > hi {
		return 0 // no zero crossing: not periodic within range
	}
	bestLag, bestVal := 0, 0.0
	for lag := start; lag <= hi; lag++ {
		v := ac[lag] / ac[0]
		if v > bestVal {
			bestVal, bestLag = v, lag
		}
	}
	// Voicing gate: periodic speech has a strong normalized peak.
	if bestLag == 0 || bestVal < 0.30 {
		return 0
	}
	return a.cfg.SampleRate / float64(bestLag)
}

// Analyze computes clip features for the whole signal, running the
// speech endpoint decision per clip.
func (a *Analyzer) Analyze(samples []float64) []ClipFeatures {
	frames := a.AnalyzeFrames(samples)
	return a.Clips(frames)
}

// Clips aggregates per-frame features into per-clip statistics.
func (a *Analyzer) Clips(frames []FrameFeatures) []ClipFeatures {
	fpc := a.FramesPerClip()
	nClips := len(frames) / fpc
	out := make([]ClipFeatures, nClips)
	for c := 0; c < nClips; c++ {
		chunk := frames[c*fpc : (c+1)*fpc]
		cf := &out[c]
		cf.Time = float64(c) * a.cfg.ClipDur

		steLow := make([]float64, len(chunk))
		steMid := make([]float64, len(chunk))
		mfcc := make([]float64, len(chunk))
		var pitches []float64
		silent := 0
		for i, fr := range chunk {
			steLow[i] = fr.STELow
			steMid[i] = fr.STEMid
			mfcc[i] = fr.MFCC3
			if fr.Silent {
				silent++
			}
			if fr.Pitch > 0 {
				pitches = append(pitches, fr.Pitch)
			}
		}
		cf.PauseRate = float64(silent) / float64(len(chunk))
		cf.STELowAvg = dsp.Mean(steLow)
		cf.STELowMax = dsp.Max(steLow)
		cf.STELowDyn = dsp.DynamicRange(steLow)
		cf.STEAvg = dsp.Mean(steMid)
		cf.STEMax = dsp.Max(steMid)
		cf.STEDyn = dsp.DynamicRange(steMid)
		cf.MFCCAvg = dsp.Mean(mfcc)
		cf.MFCCMax = dsp.Max(mfcc)
		cf.MFCCDyn = dsp.DynamicRange(mfcc)
		if len(pitches) > 0 {
			cf.PitchAvg = dsp.Mean(pitches)
			cf.PitchMax = dsp.Max(pitches)
			cf.PitchDyn = dsp.DynamicRange(pitches)
		}

		// Speech endpoint decision (§5.2): a weighted sum of the
		// average, maximum and dynamic range of low-band STE against
		// 2.2e-3, and a low-band cepstral score against 1.3. The
		// cepstral statistic is affinely rescaled so that the paper's
		// threshold separates low-band-dominated speech from engine and
		// background noise under this implementation's mel floor.
		steScore := 1.0*cf.STELowAvg + 0.5*cf.STELowMax + 0.3*cf.STELowDyn
		mfccScore := (cf.MFCCAvg + 280) / 60
		cf.Speech = steScore > a.cfg.EndpointSTE && mfccScore > a.cfg.EndpointMFCC
	}
	return out
}

// SpeechSegments merges consecutive speech clips into [start, end)
// second intervals, bridging gaps up to maxGap seconds and dropping
// segments shorter than minDur seconds.
func SpeechSegments(clips []ClipFeatures, clipDur, maxGap, minDur float64) [][2]float64 {
	var segs [][2]float64
	var cur *[2]float64
	gap := 0.0
	for _, c := range clips {
		if c.Speech {
			if cur == nil {
				segs = append(segs, [2]float64{c.Time, c.Time + clipDur})
				cur = &segs[len(segs)-1]
			} else {
				cur[1] = c.Time + clipDur
			}
			gap = 0
			continue
		}
		if cur != nil {
			gap += clipDur
			if gap > maxGap {
				cur = nil
			}
		}
	}
	out := segs[:0]
	for _, s := range segs {
		if s[1]-s[0] >= minDur {
			out = append(out, s)
		}
	}
	return out
}
