package audio

import (
	"math"
	"math/rand"
	"testing"
)

// synthVoiced generates dur seconds of voiced-speech-like audio: a
// harmonic series at pitch f0 with mild vibrato, band-limited under
// ~900 Hz, at the given amplitude.
func synthVoiced(sr, dur, f0, amp float64, rng *rand.Rand) []float64 {
	n := int(sr * dur)
	out := make([]float64, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) / sr
		f := f0 * (1 + 0.02*math.Sin(2*math.Pi*3*t))
		phase += 2 * math.Pi * f / sr
		v := math.Sin(phase) + 0.5*math.Sin(2*phase) + 0.25*math.Sin(3*phase)
		out[i] = amp * v / 1.75
	}
	_ = rng
	return out
}

// synthEngine generates car-noise-like audio concentrated above 1 kHz.
func synthEngine(sr, dur, amp float64, rng *rand.Rand) []float64 {
	n := int(sr * dur)
	out := make([]float64, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		phase += 2 * math.Pi * 1500 / sr
		out[i] = amp * (0.7*math.Sin(phase) + 0.3*rng.Float64()*2 - 0.3)
	}
	return out
}

func newTestAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.FrameDur = 0 },
		func(c *Config) { c.ClipDur = c.FrameDur / 2 },
		func(c *Config) { c.NumMFCC = 2 },
		func(c *Config) { c.PitchMinHz = 0 },
		func(c *Config) { c.PitchMaxHz = c.PitchMinHz },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := NewAnalyzer(cfg); err == nil {
			t.Errorf("case %d: config should be rejected", i)
		}
	}
}

func TestFrameGeometry(t *testing.T) {
	a := newTestAnalyzer(t)
	if a.FrameLen() != 220 {
		t.Fatalf("FrameLen = %d, want 220", a.FrameLen())
	}
	if a.FramesPerClip() != 10 {
		t.Fatalf("FramesPerClip = %d, want 10", a.FramesPerClip())
	}
}

func TestSilenceDetection(t *testing.T) {
	a := newTestAnalyzer(t)
	silence := make([]float64, 22050) // 1 s of zeros
	frames := a.AnalyzeFrames(silence)
	for i, f := range frames {
		if !f.Silent {
			t.Fatalf("frame %d of silence not marked silent", i)
		}
		if f.Pitch != 0 {
			t.Fatalf("frame %d of silence has pitch %v", i, f.Pitch)
		}
	}
}

func TestPitchEstimation(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(1))
	for _, f0 := range []float64{120, 220, 300} {
		sig := synthVoiced(22050, 0.5, f0, 0.3, rng)
		frames := a.AnalyzeFrames(sig)
		var sum float64
		var n int
		for _, fr := range frames {
			if fr.Pitch > 0 {
				sum += fr.Pitch
				n++
			}
		}
		if n < len(frames)/2 {
			t.Fatalf("f0=%v: only %d/%d voiced frames", f0, n, len(frames))
		}
		est := sum / float64(n)
		if math.Abs(est-f0) > 0.1*f0 {
			t.Fatalf("f0=%v: estimated %v", f0, est)
		}
	}
}

func TestSTEBandSeparation(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(2))
	speech := synthVoiced(22050, 0.5, 150, 0.3, rng)
	engine := synthEngine(22050, 0.5, 0.3, rng)

	sf := a.AnalyzeFrames(speech)
	ef := a.AnalyzeFrames(engine)
	avg := func(fs []FrameFeatures, pick func(FrameFeatures) float64) float64 {
		s := 0.0
		for _, f := range fs {
			s += pick(f)
		}
		return s / float64(len(fs))
	}
	speechLow := avg(sf, func(f FrameFeatures) float64 { return f.STELow })
	speechMid := avg(sf, func(f FrameFeatures) float64 { return f.STEMid })
	engineLow := avg(ef, func(f FrameFeatures) float64 { return f.STELow })
	engineMid := avg(ef, func(f FrameFeatures) float64 { return f.STEMid })
	if speechLow <= speechMid {
		t.Fatalf("voiced speech: low %v should exceed mid %v", speechLow, speechMid)
	}
	if engineMid <= engineLow {
		t.Fatalf("engine: mid %v should exceed low %v", engineMid, engineLow)
	}
}

func TestEndpointDetection(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(3))
	// 1 s speech, 1 s silence-with-faint-engine, 1 s speech.
	var sig []float64
	sig = append(sig, synthVoiced(22050, 1, 160, 0.25, rng)...)
	sig = append(sig, synthEngine(22050, 1, 0.02, rng)...)
	sig = append(sig, synthVoiced(22050, 1, 180, 0.25, rng)...)

	clips := a.Analyze(sig)
	if len(clips) != 30 {
		t.Fatalf("clips = %d, want 30", len(clips))
	}
	counts := [3]int{}
	for i, c := range clips {
		if c.Speech {
			counts[i/10]++
		}
	}
	if counts[0] < 8 || counts[2] < 8 {
		t.Fatalf("speech sections detected %v, want >=8 in sections 0 and 2", counts)
	}
	if counts[1] > 2 {
		t.Fatalf("engine-only section flagged as speech %d times", counts[1])
	}
}

func TestPauseRate(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(4))
	// Alternate 0.05 s speech and 0.05 s silence within each clip.
	var sig []float64
	for i := 0; i < 10; i++ {
		sig = append(sig, synthVoiced(22050, 0.05, 150, 0.3, rng)...)
		sig = append(sig, make([]float64, 22050/20)...)
	}
	clips := a.Analyze(sig)
	for i, c := range clips {
		if c.PauseRate < 0.2 || c.PauseRate > 0.8 {
			t.Fatalf("clip %d pause rate = %v, want ~0.5", i, c.PauseRate)
		}
	}
	// Continuous speech has near-zero pause rate.
	clips = a.Analyze(synthVoiced(22050, 1, 150, 0.3, rng))
	for i, c := range clips {
		if c.PauseRate > 0.1 {
			t.Fatalf("continuous speech clip %d pause rate = %v", i, c.PauseRate)
		}
	}
}

func TestExcitedSpeechStatistics(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(5))
	normal := a.Analyze(synthVoiced(22050, 2, 140, 0.2, rng))
	// Excited speech: raised pitch and raised amplitude.
	excited := a.Analyze(synthVoiced(22050, 2, 240, 0.45, rng))
	avgPitch := func(cs []ClipFeatures) float64 {
		s, n := 0.0, 0
		for _, c := range cs {
			if c.PitchAvg > 0 {
				s += c.PitchAvg
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	if avgPitch(excited) <= avgPitch(normal)*1.3 {
		t.Fatalf("excited pitch %v not clearly above normal %v", avgPitch(excited), avgPitch(normal))
	}
	avgSTE := func(cs []ClipFeatures) float64 {
		s := 0.0
		for _, c := range cs {
			s += c.STEAvg
		}
		return s / float64(len(cs))
	}
	if avgSTE(excited) <= avgSTE(normal) {
		t.Fatalf("excited STE %v not above normal %v", avgSTE(excited), avgSTE(normal))
	}
}

func TestSpeechSegments(t *testing.T) {
	clips := make([]ClipFeatures, 40)
	for i := range clips {
		clips[i].Time = float64(i) * 0.1
	}
	// Speech in clips 5..14 with a 1-clip hole, and a too-short blip at 30.
	for i := 5; i < 15; i++ {
		clips[i].Speech = true
	}
	clips[9].Speech = false
	clips[30].Speech = true

	segs := SpeechSegments(clips, 0.1, 0.3, 0.5)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want one merged segment", segs)
	}
	if math.Abs(segs[0][0]-0.5) > 1e-9 || math.Abs(segs[0][1]-1.5) > 1e-9 {
		t.Fatalf("segment = %v, want [0.5, 1.5]", segs[0])
	}
}

func TestSpeechSegmentsEmpty(t *testing.T) {
	if segs := SpeechSegments(nil, 0.1, 0.3, 0.5); len(segs) != 0 {
		t.Fatalf("segments of nil = %v", segs)
	}
	clips := make([]ClipFeatures, 10)
	if segs := SpeechSegments(clips, 0.1, 0.3, 0.5); len(segs) != 0 {
		t.Fatalf("segments of all-nonspeech = %v", segs)
	}
}
