package audio

import (
	"math"
	"math/rand"
	"testing"
)

func TestCalibPrintScores(t *testing.T) {
	a := newTestAnalyzer(t)
	rng := rand.New(rand.NewSource(3))
	speech := synthVoiced(22050, 1, 160, 0.25, rng)
	engine := synthEngine(22050, 1, 0.02, rng)
	for name, sig := range map[string][]float64{"speech": speech, "engine": engine} {
		clips := a.Analyze(sig)
		c := clips[3]
		ste := 0.5*c.STELowAvg + 0.3*c.STELowMax + 0.2*c.STELowDyn
		mfcc := math.Abs(c.MFCCAvg)/20 + c.MFCCDyn
		t.Logf("%s: steScore=%g mfccScore=%g STELowAvg=%g MFCCAvg=%g MFCCDyn=%g pitch=%g speech=%v",
			name, ste, mfcc, c.STELowAvg, c.MFCCAvg, c.MFCCDyn, c.PitchAvg, c.Speech)
	}
}
