package ext

import (
	"math/rand"
	"strings"
	"testing"

	"cobra/internal/bayes"
	"cobra/internal/dbn"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/monet"
)

func hmmPool(t *testing.T) *hmm.EnginePool {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pool := hmm.NewEnginePool(2)
	for i, name := range []string{"Service", "Smash"} {
		m := hmm.NewModel(name, 2, 4)
		m.Randomize(rng)
		// Bias emissions so classification is decidable.
		for s := 0; s < 2; s++ {
			for k := range m.B[s] {
				if k == i*2 {
					m.B[s][k] = 0.7
				} else {
					m.B[s][k] = 0.1
				}
			}
		}
		if err := pool.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	return pool
}

func TestRegisterHMM(t *testing.T) {
	in := mil.NewInterp(monet.NewStore())
	RegisterHMM(in, hmmPool(t))
	v, err := in.Exec(`
		VAR obs := new(void, int);
		obs.insert(nil, 2); obs.insert(nil, 2); obs.insert(nil, 2);
		hmmClassify(obs);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Str() != "Smash" {
		t.Fatalf("classified as %v", v)
	}
	v, err = in.Exec(`
		VAR obs := new(void, int);
		obs.insert(nil, 0);
		hmmOneCall("Service", obs);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Float() >= 0 {
		t.Fatalf("log-likelihood = %v", v)
	}
	if _, err := in.Exec(`
		VAR obs := new(void, int); obs.insert(nil, 0);
		hmmOneCall("Nope", obs);
	`); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// tinyDBN is a 1-hidden, 1-evidence chain for the Fig. 5 operator.
func tinyDBN(t *testing.T) *dbn.DBN {
	t.Helper()
	n := bayes.NewNetwork()
	n.MustAddNode("H", 2)
	n.MustAddNode("E", 2, "H")
	n.MustSetCPT("H", []float64{0.7, 0.3})
	n.MustSetCPT("E", []float64{0.9, 0.1, 0.2, 0.8})
	d, err := dbn.New(n, []string{"E"}, []dbn.Edge{{From: "H", To: "H"}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRegisterDBN(t *testing.T) {
	in := mil.NewInterp(monet.NewStore())
	RegisterDBN(in, "dbnInfer", tinyDBN(t), "H")
	// The Fig. 5 flow: a MIL procedure hands evidence to the engine and
	// thresholds the returned marginal.
	v, err := in.Exec(`
		PROC excitedSeconds(BAT[void,int] ev) : dbl := {
			VAR marg := dbnInfer(ev);
			RETURN threshold(marg, 0.5).sum;
		}
		VAR ev := new(void, int);
		ev.insert(nil, 1); ev.insert(nil, 1); ev.insert(nil, 0); ev.insert(nil, 1);
		excitedSeconds(ev);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Float() < 1 {
		t.Fatalf("active steps = %v, want >= 1", v)
	}
}

func TestRegisterDBNErrors(t *testing.T) {
	in := mil.NewInterp(monet.NewStore())
	RegisterDBN(in, "dbnInfer", tinyDBN(t), "H")
	if _, err := in.Exec(`dbnInfer(1);`); err == nil {
		t.Fatal("atom argument accepted")
	}
	if _, err := in.Exec(`
		VAR a := new(void, int); a.insert(nil, 0);
		VAR b := new(void, int);
		dbnInfer(a, b);
	`); err == nil || !strings.Contains(err.Error(), "expects 1 evidence BATs") {
		t.Fatalf("arity err = %v", err)
	}
	if _, err := in.Exec(`
		VAR a := new(void, dbl); a.insert(nil, 0.5);
		dbnInfer(a);
	`); err == nil {
		t.Fatal("dbl evidence accepted")
	}
	if _, err := in.Exec(`
		VAR a := new(void, int); a.insert(nil, 7);
		dbnInfer(a);
	`); err == nil {
		t.Fatal("out-of-range evidence accepted")
	}
}
