// Package ext wires the stochastic engines into the MIL interpreter as
// extension modules, the way MEL modules extend Monet (§3). RegisterHMM
// installs the hmmOneCall of Fig. 4; RegisterDBN installs the DBN
// inference operator of Fig. 5, where a MIL procedure hands evidence
// BATs to the engine and receives the filtered query marginal back as
// a BAT.
package ext

import (
	"errors"
	"fmt"

	"cobra/internal/dbn"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/monet"
)

// RegisterHMM installs hmmOneCall(model, obsBAT) -> dbl and
// hmmClassify(obsBAT) -> str over the engine pool, the Fig. 4
// extension operations.
func RegisterHMM(in *mil.Interp, pool *hmm.EnginePool) {
	in.Register("hmmOneCall", func(_ *mil.Interp, args []mil.Value) (mil.Value, error) {
		if len(args) != 2 || args[0].IsBAT() || !args[1].IsBAT() {
			return mil.Value{}, errors.New(`hmmOneCall expects ("model", obsBAT)`)
		}
		obs, err := batToInts(args[1].BAT)
		if err != nil {
			return mil.Value{}, err
		}
		evals, err := pool.EvaluateAll(obs)
		if err != nil {
			return mil.Value{}, err
		}
		name := args[0].Atom.Str()
		for _, e := range evals {
			if e.Model == name {
				return mil.AtomValue(monet.NewFloat(e.LogLikelihood)), nil
			}
		}
		return mil.Value{}, fmt.Errorf("hmmOneCall: unknown model %q", name)
	})
	in.Register("hmmClassify", func(_ *mil.Interp, args []mil.Value) (mil.Value, error) {
		if len(args) != 1 || !args[0].IsBAT() {
			return mil.Value{}, errors.New("hmmClassify expects an observation BAT")
		}
		obs, err := batToInts(args[0].BAT)
		if err != nil {
			return mil.Value{}, err
		}
		best, err := pool.Classify(obs)
		if err != nil {
			return mil.Value{}, err
		}
		return mil.AtomValue(monet.NewStr(best)), nil
	})
}

// RegisterDBN installs <name>(evBAT...) -> BAT[void,dbl]: the Fig. 5
// DBN inference operator. The call takes one [void,int] evidence BAT
// per evidence node (in the network's observation order) and returns
// the filtered marginal P(queryNode = 1 | e_1:t) per step.
func RegisterDBN(in *mil.Interp, name string, d *dbn.DBN, queryNode string) {
	in.Register(name, func(_ *mil.Interp, args []mil.Value) (mil.Value, error) {
		evNames := d.EvidenceNames()
		if len(args) != len(evNames) {
			return mil.Value{}, fmt.Errorf("%s expects %d evidence BATs (%v)", name, len(evNames), evNames)
		}
		cols := make([][]int, len(args))
		T := -1
		for k, a := range args {
			if !a.IsBAT() {
				return mil.Value{}, fmt.Errorf("%s: argument %d is not a BAT", name, k)
			}
			vals, err := batToInts(a.BAT)
			if err != nil {
				return mil.Value{}, err
			}
			if T < 0 {
				T = len(vals)
			} else if len(vals) != T {
				return mil.Value{}, fmt.Errorf("%s: evidence BATs are misaligned", name)
			}
			cols[k] = vals
		}
		obs := make([][]int, T)
		for t := 0; t < T; t++ {
			row := make([]int, len(cols))
			for k := range cols {
				row[k] = cols[k][t]
			}
			obs[t] = row
		}
		res, err := d.Filter(obs, nil)
		if err != nil {
			return mil.Value{}, err
		}
		series, err := res.MarginalSeries(queryNode, 1)
		if err != nil {
			return mil.Value{}, err
		}
		out := monet.NewBATCap(monet.Void, monet.FloatT, len(series))
		for _, v := range series {
			out.MustInsert(monet.VoidValue(), monet.NewFloat(v))
		}
		return mil.BATValue(out), nil
	})
}

// batToInts extracts a BAT tail as ints.
func batToInts(b *monet.BAT) ([]int, error) {
	switch b.TailType() {
	case monet.IntT, monet.OIDT, monet.BoolT:
	default:
		return nil, fmt.Errorf("ext: expected an integer tail, got %v", b.TailType())
	}
	out := make([]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		out[i] = int(b.Tail(i).Int())
	}
	return out, nil
}
