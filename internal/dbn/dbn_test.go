package dbn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cobra/internal/bayes"
	"cobra/internal/monet"
)

// hmmSlice builds a 1-hidden/1-evidence slice: H -> E.
func hmmSlice(t *testing.T) *bayes.Network {
	t.Helper()
	n := bayes.NewNetwork()
	n.MustAddNode("H", 2)
	n.MustAddNode("E", 2, "H")
	n.MustSetCPT("H", []float64{0.6, 0.4})
	n.MustSetCPT("E", []float64{0.9, 0.1, 0.2, 0.8})
	return n
}

func hmmDBN(t *testing.T) *DBN {
	t.Helper()
	d, err := New(hmmSlice(t), []string{"E"}, []Edge{{From: "H", To: "H"}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// setHMMTransition installs P(H_t | H_{t-1}) rows.
func setHMMTransition(d *DBN, stay0, stay1 float64) {
	d.trans[0].cpt = []float64{stay0, 1 - stay0, 1 - stay1, stay1}
}

func TestNewValidation(t *testing.T) {
	slice := hmmSlice(t)
	if _, err := New(slice, []string{"Nope"}, nil); err == nil {
		t.Fatal("unknown evidence accepted")
	}
	if _, err := New(slice, []string{"E", "E"}, nil); err == nil {
		t.Fatal("duplicate evidence accepted")
	}
	if _, err := New(slice, []string{"E"}, []Edge{{From: "X", To: "H"}}); err == nil {
		t.Fatal("unknown temporal source accepted")
	}
	if _, err := New(slice, []string{"E"}, []Edge{{From: "E", To: "H"}}); err == nil {
		t.Fatal("temporal edge from evidence accepted")
	}
	if _, err := New(slice, []string{"H", "E"}, nil); err == nil {
		t.Fatal("all-evidence network accepted")
	}
	// Hidden node with evidence parent is rejected.
	bad := bayes.NewNetwork()
	bad.MustAddNode("E", 2)
	bad.MustAddNode("H", 2, "E")
	if _, err := New(bad, []string{"E"}, nil); err == nil {
		t.Fatal("hidden node with evidence parent accepted")
	}
}

func TestTransitionAndEmission(t *testing.T) {
	d := hmmDBN(t)
	setHMMTransition(d, 0.7, 0.6)
	if got := d.Transition(0, 0); got != 0.7 {
		t.Fatalf("T(0->0) = %v", got)
	}
	if got := d.Transition(1, 0); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("T(1->0) = %v", got)
	}
	if got := d.Emission(0, []int{0}); got != 0.9 {
		t.Fatalf("B(0,e=0) = %v", got)
	}
	if got := d.Emission(1, []int{1}); got != 0.8 {
		t.Fatalf("B(1,e=1) = %v", got)
	}
	pi := d.Prior()
	if pi[0] != 0.6 || pi[1] != 0.4 {
		t.Fatalf("prior = %v", pi)
	}
}

// TestFilterMatchesHandForward compares the filter against a hand-coded
// HMM forward pass.
func TestFilterMatchesHandForward(t *testing.T) {
	d := hmmDBN(t)
	setHMMTransition(d, 0.7, 0.6)
	obs := [][]int{{0}, {1}, {1}, {0}, {1}}
	res, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hand forward.
	pi := []float64{0.6, 0.4}
	A := [][]float64{{0.7, 0.3}, {0.4, 0.6}}
	B := [][]float64{{0.9, 0.1}, {0.2, 0.8}} // B[state][obs]
	cur := []float64{pi[0] * B[0][obs[0][0]], pi[1] * B[1][obs[0][0]]}
	z := cur[0] + cur[1]
	cur[0] /= z
	cur[1] /= z
	wantLL := math.Log(z)
	for _, o := range obs[1:] {
		next := []float64{
			(cur[0]*A[0][0] + cur[1]*A[1][0]) * B[0][o[0]],
			(cur[0]*A[0][1] + cur[1]*A[1][1]) * B[1][o[0]],
		}
		z = next[0] + next[1]
		next[0] /= z
		next[1] /= z
		wantLL += math.Log(z)
		cur = next
	}
	got, err := res.Marginal(len(obs)-1, "H")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-cur[0]) > 1e-12 || math.Abs(got[1]-cur[1]) > 1e-12 {
		t.Fatalf("filtered = %v, want %v", got, cur)
	}
	if math.Abs(res.LogLikelihood-wantLL) > 1e-9 {
		t.Fatalf("ll = %v, want %v", res.LogLikelihood, wantLL)
	}
}

func TestMarginalSeriesAndErrors(t *testing.T) {
	d := hmmDBN(t)
	res, err := d.Filter([][]int{{0}, {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	series, err := res.MarginalSeries("H", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series len = %d", len(series))
	}
	if _, err := res.Marginal(0, "E"); err == nil {
		t.Fatal("marginal of evidence node accepted")
	}
	if _, err := res.Marginal(5, "H"); err == nil {
		t.Fatal("out-of-range step accepted")
	}
	if _, err := res.Marginal(0, "Zzz"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestFilterObsValidation(t *testing.T) {
	d := hmmDBN(t)
	if _, err := d.Filter([][]int{{0, 1}}, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := d.Filter([][]int{{7}}, nil); err == nil {
		t.Fatal("out-of-range state accepted")
	}
}

// TestDBNSmoothing reproduces the Fig. 9 qualitative result: a DBN's
// filtered query series is smoother than per-step static-BN posteriors
// on the same noisy evidence.
func TestDBNSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := hmmDBN(t)
	setHMMTransition(d, 0.95, 0.95)
	// Generate a ground-truth square wave with noisy observations.
	T := 200
	obs := make([][]int, T)
	for i := 0; i < T; i++ {
		truth := 0
		if (i/50)%2 == 1 {
			truth = 1
		}
		o := truth
		if rng.Float64() < 0.25 { // 25% observation noise
			o = 1 - o
		}
		obs[i] = []int{o}
	}
	res, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dbnSeries, _ := res.MarginalSeries("H", 1)

	// Static BN: per-step posterior with the same slice network.
	slice := hmmSlice(t)
	bnSeries := make([]float64, T)
	for i, o := range obs {
		p, err := slice.PosteriorOf("H", bayes.Evidence{slice.MustIndex("E"): o[0]})
		if err != nil {
			t.Fatal(err)
		}
		bnSeries[i] = p[1]
	}
	rough := func(xs []float64) float64 {
		s := 0.0
		for i := 1; i < len(xs); i++ {
			s += math.Abs(xs[i] - xs[i-1])
		}
		return s / float64(len(xs)-1)
	}
	if rough(dbnSeries) >= 0.6*rough(bnSeries) {
		t.Fatalf("DBN not smoother: dbn %v vs bn %v", rough(dbnSeries), rough(bnSeries))
	}
}

// TestLearnEMRecoversHMM trains on sequences from a known HMM and
// checks the recovered dynamics.
func TestLearnEMRecoversHMM(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Truth: sticky chain, informative emissions.
	truthA := [][]float64{{0.9, 0.1}, {0.15, 0.85}}
	truthB := [][]float64{{0.85, 0.15}, {0.1, 0.9}}
	gen := func(T int) [][]int {
		obs := make([][]int, T)
		h := 0
		for t := 0; t < T; t++ {
			if rng.Float64() > truthA[h][h] {
				h = 1 - h
			}
			o := 0
			if rng.Float64() > truthB[h][0] {
				o = 1
			}
			obs[t] = []int{o}
		}
		return obs
	}
	var seqs [][][]int
	for i := 0; i < 12; i++ {
		seqs = append(seqs, gen(250))
	}
	d := hmmDBN(t)
	// Slightly perturbed init (EM label identification).
	d.slice.MustSetCPT("E", []float64{0.7, 0.3, 0.3, 0.7})
	setHMMTransition(d, 0.8, 0.8)
	cfg := DefaultEMConfig()
	cfg.MaxIterations = 60
	res, err := d.LearnEM(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("too few iterations: %+v", res)
	}
	// Recovered self-transitions should be sticky like the truth.
	stay0 := d.trans[0].cpt[0]
	stay1 := d.trans[0].cpt[3]
	if stay0 < 0.8 || stay1 < 0.75 {
		t.Fatalf("recovered transitions not sticky: %v %v", stay0, stay1)
	}
	// Emissions should be informative in the same direction.
	e := d.slice.Nodes[d.slice.MustIndex("E")].CPT
	if e[0] < 0.7 || e[3] < 0.7 {
		t.Fatalf("recovered emissions weak: %v", e)
	}
}

// TestLearnEMImprovesLikelihood checks EM monotonicity end-to-end.
func TestLearnEMImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := hmmDBN(t)
	obs := make([][]int, 120)
	for i := range obs {
		obs[i] = []int{rng.Intn(2)}
	}
	before, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LearnEM([][][]int{obs}, DefaultEMConfig()); err != nil {
		t.Fatal(err)
	}
	after, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.LogLikelihood < before.LogLikelihood {
		t.Fatalf("EM decreased filter LL: %v -> %v", before.LogLikelihood, after.LogLikelihood)
	}
}

// twoChainDBN builds two hidden chains with a coupling edge and one
// evidence node per chain, for the clustering experiment.
func twoChainDBN(t *testing.T, coupled bool) *DBN {
	t.Helper()
	n := bayes.NewNetwork()
	n.MustAddNode("A", 2)
	if coupled {
		n.MustAddNode("B", 2, "A")
		n.MustSetCPT("B", []float64{0.9, 0.1, 0.1, 0.9})
	} else {
		n.MustAddNode("B", 2)
		n.MustSetCPT("B", []float64{0.5, 0.5})
	}
	n.MustAddNode("EA", 2, "A")
	n.MustAddNode("EB", 2, "B")
	n.MustSetCPT("A", []float64{0.5, 0.5})
	n.MustSetCPT("EA", []float64{0.8, 0.2, 0.2, 0.8})
	n.MustSetCPT("EB", []float64{0.8, 0.2, 0.2, 0.8})
	d, err := New(n, []string{"EA", "EB"},
		[]Edge{{From: "A", To: "A"}, {From: "B", To: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestClusterValidation(t *testing.T) {
	d := twoChainDBN(t, true)
	if _, err := d.compileClusters(Clusters{{"A"}}); err == nil {
		t.Fatal("uncovered hidden node accepted")
	}
	if _, err := d.compileClusters(Clusters{{"A", "B"}, {"A"}}); err == nil {
		t.Fatal("overlapping clusters accepted")
	}
	if _, err := d.compileClusters(Clusters{{"A"}, {"EB"}}); err == nil {
		t.Fatal("evidence node in cluster accepted")
	}
	if _, err := d.compileClusters(Clusters{{"A"}, {"Zzz"}}); err == nil {
		t.Fatal("unknown node in cluster accepted")
	}
}

// TestBoyenKollerProjection: with independent chains the 2-cluster
// projection is exact; with coupled chains it loses likelihood, which
// is the paper's observed cost of clustering.
func TestBoyenKollerProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	obs := make([][]int, 100)
	for i := range obs {
		v := rng.Intn(2)
		obs[i] = []int{v, v} // correlated observations stress coupling
	}
	// Independent chains: projection exact.
	ind := twoChainDBN(t, false)
	exactI, err := ind.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	projI, err := ind.Filter(obs, Clusters{{"A"}, {"B"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exactI.LogLikelihood-projI.LogLikelihood) > 1e-9 {
		t.Fatalf("independent chains: projection changed LL %v vs %v",
			exactI.LogLikelihood, projI.LogLikelihood)
	}
	// Coupled chains: projected filter diverges from exact marginals.
	cp := twoChainDBN(t, true)
	exactC, err := cp.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	projC, err := cp.Filter(obs, Clusters{{"A"}, {"B"}})
	if err != nil {
		t.Fatal(err)
	}
	me, _ := exactC.MarginalSeries("B", 1)
	mp, _ := projC.MarginalSeries("B", 1)
	maxDiff := 0.0
	for i := range me {
		if d := math.Abs(me[i] - mp[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-6 {
		t.Fatalf("coupled chains: projection had no effect (max diff %v)", maxDiff)
	}
}

func TestHiddenAndEvidenceNames(t *testing.T) {
	d := twoChainDBN(t, true)
	h := d.HiddenNames()
	if len(h) != 2 || h[0] != "A" || h[1] != "B" {
		t.Fatalf("hidden = %v", h)
	}
	e := d.EvidenceNames()
	if len(e) != 2 || e[0] != "EA" || e[1] != "EB" {
		t.Fatalf("evidence = %v", e)
	}
	if d.StateSpaceSize() != 4 {
		t.Fatalf("S = %d", d.StateSpaceSize())
	}
}

func TestRandomizeKeepsDistributions(t *testing.T) {
	d := twoChainDBN(t, true)
	d.Randomize(rand.New(rand.NewSource(37)))
	for i := range d.trans {
		states := d.slice.Nodes[d.trans[i].node].States
		for r := 0; r < len(d.trans[i].cpt); r += states {
			s := 0.0
			for k := 0; k < states; k++ {
				s += d.trans[i].cpt[r+k]
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("trans row sums to %v", s)
			}
		}
	}
	pi := d.Prior()
	s := 0.0
	for _, v := range pi {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("prior sums to %v", s)
	}
}

func TestEmptyObservationSequence(t *testing.T) {
	d := hmmDBN(t)
	res, err := d.Filter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != 0 || res.LogLikelihood != 0 {
		t.Fatalf("empty filter = %+v", res)
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := hmmDBN(t)
	d.Randomize(rng)
	store := monet.NewStore()
	d.SaveParams(store, "model/audio")
	if !d.HasParams(store, "model/audio") {
		t.Fatal("HasParams false after save")
	}
	d2 := hmmDBN(t)
	if err := d2.LoadParams(store, "model/audio"); err != nil {
		t.Fatal(err)
	}
	// Filtering with loaded params matches the original exactly.
	obs := [][]int{{0}, {1}, {1}, {0}}
	r1, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.LogLikelihood-r2.LogLikelihood) > 1e-12 {
		t.Fatalf("LL after load %v != %v", r2.LogLikelihood, r1.LogLikelihood)
	}
	// Missing prefix fails.
	d3 := hmmDBN(t)
	if err := d3.LoadParams(store, "model/nope"); err == nil {
		t.Fatal("missing params accepted")
	}
	if d3.HasParams(store, "model/nope") {
		t.Fatal("HasParams true for missing prefix")
	}
}

// Property: filtered marginals are normalized distributions for random
// parameters and observations.
func TestFilterMarginalsNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := twoChainDBNQuick(rng)
		obs := make([][]int, 30)
		for i := range obs {
			obs[i] = []int{rng.Intn(2), rng.Intn(2)}
		}
		res, err := d.Filter(obs, nil)
		if err != nil {
			return false
		}
		for _, name := range d.HiddenNames() {
			for step := 0; step < res.Steps(); step += 7 {
				m, err := res.Marginal(step, name)
				if err != nil {
					return false
				}
				s := 0.0
				for _, v := range m {
					if v < -1e-12 {
						return false
					}
					s += v
				}
				if math.Abs(s-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// twoChainDBNQuick builds a randomized two-chain network without
// testing.T plumbing.
func twoChainDBNQuick(rng *rand.Rand) *DBN {
	n := bayes.NewNetwork()
	n.MustAddNode("A", 2)
	n.MustAddNode("B", 2, "A")
	n.MustAddNode("EA", 2, "A")
	n.MustAddNode("EB", 2, "B")
	d, err := New(n, []string{"EA", "EB"},
		[]Edge{{From: "A", To: "A"}, {From: "B", To: "B"}})
	if err != nil {
		panic(err)
	}
	d.Randomize(rng)
	return d
}

// TestSmoothMatchesFilterAtEnd: at the final step, the smoothed and
// filtered posteriors coincide (both condition on all evidence).
func TestSmoothMatchesFilterAtEnd(t *testing.T) {
	d := hmmDBN(t)
	setHMMTransition(d, 0.8, 0.7)
	obs := [][]int{{0}, {1}, {1}, {0}, {1}, {1}}
	filt, err := d.Filter(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := d.Smooth(obs)
	if err != nil {
		t.Fatal(err)
	}
	last := len(obs) - 1
	fm, _ := filt.Marginal(last, "H")
	smM, err := sm.Marginal(last, "H")
	if err != nil {
		t.Fatal(err)
	}
	for i := range fm {
		if math.Abs(fm[i]-smM[i]) > 1e-9 {
			t.Fatalf("final marginals differ: %v vs %v", fm, smM)
		}
	}
	if math.Abs(filt.LogLikelihood-sm.LogLikelihood) > 1e-9 {
		t.Fatalf("LL differ: %v vs %v", filt.LogLikelihood, sm.LogLikelihood)
	}
}

// TestSmoothUsesFutureEvidence: mid-sequence smoothed posteriors use
// future observations, so they differ from filtered ones and are more
// decisive on a noisy middle step.
func TestSmoothUsesFutureEvidence(t *testing.T) {
	d := hmmDBN(t)
	setHMMTransition(d, 0.9, 0.9)
	// State clearly 1 before and after a single contradictory reading.
	obs := [][]int{{1}, {1}, {0}, {1}, {1}}
	filt, _ := d.Filter(obs, nil)
	sm, err := d.Smooth(obs)
	if err != nil {
		t.Fatal(err)
	}
	fm, _ := filt.Marginal(2, "H")
	smM, _ := sm.Marginal(2, "H")
	if smM[1] <= fm[1] {
		t.Fatalf("smoothed P(H=1)=%v not above filtered %v at the glitch", smM[1], fm[1])
	}
	// And marginals stay normalized.
	if math.Abs(smM[0]+smM[1]-1) > 1e-9 {
		t.Fatalf("smoothed marginal not normalized: %v", smM)
	}
}

func TestSmoothEmptyAndErrors(t *testing.T) {
	d := hmmDBN(t)
	res, err := d.Smooth(nil)
	if err != nil || res.Steps() != 0 {
		t.Fatalf("empty smooth = %v, %v", res, err)
	}
	if _, err := d.Smooth([][]int{{9}}); err == nil {
		t.Fatal("bad observation accepted")
	}
	r2, _ := d.Smooth([][]int{{0}})
	if _, err := r2.Marginal(5, "H"); err == nil {
		t.Fatal("out-of-range step accepted")
	}
	if _, err := r2.Marginal(0, "E"); err == nil {
		t.Fatal("evidence-node marginal accepted")
	}
}

func TestViterbiDecodesStickyChain(t *testing.T) {
	d := hmmDBN(t)
	setHMMTransition(d, 0.9, 0.9)
	obs := [][]int{{0}, {0}, {0}, {1}, {1}, {1}}
	res, err := d.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.StateSeries("H")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if math.IsInf(res.LogProb, 0) {
		t.Fatalf("log prob = %v", res.LogProb)
	}
	// A single contradictory reading is absorbed by the sticky chain.
	obs = [][]int{{1}, {1}, {0}, {1}, {1}}
	res, _ = d.Viterbi(obs)
	path, _ = res.StateSeries("H")
	if path[2] != 1 {
		t.Fatalf("glitch not absorbed: %v", path)
	}
}

func TestViterbiErrors(t *testing.T) {
	d := hmmDBN(t)
	res, err := d.Viterbi(nil)
	if err != nil || len(res.States) != 0 {
		t.Fatalf("empty viterbi = %v, %v", res, err)
	}
	if _, err := d.Viterbi([][]int{{9}}); err == nil {
		t.Fatal("bad observation accepted")
	}
	r, _ := d.Viterbi([][]int{{0}})
	if _, err := r.StateSeries("E"); err == nil {
		t.Fatal("evidence node accepted")
	}
	if _, err := r.StateSeries("Zzz"); err == nil {
		t.Fatal("unknown node accepted")
	}
}
