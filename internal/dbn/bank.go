// Per-segment parallel evaluation of a DBN over a bank of observation
// segments: the physical-level counterpart of the HMM pool's Fig. 3
// fan-out, applied to Boyen-Koller filtering. A video is cut into
// segments (laps, sectors, highlight windows) and each segment is
// filtered independently, so the segments schedule as tasks on the
// shared kernel worker pool.

package dbn

import (
	"errors"
	"fmt"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// Bank-evaluation metrics: segment volume and whole-bank fan-out/join
// latency.
var (
	cBankSegments = obs.C("dbn.bank.segments")
	hBankLat      = obs.H("dbn.bank.latency")
)

// FilterSegments runs Boyen-Koller filtering over every observation
// segment as tasks on the shared kernel pool and returns one
// FilterResult per segment, positionally. Filtering is read-only on
// the DBN, so all segments share the receiver. If any segment fails,
// the joined errors identify each failing segment by index.
func (d *DBN) FilterSegments(segments [][][]int, clusters Clusters) ([]*FilterResult, error) {
	defer func(start time.Time) { hBankLat.Observe(time.Since(start)) }(time.Now())
	cBankSegments.Add(int64(len(segments)))
	results := make([]*FilterResult, len(segments))
	errs := make([]error, len(segments))
	batch := monet.DefaultPool().Batch()
	for i, seg := range segments {
		i, seg := i, seg
		batch.Submit(func() {
			res, err := d.Filter(seg, clusters)
			if err != nil {
				errs[i] = fmt.Errorf("segment %d: %w", i, err)
				return
			}
			results[i] = res
		})
	}
	batch.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}
