package dbn

import (
	"fmt"

	"cobra/internal/monet"
)

// SaveParams stores all DBN parameters (slice CPTs and transition
// CPTs) into the kernel store under prefix, so trained models persist
// with the database snapshot — the domain knowledge the system keeps
// in the DB (§2).
func (d *DBN) SaveParams(store *monet.Store, prefix string) {
	d.slice.SaveParams(store, prefix+"/slice")
	for i := range d.trans {
		tn := &d.trans[i]
		b := monet.NewBATCap(monet.Void, monet.FloatT, len(tn.cpt))
		for _, v := range tn.cpt {
			b.MustInsert(monet.VoidValue(), monet.NewFloat(v))
		}
		store.Put(fmt.Sprintf("%s/trans/%s", prefix, d.slice.Nodes[tn.node].Name), b)
	}
}

// LoadParams restores parameters saved under prefix into a DBN with
// identical structure.
func (d *DBN) LoadParams(store *monet.Store, prefix string) error {
	if err := d.slice.LoadParams(store, prefix+"/slice"); err != nil {
		return err
	}
	for i := range d.trans {
		tn := &d.trans[i]
		name := d.slice.Nodes[tn.node].Name
		b, err := store.Get(fmt.Sprintf("%s/trans/%s", prefix, name))
		if err != nil {
			return fmt.Errorf("dbn: no saved transition CPT for %s under %q", name, prefix)
		}
		if b.Len() != len(tn.cpt) {
			return fmt.Errorf("dbn: saved transition CPT for %s has %d entries, want %d",
				name, b.Len(), len(tn.cpt))
		}
		for k := 0; k < b.Len(); k++ {
			tn.cpt[k] = b.Tail(k).Float()
		}
	}
	return nil
}

// HasParams reports whether parameters are saved under prefix.
func (d *DBN) HasParams(store *monet.Store, prefix string) bool {
	return d.slice.HasParams(store, prefix+"/slice")
}
