package dbn

import (
	"strings"
	"testing"

	"cobra/internal/monet"
)

func TestFilterSegmentsMatchesSerial(t *testing.T) {
	prev := monet.SetDefaultPoolWorkers(4)
	defer monet.SetDefaultPoolWorkers(prev)
	d := hmmDBN(t)
	setHMMTransition(d, 0.7, 0.6)
	segments := [][][]int{
		{{0}, {0}, {1}},
		{{1}, {1}},
		{},
		{{0}, {1}, {1}, {0}},
	}
	got, err := d.FilterSegments(segments, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segments) {
		t.Fatalf("results = %d, want %d", len(got), len(segments))
	}
	for i, seg := range segments {
		want, err := d.Filter(seg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].LogLikelihood != want.LogLikelihood {
			t.Fatalf("segment %d: ll = %v, want %v", i, got[i].LogLikelihood, want.LogLikelihood)
		}
	}
}

func TestFilterSegmentsError(t *testing.T) {
	d := hmmDBN(t)
	segments := [][][]int{
		{{0}},
		{{7}}, // out-of-range evidence state
		{{9}}, // out-of-range evidence state
	}
	_, err := d.FilterSegments(segments, nil)
	if err == nil {
		t.Fatal("want error for bad segments")
	}
	for _, want := range []string{"segment 1", "segment 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err %q does not name %s", err, want)
		}
	}
}
