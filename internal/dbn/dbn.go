// Package dbn implements dynamic Bayesian networks as two-slice
// temporal networks (2-TBNs) over discrete variables: a slice network
// describing intra-slice (atemporal) structure, plus temporal edges
// between consecutive slices. Inference is the (modified) Boyen-Koller
// factored-frontier filter with configurable clusters; learning is
// Expectation-Maximization with exact forward-backward smoothing over
// the joint hidden state (§4 of the paper).
//
// Hidden nodes are those not named as evidence. Temporal edges must run
// between hidden nodes, and evidence nodes must not have temporal
// parents — the paper's networks (Figs. 7, 8, 10, 11) have this shape.
package dbn

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cobra/internal/bayes"
)

// Edge is a temporal dependency From(t-1) -> To(t), by node name.
type Edge struct {
	From, To string
}

// transNode is the transition family of one hidden node at t >= 1: its
// previous-slice parents, intra-slice parents, and CPT.
type transNode struct {
	node        int   // slice index of the node
	prevParents []int // slice indices, parents in slice t-1
	curParents  []int // slice indices, intra-slice parents in slice t
	cpt         []float64
}

// DBN is a dynamic Bayesian network with tied (stationary) parameters.
type DBN struct {
	// slice holds the intra-slice structure; its CPTs parameterize the
	// t=0 prior for hidden nodes and the (time-invariant) evidence
	// emissions for all t.
	slice *bayes.Network

	evidenceNames []string
	evidence      []int // slice indices, order matches evidenceNames
	hidden        []int // sorted slice indices of hidden nodes
	hiddenPos     map[int]int

	temporal []Edge
	trans    []transNode // one per hidden node, order matches hidden

	// Joint hidden state space: S = prod card(hidden).
	hiddenCard []int
	S          int
}

// ErrBadDBN reports structural mistakes.
var ErrBadDBN = errors.New("dbn: bad network")

// New builds a DBN from an intra-slice network, the names of its
// evidence nodes, and the temporal edges. Transition CPTs are
// initialized to persistence-biased tables (a node tends to keep its
// previous state), a sensible EM starting point for smooth processes.
func New(slice *bayes.Network, evidenceNames []string, temporal []Edge) (*DBN, error) {
	d := &DBN{
		slice:         slice,
		evidenceNames: append([]string(nil), evidenceNames...),
		temporal:      append([]Edge(nil), temporal...),
		hiddenPos:     map[int]int{},
	}
	isEv := map[int]bool{}
	for _, name := range evidenceNames {
		i, ok := slice.Index(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown evidence node %s", ErrBadDBN, name)
		}
		if isEv[i] {
			return nil, fmt.Errorf("%w: duplicate evidence node %s", ErrBadDBN, name)
		}
		isEv[i] = true
		d.evidence = append(d.evidence, i)
	}
	for i := range slice.Nodes {
		if !isEv[i] {
			d.hidden = append(d.hidden, i)
		}
	}
	sort.Ints(d.hidden)
	for pos, h := range d.hidden {
		d.hiddenPos[h] = pos
	}
	if len(d.hidden) == 0 {
		return nil, fmt.Errorf("%w: no hidden nodes", ErrBadDBN)
	}
	// Evidence nodes must not be parents of hidden nodes and must have
	// no temporal edges; temporal edges are hidden -> hidden.
	for _, h := range d.hidden {
		for _, p := range slice.Nodes[h].Parents {
			if isEv[p] {
				return nil, fmt.Errorf("%w: hidden node %s has evidence parent %s",
					ErrBadDBN, slice.Nodes[h].Name, slice.Nodes[p].Name)
			}
		}
	}
	prevParents := map[int][]int{}
	for _, e := range temporal {
		from, ok := slice.Index(e.From)
		if !ok {
			return nil, fmt.Errorf("%w: unknown temporal source %s", ErrBadDBN, e.From)
		}
		to, ok := slice.Index(e.To)
		if !ok {
			return nil, fmt.Errorf("%w: unknown temporal target %s", ErrBadDBN, e.To)
		}
		if isEv[from] || isEv[to] {
			return nil, fmt.Errorf("%w: temporal edge %s->%s touches an evidence node",
				ErrBadDBN, e.From, e.To)
		}
		prevParents[to] = append(prevParents[to], from)
	}
	// Build transition families and persistence-biased CPTs.
	d.hiddenCard = make([]int, len(d.hidden))
	d.S = 1
	for pos, h := range d.hidden {
		d.hiddenCard[pos] = slice.Nodes[h].States
		d.S *= slice.Nodes[h].States
	}
	if d.S > 1<<16 {
		return nil, fmt.Errorf("%w: joint hidden state space %d too large", ErrBadDBN, d.S)
	}
	for _, h := range d.hidden {
		pp := append([]int(nil), prevParents[h]...)
		sort.Ints(pp)
		cp := append([]int(nil), slice.Nodes[h].Parents...)
		sort.Ints(cp)
		tn := transNode{node: h, prevParents: pp, curParents: cp}
		rows := 1
		for _, p := range pp {
			rows *= slice.Nodes[p].States
		}
		for _, p := range cp {
			rows *= slice.Nodes[p].States
		}
		states := slice.Nodes[h].States
		tn.cpt = make([]float64, rows*states)
		selfPrev := -1
		for k, p := range pp {
			if p == h {
				selfPrev = k
			}
		}
		// Row layout: prevParents slowest, then curParents.
		dims := make([]int, 0, len(pp)+len(cp))
		for _, p := range pp {
			dims = append(dims, slice.Nodes[p].States)
		}
		for _, p := range cp {
			dims = append(dims, slice.Nodes[p].States)
		}
		// Initialize each row as the slice network's intra-slice
		// conditional blended with a persistence bias toward the
		// previous self state. This keeps the domain knowledge encoded
		// in the slice CPTs active at t >= 1 while favouring smooth
		// state evolution; EM refines from there.
		const persist = 0.85
		for r := 0; r < rows; r++ {
			cfg := decodeConfig(r, dims)
			prevSelf := -1
			if selfPrev >= 0 {
				prevSelf = cfg[selfPrev]
			}
			// Index the slice CPT using the node's declared parent
			// order (curParents here are sorted, so map back).
			sliceRow := 0
			for _, par := range slice.Nodes[h].Parents {
				pos := -1
				for j, cpar := range cp {
					if cpar == par {
						pos = len(pp) + j
						break
					}
				}
				sliceRow = sliceRow*slice.Nodes[par].States + cfg[pos]
			}
			sum := 0.0
			for k := 0; k < states; k++ {
				v := slice.Nodes[h].CPT[sliceRow*states+k]
				if prevSelf >= 0 {
					if k == prevSelf {
						v *= persist
					} else {
						v *= (1 - persist) / float64(states-1)
					}
				}
				tn.cpt[r*states+k] = v
				sum += v
			}
			if sum <= 0 {
				for k := 0; k < states; k++ {
					tn.cpt[r*states+k] = 1 / float64(states)
				}
				continue
			}
			for k := 0; k < states; k++ {
				tn.cpt[r*states+k] /= sum
			}
		}
		d.trans = append(d.trans, tn)
	}
	return d, nil
}

// decodeConfig decomposes a row index into per-dimension states (first
// dimension slowest).
func decodeConfig(idx int, dims []int) []int {
	cfg := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		cfg[i] = idx % dims[i]
		idx /= dims[i]
	}
	return cfg
}

// encodeConfig is the inverse of decodeConfig.
func encodeConfig(cfg, dims []int) int {
	idx := 0
	for i := range dims {
		idx = idx*dims[i] + cfg[i]
	}
	return idx
}

// Slice returns the intra-slice network (shared, not a copy).
func (d *DBN) Slice() *bayes.Network { return d.slice }

// HiddenNames returns the hidden node names in joint-state order.
func (d *DBN) HiddenNames() []string {
	names := make([]string, len(d.hidden))
	for i, h := range d.hidden {
		names[i] = d.slice.Nodes[h].Name
	}
	return names
}

// EvidenceNames returns the evidence node names in observation order.
func (d *DBN) EvidenceNames() []string {
	return append([]string(nil), d.evidenceNames...)
}

// StateSpaceSize returns the joint hidden state count.
func (d *DBN) StateSpaceSize() int { return d.S }

// Randomize randomizes all parameters: slice CPTs and transition CPTs.
func (d *DBN) Randomize(rng *rand.Rand) {
	d.slice.Randomize(rng)
	d.RandomizeTransitions(rng)
}

// RandomizeTransitions randomizes only the transition CPTs, keeping
// the slice network's (informative) priors and emissions. Useful for
// studying how much temporal structure EM can recover.
func (d *DBN) RandomizeTransitions(rng *rand.Rand) {
	for i := range d.trans {
		tn := &d.trans[i]
		states := d.slice.Nodes[tn.node].States
		for r := 0; r < len(tn.cpt); r += states {
			s := 0.0
			for k := 0; k < states; k++ {
				v := 0.1 + rng.Float64()
				tn.cpt[r+k] = v
				s += v
			}
			for k := 0; k < states; k++ {
				tn.cpt[r+k] /= s
			}
		}
	}
}

// PerturbTransitions multiplies every transition parameter by a random
// factor in [1-strength, 1+strength] and renormalizes: a controlled
// departure from the initialization that EM must repair.
func (d *DBN) PerturbTransitions(rng *rand.Rand, strength float64) {
	for i := range d.trans {
		tn := &d.trans[i]
		states := d.slice.Nodes[tn.node].States
		for r := 0; r < len(tn.cpt); r += states {
			s := 0.0
			for k := 0; k < states; k++ {
				f := 1 + strength*(2*rng.Float64()-1)
				if f < 0.02 {
					f = 0.02
				}
				tn.cpt[r+k] *= f
				s += tn.cpt[r+k]
			}
			for k := 0; k < states; k++ {
				tn.cpt[r+k] /= s
			}
		}
	}
}

// hiddenState decodes joint state s into per-hidden-node states.
func (d *DBN) hiddenState(s int) []int { return decodeConfig(s, d.hiddenCard) }

// stateOfNode returns hidden node h's state within joint state s.
func (d *DBN) stateOfNode(h, s int) int {
	pos := d.hiddenPos[h]
	// Decode only the needed position.
	for i := len(d.hiddenCard) - 1; i > pos; i-- {
		s /= d.hiddenCard[i]
	}
	return s % d.hiddenCard[pos]
}

// transRow computes the CPT row offset of transition family tn for the
// given previous and current joint hidden states.
func (d *DBN) transRow(tn *transNode, sPrev, sCur int) int {
	states := d.slice.Nodes[tn.node].States
	row := 0
	for _, p := range tn.prevParents {
		row = row*d.slice.Nodes[p].States + d.stateOfNode(p, sPrev)
	}
	for _, p := range tn.curParents {
		row = row*d.slice.Nodes[p].States + d.stateOfNode(p, sCur)
	}
	return row * states
}

// Transition returns P(H_t = sCur | H_{t-1} = sPrev).
func (d *DBN) Transition(sPrev, sCur int) float64 {
	p := 1.0
	for i := range d.trans {
		tn := &d.trans[i]
		row := d.transRow(tn, sPrev, sCur)
		p *= tn.cpt[row+d.stateOfNode(tn.node, sCur)]
	}
	return p
}

// Emission returns P(obs | H_t = s), the product of evidence-node
// CPTs. obs holds one state per evidence node in observation order.
func (d *DBN) Emission(s int, obs []int) float64 {
	p := 1.0
	obsOf := func(idx int) (int, bool) {
		for k, e := range d.evidence {
			if e == idx {
				return obs[k], true
			}
		}
		return 0, false
	}
	for k, e := range d.evidence {
		node := &d.slice.Nodes[e]
		row := 0
		for _, par := range node.Parents {
			var st int
			if v, ok := obsOf(par); ok {
				st = v
			} else {
				st = d.stateOfNode(par, s)
			}
			row = row*d.slice.Nodes[par].States + st
		}
		p *= node.CPT[row*node.States+obs[k]]
	}
	return p
}

// Prior returns the t=0 joint hidden distribution from the slice
// network's hidden-node CPTs.
func (d *DBN) Prior() []float64 {
	pi := make([]float64, d.S)
	for s := 0; s < d.S; s++ {
		cfg := d.hiddenState(s)
		p := 1.0
		for pos, h := range d.hidden {
			node := &d.slice.Nodes[h]
			row := 0
			for _, par := range node.Parents {
				row = row*d.slice.Nodes[par].States + cfg[d.hiddenPos[par]]
			}
			p *= node.CPT[row*node.States+cfg[pos]]
		}
		pi[s] = p
	}
	return pi
}
