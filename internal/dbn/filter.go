package dbn

import (
	"fmt"
	"math"
	"time"

	"cobra/internal/obs"
)

// Boyen-Koller filter metrics. Handles are cached here because Filter
// shadows the package name with its `obs` observation parameter.
var (
	cBKSteps       = obs.C("dbn.bk.steps")
	cBKProjections = obs.C("dbn.bk.projections")
	hFilterLat     = obs.H("dbn.filter.latency")
)

// Clusters partitions hidden node names for the Boyen-Koller
// projection. Nil or a single cluster containing every hidden node
// yields exact interface filtering; finer clusters trade accuracy for
// the factored representation studied in the paper's clustering
// experiment (§5.5).
type Clusters [][]string

// FilterResult holds the per-step filtered posteriors.
type FilterResult struct {
	dbn *DBN
	// beliefs[t] is the (possibly projected) joint distribution over
	// hidden states after absorbing observation t.
	beliefs [][]float64
	// LogLikelihood is sum_t log P(e_t | e_1:t-1).
	LogLikelihood float64
}

// Steps returns the number of filtered time steps.
func (r *FilterResult) Steps() int { return len(r.beliefs) }

// Marginal returns P(node = state | e_1:t) for each state of the named
// hidden node at step t.
func (r *FilterResult) Marginal(t int, name string) ([]float64, error) {
	idx, ok := r.dbn.slice.Index(name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown node %s", ErrBadDBN, name)
	}
	pos, ok := r.dbn.hiddenPos[idx]
	if !ok {
		return nil, fmt.Errorf("%w: node %s is not hidden", ErrBadDBN, name)
	}
	if t < 0 || t >= len(r.beliefs) {
		return nil, fmt.Errorf("dbn: step %d out of range [0,%d)", t, len(r.beliefs))
	}
	out := make([]float64, r.dbn.hiddenCard[pos])
	for s, p := range r.beliefs[t] {
		out[r.dbn.stateOfNode(r.dbn.hidden[pos], s)] += p
	}
	return out, nil
}

// MarginalSeries returns P(node = state | e_1:t) for every step.
func (r *FilterResult) MarginalSeries(name string, state int) ([]float64, error) {
	out := make([]float64, len(r.beliefs))
	for t := range r.beliefs {
		m, err := r.Marginal(t, name)
		if err != nil {
			return nil, err
		}
		if state < 0 || state >= len(m) {
			return nil, fmt.Errorf("dbn: state %d out of range", state)
		}
		out[t] = m[state]
	}
	return out, nil
}

// clusterSpec is the compiled form of Clusters.
type clusterSpec struct {
	members [][]int // positions into d.hidden per cluster
}

func (d *DBN) compileClusters(cl Clusters) (*clusterSpec, error) {
	if len(cl) == 0 {
		all := make([]int, len(d.hidden))
		for i := range all {
			all[i] = i
		}
		return &clusterSpec{members: [][]int{all}}, nil
	}
	seen := make([]bool, len(d.hidden))
	spec := &clusterSpec{}
	for _, group := range cl {
		var ms []int
		for _, name := range group {
			idx, ok := d.slice.Index(name)
			if !ok {
				return nil, fmt.Errorf("%w: unknown cluster node %s", ErrBadDBN, name)
			}
			pos, ok := d.hiddenPos[idx]
			if !ok {
				return nil, fmt.Errorf("%w: cluster node %s is not hidden", ErrBadDBN, name)
			}
			if seen[pos] {
				return nil, fmt.Errorf("%w: node %s in two clusters", ErrBadDBN, name)
			}
			seen[pos] = true
			ms = append(ms, pos)
		}
		spec.members = append(spec.members, ms)
	}
	for pos, s := range seen {
		if !s {
			return nil, fmt.Errorf("%w: hidden node %s not covered by clusters",
				ErrBadDBN, d.slice.Nodes[d.hidden[pos]].Name)
		}
	}
	return spec, nil
}

// project replaces the joint belief with the product of its cluster
// marginals — the Boyen-Koller projection. With a single cluster this
// is the identity.
func (d *DBN) project(belief []float64, spec *clusterSpec) []float64 {
	if len(spec.members) == 1 {
		return belief
	}
	cBKProjections.Inc()
	// Compute each cluster's marginal.
	marginals := make([]map[string]float64, len(spec.members))
	keys := make([][]int, d.S) // decoded states, cached
	for s := range keys {
		keys[s] = d.hiddenState(s)
	}
	for c, ms := range spec.members {
		m := map[string]float64{}
		for s, p := range belief {
			m[configKey(keys[s], ms)] += p
		}
		marginals[c] = m
	}
	out := make([]float64, d.S)
	for s := range out {
		p := 1.0
		for c, ms := range spec.members {
			p *= marginals[c][configKey(keys[s], ms)]
		}
		out[s] = p
	}
	normalize(out)
	return out
}

func configKey(cfg []int, positions []int) string {
	b := make([]byte, len(positions))
	for i, p := range positions {
		b[i] = byte(cfg[p])
	}
	return string(b)
}

func normalize(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range p {
			p[i] *= inv
		}
	}
	return s
}

// Filter runs the Boyen-Koller filter over an observation sequence.
// obs[t] holds the state of each evidence node (observation order) at
// step t. clusters selects the belief factorization (nil = exact).
func (d *DBN) Filter(obs [][]int, clusters Clusters) (*FilterResult, error) {
	defer func(start time.Time) { hFilterLat.Observe(time.Since(start)) }(time.Now())
	cBKSteps.Add(int64(len(obs)))
	spec, err := d.compileClusters(clusters)
	if err != nil {
		return nil, err
	}
	if err := d.checkObs(obs); err != nil {
		return nil, err
	}
	res := &FilterResult{dbn: d}
	if len(obs) == 0 {
		return res, nil
	}
	// t = 0: prior times emission.
	belief := d.Prior()
	for s := range belief {
		belief[s] *= d.Emission(s, obs[0])
	}
	z := normalize(belief)
	if z <= 0 {
		return nil, fmt.Errorf("dbn: zero-probability observation at t=0")
	}
	res.LogLikelihood += math.Log(z)
	belief = d.project(belief, spec)
	res.beliefs = append(res.beliefs, belief)

	// Transition matrix cached once (parameters are tied).
	A := d.transitionMatrix()
	for t := 1; t < len(obs); t++ {
		next := make([]float64, d.S)
		for sPrev, bp := range belief {
			if bp == 0 {
				continue
			}
			row := A[sPrev]
			for sCur, a := range row {
				next[sCur] += bp * a
			}
		}
		for s := range next {
			next[s] *= d.Emission(s, obs[t])
		}
		z := normalize(next)
		if z <= 0 {
			return nil, fmt.Errorf("dbn: zero-probability observation at t=%d", t)
		}
		res.LogLikelihood += math.Log(z)
		next = d.project(next, spec)
		res.beliefs = append(res.beliefs, next)
		belief = next
	}
	return res, nil
}

// transitionMatrix materializes A[sPrev][sCur].
func (d *DBN) transitionMatrix() [][]float64 {
	A := make([][]float64, d.S)
	for sp := 0; sp < d.S; sp++ {
		A[sp] = make([]float64, d.S)
		for sc := 0; sc < d.S; sc++ {
			A[sp][sc] = d.Transition(sp, sc)
		}
	}
	return A
}

func (d *DBN) checkObs(obs [][]int) error {
	for t, o := range obs {
		if len(o) != len(d.evidence) {
			return fmt.Errorf("%w: observation %d has %d values, want %d",
				ErrBadDBN, t, len(o), len(d.evidence))
		}
		for k, v := range o {
			if v < 0 || v >= d.slice.Nodes[d.evidence[k]].States {
				return fmt.Errorf("%w: observation %d value %d out of range for %s",
					ErrBadDBN, t, v, d.evidenceNames[k])
			}
		}
	}
	return nil
}
