package dbn

import (
	"fmt"
	"math"
)

// EMConfig parameterizes DBN EM training.
type EMConfig struct {
	// MaxIterations caps EM iterations (default 30).
	MaxIterations int
	// Tolerance is the minimum total log-likelihood improvement to
	// continue (default 1e-3).
	Tolerance float64
	// Prior is the Dirichlet pseudo-count added to every expected count
	// (default 0.05).
	Prior float64
	// Anchor adds Anchor * p0 pseudo-counts to every parameter, where
	// p0 is the parameter's value before training. This keeps EM near
	// the domain-knowledge initialization (§2: domain knowledge stored
	// in the database) for rows the data rarely visits, while rows with
	// strong data support still move. 0 disables anchoring.
	Anchor float64
}

// DefaultEMConfig returns the standard settings.
func DefaultEMConfig() EMConfig {
	return EMConfig{MaxIterations: 30, Tolerance: 1e-3, Prior: 0.05}
}

// EMResult reports a training run.
type EMResult struct {
	Iterations    int
	LogLikelihood float64
	Converged     bool
}

// LearnEM fits all DBN parameters (prior slice CPTs for hidden nodes,
// transition CPTs, evidence CPTs) to the observation sequences by
// Expectation-Maximization. The E-step runs exact forward-backward
// smoothing over the joint hidden state, the maximum-likelihood
// counterpart of the paper's EM (§4). Each sequence seqs[i][t] holds
// one state per evidence node in observation order.
func (d *DBN) LearnEM(seqs [][][]int, cfg EMConfig) (EMResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 30
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-3
	}
	for _, obs := range seqs {
		if err := d.checkObs(obs); err != nil {
			return EMResult{}, err
		}
	}
	anchor := d.snapshotParams()
	res := EMResult{LogLikelihood: math.Inf(-1)}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		acc := d.newCounts(cfg.Prior)
		if cfg.Anchor > 0 {
			acc.addAnchor(anchor, cfg.Anchor)
		}
		ll := 0.0
		for _, obs := range seqs {
			if len(obs) == 0 {
				continue
			}
			sll, err := d.eStep(obs, acc)
			if err != nil {
				return res, err
			}
			ll += sll
		}
		d.mStep(acc)
		res.Iterations = iter + 1
		if ll-res.LogLikelihood < cfg.Tolerance && iter > 0 {
			res.LogLikelihood = ll
			res.Converged = true
			return res, nil
		}
		res.LogLikelihood = ll
	}
	return res, nil
}

// counts aggregates expected sufficient statistics.
type counts struct {
	prior []([]float64) // per hidden node (slice CPT layout)
	trans []([]float64) // per transition family (trans CPT layout)
	emit  []([]float64) // per evidence node (slice CPT layout)
}

// snapshotParams copies the current parameters for anchoring.
func (d *DBN) snapshotParams() *counts {
	c := &counts{}
	for _, h := range d.hidden {
		c.prior = append(c.prior, append([]float64(nil), d.slice.Nodes[h].CPT...))
	}
	for i := range d.trans {
		c.trans = append(c.trans, append([]float64(nil), d.trans[i].cpt...))
	}
	for _, e := range d.evidence {
		c.emit = append(c.emit, append([]float64(nil), d.slice.Nodes[e].CPT...))
	}
	return c
}

// addAnchor adds weight * p0 pseudo-counts from the snapshot.
func (c *counts) addAnchor(p0 *counts, weight float64) {
	for i := range c.prior {
		for k := range c.prior[i] {
			c.prior[i][k] += weight * p0.prior[i][k]
		}
	}
	for i := range c.trans {
		for k := range c.trans[i] {
			c.trans[i][k] += weight * p0.trans[i][k]
		}
	}
	for i := range c.emit {
		for k := range c.emit[i] {
			c.emit[i][k] += weight * p0.emit[i][k]
		}
	}
}

func (d *DBN) newCounts(prior float64) *counts {
	c := &counts{}
	for _, h := range d.hidden {
		buf := make([]float64, len(d.slice.Nodes[h].CPT))
		for i := range buf {
			buf[i] = prior
		}
		c.prior = append(c.prior, buf)
	}
	for i := range d.trans {
		buf := make([]float64, len(d.trans[i].cpt))
		for k := range buf {
			buf[k] = prior
		}
		c.trans = append(c.trans, buf)
	}
	for _, e := range d.evidence {
		buf := make([]float64, len(d.slice.Nodes[e].CPT))
		for i := range buf {
			buf[i] = prior
		}
		c.emit = append(c.emit, buf)
	}
	return c
}

// eStep runs scaled forward-backward over one sequence and accumulates
// expected counts; it returns the sequence log-likelihood.
func (d *DBN) eStep(obs [][]int, acc *counts) (float64, error) {
	T := len(obs)
	S := d.S
	A := d.transitionMatrix()
	pi := d.Prior()
	// Emission cache.
	B := make([][]float64, T)
	for t := 0; t < T; t++ {
		B[t] = make([]float64, S)
		for s := 0; s < S; s++ {
			B[t][s] = d.Emission(s, obs[t])
		}
	}
	alpha := make([][]float64, T)
	scale := make([]float64, T)
	alpha[0] = make([]float64, S)
	for s := 0; s < S; s++ {
		alpha[0][s] = pi[s] * B[0][s]
	}
	scale[0] = normalize(alpha[0])
	if scale[0] <= 0 {
		return 0, fmt.Errorf("dbn: zero-probability observation at t=0")
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, S)
		for sp := 0; sp < S; sp++ {
			ap := alpha[t-1][sp]
			if ap == 0 {
				continue
			}
			row := A[sp]
			for sc := 0; sc < S; sc++ {
				alpha[t][sc] += ap * row[sc]
			}
		}
		for sc := 0; sc < S; sc++ {
			alpha[t][sc] *= B[t][sc]
		}
		scale[t] = normalize(alpha[t])
		if scale[t] <= 0 {
			return 0, fmt.Errorf("dbn: zero-probability observation at t=%d", t)
		}
	}
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, S)
	for s := 0; s < S; s++ {
		beta[T-1][s] = 1
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, S)
		for sp := 0; sp < S; sp++ {
			v := 0.0
			row := A[sp]
			for sc := 0; sc < S; sc++ {
				v += row[sc] * B[t+1][sc] * beta[t+1][sc]
			}
			beta[t][sp] = v / scale[t+1]
		}
	}
	// Gamma counts.
	gamma := make([]float64, S)
	for t := 0; t < T; t++ {
		copy(gamma, alpha[t])
		for s := 0; s < S; s++ {
			gamma[s] *= beta[t][s]
		}
		normalize(gamma)
		if t == 0 {
			d.accumulatePrior(gamma, acc)
		}
		d.accumulateEmit(gamma, obs[t], acc)
	}
	// Xi counts.
	for t := 0; t < T-1; t++ {
		var z float64
		xi := make([][]float64, S)
		for sp := 0; sp < S; sp++ {
			xi[sp] = make([]float64, S)
			ap := alpha[t][sp]
			if ap == 0 {
				continue
			}
			row := A[sp]
			for sc := 0; sc < S; sc++ {
				v := ap * row[sc] * B[t+1][sc] * beta[t+1][sc]
				xi[sp][sc] = v
				z += v
			}
		}
		if z <= 0 {
			continue
		}
		inv := 1 / z
		for sp := 0; sp < S; sp++ {
			for sc := 0; sc < S; sc++ {
				if xi[sp][sc] == 0 {
					continue
				}
				d.accumulateTrans(sp, sc, xi[sp][sc]*inv, acc)
			}
		}
	}
	ll := 0.0
	for _, sc := range scale {
		ll += math.Log(sc)
	}
	return ll, nil
}

func (d *DBN) accumulatePrior(gamma []float64, acc *counts) {
	for s, p := range gamma {
		if p == 0 {
			continue
		}
		cfg := d.hiddenState(s)
		for pos, h := range d.hidden {
			node := &d.slice.Nodes[h]
			row := 0
			for _, par := range node.Parents {
				row = row*d.slice.Nodes[par].States + cfg[d.hiddenPos[par]]
			}
			acc.prior[pos][row*node.States+cfg[pos]] += p
		}
	}
}

func (d *DBN) accumulateEmit(gamma []float64, obs []int, acc *counts) {
	obsOf := func(idx int) (int, bool) {
		for k, e := range d.evidence {
			if e == idx {
				return obs[k], true
			}
		}
		return 0, false
	}
	for s, p := range gamma {
		if p == 0 {
			continue
		}
		for k, e := range d.evidence {
			node := &d.slice.Nodes[e]
			row := 0
			for _, par := range node.Parents {
				var st int
				if v, ok := obsOf(par); ok {
					st = v
				} else {
					st = d.stateOfNode(par, s)
				}
				row = row*d.slice.Nodes[par].States + st
			}
			acc.emit[k][row*node.States+obs[k]] += p
		}
	}
}

func (d *DBN) accumulateTrans(sPrev, sCur int, p float64, acc *counts) {
	for i := range d.trans {
		tn := &d.trans[i]
		row := d.transRow(tn, sPrev, sCur)
		acc.trans[i][row+d.stateOfNode(tn.node, sCur)] += p
	}
}

// mStep normalizes expected counts into parameters.
func (d *DBN) mStep(acc *counts) {
	for pos, h := range d.hidden {
		node := &d.slice.Nodes[h]
		normalizeRows(acc.prior[pos], node.States)
		copy(node.CPT, acc.prior[pos])
	}
	for i := range d.trans {
		tn := &d.trans[i]
		states := d.slice.Nodes[tn.node].States
		normalizeRows(acc.trans[i], states)
		copy(tn.cpt, acc.trans[i])
	}
	for k, e := range d.evidence {
		node := &d.slice.Nodes[e]
		normalizeRows(acc.emit[k], node.States)
		copy(node.CPT, acc.emit[k])
	}
}

func normalizeRows(buf []float64, states int) {
	for r := 0; r < len(buf); r += states {
		s := 0.0
		for k := 0; k < states; k++ {
			s += buf[r+k]
		}
		if s <= 0 {
			continue
		}
		for k := 0; k < states; k++ {
			buf[r+k] /= s
		}
	}
}
