package dbn

import (
	"fmt"
	"math"
)

// SmoothResult holds forward-backward (offline) posteriors: at each
// step the marginal conditions on the whole observation sequence, not
// just the prefix, so smoothed series are strictly better estimates
// than filtered ones when the full race is available — the offline
// annotation setting of the metadata extraction engines.
type SmoothResult struct {
	dbn *DBN
	// gammas[t] is P(H_t = s | e_1:T).
	gammas [][]float64
	// LogLikelihood is log P(e_1:T).
	LogLikelihood float64
}

// Steps returns the number of smoothed steps.
func (r *SmoothResult) Steps() int { return len(r.gammas) }

// Marginal returns P(node = state | e_1:T) at step t.
func (r *SmoothResult) Marginal(t int, name string) ([]float64, error) {
	idx, ok := r.dbn.slice.Index(name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown node %s", ErrBadDBN, name)
	}
	pos, ok := r.dbn.hiddenPos[idx]
	if !ok {
		return nil, fmt.Errorf("%w: node %s is not hidden", ErrBadDBN, name)
	}
	if t < 0 || t >= len(r.gammas) {
		return nil, fmt.Errorf("dbn: step %d out of range [0,%d)", t, len(r.gammas))
	}
	out := make([]float64, r.dbn.hiddenCard[pos])
	for s, p := range r.gammas[t] {
		out[r.dbn.stateOfNode(r.dbn.hidden[pos], s)] += p
	}
	return out, nil
}

// MarginalSeries returns the smoothed P(node = state) for every step.
func (r *SmoothResult) MarginalSeries(name string, state int) ([]float64, error) {
	out := make([]float64, len(r.gammas))
	for t := range r.gammas {
		m, err := r.Marginal(t, name)
		if err != nil {
			return nil, err
		}
		if state < 0 || state >= len(m) {
			return nil, fmt.Errorf("dbn: state %d out of range", state)
		}
		out[t] = m[state]
	}
	return out, nil
}

// Smooth runs exact forward-backward smoothing over the observation
// sequence, returning per-step posteriors conditioned on all evidence.
func (d *DBN) Smooth(obs [][]int) (*SmoothResult, error) {
	if err := d.checkObs(obs); err != nil {
		return nil, err
	}
	res := &SmoothResult{dbn: d}
	T := len(obs)
	if T == 0 {
		return res, nil
	}
	S := d.S
	A := d.transitionMatrix()
	pi := d.Prior()
	B := make([][]float64, T)
	for t := 0; t < T; t++ {
		B[t] = make([]float64, S)
		for s := 0; s < S; s++ {
			B[t][s] = d.Emission(s, obs[t])
		}
	}
	alpha := make([][]float64, T)
	scale := make([]float64, T)
	alpha[0] = make([]float64, S)
	for s := 0; s < S; s++ {
		alpha[0][s] = pi[s] * B[0][s]
	}
	scale[0] = normalize(alpha[0])
	if scale[0] <= 0 {
		return nil, fmt.Errorf("dbn: zero-probability observation at t=0")
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, S)
		for sp := 0; sp < S; sp++ {
			ap := alpha[t-1][sp]
			if ap == 0 {
				continue
			}
			row := A[sp]
			for sc := 0; sc < S; sc++ {
				alpha[t][sc] += ap * row[sc]
			}
		}
		for sc := 0; sc < S; sc++ {
			alpha[t][sc] *= B[t][sc]
		}
		scale[t] = normalize(alpha[t])
		if scale[t] <= 0 {
			return nil, fmt.Errorf("dbn: zero-probability observation at t=%d", t)
		}
	}
	beta := make([]float64, S)
	for s := range beta {
		beta[s] = 1
	}
	res.gammas = make([][]float64, T)
	for t := T - 1; t >= 0; t-- {
		g := make([]float64, S)
		for s := 0; s < S; s++ {
			g[s] = alpha[t][s] * beta[s]
		}
		normalize(g)
		res.gammas[t] = g
		if t == 0 {
			break
		}
		next := make([]float64, S)
		for sp := 0; sp < S; sp++ {
			v := 0.0
			row := A[sp]
			for sc := 0; sc < S; sc++ {
				v += row[sc] * B[t][sc] * beta[sc]
			}
			next[sp] = v / scale[t]
		}
		beta = next
	}
	for _, sc := range scale {
		res.LogLikelihood += math.Log(sc)
	}
	return res, nil
}
