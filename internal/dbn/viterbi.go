package dbn

import (
	"fmt"
	"math"
)

// ViterbiResult holds the most probable joint hidden trajectory.
type ViterbiResult struct {
	dbn *DBN
	// States is the joint hidden state per step.
	States []int
	// LogProb is the log probability of the trajectory and evidence.
	LogProb float64
}

// StateSeries returns the decoded state of one hidden node per step.
func (r *ViterbiResult) StateSeries(name string) ([]int, error) {
	idx, ok := r.dbn.slice.Index(name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown node %s", ErrBadDBN, name)
	}
	if _, ok := r.dbn.hiddenPos[idx]; !ok {
		return nil, fmt.Errorf("%w: node %s is not hidden", ErrBadDBN, name)
	}
	out := make([]int, len(r.States))
	for t, s := range r.States {
		out[t] = r.dbn.stateOfNode(idx, s)
	}
	return out, nil
}

// Viterbi computes the most probable joint hidden trajectory for the
// observation sequence (the sequence analogue of MAP).
func (d *DBN) Viterbi(obs [][]int) (*ViterbiResult, error) {
	if err := d.checkObs(obs); err != nil {
		return nil, err
	}
	res := &ViterbiResult{dbn: d}
	T := len(obs)
	if T == 0 {
		return res, nil
	}
	S := d.S
	logA := make([][]float64, S)
	for sp := 0; sp < S; sp++ {
		logA[sp] = make([]float64, S)
		for sc := 0; sc < S; sc++ {
			logA[sp][sc] = safeLog(d.Transition(sp, sc))
		}
	}
	delta := make([]float64, S)
	pi := d.Prior()
	for s := 0; s < S; s++ {
		delta[s] = safeLog(pi[s]) + safeLog(d.Emission(s, obs[0]))
	}
	back := make([][]int, T)
	for t := 1; t < T; t++ {
		back[t] = make([]int, S)
		next := make([]float64, S)
		for sc := 0; sc < S; sc++ {
			best, arg := math.Inf(-1), 0
			for sp := 0; sp < S; sp++ {
				if v := delta[sp] + logA[sp][sc]; v > best {
					best, arg = v, sp
				}
			}
			next[sc] = best + safeLog(d.Emission(sc, obs[t]))
			back[t][sc] = arg
		}
		delta = next
	}
	best, arg := math.Inf(-1), 0
	for s := 0; s < S; s++ {
		if delta[s] > best {
			best, arg = delta[s], s
		}
	}
	res.LogProb = best
	res.States = make([]int, T)
	res.States[T-1] = arg
	for t := T - 1; t > 0; t-- {
		res.States[t-1] = back[t][res.States[t]]
	}
	return res, nil
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}
