// Package rules implements the rule-based extension of the Cobra VDBMS
// (§3): a forward-chaining inference engine over event facts with
// attribute constraints and Allen-interval temporal reasoning. Rules
// formalize high-level concepts ("a pit-stop highlight is a highlight
// overlapping a pit stop of the queried driver") and derive new events
// until fixpoint, which is how users define compound events through
// the interface (§5.6).
package rules

import "fmt"

// Interval is a time interval [Start, End) in seconds.
type Interval struct {
	Start, End float64
}

// Duration returns End - Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Valid reports whether the interval is well-formed and non-empty.
func (iv Interval) Valid() bool { return iv.End > iv.Start }

// Intersects reports whether two intervals share any time.
func (iv Interval) Intersects(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Union returns the smallest interval covering both.
func (iv Interval) Union(o Interval) Interval {
	out := iv
	if o.Start < out.Start {
		out.Start = o.Start
	}
	if o.End > out.End {
		out.End = o.End
	}
	return out
}

// Relation is one of Allen's thirteen interval relations.
type Relation int

// Allen's interval relations. The inverse of each forward relation R
// satisfies R(a,b) == Inverse(R)(b,a); Equals is its own inverse.
const (
	Before Relation = iota
	Meets
	Overlaps
	Starts
	During
	Finishes
	Equals
	After
	MetBy
	OverlappedBy
	StartedBy
	Contains
	FinishedBy
)

// relationNames maps relations to their DSL spellings.
var relationNames = map[Relation]string{
	Before: "BEFORE", Meets: "MEETS", Overlaps: "OVERLAPS",
	Starts: "STARTS", During: "DURING", Finishes: "FINISHES",
	Equals: "EQUALS", After: "AFTER", MetBy: "METBY",
	OverlappedBy: "OVERLAPPEDBY", StartedBy: "STARTEDBY",
	Contains: "CONTAINS", FinishedBy: "FINISHEDBY",
}

// String returns the DSL spelling of the relation.
func (r Relation) String() string {
	if s, ok := relationNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// ParseRelation resolves a DSL spelling.
func ParseRelation(s string) (Relation, bool) {
	for r, name := range relationNames {
		if name == s {
			return r, true
		}
	}
	return 0, false
}

// Inverse returns the converse relation.
func (r Relation) Inverse() Relation {
	switch r {
	case Before:
		return After
	case After:
		return Before
	case Meets:
		return MetBy
	case MetBy:
		return Meets
	case Overlaps:
		return OverlappedBy
	case OverlappedBy:
		return Overlaps
	case Starts:
		return StartedBy
	case StartedBy:
		return Starts
	case During:
		return Contains
	case Contains:
		return During
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	default:
		return Equals
	}
}

// eqTol is the tolerance for endpoint equality, accommodating the 0.1 s
// clip grid of the feature streams.
const eqTol = 1e-9

func feq(a, b float64) bool {
	d := a - b
	return d < eqTol && d > -eqTol
}

// Holds reports whether relation r holds between intervals a and b.
func Holds(r Relation, a, b Interval) bool {
	switch r {
	case Before:
		return a.End < b.Start
	case After:
		return Holds(Before, b, a)
	case Meets:
		return feq(a.End, b.Start)
	case MetBy:
		return Holds(Meets, b, a)
	case Overlaps:
		return a.Start < b.Start && a.End > b.Start && a.End < b.End
	case OverlappedBy:
		return Holds(Overlaps, b, a)
	case Starts:
		return feq(a.Start, b.Start) && a.End < b.End
	case StartedBy:
		return Holds(Starts, b, a)
	case During:
		return a.Start > b.Start && a.End < b.End
	case Contains:
		return Holds(During, b, a)
	case Finishes:
		return feq(a.End, b.End) && a.Start > b.Start
	case FinishedBy:
		return Holds(Finishes, b, a)
	case Equals:
		return feq(a.Start, b.Start) && feq(a.End, b.End)
	default:
		return false
	}
}

// RelationBetween classifies the (unique) Allen relation between two
// valid intervals.
func RelationBetween(a, b Interval) Relation {
	for r := Before; r <= FinishedBy; r++ {
		if Holds(r, a, b) {
			return r
		}
	}
	// Unreachable for valid intervals, but keep a defined answer.
	return Equals
}
