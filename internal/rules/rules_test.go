package rules

import (
	"testing"
	"testing/quick"
)

func iv(a, b float64) Interval { return Interval{Start: a, End: b} }

func TestIntervalBasics(t *testing.T) {
	if !iv(1, 2).Valid() || iv(2, 2).Valid() || iv(3, 2).Valid() {
		t.Fatal("Valid wrong")
	}
	if iv(1, 2).Duration() != 1 {
		t.Fatal("Duration wrong")
	}
	if !iv(1, 3).Intersects(iv(2, 4)) || iv(1, 2).Intersects(iv(2, 3)) {
		t.Fatal("Intersects wrong")
	}
	u := iv(1, 3).Union(iv(2, 5))
	if u != iv(1, 5) {
		t.Fatalf("Union = %v", u)
	}
}

func TestAllenRelations(t *testing.T) {
	cases := []struct {
		rel  Relation
		a, b Interval
	}{
		{Before, iv(0, 1), iv(2, 3)},
		{Meets, iv(0, 1), iv(1, 2)},
		{Overlaps, iv(0, 2), iv(1, 3)},
		{Starts, iv(0, 1), iv(0, 2)},
		{During, iv(1, 2), iv(0, 3)},
		{Finishes, iv(1, 2), iv(0, 2)},
		{Equals, iv(0, 1), iv(0, 1)},
	}
	for _, c := range cases {
		if !Holds(c.rel, c.a, c.b) {
			t.Errorf("%v should hold for %v, %v", c.rel, c.a, c.b)
		}
		if got := RelationBetween(c.a, c.b); got != c.rel {
			t.Errorf("RelationBetween(%v, %v) = %v, want %v", c.a, c.b, got, c.rel)
		}
		// The inverse holds with swapped arguments.
		if !Holds(c.rel.Inverse(), c.b, c.a) {
			t.Errorf("inverse of %v should hold for swapped args", c.rel)
		}
	}
}

// Property: exactly one Allen relation holds between any two valid
// intervals with distinct-enough endpoints.
func TestAllenExclusivityProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := iv(float64(a0), float64(a0)+float64(a1%50)+1)
		b := iv(float64(b0), float64(b0)+float64(b1%50)+1)
		count := 0
		for r := Before; r <= FinishedBy; r++ {
			if Holds(r, a, b) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRelation(t *testing.T) {
	r, ok := ParseRelation("DURING")
	if !ok || r != During {
		t.Fatalf("ParseRelation = %v, %v", r, ok)
	}
	if _, ok := ParseRelation("NOPE"); ok {
		t.Fatal("bad relation parsed")
	}
	if During.String() != "DURING" {
		t.Fatalf("String = %q", During.String())
	}
}

func TestStoreAssertDedupe(t *testing.T) {
	s := NewStore()
	e := Event{Type: "highlight", Interval: iv(1, 2), Confidence: 0.9,
		Attrs: map[string]string{"driver": "SCHUMACHER"}}
	if !s.Assert(e) {
		t.Fatal("first assert rejected")
	}
	if s.Assert(e) {
		t.Fatal("duplicate accepted")
	}
	e2 := e
	e2.Attrs = map[string]string{"driver": "HAKKINEN"}
	if !s.Assert(e2) {
		t.Fatal("distinct attrs rejected")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreEventsSorted(t *testing.T) {
	s := NewStore()
	s.Assert(Event{Type: "x", Interval: iv(5, 6)})
	s.Assert(Event{Type: "x", Interval: iv(1, 2)})
	s.Assert(Event{Type: "y", Interval: iv(0, 1)})
	xs := s.Events("x")
	if len(xs) != 2 || xs[0].Interval.Start != 1 {
		t.Fatalf("events = %v", xs)
	}
	if len(s.Events("")) != 3 {
		t.Fatal("all-events query wrong")
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{},
		{Name: "r", Produces: "p"},
		{Name: "r", Produces: "p", Patterns: []Pattern{{Var: "", Type: "t"}}},
		{Name: "r", Produces: "p", Patterns: []Pattern{{Var: "a", Type: "t"}, {Var: "a", Type: "t"}}},
		{Name: "r", Produces: "p", Patterns: []Pattern{{Var: "a", Type: "t"}},
			Where: []TemporalConstraint{{A: "a", B: "zz", Relations: []Relation{Before}}}},
		{Name: "r", Produces: "p", Patterns: []Pattern{{Var: "a", Type: "t"}},
			Where: []TemporalConstraint{{A: "a", B: "a"}}},
		{Name: "r", Produces: "p", Patterns: []Pattern{{Var: "a", Type: "t"}},
			CopyAttrs: map[string]string{"d": "zz.attr"}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d accepted", i)
		}
	}
}

// pitStopHighlightRule is the paper's running example: a highlight at
// the pit line involving a given driver.
func pitStopHighlightRule() Rule {
	return Rule{
		Name:     "pit-highlight",
		Produces: "pit-highlight",
		Patterns: []Pattern{
			{Var: "h", Type: "highlight", MinConfidence: 0.5},
			{Var: "p", Type: "pitstop"},
		},
		Where: []TemporalConstraint{
			{A: "h", B: "p", Relations: []Relation{Overlaps, OverlappedBy, During, Contains, Equals, Starts, StartedBy, Finishes, FinishedBy}},
		},
		CopyAttrs: map[string]string{"driver": "p.driver"},
		SetAttrs:  map[string]string{"source": "rule"},
	}
}

func TestEngineDerivesCompoundEvent(t *testing.T) {
	s := NewStore()
	s.Assert(Event{Type: "highlight", Interval: iv(100, 110), Confidence: 0.8})
	s.Assert(Event{Type: "highlight", Interval: iv(300, 310), Confidence: 0.9})
	s.Assert(Event{Type: "pitstop", Interval: iv(105, 112), Confidence: 1,
		Attrs: map[string]string{"driver": "BARRICHELLO"}})
	en, err := NewEngine(pitStopHighlightRule())
	if err != nil {
		t.Fatal(err)
	}
	added := en.Run(s)
	if added != 1 {
		t.Fatalf("added = %d", added)
	}
	got := s.Events("pit-highlight")
	if len(got) != 1 {
		t.Fatalf("derived = %v", got)
	}
	e := got[0]
	if e.Attr("driver") != "BARRICHELLO" || e.Attr("source") != "rule" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
	if e.Interval != iv(100, 112) {
		t.Fatalf("interval = %v", e.Interval)
	}
	if e.Confidence != 0.8 {
		t.Fatalf("confidence = %v", e.Confidence)
	}
}

func TestEngineMinConfidenceFilter(t *testing.T) {
	s := NewStore()
	s.Assert(Event{Type: "highlight", Interval: iv(100, 110), Confidence: 0.3})
	s.Assert(Event{Type: "pitstop", Interval: iv(105, 112), Confidence: 1,
		Attrs: map[string]string{"driver": "X"}})
	en, _ := NewEngine(pitStopHighlightRule())
	if added := en.Run(s); added != 0 {
		t.Fatalf("low-confidence highlight fired rule: %d", added)
	}
}

func TestEngineChainedRules(t *testing.T) {
	// Rule 2 consumes what rule 1 produces: requires fixpoint rounds.
	r1 := Rule{
		Name: "r1", Produces: "ab",
		Patterns: []Pattern{{Var: "a", Type: "a"}, {Var: "b", Type: "b"}},
		Where:    []TemporalConstraint{{A: "a", B: "b", Relations: []Relation{Before}, MaxGap: 10}},
	}
	r2 := Rule{
		Name: "r2", Produces: "abc",
		Patterns: []Pattern{{Var: "x", Type: "ab"}, {Var: "c", Type: "c"}},
		Where:    []TemporalConstraint{{A: "x", B: "c", Relations: []Relation{Before, Meets, Overlaps}}},
	}
	en, err := NewEngine(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Assert(Event{Type: "a", Interval: iv(0, 1), Confidence: 1})
	s.Assert(Event{Type: "b", Interval: iv(3, 4), Confidence: 1})
	s.Assert(Event{Type: "c", Interval: iv(10, 11), Confidence: 1})
	en.Run(s)
	if len(s.Events("abc")) != 1 {
		t.Fatalf("chained derivation failed: %v", s.Events(""))
	}
}

func TestEngineMaxGap(t *testing.T) {
	r := Rule{
		Name: "near", Produces: "near",
		Patterns: []Pattern{{Var: "a", Type: "a"}, {Var: "b", Type: "b"}},
		Where:    []TemporalConstraint{{A: "a", B: "b", Relations: []Relation{Before}, MaxGap: 5}},
	}
	en, _ := NewEngine(r)
	s := NewStore()
	s.Assert(Event{Type: "a", Interval: iv(0, 1), Confidence: 1})
	s.Assert(Event{Type: "b", Interval: iv(20, 21), Confidence: 1}) // gap 19 > 5
	if en.Run(s) != 0 {
		t.Fatal("gap constraint ignored")
	}
	s.Assert(Event{Type: "b", Interval: iv(3, 4), Confidence: 1}) // gap 2 <= 5
	if en.Run(s) != 1 {
		t.Fatal("near pair not derived")
	}
}

func TestEngineTerminatesOnSelfFeeding(t *testing.T) {
	// A rule producing its own input type must still terminate via
	// duplicate suppression and round capping.
	r := Rule{
		Name: "loop", Produces: "x",
		Patterns: []Pattern{{Var: "a", Type: "x"}},
	}
	en, _ := NewEngine(r)
	en.MaxRounds = 4
	s := NewStore()
	s.Assert(Event{Type: "x", Interval: iv(0, 1), Confidence: 1})
	added := en.Run(s)
	if added != 0 {
		// The derived event equals its premise (same type, interval,
		// confidence, no attrs) so dedupe kills it immediately.
		t.Fatalf("self-feeding rule added %d", added)
	}
}
