package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRule parses the textual rule DSL through which users define
// compound events (§5.6: "a user can define new compound events by
// specifying different temporal relationships among already defined
// events"). The syntax is line-oriented:
//
//	RULE pit-highlight:
//	  h: highlight CONF >= 0.5
//	  p: pitstop WHERE driver = "BARRICHELLO"
//	  h OVERLAPS|DURING p
//	  h BEFORE p MAXGAP 10
//	  => pit-highlight SET source = "rule" COPY driver = p.driver
//
// The first line names the rule; each following indented line is a
// pattern binding (`var: type [WHERE attr = "v" [, ...]] [CONF >= x]`),
// a temporal constraint (`a REL[|REL...] b [MAXGAP n]`), or the
// production (`=> type [SET k = "v" ...] [COPY k = var.attr ...]`).
func ParseRule(src string) (Rule, error) {
	var r Rule
	lines := strings.Split(src, "\n")
	vars := map[string]bool{}
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "RULE "):
			name := strings.TrimSpace(line[5:])
			name = strings.TrimSuffix(name, ":")
			if name == "" {
				return r, fmt.Errorf("rules: line %d: empty rule name", ln+1)
			}
			r.Name = name
		case strings.HasPrefix(line, "=>"):
			if err := parseProduction(&r, strings.TrimSpace(line[2:]), ln+1); err != nil {
				return r, err
			}
		case strings.Contains(line, ":"):
			p, err := parsePattern(line, ln+1)
			if err != nil {
				return r, err
			}
			if vars[p.Var] {
				return r, fmt.Errorf("rules: line %d: duplicate variable %q", ln+1, p.Var)
			}
			vars[p.Var] = true
			r.Patterns = append(r.Patterns, p)
		default:
			tc, err := parseConstraint(line, ln+1)
			if err != nil {
				return r, err
			}
			r.Where = append(r.Where, tc)
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// parsePattern handles `var: type [WHERE attr = "v", ...] [CONF >= x]`.
func parsePattern(line string, ln int) (Pattern, error) {
	var p Pattern
	name, rest, _ := strings.Cut(line, ":")
	p.Var = strings.TrimSpace(name)
	rest = strings.TrimSpace(rest)

	// CONF clause (strip from the end first).
	if idx := indexWord(rest, "CONF"); idx >= 0 {
		clause := strings.TrimSpace(rest[idx+4:])
		rest = strings.TrimSpace(rest[:idx])
		clause = strings.TrimPrefix(clause, ">=")
		v, err := strconv.ParseFloat(strings.TrimSpace(clause), 64)
		if err != nil {
			return p, fmt.Errorf("rules: line %d: bad CONF value", ln)
		}
		p.MinConfidence = v
	}
	if idx := indexWord(rest, "WHERE"); idx >= 0 {
		attrPart := strings.TrimSpace(rest[idx+5:])
		rest = strings.TrimSpace(rest[:idx])
		p.Attrs = map[string]string{}
		for _, clause := range strings.Split(attrPart, ",") {
			k, v, ok := strings.Cut(clause, "=")
			if !ok {
				return p, fmt.Errorf("rules: line %d: bad WHERE clause %q", ln, clause)
			}
			p.Attrs[strings.TrimSpace(k)] = unquote(strings.TrimSpace(v))
		}
	}
	p.Type = strings.TrimSpace(rest)
	if p.Var == "" || p.Type == "" {
		return p, fmt.Errorf("rules: line %d: pattern needs `var: type`", ln)
	}
	return p, nil
}

// parseConstraint handles `a REL[|REL...] b [MAXGAP n]`.
func parseConstraint(line string, ln int) (TemporalConstraint, error) {
	var tc TemporalConstraint
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return tc, fmt.Errorf("rules: line %d: expected `a REL b`", ln)
	}
	tc.A = fields[0]
	for _, relName := range strings.Split(strings.ToUpper(fields[1]), "|") {
		rel, ok := ParseRelation(relName)
		if !ok {
			return tc, fmt.Errorf("rules: line %d: unknown relation %q", ln, relName)
		}
		tc.Relations = append(tc.Relations, rel)
	}
	tc.B = fields[2]
	if len(fields) >= 5 && strings.EqualFold(fields[3], "MAXGAP") {
		v, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return tc, fmt.Errorf("rules: line %d: bad MAXGAP", ln)
		}
		tc.MaxGap = v
	} else if len(fields) > 3 {
		return tc, fmt.Errorf("rules: line %d: unexpected trailing %q", ln, fields[3])
	}
	return tc, nil
}

// parseProduction handles `type [SET k = "v" ...] [COPY k = var.attr ...]`.
func parseProduction(r *Rule, rest string, ln int) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("rules: line %d: production needs a type", ln)
	}
	r.Produces = fields[0]
	i := 1
	for i < len(fields) {
		switch strings.ToUpper(fields[i]) {
		case "SET":
			if i+3 >= len(fields) || fields[i+2] != "=" {
				return fmt.Errorf("rules: line %d: SET needs `k = \"v\"`", ln)
			}
			if r.SetAttrs == nil {
				r.SetAttrs = map[string]string{}
			}
			r.SetAttrs[fields[i+1]] = unquote(fields[i+3])
			i += 4
		case "COPY":
			if i+3 >= len(fields) || fields[i+2] != "=" {
				return fmt.Errorf("rules: line %d: COPY needs `k = var.attr`", ln)
			}
			if r.CopyAttrs == nil {
				r.CopyAttrs = map[string]string{}
			}
			r.CopyAttrs[fields[i+1]] = fields[i+3]
			i += 4
		default:
			return fmt.Errorf("rules: line %d: unexpected %q in production", ln, fields[i])
		}
	}
	return nil
}

// indexWord finds a whole-word, case-insensitive occurrence.
func indexWord(s, word string) int {
	upper := strings.ToUpper(s)
	word = strings.ToUpper(word)
	from := 0
	for {
		idx := strings.Index(upper[from:], word)
		if idx < 0 {
			return -1
		}
		idx += from
		beforeOK := idx == 0 || upper[idx-1] == ' '
		after := idx + len(word)
		afterOK := after >= len(upper) || upper[after] == ' '
		if beforeOK && afterOK {
			return idx
		}
		from = idx + len(word)
	}
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}

// ParseRules parses several RULE blocks separated by blank-line
// boundaries at RULE keywords.
func ParseRules(src string) ([]Rule, error) {
	var blocks []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, strings.Join(cur, "\n"))
			cur = nil
		}
	}
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(line)), "RULE ") {
			flush()
		}
		cur = append(cur, line)
	}
	flush()
	var out []Rule
	for _, b := range blocks {
		// Skip blocks holding no RULE line (leading comments/blanks).
		hasRule := false
		for _, line := range strings.Split(b, "\n") {
			if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(line)), "RULE ") {
				hasRule = true
				break
			}
		}
		if !hasRule {
			continue
		}
		r, err := ParseRule(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules: no RULE blocks found")
	}
	return out, nil
}
