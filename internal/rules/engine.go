package rules

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Event is a fact: a typed, timed occurrence with a confidence and
// free-form attributes (driver names, caption text, etc.).
type Event struct {
	Type       string
	Interval   Interval
	Confidence float64
	Attrs      map[string]string
}

// Attr returns an attribute value ("" when absent).
func (e Event) Attr(key string) string { return e.Attrs[key] }

// key canonicalizes an event for duplicate suppression.
func (e Event) key() string {
	attrs := make([]string, 0, len(e.Attrs))
	for k, v := range e.Attrs {
		attrs = append(attrs, k+"="+v)
	}
	sort.Strings(attrs)
	return fmt.Sprintf("%s|%.4f|%.4f|%s", e.Type, e.Interval.Start, e.Interval.End, strings.Join(attrs, ","))
}

// Store is the fact base.
type Store struct {
	events []Event
	seen   map[string]bool
}

// NewStore returns an empty fact base.
func NewStore() *Store {
	return &Store{seen: map[string]bool{}}
}

// Assert adds an event unless an identical one exists; it reports
// whether the event was new.
func (s *Store) Assert(e Event) bool {
	k := e.key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.events = append(s.events, e)
	return true
}

// Events returns all events of the given type (all events when typ is
// ""), ordered by start time.
func (s *Store) Events(typ string) []Event {
	var out []Event
	for _, e := range s.events {
		if typ == "" || e.Type == typ {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// Len returns the number of stored events.
func (s *Store) Len() int { return len(s.events) }

// Pattern selects events by type and attribute equality, with a
// minimum confidence.
type Pattern struct {
	// Var names the binding used by temporal constraints.
	Var string
	// Type is the required event type.
	Type string
	// Attrs are required attribute values (all must match).
	Attrs map[string]string
	// MinConfidence is the minimum confidence (0 accepts all).
	MinConfidence float64
}

func (p Pattern) matches(e Event) bool {
	if e.Type != p.Type {
		return false
	}
	if e.Confidence < p.MinConfidence {
		return false
	}
	for k, v := range p.Attrs {
		if e.Attrs[k] != v {
			return false
		}
	}
	return true
}

// TemporalConstraint requires one of the given Allen relations (a
// disjunction) between two bound variables, optionally within a
// maximum gap for Before/After.
type TemporalConstraint struct {
	A, B      string
	Relations []Relation
	// MaxGap bounds the gap for Before/After relations; 0 = unbounded.
	MaxGap float64
}

func (tc TemporalConstraint) holds(a, b Interval) bool {
	for _, r := range tc.Relations {
		if !Holds(r, a, b) {
			continue
		}
		if tc.MaxGap > 0 {
			switch r {
			case Before:
				if b.Start-a.End > tc.MaxGap {
					continue
				}
			case After:
				if a.Start-b.End > tc.MaxGap {
					continue
				}
			}
		}
		return true
	}
	return false
}

// Rule derives a new event from a conjunction of patterns subject to
// temporal constraints. The derived event spans the union of the bound
// intervals, carries the minimum confidence of its premises, and
// copies CopyAttrs from the named bindings.
type Rule struct {
	Name     string
	Produces string
	Patterns []Pattern
	Where    []TemporalConstraint
	// CopyAttrs maps produced attribute name -> "var.attr" source.
	CopyAttrs map[string]string
	// SetAttrs are constant attributes on the produced event.
	SetAttrs map[string]string
}

// Validate checks rule well-formedness.
func (r Rule) Validate() error {
	if r.Name == "" || r.Produces == "" {
		return errors.New("rules: rule needs a name and a produced type")
	}
	if len(r.Patterns) == 0 {
		return errors.New("rules: rule needs at least one pattern")
	}
	vars := map[string]bool{}
	for _, p := range r.Patterns {
		if p.Var == "" || p.Type == "" {
			return fmt.Errorf("rules: rule %s: pattern needs var and type", r.Name)
		}
		if vars[p.Var] {
			return fmt.Errorf("rules: rule %s: duplicate var %s", r.Name, p.Var)
		}
		vars[p.Var] = true
	}
	for _, tc := range r.Where {
		if !vars[tc.A] || !vars[tc.B] {
			return fmt.Errorf("rules: rule %s: constraint references unknown var", r.Name)
		}
		if len(tc.Relations) == 0 {
			return fmt.Errorf("rules: rule %s: empty relation disjunction", r.Name)
		}
	}
	for _, src := range r.CopyAttrs {
		parts := strings.SplitN(src, ".", 2)
		if len(parts) != 2 || !vars[parts[0]] {
			return fmt.Errorf("rules: rule %s: bad attribute source %q", r.Name, src)
		}
	}
	return nil
}

// Engine forward-chains a rule set over a store.
type Engine struct {
	rules []Rule
	// MaxRounds caps fixpoint iteration (default 8).
	MaxRounds int
}

// NewEngine validates and collects the rules.
func NewEngine(rules ...Rule) (*Engine, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &Engine{rules: append([]Rule(nil), rules...), MaxRounds: 8}, nil
}

// Run derives events until fixpoint (or MaxRounds) and returns the
// number of newly asserted events.
func (en *Engine) Run(s *Store) int {
	total := 0
	rounds := en.MaxRounds
	if rounds <= 0 {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		added := 0
		for _, r := range en.rules {
			added += en.fire(r, s)
		}
		total += added
		if added == 0 {
			break
		}
	}
	return total
}

// fire enumerates all bindings of the rule's patterns and asserts the
// derived events.
func (en *Engine) fire(r Rule, s *Store) int {
	// Candidate lists per pattern.
	cands := make([][]Event, len(r.Patterns))
	for i, p := range r.Patterns {
		for _, e := range s.Events(p.Type) {
			if p.matches(e) {
				cands[i] = append(cands[i], e)
			}
		}
		if len(cands[i]) == 0 {
			return 0
		}
	}
	added := 0
	binding := make([]Event, len(r.Patterns))
	var rec func(k int)
	rec = func(k int) {
		if k == len(r.Patterns) {
			if derived, ok := en.derive(r, binding); ok {
				if s.Assert(derived) {
					added++
				}
			}
			return
		}
		for _, e := range cands[k] {
			binding[k] = e
			// Early constraint check: any constraint fully bound by the
			// first k+1 vars must hold.
			if en.partialOK(r, binding[:k+1]) {
				rec(k + 1)
			}
		}
	}
	rec(0)
	return added
}

func (en *Engine) partialOK(r Rule, bound []Event) bool {
	pos := map[string]int{}
	for i := range bound {
		pos[r.Patterns[i].Var] = i
	}
	for _, tc := range r.Where {
		ai, aok := pos[tc.A]
		bi, bok := pos[tc.B]
		if !aok || !bok {
			continue
		}
		if !tc.holds(bound[ai].Interval, bound[bi].Interval) {
			return false
		}
	}
	return true
}

func (en *Engine) derive(r Rule, binding []Event) (Event, bool) {
	iv := binding[0].Interval
	conf := binding[0].Confidence
	for _, e := range binding[1:] {
		iv = iv.Union(e.Interval)
		if e.Confidence < conf {
			conf = e.Confidence
		}
	}
	attrs := map[string]string{}
	for k, v := range r.SetAttrs {
		attrs[k] = v
	}
	pos := map[string]int{}
	for i, p := range r.Patterns {
		pos[p.Var] = i
	}
	for dst, src := range r.CopyAttrs {
		parts := strings.SplitN(src, ".", 2)
		attrs[dst] = binding[pos[parts[0]]].Attrs[parts[1]]
	}
	return Event{Type: r.Produces, Interval: iv, Confidence: conf, Attrs: attrs}, true
}
