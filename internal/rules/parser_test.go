package rules

import (
	"strings"
	"testing"
)

const pitHighlightSrc = `
RULE pit-highlight:
  h: highlight CONF >= 0.5
  p: pitstop WHERE driver = "BARRICHELLO"
  h OVERLAPS|DURING|CONTAINS p
  => pit-highlight SET source = "rule" COPY driver = p.driver
`

func TestParseRule(t *testing.T) {
	r, err := ParseRule(pitHighlightSrc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "pit-highlight" || r.Produces != "pit-highlight" {
		t.Fatalf("rule = %+v", r)
	}
	if len(r.Patterns) != 2 {
		t.Fatalf("patterns = %v", r.Patterns)
	}
	if r.Patterns[0].MinConfidence != 0.5 {
		t.Fatalf("conf = %v", r.Patterns[0].MinConfidence)
	}
	if r.Patterns[1].Attrs["driver"] != "BARRICHELLO" {
		t.Fatalf("attrs = %v", r.Patterns[1].Attrs)
	}
	if len(r.Where) != 1 || len(r.Where[0].Relations) != 3 {
		t.Fatalf("where = %v", r.Where)
	}
	if r.SetAttrs["source"] != "rule" || r.CopyAttrs["driver"] != "p.driver" {
		t.Fatalf("production = %+v", r)
	}
}

func TestParsedRuleFires(t *testing.T) {
	r, err := ParseRule(pitHighlightSrc)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(r)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Assert(Event{Type: "highlight", Interval: iv(100, 110), Confidence: 0.9})
	s.Assert(Event{Type: "pitstop", Interval: iv(104, 112), Confidence: 1,
		Attrs: map[string]string{"driver": "BARRICHELLO"}})
	if en.Run(s) != 1 {
		t.Fatal("parsed rule did not fire")
	}
	got := s.Events("pit-highlight")
	if len(got) != 1 || got[0].Attr("driver") != "BARRICHELLO" || got[0].Attr("source") != "rule" {
		t.Fatalf("derived = %v", got)
	}
}

func TestParseRuleMaxGap(t *testing.T) {
	r, err := ParseRule(`
RULE replay-of:
  e: passing
  r: replay
  e BEFORE r MAXGAP 15
  => passing-replayed
`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Where[0].MaxGap != 15 {
		t.Fatalf("maxgap = %v", r.Where[0].MaxGap)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		``,                                      // empty
		`RULE x:`,                               // no patterns/production
		"RULE x:\n  a: t\n  => y TRAILING",      // bad production keyword
		"RULE x:\n  a: t\n  a NEXTTO b\n  => y", // unknown relation
		"RULE x:\n  a: t\n  a BEFORE\n  => y",   // short constraint
		"RULE x:\n  a: t\n  a: t\n  => y",       // duplicate var
		"RULE x:\n  a: t WHERE driver\n  => y",  // bad WHERE
		"RULE x:\n  a: t CONF >= abc\n  => y",   // bad CONF
		"RULE x:\n  a: t\n  a BEFORE b\n  => y", // constraint references unknown var
		"RULE :\n  a: t\n  => y",                // empty name
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) should fail", src)
		}
	}
}

func TestParseRules(t *testing.T) {
	src := pitHighlightSrc + `
RULE second:
  a: start
  => race-begin
`
	rs, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Name != "second" {
		t.Fatalf("rules = %v", rs)
	}
	if _, err := ParseRules("   \n  "); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestParseRuleComments(t *testing.T) {
	r, err := ParseRule(`
# a comment
RULE c:
  a: start
  # another comment
  => begin
`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "c" || r.Produces != "begin" {
		t.Fatalf("rule = %+v", r)
	}
}

func TestIndexWord(t *testing.T) {
	if indexWord("type WHERE x", "WHERE") != 5 {
		t.Fatal("indexWord basic")
	}
	if indexWord("typewhere x", "WHERE") != -1 {
		t.Fatal("indexWord should require word boundary")
	}
	if idx := indexWord("a whereabouts WHERE b", "WHERE"); idx != strings.Index("a whereabouts WHERE b", "WHERE") {
		t.Fatalf("indexWord skipping = %d", idx)
	}
}

func TestParseRulesLeadingComments(t *testing.T) {
	rs, err := ParseRules(`
# leading commentary before any rule

RULE only:
  a: start
  => begin
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Name != "only" {
		t.Fatalf("rules = %v", rs)
	}
}
