// Package dsp provides the signal-processing substrate for the
// Formula 1 audio analysis: windows, FFT, band filtering,
// autocorrelation, the mel filterbank and the DCT used by the MFCC
// computation. The paper performs these steps in Matlab; here they are
// implemented from scratch on float64 slices.
package dsp

import (
	"fmt"
	"math"
)

// HammingWindow returns the n-point Hamming window, the STE window the
// paper selects for speech endpoint detection (§5.2).
func HammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// RectangularWindow returns the n-point all-ones window.
func RectangularWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ApplyWindow multiplies x by window w element-wise into a new slice.
// The slices must have equal length.
func ApplyWindow(x, w []float64) []float64 {
	if len(x) != len(w) {
		panic(fmt.Sprintf("dsp: window length %d != frame length %d", len(w), len(x)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * w[i]
	}
	return out
}

// Energy returns the mean squared amplitude of x, the short-time
// energy of one frame.
func Energy(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s / float64(len(x))
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex signal (re, im). len(re) must equal
// len(im) and be a power of two.
func FFT(re, im []float64) {
	n := len(re)
	if n != len(im) {
		panic("dsp: FFT length mismatch")
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			cRe, cIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*cRe - im[i+j+length/2]*cIm
				vIm := re[i+j+length/2]*cIm + im[i+j+length/2]*cRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				cRe, cIm = cRe*wRe-cIm*wIm, cRe*wIm+cIm*wRe
			}
		}
	}
}

// PowerSpectrum returns the one-sided power spectrum of x, zero-padded
// to the next power of two. The result has nfft/2+1 bins.
func PowerSpectrum(x []float64) []float64 {
	n := nextPow2(len(x))
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	FFT(re, im)
	out := make([]float64, n/2+1)
	for i := range out {
		out[i] = (re[i]*re[i] + im[i]*im[i]) / float64(n)
	}
	return out
}

// Autocorrelation returns the biased autocorrelation of x for lags
// 0..maxLag inclusive, the basis of the pitch estimator (§5.2).
func Autocorrelation(x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		s := 0.0
		for i := 0; i+lag < len(x); i++ {
			s += x[i] * x[i+lag]
		}
		out[lag] = s / float64(len(x))
	}
	return out
}

// BandFilter is a windowed-sinc FIR band-pass filter.
type BandFilter struct {
	taps []float64
}

// NewBandFilter designs an order-tap FIR band-pass for [lo, hi] Hz at
// the given sample rate using a Hamming-windowed sinc. Pass lo = 0 for
// a low-pass design. taps must be odd and >= 3.
func NewBandFilter(sampleRate float64, lo, hi float64, taps int) (*BandFilter, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: tap count %d must be odd and >= 3", taps)
	}
	nyq := sampleRate / 2
	if lo < 0 || hi <= lo || hi > nyq {
		return nil, fmt.Errorf("dsp: invalid band [%g, %g] for sample rate %g", lo, hi, sampleRate)
	}
	fl, fh := lo/sampleRate, hi/sampleRate
	h := make([]float64, taps)
	m := taps / 2
	win := HammingWindow(taps)
	for i := range h {
		k := float64(i - m)
		var v float64
		if i == m {
			v = 2 * (fh - fl)
		} else {
			v = (math.Sin(2*math.Pi*fh*k) - math.Sin(2*math.Pi*fl*k)) / (math.Pi * k)
		}
		h[i] = v * win[i]
	}
	return &BandFilter{taps: h}, nil
}

// Apply convolves the filter with x, returning a same-length output
// (zero-padded edges).
func (f *BandFilter) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	m := len(f.taps) / 2
	for i := range x {
		s := 0.0
		for j, t := range f.taps {
			k := i + j - m
			if k >= 0 && k < len(x) {
				s += t * x[k]
			}
		}
		out[i] = s
	}
	return out
}

// HzToMel converts frequency in Hz to the mel scale.
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts mel-scale frequency back to Hz.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank is a bank of triangular filters spaced on the mel
// scale, applied to power spectra.
type MelFilterbank struct {
	filters [][]float64 // per filter, weight per spectrum bin
}

// NewMelFilterbank builds nFilters triangular filters covering
// [loHz, hiHz] for power spectra with nBins bins at the given sample
// rate.
func NewMelFilterbank(nFilters, nBins int, sampleRate, loHz, hiHz float64) (*MelFilterbank, error) {
	if nFilters < 1 || nBins < 2 {
		return nil, fmt.Errorf("dsp: invalid filterbank dims %d x %d", nFilters, nBins)
	}
	if hiHz <= loHz || hiHz > sampleRate/2 {
		return nil, fmt.Errorf("dsp: invalid mel range [%g, %g]", loHz, hiHz)
	}
	loMel, hiMel := HzToMel(loHz), HzToMel(hiHz)
	centers := make([]float64, nFilters+2)
	for i := range centers {
		mel := loMel + (hiMel-loMel)*float64(i)/float64(nFilters+1)
		centers[i] = MelToHz(mel)
	}
	binHz := sampleRate / 2 / float64(nBins-1)
	fb := &MelFilterbank{filters: make([][]float64, nFilters)}
	for f := 0; f < nFilters; f++ {
		w := make([]float64, nBins)
		left, center, right := centers[f], centers[f+1], centers[f+2]
		for b := 0; b < nBins; b++ {
			hz := float64(b) * binHz
			switch {
			case hz >= left && hz <= center && center > left:
				w[b] = (hz - left) / (center - left)
			case hz > center && hz <= right && right > center:
				w[b] = (right - hz) / (right - center)
			}
		}
		fb.filters[f] = w
	}
	return fb, nil
}

// Apply returns the log mel-band energies of the power spectrum.
func (fb *MelFilterbank) Apply(power []float64) []float64 {
	out := make([]float64, len(fb.filters))
	for f, w := range fb.filters {
		s := 0.0
		n := len(power)
		if len(w) < n {
			n = len(w)
		}
		for b := 0; b < n; b++ {
			s += w[b] * power[b]
		}
		out[f] = math.Log(s + 1e-12)
	}
	return out
}

// DCTII computes the type-II discrete cosine transform of x, the final
// MFCC step; returns the first nCoeffs coefficients.
func DCTII(x []float64, nCoeffs int) []float64 {
	n := len(x)
	if nCoeffs > n {
		nCoeffs = n
	}
	out := make([]float64, nCoeffs)
	for k := 0; k < nCoeffs; k++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		out[k] = s
	}
	return out
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Max returns the maximum of x (0 for empty input).
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of x (0 for empty input).
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// DynamicRange returns Max(x) - Min(x), the paper's per-clip dynamic
// range statistic.
func DynamicRange(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Max(x) - Min(x)
}
