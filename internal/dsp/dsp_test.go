package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestHammingWindowShape(t *testing.T) {
	w := HammingWindow(51)
	if len(w) != 51 {
		t.Fatalf("len = %d", len(w))
	}
	if !almostEqual(w[25], 1.0, 1e-9) {
		t.Fatalf("center = %v, want 1", w[25])
	}
	if !almostEqual(w[0], 0.08, 1e-9) || !almostEqual(w[50], 0.08, 1e-9) {
		t.Fatalf("edges = %v, %v, want 0.08", w[0], w[50])
	}
	// Symmetry.
	for i := range w {
		if !almostEqual(w[i], w[len(w)-1-i], 1e-12) {
			t.Fatalf("asymmetric at %d", i)
		}
	}
}

func TestWindowSingleton(t *testing.T) {
	for _, f := range []func(int) []float64{HammingWindow, HannWindow, RectangularWindow} {
		if w := f(1); len(w) != 1 || w[0] != 1 {
			t.Fatalf("singleton window = %v", w)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3}
	w := []float64{0.5, 1, 2}
	got := ApplyWindow(x, w)
	want := []float64{0.5, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestEnergy(t *testing.T) {
	if e := Energy([]float64{3, 4}); !almostEqual(e, 12.5, 1e-12) {
		t.Fatalf("Energy = %v", e)
	}
	if e := Energy(nil); e != 0 {
		t.Fatalf("Energy(nil) = %v", e)
	}
}

func TestFFTImpulse(t *testing.T) {
	// The FFT of an impulse is flat.
	n := 16
	re := make([]float64, n)
	im := make([]float64, n)
	re[0] = 1
	FFT(re, im)
	for i := 0; i < n; i++ {
		if !almostEqual(re[i], 1, 1e-9) || !almostEqual(im[i], 0, 1e-9) {
			t.Fatalf("bin %d = %v + %vi", i, re[i], im[i])
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure sinusoid at bin k concentrates power at bin k.
	n := 64
	k := 5
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	FFT(re, im)
	mag := func(i int) float64 { return math.Hypot(re[i], im[i]) }
	peak := 0
	for i := 1; i < n/2; i++ {
		if mag(i) > mag(peak) {
			peak = i
		}
	}
	if peak != k {
		t.Fatalf("peak bin = %d, want %d", peak, k)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Parseval: sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		re := make([]float64, n)
		im := make([]float64, n)
		tx := 0.0
		for i := range re {
			re[i] = rng.NormFloat64()
			tx += re[i] * re[i]
		}
		FFT(re, im)
		tf := 0.0
		for i := range re {
			tf += re[i]*re[i] + im[i]*im[i]
		}
		return almostEqual(tx, tf/float64(n), 1e-6*tx+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerSpectrumSize(t *testing.T) {
	ps := PowerSpectrum(make([]float64, 100)) // padded to 128
	if len(ps) != 65 {
		t.Fatalf("bins = %d, want 65", len(ps))
	}
}

func TestAutocorrelationPeriodicity(t *testing.T) {
	// A 100 Hz sawtooth-ish signal at 8 kHz has period 80 samples; the
	// autocorrelation must peak (excluding lag 0) near lag 80.
	sr := 8000.0
	f0 := 100.0
	n := 1600
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / sr
		x[i] = math.Sin(2*math.Pi*f0*ti) + 0.5*math.Sin(4*math.Pi*f0*ti)
	}
	ac := Autocorrelation(x, 200)
	best, bestLag := math.Inf(-1), 0
	for lag := 40; lag <= 200; lag++ {
		if ac[lag] > best {
			best, bestLag = ac[lag], lag
		}
	}
	if bestLag < 78 || bestLag > 82 {
		t.Fatalf("autocorrelation peak at lag %d, want ~80", bestLag)
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if ac := Autocorrelation(nil, 5); ac != nil {
		t.Fatalf("nil input gave %v", ac)
	}
	ac := Autocorrelation([]float64{1, 2}, 10)
	if len(ac) != 2 {
		t.Fatalf("clamped lags = %d, want 2", len(ac))
	}
}

func TestBandFilterPassAndStop(t *testing.T) {
	sr := 8000.0
	f, err := NewBandFilter(sr, 500, 1500, 101)
	if err != nil {
		t.Fatal(err)
	}
	gain := func(hz float64) float64 {
		n := 2048
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * hz * float64(i) / sr)
		}
		y := f.Apply(x)
		// Ignore edges where the convolution is truncated.
		return math.Sqrt(Energy(y[200:n-200]) / Energy(x[200:n-200]))
	}
	if g := gain(1000); g < 0.9 {
		t.Fatalf("passband gain at 1 kHz = %v", g)
	}
	if g := gain(3000); g > 0.1 {
		t.Fatalf("stopband gain at 3 kHz = %v", g)
	}
}

func TestBandFilterValidation(t *testing.T) {
	if _, err := NewBandFilter(8000, 500, 1500, 100); err == nil {
		t.Fatal("even tap count should fail")
	}
	if _, err := NewBandFilter(8000, 500, 100, 101); err == nil {
		t.Fatal("inverted band should fail")
	}
	if _, err := NewBandFilter(8000, 0, 5000, 101); err == nil {
		t.Fatal("band above Nyquist should fail")
	}
}

func TestMelRoundTrip(t *testing.T) {
	for _, hz := range []float64{100, 440, 1000, 4000} {
		if got := MelToHz(HzToMel(hz)); !almostEqual(got, hz, 1e-6*hz) {
			t.Fatalf("round trip %v -> %v", hz, got)
		}
	}
}

func TestMelFilterbank(t *testing.T) {
	fb, err := NewMelFilterbank(12, 129, 22050, 0, 11025)
	if err != nil {
		t.Fatal(err)
	}
	// Energy at a low frequency excites low filters more than high ones.
	power := make([]float64, 129)
	power[3] = 100 // low-frequency bin
	e := fb.Apply(power)
	if len(e) != 12 {
		t.Fatalf("coeffs = %d", len(e))
	}
	if e[0] <= e[11] {
		t.Fatalf("low-band energy %v should exceed high-band %v", e[0], e[11])
	}
}

func TestMelFilterbankValidation(t *testing.T) {
	if _, err := NewMelFilterbank(0, 10, 22050, 0, 11025); err == nil {
		t.Fatal("zero filters should fail")
	}
	if _, err := NewMelFilterbank(12, 10, 22050, 5000, 1000); err == nil {
		t.Fatal("inverted range should fail")
	}
}

func TestDCTII(t *testing.T) {
	// DCT of a constant signal has all energy in coefficient 0.
	x := []float64{2, 2, 2, 2}
	c := DCTII(x, 4)
	if !almostEqual(c[0], 8, 1e-9) {
		t.Fatalf("c0 = %v, want 8", c[0])
	}
	for k := 1; k < 4; k++ {
		if !almostEqual(c[k], 0, 1e-9) {
			t.Fatalf("c%d = %v, want 0", k, c[k])
		}
	}
	// Requesting more coefficients than samples clamps.
	if got := DCTII([]float64{1, 2}, 10); len(got) != 2 {
		t.Fatalf("clamped len = %d", len(got))
	}
}

func TestStats(t *testing.T) {
	x := []float64{3, -1, 4, 1, 5}
	if Mean(x) != 2.4 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if Max(x) != 5 || Min(x) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(x), Min(x))
	}
	if DynamicRange(x) != 6 {
		t.Fatalf("DynamicRange = %v", DynamicRange(x))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || DynamicRange(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
}

// Property: dynamic range is non-negative and zero for constants.
func TestDynamicRangeProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		x := make([]float64, int(n)+1)
		for i := range x {
			x[i] = v
		}
		return DynamicRange(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
