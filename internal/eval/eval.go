// Package eval implements the experiment scoring used throughout §5.5:
// converting per-clip probability series into event segments (the
// paper's threshold of 0.5 with a minimum duration of 6 s), matching
// predicted segments against ground truth, and computing precision and
// recall.
package eval

import "sort"

// Segment is a detected or ground-truth interval [Start, End) in
// seconds.
type Segment struct {
	Start, End float64
	// Label optionally carries a sub-event class (start, flyout,
	// passing) or driver attribution.
	Label string
}

// Duration returns End - Start.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Overlap returns the length of the intersection of two segments.
func (s Segment) Overlap(o Segment) float64 {
	lo, hi := s.Start, s.End
	if o.Start > lo {
		lo = o.Start
	}
	if o.End < hi {
		hi = o.End
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// SegmentConfig parameterizes series-to-segment conversion.
type SegmentConfig struct {
	// StepDur is the series sampling period in seconds (0.1 s clips).
	StepDur float64
	// Threshold is the probability above which a step is active
	// (paper: 0.5).
	Threshold float64
	// MinDuration drops segments shorter than this (paper: 6 s).
	MinDuration float64
	// MergeGap joins active runs separated by less than this.
	MergeGap float64
}

// DefaultSegmentConfig returns the paper's parameters.
func DefaultSegmentConfig() SegmentConfig {
	return SegmentConfig{StepDur: 0.1, Threshold: 0.5, MinDuration: 6, MergeGap: 2}
}

// Segments converts a probability series into segments under the
// configuration.
func Segments(series []float64, cfg SegmentConfig) []Segment {
	if cfg.StepDur <= 0 {
		cfg.StepDur = 0.1
	}
	var raw []Segment
	open := false
	start := 0.0
	for i, v := range series {
		t := float64(i) * cfg.StepDur
		if v > cfg.Threshold {
			if !open {
				open = true
				start = t
			}
			continue
		}
		if open {
			raw = append(raw, Segment{Start: start, End: t})
			open = false
		}
	}
	if open {
		raw = append(raw, Segment{Start: start, End: float64(len(series)) * cfg.StepDur})
	}
	// Merge near segments.
	var merged []Segment
	for _, s := range raw {
		if n := len(merged); n > 0 && s.Start-merged[n-1].End < cfg.MergeGap {
			merged[n-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	// Duration filter.
	out := merged[:0]
	for _, s := range merged {
		if s.Duration() >= cfg.MinDuration {
			out = append(out, s)
		}
	}
	return out
}

// PR is a precision/recall result.
type PR struct {
	Precision, Recall float64
	TP, FP, FN        int
}

// F1 returns the harmonic mean of precision and recall.
func (pr PR) F1() float64 {
	if pr.Precision+pr.Recall == 0 {
		return 0
	}
	return 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
}

// Match thresholds: a prediction is correct when truth covers at least
// predCover of it; a truth segment is found when predictions cover at
// least truthCover of it. Grazing overlaps and wildly over-broad
// detections both fail.
const (
	predCover  = 0.4
	truthCover = 0.3
)

// Score matches predicted segments against ground truth using mutual
// coverage: precision asks how much of each prediction lies inside
// ground truth, recall asks how much of each truth segment the
// predictions cover.
func Score(pred, truth []Segment) PR {
	pr := PR{}
	for _, p := range pred {
		if coveredFraction(p, truth) >= predCover {
			pr.TP++
		} else {
			pr.FP++
		}
	}
	covered := 0
	for _, g := range truth {
		if coveredFraction(g, pred) >= truthCover {
			covered++
		}
	}
	pr.FN = len(truth) - covered
	if pr.TP+pr.FP > 0 {
		pr.Precision = float64(pr.TP) / float64(pr.TP+pr.FP)
	}
	if len(truth) > 0 {
		pr.Recall = float64(covered) / float64(len(truth))
	}
	return pr
}

// coveredFraction returns the fraction of s covered by the union of
// others.
func coveredFraction(s Segment, others []Segment) float64 {
	if s.Duration() <= 0 {
		return 0
	}
	// Collect and merge overlapping pieces.
	var pieces []Segment
	for _, o := range others {
		if ov := s.Overlap(o); ov > 0 {
			lo, hi := s.Start, s.End
			if o.Start > lo {
				lo = o.Start
			}
			if o.End < hi {
				hi = o.End
			}
			pieces = append(pieces, Segment{Start: lo, End: hi})
		}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Start < pieces[j].Start })
	total, end := 0.0, s.Start
	for _, p := range pieces {
		if p.End <= end {
			continue
		}
		if p.Start > end {
			end = p.Start
		}
		total += p.End - end
		end = p.End
	}
	return total / s.Duration()
}

// ScoreLabeled scores only segments carrying the given label on both
// sides.
func ScoreLabeled(pred, truth []Segment, label string) PR {
	return Score(filterLabel(pred, label), filterLabel(truth, label))
}

func filterLabel(ss []Segment, label string) []Segment {
	var out []Segment
	for _, s := range ss {
		if s.Label == label {
			out = append(out, s)
		}
	}
	return out
}

// Attribution assigns sub-event labels to highlight segments following
// the paper's procedure: within each segment the most probable
// candidate series wins; segments longer than 15 s re-decide every 5 s
// to allow multiple selections.
type Attribution struct {
	// Series maps candidate label -> per-step probability series.
	Series map[string][]float64
	// StepDur is the sampling period in seconds.
	StepDur float64
	// MinProb is the minimum winning mean probability to assign a label
	// at all.
	MinProb float64
}

// Attribute labels each highlight segment (possibly splitting long
// segments) and returns labeled segments.
func (a Attribution) Attribute(highlights []Segment) []Segment {
	var out []Segment
	step := a.StepDur
	if step <= 0 {
		step = 0.1
	}
	for _, h := range highlights {
		windows := []Segment{h}
		if h.Duration() > 15 {
			windows = nil
			for t := h.Start; t < h.End; t += 5 {
				end := t + 5
				if end > h.End {
					end = h.End
				}
				windows = append(windows, Segment{Start: t, End: end})
			}
		}
		for _, w := range windows {
			label, prob := a.winner(w, step)
			if prob >= a.MinProb && label != "" {
				out = append(out, Segment{Start: w.Start, End: w.End, Label: label})
			}
		}
	}
	// Merge adjacent same-label windows.
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	var merged []Segment
	for _, s := range out {
		if n := len(merged); n > 0 && merged[n-1].Label == s.Label && s.Start <= merged[n-1].End+1e-9 {
			merged[n-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// winner returns the label with the highest mean probability in the
// window.
func (a Attribution) winner(w Segment, step float64) (string, float64) {
	bestLabel, bestProb := "", -1.0
	labels := make([]string, 0, len(a.Series))
	for l := range a.Series {
		labels = append(labels, l)
	}
	sort.Strings(labels) // deterministic tie-break
	for _, l := range labels {
		series := a.Series[l]
		lo := int(w.Start / step)
		hi := int(w.End / step)
		if hi > len(series) {
			hi = len(series)
		}
		if lo >= hi {
			continue
		}
		s := 0.0
		for i := lo; i < hi; i++ {
			s += series[i]
		}
		mean := s / float64(hi-lo)
		if mean > bestProb {
			bestProb, bestLabel = mean, l
		}
	}
	return bestLabel, bestProb
}

// Roughness returns the mean absolute first difference of a series,
// the smoothness statistic used to quantify Fig. 9.
func Roughness(series []float64) float64 {
	if len(series) < 2 {
		return 0
	}
	s := 0.0
	for i := 1; i < len(series); i++ {
		d := series[i] - series[i-1]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(series)-1)
}
