package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentsBasic(t *testing.T) {
	cfg := SegmentConfig{StepDur: 1, Threshold: 0.5, MinDuration: 3, MergeGap: 2}
	series := []float64{0, 0, 0.9, 0.9, 0.9, 0.9, 0, 0, 0.9, 0.9, 0}
	segs := Segments(series, cfg)
	// First run 2..6 (4 s >= 3), second run 8..10 (2 s < 3) dropped —
	// but the gap 6..8 is < MergeGap 2? gap = 2, not < 2, so no merge.
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	if segs[0].Start != 2 || segs[0].End != 6 {
		t.Fatalf("segment = %v", segs[0])
	}
}

func TestSegmentsMerge(t *testing.T) {
	cfg := SegmentConfig{StepDur: 1, Threshold: 0.5, MinDuration: 5, MergeGap: 3}
	series := []float64{0.9, 0.9, 0.9, 0, 0, 0.9, 0.9, 0.9}
	segs := Segments(series, cfg)
	if len(segs) != 1 || segs[0].Start != 0 || segs[0].End != 8 {
		t.Fatalf("merged = %v", segs)
	}
}

func TestSegmentsOpenTail(t *testing.T) {
	cfg := SegmentConfig{StepDur: 1, Threshold: 0.5, MinDuration: 2, MergeGap: 0.5}
	series := []float64{0, 0.9, 0.9, 0.9}
	segs := Segments(series, cfg)
	if len(segs) != 1 || segs[0].End != 4 {
		t.Fatalf("open tail = %v", segs)
	}
}

func TestSegmentsEmpty(t *testing.T) {
	if segs := Segments(nil, DefaultSegmentConfig()); len(segs) != 0 {
		t.Fatalf("segments of nil = %v", segs)
	}
	if segs := Segments([]float64{0.1, 0.2}, DefaultSegmentConfig()); len(segs) != 0 {
		t.Fatalf("segments below threshold = %v", segs)
	}
}

func TestOverlap(t *testing.T) {
	a := Segment{Start: 0, End: 10}
	b := Segment{Start: 5, End: 15}
	if a.Overlap(b) != 5 {
		t.Fatalf("overlap = %v", a.Overlap(b))
	}
	c := Segment{Start: 10, End: 12}
	if a.Overlap(c) != 0 {
		t.Fatal("touching segments should not overlap")
	}
}

func TestScore(t *testing.T) {
	truth := []Segment{{Start: 0, End: 10}, {Start: 50, End: 60}, {Start: 100, End: 110}}
	pred := []Segment{
		{Start: 2, End: 8},     // TP (covers truth 0)
		{Start: 55, End: 65},   // TP (covers truth 1)
		{Start: 200, End: 210}, // FP
	}
	pr := Score(pred, truth)
	if pr.TP != 2 || pr.FP != 1 || pr.FN != 1 {
		t.Fatalf("counts = %+v", pr)
	}
	if math.Abs(pr.Precision-2.0/3) > 1e-9 {
		t.Fatalf("precision = %v", pr.Precision)
	}
	if math.Abs(pr.Recall-2.0/3) > 1e-9 {
		t.Fatalf("recall = %v", pr.Recall)
	}
	if pr.F1() <= 0 {
		t.Fatal("F1 should be positive")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	pr := Score(nil, nil)
	if pr.Precision != 0 || pr.Recall != 0 || pr.F1() != 0 {
		t.Fatalf("empty score = %+v", pr)
	}
	// Perfect detection.
	truth := []Segment{{Start: 0, End: 5}}
	pr = Score(truth, truth)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("perfect = %+v", pr)
	}
	// Two predictions covering one truth: both TPs, recall 1.
	pr = Score([]Segment{{Start: 0, End: 2}, {Start: 3, End: 5}}, truth)
	if pr.TP != 2 || pr.Recall != 1 {
		t.Fatalf("double cover = %+v", pr)
	}
}

func TestScoreLabeled(t *testing.T) {
	truth := []Segment{
		{Start: 0, End: 10, Label: "start"},
		{Start: 50, End: 60, Label: "flyout"},
	}
	pred := []Segment{
		{Start: 1, End: 9, Label: "start"},
		{Start: 51, End: 59, Label: "passing"},
	}
	pr := ScoreLabeled(pred, truth, "start")
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("start = %+v", pr)
	}
	pr = ScoreLabeled(pred, truth, "flyout")
	if pr.Recall != 0 {
		t.Fatalf("flyout = %+v", pr)
	}
}

func TestAttribution(t *testing.T) {
	// 30 s at 1 s steps; "start" strong 0..10, "flyout" strong 20..30.
	mk := func(lo, hi int) []float64 {
		s := make([]float64, 30)
		for i := lo; i < hi; i++ {
			s[i] = 0.9
		}
		return s
	}
	a := Attribution{
		Series:  map[string][]float64{"start": mk(0, 10), "flyout": mk(20, 30)},
		StepDur: 1,
		MinProb: 0.3,
	}
	got := a.Attribute([]Segment{{Start: 0, End: 8}, {Start: 21, End: 29}})
	if len(got) != 2 {
		t.Fatalf("attributed = %v", got)
	}
	if got[0].Label != "start" || got[1].Label != "flyout" {
		t.Fatalf("labels = %v", got)
	}
}

func TestAttributionLongSegmentSplits(t *testing.T) {
	// A 20 s segment re-decides every 5 s: first half "start", second
	// half "passing" — expect both labels.
	n := 40
	start := make([]float64, n)
	passing := make([]float64, n)
	for i := 0; i < 10; i++ {
		start[i] = 0.9
	}
	for i := 10; i < 20; i++ {
		passing[i] = 0.9
	}
	a := Attribution{
		Series:  map[string][]float64{"start": start, "passing": passing},
		StepDur: 1,
		MinProb: 0.3,
	}
	got := a.Attribute([]Segment{{Start: 0, End: 20}})
	labels := map[string]bool{}
	for _, s := range got {
		labels[s.Label] = true
	}
	if !labels["start"] || !labels["passing"] {
		t.Fatalf("split attribution = %v", got)
	}
}

func TestAttributionMinProb(t *testing.T) {
	a := Attribution{
		Series:  map[string][]float64{"start": make([]float64, 10)},
		StepDur: 1,
		MinProb: 0.3,
	}
	if got := a.Attribute([]Segment{{Start: 0, End: 10}}); len(got) != 0 {
		t.Fatalf("weak attribution accepted: %v", got)
	}
}

func TestRoughness(t *testing.T) {
	if Roughness([]float64{1}) != 0 {
		t.Fatal("singleton roughness")
	}
	flat := Roughness([]float64{0.5, 0.5, 0.5})
	if flat != 0 {
		t.Fatalf("flat roughness = %v", flat)
	}
	jag := Roughness([]float64{0, 1, 0, 1})
	if jag != 1 {
		t.Fatalf("jagged roughness = %v", jag)
	}
}

// Property: coverage fractions stay in [0, 1] and a segment covered by
// itself scores exactly 1.
func TestCoveredFractionProperty(t *testing.T) {
	f := func(a0, d0, b0, d1 uint8) bool {
		s := Segment{Start: float64(a0), End: float64(a0) + float64(d0%40) + 1}
		o := Segment{Start: float64(b0), End: float64(b0) + float64(d1%40) + 1}
		v := coveredFraction(s, []Segment{o})
		if v < 0 || v > 1+1e-12 {
			return false
		}
		return coveredFraction(s, []Segment{s}) > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoveredFractionUnion(t *testing.T) {
	s := Segment{Start: 0, End: 10}
	// Two overlapping pieces must not double count.
	got := coveredFraction(s, []Segment{{Start: 0, End: 6}, {Start: 4, End: 10}})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("union coverage = %v", got)
	}
	got = coveredFraction(s, []Segment{{Start: 2, End: 4}, {Start: 2, End: 4}})
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("duplicate coverage = %v", got)
	}
}
