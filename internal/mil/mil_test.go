package mil

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"cobra/internal/monet"
)

func run(t *testing.T, src string) Value {
	t.Helper()
	in := NewInterp(monet.NewStore())
	v, err := in.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3;", 7},
		{"(1 + 2) * 3;", 9},
		{"10 / 3;", 3},
		{"10 % 3;", 1},
		{"-4 + 1;", -3},
	}
	for _, c := range cases {
		if got := run(t, c.src); got.Atom.Int() != c.want {
			t.Errorf("%q = %v, want %d", c.src, got, c.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	v := run(t, "1.5 * 4;")
	if v.Atom.Float() != 6.0 {
		t.Fatalf("got %v", v)
	}
	v = run(t, "1e3 + 2.2e-1;")
	if v.Atom.Float() != 1000.22 {
		t.Fatalf("got %v", v)
	}
}

func TestComparisonAndString(t *testing.T) {
	if v := run(t, `"abc" = "abc";`); !v.Atom.Bool() {
		t.Fatal("string equality failed")
	}
	if v := run(t, `"a" + "b";`); v.Atom.Str() != "ab" {
		t.Fatalf("concat = %v", v)
	}
	if v := run(t, "3 < 2;"); v.Atom.Bool() {
		t.Fatal("3 < 2 should be false")
	}
	if v := run(t, "2.5 >= 2;"); !v.Atom.Bool() {
		t.Fatal("mixed numeric compare failed")
	}
}

func TestVarAndAssign(t *testing.T) {
	v := run(t, `
		VAR x := 10;
		x := x + 5;
		x;
	`)
	if v.Atom.Int() != 15 {
		t.Fatalf("x = %v, want 15", v)
	}
}

func TestIfElseWhile(t *testing.T) {
	v := run(t, `
		VAR n := 0;
		VAR i := 0;
		WHILE (i < 10) {
			IF (i % 2 = 0) { n := n + 1; } ELSE { n := n + 100; }
			i := i + 1;
		}
		n;
	`)
	if v.Atom.Int() != 505 {
		t.Fatalf("n = %v, want 505", v)
	}
}

func TestElseIfChain(t *testing.T) {
	v := run(t, `
		VAR x := 7;
		VAR label := "";
		IF (x < 5) { label := "small"; }
		ELSE IF (x < 10) { label := "medium"; }
		ELSE { label := "large"; }
		label;
	`)
	if v.Atom.Str() != "medium" {
		t.Fatalf("label = %v", v)
	}
}

func TestBATConstructionAndOps(t *testing.T) {
	v := run(t, `
		VAR b := new(void, dbl);
		b.insert(nil, 1.0);
		b.insert(nil, 3.5);
		b.insert(nil, 2.0);
		b.max;
	`)
	if v.Atom.Float() != 3.5 {
		t.Fatalf("max = %v", v)
	}
}

func TestBATInsertFindCount(t *testing.T) {
	v := run(t, `
		VAR m := new(str, dbl);
		m.insert("Service", 0.4);
		m.insert("Smash", 0.9);
		m.insert("Backhand", 0.2);
		m.count;
	`)
	if v.Atom.Int() != 3 {
		t.Fatalf("count = %v", v)
	}
	v = run(t, `
		VAR m := new(str, dbl);
		m.insert("Smash", 0.9);
		m.find("Smash");
	`)
	if v.Atom.Float() != 0.9 {
		t.Fatalf("find = %v", v)
	}
}

// TestFig4Pattern exercises the paper's Fig. 4 idiom: evaluate several
// models, insert scores into parEval, then reverse().find(max) to get
// the best label (here via argmax).
func TestFig4Pattern(t *testing.T) {
	v := run(t, `
		VAR parEval := new(str, dbl);
		parEval.insert("Service", 0.12);
		parEval.insert("Forehand", 0.55);
		parEval.insert("Smash", 0.31);
		VAR najmanji := parEval.max;
		VAR ret := (parEval.reverse).find(najmanji);
		RETURN ret;
	`)
	if v.Atom.Str() != "Forehand" {
		t.Fatalf("winner = %v, want Forehand", v)
	}
}

func TestProcDeclarationAndCall(t *testing.T) {
	v := run(t, `
		PROC addAll(BAT[void,dbl] xs, dbl bonus) : dbl := {
			RETURN xs.sum + bonus;
		}
		VAR b := new(void, dbl);
		b.insert(nil, 1.0);
		b.insert(nil, 2.0);
		addAll(b, 10.0);
	`)
	if v.Atom.Float() != 13.0 {
		t.Fatalf("proc result = %v", v)
	}
}

func TestProcArgCountMismatch(t *testing.T) {
	in := NewInterp(nil)
	_, err := in.Exec(`
		PROC f(int x) := { RETURN x; }
		f(1, 2);
	`)
	if err == nil || !strings.Contains(err.Error(), "expects 1 args") {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelBlock(t *testing.T) {
	v := run(t, `
		VAR results := new(str, int);
		VAR c := threadcnt(4);
		PARALLEL {
			results.insert("a", 1);
			results.insert("b", 2);
			results.insert("c", 3);
			results.insert("d", 4);
		}
		results.sum;
	`)
	if v.Atom.Float() != 10 {
		t.Fatalf("parallel sum = %v", v)
	}
}

func TestThreadcntResizesPool(t *testing.T) {
	prev := monet.SetDefaultPoolWorkers(2)
	defer monet.SetDefaultPoolWorkers(prev)
	v := run(t, `
		VAR old := threadcnt(6);
		RETURN poolsize();
	`)
	if v.Atom.Int() != 6 {
		t.Fatalf("poolsize after threadcnt(6) = %v, want 6", v)
	}
	if monet.DefaultPool().Workers() != 6 {
		t.Fatalf("kernel pool width = %d, want 6", monet.DefaultPool().Workers())
	}
}

func TestParallelRunsConcurrently(t *testing.T) {
	var calls int64
	in := NewInterp(nil)
	in.Register("bump", func(_ *Interp, _ []Value) (Value, error) {
		atomic.AddInt64(&calls, 1)
		return AtomValue(monet.NewInt(1)), nil
	})
	if _, err := in.Exec(`
		VAR c := threadcnt(3);
		PARALLEL { bump(); bump(); bump(); bump(); bump(); }
	`); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestStoreIntegration(t *testing.T) {
	store := monet.NewStore()
	in := NewInterp(store)
	if _, err := in.Exec(`
		VAR b := new(void, int);
		b.insert(nil, 42);
		register("answers", b);
	`); err != nil {
		t.Fatal(err)
	}
	b, err := store.Get("answers")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || b.Tail(0).Int() != 42 {
		t.Fatalf("stored BAT = %s", b.Dump(5))
	}
	v, err := in.Exec(`bat("answers").count;`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Int() != 1 {
		t.Fatalf("count = %v", v)
	}
}

func TestIndexBuiltins(t *testing.T) {
	store := monet.NewStore()
	b := monet.NewBATCap(monet.Void, monet.IntT, 1000)
	for i := 0; i < 1000; i++ {
		b.MustInsert(monet.VoidValue(), monet.NewInt(int64(i%100)))
	}
	store.Put("laps", b)
	in := NewInterp(store)

	v, err := in.Exec(`crack("laps");`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Int() < 1 {
		t.Fatalf("crack pieces = %v", v)
	}
	v, err = in.Exec(`zonemap("laps");`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Int() != 1 { // 1000 rows fit one morsel
		t.Fatalf("zonemap morsels = %v", v)
	}
	v, err = in.Exec(`indexinfo("laps").find("crack");`)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Atom.Str(); got == "none" || got == "" {
		t.Fatalf("indexinfo crack = %q", got)
	}
	// Selects keep working against the cracked column.
	v, err = in.Exec(`bat("laps").uselect(10, 19).count;`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Int() != 100 {
		t.Fatalf("post-crack uselect count = %v", v)
	}
	// Errors: missing BAT, no store, uncrackable type.
	if _, err := in.Exec(`crack("no/such");`); err == nil {
		t.Fatal("crack on missing BAT accepted")
	}
	if _, err := in.Exec(`indexinfo("no/such");`); err == nil {
		t.Fatal("indexinfo on missing BAT accepted")
	}
	nostore := NewInterp(nil)
	for _, src := range []string{`crack("x");`, `zonemap("x");`, `indexinfo("x");`} {
		if _, err := nostore.Exec(src); err == nil {
			t.Fatalf("%q without a store accepted", src)
		}
	}
}

func TestUndefinedVariable(t *testing.T) {
	in := NewInterp(nil)
	_, err := in.Exec("nosuch;")
	if !errors.Is(err, ErrUndefined) {
		t.Fatalf("err = %v, want ErrUndefined", err)
	}
}

func TestUndefinedFunction(t *testing.T) {
	in := NewInterp(nil)
	_, err := in.Exec("nosuch(1);")
	if !errors.Is(err, ErrUndefined) {
		t.Fatalf("err = %v, want ErrUndefined", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	in := NewInterp(nil)
	if _, err := in.Exec("1 / 0;"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestRegisteredBuiltin(t *testing.T) {
	in := NewInterp(nil)
	in.Register("quant1", func(_ *Interp, args []Value) (Value, error) {
		out := monet.NewBAT(monet.Void, monet.IntT)
		for range args {
			out.MustInsert(monet.VoidValue(), monet.NewInt(int64(out.Len())))
		}
		return BATValue(out), nil
	})
	v, err := in.Exec(`
		VAR Obs := new(void, int);
		Obs := quant1(1.0, 2.0, 3.0);
		Obs.count;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Atom.Int() != 3 {
		t.Fatalf("count = %v", v)
	}
}

func TestCommentsAndCaseInsensitiveKeywords(t *testing.T) {
	v := run(t, `
		# a comment line
		var X := 1; # trailing comment
		RETURN X + 1;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("got %v", v)
	}
}

func TestMathBuiltins(t *testing.T) {
	if v := run(t, "abs(-3);"); v.Atom.Int() != 3 {
		t.Fatalf("abs = %v", v)
	}
	if v := run(t, "sqrt(16.0);"); v.Atom.Float() != 4 {
		t.Fatalf("sqrt = %v", v)
	}
	if v := run(t, "int(3.9);"); v.Atom.Int() != 3 {
		t.Fatalf("int = %v", v)
	}
}

func TestPrintOutput(t *testing.T) {
	in := NewInterp(nil)
	if _, err := in.Exec(`print("hello", 42);`); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if len(out) != 1 || out[0] != `"hello" 42` {
		t.Fatalf("output = %q", out)
	}
}

func TestSelectAndSlice(t *testing.T) {
	v := run(t, `
		VAR b := new(void, int);
		VAR i := 0;
		WHILE (i < 10) { b.insert(nil, i); i := i + 1; }
		b.select(3, 6).count;
	`)
	if v.Atom.Int() != 4 {
		t.Fatalf("select count = %v", v)
	}
	v = run(t, `
		VAR b := new(void, int);
		b.insert(nil, 1); b.insert(nil, 2); b.insert(nil, 3);
		b.slice(1, 3).count;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("slice count = %v", v)
	}
}

func TestJoinThroughMIL(t *testing.T) {
	v := run(t, `
		VAR names := new(oid, str);
		names.insert(oid(1), "ms");
		names.insert(oid(2), "rb");
		VAR scores := new(oid, dbl);
		scores.insert(oid(1), 9.5);
		scores.insert(oid(2), 8.0);
		VAR joined := (names.reverse).join(scores);
		joined.find("ms");
	`)
	if v.Atom.Float() != 9.5 {
		t.Fatalf("join find = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"VAR := 1;",
		"1 +;",
		"IF (1) { ",
		`"unterminated`,
		"PROC f( := {};",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMethodOnAtomFails(t *testing.T) {
	in := NewInterp(nil)
	if _, err := in.Exec("VAR x := 1; x.count;"); err == nil {
		t.Fatal("method on atom should fail")
	}
}

func TestNestedProcs(t *testing.T) {
	v := run(t, `
		PROC double(int x) : int := { RETURN x * 2; }
		PROC quad(int x) : int := { RETURN double(double(x)); }
		quad(3);
	`)
	if v.Atom.Int() != 12 {
		t.Fatalf("quad(3) = %v", v)
	}
}

func TestProcBATTypeCheck(t *testing.T) {
	in := NewInterp(nil)
	_, err := in.Exec(`
		PROC f(BAT[void,dbl] b) := { RETURN b.count; }
		f(3);
	`)
	if err == nil || !strings.Contains(err.Error(), "expects a BAT") {
		t.Fatalf("err = %v", err)
	}
}

func TestCalcBuiltins(t *testing.T) {
	v := run(t, `
		VAR a := new(void, dbl);
		a.insert(nil, 0.2); a.insert(nil, 0.8);
		VAR b := new(void, dbl);
		b.insert(nil, 0.3); b.insert(nil, 0.1);
		VAR s := calcadd(a, b);
		s.sum;
	`)
	if v.Atom.Float() != 1.4 {
		t.Fatalf("calcadd sum = %v", v)
	}
	v = run(t, `
		VAR a := new(void, dbl);
		a.insert(nil, 0.2); a.insert(nil, 0.8);
		threshold(a, 0.5).sum;
	`)
	if v.Atom.Float() != 1 {
		t.Fatalf("threshold sum = %v", v)
	}
	v = run(t, `
		VAR a := new(void, dbl);
		a.insert(nil, 1.0); a.insert(nil, 3.0);
		mavg(a, 2).max;
	`)
	if v.Atom.Float() != 2 {
		t.Fatalf("mavg max = %v", v)
	}
	v = run(t, `
		VAR a := new(void, dbl);
		a.insert(nil, 2.0);
		clamp(scale(a, 3.0, 0.0), 0.0, 5.0).max;
	`)
	if v.Atom.Float() != 5 {
		t.Fatalf("scale/clamp = %v", v)
	}
}

func TestCalcBuiltinErrors(t *testing.T) {
	in := NewInterp(nil)
	if _, err := in.Exec(`calcadd(1, 2);`); err == nil {
		t.Fatal("calcadd over atoms accepted")
	}
	if _, err := in.Exec(`
		VAR a := new(void, dbl); a.insert(nil, 1.0);
		mavg(a, 0);
	`); err == nil {
		t.Fatal("mavg window 0 accepted")
	}
}

func TestMapMethod(t *testing.T) {
	v := run(t, `
		PROC double(void h, int x) : int := { RETURN x * 2; }
		VAR b := new(void, int);
		b.insert(nil, 1); b.insert(nil, 2); b.insert(nil, 3);
		b.map("double").sum;
	`)
	if v.Atom.Float() != 12 {
		t.Fatalf("map sum = %v", v)
	}
}

func TestFilterProcMethod(t *testing.T) {
	v := run(t, `
		PROC big(void h, int x) : bit := { RETURN x > 1; }
		VAR b := new(void, int);
		b.insert(nil, 1); b.insert(nil, 2); b.insert(nil, 3);
		b.filterproc("big").count;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("filterproc count = %v", v)
	}
}

func TestMapErrors(t *testing.T) {
	in := NewInterp(nil)
	if _, err := in.Exec(`
		VAR b := new(void, int); b.insert(nil, 1);
		b.map("nosuch");
	`); err == nil {
		t.Fatal("map with unknown PROC accepted")
	}
	if _, err := in.Exec(`
		PROC bad(void h, int x) : int := { RETURN x; }
		VAR b := new(void, int); b.insert(nil, 1);
		b.map(42);
	`); err == nil {
		t.Fatal("map with non-string accepted")
	}
}

func TestMoreBATMethods(t *testing.T) {
	v := run(t, `
		VAR a := new(oid, int);
		a.insert(oid(1), 10); a.insert(oid(2), 20); a.insert(oid(3), 30);
		VAR keys := new(oid, int);
		keys.insert(oid(2), 0);
		a.semijoin(keys).count;
	`)
	if v.Atom.Int() != 1 {
		t.Fatalf("semijoin = %v", v)
	}
	v = run(t, `
		VAR a := new(oid, int); a.insert(oid(1), 10); a.insert(oid(2), 20);
		VAR k := new(oid, int); k.insert(oid(1), 0);
		a.kdiff(k).count;
	`)
	if v.Atom.Int() != 1 {
		t.Fatalf("kdiff = %v", v)
	}
	v = run(t, `
		VAR a := new(oid, int); a.insert(oid(1), 10);
		VAR b := new(oid, int); b.insert(oid(2), 20);
		a.kunion(b).count;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("kunion = %v", v)
	}
	v = run(t, `
		VAR a := new(oid, int); a.insert(oid(3), 5); a.insert(oid(1), 9);
		a.sorthead.count;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("sorthead = %v", v)
	}
	v = run(t, `
		VAR a := new(str, dbl); a.insert("x", 2.0); a.insert("y", 1.0);
		a.argmin;
	`)
	if v.Atom.Str() != "y" {
		t.Fatalf("argmin = %v", v)
	}
	v = run(t, `
		VAR a := new(oid, int); a.insert(oid(1), 7);
		a.exists(oid(1));
	`)
	if !v.Atom.Bool() {
		t.Fatalf("exists = %v", v)
	}
	v = run(t, `
		VAR a := new(oid, int); a.insert(oid(5), 7);
		a.mirror.find(oid(5));
	`)
	if v.Atom.OID() != 5 {
		t.Fatalf("mirror = %v", v)
	}
	v = run(t, `
		VAR a := new(void, int); a.insert(nil, 1); a.insert(nil, 5);
		a.uselect(5).count;
	`)
	if v.Atom.Int() != 1 {
		t.Fatalf("uselect = %v", v)
	}
	v = run(t, `
		VAR a := new(void, dbl); a.insert(nil, 1.0); a.insert(nil, 3.0);
		a.avg;
	`)
	if v.Atom.Float() != 2 {
		t.Fatalf("avg = %v", v)
	}
	v = run(t, `
		VAR a := new(void, dbl); a.insert(nil, 1.0); a.insert(nil, 3.0);
		a.min;
	`)
	if v.Atom.Float() != 1 {
		t.Fatalf("min = %v", v)
	}
	v = run(t, `
		VAR a := new(void, int); a.insert(nil, 2);
		VAR b := new(void, int); b.insert(nil, 3);
		a.append(b).sum;
	`)
	if v.Atom.Float() != 5 {
		t.Fatalf("append = %v", v)
	}
	v = run(t, `
		VAR a := new(void, int); a.insert(nil, 2);
		a.histogram.count;
	`)
	if v.Atom.Int() != 1 {
		t.Fatalf("histogram = %v", v)
	}
	v = run(t, `
		VAR a := new(void, int); a.insert(nil, 2); a.insert(nil, 9);
		a.mark(100).reverse.find(oid(101));
	`)
	if v.Atom.OID() != 1 {
		t.Fatalf("mark = %v", v)
	}
}

func TestTruthyBranches(t *testing.T) {
	// BAT truthiness: non-empty BAT is true.
	v := run(t, `
		VAR a := new(void, int);
		VAR label := "empty";
		IF (a) { label := "full"; }
		a.insert(nil, 1);
		IF (a) { label := "full"; }
		label;
	`)
	if v.Atom.Str() != "full" {
		t.Fatalf("BAT truthiness = %v", v)
	}
	// String truthiness.
	v = run(t, `
		VAR s := "";
		VAR out := 0;
		IF (s) { out := 1; }
		IF ("x") { out := out + 2; }
		out;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("string truthiness = %v", v)
	}
	// Float truthiness.
	v = run(t, `
		VAR out := 0;
		IF (0.0) { out := 1; }
		IF (0.5) { out := out + 2; }
		out;
	`)
	if v.Atom.Int() != 2 {
		t.Fatalf("float truthiness = %v", v)
	}
}

func TestProcReturnTypeAnnotations(t *testing.T) {
	v := run(t, `
		PROC mk() : BAT[void,int] := {
			VAR b := new(void, int);
			b.insert(nil, 7);
			RETURN b;
		}
		VAR x : int := mk().sum;
		x;
	`)
	if v.Atom.Float() != 7 {
		t.Fatalf("annotated proc = %v", v)
	}
}

func TestInterpAccessors(t *testing.T) {
	store := monet.NewStore()
	in := NewInterp(store)
	if in.Store() != store {
		t.Fatal("Store accessor wrong")
	}
	in.SetGlobal("x", AtomValue(monet.NewInt(9)))
	v, ok := in.Global("x")
	if !ok || v.Atom.Int() != 9 {
		t.Fatalf("Global = %v, %v", v, ok)
	}
	if _, err := in.Exec(`PROC f() := { RETURN 1; }`); err != nil {
		t.Fatal(err)
	}
	if ps := in.Procs(); len(ps) != 1 || ps[0] != "f" {
		t.Fatalf("Procs = %v", ps)
	}
}

func TestValueString(t *testing.T) {
	b := monet.NewBAT(monet.Void, monet.IntT)
	b.MustInsert(monet.VoidValue(), monet.NewInt(1))
	if s := BATValue(b).String(); !strings.Contains(s, "bat[void,int]") {
		t.Fatalf("BAT string = %q", s)
	}
	in := NewInterp(nil)
	if _, err := in.Exec(`PROC g() := { RETURN 1; }`); err != nil {
		t.Fatal(err)
	}
	pv := Value{Proc: in.procs["g"]}
	if pv.String() != "proc g" {
		t.Fatalf("proc string = %q", pv.String())
	}
}
