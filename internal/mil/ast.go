package mil

import "cobra/internal/monet"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Program is a sequence of top-level statements.
type Program struct {
	Stmts []Stmt
}

// TypeSpec is a parsed type annotation: either an atomic type or a
// BAT[head,tail] column pair.
type TypeSpec struct {
	IsBAT bool
	Head  monet.Type
	Tail  monet.Type
	Atom  monet.Type
}

// VarDecl is `VAR name := expr;`. Type, when non-nil, is the optional
// `VAR name : type := expr;` annotation (the interpreter ignores it;
// milcheck verifies it).
type VarDecl struct {
	pos
	Name string
	Type *TypeSpec
	Init Expr
}

// Assign is `name := expr;` on an existing variable.
type Assign struct {
	pos
	Name string
	Expr Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	pos
	Expr Expr
}

// Return is `RETURN expr;`.
type Return struct {
	pos
	Expr Expr
}

// If is `IF (cond) block [ELSE block]`.
type If struct {
	pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// While is `WHILE (cond) block`.
type While struct {
	pos
	Cond Expr
	Body *Block
}

// Block is `{ stmts }` with its own scope.
type Block struct {
	pos
	Stmts []Stmt
}

func (*Block) stmtNode() {}

// ParallelBlock runs its statements concurrently, the interpreter's
// rendering of Monet's parallel execution operator.
type ParallelBlock struct {
	pos
	Stmts []Stmt
}

// ProcDecl is `PROC name(params) [: type] := { body }`. Ret, when
// non-nil, is the declared return type annotation.
type ProcDecl struct {
	pos
	Name   string
	Params []Param
	Ret    *TypeSpec
	Body   *Block
}

// Param is a typed procedure parameter. For BAT parameters Head/Tail
// carry the declared column types; for atomic parameters Atom does.
// Line and Col locate the parameter name for diagnostics.
type Param struct {
	Name  string
	IsBAT bool
	Head  monet.Type
	Tail  monet.Type
	Atom  monet.Type
	Line  int
	Col   int
}

func (*VarDecl) stmtNode()       {}
func (*Assign) stmtNode()        {}
func (*ExprStmt) stmtNode()      {}
func (*Return) stmtNode()        {}
func (*If) stmtNode()            {}
func (*While) stmtNode()         {}
func (*ParallelBlock) stmtNode() {}
func (*ProcDecl) stmtNode()      {}

// Lit is a literal value.
type Lit struct {
	pos
	Val monet.Value
}

// Ident references a variable.
type Ident struct {
	pos
	Name string
}

// Call is `fn(args)` for a builtin or user PROC.
type Call struct {
	pos
	Name string
	Args []Expr
}

// MethodCall is `recv.name(args)`; `recv.name` without parentheses
// parses as a zero-argument method call (the paper writes parEval.max).
type MethodCall struct {
	pos
	Recv Expr
	Name string
	Args []Expr
}

// Binary is a binary operation.
type Binary struct {
	pos
	Op   string
	L, R Expr
}

// Unary is unary minus.
type Unary struct {
	pos
	Op string
	X  Expr
}

func (*Lit) exprNode()        {}
func (*Ident) exprNode()      {}
func (*Call) exprNode()       {}
func (*MethodCall) exprNode() {}
func (*Binary) exprNode()     {}
func (*Unary) exprNode()      {}
