package mil

import (
	"strings"
	"testing"
)

// FuzzParse exercises the lexer and parser: any input must either
// parse or fail with an error — never panic, and errors must carry a
// position.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"VAR a := 1;",
		"VAR b := new(void, dbl);\nb.insert(nil, 0.5);\nprint(b.sum);",
		"PROC f(int x) : int := { RETURN x * 2; }\nprint(f(21));",
		"PARALLEL {\n  parEval.insert(\"a\", 0.9);\n  parEval.insert(\"b\", 0.7);\n}",
		"IF (a < 1) { print(a); } ELSE IF (a < 2) { print(-a); }",
		"WHILE (i < 10) { i := i + 1; }",
		"VAR s := bat(\"cobra/videos\").uselect(\"gp\").mirror.join(bat(\"x\"));",
		"# comment\nRETURN 1 + 2 * 3 / 4 % 5;",
		"VAR t : BAT[oid,dbl] := new(oid, dbl);",
		"((((((((1))))))))",
		"\"unterminated",
		"1.e-; VAR",
		"PROC p() := { PARALLEL { RETURN 1; } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			if prog != nil {
				t.Fatalf("non-nil program alongside error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "mil: ") {
				t.Fatalf("error without mil: position prefix: %v", err)
			}
			return
		}
		// Every node must report a position; walk the top level.
		for _, s := range prog.Stmts {
			if l, c := s.Pos(); l < 0 || c < 0 {
				t.Fatalf("negative position %d:%d", l, c)
			}
		}
	})
}

// FuzzRun feeds parsed programs to the interpreter with a small step
// budget: evaluation must return a value or an error, never panic.
func FuzzRun(f *testing.F) {
	seeds := []string{
		"VAR a := 1; RETURN a + 1;",
		"VAR b := new(void, int);\nb.insert(nil, 3);\nRETURN b.sum;",
		"PROC f(int x) : int := { RETURN x; }\nRETURN f(7);",
		"RETURN 1 / 0;",
		"PARALLEL { print(1); print(2); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // keep interpreter runs cheap
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		in := NewInterp(nil)
		in.MaxSteps = 50000
		_, _ = in.Run(prog)
	})
}
