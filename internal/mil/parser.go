package mil

import (
	"fmt"
	"strconv"
	"strings"

	"cobra/internal/monet"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks  []token
	i     int
	depth int
}

// maxParseDepth bounds statement/expression nesting so hostile input
// (deeply nested parentheses or blocks) fails with a diagnostic
// instead of exhausting the goroutine stack.
const maxParseDepth = 256

// enter increments the nesting depth, failing when the program nests
// deeper than maxParseDepth. Callers must pair it with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		t := p.cur()
		return fmt.Errorf("mil: %d:%d: program nests deeper than %d levels", t.line, t.col, maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// Parse parses MIL source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = kindName(kind)
	}
	found := t.text
	if t.kind == tokEOF {
		found = "end of input"
	}
	return token{}, fmt.Errorf("mil: %d:%d: expected %q, found %q", t.line, t.col, want, found)
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return p.errAt(t, format, args...)
}

// errAt reports an error anchored at a specific token, for paths where
// the parser has already advanced past the offending token.
func (p *parser) errAt(t token, format string, args ...any) error {
	return fmt.Errorf("mil: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// kindName renders a token kind for "expected ..." diagnostics.
func kindName(k tokenKind) string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokPunct:
		return "punctuation"
	case tokOp:
		return "operator"
	case tokKeyword:
		return "keyword"
	}
	return "token"
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.kind == tokKeyword && t.text == "var":
		return p.varDecl()
	case t.kind == tokKeyword && t.text == "proc":
		return p.procDecl()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Return{pos: pos{t.line, t.col}, Expr: e}, nil
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tokKeyword && t.text == "while":
		return p.whileStmt()
	case t.kind == tokKeyword && t.text == "parallel":
		p.advance()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return &ParallelBlock{pos: pos{t.line, t.col}, Stmts: b.Stmts}, nil
	case t.kind == tokPunct && t.text == "{":
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return b, nil
	case t.kind == tokIdent && p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == ":=":
		p.advance()
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Assign{pos: pos{t.line, t.col}, Name: t.text, Expr: e}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{pos: pos{t.line, t.col}, Expr: e}, nil
	}
}

func (p *parser) varDecl() (Stmt, error) {
	t := p.advance() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	// Optional type annotation `VAR x : type := e;` is recorded for the
	// static checker; the interpreter stays dynamically checked.
	var spec *TypeSpec
	if p.accept(tokPunct, ":") {
		s, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		spec = s
	}
	if _, err := p.expect(tokOp, ":="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &VarDecl{pos: pos{t.line, t.col}, Name: name.text, Type: spec, Init: e}, nil
}

func (p *parser) procDecl() (Stmt, error) {
	t := p.advance() // proc
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(tokPunct, ")") {
		if len(params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		params = append(params, prm)
	}
	p.advance() // )
	var ret *TypeSpec
	if p.accept(tokPunct, ":") {
		s, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		ret = s
	}
	if _, err := p.expect(tokOp, ":="); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	return &ProcDecl{pos: pos{t.line, t.col}, Name: name.text, Params: params, Ret: ret, Body: body}, nil
}

// param parses `BAT[oid,dbl] name` or `int name`.
func (p *parser) param() (Param, error) {
	tt, err := p.expect(tokIdent, "")
	if err != nil {
		return Param{}, err
	}
	if strings.EqualFold(tt.text, "bat") {
		if _, err := p.expect(tokPunct, "["); err != nil {
			return Param{}, err
		}
		h, err := p.typeName()
		if err != nil {
			return Param{}, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return Param{}, err
		}
		tl, err := p.typeName()
		if err != nil {
			return Param{}, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return Param{}, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return Param{}, err
		}
		return Param{Name: name.text, IsBAT: true, Head: h, Tail: tl, Line: name.line, Col: name.col}, nil
	}
	atom, err := parseTypeName(tt.text)
	if err != nil {
		return Param{}, fmt.Errorf("mil: %d:%d: %w", tt.line, tt.col, err)
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return Param{}, err
	}
	return Param{Name: name.text, Atom: atom, Line: name.line, Col: name.col}, nil
}

func (p *parser) typeName() (monet.Type, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return 0, err
	}
	ty, err := parseTypeName(t.text)
	if err != nil {
		return 0, fmt.Errorf("mil: %d:%d: %w", t.line, t.col, err)
	}
	return ty, nil
}

// ParseTypeName resolves a MIL atomic type name (void, oid, int, lng,
// dbl, flt, str, bit, bool) to its kernel type.
func ParseTypeName(s string) (monet.Type, error) { return parseTypeName(s) }

func parseTypeName(s string) (monet.Type, error) {
	switch strings.ToLower(s) {
	case "void":
		return monet.Void, nil
	case "oid":
		return monet.OIDT, nil
	case "int", "lng":
		return monet.IntT, nil
	case "dbl", "flt":
		return monet.FloatT, nil
	case "str":
		return monet.StrT, nil
	case "bit", "bool":
		return monet.BoolT, nil
	}
	return 0, fmt.Errorf("unknown type %q", s)
}

// typeSpec parses a type annotation: `str` or `BAT[oid,dbl]`.
func (p *parser) typeSpec() (*TypeSpec, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(t.text, "bat") {
		if _, err := p.expect(tokPunct, "["); err != nil {
			return nil, err
		}
		h, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		tl, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return &TypeSpec{IsBAT: true, Head: h, Tail: tl}, nil
	}
	atom, err := parseTypeName(t.text)
	if err != nil {
		return nil, p.errAt(t, "%v", err)
	}
	return &TypeSpec{Atom: atom}, nil
}

func (p *parser) block() (*Block, error) {
	t, err := p.expect(tokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{pos: pos{t.line, t.col}}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.advance() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{pos: pos{t.line, t.col}, Cond: cond, Then: then}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			ift := p.cur()
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			// The synthetic block wrapping an `else if` carries the
			// nested if's position so diagnostics never report 0:0.
			node.Else = &Block{pos: pos{ift.line, ift.col}, Stmts: []Stmt{nested}}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.advance() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{pos: pos{t.line, t.col}, Cond: cond, Body: body}, nil
}

// Expression grammar: comparison > additive > multiplicative > unary >
// postfix > primary.

func (p *parser) expr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp {
		op := p.cur().text
		switch op {
		case "<", ">", "<=", ">=", "=", "!=":
		default:
			return l, nil
		}
		t := p.advance()
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		l = &Binary{pos: pos{t.line, t.col}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		t := p.advance()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{pos: pos{t.line, t.col}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		t := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{pos: pos{t.line, t.col}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.at(tokOp, "-") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		t := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: pos{t.line, t.col}, Op: "-", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, ".") {
		t := p.advance()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		mc := &MethodCall{pos: pos{t.line, t.col}, Recv: e, Name: name.text}
		if p.accept(tokPunct, "(") {
			for !p.at(tokPunct, ")") {
				if len(mc.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				mc.Args = append(mc.Args, a)
			}
			p.advance() // )
		}
		e = mc
	}
	return e, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errAt(t, "bad integer %q", t.text)
		}
		return &Lit{pos: pos{t.line, t.col}, Val: monet.NewInt(n)}, nil
	case t.kind == tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errAt(t, "bad float %q", t.text)
		}
		return &Lit{pos: pos{t.line, t.col}, Val: monet.NewFloat(f)}, nil
	case t.kind == tokString:
		p.advance()
		return &Lit{pos: pos{t.line, t.col}, Val: monet.NewStr(t.text)}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.advance()
		return &Lit{pos: pos{t.line, t.col}, Val: monet.NewBool(t.text == "true")}, nil
	case t.kind == tokKeyword && t.text == "nil":
		p.advance()
		return &Lit{pos: pos{t.line, t.col}, Val: monet.VoidValue()}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokPunct, "(") {
			call := &Call{pos: pos{t.line, t.col}, Name: t.text}
			for !p.at(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.advance() // )
			return call, nil
		}
		return &Ident{pos: pos{t.line, t.col}, Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
