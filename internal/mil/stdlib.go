package mil

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"cobra/internal/monet"
)

// installStdlib registers the kernel's builtin functions.
func (in *Interp) installStdlib() {
	in.Register("new", builtinNew)
	in.Register("threadcnt", builtinThreadcnt)
	in.Register("poolsize", builtinPoolsize)
	in.Register("print", builtinPrint)
	in.Register("bat", builtinBAT)
	in.Register("register", builtinRegister)
	in.Register("crack", builtinCrack)
	in.Register("zonemap", builtinZoneMap)
	in.Register("indexinfo", builtinIndexInfo)
	in.Register("fusedaggr", builtinFusedAggr)
	in.Register("fusedruns", builtinFusedRuns)
	in.Register("abs", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("abs", args, 1); err != nil {
			return Value{}, err
		}
		a := args[0].Atom
		if a.Typ == monet.IntT {
			v := a.Int()
			if v < 0 {
				v = -v
			}
			return AtomValue(monet.NewInt(v)), nil
		}
		return AtomValue(monet.NewFloat(math.Abs(a.Float()))), nil
	})
	in.Register("sqrt", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("sqrt", args, 1); err != nil {
			return Value{}, err
		}
		return AtomValue(monet.NewFloat(math.Sqrt(args[0].Atom.Float()))), nil
	})
	in.Register("log", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("log", args, 1); err != nil {
			return Value{}, err
		}
		return AtomValue(monet.NewFloat(math.Log(args[0].Atom.Float()))), nil
	})
	in.Register("int", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("int", args, 1); err != nil {
			return Value{}, err
		}
		return AtomValue(monet.NewInt(int64(args[0].Atom.Float()))), nil
	})
	in.Register("dbl", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("dbl", args, 1); err != nil {
			return Value{}, err
		}
		return AtomValue(monet.NewFloat(args[0].Atom.Float())), nil
	})
	in.Register("str", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("str expects 1 argument")
		}
		if args[0].IsBAT() {
			return AtomValue(monet.NewStr(args[0].BAT.String())), nil
		}
		a := args[0].Atom
		if a.Typ == monet.StrT {
			return args[0], nil
		}
		return AtomValue(monet.NewStr(a.String())), nil
	})
	in.Register("oid", func(_ *Interp, args []Value) (Value, error) {
		if err := wantAtoms("oid", args, 1); err != nil {
			return Value{}, err
		}
		return AtomValue(monet.NewOID(monet.OID(args[0].Atom.Int()))), nil
	})
	in.Register("isnil", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("isnil expects 1 argument")
		}
		return AtomValue(monet.NewBool(!args[0].IsBAT() && args[0].Atom.IsNil())), nil
	})
	// Columnar calculus (batcalc): bulk arithmetic over aligned BATs.
	for _, op := range []string{"+", "-", "*", "/", "min", "max"} {
		op := op
		name := map[string]string{"+": "calcadd", "-": "calcsub", "*": "calcmul",
			"/": "calcdiv", "min": "calcmin", "max": "calcmax"}[op]
		in.Register(name, func(_ *Interp, args []Value) (Value, error) {
			if len(args) != 2 || !args[0].IsBAT() || !args[1].IsBAT() {
				return Value{}, fmt.Errorf("%s expects two BATs", name)
			}
			out, err := monet.CalcBinary(args[0].BAT, args[1].BAT, op)
			if err != nil {
				return Value{}, err
			}
			return BATValue(out), nil
		})
	}
	in.Register("scale", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 3 || !args[0].IsBAT() || args[1].IsBAT() || args[2].IsBAT() {
			return Value{}, errors.New("scale expects (bat, factor, offset)")
		}
		out, err := monet.CalcScale(args[0].BAT, args[1].Atom.Float(), args[2].Atom.Float())
		if err != nil {
			return Value{}, err
		}
		return BATValue(out), nil
	})
	in.Register("clamp", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 3 || !args[0].IsBAT() || args[1].IsBAT() || args[2].IsBAT() {
			return Value{}, errors.New("clamp expects (bat, lo, hi)")
		}
		out, err := monet.CalcClamp(args[0].BAT, args[1].Atom.Float(), args[2].Atom.Float())
		if err != nil {
			return Value{}, err
		}
		return BATValue(out), nil
	})
	in.Register("threshold", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 || !args[0].IsBAT() || args[1].IsBAT() {
			return Value{}, errors.New("threshold expects (bat, value)")
		}
		out, err := monet.CalcThreshold(args[0].BAT, args[1].Atom.Float())
		if err != nil {
			return Value{}, err
		}
		return BATValue(out), nil
	})
	in.Register("mavg", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 || !args[0].IsBAT() || args[1].IsBAT() {
			return Value{}, errors.New("mavg expects (bat, window)")
		}
		out, err := monet.CalcMovingAvg(args[0].BAT, int(args[1].Atom.Int()))
		if err != nil {
			return Value{}, err
		}
		return BATValue(out), nil
	})
}

// builtinNew implements `new(headType, tailType)`: the BAT constructor.
// Type arguments arrive as undefined identifiers, so the parser turns
// them into Ident expressions; the evaluator resolves them through this
// special path by accepting string atoms too. We therefore pre-bind
// type names as globals at interpreter construction... Instead, the
// simpler contract: new takes the type names as identifiers that the
// evaluator could not resolve — so callers write new("void","int") or
// the interpreter maps bare type names. To keep the paper's syntax
// new(void,int) working, type names are bound as string globals below.
func builtinNew(in *Interp, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errors.New("new expects 2 type arguments")
	}
	ht, err := typeArg(args[0])
	if err != nil {
		return Value{}, err
	}
	tt, err := typeArg(args[1])
	if err != nil {
		return Value{}, err
	}
	return BATValue(monet.NewBAT(ht, tt)), nil
}

func typeArg(v Value) (monet.Type, error) {
	if v.IsBAT() {
		return 0, errors.New("type argument must be a type name")
	}
	if v.Atom.Typ != monet.StrT {
		return 0, fmt.Errorf("type argument must be a type name, got %v", v.Atom)
	}
	return parseTypeName(v.Atom.Str())
}

// builtinThreadcnt sets the worker count for PARALLEL blocks and
// returns the previous value, like Monet's threadcnt. It also resizes
// the shared kernel pool, so bulk operators (select/join/aggregate)
// inherit the same width; the pool clamps the width to a sane maximum.
func builtinThreadcnt(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("threadcnt", args, 1); err != nil {
		return Value{}, err
	}
	n := int(args[0].Atom.Int())
	if n < 1 {
		return Value{}, fmt.Errorf("threadcnt: invalid count %d", n)
	}
	in.mu.Lock()
	prev := in.threadCnt
	in.threadCnt = n
	in.mu.Unlock()
	monet.SetDefaultPoolWorkers(n)
	return AtomValue(monet.NewInt(int64(prev))), nil
}

// builtinPoolsize reports the width of the shared kernel worker pool:
// poolsize() returns how many workers morsel-parallel operators and
// PARALLEL blocks schedule onto.
func builtinPoolsize(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("poolsize", args, 0); err != nil {
		return Value{}, err
	}
	return AtomValue(monet.NewInt(int64(monet.DefaultPool().Workers()))), nil
}

// builtinPrint renders its arguments to the interpreter's output list.
func builtinPrint(in *Interp, args []Value) (Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	in.mu.Lock()
	in.output = append(in.output, strings.Join(parts, " "))
	in.mu.Unlock()
	return Value{}, nil
}

// builtinBAT fetches a named BAT from the store: bat("name").
func builtinBAT(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("bat", args, 1); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("bat: no store attached")
	}
	b, err := in.store.Get(args[0].Atom.Str())
	if err != nil {
		return Value{}, err
	}
	return BATValue(b), nil
}

// builtinCrack force-builds the cracker copy of a stored numeric
// column: crack("name") returns the resulting piece count. Subsequent
// range selects over the BAT answer from the cracker.
func builtinCrack(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("crack", args, 1); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("crack: no store attached")
	}
	n, err := in.store.Crack(args[0].Atom.Str())
	if err != nil {
		return Value{}, err
	}
	return AtomValue(monet.NewInt(int64(n))), nil
}

// builtinZoneMap force-builds the per-morsel min/max zone map of a
// stored column: zonemap("name") returns the morsel count.
func builtinZoneMap(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("zonemap", args, 1); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("zonemap: no store attached")
	}
	n, err := in.store.BuildZoneMap(args[0].Atom.Str())
	if err != nil {
		return Value{}, err
	}
	return AtomValue(monet.NewInt(int64(n))), nil
}

// builtinIndexInfo reports the adaptive index state of a stored BAT
// as a [str,str] BAT of property/value pairs: indexinfo("name").
func builtinIndexInfo(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("indexinfo", args, 1); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("indexinfo: no store attached")
	}
	b, err := in.store.IndexInfo(args[0].Atom.Str())
	if err != nil {
		return Value{}, err
	}
	return BATValue(b), nil
}

// builtinFusedAggr executes a fused select→aggregate pipeline over
// stored BATs: fusedaggr("pred", lo, hi, "agg", "op") aggregates the
// rows of BAT "agg" whose aligned "pred" tail lies in [lo, hi],
// without materializing the selection. op is one of count, sum, avg,
// min, max. The kernel cost gate silently falls back to the
// operator-at-a-time plan when fusion cannot reproduce it exactly.
func builtinFusedAggr(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("fusedaggr", args, 5); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("fusedaggr: no store attached")
	}
	v, _, err := in.store.Pipeline(args[0].Atom.Str(), args[1].Atom, args[2].Atom).
		Aggregate(context.Background(), args[3].Atom.Str(), args[4].Atom.Str())
	if err != nil {
		return Value{}, err
	}
	return AtomValue(v), nil
}

// builtinFusedRuns range-selects a stored BAT through the fused
// pipeline and returns the qualifying rows as maximal runs:
// fusedruns("name", lo, hi) yields a [oid, int] BAT mapping each run's
// first position to its length.
func builtinFusedRuns(in *Interp, args []Value) (Value, error) {
	if err := wantAtoms("fusedruns", args, 3); err != nil {
		return Value{}, err
	}
	if in.store == nil {
		return Value{}, errors.New("fusedruns: no store attached")
	}
	runs, _, err := in.store.SelectRuns(args[0].Atom.Str(), args[1].Atom, args[2].Atom)
	if err != nil {
		return Value{}, err
	}
	out := monet.NewBATCap(monet.OIDT, monet.IntT, len(runs))
	for _, r := range runs {
		out.MustInsert(monet.NewOID(monet.OID(r.Start)), monet.NewInt(int64(r.Len)))
	}
	return BATValue(out), nil
}

// builtinRegister persists a BAT into the store: register("name", b).
func builtinRegister(in *Interp, args []Value) (Value, error) {
	if len(args) != 2 || args[0].IsBAT() || !args[1].IsBAT() {
		return Value{}, errors.New(`register expects ("name", bat)`)
	}
	if in.store == nil {
		return Value{}, errors.New("register: no store attached")
	}
	in.store.Put(args[0].Atom.Str(), args[1].BAT)
	return args[1], nil
}

func wantAtoms(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d arguments, got %d", name, n, len(args))
	}
	for _, a := range args {
		if a.IsBAT() {
			return fmt.Errorf("%s expects atomic arguments", name)
		}
	}
	return nil
}

// callNamedProc invokes a declared PROC by name with the given
// arguments; used by the higher-order BAT methods.
func (in *Interp) callNamedProc(name string, args []Value) (Value, error) {
	proc, ok := in.proc(strings.ToLower(name))
	if !ok {
		return Value{}, fmt.Errorf("mil: no PROC %q", name)
	}
	return in.callProc(proc, args)
}

// evalMethod dispatches method-call syntax. On BATs it maps to kernel
// operations; `.max`, `.min`, `.count`, `.sum`, `.avg` also work on
// BATs per MIL. The receiver may also be an undefined identifier used
// as a type name (not supported — caught by lookup).
func (in *Interp) evalMethod(e *env, ex *MethodCall) (Value, error) {
	recv, err := in.eval(e, ex.Recv)
	if err != nil {
		return Value{}, err
	}
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := in.eval(e, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if !recv.IsBAT() {
		return Value{}, fmt.Errorf("mil: method %q on non-BAT value %v", ex.Name, recv)
	}
	b := recv.BAT
	name := strings.ToLower(ex.Name)
	wrap := func(v Value, err error) (Value, error) {
		if err != nil {
			l, c := ex.Pos()
			return Value{}, fmt.Errorf("mil: %d:%d: %s: %w", l, c, ex.Name, err)
		}
		return v, nil
	}
	switch name {
	case "insert":
		if len(args) != 2 || args[0].IsBAT() || args[1].IsBAT() {
			return wrap(Value{}, errors.New("insert expects (head, tail) atoms"))
		}
		h := args[0].Atom
		if b.HeadType() == monet.Void {
			h = monet.VoidValue()
		}
		// Inside a PARALLEL block the receiver may be shared across
		// branches (the Fig. 4 parEval pattern); in-place mutation is
		// serialized on the block's lock so the columns cannot race.
		if mu := e.outermostParMu(); mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		return wrap(BATValue(b), b.Insert(h, args[1].Atom))
	case "append":
		if len(args) != 1 || !args[0].IsBAT() {
			return wrap(Value{}, errors.New("append expects a BAT"))
		}
		u, err := b.KUnion(args[0].BAT)
		return wrap(BATValue(u), err)
	case "reverse":
		return BATValue(b.Reverse()), nil
	case "mirror":
		return BATValue(b.Mirror()), nil
	case "mark":
		base := monet.OID(0)
		if len(args) == 1 && !args[0].IsBAT() {
			base = monet.OID(args[0].Atom.Int())
		}
		return BATValue(b.Mark(base)), nil
	case "select":
		switch len(args) {
		case 1:
			return BATValue(b.SelectEq(args[0].Atom)), nil
		case 2:
			return BATValue(b.Select(args[0].Atom, args[1].Atom)), nil
		}
		return wrap(Value{}, errors.New("select expects 1 or 2 bounds"))
	case "uselect":
		switch len(args) {
		case 1:
			return BATValue(b.Uselect(args[0].Atom, args[0].Atom)), nil
		case 2:
			return BATValue(b.Uselect(args[0].Atom, args[1].Atom)), nil
		}
		return wrap(Value{}, errors.New("uselect expects 1 or 2 bounds"))
	case "join":
		if len(args) != 1 || !args[0].IsBAT() {
			return wrap(Value{}, errors.New("join expects a BAT"))
		}
		j, err := b.Join(args[0].BAT)
		return wrap(BATValue(j), err)
	case "semijoin":
		if len(args) != 1 || !args[0].IsBAT() {
			return wrap(Value{}, errors.New("semijoin expects a BAT"))
		}
		j, err := b.Semijoin(args[0].BAT)
		return wrap(BATValue(j), err)
	case "kdiff":
		if len(args) != 1 || !args[0].IsBAT() {
			return wrap(Value{}, errors.New("kdiff expects a BAT"))
		}
		j, err := b.KDiff(args[0].BAT)
		return wrap(BATValue(j), err)
	case "kunion":
		if len(args) != 1 || !args[0].IsBAT() {
			return wrap(Value{}, errors.New("kunion expects a BAT"))
		}
		j, err := b.KUnion(args[0].BAT)
		return wrap(BATValue(j), err)
	case "find":
		if len(args) != 1 || args[0].IsBAT() {
			return wrap(Value{}, errors.New("find expects an atom"))
		}
		v, ok := b.Find(args[0].Atom)
		if !ok {
			return AtomValue(monet.VoidValue()), nil
		}
		return AtomValue(v), nil
	case "exists":
		if len(args) != 1 || args[0].IsBAT() {
			return wrap(Value{}, errors.New("exists expects an atom"))
		}
		return AtomValue(monet.NewBool(b.Exists(args[0].Atom))), nil
	case "count":
		return AtomValue(monet.NewInt(b.Count())), nil
	case "sum":
		s, err := b.Sum()
		return wrap(AtomValue(monet.NewFloat(s)), err)
	case "avg":
		s, err := b.Avg()
		return wrap(AtomValue(monet.NewFloat(s)), err)
	case "max":
		v, ok := b.Max()
		if !ok {
			return AtomValue(monet.VoidValue()), nil
		}
		return AtomValue(v), nil
	case "min":
		v, ok := b.Min()
		if !ok {
			return AtomValue(monet.VoidValue()), nil
		}
		return AtomValue(v), nil
	case "argmax":
		v, ok := b.ArgMax()
		if !ok {
			return AtomValue(monet.VoidValue()), nil
		}
		return AtomValue(v), nil
	case "argmin":
		v, ok := b.ArgMin()
		if !ok {
			return AtomValue(monet.VoidValue()), nil
		}
		return AtomValue(v), nil
	case "sort":
		return BATValue(b.SortTail()), nil
	case "sorthead":
		return BATValue(b.SortHead()), nil
	case "slice":
		if len(args) != 2 || args[0].IsBAT() || args[1].IsBAT() {
			return wrap(Value{}, errors.New("slice expects (lo, hi) atoms"))
		}
		lo, hi := int(args[0].Atom.Int()), int(args[1].Atom.Int())
		if lo < 0 || hi > b.Len() || lo > hi {
			return wrap(Value{}, fmt.Errorf("slice bounds [%d,%d) out of range 0..%d", lo, hi, b.Len()))
		}
		return BATValue(b.Slice(lo, hi)), nil
	case "copy":
		return BATValue(b.Clone()), nil
	case "histogram":
		return BATValue(b.Histogram()), nil
	case "map":
		// b.map("proc"): apply PROC(head, tail) per BUN, keeping heads
		// and replacing tails with the PROC's result.
		if len(args) != 1 || args[0].IsBAT() || args[0].Atom.Typ != monet.StrT {
			return wrap(Value{}, errors.New(`map expects a PROC name string`))
		}
		var out *monet.BAT
		for i := 0; i < b.Len(); i++ {
			v, err := in.callNamedProc(args[0].Atom.Str(),
				[]Value{AtomValue(b.Head(i)), AtomValue(b.Tail(i))})
			if err != nil {
				return wrap(Value{}, err)
			}
			if v.IsBAT() {
				return wrap(Value{}, errors.New("map PROC must return an atom"))
			}
			if out == nil {
				out = monet.NewBAT(b.HeadType(), v.Atom.Typ)
			}
			if err := out.Insert(b.Head(i), v.Atom); err != nil {
				return wrap(Value{}, err)
			}
		}
		if out == nil {
			out = monet.NewBAT(b.HeadType(), monet.Void)
		}
		return BATValue(out), nil
	case "filterproc":
		// b.filterproc("proc"): keep BUNs for which PROC(head, tail)
		// returns a truthy atom.
		if len(args) != 1 || args[0].IsBAT() || args[0].Atom.Typ != monet.StrT {
			return wrap(Value{}, errors.New(`filterproc expects a PROC name string`))
		}
		out := monet.NewBAT(b.HeadType(), b.TailType())
		for i := 0; i < b.Len(); i++ {
			v, err := in.callNamedProc(args[0].Atom.Str(),
				[]Value{AtomValue(b.Head(i)), AtomValue(b.Tail(i))})
			if err != nil {
				return wrap(Value{}, err)
			}
			if truthy(v) {
				h := b.Head(i)
				if b.HeadType() == monet.Void {
					h = monet.VoidValue()
				}
				if err := out.Insert(h, b.Tail(i)); err != nil {
					return wrap(Value{}, err)
				}
			}
		}
		return BATValue(out), nil
	}
	l, c := ex.Pos()
	return Value{}, fmt.Errorf("%w: method %q at %d:%d", ErrUndefined, ex.Name, l, c)
}

// Output returns and clears the lines produced by print().
func (in *Interp) Output() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := in.output
	in.output = nil
	return out
}
