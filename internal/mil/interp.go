package mil

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/monet"
	"cobra/internal/obs"
)

// MIL interpretation metrics: per-program latency, statement volume
// and the fan-out of Fig. 4-style PARALLEL blocks.
var (
	hRunLat            = obs.H("mil.run.latency")
	cStatements        = obs.C("mil.statements")
	cParallelBlocks    = obs.C("mil.parallel.blocks")
	cParallelBranches  = obs.C("mil.parallel.branches")
	hParallelBlockTime = obs.H("mil.parallel.latency")
)

// Value is a MIL runtime value: an atomic kernel value, a BAT, or a
// procedure reference.
type Value struct {
	Atom monet.Value
	BAT  *monet.BAT
	Proc *ProcDecl
}

// IsBAT reports whether the value holds a BAT.
func (v Value) IsBAT() bool { return v.BAT != nil }

// AtomValue wraps an atomic kernel value.
func AtomValue(a monet.Value) Value { return Value{Atom: a} }

// BATValue wraps a BAT.
func BATValue(b *monet.BAT) Value { return Value{BAT: b} }

// String renders the value for the shell.
func (v Value) String() string {
	switch {
	case v.BAT != nil:
		return v.BAT.Dump(16)
	case v.Proc != nil:
		return "proc " + v.Proc.Name
	default:
		return v.Atom.String()
	}
}

// Builtin is a host function registered with the interpreter, the MEL
// extension-module mechanism.
type Builtin func(in *Interp, args []Value) (Value, error)

// Interp executes MIL programs against a kernel store.
type Interp struct {
	store    *monet.Store
	builtins map[string]Builtin

	// MaxSteps bounds the number of statements one Run may execute; 0
	// means unbounded. Fuzzing and untrusted plans set it so WHILE
	// loops stay finite.
	MaxSteps int64
	steps    atomic.Int64

	mu        sync.Mutex // guards globals, procs, output, and threadCnt
	procs     map[string]*ProcDecl
	globals   map[string]Value
	output    []string
	threadCnt int
}

// ErrBudget is returned when a Run exceeds the MaxSteps statement
// budget.
var ErrBudget = errors.New("mil: statement budget exceeded")

// proc looks up a declared procedure under the interpreter lock;
// PARALLEL branches may declare procedures while others call them.
func (in *Interp) proc(name string) (*ProcDecl, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p, ok := in.procs[name]
	return p, ok
}

// ErrUndefined is returned when a name is not bound.
var ErrUndefined = errors.New("mil: undefined name")

// errReturn carries a RETURN value up the evaluation stack.
type errReturn struct{ val Value }

func (errReturn) Error() string { return "mil: return outside procedure" }

// NewInterp returns an interpreter bound to the given store (which may
// be nil for a store-less session). Standard builtins are installed.
func NewInterp(store *monet.Store) *Interp {
	in := &Interp{
		store:     store,
		builtins:  map[string]Builtin{},
		procs:     map[string]*ProcDecl{},
		globals:   map[string]Value{},
		threadCnt: 1,
	}
	in.installStdlib()
	// Bind atomic type names as string globals so the paper's
	// constructor syntax new(void,int) evaluates its arguments to the
	// type names themselves.
	for _, tn := range []string{"void", "oid", "int", "lng", "dbl", "flt", "str", "bit", "bool"} {
		in.globals[tn] = AtomValue(monet.NewStr(tn))
	}
	return in
}

// Register installs a builtin function under the given name,
// mirroring a MEL extension module.
func (in *Interp) Register(name string, fn Builtin) {
	in.builtins[strings.ToLower(name)] = fn
}

// SetGlobal binds a global variable.
func (in *Interp) SetGlobal(name string, v Value) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.globals[name] = v
}

// Global returns a global variable.
func (in *Interp) Global(name string) (Value, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v, ok := in.globals[name]
	return v, ok
}

// Store returns the kernel store the interpreter is bound to.
func (in *Interp) Store() *monet.Store { return in.store }

// env is a lexical scope chain. The root scope delegates to the
// interpreter's locked globals map so PARALLEL branches can share it.
type env struct {
	in     *Interp
	parent *env
	vars   map[string]Value
	mu     *sync.Mutex // non-nil when this scope is shared by PARALLEL branches
}

// unlockPath releases scope locks acquired during an env walk, in
// reverse acquisition order. Walks always acquire child-to-parent, a
// consistent order across goroutines, which keeps them deadlock-free.
func unlockPath(held []*sync.Mutex) {
	for i := len(held) - 1; i >= 0; i-- {
		held[i].Unlock()
	}
}

func (e *env) lookup(name string) (Value, bool) {
	var held []*sync.Mutex
	defer func() { unlockPath(held) }()
	for s := e; s != nil; s = s.parent {
		if s.mu != nil {
			s.mu.Lock()
			held = append(held, s.mu)
		}
		v, ok := s.vars[name]
		if ok {
			return v, true
		}
	}
	return e.in.Global(name)
}

// outermostParMu returns the lock of the outermost enclosing PARALLEL
// scope, or nil outside any PARALLEL block. Branches of the same block
// — and of any nested blocks — share it, so it serializes in-place
// mutation of values reachable from more than one branch.
func (e *env) outermostParMu() *sync.Mutex {
	var mu *sync.Mutex
	for s := e; s != nil; s = s.parent {
		if s.mu != nil {
			mu = s.mu
		}
	}
	return mu
}

func (e *env) define(name string, v Value) {
	if e.mu != nil {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	e.vars[name] = v
}

// set assigns an existing variable, searching outward; if undefined
// anywhere it becomes a global (MIL sessions assign freely). Locks of
// enclosing PARALLEL scopes stay held while outer scopes are touched,
// so branch assignments to pre-block variables cannot race on the
// scope maps.
func (e *env) set(name string, v Value) {
	var held []*sync.Mutex
	defer func() { unlockPath(held) }()
	for s := e; s != nil; s = s.parent {
		if s.mu != nil {
			s.mu.Lock()
			held = append(held, s.mu)
		}
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.in.SetGlobal(name, v)
}

// Exec parses and runs src at global scope, returning the value of a
// top-level RETURN if one executes, else the value of the last
// expression statement.
func (in *Interp) Exec(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Value{}, err
	}
	return in.Run(prog)
}

// ExecCtx is Exec under a trace context: when ctx carries a span the
// interpretation is recorded as a physical-level "mil.exec" child
// covering parse and run, annotated with the statement count and any
// failure. MIL programs issued over the protocol get their own trace
// root in the server, so MIL work shows up in TRACEDUMP alongside
// COQL queries.
func (in *Interp) ExecCtx(ctx context.Context, src string) (Value, error) {
	sp := obs.SpanFromContext(ctx).StartChild("mil.exec")
	sp.SetAttr("level", "physical")
	prog, err := Parse(src)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.Finish()
		return Value{}, err
	}
	sp.SetAttr("statements", fmt.Sprintf("%d", len(prog.Stmts)))
	v, err := in.Run(prog)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.Finish()
	return v, err
}

// Run executes a parsed program.
func (in *Interp) Run(prog *Program) (Value, error) {
	defer func(start time.Time) { hRunLat.Observe(time.Since(start)) }(time.Now())
	cStatements.Add(int64(len(prog.Stmts)))
	in.steps.Store(0)
	root := &env{in: in, vars: map[string]Value{}}
	var last Value
	for _, s := range prog.Stmts {
		v, err := in.exec(root, s)
		var r errReturn
		if errors.As(err, &r) {
			return r.val, nil
		}
		if err != nil {
			return Value{}, err
		}
		last = v
	}
	return last, nil
}

func (in *Interp) exec(e *env, s Stmt) (Value, error) {
	if in.MaxSteps > 0 && in.steps.Add(1) > in.MaxSteps {
		l, c := s.Pos()
		return Value{}, fmt.Errorf("%w at %d:%d (limit %d)", ErrBudget, l, c, in.MaxSteps)
	}
	switch st := s.(type) {
	case *VarDecl:
		v, err := in.eval(e, st.Init)
		if err != nil {
			return Value{}, err
		}
		e.define(st.Name, v)
		return Value{}, nil
	case *Assign:
		v, err := in.eval(e, st.Expr)
		if err != nil {
			return Value{}, err
		}
		e.set(st.Name, v)
		return Value{}, nil
	case *ExprStmt:
		return in.eval(e, st.Expr)
	case *Return:
		v, err := in.eval(e, st.Expr)
		if err != nil {
			return Value{}, err
		}
		return Value{}, errReturn{val: v}
	case *If:
		c, err := in.eval(e, st.Cond)
		if err != nil {
			return Value{}, err
		}
		if truthy(c) {
			return in.execBlock(e, st.Then)
		}
		if st.Else != nil {
			return in.execBlock(e, st.Else)
		}
		return Value{}, nil
	case *While:
		for {
			c, err := in.eval(e, st.Cond)
			if err != nil {
				return Value{}, err
			}
			if !truthy(c) {
				return Value{}, nil
			}
			if _, err := in.execBlock(e, st.Body); err != nil {
				return Value{}, err
			}
		}
	case *Block:
		return in.execBlock(e, st)
	case *ParallelBlock:
		return in.execParallel(e, st)
	case *ProcDecl:
		in.mu.Lock()
		in.procs[strings.ToLower(st.Name)] = st
		in.mu.Unlock()
		return Value{}, nil
	default:
		return Value{}, fmt.Errorf("mil: unknown statement %T", s)
	}
}

func (in *Interp) execBlock(e *env, b *Block) (Value, error) {
	child := &env{in: in, parent: e, vars: map[string]Value{}}
	var last Value
	for _, s := range b.Stmts {
		v, err := in.exec(child, s)
		if err != nil {
			return Value{}, err
		}
		last = v
	}
	return last, nil
}

// execParallel runs the block's statements concurrently with at most
// threadcnt workers, scheduled as tasks on the shared kernel pool
// (monet.DefaultPool). Each statement runs in its own child scope over
// a shared, locked parent scope so branches can publish results to
// variables declared before the block (the Fig. 4 pattern: six
// hmmOneCall branches inserting into parEval). The MaxSteps budget is
// an atomic on the interpreter, so it keeps counting across workers.
//
// Width is bounded by submitting min(threadcnt, branches) drainer
// tasks over a pre-filled work channel rather than by blocking on a
// semaphore inside pool tasks: a pool task never blocks on another
// queued task, so nested fan-out (a branch running a morsel-parallel
// kernel operator on the same pool) cannot deadlock.
func (in *Interp) execParallel(e *env, b *ParallelBlock) (Value, error) {
	defer func(start time.Time) { hParallelBlockTime.Observe(time.Since(start)) }(time.Now())
	cParallelBlocks.Inc()
	cParallelBranches.Add(int64(len(b.Stmts)))
	in.mu.Lock()
	threads := in.threadCnt
	in.mu.Unlock()

	shared := &env{in: in, parent: e, vars: map[string]Value{}, mu: &sync.Mutex{}}
	run := func(s Stmt) error {
		child := &env{in: in, parent: shared, vars: map[string]Value{}}
		_, err := in.exec(child, s)
		return err
	}
	errs := make([]error, len(b.Stmts))
	if threads <= 1 || len(b.Stmts) <= 1 {
		for i, s := range b.Stmts {
			errs[i] = run(s)
		}
		return Value{}, errors.Join(errs...)
	}
	if threads > len(b.Stmts) {
		threads = len(b.Stmts)
	}
	next := make(chan int, len(b.Stmts))
	for i := range b.Stmts {
		next <- i
	}
	close(next)
	batch := monet.DefaultPool().Batch()
	for w := 0; w < threads; w++ {
		batch.Submit(func() {
			for i := range next {
				errs[i] = run(b.Stmts[i])
			}
		})
	}
	batch.Wait()
	return Value{}, errors.Join(errs...)
}

func (in *Interp) eval(e *env, x Expr) (Value, error) {
	switch ex := x.(type) {
	case *Lit:
		return AtomValue(ex.Val), nil
	case *Ident:
		v, ok := e.lookup(ex.Name)
		if !ok {
			l, c := ex.Pos()
			return Value{}, fmt.Errorf("%w: %q at %d:%d", ErrUndefined, ex.Name, l, c)
		}
		return v, nil
	case *Unary:
		v, err := in.eval(e, ex.X)
		if err != nil {
			return Value{}, err
		}
		switch v.Atom.Typ {
		case monet.IntT:
			return AtomValue(monet.NewInt(-v.Atom.Int())), nil
		case monet.FloatT:
			return AtomValue(monet.NewFloat(-v.Atom.Float())), nil
		}
		return Value{}, fmt.Errorf("mil: cannot negate %v", v)
	case *Binary:
		return in.evalBinary(e, ex)
	case *Call:
		return in.evalCall(e, ex)
	case *MethodCall:
		return in.evalMethod(e, ex)
	default:
		return Value{}, fmt.Errorf("mil: unknown expression %T", x)
	}
}

func (in *Interp) evalBinary(e *env, ex *Binary) (Value, error) {
	l, err := in.eval(e, ex.L)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(e, ex.R)
	if err != nil {
		return Value{}, err
	}
	if l.IsBAT() || r.IsBAT() {
		return Value{}, fmt.Errorf("mil: operator %q over BAT operands", ex.Op)
	}
	a, b := l.Atom, r.Atom
	switch ex.Op {
	case "=", "!=", "<", ">", "<=", ">=":
		var cmp int
		if a.Typ == b.Typ {
			cmp = monet.Compare(a, b)
		} else if isNumeric(a.Typ) && isNumeric(b.Typ) {
			switch {
			case a.Float() < b.Float():
				cmp = -1
			case a.Float() > b.Float():
				cmp = 1
			}
		} else {
			cmp = monet.Compare(a, b)
		}
		var res bool
		switch ex.Op {
		case "=":
			res = cmp == 0
		case "!=":
			res = cmp != 0
		case "<":
			res = cmp < 0
		case ">":
			res = cmp > 0
		case "<=":
			res = cmp <= 0
		case ">=":
			res = cmp >= 0
		}
		return AtomValue(monet.NewBool(res)), nil
	case "+":
		if a.Typ == monet.StrT && b.Typ == monet.StrT {
			return AtomValue(monet.NewStr(a.Str() + b.Str())), nil
		}
		fallthrough
	case "-", "*", "/", "%":
		if !isNumeric(a.Typ) || !isNumeric(b.Typ) {
			return Value{}, fmt.Errorf("mil: operator %q over %v and %v", ex.Op, a.Typ, b.Typ)
		}
		if a.Typ == monet.IntT && b.Typ == monet.IntT {
			ai, bi := a.Int(), b.Int()
			switch ex.Op {
			case "+":
				return AtomValue(monet.NewInt(ai + bi)), nil
			case "-":
				return AtomValue(monet.NewInt(ai - bi)), nil
			case "*":
				return AtomValue(monet.NewInt(ai * bi)), nil
			case "/":
				if bi == 0 {
					return Value{}, errors.New("mil: integer division by zero")
				}
				return AtomValue(monet.NewInt(ai / bi)), nil
			case "%":
				if bi == 0 {
					return Value{}, errors.New("mil: integer modulo by zero")
				}
				return AtomValue(monet.NewInt(ai % bi)), nil
			}
		}
		af, bf := a.Float(), b.Float()
		switch ex.Op {
		case "+":
			return AtomValue(monet.NewFloat(af + bf)), nil
		case "-":
			return AtomValue(monet.NewFloat(af - bf)), nil
		case "*":
			return AtomValue(monet.NewFloat(af * bf)), nil
		case "/":
			return AtomValue(monet.NewFloat(af / bf)), nil
		case "%":
			return Value{}, errors.New("mil: modulo over floats")
		}
	}
	return Value{}, fmt.Errorf("mil: unknown operator %q", ex.Op)
}

func isNumeric(t monet.Type) bool {
	return t == monet.IntT || t == monet.FloatT || t == monet.OIDT || t == monet.BoolT
}

func truthy(v Value) bool {
	if v.IsBAT() {
		return v.BAT.Len() > 0
	}
	switch v.Atom.Typ {
	case monet.BoolT, monet.IntT, monet.OIDT:
		return v.Atom.Int() != 0
	case monet.FloatT:
		return v.Atom.Float() != 0
	case monet.StrT:
		return v.Atom.Str() != ""
	}
	return false
}

func (in *Interp) evalCall(e *env, ex *Call) (Value, error) {
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := in.eval(e, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	name := strings.ToLower(ex.Name)
	if proc, ok := in.proc(name); ok {
		return in.callProc(proc, args)
	}
	if fn, ok := in.builtins[name]; ok {
		v, err := fn(in, args)
		if err != nil {
			l, c := ex.Pos()
			return Value{}, fmt.Errorf("mil: %d:%d: %s: %w", l, c, ex.Name, err)
		}
		return v, nil
	}
	l, c := ex.Pos()
	return Value{}, fmt.Errorf("%w: function %q at %d:%d", ErrUndefined, ex.Name, l, c)
}

func (in *Interp) callProc(proc *ProcDecl, args []Value) (Value, error) {
	if len(args) != len(proc.Params) {
		return Value{}, fmt.Errorf("mil: proc %s expects %d args, got %d", proc.Name, len(proc.Params), len(args))
	}
	scope := &env{in: in, vars: map[string]Value{}}
	for i, p := range proc.Params {
		a := args[i]
		if p.IsBAT && !a.IsBAT() {
			return Value{}, fmt.Errorf("mil: proc %s: parameter %s expects a BAT", proc.Name, p.Name)
		}
		if !p.IsBAT && a.IsBAT() {
			return Value{}, fmt.Errorf("mil: proc %s: parameter %s expects an atom", proc.Name, p.Name)
		}
		scope.define(p.Name, a)
	}
	var last Value
	for _, s := range proc.Body.Stmts {
		v, err := in.exec(scope, s)
		var r errReturn
		if errors.As(err, &r) {
			return r.val, nil
		}
		if err != nil {
			return Value{}, err
		}
		last = v
	}
	return last, nil
}

// GlobalNames returns the sorted names of bound global variables,
// including the pre-bound atomic type names.
func (in *Interp) GlobalNames() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.globals))
	for n := range in.globals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuiltinNames returns the sorted names of registered builtin
// functions, covering the stdlib and any extension modules.
func (in *Interp) BuiltinNames() []string {
	names := make([]string, 0, len(in.builtins))
	for n := range in.builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Procs returns the sorted names of declared procedures.
func (in *Interp) Procs() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.procs))
	for n := range in.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
