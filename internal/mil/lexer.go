// Package mil implements an interpreter for a subset of MIL, the Monet
// Interface Language the paper uses at the physical level (Figs. 4 and
// 5b). Moa operations are rewritten into MIL procedures; extension
// modules (HMM, DBN engines) register builtin functions the way MEL
// modules extend Monet.
//
// The subset covers: VAR declarations and assignment, PROC definitions
// with typed BAT parameters, RETURN, IF/ELSE, WHILE, arithmetic and
// comparison expressions, method-call syntax on BATs (b.insert(h,t),
// b.reverse, parEval.max), the new(head,tail) BAT constructor, and a
// PARALLEL block mirroring Monet's parallel execution operator
// together with the threadcnt(n) setting.
package mil

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // one of ( ) { } [ ] , ; : .
	tokOp    // := + - * / < > <= >= = != and or not
	tokKeyword
)

// token is a lexical token with position information for diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

var keywords = map[string]bool{
	"var": true, "proc": true, "return": true, "if": true,
	"else": true, "while": true, "parallel": true,
	"true": true, "false": true, "nil": true,
}

// lexer splits MIL source into tokens. '#' starts a comment to end of
// line, matching the paper's listings.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("mil: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line, col: lx.col}, nil

scan:
	line, col := lx.line, lx.col
	b := lx.peekByte()
	switch {
	case isIdentStart(b):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if keywords[strings.ToLower(text)] {
			return token{kind: tokKeyword, text: strings.ToLower(text), line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil

	case b >= '0' && b <= '9':
		start := lx.pos
		isFloat := false
		for lx.pos < len(lx.src) {
			c := lx.peekByte()
			if c >= '0' && c <= '9' {
				lx.advance()
				continue
			}
			if c == '.' && !isFloat && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				isFloat = true
				lx.advance()
				continue
			}
			if (c == 'e' || c == 'E') && lx.pos+1 < len(lx.src) {
				nb := lx.src[lx.pos+1]
				if nb >= '0' && nb <= '9' || nb == '-' || nb == '+' {
					isFloat = true
					lx.advance() // e
					lx.advance() // sign or digit
					continue
				}
			}
			break
		}
		kind := tokInt
		if isFloat {
			kind = tokFloat
		}
		return token{kind: kind, text: lx.src[start:lx.pos], line: line, col: col}, nil

	case b == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, col, "unterminated string")
			}
			c := lx.advance()
			if c == '"' {
				break
			}
			if c == '\\' && lx.pos < len(lx.src) {
				e := lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return token{}, lx.errf(line, col, "bad escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil

	case b == ':':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokOp, text: ":=", line: line, col: col}, nil
		}
		return token{kind: tokPunct, text: ":", line: line, col: col}, nil

	case b == '<' || b == '>' || b == '!':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokOp, text: string(b) + "=", line: line, col: col}, nil
		}
		if b == '!' {
			return token{}, lx.errf(line, col, "unexpected '!'")
		}
		return token{kind: tokOp, text: string(b), line: line, col: col}, nil

	case b == '=':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
		}
		return token{kind: tokOp, text: "=", line: line, col: col}, nil

	case strings.IndexByte("+-*/%", b) >= 0:
		lx.advance()
		return token{kind: tokOp, text: string(b), line: line, col: col}, nil

	case strings.IndexByte("(){}[],;.", b) >= 0:
		lx.advance()
		return token{kind: tokPunct, text: string(b), line: line, col: col}, nil
	}
	return token{}, lx.errf(line, col, "unexpected character %q", rune(b))
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || b >= '0' && b <= '9'
}

// lexAll tokenizes the entire source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
