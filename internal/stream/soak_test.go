package stream

import (
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamSoak is the sanitizer-matrix soak: a live feed advancing
// under a thousand standing subscriptions while a churner tears
// subscriptions down and replaces them and drainers consume from
// every queue concurrently. It exists to give the race detector long,
// varied interleavings of the push/close/Next paths that the fast
// tier-1 tests only touch briefly, so it is gated behind COBRA_SOAK
// and run by CI's sanitizers job (60s there; COBRA_SOAK_SECONDS
// shortens it locally).
func TestStreamSoak(t *testing.T) {
	if os.Getenv("COBRA_SOAK") == "" {
		t.Skip("soak test: set COBRA_SOAK=1 to run (CI sanitizers job)")
	}
	dur := 60 * time.Second
	if s := os.Getenv("COBRA_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("COBRA_SOAK_SECONDS=%q is not a positive integer", s)
		}
		dur = time.Duration(secs) * time.Second
	}

	m, feed, _ := fixture(t)
	feed.step(t, 1.0) // air some material so the initial snapshot works

	queries := []string{
		"SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')",
		"SELECT SEGMENTS FROM live-gp WHERE EVENT('passing') AND FEATURE('motion') > 0.5",
		"SELECT SEGMENTS FROM live-gp WHERE EVENT('pitstop')",
	}
	const nSubs = 1000
	var subs [nSubs]atomic.Pointer[Subscription]
	for i := range subs {
		s, err := m.Subscribe(queries[i%len(queries)], nil)
		if err != nil {
			t.Fatalf("Subscribe %d: %v", i, err)
		}
		subs[i].Store(s)
	}

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		drained  atomic.Int64
		churned  atomic.Int64
		failOnce sync.Once
		failure  atomic.Pointer[string]
	)
	fail := func(msg string) {
		failOnce.Do(func() { failure.Store(&msg) })
	}

	// Drainers: each sweeps a shard of the subscription table,
	// consuming whatever is queued. TryNext (not Next) so a sweep never
	// parks on one queue while its shard's other queues fill.
	const nDrainers = 8
	for d := 0; d < nDrainers; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := d; i < nSubs; i += nDrainers {
					s := subs[i].Load()
					if s == nil {
						continue
					}
					for {
						if _, ok := s.TryNext(); !ok {
							break
						}
						drained.Add(1)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Churner: round-robin unsubscribe + resubscribe, racing close
	// against the feeder's push and the drainers' TryNext.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := i % nSubs
			old := subs[slot].Load()
			if !m.Unsubscribe(old.ID) {
				fail("Unsubscribe(" + old.ID + ") found nothing")
				return
			}
			s, err := m.Subscribe(queries[i%len(queries)], nil)
			if err != nil {
				fail("resubscribe: " + err.Error())
				return
			}
			subs[slot].Store(s)
			churned.Add(1)
		}
	}()

	// Feeder runs on the test goroutine (feed.step calls t.Fatalf):
	// air material and advance until the clock runs out.
	advances := 0
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		if msg := failure.Load(); msg != nil {
			break
		}
		feed.step(t, 0.5)
		m.Advance(context.Background())
		advances++
	}
	close(stop)
	wg.Wait()
	if msg := failure.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Teardown must leave nothing behind, and closed queues must report
	// closed rather than blocking.
	for i := range subs {
		s := subs[i].Load()
		if !m.Unsubscribe(s.ID) {
			t.Fatalf("final Unsubscribe(%s) found nothing", s.ID)
		}
		for {
			if _, ok := s.TryNext(); !ok {
				break
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("Next on closed subscription %s returned a notification", s.ID)
		}
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("%d subscriptions left after full teardown", got)
	}
	if advances == 0 || drained.Load() == 0 || churned.Load() == 0 {
		t.Fatalf("soak did no work: advances=%d drained=%d churned=%d",
			advances, drained.Load(), churned.Load())
	}
	t.Logf("soak: %s, %d advances, %d notifications drained, %d churns",
		dur, advances, drained.Load(), churned.Load())
}
