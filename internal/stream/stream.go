// Package stream manages standing COQL queries over live video
// ingestion: SUBSCRIBE registers a query, and every ingest batch the
// manager re-evaluates only the subscriptions whose kernel
// dependencies actually changed (per-BAT epochs decide), pushing each
// changed result set to its subscriber through a bounded drop-oldest
// queue.
//
// The delivery model is refresh-push: a notification carries the FULL
// current result set, rendered exactly as a one-shot COQL response at
// the same watermark, and is suppressed when identical to the
// previous push. Subscribers therefore never need to merge deltas —
// the latest notification IS the query result — and the streaming
// path's acceptance criterion (byte-identity with a one-shot query)
// holds at every watermark.
//
// Standing queries bypass the server's semantic result cache
// (internal/qcache) entirely: both layers key coherence off the same
// per-BAT epochs, but the cache is pull-based — an epoch mismatch is
// discovered at the next lookup — while subscriptions are push-based
// and must re-evaluate the moment the epoch moves. Sharing entries
// would let a standing query pin results the cache considers stale.
//
// Re-evaluation itself is incremental: each subscription owns a
// query.Incremental whose leaf caches restrict physical scans to rows
// appended since the previous evaluation (see that type for the
// equivalence argument). Every evaluation runs under its own
// "stream.eval" trace pushed to obs.DefaultTraces, so TRACEDUMP
// covers standing queries alongside one-shot ones.
package stream

import (
	"context"
	"fmt"
	"sync"

	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/query"
)

// Streaming metrics: standing-query count, how many re-evaluations the
// epoch gate admitted versus skipped, and delivery/drop volume.
var (
	gSubs    = obs.G("stream.subscriptions")
	cEvals   = obs.C("stream.evals")
	cSkipped = obs.C("stream.evals_skipped")
	cErrors  = obs.C("stream.eval.errors")
	cNotifs  = obs.C("stream.notifications")
	cDropped = obs.C("stream.dropped")
	hEvalLat = obs.H("stream.eval.latency")
)

// DefaultQueueCap bounds each subscriber's notification queue; when a
// slow consumer falls this far behind, the oldest pending notification
// is dropped (the newest one always supersedes it under refresh-push).
const DefaultQueueCap = 16

// Notification is one pushed update: the standing query's full result
// set at a watermark, rendered in the one-shot wire format.
type Notification struct {
	// SubID identifies the subscription.
	SubID string
	// Seq numbers this subscription's pushes from 1.
	Seq int
	// Watermark is the video duration the result was evaluated at.
	Watermark float64
	// Lines is the rendered result set (query.FormatResult per segment).
	Lines []string
}

// Subscription is one standing query with its bounded delivery queue.
// The manager is the only producer; the subscriber consumes with Next.
type Subscription struct {
	// ID is the manager-assigned subscription identifier.
	ID string
	// Query is the COQL source text.
	Query string
	// Owner tags the subscription with its creator (the server uses the
	// connection), so all of a disconnecting client's subscriptions can
	// be dropped together.
	Owner any

	inc  *query.Incremental
	deps []string

	// evalMu serializes re-evaluations of this subscription; the
	// Incremental's leaf caches are not concurrency-safe.
	evalMu    sync.Mutex
	epochs    map[string]uint64
	seq       int
	lastLines []string
	primed    bool

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Notification
	cap     int
	dropped int
	closed  bool
}

// push enqueues a notification, dropping the oldest pending one when
// the subscriber is more than cap notifications behind.
func (s *Subscription) push(n Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.cap {
		s.queue = s.queue[1:]
		s.dropped++
		cDropped.Inc()
	}
	s.queue = append(s.queue, n)
	s.cond.Signal()
}

// Next blocks until a notification is pending or the subscription is
// closed; ok=false means closed with nothing left to deliver.
func (s *Subscription) Next() (n Notification, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return Notification{}, false
	}
	n = s.queue[0]
	s.queue = s.queue[1:]
	return n, true
}

// TryNext is Next without blocking; ok=false means nothing pending
// right now (the subscription may still be live).
func (s *Subscription) TryNext() (n Notification, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Notification{}, false
	}
	n = s.queue[0]
	s.queue = s.queue[1:]
	return n, true
}

// Dropped returns how many notifications backpressure discarded.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Closed reports whether the subscription has been cancelled.
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// close wakes all Next waiters; pending notifications stay readable.
func (s *Subscription) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Manager owns the subscription table and drives re-evaluation. One
// manager serves one engine/catalog.
type Manager struct {
	eng *query.Engine

	// QueueCap is the per-subscription queue bound applied to new
	// subscriptions (DefaultQueueCap when zero).
	QueueCap int

	mu     sync.Mutex
	subs   map[string]*Subscription
	nextID int
}

// NewManager returns an empty subscription manager over the engine.
func NewManager(eng *query.Engine) *Manager {
	return &Manager{eng: eng, subs: map[string]*Subscription{}}
}

// Subscribe parses and registers a standing query, returning the live
// subscription. The first evaluation happens synchronously when the
// queried video already exists, so subscribers immediately receive the
// current result set as notification #1; on a video registered but not
// yet evaluable (e.g. a live feed that has not ticked), the first
// Advance delivers it instead.
func (m *Manager) Subscribe(src string, owner any) (*Subscription, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if _, err := m.eng.Catalog().Video(q.Video); err != nil {
		return nil, err
	}
	inc := query.NewIncremental(m.eng, q)
	m.mu.Lock()
	m.nextID++
	s := &Subscription{
		ID:    fmt.Sprintf("s%d", m.nextID),
		Query: src,
		Owner: owner,
		inc:   inc,
		deps:  inc.DepNames(),
		cap:   m.QueueCap,
	}
	if s.cap <= 0 {
		s.cap = DefaultQueueCap
	}
	s.cond = sync.NewCond(&s.mu)
	m.subs[s.ID] = s
	n := len(m.subs)
	m.mu.Unlock()
	gSubs.Set(int64(n))
	m.evaluate(context.Background(), s)
	return s, nil
}

// Unsubscribe cancels a subscription by ID.
func (m *Manager) Unsubscribe(id string) bool {
	m.mu.Lock()
	s, ok := m.subs[id]
	if ok {
		delete(m.subs, id)
	}
	n := len(m.subs)
	m.mu.Unlock()
	if !ok {
		return false
	}
	gSubs.Set(int64(n))
	s.close()
	return true
}

// UnsubscribeOwner cancels every subscription tagged with the owner
// (server connections call this on disconnect) and returns how many it
// removed.
func (m *Manager) UnsubscribeOwner(owner any) int {
	m.mu.Lock()
	var victims []*Subscription
	for id, s := range m.subs {
		if s.Owner == owner {
			delete(m.subs, id)
			victims = append(victims, s)
		}
	}
	n := len(m.subs)
	m.mu.Unlock()
	gSubs.Set(int64(n))
	for _, s := range victims {
		s.close()
	}
	return len(victims)
}

// Get returns a subscription by ID.
func (m *Manager) Get(id string) (*Subscription, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	return s, ok
}

// List returns the current subscriptions in unspecified order;
// callers needing a stable listing sort by ID.
func (m *Manager) List() []*Subscription {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Subscription, 0, len(m.subs))
	for _, s := range m.subs {
		out = append(out, s)
	}
	return out
}

// Advance re-evaluates standing queries after an ingest batch. Only
// subscriptions with a changed kernel dependency epoch are evaluated
// (the rest count as skips); evaluations fan out on the shared kernel
// pool. It returns how many notifications were pushed.
func (m *Manager) Advance(ctx context.Context) int {
	subs := m.List()
	if len(subs) == 0 {
		return 0
	}
	pushed := make([]int, len(subs))
	batch := monet.DefaultPool().Batch()
	for i, s := range subs {
		i, s := i, s
		batch.Submit(func() {
			if m.evaluate(ctx, s) {
				pushed[i] = 1
			}
		})
	}
	batch.Wait()
	total := 0
	for _, p := range pushed {
		total += p
	}
	return total
}

// evaluate runs one epoch-gated incremental evaluation of a
// subscription, reporting whether a notification was pushed.
func (m *Manager) evaluate(ctx context.Context, s *Subscription) bool {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if s.Closed() {
		return false
	}
	store := m.eng.Catalog().Store()
	epochs := make(map[string]uint64, len(s.deps))
	changed := !s.primed
	for _, dep := range s.deps {
		_, ep := store.Watermark(dep)
		epochs[dep] = ep
		if s.epochs[dep] != ep {
			changed = true
		}
	}
	if !changed {
		cSkipped.Inc()
		return false
	}

	root := obs.StartTrace("stream.eval")
	root.SetAttr("level", "conceptual")
	root.SetAttr("query", s.Query)
	root.SetAttr("subscription", s.ID)
	cEvals.Inc()
	res, err := s.inc.Eval(obs.ContextWithSpan(ctx, root), root)
	errStr := ""
	if err != nil {
		cErrors.Inc()
		errStr = err.Error()
		root.SetAttr("error", errStr)
	}
	stat := root.Resources().Stat()
	d := root.Finish()
	hEvalLat.Observe(d)
	obs.DefaultTraces.Add(obs.Trace{
		ID:       root.TraceID(),
		Query:    "SUBSCRIBE[" + s.ID + "] " + s.Query,
		Start:    root.StartTime(),
		Duration: d,
		Err:      errStr,
		Res:      stat,
		Root:     root,
	})
	if err != nil {
		// Leave the subscription un-primed so the next Advance retries
		// even if no epoch moves (e.g. a feed series that appears later).
		return false
	}

	lines := make([]string, len(res))
	for i, r := range res {
		lines[i] = query.FormatResult(r)
	}
	s.epochs = epochs
	if s.primed && equalLines(lines, s.lastLines) {
		return false
	}
	s.primed = true
	s.lastLines = lines
	s.seq++
	w := 0.0
	if v, err := m.eng.Catalog().Video(s.inc.Query().Video); err == nil {
		w = v.Duration
	}
	s.push(Notification{SubID: s.ID, Seq: s.seq, Watermark: w, Lines: lines})
	cNotifs.Inc()
	return true
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
