package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/query"
)

// testFeed drives a live catalog directly — events, feature samples
// and the duration watermark — without the full synthetic-race
// extraction pipeline, keeping these tests fast under -race. The
// realistic feed path is covered by the query package's equivalence
// test and the server's end-to-end acceptance test.
type testFeed struct {
	cat *cobra.Catalog
	w   float64
	n   int
}

const testVideo = "live-gp"

func fixture(t *testing.T) (*Manager, *testFeed, *query.Engine) {
	t.Helper()
	cat := cobra.NewCatalog(monet.NewStore())
	if err := cat.PutVideo(cobra.Video{Name: testVideo, Duration: 0.1, FPS: 10}); err != nil {
		t.Fatalf("PutVideo: %v", err)
	}
	if err := cat.SetLive(testVideo, true); err != nil {
		t.Fatalf("SetLive: %v", err)
	}
	eng := query.NewEngine(cobra.NewPreprocessor(cat))
	return NewManager(eng), &testFeed{cat: cat}, eng
}

// step airs dt more seconds: one fresh "passing" event, a pitstop
// every third step, 10 Hz "motion" samples alternating above/below
// 0.5 per step, then the watermark move.
func (f *testFeed) step(t *testing.T, dt float64) {
	t.Helper()
	f.n++
	from := f.w
	f.w += dt
	evs := []cobra.Event{{
		Video: testVideo, Type: "passing", Confidence: 1,
		Interval: cobra.Interval{Start: from, End: f.w},
		Attrs:    map[string]string{"driver": fmt.Sprintf("D%d", f.n)},
	}}
	if f.n%3 == 0 {
		evs = append(evs, cobra.Event{
			Video: testVideo, Type: "pitstop", Confidence: 1,
			Interval: cobra.Interval{Start: from, End: from + 1},
		})
	}
	if _, err := f.cat.AppendEvents(testVideo, evs); err != nil {
		t.Fatalf("AppendEvents: %v", err)
	}
	val := 0.9
	if f.n%2 == 0 {
		val = 0.1
	}
	samples := make([]float64, int(dt*10+0.5))
	for i := range samples {
		samples[i] = val
	}
	if _, err := f.cat.AppendFeatureSamples(testVideo, "motion", 10, samples); err != nil {
		t.Fatalf("AppendFeatureSamples: %v", err)
	}
	if err := f.cat.SetDuration(testVideo, f.w); err != nil {
		t.Fatalf("SetDuration: %v", err)
	}
}

// drain consumes every currently pending notification.
func drain(s *Subscription) []Notification {
	var out []Notification
	for {
		n, ok := s.TryNext()
		if !ok {
			return out
		}
		out = append(out, n)
	}
}

// TestRefreshPushMatchesOneShot subscribes before any material airs,
// ingests, and checks that every notification's lines are exactly what
// a one-shot execution returns at the same watermark.
func TestRefreshPushMatchesOneShot(t *testing.T) {
	m, feed, eng := fixture(t)
	src := "SELECT SEGMENTS FROM live-gp WHERE EVENT('passing') AND FEATURE('motion') > 0.5"
	sub, err := m.Subscribe(src, nil)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// The initial snapshot errors internally (the motion series does not
	// exist yet) so nothing is pushed; the first Advance retries.
	if init := drain(sub); len(init) != 0 {
		t.Fatalf("unexpected initial notifications: %+v", init)
	}
	q, _ := query.Parse(src)
	total := 0
	for i := 0; i < 12; i++ {
		feed.step(t, 2.0)
		m.Advance(context.Background())
		for _, n := range drain(sub) {
			total++
			want, err := eng.Execute(q)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			// The single-threaded loop drains after every Advance, so each
			// pushed notification was evaluated at the current watermark
			// and is directly comparable to a one-shot execution.
			if len(n.Lines) != len(want) {
				t.Fatalf("seq %d: %d lines, one-shot has %d", n.Seq, len(n.Lines), len(want))
			}
			for j, r := range want {
				if n.Lines[j] != query.FormatResult(r) {
					t.Fatalf("seq %d line %d: %q != one-shot %q", n.Seq, j, n.Lines[j], query.FormatResult(r))
				}
			}
			if n.Watermark != feed.w {
				t.Fatalf("seq %d watermark %g, feed at %g", n.Seq, n.Watermark, feed.w)
			}
		}
	}
	if total == 0 {
		t.Fatal("no notifications pushed over a whole ingest")
	}
}

// TestEpochGateSkipsUnchanged verifies that advancing with no appends
// skips re-evaluation entirely.
func TestEpochGateSkipsUnchanged(t *testing.T) {
	m, feed, _ := fixture(t)
	feed.step(t, 2.0)
	sub, err := m.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')", nil)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	drain(sub)
	before := cSkipped.Value()
	for i := 0; i < 3; i++ {
		if n := m.Advance(context.Background()); n != 0 {
			t.Fatalf("Advance with no appends pushed %d notifications", n)
		}
	}
	if got := cSkipped.Value() - before; got != 3 {
		t.Fatalf("expected 3 skipped evals, got %d", got)
	}
	if len(drain(sub)) != 0 {
		t.Fatal("notifications queued without any data change")
	}
}

// TestFanOutDeterminism subscribes many subscribers to the same query
// and checks every one receives the identical notification sequence.
func TestFanOutDeterminism(t *testing.T) {
	m, feed, _ := fixture(t)
	const n = 16
	src := "SELECT SEGMENTS FROM live-gp WHERE EVENT('passing') LAST 10 S"
	subs := make([]*Subscription, n)
	for i := range subs {
		s, err := m.Subscribe(src, nil)
		if err != nil {
			t.Fatalf("Subscribe %d: %v", i, err)
		}
		subs[i] = s
	}
	got := make([][]Notification, n)
	var wg sync.WaitGroup
	for i, s := range subs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				notif, ok := s.Next()
				if !ok {
					return
				}
				got[i] = append(got[i], notif)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		feed.step(t, 2.0)
		m.Advance(context.Background())
	}
	for _, s := range subs {
		m.Unsubscribe(s.ID)
	}
	wg.Wait()
	if len(got[0]) == 0 {
		t.Fatal("no notifications delivered")
	}
	for i := 1; i < n; i++ {
		if len(got[i]) != len(got[0]) {
			t.Fatalf("subscriber %d got %d notifications, subscriber 0 got %d", i, len(got[i]), len(got[0]))
		}
		for j := range got[i] {
			a, b := got[i][j], got[0][j]
			if a.Seq != b.Seq || a.Watermark != b.Watermark || !equalLines(a.Lines, b.Lines) {
				t.Fatalf("subscriber %d notification %d differs from subscriber 0", i, j)
			}
		}
	}
}

// TestBoundedQueueDropsOldest pushes past the queue bound with no
// consumer and checks drop-oldest semantics and drop accounting.
func TestBoundedQueueDropsOldest(t *testing.T) {
	s := &Subscription{ID: "s1", cap: 4}
	s.cond = sync.NewCond(&s.mu)
	for i := 1; i <= 10; i++ {
		s.push(Notification{SubID: "s1", Seq: i})
	}
	if d := s.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	var seqs []int
	for {
		n, ok := s.TryNext()
		if !ok {
			break
		}
		seqs = append(seqs, n.Seq)
	}
	if fmt.Sprint(seqs) != "[7 8 9 10]" {
		t.Fatalf("surviving seqs = %v, want the newest four", seqs)
	}
}

// TestSlowSubscriberIsBounded runs a real ingest with no consumer and
// checks the queue stays bounded while drops are accounted.
func TestSlowSubscriberIsBounded(t *testing.T) {
	m, feed, _ := fixture(t)
	m.QueueCap = 3
	sub, err := m.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')", nil)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < 10; i++ {
		feed.step(t, 1.0)
		m.Advance(context.Background())
	}
	pending := drain(sub)
	if len(pending) > 3 {
		t.Fatalf("queue grew to %d, bound is 3", len(pending))
	}
	// 11 pushes happened (initial snapshot + one per changed step); all
	// but the surviving tail were dropped oldest-first.
	if got := sub.Dropped() + len(pending); got != 11 {
		t.Fatalf("dropped+delivered = %d, want 11", got)
	}
	last := pending[len(pending)-1]
	if last.Seq != 11 {
		t.Fatalf("newest surviving seq = %d, want 11", last.Seq)
	}
}

// TestUnsubscribeDuringIngest races UNSUBSCRIBE against a running
// ingest/advance loop; under -race this exercises the close-vs-push
// and close-vs-Next interleavings.
func TestUnsubscribeDuringIngest(t *testing.T) {
	m, feed, _ := fixture(t)
	const n = 12
	subs := make([]*Subscription, n)
	for i := range subs {
		s, err := m.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')", nil)
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		subs[i] = s
	}
	var wg sync.WaitGroup
	for _, s := range subs {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := s.Next(); !ok {
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			feed.step(t, 1.0)
			m.Advance(context.Background())
		}
	}()
	for _, s := range subs {
		if !m.Unsubscribe(s.ID) {
			t.Fatalf("Unsubscribe(%s) found nothing", s.ID)
		}
	}
	if m.Unsubscribe(subs[0].ID) {
		t.Fatal("double Unsubscribe succeeded")
	}
	<-done
	wg.Wait()
	if got := len(m.List()); got != 0 {
		t.Fatalf("%d subscriptions left after unsubscribing all", got)
	}
}

// TestUnsubscribeOwner checks connection-scoped cleanup.
func TestUnsubscribeOwner(t *testing.T) {
	m, feed, _ := fixture(t)
	feed.step(t, 2.0)
	type conn struct{ name string }
	a, b := &conn{"a"}, &conn{"b"}
	for i := 0; i < 3; i++ {
		if _, err := m.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')", a); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	sb, err := m.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')", b)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if got := m.UnsubscribeOwner(a); got != 3 {
		t.Fatalf("UnsubscribeOwner removed %d, want 3", got)
	}
	if sb.Closed() {
		t.Fatal("other owner's subscription was closed")
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("%d subscriptions left, want 1", got)
	}
}

// TestSubscribeErrors pins the error surface: bad COQL and unknown
// videos are rejected at SUBSCRIBE time.
func TestSubscribeErrors(t *testing.T) {
	m, _, _ := fixture(t)
	if _, err := m.Subscribe("SELECT NONSENSE", nil); err == nil {
		t.Fatal("bad COQL accepted")
	}
	if _, err := m.Subscribe("SELECT SEGMENTS FROM no-such-video", nil); err == nil {
		t.Fatal("unknown video accepted")
	}
}
