// Package admit is the serving layer's admission controller. It
// bounds how much heavy work a cobra server accepts at once — three
// independent brakes, applied in order:
//
//  1. a global in-flight ceiling (MaxInFlight): at most N heavy
//     requests execute concurrently;
//  2. a bounded wait queue (MaxQueue): up to M more may wait for a
//     slot, and anything beyond that is shed immediately;
//  3. per-tenant token buckets (Rate/Burst): a single chatty client
//     cannot monopolize the slots the ceiling grants.
//
// A shed request costs the server one map lookup and one wire frame
// (the BUSY response) — it never occupies a kernel pool worker, never
// allocates a result buffer, never queues behind real work. That is
// the point: under overload the server degrades by answering "come
// back later" cheaply instead of slowly answering everyone.
//
// Zero values disable each brake (0 = unlimited), so an
// unconfigured controller admits everything and costs two atomic
// operations per request.
package admit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cobra/internal/obs"
)

// Admission metrics: admitted/shed/rate_limited count terminal
// decisions; queued counts admissions that had to wait for a slot
// first; inflight gauges current occupancy. A rising shed rate with a
// flat inflight gauge means the ceiling is set below the hardware's
// capacity — or the cache hit rate collapsed.
var (
	cAdmitted = obs.C("admit.admitted")
	cQueued   = obs.C("admit.queued")
	cShed     = obs.C("admit.shed")
	cRated    = obs.C("admit.rate_limited")
	gInflight = obs.G("admit.inflight")
)

// ErrBusy is the sentinel for a shed request. The server maps it (and
// any error wrapping it) to a BUSY wire response so clients can
// distinguish "overloaded, retry later" from a real failure.
var ErrBusy = errors.New("busy")

// Config bounds one Controller. Zero values mean unlimited.
type Config struct {
	// MaxInFlight caps concurrently executing heavy requests.
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot; arrivals
	// beyond MaxInFlight+MaxQueue are shed immediately.
	MaxQueue int
	// Rate is the per-tenant sustained request rate (tokens per
	// second); Burst is the bucket depth. Both must be set for rate
	// limiting to engage.
	Rate  float64
	Burst int
}

// Controller applies a Config to a request stream. It is safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	queued   int

	tmu     sync.Mutex
	buckets map[string]*bucket

	// now is the clock, swappable by tests.
	now func() time.Time
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// New returns a Controller enforcing cfg.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg, buckets: map[string]*bucket{}, now: time.Now}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Acquire asks to run one heavy request for tenant. On admission it
// returns a release func that MUST be called exactly once when the
// request finishes. On rejection it returns an error wrapping ErrBusy
// whose text names the brake that fired; the caller should answer
// BUSY and move on without executing anything.
func (c *Controller) Acquire(tenant string) (release func(), err error) {
	if c.cfg.Rate > 0 && c.cfg.Burst > 0 && !c.takeToken(tenant) {
		cRated.Inc()
		cShed.Inc()
		return nil, fmt.Errorf("%w: rate limit exceeded for %q", ErrBusy, tenant)
	}
	if c.cfg.MaxInFlight <= 0 {
		c.mu.Lock()
		c.inflight++
		gInflight.Set(int64(c.inflight))
		c.mu.Unlock()
		cAdmitted.Inc()
		return c.release, nil
	}
	c.mu.Lock()
	if c.inflight >= c.cfg.MaxInFlight {
		if c.queued >= c.cfg.MaxQueue {
			c.mu.Unlock()
			cShed.Inc()
			return nil, fmt.Errorf("%w: %d in flight, queue full", ErrBusy, c.cfg.MaxInFlight)
		}
		c.queued++
		cQueued.Inc()
		for c.inflight >= c.cfg.MaxInFlight {
			c.cond.Wait()
		}
		c.queued--
	}
	c.inflight++
	gInflight.Set(int64(c.inflight))
	c.mu.Unlock()
	cAdmitted.Inc()
	return c.release, nil
}

// release returns an in-flight slot and wakes one queued waiter.
func (c *Controller) release() {
	c.mu.Lock()
	c.inflight--
	gInflight.Set(int64(c.inflight))
	c.mu.Unlock()
	c.cond.Signal()
}

// takeToken debits tenant's bucket, refilling by elapsed time first.
func (c *Controller) takeToken(tenant string) bool {
	now := c.now()
	c.tmu.Lock()
	defer c.tmu.Unlock()
	b, ok := c.buckets[tenant]
	if !ok {
		b = &bucket{tokens: float64(c.cfg.Burst), last: now}
		c.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * c.cfg.Rate
	if max := float64(c.cfg.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Stats is a point-in-time snapshot of the controller's occupancy.
type Stats struct {
	InFlight, Queued      int
	MaxInFlight, MaxQueue int
	Rate                  float64
	Burst                 int
}

// Stats snapshots current occupancy and configuration.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		InFlight:    c.inflight,
		Queued:      c.queued,
		MaxInFlight: c.cfg.MaxInFlight,
		MaxQueue:    c.cfg.MaxQueue,
		Rate:        c.cfg.Rate,
		Burst:       c.cfg.Burst,
	}
}
