package admit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnlimitedAdmitsEverything(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 100; i++ {
		rel, err := c.Acquire("t")
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
	}
	if st := c.Stats(); st.InFlight != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInFlightCeilingSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	r1, err := c.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	// MaxQueue is 0: the third arrival is shed immediately, not queued.
	if _, err := c.Acquire("t"); !errors.Is(err, ErrBusy) {
		t.Fatalf("third Acquire err = %v, want ErrBusy", err)
	}
	r1()
	r3, err := c.Acquire("t")
	if err != nil {
		t.Fatalf("slot not returned on release: %v", err)
	}
	r3()
	r2()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueAdmitsAfterRelease(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 1})
	r1, err := c.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		rel, err := c.Acquire("t")
		if err != nil {
			t.Error(err)
			admitted <- func() {}
			return
		}
		admitted <- rel
	}()
	// Wait until the second request is actually queued, then verify a
	// third is shed (queue full) while the second still waits.
	for {
		if st := c.Stats(); st.Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Acquire("t"); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-queue Acquire err = %v, want ErrBusy", err)
	}
	r1()
	rel := <-admitted
	rel()
	if st := c.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimitPerTenant(t *testing.T) {
	c := New(Config{Rate: 1, Burst: 2})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	// Burst of 2 admits two back-to-back requests, then the bucket is dry.
	for i := 0; i < 2; i++ {
		rel, err := c.Acquire("a")
		if err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
		rel()
	}
	if _, err := c.Acquire("a"); !errors.Is(err, ErrBusy) {
		t.Fatalf("dry bucket err = %v, want ErrBusy", err)
	}
	// Another tenant has its own bucket.
	if rel, err := c.Acquire("b"); err != nil {
		t.Fatalf("tenant isolation broken: %v", err)
	} else {
		rel()
	}
	// A second of refill buys one more token.
	now = now.Add(time.Second)
	if rel, err := c.Acquire("a"); err != nil {
		t.Fatalf("refill did not admit: %v", err)
	} else {
		rel()
	}
	if _, err := c.Acquire("a"); !errors.Is(err, ErrBusy) {
		t.Fatal("refill over-credited")
	}
}

func TestBurstCapsRefill(t *testing.T) {
	c := New(Config{Rate: 100, Burst: 3})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	rel, _ := c.Acquire("a")
	rel()
	// An hour idle refills to Burst, not Rate*3600.
	now = now.Add(time.Hour)
	admitted := 0
	for {
		rel, err := c.Acquire("a")
		if err != nil {
			break
		}
		rel()
		admitted++
		if admitted > 10 {
			t.Fatal("bucket refilled past burst")
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after idle, want burst of 3", admitted)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	c := New(Config{MaxInFlight: 4, MaxQueue: 64})
	var peak atomic.Int64
	var cur atomic.Int64
	var shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire("t")
			if err != nil {
				shed.Add(1)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			cur.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("ceiling breached: peak inflight %d", p)
	}
	if shed.Load() != 0 {
		t.Fatalf("%d shed with a big queue", shed.Load())
	}
	if st := c.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
