// Package video implements the paper's visual analysis (§5.3): frame
// representation, color histograms, multi-frame histogram shot
// detection, motion estimation (pixel color difference and block
// motion histograms), the red-rectangle semaphore detector for race
// starts, sand/dust color filtering for fly-outs, and DVE (digital
// video effect) detection for replay scenes.
package video

import "fmt"

// Frame is an interleaved 8-bit RGB image, quarter-PAL sized in the
// paper (384x288).
type Frame struct {
	W, H int
	Pix  []byte // len = W*H*3, row-major RGB
}

// NewFrame allocates a black frame of the given dimensions.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) (r, g, b byte) {
	i := (y*f.W + x) * 3
	return f.Pix[i], f.Pix[i+1], f.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, r, g, b byte) {
	i := (y*f.W + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
}

// Fill sets every pixel to the given color.
func (f *Frame) Fill(r, g, b byte) {
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
	}
}

// FillRect fills the axis-aligned rectangle [x0,x1)x[y0,y1), clipped to
// the frame.
func (f *Frame) FillRect(x0, y0, x1, y1 int, r, g, b byte) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, r, g, b)
		}
	}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := NewFrame(f.W, f.H)
	copy(out.Pix, f.Pix)
	return out
}

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []byte
}

// ToGray converts the frame to grayscale using the Rec.601 luma
// weights.
func (f *Frame) ToGray() *Gray {
	g := &Gray{W: f.W, H: f.H, Pix: make([]byte, f.W*f.H)}
	for i, j := 0, 0; i < len(f.Pix); i, j = i+3, j+1 {
		r, gg, b := int(f.Pix[i]), int(f.Pix[i+1]), int(f.Pix[i+2])
		g.Pix[j] = byte((299*r + 587*gg + 114*b) / 1000)
	}
	return g
}

// Downsample returns the image reduced by the integer factor using box
// averaging.
func (g *Gray) Downsample(factor int) *Gray {
	if factor <= 1 {
		return g
	}
	w, h := g.W/factor, g.H/factor
	out := &Gray{W: w, H: h, Pix: make([]byte, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum, n := 0, 0
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sum += int(g.Pix[(y*factor+dy)*g.W+(x*factor+dx)])
					n++
				}
			}
			out.Pix[y*w+x] = byte(sum / n)
		}
	}
	return out
}

// At returns the gray value at (x, y).
func (g *Gray) At(x, y int) byte { return g.Pix[y*g.W+x] }
