package video

import "math"

// SemaphoreFeature describes the start-light detection result for one
// frame.
type SemaphoreFeature struct {
	// Present reports whether a plausible semaphore rectangle was found.
	Present bool
	// Width and Height are the bounding-box dimensions in pixels.
	Width, Height int
	// Fill is the fraction of bounding-box pixels that are red.
	Fill float64
}

// isRed reports whether a pixel passes the red-component filter the
// paper uses for the semaphore ("filtering the red component of the
// RGB color representation").
func isRed(r, g, b byte) bool {
	return r > 150 && int(r) > int(g)*2 && int(r) > int(b)*2
}

// DetectSemaphore scans the upper part of the frame for a compact red
// rectangular region: the start semaphore, whose red circles are so
// close they merge into a rectangle (§5.3).
func DetectSemaphore(f *Frame) SemaphoreFeature {
	minX, minY := f.W, f.H
	maxX, maxY := -1, -1
	count := 0
	// The semaphore gantry hangs high over the grid: only the upper
	// third of the picture qualifies, which keeps red cars on the track
	// from mimicking it.
	for y := 0; y < f.H/3; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			if isRed(r, g, b) {
				count++
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
			}
		}
	}
	if maxX < 0 {
		return SemaphoreFeature{}
	}
	w, h := maxX-minX+1, maxY-minY+1
	fill := float64(count) / float64(w*h)
	// A semaphore is a wide, well-filled box of meaningful size.
	present := w >= 8 && h >= 3 && w >= h && fill > 0.5 &&
		count > f.W*f.H/2000
	return SemaphoreFeature{Present: present, Width: w, Height: h, Fill: fill}
}

// SemaphoreTracker follows the semaphore's horizontal growth over
// frames. The paper notes the rectangle "is increasing its horizontal
// dimension in regular time intervals"; regular growth followed by
// disappearance marks the start.
type SemaphoreTracker struct {
	widths []int
	// StartSignal becomes true on the frame where a tracked, growing
	// semaphore disappears (lights out — go!).
	StartSignal bool
}

// Feed processes the semaphore feature of the next frame and returns
// the current start-signal state.
func (t *SemaphoreTracker) Feed(s SemaphoreFeature) bool {
	t.StartSignal = false
	if s.Present {
		t.widths = append(t.widths, s.Width)
		return false
	}
	if len(t.widths) >= 3 && grewMonotonically(t.widths) {
		t.StartSignal = true
	}
	t.widths = t.widths[:0]
	return t.StartSignal
}

// grewMonotonically reports whether the width series is (weakly)
// non-decreasing and ends wider than it began.
func grewMonotonically(w []int) bool {
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1]-1 { // tolerate one pixel of jitter
			return false
		}
	}
	return w[len(w)-1] > w[0]
}

// SandDustFeature holds the fly-out color cues.
type SandDustFeature struct {
	// SandFraction is the fraction of pixels passing the sand filter.
	SandFraction float64
	// DustFraction is the fraction of pixels passing the dust filter.
	DustFraction float64
}

// isSand matches the yellowish-brown of gravel traps.
func isSand(r, g, b byte) bool {
	return r > 140 && r < 240 &&
		int(g) > int(r)*6/10 && int(g) < int(r)*95/100 &&
		int(b) < int(g)*8/10
}

// isDust matches the brighter gray-brown of a dust cloud.
func isDust(r, g, b byte) bool {
	ri, gi, bi := int(r), int(g), int(b)
	avg := (ri + gi + bi) / 3
	if avg < 120 || avg > 230 {
		return false
	}
	// Near-neutral with a warm cast.
	return abs(ri-gi) < 30 && gi > bi && gi-bi < 60 && ri >= gi
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DetectSandDust computes the fly-out color fractions over the whole
// frame (§5.3: "fly outs usually come with a lot of sand and dust").
func DetectSandDust(f *Frame) SandDustFeature {
	sand, dust := 0, 0
	n := f.W * f.H
	for i := 0; i < len(f.Pix); i += 3 {
		r, g, b := f.Pix[i], f.Pix[i+1], f.Pix[i+2]
		if isSand(r, g, b) {
			sand++
		} else if isDust(r, g, b) {
			dust++
		}
	}
	return SandDustFeature{
		SandFraction: float64(sand) / float64(n),
		DustFraction: float64(dust) / float64(n),
	}
}

// FlyOutProbability maps sand/dust fractions to the fly-out cue used
// by the probabilistic network.
func FlyOutProbability(sd SandDustFeature) float64 {
	p := 4*sd.SandFraction + 6*sd.DustFraction
	if p > 1 {
		p = 1
	}
	return p
}

// DVEDetector finds digital video effects — the wipes that bracket
// replay scenes. The paper uses an algorithm "based on motion flow and
// pattern matching": a wipe produces a compact high-residual band in
// the motion field that sweeps monotonically across the picture.
type DVEDetector struct {
	// Threshold is the per-column mean SAD above which a column is
	// considered part of the wipe front.
	Threshold float64
	// MinRun is the number of consecutive frames the front must sweep.
	MinRun int

	fronts []int // recent front positions; -1 when absent
	// Events records frame indices at which a completed DVE ended.
	Events []int
	frame  int
}

// NewDVEDetector returns a detector with calibrated defaults.
func NewDVEDetector() *DVEDetector {
	return &DVEDetector{Threshold: 6, MinRun: 4}
}

// Feed processes the motion field between the previous and current
// frame; it returns true when a completed DVE is recognized.
func (d *DVEDetector) Feed(mf *MotionField) bool {
	front := wipeFront(mf, d.Threshold)
	d.frame++
	detected := false
	if front >= 0 {
		d.fronts = append(d.fronts, front)
	} else {
		if len(d.fronts) >= d.MinRun && monotonicFront(d.fronts) {
			d.Events = append(d.Events, d.frame-1)
			detected = true
		}
		d.fronts = d.fronts[:0]
	}
	return detected
}

// wipeFront returns the block column with maximal residual if the
// residual is concentrated in a narrow band, else -1.
func wipeFront(mf *MotionField, threshold float64) int {
	cols := make([]float64, mf.BlocksX)
	for y := 0; y < mf.BlocksY; y++ {
		for x := 0; x < mf.BlocksX; x++ {
			cols[x] += mf.ZeroSADs[y*mf.BlocksX+x]
		}
	}
	for x := range cols {
		cols[x] /= float64(mf.BlocksY)
	}
	bestX, bestV := -1, threshold
	total, above := 0.0, 0
	for x, v := range cols {
		total += v
		if v > threshold {
			above++
		}
		if v > bestV {
			bestX, bestV = x, v
		}
	}
	if bestX < 0 {
		return -1
	}
	// The band must be narrow (wipe front), not global (cut/action).
	if above > mf.BlocksX/2 {
		return -1
	}
	// And it must dominate the average clearly.
	if bestV < 2*total/float64(len(cols)) {
		return -1
	}
	return bestX
}

// monotonicFront reports whether front positions sweep decisively in
// one direction: single-block jitter reversals are tolerated (camera
// shake), larger reversals are not, and the net sweep must cover at
// least three block columns.
func monotonicFront(fs []int) bool {
	if len(fs) < 2 {
		return false
	}
	net := fs[len(fs)-1] - fs[0]
	if abs(net) < 3 {
		return false
	}
	dir := 1
	if net < 0 {
		dir = -1
	}
	for i := 1; i < len(fs); i++ {
		d := (fs[i] - fs[i-1]) * dir
		if d < -1 {
			return false
		}
	}
	return true
}

// ReplayDetector pairs DVE events into replay segments: a replay is
// bracketed by two DVEs within a plausible duration window (§5.3).
type ReplayDetector struct {
	// MinFrames and MaxFrames bound the replay length in frames.
	MinFrames, MaxFrames int
	pending              int // frame of the unmatched opening DVE, -1 if none
	// Segments collects [start, end) frame intervals of replays.
	Segments [][2]int
}

// NewReplayDetector returns a detector for 10 fps feature streams:
// replays run a few seconds to ~40 s.
func NewReplayDetector() *ReplayDetector {
	return &ReplayDetector{MinFrames: 20, MaxFrames: 400, pending: -1}
}

// FeedDVE registers a DVE at the given frame index.
func (r *ReplayDetector) FeedDVE(frame int) {
	if r.pending < 0 {
		r.pending = frame
		return
	}
	length := frame - r.pending
	if length >= r.MinFrames && length <= r.MaxFrames {
		r.Segments = append(r.Segments, [2]int{r.pending, frame})
		r.pending = -1
		return
	}
	// Too short or too long: treat this DVE as a new opening.
	r.pending = frame
}

// ReplayProbability returns per-frame replay likelihood over total
// frames given detected segments (1 inside a segment, 0 outside, with
// soft 2-frame shoulders).
func ReplayProbability(segments [][2]int, total int) []float64 {
	out := make([]float64, total)
	for _, s := range segments {
		for f := s[0]; f < s[1] && f < total; f++ {
			if f >= 0 {
				out[f] = 1
			}
		}
		for d := 1; d <= 2; d++ {
			if s[0]-d >= 0 && s[0]-d < total {
				out[s[0]-d] = math.Max(out[s[0]-d], 1-0.4*float64(d))
			}
			if s[1]+d-1 >= 0 && s[1]+d-1 < total {
				out[s[1]+d-1] = math.Max(out[s[1]+d-1], 1-0.4*float64(d))
			}
		}
	}
	return out
}
