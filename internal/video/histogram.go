package video

import "math"

// histBins is the per-channel bin count of the color histogram.
const histBins = 8

// Histogram is a normalized RGB color histogram with 8 bins per
// channel (512 cells).
type Histogram [histBins * histBins * histBins]float64

// ColorHistogram computes the frame's normalized color histogram.
func ColorHistogram(f *Frame) *Histogram {
	var h Histogram
	n := f.W * f.H
	for i := 0; i < len(f.Pix); i += 3 {
		r := int(f.Pix[i]) * histBins / 256
		g := int(f.Pix[i+1]) * histBins / 256
		b := int(f.Pix[i+2]) * histBins / 256
		h[(r*histBins+g)*histBins+b]++
	}
	inv := 1 / float64(n)
	for i := range h {
		h[i] *= inv
	}
	return &h
}

// Diff returns the L1 distance between two histograms, in [0, 2].
func (h *Histogram) Diff(other *Histogram) float64 {
	d := 0.0
	for i := range h {
		d += math.Abs(h[i] - other[i])
	}
	return d
}

// ShotDetectorConfig parameterizes histogram-based shot detection.
type ShotDetectorConfig struct {
	// Window is the number of preceding frames whose mean histogram the
	// current frame is compared against; the paper modifies the simple
	// algorithm to difference "among several consecutive frames".
	Window int
	// Threshold is the L1 histogram distance that declares a boundary.
	Threshold float64
	// MinShotLen is the minimum number of frames between boundaries.
	MinShotLen int
}

// DefaultShotConfig returns parameters that detect hard cuts reliably
// at 10 fps feature sampling.
func DefaultShotConfig() ShotDetectorConfig {
	return ShotDetectorConfig{Window: 3, Threshold: 0.33, MinShotLen: 5}
}

// ShotDetector finds shot boundaries by comparing each frame's color
// histogram against the running mean of the previous Window frames.
type ShotDetector struct {
	cfg     ShotDetectorConfig
	history []*Histogram
	frameNo int
	lastCut int
	// Boundaries collects the frame indices at which new shots begin.
	Boundaries []int
	// Diffs records the histogram distance per frame (diagnostics).
	Diffs []float64
}

// NewShotDetector returns a detector with the given configuration.
func NewShotDetector(cfg ShotDetectorConfig) *ShotDetector {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultShotConfig().Threshold
	}
	return &ShotDetector{cfg: cfg, lastCut: -1 << 30}
}

// Feed processes the next frame and reports whether a shot boundary
// begins at it.
func (d *ShotDetector) Feed(f *Frame) bool {
	h := ColorHistogram(f)
	cut := false
	if len(d.history) > 0 {
		var mean Histogram
		for _, past := range d.history {
			for i := range mean {
				mean[i] += past[i]
			}
		}
		inv := 1 / float64(len(d.history))
		for i := range mean {
			mean[i] *= inv
		}
		diff := h.Diff(&mean)
		d.Diffs = append(d.Diffs, diff)
		if diff > d.cfg.Threshold && d.frameNo-d.lastCut >= d.cfg.MinShotLen {
			d.Boundaries = append(d.Boundaries, d.frameNo)
			d.lastCut = d.frameNo
			cut = true
			d.history = d.history[:0] // restart context in the new shot
		}
	} else {
		d.Diffs = append(d.Diffs, 0)
	}
	d.history = append(d.history, h)
	if len(d.history) > d.cfg.Window {
		d.history = d.history[1:]
	}
	d.frameNo++
	return cut
}

// Shots converts the boundary list into [start, end) frame intervals
// over a sequence of total frames.
func (d *ShotDetector) Shots(total int) [][2]int {
	var shots [][2]int
	prev := 0
	for _, b := range d.Boundaries {
		if b > prev {
			shots = append(shots, [2]int{prev, b})
		}
		prev = b
	}
	if total > prev {
		shots = append(shots, [2]int{prev, total})
	}
	return shots
}
