package video

import "math"

// MotionAmount returns the mean absolute pixel color difference
// between two frames, normalized to [0, 1]; the paper's start-detection
// motion cue ("pixel color difference between two consecutive frames").
func MotionAmount(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		return 1
	}
	sum := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix)) / 255
}

// MotionVector is a block displacement in downsampled pixels.
type MotionVector struct{ DX, DY int }

// MotionField estimates per-block motion between two frames by SAD
// block matching on 4x-downsampled grayscale with a ±search window.
type MotionField struct {
	BlocksX, BlocksY int
	Vectors          []MotionVector
	// SADs holds the per-block residual of the best match (diagnostic
	// for DVE detection: wipes leave high residual bands).
	SADs []float64
	// ZeroSADs holds the per-block zero-shift residual, used by the DVE
	// detector: a wipe front cannot be motion-compensated, so its
	// uncompensated residual stands out.
	ZeroSADs []float64
	// Reliable marks blocks whose best match beats the zero-shift match
	// by a clear margin; textureless blocks produce arbitrary vectors
	// and are treated as static in motion statistics.
	Reliable []bool
}

// motionBlock is the block edge length in downsampled pixels.
const motionBlock = 8

// EstimateMotion computes the motion field from frame a to frame b
// with the given search radius (in downsampled pixels).
func EstimateMotion(a, b *Frame, search int) *MotionField {
	ga := a.ToGray().Downsample(4)
	gb := b.ToGray().Downsample(4)
	bx, by := ga.W/motionBlock, ga.H/motionBlock
	mf := &MotionField{BlocksX: bx, BlocksY: by,
		Vectors:  make([]MotionVector, bx*by),
		SADs:     make([]float64, bx*by),
		ZeroSADs: make([]float64, bx*by),
		Reliable: make([]bool, bx*by)}
	for yb := 0; yb < by; yb++ {
		for xb := 0; xb < bx; xb++ {
			zeroSAD := blockSAD(ga, gb, xb*motionBlock, yb*motionBlock, 0, 0)
			bestSAD := zeroSAD
			var best MotionVector
			for dy := -search; dy <= search; dy++ {
				for dx := -search; dx <= search; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					sad := blockSAD(ga, gb, xb*motionBlock, yb*motionBlock, dx, dy)
					if sad < bestSAD {
						bestSAD = sad
						best = MotionVector{DX: dx, DY: dy}
					}
				}
			}
			i := yb*bx + xb
			mf.Vectors[i] = best
			mf.SADs[i] = bestSAD
			mf.ZeroSADs[i] = zeroSAD
			// A shifted match must beat staying put by both a relative
			// and an absolute margin, otherwise the block is either
			// static or textureless.
			mf.Reliable[i] = best == MotionVector{} ||
				(bestSAD < 0.7*zeroSAD && zeroSAD-bestSAD > 2)
		}
	}
	return mf
}

// blockSAD computes the mean absolute difference between block (x0,y0)
// of a and the (dx,dy)-shifted block of b; out-of-bounds shifts cost
// maximum difference.
func blockSAD(a, b *Gray, x0, y0, dx, dy int) float64 {
	sum, n := 0, 0
	for y := y0; y < y0+motionBlock; y++ {
		for x := x0; x < x0+motionBlock; x++ {
			bx, by := x+dx, y+dy
			var d int
			if bx < 0 || by < 0 || bx >= b.W || by >= b.H {
				d = 255
			} else {
				d = int(a.Pix[y*a.W+x]) - int(b.Pix[by*b.W+bx])
				if d < 0 {
					d = -d
				}
			}
			sum += d
			n++
		}
	}
	return float64(sum) / float64(n)
}

// MotionHistogramFeature summarizes a motion field for the passing
// detector: the fraction of blocks moving laterally against the
// dominant (camera) motion, and the dispersion of the lateral motion
// histogram.
type MotionHistogramFeature struct {
	// DominantDX is the modal horizontal displacement (camera pan).
	DominantDX int
	// CounterFraction is the fraction of blocks with horizontal motion
	// opposing or clearly exceeding the dominant motion — the signature
	// of one car overtaking another relative to the camera.
	CounterFraction float64
	// Dispersion is the normalized entropy of the horizontal motion
	// histogram.
	Dispersion float64
}

// MotionHistogram computes the passing-detection feature from a motion
// field estimated with the given search radius.
func MotionHistogram(mf *MotionField, search int) MotionHistogramFeature {
	// Unreliable (textureless or static) blocks contribute as static:
	// they cannot oppose the dominant motion, but they anchor the mode.
	bins := make(map[int]int)
	for i, v := range mf.Vectors {
		if mf.Reliable[i] {
			bins[v.DX]++
		} else {
			bins[0]++
		}
	}
	if len(mf.Vectors) == 0 {
		return MotionHistogramFeature{}
	}
	mode, modeCount := 0, -1
	for dx, c := range bins {
		if c > modeCount {
			mode, modeCount = dx, c
		}
	}
	counter := 0
	for i, v := range mf.Vectors {
		if !mf.Reliable[i] {
			continue
		}
		rel := v.DX - mode
		if rel < -1 || rel > 1 {
			counter++
		}
	}
	total := float64(len(mf.Vectors))
	ent := 0.0
	for _, c := range bins {
		p := float64(c) / total
		ent -= p * math.Log2(p)
	}
	maxEnt := math.Log2(float64(2*search + 1))
	if maxEnt <= 0 {
		maxEnt = 1
	}
	return MotionHistogramFeature{
		DominantDX:      mode,
		CounterFraction: float64(counter) / total,
		Dispersion:      ent / maxEnt,
	}
}

// PassingProbability maps the motion histogram feature to the paper's
// "chance of one car passing another" cue. A passing car occupies only
// a few blocks, so the cue saturates at roughly three blocks' worth of
// counter-motion (the fraction is relative to the full block grid).
func PassingProbability(f MotionHistogramFeature) float64 {
	const fullScale = 3.0 / 108 // ~3 blocks of a 12x9 grid
	p := f.CounterFraction / fullScale
	if p > 1 {
		p = 1
	}
	return p
}
