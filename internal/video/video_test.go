package video

import (
	"math/rand"
	"testing"
)

// noisyFill fills a frame with a base color plus per-pixel noise.
func noisyFill(f *Frame, r, g, b byte, noise int, rng *rand.Rand) {
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i] = clampByte(int(r) + rng.Intn(2*noise+1) - noise)
		f.Pix[i+1] = clampByte(int(g) + rng.Intn(2*noise+1) - noise)
		f.Pix[i+2] = clampByte(int(b) + rng.Intn(2*noise+1) - noise)
	}
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame(10, 5)
	f.Set(3, 2, 1, 2, 3)
	r, g, b := f.At(3, 2)
	if r != 1 || g != 2 || b != 3 {
		t.Fatalf("At = %d,%d,%d", r, g, b)
	}
	f.Fill(9, 9, 9)
	r, _, _ = f.At(0, 0)
	if r != 9 {
		t.Fatal("Fill failed")
	}
	f.FillRect(-5, -5, 2, 2, 7, 7, 7)
	if r, _, _ := f.At(1, 1); r != 7 {
		t.Fatal("FillRect clip failed")
	}
	c := f.Clone()
	c.Set(0, 0, 0, 0, 0)
	if r, _, _ := f.At(0, 0); r != 7 {
		t.Fatal("Clone aliases")
	}
}

func TestToGrayAndDownsample(t *testing.T) {
	f := NewFrame(8, 8)
	f.Fill(255, 255, 255)
	g := f.ToGray()
	if g.At(4, 4) != 254 && g.At(4, 4) != 255 {
		t.Fatalf("white gray = %d", g.At(4, 4))
	}
	d := g.Downsample(2)
	if d.W != 4 || d.H != 4 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	if g.Downsample(1) != g {
		t.Fatal("factor 1 should return receiver")
	}
}

func TestColorHistogramNormalized(t *testing.T) {
	f := NewFrame(16, 16)
	f.Fill(10, 200, 100)
	h := ColorHistogram(f)
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sum = %v", sum)
	}
	if h.Diff(h) != 0 {
		t.Fatal("self-diff nonzero")
	}
	g := NewFrame(16, 16)
	g.Fill(250, 10, 10)
	h2 := ColorHistogram(g)
	if d := h.Diff(h2); d < 1.9 {
		t.Fatalf("disjoint histograms diff = %v, want ~2", d)
	}
}

func TestShotDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	det := NewShotDetector(DefaultShotConfig())
	total := 60
	cutAt := map[int]bool{20: true, 40: true}
	colors := [][3]byte{{60, 120, 60}, {150, 60, 60}, {60, 60, 160}}
	scene := 0
	for i := 0; i < total; i++ {
		if cutAt[i] {
			scene++
		}
		f := NewFrame(64, 48)
		c := colors[scene]
		noisyFill(f, c[0], c[1], c[2], 10, rng)
		det.Feed(f)
	}
	if len(det.Boundaries) != 2 {
		t.Fatalf("boundaries = %v, want cuts at 20 and 40", det.Boundaries)
	}
	for i, want := range []int{20, 40} {
		if det.Boundaries[i] != want {
			t.Fatalf("boundary %d = %d, want %d", i, det.Boundaries[i], want)
		}
	}
	shots := det.Shots(total)
	if len(shots) != 3 || shots[0] != [2]int{0, 20} || shots[2] != [2]int{40, 60} {
		t.Fatalf("shots = %v", shots)
	}
}

func TestShotDetectionNoFalsePositivesUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	det := NewShotDetector(DefaultShotConfig())
	for i := 0; i < 100; i++ {
		f := NewFrame(64, 48)
		noisyFill(f, 90, 110, 90, 25, rng)
		det.Feed(f)
	}
	if len(det.Boundaries) != 0 {
		t.Fatalf("noise produced boundaries %v", det.Boundaries)
	}
}

func TestMotionAmount(t *testing.T) {
	a := NewFrame(32, 32)
	b := NewFrame(32, 32)
	if m := MotionAmount(a, b); m != 0 {
		t.Fatalf("identical frames motion = %v", m)
	}
	b.Fill(255, 255, 255)
	if m := MotionAmount(a, b); m < 0.99 {
		t.Fatalf("opposite frames motion = %v", m)
	}
	c := NewFrame(16, 16)
	if m := MotionAmount(a, c); m != 1 {
		t.Fatalf("size mismatch motion = %v, want 1", m)
	}
}

// movingSquare renders a bright square at the given x offset on a dark
// textured background.
func movingSquare(w, h, x0 int, rng *rand.Rand) *Frame {
	f := NewFrame(w, h)
	noisyFill(f, 40, 45, 40, 6, rng)
	f.FillRect(x0, h/2-16, x0+32, h/2+16, 230, 230, 230)
	return f
}

func TestEstimateMotionTracksShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := movingSquare(256, 128, 60, rng)
	b := movingSquare(256, 128, 68, rng) // +8 px = +2 in 4x downsample
	mf := EstimateMotion(a, b, 3)
	// Blocks containing the square should show dx ≈ -2 (a→b block match
	// finds content shifted by -2 in b coords... direction depends on
	// convention: block in a matched at b position +dx).
	counts := map[int]int{}
	for _, v := range mf.Vectors {
		counts[v.DX]++
	}
	if counts[2] < 2 && counts[-2] < 2 {
		t.Fatalf("no blocks tracked the ±2 shift: %v", counts)
	}
}

func TestMotionHistogramPassing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Static camera, one car moving: counter-fraction small but nonzero.
	a := movingSquare(256, 128, 60, rng)
	b := movingSquare(256, 128, 72, rng)
	mf := EstimateMotion(a, b, 3)
	feat := MotionHistogram(mf, 3)
	if feat.CounterFraction <= 0 {
		t.Fatalf("moving object gave zero counter fraction: %+v", feat)
	}
	p := PassingProbability(feat)
	if p <= 0 || p > 1 {
		t.Fatalf("passing probability = %v", p)
	}
	// Static scene: zero counter motion.
	c := movingSquare(256, 128, 60, rng)
	d := movingSquare(256, 128, 60, rng)
	mf2 := EstimateMotion(c, d, 3)
	feat2 := MotionHistogram(mf2, 3)
	if feat2.CounterFraction > 0.05 {
		t.Fatalf("static scene counter fraction = %v", feat2.CounterFraction)
	}
}

func TestSemaphoreDetection(t *testing.T) {
	f := NewFrame(384, 288)
	f.Fill(80, 80, 90)
	// A red bar in the upper area, wider than tall.
	f.FillRect(150, 40, 230, 60, 220, 30, 30)
	s := DetectSemaphore(f)
	if !s.Present {
		t.Fatalf("semaphore not detected: %+v", s)
	}
	if s.Width < 70 || s.Height < 15 {
		t.Fatalf("bad box %+v", s)
	}
	// No red: absent.
	g := NewFrame(384, 288)
	g.Fill(80, 80, 90)
	if DetectSemaphore(g).Present {
		t.Fatal("false semaphore on plain frame")
	}
	// Red in lower half only: ignored.
	h := NewFrame(384, 288)
	h.Fill(80, 80, 90)
	h.FillRect(150, 250, 230, 270, 220, 30, 30)
	if DetectSemaphore(h).Present {
		t.Fatal("semaphore detected in lower half")
	}
}

func TestSemaphoreTrackerStartSignal(t *testing.T) {
	var tr SemaphoreTracker
	widths := []int{20, 30, 40, 52, 64}
	for _, w := range widths {
		if tr.Feed(SemaphoreFeature{Present: true, Width: w, Height: 10, Fill: 0.9}) {
			t.Fatal("start signaled while lights still on")
		}
	}
	if !tr.Feed(SemaphoreFeature{}) {
		t.Fatal("start not signaled when grown semaphore disappears")
	}
	// A non-growing semaphore (e.g. a red billboard) does not trigger.
	var tr2 SemaphoreTracker
	for _, w := range []int{40, 40, 39, 40} {
		tr2.Feed(SemaphoreFeature{Present: true, Width: w, Height: 10, Fill: 0.9})
	}
	if tr2.Feed(SemaphoreFeature{}) {
		t.Fatal("static red region should not signal a start")
	}
}

func TestSandDustDetection(t *testing.T) {
	f := NewFrame(100, 100)
	f.Fill(70, 110, 70)                        // grass
	f.FillRect(0, 50, 100, 100, 200, 170, 110) // sand trap lower half
	sd := DetectSandDust(f)
	if sd.SandFraction < 0.4 {
		t.Fatalf("sand fraction = %v, want ~0.5", sd.SandFraction)
	}
	p := FlyOutProbability(sd)
	if p < 0.9 {
		t.Fatalf("fly-out probability = %v", p)
	}
	g := NewFrame(100, 100)
	g.Fill(70, 110, 70)
	if got := FlyOutProbability(DetectSandDust(g)); got > 0.1 {
		t.Fatalf("grass-only fly-out probability = %v", got)
	}
}

func TestDustFilter(t *testing.T) {
	f := NewFrame(50, 50)
	f.Fill(190, 175, 150) // warm gray dust cloud
	sd := DetectSandDust(f)
	if sd.DustFraction < 0.5 {
		t.Fatalf("dust fraction = %v", sd.DustFraction)
	}
}

// wipeSequence renders a left-to-right wipe from scene A to scene B
// over n frames.
func wipeSequence(w, h, n int, rng *rand.Rand) []*Frame {
	frames := make([]*Frame, n)
	for i := range frames {
		f := NewFrame(w, h)
		split := w * i / (n - 1)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x < split {
					f.Set(x, y, clampByte(200+rng.Intn(10)), 40, 40)
				} else {
					f.Set(x, y, 40, clampByte(160+rng.Intn(10)), 40)
				}
			}
		}
		frames[i] = f
	}
	return frames
}

func TestDVEDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	det := NewDVEDetector()
	var prev *Frame
	feed := func(f *Frame) bool {
		if prev == nil {
			prev = f
			return false
		}
		mf := EstimateMotion(prev, f, 2)
		prev = f
		return det.Feed(mf)
	}
	// Steady scene, then a wipe, then steady scene.
	for i := 0; i < 8; i++ {
		f := NewFrame(256, 128)
		noisyFill(f, 200, 40, 40, 5, rng)
		feed(f)
	}
	for _, f := range wipeSequence(256, 128, 20, rng) {
		feed(f)
	}
	hit := false
	for i := 0; i < 8; i++ {
		f := NewFrame(256, 128)
		noisyFill(f, 40, 160, 40, 5, rng)
		if feed(f) {
			hit = true
		}
	}
	if !hit && len(det.Events) == 0 {
		t.Fatal("wipe not detected as DVE")
	}
}

func TestReplayPairing(t *testing.T) {
	r := NewReplayDetector()
	r.FeedDVE(100)
	r.FeedDVE(250) // 150 frames = 15 s at 10 fps: a replay
	if len(r.Segments) != 1 || r.Segments[0] != [2]int{100, 250} {
		t.Fatalf("segments = %v", r.Segments)
	}
	// A too-short pair does not form a replay; second DVE reopens.
	r2 := NewReplayDetector()
	r2.FeedDVE(10)
	r2.FeedDVE(15)
	if len(r2.Segments) != 0 {
		t.Fatalf("short pair formed segment %v", r2.Segments)
	}
	r2.FeedDVE(200)
	if len(r2.Segments) != 1 || r2.Segments[0] != [2]int{15, 200} {
		t.Fatalf("reopened pairing = %v", r2.Segments)
	}
}

func TestReplayProbability(t *testing.T) {
	p := ReplayProbability([][2]int{{10, 20}}, 30)
	if p[15] != 1 || p[5] != 0 || p[25] != 0 {
		t.Fatalf("probabilities = %v", p)
	}
	if p[9] <= 0 || p[9] >= 1 {
		t.Fatalf("shoulder = %v", p[9])
	}
}
