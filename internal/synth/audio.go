package synth

import (
	"math"

	"cobra/internal/keyword"
)

// Commentator voice parameters.
const (
	basePitchHz    = 140.0
	excitedPitchX  = 1.8
	baseAmplitude  = 0.32
	excitedAmpX    = 1.9
	engineCenterHz = 1700.0
)

// RenderAudio synthesizes the broadcast audio mix: commentator speech
// (a harmonic voiced source whose pitch and level rise with
// excitement), engine noise concentrated above 1 kHz, and broadband
// crowd noise. The mix is deterministic in the race.
func (r *Race) RenderAudio() []float64 {
	n := int(r.Duration * SampleRate)
	out := make([]float64, n)
	r.renderSpeech(out)
	r.renderEngine(out)
	r.renderCrowd(out)
	return out
}

// RenderAudioSpan synthesizes samples for [t0, t1) only.
func (r *Race) RenderAudioSpan(t0, t1 float64) []float64 {
	full := r.RenderAudio() // determinism over spans matters more than speed here
	lo := int(t0 * SampleRate)
	hi := int(t1 * SampleRate)
	if lo < 0 {
		lo = 0
	}
	if hi > len(full) {
		hi = len(full)
	}
	if lo >= hi {
		return nil
	}
	return full[lo:hi]
}

// renderSpeech adds the commentator's utterances.
func (r *Race) renderSpeech(out []float64) {
	for ui, u := range r.Utterances {
		phones := keyword.PhoneSequence(u.Word)
		dur := float64(len(phones)) / keyword.PhoneRate
		if dur <= 0 {
			continue
		}
		excited := r.excitedAt(u.Time)
		pitch := basePitchHz * (0.9 + 0.2*hash01(r.Seed, int64(ui)))
		amp := baseAmplitude * (0.75 + 0.5*hash01(r.Seed+11, int64(ui)))
		if excited {
			// Excitement intensity varies: some bursts are mild and
			// blend into emphatic calm speech, as on real broadcasts.
			x := hash01(r.Seed+12, int64(ui))
			pitch *= excitedPitchX * (0.78 + 0.3*x)
			amp *= excitedAmpX * (0.8 + 0.3*x)
		} else if smoothNoise(r.Seed+13, u.Time, 0.06) > 0.78 {
			// Stretches of animated banter outside events: a raised
			// voice that overlaps mild excitement — the false-alarm
			// source real detectors face.
			x := hash01(r.Seed+14, int64(ui))
			pitch *= 1.45 + 0.25*x
			amp *= 1.4 + 0.25*x
		}
		start := int(u.Time * SampleRate)
		length := int(dur * SampleRate)
		phase := 0.0
		for i := 0; i < length; i++ {
			idx := start + i
			if idx < 0 || idx >= len(out) {
				continue
			}
			t := float64(i) / SampleRate
			// Mild prosody modulation.
			f := pitch * (1 + 0.05*math.Sin(2*math.Pi*2.5*t+float64(ui)))
			phase += 2 * math.Pi * f / SampleRate
			// Harmonic voiced source with 1/k rolloff. Raised voices
			// carry markedly more energy into the 882-2205 Hz band the
			// paper's emphasized-speech STE measures, both because the
			// fundamental rises and because excitement tilts the
			// spectrum (less high-harmonic damping).
			damp := 0.55
			if excited {
				damp = 0.95
			}
			v := 0.0
			hAmp := 1.0
			for k := 1; k <= 8; k++ {
				v += hAmp * math.Sin(float64(k)*phase)
				hAmp *= damp / (1 + 0.12*float64(k))
			}
			// Amplitude envelope per word (attack/decay).
			env := 1.0
			edge := 0.02 * SampleRate
			if fi := float64(i); fi < edge {
				env = fi / edge
			} else if rem := float64(length - i); rem < edge {
				env = rem / edge
			}
			out[idx] += amp * env * v / 2.75
		}
	}
}

// renderEngine adds car noise above 1 kHz, louder around passings and
// after the start.
func (r *Race) renderEngine(out []float64) {
	phases := [3]float64{}
	freqs := [3]float64{engineCenterHz * 0.8, engineCenterHz, engineCenterHz * 1.3}
	for i := range out {
		t := float64(i) / SampleRate
		amp := 0.04 + 0.05*smoothNoise(r.Seed+1, t, 0.4)
		if e, ok := r.eventAt(t); ok && (e.Type == EventPassing || e.Type == EventStart) {
			amp *= 1.8
		}
		v := 0.0
		for k := range freqs {
			// Slight frequency wobble (engines revving).
			f := freqs[k] * (1 + 0.04*smoothNoise(r.Seed+2+int64(k), t, 1.5))
			phases[k] += 2 * math.Pi * f / SampleRate
			v += math.Sin(phases[k])
		}
		out[i] += amp * v / 3
	}
}

// renderCrowd adds broadband crowd noise at the profile's level.
func (r *Race) renderCrowd(out []float64) {
	level := r.Profile.CrowdNoise
	if level <= 0 {
		return
	}
	// Cheap deterministic white-ish noise.
	state := uint64(r.Seed)*2862933555777941757 + 3037000493
	for i := range out {
		state = state*2862933555777941757 + 3037000493
		noise := float64(int64(state>>11))/(1<<52) - 1
		out[i] += level * noise
	}
}
