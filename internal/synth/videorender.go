package synth

import (
	"math"

	"cobra/internal/video"
	"cobra/internal/vtext"
)

// Frame geometry: quarter PAL, as in the paper.
const (
	FrameW = 384
	FrameH = 288
)

// dveDur is the duration of the digital video effect (wipe) that
// brackets replays.
const dveDur = 0.8

// RenderFrame renders the broadcast frame at time t. Rendering is a
// pure function of (race, t), so frames are generated on demand and
// never stored.
func (r *Race) RenderFrame(t float64) *video.Frame {
	f := video.NewFrame(FrameW, FrameH)

	if rep, ok := r.replayAt(t); ok {
		// A replay re-shows its source event; wipes at both edges.
		src := r.sourceOf(rep)
		prog := (t - rep.Start) / (rep.End - rep.Start)
		replayTime := src.Start + prog*(src.End-src.Start)
		r.renderScene(f, replayTime, int64(9999))
		switch {
		case t-rep.Start < dveDur:
			live := video.NewFrame(FrameW, FrameH)
			r.renderScene(live, t, int64(r.shotIndexAt(t)))
			wipe(f, live, f, (t-rep.Start)/dveDur)
		case rep.End-t < dveDur:
			live := video.NewFrame(FrameW, FrameH)
			r.renderScene(live, t, int64(r.shotIndexAt(t)))
			wipe(f, f, live, 1-(rep.End-t)/dveDur)
		}
	} else {
		r.renderScene(f, t, int64(r.shotIndexAt(t)))
	}
	r.renderCaption(f, t)
	r.addPixelNoise(f, t)
	return f
}

// sourceOf finds the event a replay re-shows (same driver, nearest
// preceding passing/fly-out); falls back to the replay window itself.
func (r *Race) sourceOf(rep TrueEvent) TrueEvent {
	best := rep
	for _, e := range r.Events {
		if e.Type != EventPassing && e.Type != EventFlyOut {
			continue
		}
		if e.End <= rep.Start && e.Driver == rep.Driver {
			best = e
		}
	}
	return best
}

// wipe composites left-to-right from a to b at progress p into dst.
// dst may alias a or b.
func wipe(dst, a, b *video.Frame, p float64) {
	split := int(p * float64(dst.W))
	for y := 0; y < dst.H; y++ {
		for x := 0; x < dst.W; x++ {
			var rr, gg, bb byte
			if x < split {
				rr, gg, bb = b.At(x, y)
			} else {
				rr, gg, bb = a.At(x, y)
			}
			dst.Set(x, y, rr, gg, bb)
		}
	}
}

// renderScene draws the live picture at time t for the given shot
// context (camera angle and scenery vary per shot).
func (r *Race) renderScene(f *video.Frame, t float64, shot int64) {
	seed := r.Seed + shot*7919
	// Camera: pan plus profile-dependent shake.
	shotStart := 0.0
	if idx := r.shotIndexAt(t); idx > 0 && idx-1 < len(r.ShotBoundaries) {
		shotStart = r.ShotBoundaries[idx-1]
	}
	pan := (t - shotStart) * r.Profile.PanSpeed * FPS
	frameNo := int64(t * FPS)
	shake := (hash01(seed+3, frameNo) - 0.5) * 2 * r.Profile.CameraShake * 4
	offset := int(pan + shake)

	// Scene layout varies by shot: horizon height, palette and camera
	// position (trackside, crowd, pit lane). Event shots always show
	// the track so their overlays land on plausible scenery.
	horizon := 60 + int(hash01(seed, 1)*100)
	trackTop := horizon + 50 + int(hash01(seed, 2)*60)
	tint := byte(hash01(seed, 3) * 70)
	skyTint := byte(hash01(seed, 6) * 80)
	grassTint := byte(hash01(seed, 7) * 80)
	sceneType := r.sceneTypeOf(shot)
	if _, ok := r.eventAt(t); ok {
		sceneType = 0
	}
	switch sceneType {
	case 1:
		// Grandstand shot: busy colorful crowd above the track.
		f.FillRect(0, 0, FrameW, horizon, 90+tint/2, 80, 90)
		for by := 0; by < horizon; by += 8 {
			for bx := 0; bx < FrameW; bx += 12 {
				// Blue-green crowd mosaic; strong reds are avoided so
				// the grandstand never mimics the start semaphore.
				c := byte(60 + 180*hash01(seed, int64(bx*977+by)))
				f.FillRect(bx-offset%12, by, bx-offset%12+10, by+7, 40+c/4, c, 255-c)
			}
		}
		f.FillRect(0, horizon, FrameW, trackTop, 120, 120, 126)
		f.FillRect(0, trackTop, FrameW, FrameH, 95, 95, 100)
	case 2:
		// Pit lane: dark garage band, concrete, sponsor wall. The
		// concrete keeps a decisively cool cast (blue over green over
		// red by >= 10) so sensor noise never tips it into the warm
		// dust palette.
		f.FillRect(0, 0, FrameW, horizon, 52+tint/3, 50, 58)
		f.FillRect(0, horizon, FrameW, trackTop, 138+tint/4, 148+tint/4, 160+tint/4)
		f.FillRect(0, trackTop, FrameW, FrameH, 104, 108, 120)
	default:
		// Trackside: sky, grass, asphalt. Asphalt keeps a cool cast so
		// tint variation never drifts into the warm dust palette.
		f.FillRect(0, 0, FrameW, horizon, 110+skyTint, 150+skyTint, 200+skyTint/2)
		f.FillRect(0, horizon, FrameW, trackTop, 40+grassTint/2, 100+grassTint, 55)
		f.FillRect(0, trackTop, FrameW, FrameH, 75+tint/2, 75+tint/2, 82+tint/2)
	}

	// Billboards scroll with the camera (world-anchored).
	for b := 0; b < 6; b++ {
		wx := (b*260 - offset) % (FrameW + 260)
		if wx < -120 {
			wx += FrameW + 260
		}
		c := byte(40 + 170*hash01(seed, 10+int64(b)))
		f.FillRect(wx, horizon-24, wx+96, horizon, c, 255-c, 120)
	}

	// Gravel trap appears on fly-out shots.
	if e, ok := r.eventAt(t); ok && e.Type == EventFlyOut {
		f.FillRect(FrameW/2-40, trackTop-44, FrameW, trackTop, 205, 175, 115)
	}

	r.renderCars(f, t, seed, trackTop, offset)
	r.renderEventOverlays(f, t, seed, trackTop)
}

// sceneTypeOf picks the camera setup for a shot, never repeating the
// previous shot's setup: real broadcast direction cuts between
// visually distinct cameras.
func (r *Race) sceneTypeOf(shot int64) int {
	base := int(hash01(r.Seed+shot*7919, 4) * 3)
	if shot <= 0 {
		return base
	}
	prev := int(hash01(r.Seed+(shot-1)*7919, 4) * 3)
	if base == prev {
		base = (base + 1 + int(hash01(r.Seed+shot*7919, 5)*2)) % 3
	}
	return base
}

// renderCars draws car blobs on the track.
func (r *Race) renderCars(f *video.Frame, t float64, seed int64, trackTop, offset int) {
	type carSpec struct {
		color [3]byte
		lane  int
		speed float64
	}
	cars := []carSpec{
		{color: [3]byte{210, 30, 30}, lane: 0, speed: 34},   // Ferrari red
		{color: [3]byte{220, 220, 225}, lane: 1, speed: 31}, // silver
		{color: [3]byte{30, 60, 200}, lane: 0, speed: 29},   // blue
	}
	started := true
	var start TrueEvent
	for _, e := range r.Events {
		if e.Type == EventStart {
			start = e
			break
		}
	}
	lightsOut := start.Start + 7
	if t < lightsOut {
		started = false
	}
	passing, passProg := false, 0.0
	if e, ok := r.eventAt(t); ok && e.Type == EventPassing {
		passing = true
		passProg = (t - e.Start) / (e.End - e.Start)
	}
	for i, c := range cars {
		var x int
		if !started {
			// Grid: cars parked in formation.
			x = 80 + i*70
		} else {
			world := 40 + c.speed*(t-lightsOut)*FPS/10
			x = (int(world) - offset + i*130) % (FrameW + 160)
			if x < -60 {
				x += FrameW + 160
			}
		}
		y := trackTop + 14 + c.lane*34
		if passing {
			// The camera tracks the battle: the leading car is framed
			// near center while the overtaker sweeps across the screen
			// at ~110 px/s, which the block matcher resolves as
			// counter-motion against the (tracked) background.
			switch i {
			case 1:
				x = FrameW/2 - 22
			case 2:
				// Two lunges per battle keep lateral motion on screen
				// for most of the event.
				half := int(passProg * 2)
				frac := passProg*2 - float64(half)
				dir := 1.0
				if half == 1 {
					dir = -1
				}
				x = FrameW/2 + int(150*dir*math.Tanh(6*(frac-0.5)))
				y -= int(16 * math.Sin(passProg*math.Pi))
			}
		}
		if e, ok := r.eventAt(t); ok && e.Type == EventFlyOut && i == 2 {
			// The fly-out car veers up into the gravel.
			prog := (t - e.Start) / (e.End - e.Start)
			y = trackTop - 18 - int(prog*4)
			x = FrameW/2 + 60 + int(prog*40)
		}
		f.FillRect(x, y, x+44, y+18, c.color[0], c.color[1], c.color[2])
		// Cockpit.
		f.FillRect(x+16, y+4, x+28, y+12, 20, 20, 20)
	}
}

// renderEventOverlays draws the semaphore and fly-out dust.
func (r *Race) renderEventOverlays(f *video.Frame, t float64, seed int64, trackTop int) {
	if e, ok := r.eventAt(t); ok {
		switch e.Type {
		case EventStart:
			// The semaphore rectangle grows its horizontal dimension in
			// regular intervals, then disappears at lights-out (+7 s).
			phase := t - e.Start
			if phase < 7 {
				steps := int(phase) + 1
				w := 14 * steps
				x0 := FrameW/2 - w/2
				f.FillRect(x0, 36, x0+w, 58, 225, 25, 25)
			}
		case EventFlyOut:
			// Dust cloud grows around the stricken car.
			prog := (t - e.Start) / (e.End - e.Start)
			cx, cy := FrameW/2+80, trackTop-20
			rad := 22 + prog*58
			frameNo := int64(t * FPS)
			for dy := -int(rad); dy <= int(rad); dy++ {
				for dx := -int(rad); dx <= int(rad); dx++ {
					d := math.Hypot(float64(dx), float64(dy))
					if d > rad {
						continue
					}
					// Ragged cloud edge.
					if d > rad*0.7 && hash01(seed, frameNo, int64(dx), int64(dy)) < 0.4 {
						continue
					}
					x, y := cx+dx, cy+dy
					if x < 0 || y < 0 || x >= FrameW || y >= FrameH {
						continue
					}
					g := byte(165 + 30*hash01(seed+4, int64(dx*31+dy)))
					f.Set(x, y, g+12, g, g-28)
				}
			}
		}
	}
}

// renderCaption draws the shaded caption band and superimposed words.
func (r *Race) renderCaption(f *video.Frame, t float64) {
	var active *Caption
	for i := range r.Captions {
		c := &r.Captions[i]
		if t >= c.Start && t < c.End {
			active = c
			break
		}
	}
	if active == nil {
		return
	}
	y0, y1 := vtext.BandBounds(f.H)
	// Shaded backdrop.
	frameNo := int64(t * FPS)
	for y := y0; y < y1; y++ {
		for x := 0; x < f.W; x++ {
			v := byte(38 + 18*hash01(r.Seed+5, frameNo, int64(y*f.W+x)))
			f.Set(x, y, v, v, v+8)
		}
	}
	// Words, spaced like the recognizer expects.
	text := ""
	for i, w := range active.Words {
		if i > 0 {
			text += " "
		}
		text += w
	}
	m := vtext.RenderWord(text, 3)
	ox := (f.W - m.W) / 2
	if ox < 2 {
		ox = 2
	}
	oy := y0 + (y1-y0-m.H)/2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) && ox+x < f.W {
				f.Set(ox+x, oy+y, 240, 238, 110)
			}
		}
	}
}

// addPixelNoise adds mild sensor noise so histograms and block
// matching see realistic textures.
func (r *Race) addPixelNoise(f *video.Frame, t float64) {
	frameNo := int64(t * FPS)
	state := uint64(r.Seed+frameNo) * 0x9e3779b97f4a7c15
	for i := range f.Pix {
		state = state*2862933555777941757 + 3037000493
		d := int(state>>60) - 8 // [-8, 7]
		v := int(f.Pix[i]) + d/2
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		f.Pix[i] = byte(v)
	}
}
