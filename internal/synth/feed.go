package synth

import "sort"

// Feed replays a generated race as a live broadcast: repeated Advance
// calls move a wall-clock position through the race and reveal the
// ground-truth events and captions that completed in the covered
// window. A consumer (the streaming ingestor in internal/f1) turns
// each chunk into catalog appends, so standing queries observe the
// race exactly as far as it has "aired".
//
// Events are revealed on completion, not on onset: a live pipeline
// can only emit a pit stop once the car has left the box (the
// detector needs the whole pattern), so an event with End inside the
// advanced window belongs to that window's chunk even when its Start
// lies long before. Replaying the same race through any sequence of
// Advance steps reveals every event exactly once, in End order
// within each chunk.
type Feed struct {
	race *Race
	t    float64
}

// Chunk is the slice of broadcast the feed advanced over: the covered
// window (From, To] plus everything that completed inside it.
type Chunk struct {
	// From and To bound the covered window; To is the new watermark.
	From, To float64
	// Events are the ground-truth events with End in (From, To].
	Events []TrueEvent
	// Captions are the superimposed-text overlays that left the screen
	// in (From, To].
	Captions []Caption
}

// NewFeed starts a live replay of the race at time zero.
func NewFeed(race *Race) *Feed {
	return &Feed{race: race}
}

// Race returns the race material being replayed.
func (f *Feed) Race() *Race { return f.race }

// Now returns the current broadcast position (the watermark) in
// seconds.
func (f *Feed) Now() float64 { return f.t }

// Done reports whether the broadcast has fully aired.
func (f *Feed) Done() bool { return f.t >= f.race.Duration }

// Advance moves the broadcast forward by dt seconds (clamped to the
// race end) and returns the chunk that aired. A zero or negative dt
// returns an empty chunk at the current position.
func (f *Feed) Advance(dt float64) Chunk {
	from := f.t
	to := from + dt
	if to > f.race.Duration {
		to = f.race.Duration
	}
	if to < from {
		to = from
	}
	f.t = to
	ch := Chunk{From: from, To: to}
	if to == from {
		return ch
	}
	for _, e := range f.race.Events {
		if e.End > from && e.End <= to {
			ch.Events = append(ch.Events, e)
		}
	}
	for _, c := range f.race.Captions {
		if c.End > from && c.End <= to {
			ch.Captions = append(ch.Captions, c)
		}
	}
	sort.SliceStable(ch.Events, func(i, j int) bool { return ch.Events[i].End < ch.Events[j].End })
	sort.SliceStable(ch.Captions, func(i, j int) bool { return ch.Captions[i].End < ch.Captions[j].End })
	return ch
}
