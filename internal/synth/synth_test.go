package synth

import (
	"testing"

	"cobra/internal/audio"
	"cobra/internal/video"
	"cobra/internal/vtext"
)

func testRace(t *testing.T) *Race {
	t.Helper()
	return GenerateRace(GermanGP, 300, 42)
}

func TestGenerateRaceDeterministic(t *testing.T) {
	a := GenerateRace(GermanGP, 300, 42)
	b := GenerateRace(GermanGP, 300, 42)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := GenerateRace(GermanGP, 300, 43)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical timelines")
	}
}

func TestTimelineStructure(t *testing.T) {
	r := testRace(t)
	if len(r.EventsOf(EventStart)) != 1 {
		t.Fatalf("starts = %d", len(r.EventsOf(EventStart)))
	}
	if len(r.EventsOf(EventFinish)) != 1 {
		t.Fatal("no finish")
	}
	if len(r.EventsOf(EventPassing)) == 0 || len(r.EventsOf(EventFlyOut)) == 0 ||
		len(r.EventsOf(EventPitStop)) == 0 {
		t.Fatalf("missing event classes: %+v", r.Events)
	}
	for _, e := range r.Events {
		if e.Start < 0 || e.End > r.Duration+1 || e.End <= e.Start {
			t.Fatalf("bad event window %+v", e)
		}
	}
	// Non-replay events do not overlap each other.
	var prevEnd float64
	for _, e := range r.Events {
		if e.Type == EventReplay {
			continue
		}
		if e.Start < prevEnd-1e-9 {
			t.Fatalf("overlapping events at %v", e.Start)
		}
		prevEnd = e.End
	}
}

func TestUSAGPHasNoFlyOuts(t *testing.T) {
	r := GenerateRace(USAGP, 300, 7)
	if n := len(r.EventsOf(EventFlyOut)); n != 0 {
		t.Fatalf("USA GP has %d fly-outs, want 0 (footnote 3)", n)
	}
}

func TestCommentaryGroundTruth(t *testing.T) {
	r := testRace(t)
	if len(r.Utterances) < 100 {
		t.Fatalf("utterances = %d", len(r.Utterances))
	}
	if len(r.Excitement) < 3 {
		t.Fatalf("excitement segments = %d", len(r.Excitement))
	}
	// Excitement covers roughly the profile's share of highlights, so
	// the audio-only recall ceiling (~50-60%) is built in.
	excited := 0
	for _, h := range r.Highlights {
		if h.Label == string(EventReplay) {
			continue
		}
		mid := (h.Start + h.End) / 2
		if r.excitedAt(mid) {
			excited++
		}
	}
	nonReplay := 0
	for _, h := range r.Highlights {
		if h.Label != string(EventReplay) {
			nonReplay++
		}
	}
	frac := float64(excited) / float64(nonReplay)
	if frac < 0.3 || frac > 0.95 {
		t.Fatalf("excited fraction = %v, want a meaningful partial cover", frac)
	}
}

func TestShotBoundariesSpaced(t *testing.T) {
	r := testRace(t)
	if len(r.ShotBoundaries) < 15 {
		t.Fatalf("shots = %d", len(r.ShotBoundaries))
	}
	for i := 1; i < len(r.ShotBoundaries); i++ {
		if r.ShotBoundaries[i]-r.ShotBoundaries[i-1] < 1 {
			t.Fatal("shot boundaries too close")
		}
	}
}

func TestRenderAudioProperties(t *testing.T) {
	r := GenerateRace(GermanGP, 30, 42)
	pcm := r.RenderAudio()
	if len(pcm) != 30*SampleRate {
		t.Fatalf("samples = %d", len(pcm))
	}
	peak := 0.0
	for _, v := range pcm {
		if v > peak {
			peak = v
		}
		if v < -peak {
			peak = -v
		}
	}
	if peak == 0 {
		t.Fatal("silent render")
	}
	if peak > 1.5 {
		t.Fatalf("peak = %v, clipping badly", peak)
	}
	span := r.RenderAudioSpan(10, 12)
	if len(span) != 2*SampleRate {
		t.Fatalf("span samples = %d", len(span))
	}
	for i, v := range span {
		if v != pcm[10*SampleRate+i] {
			t.Fatal("span differs from full render")
		}
	}
}

// TestAudioExcitementDetectable runs the real audio analyzer over
// rendered audio and checks pitch/energy rise during excitement.
func TestAudioExcitementDetectable(t *testing.T) {
	r := GenerateRace(GermanGP, 120, 42)
	if len(r.Excitement) == 0 {
		t.Skip("no excitement in this seed")
	}
	an, err := audio.NewAnalyzer(audio.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clips := an.Analyze(r.RenderAudio())
	var exPitch, calmPitch, exN, calmN float64
	for _, c := range clips {
		// As in the paper, excited-speech statistics are computed only
		// on clips the endpoint detector marks as speech.
		if c.PitchAvg == 0 || !c.Speech {
			continue
		}
		if r.excitedAt(c.Time) {
			exPitch += c.PitchAvg
			exN++
		} else {
			calmPitch += c.PitchAvg
			calmN++
		}
	}
	if exN == 0 || calmN == 0 {
		t.Fatalf("no voiced clips: excited %v calm %v", exN, calmN)
	}
	if exPitch/exN <= calmPitch/calmN*1.2 {
		t.Fatalf("excited pitch %v not clearly above calm %v", exPitch/exN, calmPitch/calmN)
	}
}

func TestRenderFrameBasics(t *testing.T) {
	r := testRace(t)
	f := r.RenderFrame(50)
	if f.W != FrameW || f.H != FrameH {
		t.Fatalf("frame dims %dx%d", f.W, f.H)
	}
	// Deterministic rendering.
	g := r.RenderFrame(50)
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			t.Fatal("frame render not deterministic")
		}
	}
}

func TestSemaphoreVisibleDuringStart(t *testing.T) {
	r := testRace(t)
	start := r.EventsOf(EventStart)[0]
	found := false
	for dt := 1.0; dt < 6; dt += 0.5 {
		f := r.RenderFrame(start.Start + dt)
		if video.DetectSemaphore(f).Present {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("semaphore never detected during the start sequence")
	}
	// Gone after lights out.
	f := r.RenderFrame(start.Start + 8.5)
	if video.DetectSemaphore(f).Present {
		t.Fatal("semaphore still present after lights out")
	}
}

func TestFlyOutDustDetectable(t *testing.T) {
	r := testRace(t)
	flyouts := r.EventsOf(EventFlyOut)
	if len(flyouts) == 0 {
		t.Skip("no fly-outs in this seed")
	}
	e := flyouts[0]
	mid := (e.Start + e.End) / 2
	p := video.FlyOutProbability(video.DetectSandDust(r.RenderFrame(mid)))
	if p < 0.3 {
		t.Fatalf("fly-out probability mid-event = %v", p)
	}
	calm := e.Start - 15
	pCalm := video.FlyOutProbability(video.DetectSandDust(r.RenderFrame(calm)))
	if pCalm > p/2 {
		t.Fatalf("calm fly-out probability %v too close to event %v", pCalm, p)
	}
}

func TestCaptionRecognizableOnRenderedFrames(t *testing.T) {
	r := testRace(t)
	pits := r.EventsOf(EventPitStop)
	if len(pits) == 0 {
		t.Skip("no pit stops")
	}
	var cap *Caption
	for i := range r.Captions {
		if len(r.Captions[i].Words) == 2 && r.Captions[i].Words[1] == "PIT" {
			cap = &r.Captions[i]
			break
		}
	}
	if cap == nil {
		t.Fatal("no pit caption generated")
	}
	mid := (cap.Start + cap.End) / 2
	var frames []*video.Frame
	for k := 0; k < 5; k++ {
		frames = append(frames, r.RenderFrame(mid+float64(k)/FPS))
	}
	if !vtext.AnalyzeBand(frames[0]).Present {
		t.Fatal("caption band not detected on rendered frame")
	}
	g := vtext.MinFilterBand(frames)
	g = vtext.Interpolate4x(g)
	band := vtext.Binarize(g, 170)
	lex := append(append([]string(nil), Drivers...), "PIT", "STOP", "LAP", "WINNER", "1")
	rec := vtext.NewRecognizer(lex, 0.7)
	hits := rec.RecognizeBand(band)
	foundDriver, foundPit := false, false
	for _, h := range hits {
		if h.Word == cap.Words[0] {
			foundDriver = true
		}
		if h.Word == "PIT" {
			foundPit = true
		}
	}
	if !foundDriver || !foundPit {
		t.Fatalf("caption %v recognized as %v", cap.Words, hits)
	}
}

func TestMotionHigherAfterStart(t *testing.T) {
	r := testRace(t)
	start := r.EventsOf(EventStart)[0]
	motionAt := func(t0 float64) float64 {
		a := r.RenderFrame(t0)
		b := r.RenderFrame(t0 + 1.0/FPS)
		return video.MotionAmount(a, b)
	}
	before := motionAt(start.Start - 12)
	_ = before
	after := motionAt(start.Start + 30)
	if after <= 0 {
		t.Fatalf("no motion after start: %v", after)
	}
}

func TestCameraShakeDiffersByProfile(t *testing.T) {
	german := GenerateRace(GermanGP, 120, 5)
	belgian := GenerateRace(BelgianGP, 120, 5)
	shakeOf := func(r *Race) float64 {
		total := 0.0
		n := 0
		for ts := 60.0; ts < 70; ts += 0.1 {
			a := r.RenderFrame(ts)
			b := r.RenderFrame(ts + 1.0/FPS)
			total += video.MotionAmount(a, b)
			n++
		}
		return total / float64(n)
	}
	if shakeOf(belgian) <= shakeOf(german) {
		t.Fatalf("belgian camera work %v not rougher than german %v",
			shakeOf(belgian), shakeOf(german))
	}
}
