// Package synth simulates a televised Formula 1 race: the data
// substitution for the three digitized 2001 Grand Prix broadcasts the
// paper uses (German, Belgian, USA). A seeded generator produces a
// ground-truth event timeline (start, passings, fly-outs, pit stops,
// replays), commentator behaviour (speech, excitement, keywords),
// caption overlays, and deterministic renderers for the audio signal
// (22 kHz PCM) and video frames (384x288 RGB at the feature sampling
// rate), which the real feature extractors then process.
//
// Per-race production profiles model the paper's observation that
// camera work differed between races: the German GP's steady direction
// makes the general motion-histogram passing cue work, while the
// Belgian and USA programs' aggressive camera work corrupts it
// (Table 4).
package synth

import (
	"math"
	"math/rand"
	"sort"

	"cobra/internal/eval"
	"cobra/internal/keyword"
)

// EventType classifies ground-truth race events.
type EventType string

// Ground-truth event types.
const (
	EventStart   EventType = "start"
	EventPassing EventType = "passing"
	EventFlyOut  EventType = "flyout"
	EventPitStop EventType = "pitstop"
	EventReplay  EventType = "replay"
	EventFinish  EventType = "finish"
)

// TrueEvent is one ground-truth occurrence. Replays carry the type of
// the event they re-show in SourceType.
type TrueEvent struct {
	Type       EventType
	SourceType EventType // set on replays only
	Start      float64
	End        float64
	Driver     string
}

// Caption is a superimposed-text overlay with its visibility window.
type Caption struct {
	// Words are the caption's words, left to right.
	Words []string
	Start float64
	End   float64
}

// Profile is a per-race production profile.
type Profile struct {
	// Name of the Grand Prix.
	Name string
	// CameraShake is the amplitude of random camera jerk in pixels per
	// frame; high values corrupt the motion-histogram passing cue.
	CameraShake float64
	// PanSpeed is the baseline camera pan in pixels per frame.
	PanSpeed float64
	// Passings, FlyOuts, PitStops are expected event counts per 600 s
	// of race (scaled with duration).
	Passings, FlyOuts, PitStops float64
	// CrowdNoise is the background noise amplitude in the audio mix.
	CrowdNoise float64
	// ExcitementRate is the probability the commentator gets excited
	// about an interesting event (the audio-only recall ceiling).
	ExcitementRate float64
}

// The three 2001-season races of §5.5. Event densities are raised
// relative to a real broadcast so that shortened simulated races still
// contain enough events to score.
var (
	// GermanGP has steady camera work: the passing cue works here.
	GermanGP = Profile{
		Name: "german", CameraShake: 0.3, PanSpeed: 1.2,
		Passings: 7, FlyOuts: 3, PitStops: 4,
		CrowdNoise: 0.02, ExcitementRate: 0.55,
	}
	// BelgianGP has aggressive camera work (Spa's sweeping shots).
	BelgianGP = Profile{
		Name: "belgian", CameraShake: 1.7, PanSpeed: 2.2,
		Passings: 6, FlyOuts: 4, PitStops: 4,
		CrowdNoise: 0.03, ExcitementRate: 0.55,
	}
	// USAGP also pans hard and, as in 2001, has no fly-outs at all.
	USAGP = Profile{
		Name: "usa", CameraShake: 1.4, PanSpeed: 2.0,
		Passings: 7, FlyOuts: 0, PitStops: 5,
		CrowdNoise: 0.025, ExcitementRate: 0.55,
	}
)

// Drivers on the simulated grid.
var Drivers = []string{
	"SCHUMACHER", "BARRICHELLO", "HAKKINEN", "COULTHARD",
	"MONTOYA", "RALF", "VILLENEUVE", "TRULLI",
}

// ExcitedKeywords are words the commentator uses when excited; the
// keyword spotter is configured with this list (§5.2: "a couple of
// tens of words that can usually be heard when the commentator is
// excited").
var ExcitedKeywords = []string{
	"INCREDIBLE", "FANTASTIC", "ACCIDENT", "CRASH", "OVERTAKE",
	"AMAZING", "UNBELIEVABLE", "SPIN", "GRAVEL", "LEADER",
}

// calmWords pad the commentary between events.
var calmWords = []string{
	"THE", "CAR", "LAP", "TYRES", "ENGINE", "TEAM", "STRATEGY",
	"SECTOR", "CIRCUIT", "WEATHER", "GEARBOX", "FUEL",
}

// Race is a fully generated broadcast with ground truth.
type Race struct {
	Profile  Profile
	Duration float64 // seconds
	Seed     int64

	Events     []TrueEvent
	Captions   []Caption
	Utterances []keyword.SpokenWord

	// Excitement marks ground-truth excited commentator speech.
	Excitement []eval.Segment
	// Highlights marks ground-truth interesting segments (every event
	// plus its replay).
	Highlights []eval.Segment
	// ShotBoundaries are ground-truth cut times in seconds.
	ShotBoundaries []float64

	rng *rand.Rand
}

// FPS is the video feature sampling rate (frames rendered per second).
const FPS = 10

// SampleRate is the audio sampling rate in Hz.
const SampleRate = 22050

// GenerateRace builds the ground truth for a race of the given
// duration. The generator is deterministic in (profile, duration,
// seed).
func GenerateRace(p Profile, duration float64, seed int64) *Race {
	rng := rand.New(rand.NewSource(seed ^ int64(len(p.Name))<<32))
	r := &Race{Profile: p, Duration: duration, Seed: seed, rng: rng}

	scale := duration / 600
	add := func(t EventType, start, dur float64, driver string) TrueEvent {
		e := TrueEvent{Type: t, Start: start, End: start + dur, Driver: driver}
		r.Events = append(r.Events, e)
		return e
	}
	// Race start: semaphore sequence ends ~30 s in.
	startAt := 25 + rng.Float64()*10
	add(EventStart, startAt, 12, "")
	// Finish near the end.
	add(EventFinish, duration-20, 12, Drivers[0])

	// Scatter passings, fly-outs and pit stops, keeping events apart.
	occupied := []eval.Segment{{Start: startAt - 10, End: startAt + 25}, {Start: duration - 35, End: duration}}
	place := func(dur float64) (float64, bool) {
		for try := 0; try < 128; try++ {
			t := startAt + 25 + rng.Float64()*(duration-startAt-70)
			s := eval.Segment{Start: t - 4, End: t + dur + 4}
			ok := true
			for _, o := range occupied {
				if s.Overlap(o) > 0 {
					ok = false
					break
				}
			}
			if ok {
				occupied = append(occupied, s)
				return t, true
			}
		}
		return 0, false
	}
	count := func(rate float64) int {
		n := int(rate*scale + 0.5)
		if rate > 0 && n == 0 {
			n = 1
		}
		return n
	}
	for i := 0; i < count(p.Passings); i++ {
		if t, ok := place(8); ok {
			add(EventPassing, t, 8, Drivers[rng.Intn(len(Drivers))])
		}
	}
	for i := 0; i < count(p.FlyOuts); i++ {
		if t, ok := place(10); ok {
			add(EventFlyOut, t, 10, Drivers[1+rng.Intn(len(Drivers)-1)])
		}
	}
	for i := 0; i < count(p.PitStops); i++ {
		if t, ok := place(14); ok {
			add(EventPitStop, t, 14, Drivers[rng.Intn(len(Drivers))])
		}
	}
	sort.Slice(r.Events, func(i, j int) bool { return r.Events[i].Start < r.Events[j].Start })

	// Replays: most passings and fly-outs are replayed shortly after.
	var replays []TrueEvent
	for _, e := range r.Events {
		if e.Type != EventPassing && e.Type != EventFlyOut {
			continue
		}
		if rng.Float64() < 0.8 {
			gap := 4 + rng.Float64()*6
			dur := e.End - e.Start
			replays = append(replays, TrueEvent{
				Type: EventReplay, SourceType: e.Type,
				Start: e.End + gap, End: e.End + gap + dur, Driver: e.Driver,
			})
		}
	}
	r.Events = append(r.Events, replays...)
	sort.Slice(r.Events, func(i, j int) bool { return r.Events[i].Start < r.Events[j].Start })

	r.buildHighlights()
	r.buildCommentary()
	r.buildCaptions()
	r.buildShots()
	return r
}

// buildHighlights derives the interesting-segment ground truth: race
// start, passings, fly-outs, the finish, and every replay. Routine pit
// stops are not highlights — they are reached through the superimposed
// text instead (§5.6).
func (r *Race) buildHighlights() {
	for _, e := range r.Events {
		if e.Type == EventPitStop {
			continue
		}
		r.Highlights = append(r.Highlights, eval.Segment{
			Start: e.Start, End: e.End, Label: string(e.Type),
		})
	}
}

// buildCommentary lays out utterances and excitement segments: the
// commentator talks most of the time, gets excited about a fraction of
// interesting events (ExcitementRate) and then uses excited keywords.
func (r *Race) buildCommentary() {
	rng := r.rng
	// Excitement windows.
	for _, e := range r.Events {
		if e.Type == EventReplay {
			continue // replays are rarely re-narrated excitedly
		}
		if rng.Float64() < r.Profile.ExcitementRate || e.Type == EventStart || e.Type == EventFinish {
			r.Excitement = append(r.Excitement, eval.Segment{
				Start: e.Start, End: e.End + 2, Label: string(e.Type),
			})
		}
	}
	// A couple of spontaneous excitement bursts (banter, pit radio).
	for i := 0; i < int(r.Duration/300)+1; i++ {
		t := rng.Float64() * (r.Duration - 10)
		r.Excitement = append(r.Excitement, eval.Segment{Start: t, End: t + 4, Label: "banter"})
	}
	sort.Slice(r.Excitement, func(i, j int) bool { return r.Excitement[i].Start < r.Excitement[j].Start })

	// Utterance cadence: calm commentary is measured, with sentence
	// pauses; excited commentary is near-continuous rapid speech (the
	// basis of the pause-rate cue, §5.2).
	t := 2.0
	wordsLeft := 0
	for t < r.Duration-2 {
		excited := r.excitedAt(t)
		if !excited && wordsLeft <= 0 {
			// Sentence boundary: pause, then a fresh burst of words.
			t += 0.6 + rng.Float64()*1.8
			wordsLeft = 4 + rng.Intn(7)
			continue
		}
		word := calmWords[rng.Intn(len(calmWords))]
		if excited {
			switch rng.Intn(3) {
			case 0:
				word = ExcitedKeywords[rng.Intn(len(ExcitedKeywords))]
			case 1:
				word = r.driverAt(t)
			}
		} else if rng.Float64() < 0.1 {
			word = Drivers[rng.Intn(len(Drivers))]
		}
		r.Utterances = append(r.Utterances, keyword.SpokenWord{Word: word, Time: t})
		wordsLeft--
		// Both calm sentences and excited commentary flow word to word;
		// what distinguishes excitement is the voice, not the gaps
		// alone (calm sentences still end in pauses).
		dur := float64(len(keyword.PhoneSequence(word))) / keyword.PhoneRate
		if excited {
			t += dur + 0.04 + rng.Float64()*0.1
		} else {
			t += dur + 0.06 + rng.Float64()*0.16
		}
	}
}

// excitedAt reports whether t falls in an excitement segment.
func (r *Race) excitedAt(t float64) bool {
	for _, s := range r.Excitement {
		if t >= s.Start && t < s.End {
			return true
		}
	}
	return false
}

// driverAt returns the driver of the event at time t, or a random one.
func (r *Race) driverAt(t float64) string {
	for _, e := range r.Events {
		if t >= e.Start-2 && t < e.End+4 && e.Driver != "" {
			return e.Driver
		}
	}
	return Drivers[r.rng.Intn(len(Drivers))]
}

// buildCaptions overlays the superimposed text: driver name and PIT at
// pit stops, LAP 1 after the start, WINNER at the finish, periodic
// classification captions.
func (r *Race) buildCaptions() {
	for _, e := range r.Events {
		switch e.Type {
		case EventPitStop:
			r.Captions = append(r.Captions, Caption{
				Words: []string{e.Driver, "PIT"}, Start: e.Start + 1, End: e.End - 1,
			})
		case EventStart:
			r.Captions = append(r.Captions, Caption{
				Words: []string{"LAP", "1"}, Start: e.End, End: e.End + 4,
			})
		case EventFinish:
			r.Captions = append(r.Captions, Caption{
				Words: []string{"WINNER", e.Driver}, Start: e.Start + 2, End: e.End,
			})
		}
	}
	// Periodic leader caption.
	for t := 90.0; t < r.Duration-30; t += 120 {
		r.Captions = append(r.Captions, Caption{
			Words: []string{Drivers[0]}, Start: t, End: t + 4,
		})
	}
	sort.Slice(r.Captions, func(i, j int) bool { return r.Captions[i].Start < r.Captions[j].Start })
}

// buildShots places shot boundaries every 4–14 s, plus cuts at event
// starts and replay edges.
func (r *Race) buildShots() {
	rng := r.rng
	t := 0.0
	for t < r.Duration {
		t += 4 + rng.Float64()*10
		if t < r.Duration {
			r.ShotBoundaries = append(r.ShotBoundaries, t)
		}
	}
	for _, e := range r.Events {
		if e.Type == EventReplay {
			continue
		}
		r.ShotBoundaries = append(r.ShotBoundaries, e.Start)
	}
	sort.Float64s(r.ShotBoundaries)
	// Deduplicate boundaries closer than 1 s, and drop boundaries that
	// fall inside replay windows: a replay runs continuously (no cuts),
	// so no boundary is visible there.
	out := r.ShotBoundaries[:0]
	last := -10.0
	for _, b := range r.ShotBoundaries {
		if b-last < 1 {
			continue
		}
		if _, inReplay := r.replayAt(b); inReplay {
			continue
		}
		out = append(out, b)
		last = b
	}
	r.ShotBoundaries = out
}

// EventsOf returns the ground-truth events of one type.
func (r *Race) EventsOf(t EventType) []TrueEvent {
	var out []TrueEvent
	for _, e := range r.Events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// eventAt returns the event (excluding replays) covering time t.
func (r *Race) eventAt(t float64) (TrueEvent, bool) {
	for _, e := range r.Events {
		if e.Type == EventReplay {
			continue
		}
		if t >= e.Start && t < e.End {
			return e, true
		}
	}
	return TrueEvent{}, false
}

// replayAt returns the replay covering time t.
func (r *Race) replayAt(t float64) (TrueEvent, bool) {
	for _, e := range r.Events {
		if e.Type != EventReplay {
			continue
		}
		if t >= e.Start && t < e.End {
			return e, true
		}
	}
	return TrueEvent{}, false
}

// shotIndexAt returns the shot ordinal containing time t.
func (r *Race) shotIndexAt(t float64) int {
	i := sort.SearchFloat64s(r.ShotBoundaries, t)
	return i
}

// hash01 maps integers to a deterministic pseudo-random float in
// [0, 1), used by the stateless renderers.
func hash01(seed int64, ks ...int64) float64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for _, k := range ks {
		h ^= uint64(k) + 0x9e3779b97f4a7c15 + h<<6 + h>>2
		h *= 0xbf58476d1ce4e5b9
	}
	h ^= h >> 31
	return float64(h%1_000_003) / 1_000_003
}

// smoothNoise is low-frequency deterministic noise over time.
func smoothNoise(seed int64, t, rate float64) float64 {
	x := t * rate
	i := math.Floor(x)
	f := x - i
	a := hash01(seed, int64(i))
	b := hash01(seed, int64(i)+1)
	// Cosine interpolation.
	w := (1 - math.Cos(math.Pi*f)) / 2
	return a*(1-w) + b*w
}
