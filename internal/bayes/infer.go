package bayes

import (
	"fmt"
	"math"
)

// Posterior computes P(query | evidence) by variable elimination,
// returning a distribution over the query node's states.
func (n *Network) Posterior(query int, ev Evidence) ([]float64, error) {
	f, err := n.JointPosterior([]int{query}, ev)
	if err != nil {
		return nil, err
	}
	return f.Vals, nil
}

// PosteriorOf is Posterior addressed by node name.
func (n *Network) PosteriorOf(name string, ev Evidence) ([]float64, error) {
	i, ok := n.Index(name)
	if !ok {
		return nil, fmt.Errorf("%w: no node %s", ErrBadNetwork, name)
	}
	return n.Posterior(i, ev)
}

// JointPosterior computes the normalized joint posterior factor over
// the given query variables by variable elimination.
func (n *Network) JointPosterior(query []int, ev Evidence) (*Factor, error) {
	keep := map[int]bool{}
	for _, q := range query {
		if q < 0 || q >= len(n.Nodes) {
			return nil, fmt.Errorf("%w: query index %d out of range", ErrBadNetwork, q)
		}
		if _, observed := ev[q]; observed {
			return nil, fmt.Errorf("%w: query node %s is observed", ErrBadNetwork, n.Nodes[q].Name)
		}
		keep[q] = true
	}
	// Build evidence-reduced CPT factors.
	factors := make([]*Factor, 0, len(n.Nodes))
	for i := range n.Nodes {
		f := n.factor(i)
		for v, s := range ev {
			f = f.Reduce(v, s)
		}
		factors = append(factors, f)
	}
	// Eliminate all hidden non-query variables in index order (networks
	// are small; a min-degree heuristic is unnecessary here).
	for v := range n.Nodes {
		if keep[v] {
			continue
		}
		if _, observed := ev[v]; observed {
			continue
		}
		var joined *Factor
		rest := factors[:0]
		for _, f := range factors {
			if hasVar(f, v) {
				if joined == nil {
					joined = f
				} else {
					joined = joined.Multiply(f)
				}
			} else {
				rest = append(rest, f)
			}
		}
		factors = rest
		if joined != nil {
			factors = append(factors, joined.SumOut(v))
		}
	}
	// Multiply what remains.
	var result *Factor
	for _, f := range factors {
		if result == nil {
			result = f
		} else {
			result = result.Multiply(f)
		}
	}
	if result == nil {
		return nil, fmt.Errorf("%w: empty elimination result", ErrBadNetwork)
	}
	result = result.normalizeOrder()
	if result.Normalize() == 0 {
		return nil, fmt.Errorf("bayes: evidence has zero probability")
	}
	return result, nil
}

// LogLikelihood returns log P(evidence) under the network.
func (n *Network) LogLikelihood(ev Evidence) (float64, error) {
	factors := make([]*Factor, 0, len(n.Nodes))
	for i := range n.Nodes {
		f := n.factor(i)
		for v, s := range ev {
			f = f.Reduce(v, s)
		}
		factors = append(factors, f)
	}
	for v := range n.Nodes {
		if _, observed := ev[v]; observed {
			continue
		}
		var joined *Factor
		rest := factors[:0]
		for _, f := range factors {
			if hasVar(f, v) {
				if joined == nil {
					joined = f
				} else {
					joined = joined.Multiply(f)
				}
			} else {
				rest = append(rest, f)
			}
		}
		factors = rest
		if joined != nil {
			factors = append(factors, joined.SumOut(v))
		}
	}
	p := 1.0
	for _, f := range factors {
		s := 0.0
		for _, v := range f.Vals {
			s += v
		}
		p *= s
	}
	if p <= 0 {
		return math.Inf(-1), nil
	}
	return math.Log(p), nil
}

// MAP returns the most probable joint assignment of all unobserved
// variables given the evidence, with its posterior probability. The
// joint hidden space is enumerated exactly (the networks here are
// small); spaces larger than 4096 states are rejected.
func (n *Network) MAP(ev Evidence) (map[int]int, float64, error) {
	hidden, size := n.hiddenOf(ev)
	if size > jointEMLimit {
		return nil, 0, fmt.Errorf("%w: joint hidden space %d too large for MAP", ErrBadNetwork, size)
	}
	assign := make([]int, len(n.Nodes))
	for v, s := range ev {
		assign[v] = s
	}
	best := -1.0
	bestCfg := make([]int, len(hidden))
	total := 0.0
	for s := 0; s < size; s++ {
		rem := s
		for k := len(hidden) - 1; k >= 0; k-- {
			h := hidden[k]
			assign[h] = rem % n.Nodes[h].States
			rem /= n.Nodes[h].States
		}
		p := n.Joint(assign)
		total += p
		if p > best {
			best = p
			for k, h := range hidden {
				bestCfg[k] = assign[h]
			}
		}
	}
	if total <= 0 {
		return nil, 0, fmt.Errorf("bayes: evidence has zero probability")
	}
	out := make(map[int]int, len(hidden))
	for k, h := range hidden {
		out[h] = bestCfg[k]
	}
	return out, best / total, nil
}

func hasVar(f *Factor, v int) bool {
	for _, fv := range f.Vars {
		if fv == v {
			return true
		}
	}
	return false
}
