package bayes

import (
	"fmt"
	"math"
)

// EMResult reports the outcome of EM training.
type EMResult struct {
	// Iterations actually run.
	Iterations int
	// LogLikelihood of the data under the final parameters.
	LogLikelihood float64
	// Converged reports whether the log-likelihood improvement fell
	// below the tolerance before the iteration cap.
	Converged bool
}

// EMConfig parameterizes EM learning.
type EMConfig struct {
	// MaxIterations caps EM iterations (default 50).
	MaxIterations int
	// Tolerance is the minimum log-likelihood improvement to continue
	// (default 1e-4).
	Tolerance float64
	// Prior is a Dirichlet pseudo-count added to every expected count,
	// keeping CPTs away from hard zeros (default 0.05).
	Prior float64
}

// DefaultEMConfig returns the standard settings.
func DefaultEMConfig() EMConfig {
	return EMConfig{MaxIterations: 50, Tolerance: 1e-4, Prior: 0.05}
}

// LearnEM fits the network's CPTs to the i.i.d. samples by
// Expectation-Maximization, the paper's "EM learning algorithm ...
// based on Maximum Likelihood" (§4). Each sample is a partial
// assignment (Evidence); hidden variables are marginalized in the
// E-step by exact inference.
func (n *Network) LearnEM(samples []Evidence, cfg EMConfig) (EMResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-4
	}
	if cfg.Prior < 0 {
		cfg.Prior = 0
	}
	res := EMResult{LogLikelihood: math.Inf(-1)}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		counts := make([][]float64, len(n.Nodes))
		for i := range n.Nodes {
			counts[i] = make([]float64, len(n.Nodes[i].CPT))
			for k := range counts[i] {
				counts[i][k] = cfg.Prior
			}
		}
		ll := 0.0
		for _, ev := range samples {
			sll, err := n.accumulate(ev, counts)
			if err != nil {
				return res, err
			}
			ll += sll
		}
		// M-step: normalize counts into CPT rows.
		for i := range n.Nodes {
			node := &n.Nodes[i]
			for r := 0; r < len(node.CPT); r += node.States {
				s := 0.0
				for k := 0; k < node.States; k++ {
					s += counts[i][r+k]
				}
				if s <= 0 {
					continue
				}
				for k := 0; k < node.States; k++ {
					node.CPT[r+k] = counts[i][r+k] / s
				}
			}
		}
		res.Iterations = iter + 1
		if ll-res.LogLikelihood < cfg.Tolerance && iter > 0 {
			res.LogLikelihood = ll
			res.Converged = true
			return res, nil
		}
		res.LogLikelihood = ll
	}
	return res, nil
}

// jointEMLimit bounds the joint hidden state space for the fast
// enumeration path.
const jointEMLimit = 4096

// hiddenOf lists the unobserved node indices and the size of their
// joint state space.
func (n *Network) hiddenOf(ev Evidence) ([]int, int) {
	var hidden []int
	size := 1
	for i := range n.Nodes {
		if _, ok := ev[i]; !ok {
			hidden = append(hidden, i)
			if size <= jointEMLimit {
				size *= n.Nodes[i].States
			}
		}
	}
	return hidden, size
}

// accumulateJoint enumerates the joint hidden configuration space once
// per sample, accumulating every family's expected counts in a single
// pass — much faster than per-family variable elimination when the
// joint space is small.
func (n *Network) accumulateJoint(ev Evidence, hidden []int, size int, counts [][]float64) (float64, error) {
	assign := make([]int, len(n.Nodes))
	for v, s := range ev {
		assign[v] = s
	}
	weights := make([]float64, size)
	configs := make([][]int, size)
	total := 0.0
	for s := 0; s < size; s++ {
		rem := s
		for k := len(hidden) - 1; k >= 0; k-- {
			h := hidden[k]
			assign[h] = rem % n.Nodes[h].States
			rem /= n.Nodes[h].States
		}
		p := n.Joint(assign)
		weights[s] = p
		configs[s] = append([]int(nil), assign...)
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("bayes: evidence has zero probability")
	}
	for s := 0; s < size; s++ {
		w := weights[s] / total
		if w == 0 {
			continue
		}
		cfg := configs[s]
		for i := range n.Nodes {
			counts[i][n.rowIndex(i, cfg)+cfg[i]] += w
		}
	}
	return math.Log(total), nil
}

// accumulate adds each family's expected counts under P(· | ev) and
// returns the sample log-likelihood.
func (n *Network) accumulate(ev Evidence, counts [][]float64) (float64, error) {
	if hidden, size := n.hiddenOf(ev); size <= jointEMLimit {
		return n.accumulateJoint(ev, hidden, size, counts)
	}
	ll, err := n.LogLikelihood(ev)
	if err != nil {
		return 0, err
	}
	for i := range n.Nodes {
		node := &n.Nodes[i]
		family := append(append([]int(nil), node.Parents...), i)
		// Split family into observed and hidden members.
		hidden := family[:0:0]
		for _, v := range family {
			if _, ok := ev[v]; !ok {
				hidden = append(hidden, v)
			}
		}
		if len(hidden) == 0 {
			// Fully observed family: a unit count.
			assign := make([]int, len(n.Nodes))
			for v, s := range ev {
				assign[v] = s
			}
			counts[i][n.rowIndex(i, assign)+assign[i]]++
			continue
		}
		post, err := n.JointPosterior(hidden, ev)
		if err != nil {
			return 0, err
		}
		// Walk all configurations of hidden family members.
		n.walkConfigs(hidden, func(h map[int]int) {
			assign := make([]int, len(n.Nodes))
			for v, s := range ev {
				assign[v] = s
			}
			for v, s := range h {
				assign[v] = s
			}
			p := post.At(h)
			counts[i][n.rowIndex(i, assign)+assign[i]] += p
		})
	}
	return ll, nil
}

// walkConfigs enumerates all joint states of the given variables.
func (n *Network) walkConfigs(vars []int, fn func(map[int]int)) {
	assign := map[int]int{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(vars) {
			fn(assign)
			return
		}
		v := vars[k]
		for s := 0; s < n.Nodes[v].States; s++ {
			assign[v] = s
			rec(k + 1)
		}
	}
	rec(0)
}
