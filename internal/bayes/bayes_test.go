package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cobra/internal/monet"
)

// sprinkler builds the classic rain/sprinkler/wet-grass network.
func sprinkler(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.MustAddNode("Rain", 2)
	n.MustAddNode("Sprinkler", 2, "Rain")
	n.MustAddNode("Wet", 2, "Rain", "Sprinkler")
	// State 1 = true.
	n.MustSetCPT("Rain", []float64{0.8, 0.2})
	n.MustSetCPT("Sprinkler", []float64{
		0.6, 0.4, // rain=0
		0.99, 0.01, // rain=1
	})
	n.MustSetCPT("Wet", []float64{
		1.0, 0.0, // rain=0 sprinkler=0
		0.1, 0.9, // rain=0 sprinkler=1
		0.2, 0.8, // rain=1 sprinkler=0
		0.01, 0.99, // rain=1 sprinkler=1
	})
	return n
}

func TestAddNodeValidation(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddNode("X", 1); err == nil {
		t.Fatal("cardinality 1 accepted")
	}
	n.MustAddNode("X", 2)
	if _, err := n.AddNode("X", 2); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := n.AddNode("Y", 2, "Nope"); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestSetCPTValidation(t *testing.T) {
	n := NewNetwork()
	n.MustAddNode("X", 2)
	if err := n.SetCPT("X", []float64{0.5, 0.6}); err == nil {
		t.Fatal("non-normalized row accepted")
	}
	if err := n.SetCPT("X", []float64{0.5}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := n.SetCPT("X", []float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative accepted")
	}
	if err := n.SetCPT("Nope", []float64{1, 0}); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestJointSumsToOne(t *testing.T) {
	n := sprinkler(t)
	total := 0.0
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			for w := 0; w < 2; w++ {
				total += n.Joint([]int{r, s, w})
			}
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("joint sums to %v", total)
	}
}

func TestPosteriorPrior(t *testing.T) {
	n := sprinkler(t)
	p, err := n.PosteriorOf("Rain", Evidence{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[1]-0.2) > 1e-9 {
		t.Fatalf("P(rain) = %v, want 0.2", p[1])
	}
}

func TestPosteriorExplainingAway(t *testing.T) {
	n := sprinkler(t)
	wet := n.MustIndex("Wet")
	spr := n.MustIndex("Sprinkler")
	rain := n.MustIndex("Rain")
	// P(rain | wet) computed by brute force: compare.
	pWet := 0.0
	pRainWet := 0.0
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			j := n.Joint([]int{r, s, 1})
			pWet += j
			if r == 1 {
				pRainWet += j
			}
		}
	}
	want := pRainWet / pWet
	got, err := n.Posterior(rain, Evidence{wet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-want) > 1e-9 {
		t.Fatalf("P(rain|wet) = %v, want %v", got[1], want)
	}
	// Explaining away: knowing the sprinkler ran lowers P(rain | wet).
	got2, err := n.Posterior(rain, Evidence{wet: 1, spr: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got2[1] >= got[1] {
		t.Fatalf("explaining away failed: %v >= %v", got2[1], got[1])
	}
}

func TestPosteriorQueryObservedFails(t *testing.T) {
	n := sprinkler(t)
	if _, err := n.Posterior(0, Evidence{0: 1}); err == nil {
		t.Fatal("observed query accepted")
	}
}

func TestJointPosteriorMatchesBruteForce(t *testing.T) {
	n := sprinkler(t)
	f, err := n.JointPosterior([]int{0, 1}, Evidence{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	pWet := 0.0
	want := map[[2]int]float64{}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			j := n.Joint([]int{r, s, 1})
			pWet += j
			want[[2]int{r, s}] = j
		}
	}
	for k := range want {
		want[k] /= pWet
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			got := f.At(map[int]int{0: r, 1: s})
			if math.Abs(got-want[[2]int{r, s}]) > 1e-9 {
				t.Fatalf("joint posterior (%d,%d) = %v, want %v", r, s, got, want[[2]int{r, s}])
			}
		}
	}
}

func TestLogLikelihood(t *testing.T) {
	n := sprinkler(t)
	ll, err := n.LogLikelihood(Evidence{0: 1, 1: 0, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(n.Joint([]int{1, 0, 1}))
	if math.Abs(ll-want) > 1e-9 {
		t.Fatalf("ll = %v, want %v", ll, want)
	}
	// Marginal likelihood of partial evidence.
	ll2, err := n.LogLikelihood(Evidence{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	pWet := 0.0
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			pWet += n.Joint([]int{r, s, 1})
		}
	}
	if math.Abs(ll2-math.Log(pWet)) > 1e-9 {
		t.Fatalf("marginal ll = %v, want %v", ll2, math.Log(pWet))
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	n := sprinkler(t)
	rng := rand.New(rand.NewSource(7))
	const N = 20000
	rainCount := 0
	for i := 0; i < N; i++ {
		a := n.Sample(rng)
		if a[0] == 1 {
			rainCount++
		}
	}
	got := float64(rainCount) / N
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("sampled P(rain) = %v", got)
	}
}

func TestFactorMultiplySumOut(t *testing.T) {
	// f(A) * g(A,B) summed over A equals matrix-vector product.
	f := NewFactor([]int{0}, []int{2})
	f.Vals = []float64{0.3, 0.7}
	g := NewFactor([]int{0, 1}, []int{2, 2})
	g.Vals = []float64{0.9, 0.1, 0.4, 0.6} // rows: A=0, A=1
	prod := f.Multiply(g)
	marg := prod.SumOut(0)
	want0 := 0.3*0.9 + 0.7*0.4
	want1 := 0.3*0.1 + 0.7*0.6
	if math.Abs(marg.Vals[0]-want0) > 1e-12 || math.Abs(marg.Vals[1]-want1) > 1e-12 {
		t.Fatalf("marg = %v, want [%v %v]", marg.Vals, want0, want1)
	}
}

func TestFactorReduce(t *testing.T) {
	g := NewFactor([]int{0, 1}, []int{2, 2})
	g.Vals = []float64{0.9, 0.1, 0.4, 0.6}
	r := g.Reduce(0, 1)
	if len(r.Vars) != 1 || r.Vars[0] != 1 {
		t.Fatalf("reduced vars = %v", r.Vars)
	}
	if r.Vals[0] != 0.4 || r.Vals[1] != 0.6 {
		t.Fatalf("reduced vals = %v", r.Vals)
	}
	// Reducing an absent variable is a no-op.
	same := g.Reduce(9, 0)
	if len(same.Vars) != 2 {
		t.Fatal("reduce of absent var changed factor")
	}
}

func TestFactorMultiplyCommutes(t *testing.T) {
	f := NewFactor([]int{1}, []int{2})
	f.Vals = []float64{0.25, 0.75}
	g := NewFactor([]int{0, 1}, []int{3, 2})
	for i := range g.Vals {
		g.Vals[i] = float64(i+1) / 10
	}
	a := f.Multiply(g)
	b := g.Multiply(f)
	for i := range a.Vals {
		if math.Abs(a.Vals[i]-b.Vals[i]) > 1e-12 {
			t.Fatalf("products differ at %d: %v vs %v", i, a.Vals[i], b.Vals[i])
		}
	}
}

func TestLearnEMFullyObserved(t *testing.T) {
	truth := sprinkler(t)
	rng := rand.New(rand.NewSource(11))
	samples := make([]Evidence, 4000)
	for i := range samples {
		a := truth.Sample(rng)
		samples[i] = Evidence{0: a[0], 1: a[1], 2: a[2]}
	}
	n := sprinkler(t)
	n.Randomize(rng)
	res, err := n.LearnEM(samples, DefaultEMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	// Learned root prior close to 0.2.
	if math.Abs(n.Nodes[0].CPT[1]-0.2) > 0.03 {
		t.Fatalf("learned P(rain) = %v", n.Nodes[0].CPT[1])
	}
	// Learned wet CPT row for rain=1,sprinkler=0 close to 0.8.
	if math.Abs(n.Nodes[2].CPT[2*2+1]-0.8) > 0.06 {
		t.Fatalf("learned P(wet|rain,!spr) = %v", n.Nodes[2].CPT[2*2+1])
	}
}

func TestLearnEMHiddenVariable(t *testing.T) {
	// Naive-Bayes style: hidden H with two observed children that copy
	// it; EM must discover the correlation structure.
	truth := NewNetwork()
	truth.MustAddNode("H", 2)
	truth.MustAddNode("A", 2, "H")
	truth.MustAddNode("B", 2, "H")
	truth.MustSetCPT("H", []float64{0.5, 0.5})
	truth.MustSetCPT("A", []float64{0.9, 0.1, 0.1, 0.9})
	truth.MustSetCPT("B", []float64{0.9, 0.1, 0.1, 0.9})

	rng := rand.New(rand.NewSource(13))
	samples := make([]Evidence, 3000)
	for i := range samples {
		a := truth.Sample(rng)
		samples[i] = Evidence{1: a[1], 2: a[2]} // H hidden
	}
	n := NewNetwork()
	n.MustAddNode("H", 2)
	n.MustAddNode("A", 2, "H")
	n.MustAddNode("B", 2, "H")
	n.MustSetCPT("H", []float64{0.5, 0.5})
	n.MustSetCPT("A", []float64{0.7, 0.3, 0.2, 0.8})
	n.MustSetCPT("B", []float64{0.6, 0.4, 0.3, 0.7})
	cfg := DefaultEMConfig()
	cfg.MaxIterations = 200
	res, err := n.LearnEM(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Label switching aside (broken by asymmetric init), A's CPT should
	// become strongly diagnostic: children agree with H ~90% of the time.
	diag := (n.Nodes[1].CPT[0] + n.Nodes[1].CPT[3]) / 2
	if diag < 0.8 {
		t.Fatalf("EM did not recover structure: A CPT %v (res %+v)", n.Nodes[1].CPT, res)
	}
	// EM monotonicity: final LL finite.
	if math.IsInf(res.LogLikelihood, 0) || math.IsNaN(res.LogLikelihood) {
		t.Fatalf("bad final LL %v", res.LogLikelihood)
	}
}

func TestLearnEMImprovesLikelihood(t *testing.T) {
	truth := sprinkler(t)
	rng := rand.New(rand.NewSource(17))
	samples := make([]Evidence, 500)
	for i := range samples {
		a := truth.Sample(rng)
		samples[i] = Evidence{1: a[1], 2: a[2]} // rain hidden
	}
	n := sprinkler(t)
	n.Randomize(rng)
	before := 0.0
	for _, ev := range samples {
		ll, _ := n.LogLikelihood(ev)
		before += ll
	}
	if _, err := n.LearnEM(samples, DefaultEMConfig()); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for _, ev := range samples {
		ll, _ := n.LogLikelihood(ev)
		after += ll
	}
	if after < before {
		t.Fatalf("EM decreased likelihood: %v -> %v", before, after)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := sprinkler(t)
	c := n.Clone()
	c.MustSetCPT("Rain", []float64{0.5, 0.5})
	if n.Nodes[0].CPT[1] != 0.2 {
		t.Fatal("clone shares CPT memory")
	}
}

// Property: posteriors are normalized distributions for random CPTs
// and random evidence.
func TestPosteriorNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork()
		n.MustAddNode("A", 2)
		n.MustAddNode("B", 3, "A")
		n.MustAddNode("C", 2, "A", "B")
		n.MustAddNode("D", 2, "C")
		n.Randomize(rng)
		ev := Evidence{}
		if rng.Intn(2) == 0 {
			ev[3] = rng.Intn(2)
		}
		if rng.Intn(2) == 0 {
			ev[1] = rng.Intn(3)
		}
		p, err := n.Posterior(0, ev)
		if err != nil {
			return false
		}
		s := 0.0
		for _, v := range p {
			if v < -1e-12 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadParams(t *testing.T) {
	n := sprinkler(t)
	store := monet.NewStore()
	n.SaveParams(store, "model/sprinkler")
	if !n.HasParams(store, "model/sprinkler") {
		t.Fatal("HasParams false after save")
	}
	n2 := sprinkler(t)
	n2.Randomize(rand.New(rand.NewSource(1)))
	if err := n2.LoadParams(store, "model/sprinkler"); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n2.Nodes[0].CPT[1]-0.2) > 1e-12 {
		t.Fatalf("restored P(rain) = %v", n2.Nodes[0].CPT[1])
	}
	if err := n2.LoadParams(store, "model/nope"); err == nil {
		t.Fatal("missing params accepted")
	}
	empty := NewNetwork()
	if empty.HasParams(store, "model/sprinkler") {
		t.Fatal("empty network HasParams")
	}
}

func TestMAP(t *testing.T) {
	n := sprinkler(t)
	wet := n.MustIndex("Wet")
	// Given wet grass, the most probable explanation is no rain and the
	// sprinkler on (P(sprinkler|!rain)=0.4 dominates P(rain)=0.2 paths).
	got, p, err := n.MAP(Evidence{wet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("MAP probability = %v", p)
	}
	// Verify against brute force.
	bestP, bestR, bestS := -1.0, -1, -1
	total := 0.0
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			j := n.Joint([]int{r, s, 1})
			total += j
			if j > bestP {
				bestP, bestR, bestS = j, r, s
			}
		}
	}
	if got[0] != bestR || got[1] != bestS {
		t.Fatalf("MAP = %v, want rain=%d sprinkler=%d", got, bestR, bestS)
	}
	if math.Abs(p-bestP/total) > 1e-12 {
		t.Fatalf("MAP p = %v, want %v", p, bestP/total)
	}
	// Fully observed: empty explanation, probability 1.
	got, p, err = n.MAP(Evidence{0: 0, 1: 1, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || math.Abs(p-1) > 1e-12 {
		t.Fatalf("fully observed MAP = %v, %v", got, p)
	}
	// Impossible evidence errors.
	if _, _, err := n.MAP(Evidence{0: 0, 1: 0, 2: 1}); err == nil {
		t.Fatal("zero-probability evidence accepted")
	}
}
