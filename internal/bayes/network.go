// Package bayes implements discrete Bayesian networks: directed acyclic
// graphs of categorical variables with conditional probability tables,
// exact inference by variable elimination, forward sampling, and
// Expectation-Maximization parameter learning with hidden variables.
// It is the static-network counterpart the paper compares DBNs against
// (§4, §5.5), and the dbn package builds its time slices from it.
package bayes

import (
	"errors"
	"fmt"
	"math/rand"
)

// Node is one categorical variable with its conditional probability
// table given its parents.
type Node struct {
	// Name identifies the variable.
	Name string
	// States is the cardinality (>= 2).
	States int
	// Parents are indices of parent nodes, which always precede this
	// node (networks are built in topological order).
	Parents []int
	// CPT holds P(node | parents) as rows per parent configuration
	// (first parent slowest), each row of length States summing to 1.
	CPT []float64
}

// Network is a Bayesian network under construction or in use.
type Network struct {
	Nodes  []Node
	byName map[string]int
}

// Evidence maps node index to observed state.
type Evidence map[int]int

// ErrBadNetwork reports structural mistakes.
var ErrBadNetwork = errors.New("bayes: bad network")

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{byName: map[string]int{}}
}

// AddNode appends a node with the given name, cardinality and named
// parents (which must already exist), returning its index. The CPT is
// initialized to uniform.
func (n *Network) AddNode(name string, states int, parents ...string) (int, error) {
	if states < 2 {
		return 0, fmt.Errorf("%w: node %s needs >= 2 states", ErrBadNetwork, name)
	}
	if _, dup := n.byName[name]; dup {
		return 0, fmt.Errorf("%w: duplicate node %s", ErrBadNetwork, name)
	}
	var pidx []int
	rows := 1
	for _, p := range parents {
		i, ok := n.byName[p]
		if !ok {
			return 0, fmt.Errorf("%w: node %s has unknown parent %s", ErrBadNetwork, name, p)
		}
		pidx = append(pidx, i)
		rows *= n.Nodes[i].States
	}
	cpt := make([]float64, rows*states)
	u := 1 / float64(states)
	for i := range cpt {
		cpt[i] = u
	}
	idx := len(n.Nodes)
	n.Nodes = append(n.Nodes, Node{Name: name, States: states, Parents: pidx, CPT: cpt})
	n.byName[name] = idx
	return idx, nil
}

// MustAddNode is AddNode that panics on error, for literal network
// construction.
func (n *Network) MustAddNode(name string, states int, parents ...string) int {
	i, err := n.AddNode(name, states, parents...)
	if err != nil {
		panic(err)
	}
	return i
}

// Index returns the node index for a name.
func (n *Network) Index(name string) (int, bool) {
	i, ok := n.byName[name]
	return i, ok
}

// MustIndex returns the node index for a name, panicking if absent.
func (n *Network) MustIndex(name string) int {
	i, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("bayes: no node %q", name))
	}
	return i
}

// SetCPT installs the conditional probability table for the named
// node. Rows (one per parent configuration, first parent slowest) must
// each sum to 1.
func (n *Network) SetCPT(name string, cpt []float64) error {
	i, ok := n.byName[name]
	if !ok {
		return fmt.Errorf("%w: no node %s", ErrBadNetwork, name)
	}
	node := &n.Nodes[i]
	if len(cpt) != len(node.CPT) {
		return fmt.Errorf("%w: node %s CPT length %d, want %d", ErrBadNetwork, name, len(cpt), len(node.CPT))
	}
	for r := 0; r < len(cpt); r += node.States {
		s := 0.0
		for k := 0; k < node.States; k++ {
			if cpt[r+k] < 0 {
				return fmt.Errorf("%w: node %s negative probability", ErrBadNetwork, name)
			}
			s += cpt[r+k]
		}
		if s < 0.999 || s > 1.001 {
			return fmt.Errorf("%w: node %s CPT row %d sums to %g", ErrBadNetwork, name, r/node.States, s)
		}
	}
	copy(node.CPT, cpt)
	return nil
}

// MustSetCPT is SetCPT that panics on error.
func (n *Network) MustSetCPT(name string, cpt []float64) {
	if err := n.SetCPT(name, cpt); err != nil {
		panic(err)
	}
}

// Randomize sets every CPT row to a random distribution, the usual EM
// starting point.
func (n *Network) Randomize(rng *rand.Rand) {
	for i := range n.Nodes {
		node := &n.Nodes[i]
		for r := 0; r < len(node.CPT); r += node.States {
			s := 0.0
			for k := 0; k < node.States; k++ {
				v := 0.1 + rng.Float64()
				node.CPT[r+k] = v
				s += v
			}
			for k := 0; k < node.States; k++ {
				node.CPT[r+k] /= s
			}
		}
	}
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := NewNetwork()
	for _, node := range n.Nodes {
		cp := Node{Name: node.Name, States: node.States,
			Parents: append([]int(nil), node.Parents...),
			CPT:     append([]float64(nil), node.CPT...)}
		out.byName[node.Name] = len(out.Nodes)
		out.Nodes = append(out.Nodes, cp)
	}
	return out
}

// rowIndex computes the CPT row offset for a full assignment.
func (n *Network) rowIndex(i int, assign []int) int {
	node := &n.Nodes[i]
	row := 0
	for _, p := range node.Parents {
		row = row*n.Nodes[p].States + assign[p]
	}
	return row * node.States
}

// Joint returns the joint probability of a full assignment.
func (n *Network) Joint(assign []int) float64 {
	p := 1.0
	for i := range n.Nodes {
		p *= n.Nodes[i].CPT[n.rowIndex(i, assign)+assign[i]]
	}
	return p
}

// Sample draws a full assignment by forward sampling.
func (n *Network) Sample(rng *rand.Rand) []int {
	assign := make([]int, len(n.Nodes))
	for i := range n.Nodes {
		row := n.rowIndex(i, assign)
		r := rng.Float64()
		acc := 0.0
		state := n.Nodes[i].States - 1
		for k := 0; k < n.Nodes[i].States; k++ {
			acc += n.Nodes[i].CPT[row+k]
			if r < acc {
				state = k
				break
			}
		}
		assign[i] = state
	}
	return assign
}

// factor returns the CPT of node i as a Factor over parents + node.
func (n *Network) factor(i int) *Factor {
	node := &n.Nodes[i]
	vars := append(append([]int(nil), node.Parents...), i)
	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = n.Nodes[v].States
	}
	return &Factor{Vars: vars, Card: card, Vals: append([]float64(nil), node.CPT...)}
}
