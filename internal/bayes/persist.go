package bayes

import (
	"fmt"

	"cobra/internal/monet"
)

// SaveParams stores every CPT of the network into the kernel store
// under prefix — the paper's "domain knowledge is stored within the
// database" (§2). Structure is code; parameters live in BATs.
func (n *Network) SaveParams(store *monet.Store, prefix string) {
	for i := range n.Nodes {
		node := &n.Nodes[i]
		b := monet.NewBATCap(monet.Void, monet.FloatT, len(node.CPT))
		for _, v := range node.CPT {
			b.MustInsert(monet.VoidValue(), monet.NewFloat(v))
		}
		store.Put(prefix+"/cpt/"+node.Name, b)
	}
}

// LoadParams restores CPTs previously saved under prefix. The network
// structure must match what was saved: every node needs a CPT BAT of
// the right length.
func (n *Network) LoadParams(store *monet.Store, prefix string) error {
	for i := range n.Nodes {
		node := &n.Nodes[i]
		b, err := store.Get(prefix + "/cpt/" + node.Name)
		if err != nil {
			return fmt.Errorf("bayes: no saved CPT for node %s under %q", node.Name, prefix)
		}
		if b.Len() != len(node.CPT) {
			return fmt.Errorf("bayes: saved CPT for %s has %d entries, want %d",
				node.Name, b.Len(), len(node.CPT))
		}
		cpt := make([]float64, b.Len())
		for k := 0; k < b.Len(); k++ {
			cpt[k] = b.Tail(k).Float()
		}
		if err := n.SetCPT(node.Name, cpt); err != nil {
			return err
		}
	}
	return nil
}

// HasParams reports whether parameters are saved under prefix for this
// network's first node (a cheap availability probe).
func (n *Network) HasParams(store *monet.Store, prefix string) bool {
	if len(n.Nodes) == 0 {
		return false
	}
	return store.Has(prefix + "/cpt/" + n.Nodes[0].Name)
}
