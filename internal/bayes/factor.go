package bayes

import (
	"fmt"
	"sort"
)

// Factor is a table over a set of variables, the working unit of
// variable elimination. Vars are sorted ascending; the last variable is
// the fastest-changing index dimension.
type Factor struct {
	Vars []int
	Card []int
	Vals []float64
}

// NewFactor allocates a zero factor over the given variables and
// cardinalities (parallel slices, vars strictly ascending).
func NewFactor(vars, card []int) *Factor {
	size := 1
	for _, c := range card {
		size *= c
	}
	return &Factor{
		Vars: append([]int(nil), vars...),
		Card: append([]int(nil), card...),
		Vals: make([]float64, size),
	}
}

// strides returns per-variable index strides (last var fastest).
func (f *Factor) strides() []int {
	s := make([]int, len(f.Vars))
	acc := 1
	for i := len(f.Vars) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= f.Card[i]
	}
	return s
}

// indexOf computes the flat index for an assignment covering f.Vars
// (assign is indexed by global variable id).
func (f *Factor) indexOf(assign map[int]int) int {
	idx := 0
	st := f.strides()
	for i, v := range f.Vars {
		idx += assign[v] * st[i]
	}
	return idx
}

// At returns the value for the given global assignment.
func (f *Factor) At(assign map[int]int) float64 { return f.Vals[f.indexOf(assign)] }

// normalizeOrder returns a copy of f with variables sorted ascending.
func (f *Factor) normalizeOrder() *Factor {
	if sort.IntsAreSorted(f.Vars) {
		return f
	}
	order := make([]int, len(f.Vars))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return f.Vars[order[a]] < f.Vars[order[b]] })
	nv := make([]int, len(f.Vars))
	nc := make([]int, len(f.Vars))
	for i, o := range order {
		nv[i] = f.Vars[o]
		nc[i] = f.Card[o]
	}
	out := NewFactor(nv, nc)
	oldStr := f.strides()
	assign := make([]int, len(f.Vars))
	for idx := range out.Vals {
		// Decompose idx in the new ordering.
		rem := idx
		newStr := out.strides()
		for i := range nv {
			assign[i] = rem / newStr[i]
			rem %= newStr[i]
		}
		// Map to old index.
		old := 0
		for i, o := range order {
			old += assign[i] * oldStr[o]
		}
		out.Vals[idx] = f.Vals[old]
	}
	return out
}

// Multiply returns the factor product f * g.
func (f *Factor) Multiply(g *Factor) *Factor {
	f = f.normalizeOrder()
	g = g.normalizeOrder()
	// Union of variables.
	vars := make([]int, 0, len(f.Vars)+len(g.Vars))
	card := make([]int, 0, cap(vars))
	i, j := 0, 0
	for i < len(f.Vars) || j < len(g.Vars) {
		switch {
		case j >= len(g.Vars) || (i < len(f.Vars) && f.Vars[i] < g.Vars[j]):
			vars = append(vars, f.Vars[i])
			card = append(card, f.Card[i])
			i++
		case i >= len(f.Vars) || g.Vars[j] < f.Vars[i]:
			vars = append(vars, g.Vars[j])
			card = append(card, g.Card[j])
			j++
		default:
			if f.Card[i] != g.Card[j] {
				panic(fmt.Sprintf("bayes: cardinality mismatch for var %d", f.Vars[i]))
			}
			vars = append(vars, f.Vars[i])
			card = append(card, f.Card[i])
			i++
			j++
		}
	}
	out := NewFactor(vars, card)
	outStr := out.strides()
	// Precompute position of each out var in f and g.
	fPos := make([]int, len(vars))
	gPos := make([]int, len(vars))
	for k, v := range vars {
		fPos[k] = -1
		gPos[k] = -1
		for a, fv := range f.Vars {
			if fv == v {
				fPos[k] = a
			}
		}
		for a, gv := range g.Vars {
			if gv == v {
				gPos[k] = a
			}
		}
	}
	fStr := f.strides()
	gStr := g.strides()
	assign := make([]int, len(vars))
	for idx := range out.Vals {
		rem := idx
		for k := range vars {
			assign[k] = rem / outStr[k]
			rem %= outStr[k]
		}
		fi, gi := 0, 0
		for k := range vars {
			if fPos[k] >= 0 {
				fi += assign[k] * fStr[fPos[k]]
			}
			if gPos[k] >= 0 {
				gi += assign[k] * gStr[gPos[k]]
			}
		}
		out.Vals[idx] = f.Vals[fi] * g.Vals[gi]
	}
	return out
}

// SumOut marginalizes variable v out of the factor.
func (f *Factor) SumOut(v int) *Factor {
	f = f.normalizeOrder()
	pos := -1
	for i, fv := range f.Vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		return f
	}
	nv := append(append([]int(nil), f.Vars[:pos]...), f.Vars[pos+1:]...)
	nc := append(append([]int(nil), f.Card[:pos]...), f.Card[pos+1:]...)
	out := NewFactor(nv, nc)
	fStr := f.strides()
	outStr := out.strides()
	assign := make([]int, len(nv))
	for idx := range out.Vals {
		rem := idx
		for k := range nv {
			assign[k] = rem / outStr[k]
			rem %= outStr[k]
		}
		base := 0
		ai := 0
		for i := range f.Vars {
			if i == pos {
				continue
			}
			base += assign[ai] * fStr[i]
			ai++
		}
		s := 0.0
		for st := 0; st < f.Card[pos]; st++ {
			s += f.Vals[base+st*fStr[pos]]
		}
		out.Vals[idx] = s
	}
	return out
}

// Reduce conditions the factor on variable v taking the given state:
// incompatible entries are zeroed and the variable is dropped.
func (f *Factor) Reduce(v, state int) *Factor {
	f = f.normalizeOrder()
	pos := -1
	for i, fv := range f.Vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		return f
	}
	nv := append(append([]int(nil), f.Vars[:pos]...), f.Vars[pos+1:]...)
	nc := append(append([]int(nil), f.Card[:pos]...), f.Card[pos+1:]...)
	out := NewFactor(nv, nc)
	fStr := f.strides()
	outStr := out.strides()
	assign := make([]int, len(nv))
	for idx := range out.Vals {
		rem := idx
		for k := range nv {
			assign[k] = rem / outStr[k]
			rem %= outStr[k]
		}
		base := state * fStr[pos]
		ai := 0
		for i := range f.Vars {
			if i == pos {
				continue
			}
			base += assign[ai] * fStr[i]
			ai++
		}
		out.Vals[idx] = f.Vals[base]
	}
	return out
}

// Normalize scales the factor to sum to 1 (no-op on a zero factor) and
// returns the pre-normalization sum.
func (f *Factor) Normalize() float64 {
	s := 0.0
	for _, v := range f.Vals {
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range f.Vals {
			f.Vals[i] *= inv
		}
	}
	return s
}

// Clone returns a deep copy.
func (f *Factor) Clone() *Factor {
	return &Factor{
		Vars: append([]int(nil), f.Vars...),
		Card: append([]int(nil), f.Card...),
		Vals: append([]float64(nil), f.Vals...),
	}
}
