package vet

import (
	"go/token"
	"strings"
	"testing"
)

func TestLoaderTypechecksModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModPath != "cobra" {
		t.Fatalf("module path = %q", l.ModPath)
	}
	pkg, err := l.Load("cobra/internal/monet")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "monet" || len(pkg.Files) == 0 {
		t.Fatalf("pkg = %+v", pkg)
	}
	if pkg.Types.Scope().Lookup("Store") == nil {
		t.Error("monet.Store not in package scope")
	}
	if len(pkg.TestFiles) == 0 {
		t.Error("monet test files not parsed")
	}
	// Loading again hits the cache and returns the same package.
	again, err := l.Load("cobra/internal/monet")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Error("second load did not hit the cache")
	}
}

func TestModulePackagesListsKnownPaths(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"cobra/internal/monet": false,
		"cobra/internal/vet":   false,
		"cobra/cmd/cobravet":   false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package listed: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("package %s not listed (got %v)", p, paths)
		}
	}
}

func TestRunReportsInPositionOrder(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("cobra/internal/vet")
	if err != nil {
		t.Fatal(err)
	}
	noisy := &Analyzer{
		Name: "noisy",
		Doc:  "test analyzer reporting every file's package clause",
		Run: func(p *Pass) error {
			// Report in reverse to prove Run sorts.
			for i := len(p.Pkg.Files) - 1; i >= 0; i-- {
				p.Reportf(p.Pkg.Files[i].Package, "file %d", i)
			}
			return nil
		},
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{noisy})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != len(pkg.Files) {
		t.Fatalf("diags = %d, want %d", len(diags), len(pkg.Files))
	}
	var prev token.Position
	for _, d := range diags {
		if d.Position.Filename < prev.Filename {
			t.Errorf("out of order: %s after %s", d.Position, prev)
		}
		prev = d.Position
		if d.Analyzer != "noisy" || !strings.HasPrefix(d.Message, "file ") {
			t.Errorf("diag = %+v", d)
		}
	}
}
