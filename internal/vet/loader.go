package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks module packages from source using only the
// standard library: module-internal imports resolve recursively from
// the module root, everything else goes through the compiler's source
// importer. Loaded packages are cached, so shared dependencies check
// once.
type Loader struct {
	// Fset receives the positions of every parsed file.
	Fset *token.FileSet
	// ModRoot is the module's directory on disk.
	ModRoot string
	// ModPath is the module path from go.mod.
	ModPath string

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader builds a loader for the module containing dir (discovered
// by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return nil, fmt.Errorf("vet: no module path in %s/go.mod", root)
			}
			// The source importer shells out to per-file build checks
			// that choke on cgo; the project is pure Go.
			build.Default.CgoEnabled = false
			fset := token.NewFileSet()
			return &Loader{
				Fset:    fset,
				ModRoot: root,
				ModPath: modPath,
				std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
				pkgs:    map[string]*Package{},
			}, nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("vet: no go.mod above %s", abs)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer for the type-checker's recursive
// resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom routes module-internal paths to source loading and
// everything else to the standard importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.ModRoot, strings.TrimPrefix(path, l.ModPath))
	return l.LoadDir(dir, path)
}

// LoadDir type-checks the package in dir under the given import path.
// It powers both module loading and analyzer tests over testdata
// packages (which the go tool itself never builds).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: typecheck %s: %w", path, err)
	}
	p := &Package{
		Fset:      l.Fset,
		Path:      path,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the package's source files, splitting test files out
// for syntax-only analysis.
func (l *Loader) parseDir(dir string) (files, testFiles []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(n, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return files, testFiles, nil
}

// ModulePackages lists the import paths of every package under the
// module root, skipping testdata and hidden directories.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.ModRoot, path)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.ModPath)
				} else {
					paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	return paths, err
}
