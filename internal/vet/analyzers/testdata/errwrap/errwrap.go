// Package errwrap is the errwrap analyzer's fixture.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func bad(name string) error {
	return fmt.Errorf("load %s: %v", name, errSentinel) // want "use %w"
}

func badS(err error) error {
	return fmt.Errorf("run: %s", err) // want "use %w"
}

func good(name string, err error) error {
	return fmt.Errorf("load %s: %w", name, err)
}

func notAnError(name string) error {
	return fmt.Errorf("bad name %q at %v", name, 42)
}

func widthFlags(err error) error {
	return fmt.Errorf("pad %-8s end: %+v", "x", err) // want "use %w"
}
