// Package chansend is the chansend analyzer's fixture: no potentially
// blocking channel send while a mutex is held.
package chansend

import (
	"context"
	"sync"

	"cobra/internal/vet/analyzers/testdata/chansend/sendlib"
)

var mu sync.Mutex

// heldSend blocks with the lock taken.
func heldSend(ch chan int) {
	mu.Lock()
	ch <- 1 // want "may block while"
	mu.Unlock()
}

// heldSendDefer is the same hazard spelled with defer: the lock stays
// held to function end.
func heldSendDefer(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want "may block while"
}

// heldCall reaches the blocking send through another package while
// holding the lock.
func heldCall(ch chan int) {
	mu.Lock()
	sendlib.Push(ch, 1) // want "may block on a send"
	mu.Unlock()
}

// escapeDefault is fine: the default arm makes the send non-blocking.
func escapeDefault(ch chan int) {
	mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}

// escapeCtx is fine: cancellation bounds the park.
func escapeCtx(ctx context.Context, ch chan int) {
	mu.Lock()
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
	mu.Unlock()
}

// escapeCall is fine: the callee's send carries its own escape.
func escapeCall(ch chan int) {
	mu.Lock()
	sendlib.TryPush(ch, 1)
	mu.Unlock()
}

// localChan is fine: the function made the channel and controls its
// consumer (the kernel fan-out idiom).
func localChan() {
	mu.Lock()
	ch := make(chan int, 1)
	ch <- 1
	mu.Unlock()
	<-ch
}

// unlocked is fine: blocking without a lock held is ordinary
// synchronization.
func unlocked(ch chan int) {
	ch <- 1
}

// afterUnlock is fine: the send happens outside the critical section.
func afterUnlock(ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}
