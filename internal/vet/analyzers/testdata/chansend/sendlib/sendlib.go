// Package sendlib is the chansend fixture's imported package: its
// blocking send is reached from the main fixture package under a lock,
// so the may-block fact must cross the package boundary.
package sendlib

import "context"

// Push sends unconditionally — it may block until a receiver shows up.
func Push(ch chan int, v int) {
	ch <- v
}

// TryPush cannot block: the default arm makes the send best-effort.
func TryPush(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// PushCtx cannot park forever: cancellation is always an out.
func PushCtx(ctx context.Context, ch chan int, v int) error {
	select {
	case ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
