// Package poolleak is the poolleak analyzer's fixture.
package poolleak

import "cobra/internal/monet"

func leaks() {
	b := monet.DefaultPool().Batch() // want "may return with submitted tasks still running"
	b.Submit(func() {})
}

func earlyReturn(fail bool) {
	b := monet.DefaultPool().Batch()
	b.Submit(func() {})
	if fail {
		return // want "may leak"
	}
	b.Wait()
}

func waited() {
	b := monet.DefaultPool().Batch()
	b.Submit(func() {})
	b.Wait()
}

func deferred(fail bool) {
	b := monet.DefaultPool().Batch()
	defer b.Wait()
	if fail {
		return
	}
	b.Submit(func() {})
}

// returnInsideTask must not count as a path out of the function: the
// closure's return exits the submitted task only.
func returnInsideTask(xs []int) {
	b := monet.DefaultPool().Batch()
	for _, x := range xs {
		x := x
		b.Submit(func() {
			if x < 0 {
				return
			}
			_ = x * x
		})
	}
	b.Wait()
}

func escapes() *monet.Batch {
	b := monet.DefaultPool().Batch()
	b.Submit(func() {})
	return b
}

func passedOn() {
	b := monet.DefaultPool().Batch()
	drain(b)
}

func drain(b *monet.Batch) { b.Wait() }

func poolNeverClosed() {
	p := monet.NewPool(2) // want "never closed"
	b := p.Batch()
	b.Submit(func() {})
	b.Wait()
}

func poolClosed() {
	p := monet.NewPool(2)
	defer p.Close()
	b := p.Batch()
	b.Submit(func() {})
	b.Wait()
}

// sharedPoolNotClosed: DefaultPool is shared; requiring Close on it
// would be wrong, so only NewPool results are checked.
func sharedPoolNotClosed() {
	p := monet.DefaultPool()
	b := p.Batch()
	b.Submit(func() {})
	b.Wait()
}
