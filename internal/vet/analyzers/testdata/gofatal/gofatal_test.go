package gofatal

import (
	"sync"
	"testing"
)

func TestBad(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if true {
			t.Fatal("boom") // want "spawned goroutine"
		}
		t.Fatalf("boom %d", 1) // want "spawned goroutine"
	}()
	wg.Wait()
}

func TestSkipInGoroutine(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.SkipNow() // want "spawned goroutine"
	}()
	<-done
}

func TestGood(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		errc <- work(t)
	}()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func work(tb testing.TB) error {
	tb.Helper()
	return nil
}
