// Package gofatal is the gofatal analyzer's fixture.
package gofatal
