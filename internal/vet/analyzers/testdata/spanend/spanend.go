// Package spanend is the spanend analyzer's fixture.
package spanend

import "cobra/internal/obs"

func leaks() {
	sp := obs.StartSpan("work") // want "never finished"
	_ = sp.Name()
}

func earlyReturn(fail bool) {
	sp := obs.StartSpan("work")
	if fail {
		return // want "may leak span"
	}
	sp.Finish()
}

func finished() {
	sp := obs.StartSpan("work")
	sp.SetAttr("k", "v")
	sp.Finish()
}

func deferred(fail bool) {
	sp := obs.StartSpan("work")
	defer sp.Finish()
	if fail {
		return
	}
	sp.SetAttr("k", "v")
}

func escapesByReturn() *obs.Span {
	sp := obs.StartSpan("work")
	return sp
}

func escapesAsArg() {
	sp := obs.StartSpan("work")
	consume(sp)
}

func consume(sp *obs.Span) { sp.Finish() }

func child(parent *obs.Span) {
	c := parent.StartChild("step") // want "never finished"
	_ = c.Name()
}
