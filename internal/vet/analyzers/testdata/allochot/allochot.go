// Package allochot is the allochot analyzer's fixture: no heap
// allocation in loops on hot paths reachable from Pool.Submit.
package allochot

import (
	"cobra/internal/monet"

	"cobra/internal/vet/analyzers/testdata/allochot/hotlib"
)

// direct submits a morsel body that grows a slice and fills a map per
// row.
func direct(n int) {
	b := monet.DefaultPool().Batch()
	b.Submit(func() {
		var xs []int
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			xs = append(xs, i)                  // want "append growth"
			seen[i] = true                      // want "map insert"
			p := &point{i, i}                   // want "pointer literal"
			xs = append(xs, expand(xs, p.x)...) // want "append growth"
		}
		_ = xs
	})
	b.Wait()
}

type point struct{ x, y int }

// expand lives outside the monet kernel, so hotness does not follow
// the call into it: its own growth stays unflagged by design (only
// kernel-package callees inherit hotness).
func expand(xs []int, v int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x+v)
	}
	return out
}

// crossPackage passes its morsel body to another package's driver; the
// body becomes hot through the driver's function parameter.
func crossPackage() {
	hotlib.RunHot(4, func(m, lo, hi int) {
		var idx []int
		for i := lo; i < hi; i++ {
			idx = append(idx, i) // want "append growth"
		}
		_ = idx
	})
}

// preallocated is the fixed form: sized scratch, no growth, exempt.
func preallocated() {
	hotlib.RunHot(4, func(m, lo, hi int) {
		idx := make([]int, 0, hi-lo)
		seen := make(map[int]bool, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
			seen[i] = true
		}
		_ = idx
	})
}

// allowed is suppressed by a justified pragma.
func allowed() {
	hotlib.RunHot(4, func(m, lo, hi int) {
		var idx []int
		for i := lo; i < hi; i++ {
			//cobravet:allow allochot // fixture: justified growth
			idx = append(idx, i)
		}
		_ = idx
	})
}

// cold allocates in a loop outside any hot path — never flagged.
func cold(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}
