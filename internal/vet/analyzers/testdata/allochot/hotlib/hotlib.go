// Package hotlib is the allochot fixture's imported package: a
// runMorsels-style driver whose function parameter is invoked from a
// Pool.Submit closure, so hotness must propagate through the parameter
// to literals passed in from other packages.
package hotlib

import "cobra/internal/monet"

// RunHot fans fn out across nm morsel tasks on the shared pool.
func RunHot(nm int, fn func(m, lo, hi int)) {
	b := monet.DefaultPool().Batch()
	for m := 0; m < nm; m++ {
		m := m
		//cobravet:allow allochot // fixture: one closure per morsel is the fan-out unit
		b.Submit(func() {
			fn(m, m*8, m*8+8)
		})
	}
	b.Wait()
}
