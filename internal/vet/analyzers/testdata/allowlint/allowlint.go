// Package allowlint is the allowlint analyzer's fixture: allow
// pragmas must name real analyzers.
package allowlint

// Valid pragma forms are silent.

//cobravet:allow allochot // justified: fixture example
func justified() {}

func inline() {
	//cobravet:allow spanend errwrap // two names, both real
	_ = 0
}

// Malformed forms are flagged.

//cobravet:allow // want "names no analyzer"
func empty() {}

//cobravet:allow alochot // want "unknown analyzer"
func typo() {}

func mixed() {
	//cobravet:allow errwrap nosuchcheck // want "unknown analyzer"
	_ = 0
}

// A non-pragma comment mentioning cobravet:allow in prose is ignored:
// see //cobravet:allowance — not the prefix followed by a space.
func prose() {}
