// Package a is the lockorder fixture's lower-level package: it owns an
// exported mutex plus a helper that acquires it, so a dependent
// package calling the helper under its own lock creates a
// cross-package ordering edge through the helper's lock closure.
package a

import "sync"

// Mu is taken directly by package b in both orders relative to b's own
// mutex, closing the cross-package cycle.
var Mu sync.Mutex

// LockOther acquires Mu on behalf of callers; package b calls it while
// holding b.mu, so this acquisition is the "to" site of the b.mu → Mu
// edge.
func LockOther() {
	Mu.Lock() // want "lock-order cycle"
	Mu.Unlock()
}

// ordered is this package's second mutex; it is only ever taken under
// Mu, a consistent order that must not be reported.
var ordered sync.Mutex

// Consistent takes Mu then ordered — one direction only.
func Consistent() {
	Mu.Lock()
	defer Mu.Unlock()
	ordered.Lock()
	ordered.Unlock()
}
