// Package b is the lockorder fixture's upper-level package: it takes
// its own mutex and package a's in both orders, one of them through
// a's helper function, so the cycle spans a direct acquisition, an
// interprocedural closure, and two packages.
package b

import (
	"sync"

	"cobra/internal/vet/analyzers/testdata/lockorder/a"
)

var mu sync.Mutex

// BA holds b's mutex while calling into a, whose helper takes a.Mu:
// the b.mu → a.Mu edge, discovered through LockOther's lock closure.
func BA() {
	mu.Lock()
	a.LockOther()
	mu.Unlock()
}

// AB takes a.Mu directly and then b's mutex under it: the a.Mu → b.mu
// edge that closes the cycle.
func AB() {
	a.Mu.Lock()
	mu.Lock() // want "lock-order cycle"
	mu.Unlock()
	a.Mu.Unlock()
}

// bailEarly unlocks on its error path before a second acquisition; the
// branch-local unlock must not leave mu "held" for the code below, so
// no a.Mu-under-mu edge is recorded here beyond BA's real one.
func bailEarly(fail bool) {
	mu.Lock()
	if fail {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// Consistent respects the a.Mu → ordered hierarchy from package a and
// must stay silent.
func Consistent() {
	a.Consistent()
}
