// Package epochguard is the epochguard analyzer's fixture: a
// miniature kernel store whose mutators must bump the index epoch.
package epochguard

import "cobra/internal/monet"

// store mimics the kernel store shape the analyzer keys on: a struct
// holding the bats map.
type store struct {
	bats   map[string]*monet.BAT
	epochs map[string]uint64
}

// bumpEpochLocked invalidates the adaptive indexes of one BAT.
func (s *store) bumpEpochLocked(name string) {
	s.epochs[name]++
}

// goodPut replaces a BAT and invalidates its indexes.
func (s *store) goodPut(name string, b *monet.BAT) {
	s.bats[name] = b
	s.bumpEpochLocked(name)
}

// badPut replaces a BAT but leaves stale indexes behind.
func (s *store) badPut(name string, b *monet.BAT) {
	s.bats[name] = b // want "assigns a bats entry without bumping the index epoch"
}

// goodDrop removes a BAT and invalidates.
func (s *store) goodDrop(name string) {
	delete(s.bats, name)
	s.bumpEpochLocked(name)
}

// badDrop removes a BAT without invalidating.
func (s *store) badDrop(name string) {
	delete(s.bats, name) // want "deletes a bats entry without bumping the index epoch"
}

// goodAppend mutates a stored BAT's tail in place and invalidates.
func (s *store) goodAppend(name string, h, t monet.Value) error {
	b := s.bats[name]
	if err := b.Insert(h, t); err != nil {
		return err
	}
	s.bumpEpochLocked(name)
	return nil
}

// badAppend mutates a stored BAT's tail in place without invalidating.
func (s *store) badAppend(name string, h, t monet.Value) {
	s.bats[name].MustInsert(h, t) // want "inserts into a stored BAT in place"
}

// badAppendVar mutates through an alias of a stored BAT — provenance
// through the local variable is still a stored-BAT insert.
func (s *store) badAppendVar(name string, h, t monet.Value) {
	b := s.bats[name]
	b.MustInsert(h, t) // want "inserts into a stored BAT in place"
}

// report builds a fresh scratch BAT inside a store method; inserts
// into it never touch stored state and are exempt.
func (s *store) report(name string) *monet.BAT {
	out := monet.NewBAT(monet.StrT, monet.StrT)
	out.MustInsert(monet.NewStr("name"), monet.NewStr(name))
	out.MustInsert(monet.NewStr("rows"), monet.NewStr("0"))
	return out
}

// reader methods that do not mutate are exempt.
func (s *store) get(name string) *monet.BAT {
	return s.bats[name]
}

// helper types without a bats map are outside the contract even when
// they insert into BATs.
type builder struct {
	out *monet.BAT
}

func (b *builder) add(h, t monet.Value) {
	b.out.MustInsert(h, t)
}
