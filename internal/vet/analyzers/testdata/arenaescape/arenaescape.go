// Package arenaescape is the arenaescape analyzer's fixture: the
// three ways scratch can outlive its arena, next to the legal
// copy-out and borrow-within-morsel patterns they are confused with.
package arenaescape

import "cobra/internal/monet"

// escapesViaReturn hands arena scratch to the caller; the deferred
// PutArena recycles the backing array while the caller still holds it.
func escapesViaReturn(n int) []int {
	a := monet.GetArena()
	defer monet.PutArena(a)
	buf := a.Ints(n)
	return buf // want "escapes via return"
}

// copiedOut is the legal pattern: an exact-size copy leaves the arena
// before the handle goes back.
func copiedOut(n int) []int {
	a := monet.GetArena()
	buf := a.Ints(n)
	out := append([]int(nil), buf...)
	monet.PutArena(a)
	return out
}

// storedPastScope parks a borrowed buffer in a caller-owned slot — the
// joinPar bug shape, where per-morsel partials must be copied out.
func storedPastScope(parts [][]int, k, n int) {
	a := monet.GetArena()
	ls := a.Ints(n)[:0]
	ls = append(ls, k)
	parts[k] = ls // want "stored into a longer-lived structure"
	monet.PutArena(a)
}

// copyOutPerMorsel is the legal counterpart of storedPastScope.
func copyOutPerMorsel(parts [][]int, k, n int) {
	a := monet.GetArena()
	ls := a.Ints(n)[:0]
	ls = append(ls, k)
	parts[k] = append([]int(nil), ls...)
	monet.PutArena(a)
}

// usedAfterPut touches scratch after the handle was recycled: another
// borrower may already be writing through the same backing array.
func usedAfterPut(n int) int {
	a := monet.GetArena()
	buf := a.Ints(n)
	monet.PutArena(a)
	return buf[0] // want "used after its arena"
}

// handleAfterPut borrows from a handle that has already gone back.
func handleAfterPut(n int) {
	a := monet.GetArena()
	_ = a.Ints(n)
	monet.PutArena(a)
	_ = a.Ints(n) // want "used after its arena"
}

// resetReleases covers the in-place release: Reset recycles the
// scratch just like PutArena does.
func resetReleases(n int) float64 {
	a := monet.GetArena()
	buf := a.Floats(n)
	a.Reset()
	return buf[0] // want "used after its arena"
}

var sink struct{ buf []int64 }

// storedFromClosure leaks through a captured reference: the closure
// stores the outer scope's buffer into package state.
func storedFromClosure(n int) {
	a := monet.GetArena()
	buf := a.Int64s(n)
	func() {
		sink.buf = buf // want "stored into a longer-lived structure"
	}()
	monet.PutArena(a)
}

// morselLocal is the kernel's own shape: each closure borrows, uses,
// copies out, and returns its arena — nothing to report.
func morselLocal(parts [][]int, n int) {
	for k := range parts {
		k := k
		func() {
			a := monet.GetArena()
			ls := a.Ints(n)[:0]
			ls = append(ls, k)
			parts[k] = append([]int(nil), ls...)
			monet.PutArena(a)
		}()
	}
}

// slotsFollowTheRule covers the lookup tables: they live on the arena
// too.
func slotsFollowTheRule(keys []int64) int {
	a := monet.GetArena()
	slots := a.IntSlots()
	for i, k := range keys {
		slots[k] = int32(i)
	}
	monet.PutArena(a)
	return len(slots) // want "used after its arena"
}
