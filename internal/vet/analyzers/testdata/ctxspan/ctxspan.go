// Package ctxspan is the ctxspan analyzer's fixture.
package ctxspan

import (
	"context"

	"cobra/internal/obs"
)

func orphan() { // want "starts a span but has no context.Context"
	sp := obs.StartSpan("work")
	sp.Finish()
}

func withCtx(ctx context.Context) {
	sp := obs.SpanFromContext(ctx).StartChild("work")
	sp.Finish()
}

func withSpan(parent *obs.Span) {
	sp := parent.StartChild("work")
	sp.Finish()
}

func isRoot() {
	sp := obs.StartTrace("request")
	sp.Finish()
}

func branchLeak(ctx context.Context, fail bool) {
	sp := obs.SpanFromContext(ctx).StartChild("work")
	if fail {
		return // want "may leak span"
	}
	sp.Finish()
}

func crossCaseLeak(ctx context.Context, mode int) {
	switch mode {
	case 0:
		sp := obs.SpanFromContext(ctx).StartChild("a") // want "not finished in its enclosing block"
		sp.SetAttr("k", "v")
	case 1:
		// A same-named finish in a sibling case must not mask case 0.
		sp := obs.SpanFromContext(ctx).StartChild("b")
		sp.Finish()
	}
}

func deferredFinish(parent *obs.Span, fail bool) {
	sp := parent.StartChild("work")
	defer sp.Finish()
	if fail {
		return
	}
	sp.SetAttr("k", "v")
}

func finishInTask(parent *obs.Span, run func(func())) {
	sp := parent.StartChild("work")
	run(func() {
		sp.Finish()
	})
}

func handsOff(parent *obs.Span) {
	sp := parent.StartChild("work")
	consume(sp)
}

func consume(sp *obs.Span) {
	sp.Finish()
}

type holder struct {
	sp *obs.Span
}

func storesSpan(parent *obs.Span) holder {
	sp := parent.StartChild("work")
	return holder{sp: sp}
}
