// Package goleak is the goleak analyzer's fixture: every go statement
// must spawn a goroutine with a reachable stop path.
package goleak

import (
	"context"

	"cobra/internal/vet/analyzers/testdata/goleak/leaklib"
)

// spawnImported leaks: the spawned function lives in another package
// and loops forever — the fact flows along the import.
func spawnImported() {
	go leaklib.Forever() // want "no stop path"
}

// spawnIndirect leaks through two hops: a local wrapper calling an
// imported function that never returns.
func spawnIndirect() {
	go wrapper() // want "no stop path"
}

func wrapper() {
	leaklib.Indirect()
}

// spawnLitLeak leaks: a literal with a condition-less loop and no exit.
func spawnLitLeak(ch chan int) {
	go func() { // want "no stop path"
		for {
			<-ch
		}
	}()
}

// spawnSelectBreak leaks subtly: break inside select leaves the
// SELECT, not the loop, so the loop has no exit.
func spawnSelectBreak(ch chan int) {
	go func() { // want "no stop path"
		for {
			select {
			case <-ch:
				break
			}
		}
	}()
}

// spawnStoppable is fine: the spawned function returns on quit.
func spawnStoppable(work chan int, quit chan struct{}) {
	go leaklib.Stoppable(work, quit)
}

// spawnCtx is fine: the literal returns on cancellation.
func spawnCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// spawnRange is fine: ranging over a channel ends when it closes.
func spawnRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// spawnLabeledBreak is fine: the labeled break targets the outer loop.
func spawnLabeledBreak(ch chan int) {
	go func() {
	loop:
		for {
			select {
			case v := <-ch:
				if v < 0 {
					break loop
				}
			}
		}
	}()
}

// spawnBounded is fine: a conditional loop is not a forever loop.
func spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}
