// Package leaklib is the goleak fixture's imported package: its
// forever-looping function is spawned from the main fixture package,
// so the leak fact must cross the package boundary.
package leaklib

// Forever never returns: no condition, no exit statement.
func Forever() {
	for {
	}
}

// Stoppable drains work until the quit channel closes — a reachable
// stop path, so spawning it is fine.
func Stoppable(work chan int, quit chan struct{}) {
	for {
		select {
		case <-work:
		case <-quit:
			return
		}
	}
}

// Indirect hides the forever loop one static call deeper.
func Indirect() {
	Forever()
}
