// Package storelock is the storelock analyzer's fixture.
package storelock

import "cobra/internal/monet"

// badJournal calls back into the store from journal hooks.
type badJournal struct {
	store *monet.Store
}

// JournalPut implements monet.Journal.
func (j *badJournal) JournalPut(name string, b *monet.BAT) error {
	_, _ = j.store.Get(name) // want "deadlocks"
	return nil
}

// JournalAppend implements monet.Journal.
func (j *badJournal) JournalAppend(name string, h, t monet.Value) error {
	return j.store.Drop(name) // want "deadlocks"
}

// JournalDrop implements monet.Journal.
func (j *badJournal) JournalDrop(name string) error {
	return nil
}

// goodJournal touches only its own state.
type goodJournal struct {
	names []string
}

// JournalPut implements monet.Journal.
func (j *goodJournal) JournalPut(name string, b *monet.BAT) error {
	j.names = append(j.names, name)
	return nil
}

// JournalAppend implements monet.Journal.
func (j *goodJournal) JournalAppend(name string, h, t monet.Value) error {
	return nil
}

// JournalDrop implements monet.Journal.
func (j *goodJournal) JournalDrop(name string) error {
	return nil
}

// inspect may use the store freely outside the Journal hooks.
func (j *badJournal) inspect(name string) bool {
	_, err := j.store.Get(name)
	return err == nil
}
