package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"cobra/internal/vet"
)

// ErrWrap reports fmt.Errorf calls that format an error value with %v
// or %s instead of wrapping it with %w. Unwrapped errors break
// errors.Is/errors.As chains — the caller can no longer match sentinel
// errors like monet.ErrNotFound through the message.
var ErrWrap = &vet.Analyzer{
	Name: "errwrap",
	Code: "CV005",
	Doc: "report fmt.Errorf formatting an error with %v/%s; wrap with " +
		"%w so errors.Is and errors.As keep working",
	Run: runErrWrap,
}

func runErrWrap(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(call) || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkVerbs(pass, format, call.Args[1:])
			return true
		})
	}
	return nil
}

// isFmtErrorf matches fmt.Errorf by selector shape.
func isFmtErrorf(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "fmt"
}

// checkVerbs pairs each format verb with its argument and reports
// error-typed arguments rendered by %v or %s.
func checkVerbs(pass *vet.Pass, format string, args []ast.Expr) {
	argi := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width and precision; an explicit argument index
		// resets pairing, which this simple scanner does not model.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0' || format[i] == '.' ||
			(format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			return
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if verb == '[' {
			return
		}
		if argi >= len(args) {
			return
		}
		arg := args[argi]
		argi++
		if (verb == 'v' || verb == 's') && isErrorType(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error formatted with %%%c; use %%w so callers can unwrap it", verb)
		}
	}
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}
