package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// EpochGuard enforces the store's index-invalidation contract: the
// adaptive access paths (zone maps, crackers, dictionaries) cache
// per-BAT state keyed by an epoch counter, so every method of a
// store-like type — a struct holding the `bats` map — that mutates
// stored BATs must bump the epoch via bumpEpochLocked in the same
// function. A mutation is an assignment to a `bats` entry, a
// delete(...bats, ...) call, or an Insert/MustInsert into a stored
// *monet.BAT (the in-place tail append Append performs) — inserts
// into freshly built report or scratch BATs are exempt. Without the
// bump, indexes keep answering from the pre-mutation column copy.
var EpochGuard = &vet.Analyzer{
	Name: "epochguard",
	Code: "CV007",
	Doc: "report store methods that mutate stored BATs (bats map writes, " +
		"deletes, or in-place BAT inserts) without bumping the index epoch " +
		"via bumpEpochLocked",
	Run: runEpochGuard,
}

func runEpochGuard(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "bumpEpochLocked" {
				continue
			}
			if len(fn.Recv.List) == 0 || !hasBatsField(pass.TypeOf(fn.Recv.List[0].Type)) {
				continue
			}
			checkEpochBody(pass, fn)
		}
	}
	return nil
}

// hasBatsField reports whether t (or its pointee) is a struct with a
// map field named bats — the shape of the kernel store.
func hasBatsField(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "bats" {
			_, isMap := f.Type().Underlying().(*types.Map)
			return isMap
		}
	}
	return false
}

// checkEpochBody records BAT mutations and bumpEpochLocked calls in
// one store method, reporting each mutation when no bump is present.
// Insert/MustInsert only counts as a mutation when its receiver
// provably derives from the bats map — either `x.bats[k].Insert(...)`
// directly or through an identifier assigned from a bats entry.
// Inserts into locally constructed BATs (report builders, scratch
// results) are outside the invalidation contract.
func checkEpochBody(pass *vet.Pass, fn *ast.FuncDecl) {
	stored := storedBATIdents(fn.Body)
	var muts []ast.Node
	var verbs []string
	bumped := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if sel, ok := ix.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "bats" {
					muts = append(muts, st)
					verbs = append(verbs, "assigns a bats entry")
				}
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
				if sel, ok := st.Args[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "bats" {
					muts = append(muts, st)
					verbs = append(verbs, "deletes a bats entry")
				}
				return true
			}
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "bumpEpochLocked":
				bumped = true
			case "Insert", "MustInsert":
				if isMonetBAT(pass.TypeOf(sel.X)) && derivesFromBats(sel.X, stored) {
					muts = append(muts, st)
					verbs = append(verbs, "inserts into a stored BAT in place")
				}
			}
		}
		return true
	})
	if bumped {
		return
	}
	for i, m := range muts {
		pass.Reportf(m.Pos(),
			"%s %s without bumping the index epoch: call bumpEpochLocked or indexes serve stale data",
			fn.Name.Name, verbs[i])
	}
}

// storedBATIdents collects names of identifiers assigned from a bats
// entry in body — `b := s.bats[name]` or the comma-ok form — which
// are the aliases through which store methods mutate stored BATs.
func storedBATIdents(body *ast.BlockStmt) map[string]bool {
	stored := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !isBatsIndex(as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			stored[id.Name] = true
		}
		return true
	})
	return stored
}

// isBatsIndex matches an index expression over a field named bats,
// e.g. s.bats[name].
func isBatsIndex(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	sel, ok := ix.X.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "bats"
}

// derivesFromBats reports whether an Insert receiver expression is a
// bats entry: a direct s.bats[k] index or an identifier previously
// assigned from one.
func derivesFromBats(recv ast.Expr, stored map[string]bool) bool {
	if isBatsIndex(recv) {
		return true
	}
	id, ok := recv.(*ast.Ident)
	return ok && stored[id.Name]
}

// isMonetBAT matches monet.BAT and *monet.BAT (and the in-package
// spelling BAT when analyzing monet itself).
func isMonetBAT(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "BAT" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/monet")
}
