// Package analyzers holds the project-specific checks run by
// cobravet: invariants of this codebase that gofmt, go vet and the
// compiler cannot express, each encoding a rule documented in the
// package it protects.
package analyzers

import "cobra/internal/vet"

// All is the cobravet suite in stable order; the index is also the
// analyzer's diagnostic code (CV001…), so codes never move once
// assigned — new analyzers append.
var All = []*vet.Analyzer{
	SpanEnd,     // CV001
	CtxSpan,     // CV002
	GoFatal,     // CV003
	StoreLock,   // CV004
	ErrWrap,     // CV005
	PoolLeak,    // CV006
	EpochGuard,  // CV007
	LockOrder,   // CV008
	GoLeak,      // CV009
	AllocHot,    // CV010
	ChanSend,    // CV011
	AllowLint,   // CV012
	ArenaEscape, // CV013
}
