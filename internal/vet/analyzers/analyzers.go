// Package analyzers holds the project-specific checks run by
// cobravet: invariants of this codebase that gofmt, go vet and the
// compiler cannot express, each encoding a rule documented in the
// package it protects.
package analyzers

import "cobra/internal/vet"

// All is the cobravet suite in stable order.
var All = []*vet.Analyzer{
	SpanEnd,
	CtxSpan,
	GoFatal,
	StoreLock,
	ErrWrap,
	PoolLeak,
	EpochGuard,
}
