package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// AllocHot reports heap allocations inside loops on kernel hot paths —
// any function body reachable from a (*monet.Batch).Submit argument,
// which is exactly the per-morsel work the pool fans out across cores.
// An allocation per morsel iteration (append growth on an unsized
// slice, map inserts, make/new, closures) multiplies by rows × morsels
// × queries and shows up directly in the ROADMAP's ParallelGroupAgg
// allocation gap. Preallocated destinations (make with capacity) are
// exempt; a justified "//cobravet:allow allochot" suppresses the rest.
//
// Hotness propagates two ways: through static calls (a helper invoked
// from a morsel body is hot too) and through function-typed parameters
// (when a hot function forwards a parameter to Submit or calls it in a
// loop, every literal its callers pass becomes hot — this is how
// runMorsels marks its callers' closures across packages).
var AllocHot = &vet.Analyzer{
	Name: "allochot",
	Code: "CV010",
	Doc: "report heap allocations in loops on hot paths reachable from " +
		"Pool.Submit (morsel bodies and their callees)",
	RunModule: runAllocHot,
}

// runAllocHot seeds hot summaries from Submit call sites, propagates
// hotness to a fixed point, and flags in-loop allocations.
func runAllocHot(pass *vet.ModulePass) error {
	m := pass.Mod

	hot := map[*vet.Summary]bool{}
	hotParam := map[types.Object]bool{}
	var all []*vet.Summary
	for _, pkg := range m.Pkgs {
		all = append(all, m.Summaries(pkg)...)
	}

	// argSummary resolves a call argument to the function body it
	// denotes: a literal, a named function, or a local bound to one.
	argSummary := func(sum *vet.Summary, arg ast.Expr) *vet.Summary {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			return m.LitSummary(a)
		case *ast.Ident:
			if sum.Pkg.Info == nil {
				return nil
			}
			obj := sum.Pkg.Info.Uses[a]
			if lit, ok := sum.LitBinds[obj]; ok {
				return m.LitSummary(lit)
			}
			if fn, ok := obj.(*types.Func); ok {
				return m.SummaryOf(fn)
			}
		case *ast.SelectorExpr:
			if sum.Pkg.Info == nil {
				return nil
			}
			if fn, ok := sum.Pkg.Info.Uses[a.Sel].(*types.Func); ok {
				return m.SummaryOf(fn)
			}
		}
		return nil
	}

	// paramObj resolves a call argument that is itself a parameter of
	// the enclosing function, for hotness back-propagation.
	paramObj := func(sum *vet.Summary, arg ast.Expr) types.Object {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || sum.Pkg.Info == nil {
			return nil
		}
		obj, ok := sum.Pkg.Info.Uses[id].(*types.Var)
		if !ok || sum.Fn == nil {
			return nil
		}
		sig, ok := sum.Fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return obj
			}
		}
		return nil
	}

	// markCallArgs treats every function-shaped argument of the call as
	// hot: literals and named functions directly, parameters by object.
	markCallArgs := func(sum *vet.Summary, call *ast.CallExpr) bool {
		changed := false
		for _, arg := range call.Args {
			if s := argSummary(sum, arg); s != nil && !hot[s] {
				hot[s] = true
				changed = true
			}
			if p := paramObj(sum, arg); p != nil && !hotParam[p] {
				hotParam[p] = true
				changed = true
			}
		}
		return changed
	}

	// enclosingParams maps a literal's summary to the parameter objects
	// of the named function it is lexically inside, so a hot morsel
	// body calling `fn(m, lo, hi)` can mark the enclosing function's
	// fn parameter hot.
	params := map[types.Object]bool{}
	owner := map[*vet.Summary][]types.Object{}
	for _, sum := range all {
		if sum.Fn == nil {
			continue
		}
		sig, ok := sum.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		var objs []types.Object
		for i := 0; i < sig.Params().Len(); i++ {
			params[sig.Params().At(i)] = true
			objs = append(objs, sig.Params().At(i))
		}
		owner[sum] = objs
		var mark func(s *vet.Summary)
		mark = func(s *vet.Summary) {
			for _, lit := range s.Lits {
				if ls := m.LitSummary(lit); ls != nil {
					owner[ls] = objs
					mark(ls)
				}
			}
		}
		mark(sum)
	}

	// calledParam resolves a dynamic call inside sum to a parameter of
	// the enclosing named function.
	calledParam := func(sum *vet.Summary, call *ast.CallExpr) types.Object {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || sum.Pkg.Info == nil {
			return nil
		}
		obj := sum.Pkg.Info.Uses[id]
		if obj == nil || !params[obj] {
			return nil
		}
		for _, p := range owner[sum] {
			if p == obj {
				return obj
			}
		}
		return nil
	}

	// Seed: arguments to (*monet.Batch).Submit.
	for _, sum := range all {
		for _, c := range sum.Calls {
			if isSubmitCall(c.Callee) {
				markCallArgs(sum, c.Call)
			}
		}
	}

	// Fixed point with three propagation rules. (1) A hot body calling
	// one of its enclosing function's func-typed parameters makes that
	// parameter hot, and every argument bound to a hot parameter at any
	// call site becomes hot — this is how runMorsels' Submit closure
	// heats the morsel-body literals its callers pass in, across
	// packages. (2) A hot body's own literals are hot. (3) A hot body's
	// static callees inside the monet kernel are hot (kernel helpers
	// run per element); callees outside the kernel are not, so a
	// standing-query re-evaluation fanned out per subscription does not
	// drag the whole query engine into the morsel-grain rule.
	for changed := true; changed; {
		changed = false
		for _, sum := range all {
			for _, c := range sum.Calls {
				if hot[sum] && c.Callee == nil {
					if p := calledParam(sum, c.Call); p != nil && !hotParam[p] {
						hotParam[p] = true
						changed = true
					}
				}
				if c.Callee != nil {
					if sig, ok := c.Callee.Type().(*types.Signature); ok {
						for i := 0; i < sig.Params().Len() && i < len(c.Call.Args); i++ {
							if !hotParam[sig.Params().At(i)] {
								continue
							}
							arg := c.Call.Args[i]
							if s := argSummary(sum, arg); s != nil && !hot[s] {
								hot[s] = true
								changed = true
							}
							if p := paramObj(sum, arg); p != nil && !hotParam[p] {
								hotParam[p] = true
								changed = true
							}
						}
					}
				}
				if !hot[sum] || c.Callee == nil || c.Callee.Pkg() == nil {
					continue
				}
				if !strings.HasSuffix(c.Callee.Pkg().Path(), "internal/monet") {
					continue
				}
				if callee := m.SummaryOf(c.Callee); callee != nil && !hot[callee] {
					hot[callee] = true
					changed = true
				}
			}
			if hot[sum] {
				for _, lit := range sum.Lits {
					if s := m.LitSummary(lit); s != nil && !hot[s] {
						hot[s] = true
						changed = true
					}
				}
			}
		}
	}

	for _, sum := range all {
		if !hot[sum] {
			continue
		}
		for _, a := range sum.Allocs {
			if !a.InLoop {
				continue
			}
			pass.Reportf(a.Pos,
				"%s in a loop on a hot path reachable from Pool.Submit (in %s); preallocate outside the morsel body or add //cobravet:allow allochot with justification",
				a.Kind, sum.Name())
		}
	}
	return nil
}

// isSubmitCall matches the (*monet.Batch).Submit method.
func isSubmitCall(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Submit" || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/monet")
}
