package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// CtxSpan enforces the trace-propagation discipline behind per-query
// resource attribution. A span created in a vacuum is invisible: it
// joins no trace tree, so its timings and resource counters are lost.
// The analyzer applies two rules to every function that starts a span:
//
//  1. the function must be able to join an existing trace — it takes a
//     context.Context (to recover the parent via obs.SpanFromContext)
//     or a *obs.Span directly — unless it starts the trace root itself
//     with obs.StartTrace;
//  2. the span must be ended on every return path of the statement
//     list that created it. Unlike spanend's function-wide scan, this
//     check is scoped to the enclosing block, so a Finish in a sibling
//     switch case cannot mask a leak. A deferred Finish, a Finish
//     inside a function literal (e.g. a pool task), or handing the
//     span off (call argument, return value, composite literal) all
//     satisfy the rule.
//
// Packages implementing the tracing machinery itself (internal/obs)
// are exempt.
var CtxSpan = &vet.Analyzer{
	Name: "ctxspan",
	Code: "CV002",
	Doc: "report functions that start an obs.Span without a context.Context " +
		"or *obs.Span parameter to join a trace, and spans not finished on " +
		"every return path of their enclosing block",
	Run: runCtxSpan,
}

func runCtxSpan(pass *vet.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkCtxSpanFunc(pass, fn)
			return true
		})
	}
	return nil
}

// checkCtxSpanFunc applies both rules to one function.
func checkCtxSpanFunc(pass *vet.Pass, fn *ast.FuncDecl) {
	var creations []*ast.AssignStmt
	startsRoot := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name == "_" {
			return true
		}
		if !isSpanStart(pass, as.Rhs[0]) {
			return true
		}
		creations = append(creations, as)
		if isStartTraceCall(as.Rhs[0]) {
			startsRoot = true
		}
		return true
	})
	if len(creations) == 0 {
		return
	}
	if !startsRoot && !hasTraceParam(pass, fn) {
		pass.Reportf(fn.Name.Pos(),
			"function %q starts a span but has no context.Context or *obs.Span "+
				"parameter to join a trace (thread ctx through, or start a root with obs.StartTrace)",
			fn.Name.Name)
	}
	for _, as := range creations {
		checkFinishedInBlock(pass, fn.Body, as)
	}
}

// isStartTraceCall matches obs.StartTrace(...) — a trace root.
func isStartTraceCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "StartTrace"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "StartTrace"
	}
	return false
}

// hasTraceParam reports whether the function (receiver included) takes
// a context.Context or a *obs.Span.
func hasTraceParam(pass *vet.Pass, fn *ast.FuncDecl) bool {
	lists := []*ast.FieldList{fn.Recv, fn.Type.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			t := pass.TypeOf(f.Type)
			if isSpanType(t) || isContextType(t) {
				return true
			}
		}
	}
	return false
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}

// checkFinishedInBlock verifies the span created by as is finished on
// every return path of its enclosing statement list.
func checkFinishedInBlock(pass *vet.Pass, body *ast.BlockStmt, as *ast.AssignStmt) {
	name := as.Lhs[0].(*ast.Ident).Name
	list := enclosingStmtList(body, as)
	var after []ast.Stmt
	for i, st := range list {
		if st == ast.Stmt(as) {
			after = list[i+1:]
			break
		}
	}
	var (
		deferred bool
		escapes  bool
		firstFin token.Pos
		rets     []token.Pos
	)
	var scan func(n ast.Node, inLit bool)
	scan = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(nn ast.Node) bool {
			switch st := nn.(type) {
			case *ast.FuncLit:
				if !inLit {
					// Finish calls inside a closure (a pool task, a defer
					// wrapper) still end the span; returns inside it do not
					// leave the creating function.
					scan(st.Body, true)
					return false
				}
			case *ast.DeferStmt:
				if isFinishCallOn(st.Call, name) {
					deferred = true
					return false
				}
			case *ast.CallExpr:
				if isFinishCallOn(st, name) {
					if firstFin == token.NoPos || st.Pos() < firstFin {
						firstFin = st.Pos()
					}
					return true
				}
				for _, arg := range st.Args {
					if a, ok := arg.(*ast.Ident); ok && a.Name == name {
						escapes = true
					}
				}
			case *ast.KeyValueExpr:
				// Stored into a composite literal (e.g. obs.Trace{Root: sp}):
				// the holder owns the span now.
				if v, ok := st.Value.(*ast.Ident); ok && v.Name == name {
					escapes = true
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					if a, ok := r.(*ast.Ident); ok && a.Name == name {
						escapes = true
					}
				}
				if !inLit {
					rets = append(rets, st.Pos())
				}
			}
			return true
		})
	}
	for _, st := range after {
		scan(st, false)
	}
	if deferred || escapes {
		return
	}
	if firstFin == token.NoPos {
		pass.Reportf(as.Pos(),
			"span %q is not finished in its enclosing block (finish it on every path, defer it, or hand it off)",
			name)
		return
	}
	for _, ret := range rets {
		if ret < firstFin {
			pass.Reportf(ret,
				"return may leak span %q: it is finished only later at %s (finish before returning or defer %s.Finish)",
				name, pass.Pkg.Fset.Position(firstFin), name)
			return
		}
	}
}

// enclosingStmtList finds the statement list that directly contains
// the assignment, falling back to the function body for creations in
// non-list positions (e.g. an if-statement init).
func enclosingStmtList(body *ast.BlockStmt, as *ast.AssignStmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for _, st := range list {
			if st == ast.Stmt(as) {
				found = list
			}
		}
		return true
	})
	if found == nil {
		return body.List
	}
	return found
}
