package analyzers

import (
	"go/ast"
	"go/token"

	"cobra/internal/vet"
)

// ArenaEscape enforces the morsel-arena borrowing discipline: scratch
// obtained from a GetArena() handle (Ints, Int64s, Floats, Strs,
// Values, IntSlots, StrSlots, ...) is valid only until the handle is
// released with PutArena or Reset, and only inside the scope that
// borrowed it. Three ways of breaking that are reported:
//
//   - returning an arena buffer to the caller,
//   - storing one into a longer-lived structure (an element or field
//     assignment) instead of copying it out exact-size with
//     append([]T(nil), buf...),
//   - touching the buffer — or the handle itself — after PutArena or
//     Reset released it.
//
// The analysis is scoped per function body (function literals form
// their own scopes): the kernel borrows and returns an arena within
// one morsel callback, so a handle's whole life is syntactically
// visible where it was borrowed.
var ArenaEscape = &vet.Analyzer{
	Name: "arenaescape",
	Code: "CV013",
	Doc: "report arena scratch that outlives its arena: buffers returned " +
		"or stored past the borrowing scope, or used after PutArena/Reset",
	Run: runArenaEscape,
}

// arenaBufMethods are the Arena methods that hand out arena-backed
// scratch. Lookup tables (the *Slots maps) follow the same lifetime
// rule as the slices.
var arenaBufMethods = map[string]bool{
	"Ints": true, "Int32s": true, "Int64s": true, "Floats": true,
	"Strs": true, "Values": true, "IntSlots": true, "StrSlots": true,
}

func runArenaEscape(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkArenaScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkArenaScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// scopeInspect walks body without descending into nested function
// literals — each literal is its own arena scope, visited separately
// by runArenaEscape.
func scopeInspect(body *ast.BlockStmt, f func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// checkArenaScope applies the borrowing rules to one function body.
func checkArenaScope(pass *vet.Pass, body *ast.BlockStmt) {
	// Pass 1: the handles borrowed in this scope (a := GetArena()).
	arenas := map[string]bool{}
	scopeInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if ok && id.Name != "_" && isFuncCallNamed(as.Rhs[0], "GetArena") {
			arenas[id.Name] = true
		}
		return true
	})
	if len(arenas) == 0 {
		return
	}

	// Pass 2: the buffers those handles lent out, and where each handle
	// was released (the first non-deferred PutArena/Reset).
	buffers := map[string]string{} // buffer local -> handle name
	released := map[string]token.Pos{}
	scopeInspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if h := arenaBufSource(st.Rhs[0], arenas); h != "" {
				buffers[id.Name] = h
			}
		case *ast.DeferStmt:
			return false // a deferred release runs at scope exit: nothing is "after" it
		case *ast.CallExpr:
			if h := releasedHandle(st, arenas); h != "" {
				if p, ok := released[h]; !ok || st.End() < p {
					released[h] = st.End()
				}
			}
		}
		return true
	})

	// Pass 3: escapes and use-after-release. This walk descends into
	// nested literals too — returning or storing a captured buffer from
	// a closure leaks it just the same.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if id, ok := r.(*ast.Ident); ok {
					if h, tracked := buffers[id.Name]; tracked {
						pass.Reportf(id.Pos(),
							"arena buffer %q (from %s) escapes via return; copy it out with append([]T(nil), %s...)",
							id.Name, h, id.Name)
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				h, tracked := buffers[id.Name]
				if !tracked {
					continue
				}
				switch st.Lhs[i].(type) {
				case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
					pass.Reportf(rhs.Pos(),
						"arena buffer %q (from %s) stored into a longer-lived structure; copy it out with append([]T(nil), %s...)",
						id.Name, h, id.Name)
				}
			}
		case *ast.Ident:
			h, tracked := buffers[st.Name]
			if !tracked {
				if arenas[st.Name] {
					h = st.Name
				} else {
					return true
				}
			}
			if p, ok := released[h]; ok && st.Pos() > p {
				pass.Reportf(st.Pos(), "%q used after its arena %q was released with PutArena/Reset", st.Name, h)
			}
		}
		return true
	})
}

// arenaBufSource reports which tracked handle the expression borrows
// scratch from: it unwraps slice/index expressions (the ls :=
// a.Ints(n)[:0] idiom) down to a <handle>.<bufMethod>(...) call.
func arenaBufSource(e ast.Expr, arenas map[string]bool) string {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !arenaBufMethods[sel.Sel.Name] {
				return ""
			}
			id, ok := sel.X.(*ast.Ident)
			if ok && arenas[id.Name] {
				return id.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// releasedHandle reports which tracked handle the call releases:
// PutArena(a), monet.PutArena(a), or a.Reset().
func releasedHandle(call *ast.CallExpr, arenas map[string]bool) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "PutArena" {
			return releaseArg(call, arenas)
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "PutArena" {
			return releaseArg(call, arenas)
		}
		if fun.Sel.Name == "Reset" {
			if id, ok := fun.X.(*ast.Ident); ok && arenas[id.Name] {
				return id.Name
			}
		}
	}
	return ""
}

func releaseArg(call *ast.CallExpr, arenas map[string]bool) string {
	if len(call.Args) == 1 {
		if id, ok := call.Args[0].(*ast.Ident); ok && arenas[id.Name] {
			return id.Name
		}
	}
	return ""
}

// isFuncCallNamed matches f(...) / pkg.f(...) by name.
func isFuncCallNamed(e ast.Expr, name string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == name
	case *ast.SelectorExpr:
		return fun.Sel.Name == name
	}
	return false
}
