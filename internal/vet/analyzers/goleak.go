package analyzers

import (
	"go/token"
	"go/types"

	"cobra/internal/vet"
)

// GoLeak verifies that every go statement spawns a goroutine with a
// reachable stop path. A goroutine body (or any function it statically
// calls, across package boundaries) that contains a condition-less for
// loop with no exit — no return, no break targeting the loop, no
// panic/os.Exit — runs until process death: a leak per spawn for
// server pushers and feed tickers. The stop path can be any loop exit:
// a "case <-ctx.Done(): return", a closed-channel ok=false return, or
// a quit-channel select arm.
var GoLeak = &vet.Analyzer{
	Name: "goleak",
	Code: "CV009",
	Doc: "report go statements whose goroutine has no reachable stop path " +
		"(the body, or a function it calls, loops forever with no exit)",
	RunModule: runGoLeak,
}

// leakFact marks an exported function that, once called, never
// returns. It flows along the import graph so a spawn in server of a
// loop in stream is still caught.
type leakFact struct {
	// Loop is the offending loop's position.
	Loop token.Pos
	// Fn names the looping function.
	Fn string
}

// runGoLeak propagates may-run-forever facts bottom-up in import
// order, then checks every spawn site in the target packages.
func runGoLeak(pass *vet.ModulePass) error {
	m := pass.Mod

	// forever reports whether a summarized body can run forever,
	// consulting facts for cross-package callees and recursing into
	// same-package calls and literals (cycle-guarded).
	var forever func(sum *vet.Summary, visiting map[*vet.Summary]bool) (token.Pos, string, bool)
	forever = func(sum *vet.Summary, visiting map[*vet.Summary]bool) (token.Pos, string, bool) {
		if sum == nil || visiting[sum] {
			return token.NoPos, "", false
		}
		visiting[sum] = true
		defer delete(visiting, sum)
		if sum.LoopsForever {
			return sum.ForeverLoop, sum.Name(), true
		}
		for _, c := range sum.Calls {
			if c.Callee == nil {
				continue
			}
			if f, ok := pass.ImportFact(c.Callee).(leakFact); ok {
				return f.Loop, f.Fn, true
			}
			if loop, fn, ok := forever(m.SummaryOf(c.Callee), visiting); ok {
				return loop, fn, true
			}
		}
		return token.NoPos, "", false
	}

	// Export facts package by package in dependency order, so by the
	// time a dependent package asks about an imported function the
	// fact is already there.
	for _, pkg := range m.Pkgs {
		for _, sum := range m.Summaries(pkg) {
			if sum.Fn == nil {
				continue
			}
			if loop, fn, ok := forever(sum, map[*vet.Summary]bool{}); ok {
				pass.ExportFact(sum.Fn, leakFact{Loop: loop, Fn: fn})
			}
		}
	}

	for _, pkg := range m.Pkgs {
		for _, sum := range m.Summaries(pkg) {
			for _, sp := range sum.Spawns {
				var (
					body   *vet.Summary
					callee *types.Func
				)
				switch {
				case sp.Lit != nil:
					body = m.LitSummary(sp.Lit)
				case sp.Callee != nil:
					callee = sp.Callee
					body = m.SummaryOf(sp.Callee)
				}
				if body == nil && callee != nil {
					if f, ok := pass.ImportFact(callee).(leakFact); ok {
						pass.Reportf(sp.Go.Pos(),
							"goroutine has no stop path: %s loops forever (loop at %s)",
							f.Fn, m.Rel(f.Loop))
					}
					continue
				}
				if loop, fn, ok := forever(body, map[*vet.Summary]bool{}); ok {
					pass.Reportf(sp.Go.Pos(),
						"goroutine has no stop path: %s loops forever (loop at %s); add a ctx/quit-channel exit",
						fn, m.Rel(loop))
				}
			}
		}
	}
	return nil
}
