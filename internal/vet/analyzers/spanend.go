package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// SpanEnd verifies that every obs trace span created in a function is
// finished: a span held in a local must either be finished on the spot
// (with no return statement able to skip past it), carry a deferred
// Finish, or escape the function (returned or passed on, making the
// caller responsible). Unfinished spans report zero duration and hold
// their parents open in the rendered trace tree.
var SpanEnd = &vet.Analyzer{
	Name: "spanend",
	Code: "CV001",
	Doc: "report obs.Span values that are created but not finished on " +
		"all paths (no Finish call, or an early return before the only one)",
	Run: runSpanEnd,
}

func runSpanEnd(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncSpans(pass, fn.Body)
			return true
		})
	}
	return nil
}

// checkFuncSpans inspects one function body for span locals.
func checkFuncSpans(pass *vet.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if !isSpanStart(pass, as.Rhs[0]) {
			return true
		}
		reportUnfinished(pass, body, id)
		return true
	})
}

// isSpanStart reports whether e creates a span: a call yielding
// *obs.Span whose callee name starts a span.
func isSpanStart(pass *vet.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if !isSpanType(pass.TypeOf(call)) {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Start")
	case *ast.SelectorExpr:
		return strings.HasPrefix(fun.Sel.Name, "Start")
	}
	return false
}

// isSpanType matches *obs.Span.
func isSpanType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Span" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// reportUnfinished applies the rule to one span local: deferred Finish
// or escape excuses it; otherwise a Finish must exist with no return
// statement between the creation and the first one.
func reportUnfinished(pass *vet.Pass, body *ast.BlockStmt, id *ast.Ident) {
	var (
		deferred  bool
		escapes   bool
		firstFin  token.Pos
		earlyRets []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isFinishCallOn(st.Call, id.Name) {
				deferred = true
			}
		case *ast.CallExpr:
			if isFinishCallOn(st, id.Name) {
				if firstFin == token.NoPos || st.Pos() < firstFin {
					firstFin = st.Pos()
				}
				return true
			}
			// The span passed as an argument escapes to the callee.
			for _, arg := range st.Args {
				if a, ok := arg.(*ast.Ident); ok && a.Name == id.Name && a.Pos() != id.Pos() {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if a, ok := r.(*ast.Ident); ok && a.Name == id.Name {
					escapes = true
				}
			}
			if st.Pos() > id.Pos() {
				earlyRets = append(earlyRets, st.Pos())
			}
		}
		return true
	})
	if deferred || escapes {
		return
	}
	if firstFin == token.NoPos {
		pass.Reportf(id.Pos(), "span %q is never finished (call %s.Finish or defer it)", id.Name, id.Name)
		return
	}
	for _, ret := range earlyRets {
		if ret < firstFin {
			pass.Reportf(ret, "return may leak span %q: it is finished only later at %s (defer %s.Finish instead)",
				id.Name, pass.Pkg.Fset.Position(firstFin), id.Name)
			return
		}
	}
}

// isFinishCallOn matches <name>.Finish(...).
func isFinishCallOn(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Finish" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}
