package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// StoreLock enforces the monet.Journal contract documented on the
// interface: journal methods are invoked while the store's write lock
// is held, so an implementation that calls back into the store —
// directly or through a field — self-deadlocks. The check flags any
// (*monet.Store) method call inside a method named Journal*.
var StoreLock = &vet.Analyzer{
	Name: "storelock",
	Code: "CV004",
	Doc: "report monet.Store calls inside Journal* methods, which run " +
		"under the store's write lock and would deadlock",
	Run: runStoreLock,
}

func runStoreLock(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !strings.HasPrefix(fn.Name.Name, "Journal") || fn.Body == nil {
				continue
			}
			checkJournalBody(pass, fn)
		}
	}
	return nil
}

// checkJournalBody walks one Journal* method for store calls.
func checkJournalBody(pass *vet.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isMonetStore(pass.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(),
				"%s runs under the store's write lock: calling (*monet.Store).%s deadlocks",
				fn.Name.Name, sel.Sel.Name)
		}
		return true
	})
}

// isMonetStore matches monet.Store and *monet.Store.
func isMonetStore(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Store" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/monet")
}
