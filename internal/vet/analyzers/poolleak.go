package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cobra/internal/vet"
)

// PoolLeak verifies that kernel worker-pool handles are always
// drained: a monet.Batch obtained from Pool.Batch must reach a Wait
// call on every return path (tasks submitted to an unwaited batch may
// still be running when their inputs go out of scope), and a Pool
// constructed with NewPool must be closed or escape to a caller.
// Returns inside function literals — the submitted task bodies
// themselves — do not count as paths out of the constructing function.
var PoolLeak = &vet.Analyzer{
	Name: "poolleak",
	Code: "CV006",
	Doc: "report monet pool batches whose Submit calls are not matched " +
		"by a Wait on every return path, and NewPool results never closed",
	Run: runPoolLeak,
}

func runPoolLeak(pass *vet.Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncPools(pass, fn.Body)
			return true
		})
	}
	return nil
}

// checkFuncPools inspects one function body for batch and pool locals.
func checkFuncPools(pass *vet.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		t := pass.TypeOf(as.Rhs[0])
		switch {
		case isMonetPtr(t, "Batch"):
			reportUndrained(pass, body, id, "Wait",
				"batch %q may return with submitted tasks still running")
		case isMonetPtr(t, "Pool") && isNewPoolCall(as.Rhs[0]):
			reportUndrained(pass, body, id, "Close",
				"pool %q is never closed; its workers outlive the function")
		}
		return true
	})
}

// isNewPoolCall matches NewPool(...) / monet.NewPool(...); pools from
// DefaultPool() are shared and must NOT be closed by users.
func isNewPoolCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "NewPool"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "NewPool"
	}
	return false
}

// isMonetPtr matches *monet.<name>.
func isMonetPtr(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/monet")
}

// reportUndrained applies the drain rule to one local: a deferred
// <method> call or an escape (returned, stored, or passed on) excuses
// it; otherwise a <method> call must exist and no return statement of
// the enclosing function may sit between the creation and the first
// one. Returns inside function literals are skipped: they exit the
// task closure, not the function owning the handle.
func reportUndrained(pass *vet.Pass, body *ast.BlockStmt, id *ast.Ident, method, leakMsg string) {
	var (
		deferred  bool
		escapes   bool
		firstCall token.Pos
		earlyRets []token.Pos
	)
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				// A closure is not a return path of this function, but
				// the handle draining inside one (a worker helping out)
				// still counts, so keep walking with returns muted.
				walk(st.Body, true)
				return false
			case *ast.DeferStmt:
				if isMethodCallOn(st.Call, id.Name, method) {
					deferred = true
				}
			case *ast.CallExpr:
				if isMethodCallOn(st, id.Name, method) {
					if firstCall == token.NoPos || st.Pos() < firstCall {
						firstCall = st.Pos()
					}
					return true
				}
				for _, arg := range st.Args {
					if a, ok := arg.(*ast.Ident); ok && a.Name == id.Name && a.Pos() != id.Pos() {
						escapes = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					if a, ok := r.(*ast.Ident); ok && a.Name == id.Name {
						escapes = true
					}
				}
				if !inLit && st.Pos() > id.Pos() {
					earlyRets = append(earlyRets, st.Pos())
				}
			}
			return true
		})
	}
	walk(body, false)
	if deferred || escapes {
		return
	}
	if firstCall == token.NoPos {
		pass.Reportf(id.Pos(), leakMsg+" (call %s.%s or defer it)", id.Name, id.Name, method)
		return
	}
	for _, ret := range earlyRets {
		if ret < firstCall {
			pass.Reportf(ret, "return may leak %q: %s is called only later at %s (defer it instead)",
				id.Name, method, pass.Pkg.Fset.Position(firstCall))
			return
		}
	}
}

// isMethodCallOn matches <name>.<method>(...).
func isMethodCallOn(call *ast.CallExpr, name, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}
