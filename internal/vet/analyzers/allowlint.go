package analyzers

import "cobra/internal/vet"

// AllowLint keeps the escape hatch honest: every "//cobravet:allow"
// pragma must name at least one analyzer, and every name must be an
// analyzer that exists — otherwise the pragma silently suppresses
// nothing, or a typo leaves the intended suppression dead. Convention
// (enforced in review, not here): follow the names with "// reason".
var AllowLint = &vet.Analyzer{
	Name: "allowlint",
	Code: "CV012",
	Doc: "report malformed //cobravet:allow pragmas: no analyzer names " +
		"or unknown analyzer names",
}

// Run is attached in init: runAllowLint reads All, which contains
// AllowLint, and the indirection breaks the initialization cycle.
func init() { AllowLint.Run = runAllowLint }

func runAllowLint(pass *vet.Pass) error {
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := vet.ParseAllowPragma(c.Text)
				if !ok {
					continue
				}
				if len(names) == 0 {
					pass.Reportf(c.Pos(), "allow pragma names no analyzer; write %s <analyzer> // reason", vet.AllowPragma)
					continue
				}
				for _, n := range names {
					if !known[n] {
						pass.Reportf(c.Pos(), "allow pragma names unknown analyzer %q", n)
					}
				}
			}
		}
	}
	return nil
}
