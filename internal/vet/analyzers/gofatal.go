package analyzers

import (
	"go/ast"

	"cobra/internal/vet"
)

// GoFatal reports calls that terminate the test runner from inside a
// spawned goroutine. testing.T's Fatal, Fatalf, FailNow, Skip, Skipf
// and SkipNow call runtime.Goexit, which only stops the goroutine that
// calls it — from any goroutine but the test's own, the test keeps
// running and the failure may be lost or deadlock the harness. The
// check is syntactic (test files are not type-checked) and matches the
// conventional receiver names t and tb.
var GoFatal = &vet.Analyzer{
	Name: "gofatal",
	Code: "CV003",
	Doc: "report t.Fatal/FailNow/Skip-class calls inside goroutines " +
		"spawned by tests; use t.Error plus a return, or report over a channel",
	Run: runGoFatal,
}

// fatalCalls are the testing.TB methods that must not run off the test
// goroutine.
var fatalCalls = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

func runGoFatal(pass *vet.Pass) error {
	files := make([]*ast.File, 0, len(pass.Pkg.Files)+len(pass.Pkg.TestFiles))
	files = append(files, pass.Pkg.Files...)
	files = append(files, pass.Pkg.TestFiles...)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil
}

// checkGoStmt flags fatal testing calls reachable inside one go
// statement.
func checkGoStmt(pass *vet.Pass, g *ast.GoStmt) {
	// go t.Fatal(...) directly.
	if name, ok := fatalTestingCall(g.Call); ok {
		pass.Reportf(g.Call.Pos(), "%s called in a spawned goroutine exits only that goroutine; use Error and return", name)
		return
	}
	fn, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := fatalTestingCall(call); ok {
			pass.Reportf(call.Pos(), "%s called in a spawned goroutine exits only that goroutine; use Error and return", name)
		}
		return true
	})
}

// fatalTestingCall matches t.Fatal-class selector calls on the
// conventional t / tb receivers.
func fatalTestingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fatalCalls[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || (id.Name != "t" && id.Name != "tb") {
		return "", false
	}
	return id.Name + "." + sel.Sel.Name, true
}
