package analyzers

import (
	"go/token"

	"cobra/internal/vet"
)

// ChanSend reports channel sends that can block indefinitely while a
// mutex is held — the send parks the goroutine with the lock taken,
// and every other contender (including the consumer that would drain
// the channel) piles up behind it. Two forms are flagged: a direct
// send under a held lock, and a call made with a lock held into a
// function (any package) that performs such a send. A send escapes
// the check when it sits in a select with a default clause or a
// ctx.Done-style cancellation arm (it cannot park), or when the
// channel was made in the same function (the function controls the
// consumer, as in the kernel's bounded fan-out loops).
var ChanSend = &vet.Analyzer{
	Name: "chansend",
	Code: "CV011",
	Doc: "report potentially blocking channel sends while a mutex is held, " +
		"directly or through a call chain, without a default/ctx escape",
	RunModule: runChanSend,
}

// sendFact marks an exported function containing a potentially
// blocking send, so callers holding locks are flagged across packages.
type sendFact struct {
	// Pos is the blocking send.
	Pos token.Pos
	// Chan renders the channel expression.
	Chan string
}

// blockingSend picks the first send in the summary that can park the
// goroutine regardless of caller state.
func blockingSend(sum *vet.Summary) (vet.SendSite, bool) {
	for _, s := range sum.Sends {
		if !s.Escaped && !s.Local {
			return s, true
		}
	}
	return vet.SendSite{}, false
}

// runChanSend exports may-block-on-send facts in import order, then
// flags direct lock-held sends and lock-held calls into flagged
// functions.
func runChanSend(pass *vet.ModulePass) error {
	m := pass.Mod
	for _, pkg := range m.Pkgs {
		for _, sum := range m.Summaries(pkg) {
			if sum.Fn == nil {
				continue
			}
			if s, ok := blockingSend(sum); ok {
				pass.ExportFact(sum.Fn, sendFact{Pos: s.Pos, Chan: s.Chan})
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, sum := range m.Summaries(pkg) {
			for _, s := range sum.Sends {
				if s.Escaped || s.Local || len(s.Held) == 0 {
					continue
				}
				pass.Reportf(s.Pos,
					"send on %s may block while %s is held; use a select with default/ctx escape or move the send outside the lock",
					s.Chan, s.Held[len(s.Held)-1].Key)
			}
			for _, c := range sum.Calls {
				if len(c.Held) == 0 || c.Callee == nil {
					continue
				}
				f, ok := pass.ImportFact(c.Callee).(sendFact)
				if !ok {
					if callee := m.SummaryOf(c.Callee); callee != nil {
						if s, found := blockingSend(callee); found {
							f, ok = sendFact{Pos: s.Pos, Chan: s.Chan}, true
						}
					}
				}
				if !ok {
					continue
				}
				pass.Reportf(c.Call.Pos(),
					"call to %s may block on a send (%s at %s) while %s is held",
					c.Callee.FullName(), f.Chan, m.Rel(f.Pos), c.Held[len(c.Held)-1].Key)
			}
		}
	}
	return nil
}
