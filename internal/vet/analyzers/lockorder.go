package analyzers

import (
	"sort"

	"cobra/internal/vet"
)

// LockOrder builds the module-wide mutex-acquisition-order graph and
// reports cycles — the classic deadlock precondition where goroutine 1
// takes A then B while goroutine 2 takes B then A. Edges come from two
// places: direct nested acquisitions inside one function body, and
// calls made with a lock held into functions that (transitively)
// acquire more locks, so an ordering split across packages — say
// stream holding its manager lock while a monet kernel takes the pool
// lock — is still one edge in one graph. Both acquisition sites appear
// in the diagnostic so either side of the inversion can be fixed.
var LockOrder = &vet.Analyzer{
	Name: "lockorder",
	Code: "CV008",
	Doc: "report cycles in the module-wide mutex acquisition-order graph " +
		"(lock A held while taking B in one place, B held while taking A in another)",
	RunModule: runLockOrder,
}

// lockClosure is the set of locks a function may acquire, directly or
// through the functions and literals it calls, keyed by mutex identity
// with one representative acquisition site each.
type lockClosure map[string]vet.LockSite

// runLockOrder computes per-function lock closures to a fixed point,
// derives the global ordering graph, and reports every edge that sits
// on a cycle.
func runLockOrder(pass *vet.ModulePass) error {
	m := pass.Mod

	// Per-function closure of acquirable locks, to a fixed point over
	// static calls and locally declared literals.
	closures := map[*vet.Summary]lockClosure{}
	var all []*vet.Summary
	for _, pkg := range m.Pkgs {
		for _, sum := range m.Summaries(pkg) {
			cl := lockClosure{}
			for _, a := range sum.Acquires {
				if _, ok := cl[a.Key]; !ok {
					cl[a.Key] = a
				}
			}
			closures[sum] = cl
			all = append(all, sum)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range all {
			cl := closures[sum]
			absorb := func(callee *vet.Summary) {
				for key, site := range closures[callee] {
					if _, ok := cl[key]; !ok {
						cl[key] = site
						changed = true
					}
				}
			}
			for _, c := range sum.Calls {
				if callee := m.SummaryOf(c.Callee); callee != nil {
					absorb(callee)
				}
			}
			for _, lit := range sum.Lits {
				if ls := m.LitSummary(lit); ls != nil {
					absorb(ls)
				}
			}
		}
	}

	// The ordering graph: from-key → to-key, with the witnessing sites.
	type edge struct {
		from, to vet.LockSite
	}
	edges := map[[2]string]edge{}
	addEdge := func(from, to vet.LockSite) {
		if from.Key == to.Key {
			return // re-acquisition of the same mutex is not an ordering fact
		}
		k := [2]string{from.Key, to.Key}
		if _, ok := edges[k]; !ok {
			edges[k] = edge{from, to}
		}
	}
	for _, sum := range all {
		for _, e := range sum.Edges {
			addEdge(e.From, e.To)
		}
		// A call with locks held orders those locks before everything
		// the callee's closure can acquire.
		for _, c := range sum.Calls {
			if len(c.Held) == 0 {
				continue
			}
			callee := m.SummaryOf(c.Callee)
			if callee == nil {
				continue
			}
			for _, site := range closures[callee] {
				for _, h := range c.Held {
					addEdge(h, site)
				}
			}
		}
	}

	// Tarjan SCC over the key graph; any edge inside a multi-node SCC
	// (or the reverse pair of edges it implies) is part of a cycle.
	adj := map[string][]string{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, ns := range adj {
		sort.Strings(ns)
	}
	scc := tarjanSCC(adj)

	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if scc[k[0]] == 0 || scc[k[0]] != scc[k[1]] {
			continue
		}
		e := edges[k]
		pass.Reportf(e.to.Pos,
			"lock-order cycle: %s acquired while %s is held, but the opposite order exists (e.g. %s acquired at %s) — potential deadlock",
			e.to.Key, e.from.Key, e.from.Key, m.Rel(e.from.Pos))
	}
	return nil
}

// tarjanSCC labels every node with its strongly connected component;
// the label is 0 for nodes in singleton components without a self
// edge (i.e. not on any cycle).
func tarjanSCC(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for n, outs := range adj {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, o := range outs {
			if !seen[o] {
				seen[o] = true
				nodes = append(nodes, o)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, compID := 1, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, w := range members {
					comp[w] = compID
				}
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strong(n)
		}
	}
	return comp
}
