package analyzers

import (
	"testing"

	"cobra/internal/vet/vettest"
)

func TestSpanEnd(t *testing.T) {
	vettest.Run(t, SpanEnd, "testdata/spanend")
}

func TestCtxSpan(t *testing.T) {
	vettest.Run(t, CtxSpan, "testdata/ctxspan")
}

func TestGoFatal(t *testing.T) {
	vettest.Run(t, GoFatal, "testdata/gofatal")
}

func TestStoreLock(t *testing.T) {
	vettest.Run(t, StoreLock, "testdata/storelock")
}

func TestErrWrap(t *testing.T) {
	vettest.Run(t, ErrWrap, "testdata/errwrap")
}

func TestPoolLeak(t *testing.T) {
	vettest.Run(t, PoolLeak, "testdata/poolleak")
}

func TestEpochGuard(t *testing.T) {
	vettest.Run(t, EpochGuard, "testdata/epochguard")
}
