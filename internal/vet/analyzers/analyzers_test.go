package analyzers

import (
	"strings"
	"testing"

	"cobra/internal/vet"
	"cobra/internal/vet/vettest"
)

func TestSpanEnd(t *testing.T) {
	vettest.Run(t, SpanEnd, "testdata/spanend")
}

func TestCtxSpan(t *testing.T) {
	vettest.Run(t, CtxSpan, "testdata/ctxspan")
}

func TestGoFatal(t *testing.T) {
	vettest.Run(t, GoFatal, "testdata/gofatal")
}

func TestStoreLock(t *testing.T) {
	vettest.Run(t, StoreLock, "testdata/storelock")
}

func TestErrWrap(t *testing.T) {
	vettest.Run(t, ErrWrap, "testdata/errwrap")
}

func TestPoolLeak(t *testing.T) {
	vettest.Run(t, PoolLeak, "testdata/poolleak")
}

func TestEpochGuard(t *testing.T) {
	vettest.Run(t, EpochGuard, "testdata/epochguard")
}

// The four module analyzers run over two fixture packages each — a
// library package and a dependent package — so every test exercises
// fact export on one side of the import and import on the other.

func TestLockOrder(t *testing.T) {
	vettest.RunDirs(t, LockOrder, "testdata/lockorder/a", "testdata/lockorder/b")
}

func TestGoLeak(t *testing.T) {
	vettest.RunDirs(t, GoLeak, "testdata/goleak/leaklib", "testdata/goleak")
}

func TestAllocHot(t *testing.T) {
	vettest.RunDirs(t, AllocHot, "testdata/allochot/hotlib", "testdata/allochot")
}

func TestChanSend(t *testing.T) {
	vettest.RunDirs(t, ChanSend, "testdata/chansend/sendlib", "testdata/chansend")
}

func TestAllowLint(t *testing.T) {
	vettest.Run(t, AllowLint, "testdata/allowlint")
}

// TestModuleAnalyzerDeterminism re-runs every module analyzer over its
// fixture packages and requires byte-identical diagnostics each time:
// the interprocedural build walks maps (summaries, fact store, lock
// graph), and any iteration-order leak shows up here as a shuffled
// report.
func TestModuleAnalyzerDeterminism(t *testing.T) {
	cases := []struct {
		name string
		run  func() string
	}{
		{"lockorder", func() string {
			return render(vettest.Diagnostics(t, LockOrder, "testdata/lockorder/a", "testdata/lockorder/b"))
		}},
		{"goleak", func() string {
			return render(vettest.Diagnostics(t, GoLeak, "testdata/goleak/leaklib", "testdata/goleak"))
		}},
		{"allochot", func() string {
			return render(vettest.Diagnostics(t, AllocHot, "testdata/allochot/hotlib", "testdata/allochot"))
		}},
		{"chansend", func() string {
			return render(vettest.Diagnostics(t, ChanSend, "testdata/chansend/sendlib", "testdata/chansend"))
		}},
	}
	for _, c := range cases {
		first := c.run()
		if first == "" {
			t.Fatalf("%s: no diagnostics at all — fixture went stale", c.name)
		}
		for i := 0; i < 3; i++ {
			if got := c.run(); got != first {
				t.Errorf("%s: run %d differs\nfirst:\n%s\ngot:\n%s", c.name, i+2, first, got)
			}
		}
	}
}

func render(diags []vet.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestArenaEscape(t *testing.T) {
	vettest.Run(t, ArenaEscape, "testdata/arenaescape")
}
