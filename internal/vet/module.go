package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Module is the interprocedural view shared by every module analyzer:
// all loaded module packages in dependency order, one Summary per
// function body (declarations and literals alike), and a FactStore
// whose entries flow along the import graph — a package's facts are
// computed before any package that imports it sees them.
type Module struct {
	// ModRoot is the module's directory on disk (for Rel).
	ModRoot string
	// ModPath is the module path from go.mod.
	ModPath string
	// Fset maps positions across every package.
	Fset *token.FileSet
	// Pkgs holds every module-internal package in topological order:
	// dependencies strictly before dependents.
	Pkgs []*Package

	summaries map[*types.Func]*Summary
	lits      map[*ast.FuncLit]*Summary
	byPkg     map[*Package][]*Summary
	fileOf    map[string]*Package
	facts     *FactStore
}

// SummaryOf returns the summary of a named function, or nil when its
// body is outside the loaded module (stdlib, interface methods).
func (m *Module) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return m.summaries[fn]
}

// LitSummary returns the summary of a function literal encountered in
// a loaded body.
func (m *Module) LitSummary(lit *ast.FuncLit) *Summary {
	return m.lits[lit]
}

// Summaries returns the package's function summaries in source order
// (declarations first, then literals, each in position order).
func (m *Module) Summaries(pkg *Package) []*Summary {
	return m.byPkg[pkg]
}

// PackageAt maps a diagnostic position back to its package (for allow
// pragma suppression on module-wide findings).
func (m *Module) PackageAt(pos token.Pos) *Package {
	return m.fileOf[m.Fset.Position(pos).Filename]
}

// Rel renders a position with its filename relative to the module
// root, so diagnostics are stable across checkouts.
func (m *Module) Rel(pos token.Pos) token.Position {
	p := m.Fset.Position(pos)
	if rel, err := filepath.Rel(m.ModRoot, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

// FactStore holds analyzer-computed facts about package-level objects.
// Analyzers export facts while visiting a package (in Module.Pkgs
// order) and import them when examining calls into already-visited
// packages — the go/analysis facts mechanism, scoped to one process.
type FactStore struct {
	entries map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// ModulePass carries one module analyzer's view of the whole module.
type ModulePass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Mod is the shared interprocedural view.
	Mod *Module
	// Targets are the packages diagnostics should be confined to (the
	// packages named on the cobravet command line); dependency packages
	// are analyzed for facts but not reported on.
	Targets []*Package

	diags *[]Diagnostic
}

// InTarget reports whether pos falls inside one of the target
// packages.
func (p *ModulePass) InTarget(pos token.Pos) bool {
	pkg := p.Mod.PackageAt(pos)
	if pkg == nil {
		return false
	}
	for _, t := range p.Targets {
		if t == pkg {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos unless it is outside the target
// packages or an allow pragma covers it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	pkg := p.Mod.PackageAt(pos)
	if pkg == nil || !p.InTarget(pos) {
		return
	}
	if pkg.allowed(p.Analyzer.Name, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Code:     p.Analyzer.Code,
		Position: p.Mod.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact attaches a fact about a package-level object under this
// analyzer's namespace.
func (p *ModulePass) ExportFact(obj types.Object, fact any) {
	if obj == nil {
		return
	}
	p.Mod.facts.entries[factKey{p.Analyzer.Name, obj}] = fact
}

// ImportFact retrieves a fact previously exported for obj by this
// analyzer, or nil.
func (p *ModulePass) ImportFact(obj types.Object) any {
	if obj == nil {
		return nil
	}
	return p.Mod.facts.entries[factKey{p.Analyzer.Name, obj}]
}

// BuildModule assembles the interprocedural view: the targets plus
// every module-internal package the loader pulled in for them,
// topologically sorted, with one summary per function body.
func BuildModule(l *Loader, targets []*Package) *Module {
	m := &Module{
		ModRoot:   l.ModRoot,
		ModPath:   l.ModPath,
		Fset:      l.Fset,
		summaries: map[*types.Func]*Summary{},
		lits:      map[*ast.FuncLit]*Summary{},
		byPkg:     map[*Package][]*Summary{},
		fileOf:    map[string]*Package{},
		facts:     &FactStore{entries: map[factKey]any{}},
	}

	// Collect the target set plus its module-internal closure from the
	// loader's cache, then topo-sort (dependencies first) with a DFS
	// over module-internal imports. Paths are sorted up front so the
	// order is deterministic across runs.
	byPath := map[string]*Package{}
	for path, pkg := range l.pkgs {
		byPath[path] = pkg
	}
	for _, t := range targets {
		byPath[t.Path] = t // testdata packages live outside l.pkgs' module paths
	}
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		pkg := byPath[path]
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep.Path)
			}
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	for _, path := range paths {
		visit(path)
	}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			m.fileOf[m.Fset.Position(f.Pos()).Filename] = pkg
		}
		for _, f := range pkg.TestFiles {
			m.fileOf[m.Fset.Position(f.Pos()).Filename] = pkg
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				sum := m.summarize(pkg, fn, fd, nil, fd.Body)
				if fn != nil {
					m.summaries[fn] = sum
				}
				m.byPkg[pkg] = append(m.byPkg[pkg], sum)
			}
		}
		// Literal summaries were registered by the body walkers; append
		// them in position order so Summaries(pkg) is deterministic.
		var lits []*Summary
		for lit, sum := range m.lits {
			if sum.Pkg == pkg {
				_ = lit
				lits = append(lits, sum)
			}
		}
		sort.Slice(lits, func(i, j int) bool { return lits[i].Lit.Pos() < lits[j].Lit.Pos() })
		m.byPkg[pkg] = append(m.byPkg[pkg], lits...)
	}
	return m
}
