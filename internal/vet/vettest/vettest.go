// Package vettest runs vet analyzers over testdata packages and
// matches their diagnostics against // want "substring" comments, the
// dependency-free counterpart of analysistest.
package vettest

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cobra/internal/vet"
)

// Run loads the package in dir (a testdata directory the go tool
// itself never builds), applies the analyzer, and compares the
// findings line by line against // want "substring" comments: every
// want must be matched by a diagnostic on its line, and every
// diagnostic must be wanted.
func Run(t *testing.T, a *vet.Analyzer, dir string) {
	t.Helper()
	loader, err := vet.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(loader.ModRoot, abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, loader.ModPath+"/"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := vet.Run([]*vet.Package{pkg}, []*vet.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(diags))
	for key, substrs := range wants {
		for _, substr := range substrs {
			found := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				if filepath.Base(d.Position.Filename)+":"+strconv.Itoa(d.Position.Line) == key &&
					strings.Contains(d.Message, substr) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: wanted diagnostic containing %q, got none", key, substr)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// collectWants scans every Go file in dir for // want "..." comments,
// keyed by "file.go:line". A line may carry several wants.
func collectWants(dir string) (map[string][]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wants := map[string][]string{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			rest := line
			for {
				idx := strings.Index(rest, `// want "`)
				if idx < 0 {
					break
				}
				rest = rest[idx+len(`// want "`):]
				end := strings.Index(rest, `"`)
				if end < 0 {
					break
				}
				key := e.Name() + ":" + strconv.Itoa(i+1)
				wants[key] = append(wants[key], rest[:end])
				rest = rest[end+1:]
			}
		}
	}
	return wants, nil
}
