// Package vettest runs vet analyzers over testdata packages and
// matches their diagnostics against // want "substring" comments, the
// dependency-free counterpart of analysistest.
package vettest

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cobra/internal/vet"
)

// All analyzer tests in one binary share a single loader, so each
// testdata package — and every module package the fixtures import —
// type-checks exactly once no matter how many analyzers run over it.
var (
	sharedOnce sync.Once
	sharedL    *vet.Loader
	sharedErr  error
)

// Loader returns the process-wide shared loader.
func Loader(t *testing.T) *vet.Loader {
	t.Helper()
	sharedOnce.Do(func() {
		sharedL, sharedErr = vet.NewLoader(".")
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedL
}

// Run loads the package in dir (a testdata directory the go tool
// itself never builds), applies the analyzer, and compares the
// findings line by line against // want "substring" comments: every
// want must be matched by a diagnostic on its line, and every
// diagnostic must be wanted.
func Run(t *testing.T, a *vet.Analyzer, dir string) {
	t.Helper()
	RunDirs(t, a, dir)
}

// RunDirs loads every listed testdata directory as its own package and
// applies the analyzer to all of them in one pass — the interprocedural
// mode. Earlier directories may be imported by later ones, so fixtures
// can exercise cross-package fact flow; wants are collected from every
// directory.
func RunDirs(t *testing.T, a *vet.Analyzer, dirs ...string) {
	t.Helper()
	diags := Diagnostics(t, a, dirs...)
	wants := map[string][]string{}
	for _, dir := range dirs {
		if err := collectWants(dir, wants); err != nil {
			t.Fatal(err)
		}
	}
	matched := make([]bool, len(diags))
	for key, substrs := range wants {
		for _, substr := range substrs {
			found := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				if filepath.Base(d.Position.Filename)+":"+strconv.Itoa(d.Position.Line) == key &&
					strings.Contains(d.Message, substr) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: wanted diagnostic containing %q, got none", key, substr)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// Diagnostics runs the analyzer over the testdata directories and
// returns the raw findings (for determinism and golden tests).
func Diagnostics(t *testing.T, a *vet.Analyzer, dirs ...string) []vet.Diagnostic {
	t.Helper()
	loader := Loader(t)
	var pkgs []*vet.Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(loader.ModRoot, abs)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(abs, loader.ModPath+"/"+filepath.ToSlash(rel))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, _, err := vet.RunAll(loader, pkgs, []*vet.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// collectWants scans every Go file in dir for // want "..." comments,
// keyed by "file.go:line", into the given map. A line may carry
// several wants.
func collectWants(dir string, wants map[string][]string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			rest := line
			for {
				idx := strings.Index(rest, `// want "`)
				if idx < 0 {
					break
				}
				rest = rest[idx+len(`// want "`):]
				end := strings.Index(rest, `"`)
				if end < 0 {
					break
				}
				key := e.Name() + ":" + strconv.Itoa(i+1)
				wants[key] = append(wants[key], rest[:end])
				rest = rest[end+1:]
			}
		}
	}
	return nil
}
