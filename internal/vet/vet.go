// Package vet is a dependency-free static-analysis framework for the
// project's own invariants, in the spirit of go/analysis but built
// entirely on the standard library's go/ast, go/types and go/importer.
// Analyzers receive one type-checked package at a time plus its test
// files (syntax only) and report position-carrying diagnostics. The
// cobravet command drives the project analyzer suite over the module
// in CI.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line.
	Name string
	// Doc is the one-paragraph description shown by cobravet -help.
	Doc string
	// Run inspects the package via the pass and reports findings with
	// pass.Reportf. A non-nil error aborts the whole run.
	Run func(*Pass) error
}

// Package is one loaded, type-checked package.
type Package struct {
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Path is the import path the package was loaded as.
	Path string
	// Files are the non-test source files, type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked (test packages may form cycles the loader avoids).
	TestFiles []*ast.File
	// Types is the checked package.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the static type of an expression, or nil for test
// files (which are not type-checked).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message describes it.
	Message string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package, returning the combined
// findings in file/position order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("vet: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
