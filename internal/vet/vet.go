// Package vet is a dependency-free static-analysis framework for the
// project's own invariants, in the spirit of go/analysis but built
// entirely on the standard library's go/ast, go/types and go/importer.
//
// Analyzers come in two shapes. A per-package analyzer (Run) receives
// one type-checked package at a time plus its test files (syntax only)
// and reports position-carrying diagnostics. A module analyzer
// (RunModule) receives the whole loaded module at once — every
// type-checked package in import order, a lightweight call graph,
// per-function concurrency/allocation summaries, and a fact store
// whose exported facts flow along the import graph — so it can check
// interprocedural invariants (lock ordering, goroutine stop paths,
// hot-path allocation) that no single file reveals. The cobravet
// command drives the project analyzer suite over the module in CI.
//
// Any diagnostic can be suppressed with an explicit escape hatch: a
// "//cobravet:allow <analyzer>" comment on the flagged line, the line
// above it, or in the doc comment of the enclosing top-level function
// declaration. The allowlint analyzer keeps those pragmas honest.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one named check over a package or over the whole module.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line.
	Name string
	// Code is the analyzer's stable diagnostic code (e.g. "CV008"),
	// carried on every finding so machine consumers can key on it.
	Code string
	// Doc is the one-paragraph description shown by cobravet -help.
	Doc string
	// Run inspects one package via the pass and reports findings with
	// pass.Reportf. A non-nil error aborts the whole run. Nil for
	// module-only analyzers.
	Run func(*Pass) error
	// RunModule inspects the whole module at once (call graph, function
	// summaries, fact store). Nil for per-package analyzers.
	RunModule func(*ModulePass) error
}

// Package is one loaded, type-checked package.
type Package struct {
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Path is the import path the package was loaded as.
	Path string
	// Files are the non-test source files, type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked (test packages may form cycles the loader avoids).
	TestFiles []*ast.File
	// Types is the checked package.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info

	allow *allowIndex // lazily built //cobravet:allow pragma index
}

// allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by an allow pragma.
func (p *Package) allowed(name string, pos token.Pos) bool {
	if p.allow == nil {
		p.allow = buildAllowIndex(p.Fset, append(append([]*ast.File{}, p.Files...), p.TestFiles...))
	}
	return p.allow.allowed(name, p.Fset.Position(pos))
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow pragma covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Pkg.allowed(p.Analyzer.Name, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Code:     p.Analyzer.Code,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the static type of an expression, or nil for test
// files (which are not type-checked).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Code is the analyzer's stable diagnostic code.
	Code string
	// Position locates the finding.
	Position token.Position
	// Message describes it.
	Message string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Timing records one analyzer's wall time over a run (cobravet prints
// these under -v).
type Timing struct {
	// Analyzer names the timed stage (an analyzer, or the shared
	// "module-facts" build).
	Analyzer string
	// Elapsed is the stage's wall time.
	Elapsed time.Duration
}

// Run applies every per-package analyzer to every package, returning
// the combined findings in file/position order. Module analyzers are
// skipped; use RunAll to include them.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := run(nil, pkgs, analyzers)
	return diags, err
}

// RunAll applies the full suite — per-package and module analyzers —
// to the target packages, building the interprocedural module view
// (call graph, summaries, facts) once and sharing it across module
// analyzers. The loader provides the dependency closure; diagnostics
// are reported only in the target packages. Timings record per-stage
// wall time.
func RunAll(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	return run(l, pkgs, analyzers)
}

func run(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var (
		diags   []Diagnostic
		timings []Timing
		mod     *Module
	)
	for _, a := range analyzers {
		start := time.Now()
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
				if err := a.Run(pass); err != nil {
					return nil, nil, fmt.Errorf("vet: %s on %s: %w", a.Name, pkg.Path, err)
				}
			}
		case a.RunModule != nil:
			if l == nil {
				continue // Run() without a loader cannot build the module view
			}
			if mod == nil {
				t0 := time.Now()
				mod = BuildModule(l, pkgs)
				timings = append(timings, Timing{Analyzer: "module-facts", Elapsed: time.Since(t0)})
				start = time.Now()
			}
			mp := &ModulePass{Analyzer: a, Mod: mod, Targets: pkgs, diags: &diags}
			if err := a.RunModule(mp); err != nil {
				return nil, nil, fmt.Errorf("vet: %s: %w", a.Name, err)
			}
		}
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, timings, nil
}
