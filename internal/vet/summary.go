package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function summaries: the concurrency- and
// allocation-relevant behavior of one function body, extracted once at
// module-build time and shared by every module analyzer. The summary
// walk is path-insensitive but order-aware: statements are visited in
// source order with a held-lock set that branches copy, so the common
// "Lock; if bail { Unlock; return }; work; Unlock" idiom attributes
// `work` to the held region without flow analysis.

// LockSite is one mutex acquisition. Key identifies the mutex by
// declaration, not by expression: "pkgpath.Type.field" for a struct
// field, "pkgpath.var.field" / "pkgpath.var" for a package variable,
// and "pkgpath.func.name" for a function-local mutex.
type LockSite struct {
	// Key is the mutex's stable identity.
	Key string
	// Pos is the acquisition site.
	Pos token.Pos
	// Read marks RLock acquisitions.
	Read bool
}

// LockEdge is an intra-function acquisition ordering: To was acquired
// while From was held.
type LockEdge struct {
	// From is the lock already held.
	From LockSite
	// To is the lock acquired under it.
	To LockSite
}

// SendSite is one channel send statement or select send case.
type SendSite struct {
	// Pos is the send.
	Pos token.Pos
	// Chan renders the channel expression.
	Chan string
	// Escaped marks sends inside a select with a default clause or a
	// ctx.Done-style receive case — the sanctioned non-blocking forms.
	Escaped bool
	// Local marks sends on channels made in this same function, whose
	// consumers the function controls.
	Local bool
	// Held snapshots the locks held at the send.
	Held []LockSite
}

// CallSite is one statically resolved call.
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the resolved target, nil for dynamic calls (function
	// values, interface methods the checker cannot pin).
	Callee *types.Func
	// Held snapshots the locks held at the call.
	Held []LockSite
	// InLoop marks calls lexically inside a for/range loop.
	InLoop bool
}

// SpawnSite is one go statement.
type SpawnSite struct {
	// Go is the statement.
	Go *ast.GoStmt
	// Callee is the spawned named function, if statically resolved.
	Callee *types.Func
	// Lit is the spawned function literal, if any.
	Lit *ast.FuncLit
	// Held snapshots the locks held at the spawn.
	Held []LockSite
}

// AllocSite is one heap-allocating construct.
type AllocSite struct {
	// Pos is the allocation.
	Pos token.Pos
	// Kind describes it: "make", "new", "append growth", "map insert",
	// "pointer literal", or "closure".
	Kind string
	// InLoop marks allocations lexically inside a for/range loop.
	InLoop bool
}

// Summary is the interprocedural digest of one function body: which
// locks it takes and in what order, what it sends, calls, spawns and
// allocates, and whether it can loop forever.
type Summary struct {
	// Fn is the summarized function; nil for function literals.
	Fn *types.Func
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Pkg owns the body.
	Pkg *Package

	// Acquires lists every mutex acquisition in source order.
	Acquires []LockSite
	// Edges lists intra-function lock-order edges.
	Edges []LockEdge
	// Sends lists every channel send.
	Sends []SendSite
	// Calls lists statically resolved call sites (plus dynamic calls
	// with a nil callee, kept for hot-path propagation).
	Calls []CallSite
	// Spawns lists go statements.
	Spawns []SpawnSite
	// Allocs lists heap-allocating constructs.
	Allocs []AllocSite
	// LoopsForever reports a for-loop with no condition, range clause,
	// or reachable exit (return/break/goto/panic/os.Exit) — once
	// entered the function never returns.
	LoopsForever bool
	// ForeverLoop locates the offending loop when LoopsForever.
	ForeverLoop token.Pos
	// Lits are the function literals declared in this body, in source
	// order (their own summaries live in the module's literal table).
	Lits []*ast.FuncLit
	// LitBinds maps local objects assigned a function literal in this
	// body ("f := func(){…}") to that literal.
	LitBinds map[types.Object]*ast.FuncLit
}

// Name renders the summarized function for diagnostics.
func (s *Summary) Name() string {
	if s.Fn != nil {
		return s.Fn.FullName()
	}
	return "func literal"
}

// summarize walks one body and records its summary; lits found along
// the way are summarized recursively into m.lits.
func (m *Module) summarize(pkg *Package, fn *types.Func, decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) *Summary {
	sum := &Summary{Fn: fn, Decl: decl, Lit: lit, Pkg: pkg, LitBinds: map[types.Object]*ast.FuncLit{}}
	w := &bodyWalker{m: m, pkg: pkg, sum: sum, prealloc: map[string]bool{}, localChans: map[string]bool{}}
	w.stmt(body)
	return sum
}

// bodyWalker tracks the held-lock set and loop depth while visiting
// one function body in source order.
type bodyWalker struct {
	m          *Module
	pkg        *Package
	sum        *Summary
	held       []LockSite
	loopDepth  int
	prealloc   map[string]bool // exprs assigned make-with-capacity
	localChans map[string]bool // exprs assigned make(chan …)
	loopLabels map[*ast.ForStmt]string
}

func (w *bodyWalker) heldCopy() []LockSite {
	if len(w.held) == 0 {
		return nil
	}
	return append([]LockSite{}, w.held...)
}

// branch walks a nested block with a copy of the held set, so an
// Unlock inside one arm does not end the region for the code after it.
func (w *bodyWalker) branch(s ast.Stmt) {
	if s == nil {
		return
	}
	saved := w.held
	w.held = w.heldCopy()
	w.stmt(s)
	w.held = saved
}

func (w *bodyWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range st.List {
			w.stmt(s)
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.IncDecStmt:
		if ix, ok := st.X.(*ast.IndexExpr); ok && w.isMap(ix.X) && !w.prealloc[types.ExprString(ix.X)] {
			w.alloc(st.Pos(), "map insert")
		}
		w.expr(st.X)
	case *ast.SendStmt:
		w.send(st.Chan, st.Pos(), false)
		w.expr(st.Value)
	case *ast.GoStmt:
		w.spawn(st)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end (no
		// pop); other deferred calls run outside the tracked region.
		if w.lockMethod(st.Call) == "" {
			w.callSite(st.Call, nil)
			for _, a := range st.Call.Args {
				w.expr(a)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		w.branch(st.Body)
		w.branch(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.forever(st)
		w.loopDepth++
		w.branch(st.Body)
		w.stmt(st.Post)
		w.loopDepth--
	case *ast.RangeStmt:
		w.expr(st.X)
		w.loopDepth++
		w.branch(st.Body)
		w.loopDepth--
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			w.branch(c)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			w.branch(c)
		}
	case *ast.CaseClause:
		for _, e := range st.List {
			w.expr(e)
		}
		for _, s := range st.Body {
			w.stmt(s)
		}
	case *ast.SelectStmt:
		w.selectStmt(st)
	case *ast.CommClause:
		// Reached only via selectStmt, which handles the comm itself.
		for _, s := range st.Body {
			w.stmt(s)
		}
	case *ast.LabeledStmt:
		if f, ok := st.Stmt.(*ast.ForStmt); ok {
			if w.loopLabels == nil {
				w.loopLabels = map[*ast.ForStmt]string{}
			}
			w.loopLabels[f] = st.Label.Name
		}
		w.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// selectStmt classifies its send cases: a default clause or a
// ctx.Done-style receive case makes the sends non-blocking escapes.
func (w *bodyWalker) selectStmt(st *ast.SelectStmt) {
	escaped := false
	for _, c := range st.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil { // default:
			escaped = true
			continue
		}
		if isDoneRecv(cc.Comm) {
			escaped = true
		}
	}
	for _, c := range st.Body.List {
		cc := c.(*ast.CommClause)
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			w.send(send.Chan, send.Pos(), escaped)
			w.expr(send.Value)
		}
		for _, s := range cc.Body {
			w.branch(s)
		}
	}
}

// isDoneRecv matches "case <-ctx.Done():" and "case <-x:" receives
// from a method called Done — the cancellation idioms.
func isDoneRecv(comm ast.Stmt) bool {
	var x ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		x = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			x = c.Rhs[0]
		}
	}
	u, ok := x.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	call, ok := u.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

func (w *bodyWalker) assign(st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		var lhs ast.Expr
		if len(st.Lhs) == len(st.Rhs) {
			lhs = st.Lhs[i]
		}
		if lhs != nil {
			w.trackMake(lhs, rhs)
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(call.Fun, "append") && len(call.Args) > 0 {
				dst := types.ExprString(lhs)
				if types.ExprString(call.Args[0]) == dst && !w.prealloc[dst] {
					w.alloc(st.Pos(), "append growth")
				}
				for _, a := range call.Args[1:] {
					w.expr(a)
				}
				continue
			}
			if lit, ok := rhs.(*ast.FuncLit); ok {
				if id, ok := lhs.(*ast.Ident); ok && w.pkg.Info != nil {
					if obj := w.pkg.Info.Defs[id]; obj != nil {
						w.sum.LitBinds[obj] = lit
					} else if obj := w.pkg.Info.Uses[id]; obj != nil {
						w.sum.LitBinds[obj] = lit
					}
				}
			}
		}
		w.expr(rhs)
	}
	for _, lhs := range st.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && w.isMap(ix.X) && !w.prealloc[types.ExprString(ix.X)] {
			w.alloc(lhs.Pos(), "map insert")
		}
	}
}

// trackMake records preallocated slices/maps ("x := make(T, n, cap)",
// "m := make(map, hint)") and locally created channels. A composite
// literal tracks its fields, so "part := groupPart{order: make(…, 0,
// n)}" marks part.order preallocated.
func (w *bodyWalker) trackMake(lhs, rhs ast.Expr) {
	if cl, ok := rhs.(*ast.CompositeLit); ok {
		base := types.ExprString(lhs)
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			w.trackMakeKey(base+"."+key.Name, kv.Value)
		}
		return
	}
	w.trackMakeKey(types.ExprString(lhs), rhs)
}

func (w *bodyWalker) trackMakeKey(key string, rhs ast.Expr) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(call.Fun, "make") || len(call.Args) == 0 {
		return
	}
	t := w.typeOf(call.Args[0])
	switch t.(type) {
	case *types.Chan:
		w.localChans[key] = true
	case *types.Map:
		if len(call.Args) >= 2 {
			w.prealloc[key] = true
		}
	default:
		if len(call.Args) >= 3 {
			w.prealloc[key] = true
		}
	}
}

func (w *bodyWalker) typeOf(e ast.Expr) types.Type {
	if w.pkg.Info == nil {
		return nil
	}
	if tv, ok := w.pkg.Info.Types[e]; ok {
		if tv.IsType() {
			return tv.Type
		}
		return tv.Type
	}
	return w.pkg.Info.TypeOf(e)
}

func (w *bodyWalker) isMap(e ast.Expr) bool {
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (w *bodyWalker) send(ch ast.Expr, pos token.Pos, escaped bool) {
	w.sum.Sends = append(w.sum.Sends, SendSite{
		Pos:     pos,
		Chan:    types.ExprString(ch),
		Escaped: escaped,
		Local:   w.localChans[types.ExprString(ch)],
		Held:    w.heldCopy(),
	})
	w.expr(ch)
}

func (w *bodyWalker) spawn(st *ast.GoStmt) {
	sp := SpawnSite{Go: st, Held: w.heldCopy()}
	switch fun := ast.Unparen(st.Call.Fun).(type) {
	case *ast.FuncLit:
		sp.Lit = fun
		w.litAt(fun)
	default:
		sp.Callee = w.calleeOf(st.Call)
	}
	w.sum.Spawns = append(w.sum.Spawns, sp)
	for _, a := range st.Call.Args {
		w.expr(a)
	}
}

func (w *bodyWalker) alloc(pos token.Pos, kind string) {
	w.sum.Allocs = append(w.sum.Allocs, AllocSite{Pos: pos, Kind: kind, InLoop: w.loopDepth > 0})
}

// litAt summarizes a nested function literal with a fresh walker and
// records it on the enclosing summary.
func (w *bodyWalker) litAt(lit *ast.FuncLit) {
	w.sum.Lits = append(w.sum.Lits, lit)
	if _, ok := w.m.lits[lit]; ok {
		return
	}
	sub := w.m.summarize(w.pkg, nil, nil, lit, lit.Body)
	w.m.lits[lit] = sub
}

func (w *bodyWalker) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(x)
	case *ast.FuncLit:
		w.alloc(x.Pos(), "closure")
		w.litAt(x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				w.alloc(x.Pos(), "pointer literal")
			}
		}
		w.expr(x.X)
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.SelectorExpr:
		w.expr(x.X)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.expr(x.X)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value)
	}
}

// call handles mutex operations, allocation builtins, and ordinary
// call sites.
func (w *bodyWalker) call(call *ast.CallExpr) {
	switch w.lockMethod(call) {
	case "Lock", "RLock":
		site := LockSite{
			Key:  w.lockKey(call.Fun.(*ast.SelectorExpr).X),
			Pos:  call.Pos(),
			Read: w.lockMethod(call) == "RLock",
		}
		for _, h := range w.held {
			w.sum.Edges = append(w.sum.Edges, LockEdge{From: h, To: site})
		}
		w.sum.Acquires = append(w.sum.Acquires, site)
		w.held = append(w.held, site)
		return
	case "Unlock", "RUnlock":
		key := w.lockKey(call.Fun.(*ast.SelectorExpr).X)
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].Key == key {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if w.pkg.Info == nil || w.pkg.Info.Uses[id] == nil { // builtin, not shadowed
				w.alloc(call.Pos(), "make")
			}
		case "new":
			if w.pkg.Info == nil || w.pkg.Info.Uses[id] == nil {
				w.alloc(call.Pos(), "new")
			}
		case "append":
			// Bare append in expression position: growth unless the
			// destination is tracked preallocated (assign handles the
			// common x = append(x, …) form before reaching here).
		}
	}
	w.callSite(call, w.heldCopy())
	for _, a := range call.Args {
		w.expr(a)
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(fun.X)
	}
}

func (w *bodyWalker) callSite(call *ast.CallExpr, held []LockSite) {
	w.sum.Calls = append(w.sum.Calls, CallSite{
		Call:   call,
		Callee: w.calleeOf(call),
		Held:   held,
		InLoop: w.loopDepth > 0,
	})
}

// calleeOf statically resolves a call target to a *types.Func, or nil
// for dynamic calls.
func (w *bodyWalker) calleeOf(call *ast.CallExpr) *types.Func {
	if w.pkg.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := w.pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// lockMethod classifies a call as a sync.Mutex/RWMutex operation,
// returning "" otherwise.
func (w *bodyWalker) lockMethod(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	t := w.typeOf(sel.X)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return sel.Sel.Name
	}
	return ""
}

// lockKey derives a stable identity for the mutex expression: the
// owning named type and field for struct mutexes, the package variable
// path for globals, and a function-scoped name for locals.
func (w *bodyWalker) lockKey(x ast.Expr) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// owner.field — prefer the owner's named type.
		if t := w.typeOf(e.X); t != nil {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		// pkgname.Var or pkg-level var of anonymous struct type.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.pkg.Info != nil {
			switch obj := w.pkg.Info.Uses[id].(type) {
			case *types.PkgName:
				return obj.Imported().Path() + "." + e.Sel.Name
			case *types.Var:
				if obj.Parent() == obj.Pkg().Scope() {
					return obj.Pkg().Path() + "." + obj.Name() + "." + e.Sel.Name
				}
			}
		}
		return w.scopedKey(types.ExprString(x))
	case *ast.Ident:
		if w.pkg.Info != nil {
			if obj, ok := w.pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
				if obj.Parent() == obj.Pkg().Scope() {
					return obj.Pkg().Path() + "." + obj.Name()
				}
			}
		}
		return w.scopedKey(e.Name)
	}
	return w.scopedKey(types.ExprString(x))
}

// scopedKey qualifies an unresolvable mutex expression by package and
// enclosing function so distinct locals never collide.
func (w *bodyWalker) scopedKey(expr string) string {
	owner := "lit"
	if w.sum.Fn != nil {
		owner = w.sum.Fn.Name()
	}
	return w.pkg.Path + "." + owner + "." + expr
}

// forever marks the summary when a condition-less for loop has no
// reachable exit.
func (w *bodyWalker) forever(st *ast.ForStmt) {
	if st.Cond != nil || w.sum.LoopsForever {
		return
	}
	if loopHasExit(st, w.loopLabels[st]) {
		return
	}
	w.sum.LoopsForever = true
	w.sum.ForeverLoop = st.Pos()
}

// loopHasExit reports whether a condition-less for loop contains a
// statement that leaves it: a return, a break that targets it, a goto,
// or a call that never returns (panic, os.Exit, log.Fatal*,
// runtime.Goexit).
func loopHasExit(loop *ast.ForStmt, label string) bool {
	found := false
	// depth counts enclosing breakables between a break and this loop.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if found || n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return // returns inside closures exit the closure only
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			switch st.Tok {
			case token.BREAK:
				if st.Label == nil && depth == 0 {
					found = true
				} else if st.Label != nil && st.Label.Name == label {
					found = true
				}
			case token.GOTO:
				found = true
			}
			return
		case *ast.CallExpr:
			if isNoReturnCall(st) {
				found = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(n, func(inner ast.Node) bool {
				if inner == n {
					return true
				}
				walk(inner, depth+1)
				return false
			})
			return
		}
		ast.Inspect(n, func(inner ast.Node) bool {
			if inner == n {
				return true
			}
			walk(inner, depth)
			return false
		})
	}
	walk(loop.Body, 0)
	return found
}

// isNoReturnCall matches calls that terminate the goroutine: panic,
// os.Exit, runtime.Goexit, and log.Fatal variants.
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case id.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case id.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case id.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}

// isBuiltin matches an unshadowed use of a builtin by name.
func isBuiltin(fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	return ok && id.Name == name
}
