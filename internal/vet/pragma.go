package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPragma is the comment prefix that suppresses a diagnostic:
// "//cobravet:allow name1 name2" on the flagged line, on the line
// directly above it, or in the doc comment of the enclosing top-level
// function declaration.
const AllowPragma = "//cobravet:allow"

// ParseAllowPragma extracts the analyzer names from one comment's
// text, reporting ok=false when the comment is not an allow pragma at
// all. A pragma with no names returns ok=true and an empty list (the
// allowlint analyzer flags that as malformed).
func ParseAllowPragma(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(text, AllowPragma)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	// Anything after a second "//" is prose, not analyzer names.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest), true
}

// allowIndex is a per-package lookup of allow pragmas: line-level
// pragmas keyed by file and line, and function-level pragmas keyed by
// the declaration's line range.
type allowIndex struct {
	byLine map[string]map[int][]string
	decls  []declAllow
}

// declAllow is one function whose doc comment carries an allow pragma
// covering the function's whole body.
type declAllow struct {
	file       string
	start, end int
	names      []string
}

// buildAllowIndex scans every comment in the files for allow pragmas.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ai := &allowIndex{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := ParseAllowPragma(c.Text)
				if !ok || len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ai.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ai.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			var names []string
			for _, c := range fn.Doc.List {
				if ns, ok := ParseAllowPragma(c.Text); ok {
					names = append(names, ns...)
				}
			}
			if len(names) == 0 {
				continue
			}
			start := fset.Position(fn.Pos())
			end := fset.Position(fn.End())
			ai.decls = append(ai.decls, declAllow{
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
				names: names,
			})
		}
	}
	return ai
}

// allowed reports whether analyzer name is suppressed at pos.
func (ai *allowIndex) allowed(name string, pos token.Position) bool {
	if lines := ai.byLine[pos.Filename]; lines != nil {
		for _, n := range lines[pos.Line] {
			if n == name {
				return true
			}
		}
		for _, n := range lines[pos.Line-1] {
			if n == name {
				return true
			}
		}
	}
	for _, d := range ai.decls {
		if d.file != pos.Filename || pos.Line < d.start || pos.Line > d.end {
			continue
		}
		for _, n := range d.names {
			if n == name {
				return true
			}
		}
	}
	return false
}
