package milcheck

import (
	"strings"
	"testing"

	"cobra/internal/mil"
	"cobra/internal/monet"
)

// analyzeSrc parses and analyzes, failing the test on parse errors.
func analyzeSrc(t *testing.T, src string, opts *Options) *Result {
	t.Helper()
	prog, err := mil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(prog, opts)
}

func check(t *testing.T, src string, opts *Options) []Diagnostic {
	t.Helper()
	diags, err := CheckSource(src, opts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return diags
}

// wantDiag asserts a diagnostic with the given code exists at line:col
// with the given severity.
func wantDiag(t *testing.T, diags []Diagnostic, code string, sev Severity, line, col int) {
	t.Helper()
	for _, d := range diags {
		if d.Code == code && d.Line == line && d.Col == col && d.Severity == sev {
			return
		}
	}
	t.Errorf("missing %s %s at %d:%d; got:\n%s", sev, code, line, col, renderDiags(diags))
}

func wantNoDiag(t *testing.T, diags []Diagnostic, code string) {
	t.Helper()
	for _, d := range diags {
		if d.Code == code {
			t.Errorf("unexpected %s: %s", code, d)
		}
	}
}

func wantClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", renderDiags(diags))
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)"
	}
	return b.String()
}

func TestUnboundVar(t *testing.T) {
	diags := check(t, "VAR a := 1;\nprint(bogus);\n", nil)
	wantDiag(t, diags, "unbound-var", Error, 2, 7)
}

func TestAssignUndeclared(t *testing.T) {
	diags := check(t, "x := 42;\n", nil)
	wantDiag(t, diags, "unbound-var", Error, 1, 1)
}

func TestTypeMismatchSeededPlan(t *testing.T) {
	// The acceptance-criteria seeded plan: selecting with a string key
	// over an int tail silently returns nothing at runtime because the
	// kernel compares unequal types by type id.
	src := `VAR speeds := new(oid, int);
speeds.insert(oid(0), 180);
VAR fast := speeds.uselect("180", "300");
print(fast.count);
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "bad-call", Error, 3, 19)
}

func TestAnnotationMismatch(t *testing.T) {
	diags := check(t, "VAR n : str := 42;\nprint(n);\n", nil)
	wantDiag(t, diags, "type-mismatch", Error, 1, 1)
}

func TestAssignKindFlip(t *testing.T) {
	src := "VAR b := new(void, dbl);\nb := 1;\nprint(b);\n"
	diags := check(t, src, nil)
	wantDiag(t, diags, "type-mismatch", Error, 2, 1)
}

func TestParallelWriteWrite(t *testing.T) {
	// Two branches assigning the same outer variable: last write wins
	// nondeterministically.
	src := `VAR best := 0;
PARALLEL {
  best := 1;
  best := 2;
}
print(best);
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "parallel-write-write", Error, 4, 3)
}

func TestParallelReadWrite(t *testing.T) {
	src := `VAR x := 0;
PARALLEL {
  x := 1;
  print(x + 1);
}
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "parallel-read-write", Error, 3, 3)
}

func TestParallelMutateReadWarns(t *testing.T) {
	src := `VAR scores := new(str, dbl);
PARALLEL {
  scores.insert("a", 0.9);
  print(scores.count);
}
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "parallel-mutate-read", Warning, 4, 9)
	if HasErrors(diags) {
		t.Errorf("mutate-read should not be an error:\n%s", renderDiags(diags))
	}
}

func TestParallelFig4PatternAccepted(t *testing.T) {
	// The paper's Fig. 4 idiom: every branch inserts into one shared
	// result BAT. The interpreter serializes in-place inserts, so this
	// must pass without errors.
	src := `VAR parEval := new(str, dbl);
PARALLEL {
  parEval.insert("seg1", 0.9);
  parEval.insert("seg2", 0.7);
  parEval.insert("seg3", 0.4);
}
VAR best := parEval.reverse.max;
print(best);
`
	diags := check(t, src, nil)
	if HasErrors(diags) {
		t.Errorf("Fig. 4 pattern should check clean:\n%s", renderDiags(diags))
	}
	wantNoDiag(t, diags, "parallel-write-write")
	wantNoDiag(t, diags, "parallel-read-write")
}

func TestParallelBranchLocalIsFine(t *testing.T) {
	src := `PARALLEL {
  { VAR a := 1; print(a); }
  { VAR a := 2; print(a); }
}
`
	wantClean(t, check(t, src, nil))
}

func TestUnusedVar(t *testing.T) {
	diags := check(t, "VAR unused := 1;\nVAR used := 2;\nprint(used);\n", nil)
	wantDiag(t, diags, "unused-var", Warning, 1, 1)
	wantNoDiag(t, diags, "redeclared")
}

func TestUnderscoreSuppressesUnused(t *testing.T) {
	wantClean(t, check(t, "VAR _scratch := 1;\n", nil))
}

func TestRedeclared(t *testing.T) {
	diags := check(t, "VAR a := 1;\nVAR a := 2;\nprint(a);\n", nil)
	wantDiag(t, diags, "redeclared", Warning, 2, 1)
}

func TestUnreachable(t *testing.T) {
	src := `PROC f(int x) : int := {
  RETURN x + 1;
  print(x);
}
print(f(1));
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "unreachable", Warning, 3, 3)
}

func TestConstCond(t *testing.T) {
	diags := check(t, "IF (true) { print(1); }\n", nil)
	wantDiag(t, diags, "const-cond", Warning, 1, 5)
}

func TestUnknownFuncErrorAndLenient(t *testing.T) {
	src := "print(frobnicate(1));\n"
	wantDiag(t, check(t, src, nil), "unknown-func", Error, 1, 7)
	wantDiag(t, check(t, src, &Options{LenientCalls: true}), "unknown-func", Warning, 1, 7)
	wantClean(t, check(t, src, &Options{KnownFuncs: []string{"frobnicate"}}))
}

func TestUnknownMethod(t *testing.T) {
	diags := check(t, "VAR b := new(void, int);\nprint(b.explode);\n", nil)
	wantDiag(t, diags, "unknown-method", Error, 2, 8)
}

func TestTypeInferenceThroughPlan(t *testing.T) {
	// A Fig. 5-style plan: join lap times to drivers and aggregate.
	src := `VAR laps := new(oid, dbl);
laps.insert(oid(0), 83.2);
VAR drivers := new(oid, str);
drivers.insert(oid(0), "mschumacher");
VAR sel := laps.uselect(80.0, 90.0);
VAR hits := sel.mirror.join(drivers);
RETURN hits;
`
	res := analyzeSrc(t, src, nil)
	wantClean(t, res.Diags)
	if got := res.Vars["sel"].String(); got != "BAT[oid,void]" {
		t.Errorf("sel type = %s, want BAT[oid,void]", got)
	}
	if got := res.Vars["hits"].String(); got != "BAT[oid,str]" {
		t.Errorf("hits type = %s, want BAT[oid,str]", got)
	}
	if got := res.Value.String(); got != "BAT[oid,str]" {
		t.Errorf("program value = %s, want BAT[oid,str]", got)
	}
}

func TestJoinColumnMismatch(t *testing.T) {
	src := `VAR a := new(oid, str);
VAR b := new(oid, dbl);
print(a.join(b).count);
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "bad-call", Error, 3, 8)
}

func TestKUnionMismatch(t *testing.T) {
	src := `VAR a := new(oid, dbl);
VAR b := new(oid, str);
print(a.kunion(b).count);
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "bad-call", Error, 3, 8)
}

func TestHistogramAndMarkTypes(t *testing.T) {
	src := `VAR ev := new(void, str);
VAR h := ev.histogram;
print(h.count);
VAR m := ev.reverse.mark;
RETURN m;
`
	res := analyzeSrc(t, src, nil)
	wantClean(t, res.Diags)
	if got := res.Vars["h"].String(); got != "BAT[str,int]" {
		t.Errorf("histogram type = %s, want BAT[str,int]", got)
	}
	if got := res.Vars["m"].String(); got != "BAT[str,oid]" {
		t.Errorf("mark type = %s, want BAT[str,oid]", got)
	}
}

func TestSumOverNonNumericTail(t *testing.T) {
	diags := check(t, "VAR names := new(void, str);\nprint(names.sum);\n", nil)
	wantDiag(t, diags, "bad-call", Error, 2, 12)
}

func TestProcArityAndTypes(t *testing.T) {
	src := `PROC double(int x) : int := { RETURN x * 2; }
print(double(1, 2));
print(double("no"));
print(double(21));
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "bad-call", Error, 2, 7)
	wantDiag(t, diags, "type-mismatch", Error, 3, 7)
}

func TestProcReturnInference(t *testing.T) {
	src := `PROC mk() := { RETURN new(void, dbl); }
VAR b := mk();
RETURN b;
`
	res := analyzeSrc(t, src, nil)
	wantClean(t, res.Diags)
	if got := res.Vars["b"].String(); got != "BAT[void,dbl]" {
		t.Errorf("b type = %s, want BAT[void,dbl]", got)
	}
}

func TestProcDeclaredReturnMismatch(t *testing.T) {
	src := `PROC bad() : int := { RETURN "nope"; }
print(bad());
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "type-mismatch", Error, 1, 1)
}

func TestProcUsedBeforeDecl(t *testing.T) {
	src := `print(later(2));
PROC later(int x) : int := { RETURN x; }
`
	diags := check(t, src, nil)
	wantNoDiag(t, diags, "unknown-func")
}

func TestRecursiveProc(t *testing.T) {
	src := `PROC fact(int n) : int := {
  IF (n < 2) { RETURN 1; }
  RETURN n * fact(n - 1);
}
print(fact(5));
`
	diags := check(t, src, nil)
	if HasErrors(diags) {
		t.Errorf("recursive proc should check clean:\n%s", renderDiags(diags))
	}
}

func TestMapProcResolution(t *testing.T) {
	src := `PROC toStr(oid h, dbl v) : str := { RETURN str(v); }
VAR b := new(oid, dbl);
VAR s := b.map("toStr");
RETURN s;
`
	res := analyzeSrc(t, src, nil)
	wantClean(t, res.Diags)
	if got := res.Vars["s"].String(); got != "BAT[oid,str]" {
		t.Errorf("map result = %s, want BAT[oid,str]", got)
	}

	diags := check(t, "VAR b := new(oid, dbl);\nprint(b.map(\"nosuch\").count);\n", nil)
	wantDiag(t, diags, "unbound-var", Error, 2, 8)
}

func TestResolveBAT(t *testing.T) {
	opts := &Options{
		ResolveBAT: func(name string) (monet.Type, monet.Type, bool) {
			if name == "cobra/videos" {
				return monet.OIDT, monet.StrT, true
			}
			return 0, 0, false
		},
	}
	res := analyzeSrc(t, "RETURN bat(\"cobra/videos\");\n", opts)
	wantClean(t, res.Diags)
	if got := res.Value.String(); got != "BAT[oid,str]" {
		t.Errorf("value = %s, want BAT[oid,str]", got)
	}

	diags := check(t, "print(bat(\"nope\").count);\n", opts)
	wantDiag(t, diags, "unknown-bat", Warning, 1, 7)
}

func TestRegisterThenBATResolves(t *testing.T) {
	// register() publishes within the plan; a later bat() lookup of the
	// same literal name must see the registered type, even with a store
	// resolver that does not know the name yet.
	opts := &Options{ResolveBAT: func(string) (monet.Type, monet.Type, bool) { return 0, 0, false }}
	src := `register("tmp/x", new(void, dbl));
RETURN bat("tmp/x");
`
	res := analyzeSrc(t, src, opts)
	wantClean(t, res.Diags)
	if got := res.Value.String(); got != "BAT[void,dbl]" {
		t.Errorf("value = %s, want BAT[void,dbl]", got)
	}
}

func TestGlobalsOption(t *testing.T) {
	opts := &Options{Globals: map[string]VType{"session": BATOf(monet.OIDT, monet.StrT)}}
	wantClean(t, check(t, "print(session.count);\n", opts))
}

func TestExtensionSigs(t *testing.T) {
	opts := &Options{Funcs: ExtensionSigs()}
	src := `VAR obs := new(void, int);
VAR ll := hmmOneCall("overtake", obs);
print(ll);
`
	wantClean(t, check(t, src, opts))

	diags := check(t, "print(hmmOneCall(42, new(void,int)));\n", opts)
	wantDiag(t, diags, "bad-call", Error, 1, 7)
}

func TestBinaryOperators(t *testing.T) {
	diags := check(t, "VAR b := new(void, int);\nprint(b + 1);\n", nil)
	wantDiag(t, diags, "type-mismatch", Error, 2, 9)

	diags = check(t, "print(\"a\" < 1);\n", nil)
	wantDiag(t, diags, "type-mismatch", Error, 1, 11)

	diags = check(t, "print(1.5 % 2.0);\n", nil)
	wantDiag(t, diags, "type-mismatch", Error, 1, 11)

	wantClean(t, check(t, "print(\"a\" + \"b\");\nprint(1 + 2);\nprint(1 < 2.0);\n", nil))
}

func TestNegateString(t *testing.T) {
	diags := check(t, "print(-\"x\");\n", nil)
	wantDiag(t, diags, "type-mismatch", Error, 1, 7)
}

func TestNoValueContexts(t *testing.T) {
	diags := check(t, "VAR p := print(1);\n", nil)
	wantDiag(t, diags, "no-value", Error, 1, 1)
}

func TestReturnInParallelWarns(t *testing.T) {
	src := `PARALLEL {
  RETURN 1;
  print(2);
}
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "return-in-parallel", Warning, 2, 3)
}

func TestDiagnosticStringFormat(t *testing.T) {
	d := Diagnostic{Line: 3, Col: 7, Severity: Error, Code: "unbound-var", Msg: "undefined variable \"x\""}
	want := `3:7: error: undefined variable "x" [unbound-var]`
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestCheckSourceParseError(t *testing.T) {
	_, err := CheckSource("VAR := ;", nil)
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestIndexBuiltinSigs(t *testing.T) {
	diags := check(t, `print(crack("laps") + zonemap("laps"));
VAR ii := indexinfo("laps");
print(ii.find("crack"));
`, nil)
	wantClean(t, diags)
	// Non-string BAT names and wrong arity are diagnosed.
	diags = check(t, `print(crack(1));`, nil)
	wantDiag(t, diags, "bad-call", Error, 1, 7)
	diags = check(t, `print(zonemap(1.5));`, nil)
	wantDiag(t, diags, "bad-call", Error, 1, 7)
	diags = check(t, `print(indexinfo("x", "y").count);`, nil)
	wantDiag(t, diags, "bad-call", Error, 1, 7)
}

func TestIndexBuildersInParallelWarn(t *testing.T) {
	src := `PARALLEL {
  print(crack("a"));
  print(zonemap("b"));
}
print(indexinfo("a").count);
`
	diags := check(t, src, nil)
	wantDiag(t, diags, "index-in-parallel", Warning, 2, 9)
	wantDiag(t, diags, "index-in-parallel", Warning, 3, 9)
	// indexinfo is read-only: no warning outside or inside PARALLEL.
	diags = check(t, "PARALLEL {\n  print(indexinfo(\"a\").count);\n}\n", nil)
	wantNoDiag(t, diags, "index-in-parallel")
}
