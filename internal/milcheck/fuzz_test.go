package milcheck

import (
	"testing"

	"cobra/internal/mil"
	"cobra/internal/monet"
)

// FuzzCheck runs the full analyzer over arbitrary source: the checker
// must never panic, and every diagnostic must carry a non-negative
// position.
func FuzzCheck(f *testing.F) {
	seeds := []string{
		"VAR a := 1; print(a);",
		"VAR b := new(void, dbl);\nb.insert(nil, 0.5);\nRETURN b.sum;",
		"PROC f(int x) : int := { RETURN f(x - 1); }\nprint(f(3));",
		"PARALLEL {\n  x := 1;\n  x := 2;\n}",
		"VAR t : BAT[oid,dbl] := new(oid, dbl);\nRETURN t.reverse.mark.histogram;",
		"register(\"a/b\", new(void, int));\nRETURN bat(\"a/b\").map(\"nope\");",
		"IF (true) { RETURN 1; } ELSE { RETURN \"x\"; }\nprint(1);",
		"PROC a() := { RETURN b(); }\nPROC b() := { RETURN a(); }\nprint(a());",
		"VAR m := new(oid, dbl).uselect(\"k\");",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	opts := &Options{
		Funcs: ExtensionSigs(),
		ResolveBAT: func(name string) (monet.Type, monet.Type, bool) {
			if name == "cobra/videos" {
				return monet.OIDT, monet.StrT, true
			}
			return 0, 0, false
		},
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := mil.Parse(src)
		if err != nil {
			return
		}
		res := Analyze(prog, opts)
		for _, d := range res.Diags {
			if d.Line < 0 || d.Col < 0 {
				t.Fatalf("negative diagnostic position: %s", d)
			}
			if d.Msg == "" || d.Code == "" {
				t.Fatalf("empty diagnostic fields: %+v", d)
			}
		}
	})
}
