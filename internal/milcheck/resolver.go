package milcheck

import "cobra/internal/monet"

// StoreResolver adapts a live kernel store into Options.ResolveBAT, so
// bat("name") calls over registered BATs check against their actual
// column types.
func StoreResolver(store *monet.Store) func(string) (monet.Type, monet.Type, bool) {
	return func(name string) (monet.Type, monet.Type, bool) {
		if store == nil {
			return 0, 0, false
		}
		b, err := store.Get(name)
		if err != nil {
			return 0, 0, false
		}
		return b.HeadType(), b.TailType(), true
	}
}
