package milcheck

import (
	"fmt"

	"cobra/internal/monet"
)

// Sig statically describes a callable: given the argument types it
// returns the result type, or a non-empty problem string that becomes
// an error diagnostic at the call site.
type Sig func(args []VType) (VType, string)

// fixedSig builds a Sig for a fixed-arity callable from per-argument
// validators.
func fixedSig(name string, result VType, params ...func(VType) string) Sig {
	return func(args []VType) (VType, string) {
		if len(args) != len(params) {
			return result, fmt.Sprintf("%s expects %d argument(s), got %d", name, len(params), len(args))
		}
		for i, check := range params {
			if msg := check(args[i]); msg != "" {
				return result, fmt.Sprintf("%s argument %d: %s", name, i+1, msg)
			}
		}
		return result, ""
	}
}

func wantNumeric(v VType) string {
	if !v.IsNumeric() {
		return fmt.Sprintf("want a numeric atom, got %s", v)
	}
	return ""
}

func wantAtom(v VType) string {
	if !v.IsAtom() {
		return fmt.Sprintf("want an atom, got %s", v)
	}
	return ""
}

func wantStr(v VType) string {
	if v.Kind == AnyK || (v.Kind == AtomK && (v.Atom == monet.StrT || v.Atom == AnyAtom)) {
		return ""
	}
	return fmt.Sprintf("want a str atom, got %s", v)
}

func wantBAT(v VType) string {
	if !v.IsBAT() {
		return fmt.Sprintf("want a BAT, got %s", v)
	}
	return ""
}

func wantNumericBAT(v VType) string {
	if v.Kind == AnyK {
		return ""
	}
	if v.Kind != BATK {
		return fmt.Sprintf("want a BAT, got %s", v)
	}
	if !numericAtom(v.Tail) {
		return fmt.Sprintf("want a numeric tail, got %s", v)
	}
	return ""
}

func wantAny(VType) string { return "" }

// stdlibSigs returns the signatures of the interpreter stdlib
// builtins, excluding new/bat/register/print which need access to the
// call expression and are special-cased by the checker.
func stdlibSigs() map[string]Sig {
	sigs := map[string]Sig{
		"threadcnt": fixedSig("threadcnt", AtomOf(monet.IntT), wantNumeric),
		"poolsize":  fixedSig("poolsize", AtomOf(monet.IntT)),
		"sqrt":      fixedSig("sqrt", AtomOf(monet.FloatT), wantNumeric),
		"log":       fixedSig("log", AtomOf(monet.FloatT), wantNumeric),
		"int":       fixedSig("int", AtomOf(monet.IntT), wantNumeric),
		"dbl":       fixedSig("dbl", AtomOf(monet.FloatT), wantNumeric),
		"oid":       fixedSig("oid", AtomOf(monet.OIDT), wantNumeric),
		"str":       fixedSig("str", AtomOf(monet.StrT), wantAny),
		"isnil":     fixedSig("isnil", AtomOf(monet.BoolT), wantAny),
		"abs": func(args []VType) (VType, string) {
			if len(args) != 1 {
				return AnyAtomType(), "abs expects 1 argument"
			}
			if msg := wantNumeric(args[0]); msg != "" {
				return AnyAtomType(), "abs argument 1: " + msg
			}
			if args[0].Kind == AtomK && args[0].Atom == monet.IntT {
				return AtomOf(monet.IntT), ""
			}
			if args[0].Kind == AtomK && args[0].Atom != AnyAtom {
				return AtomOf(monet.FloatT), ""
			}
			return AnyAtomType(), ""
		},
		"crack":     fixedSig("crack", AtomOf(monet.IntT), wantStr),
		"zonemap":   fixedSig("zonemap", AtomOf(monet.IntT), wantStr),
		"indexinfo": fixedSig("indexinfo", BATOf(monet.StrT, monet.StrT), wantStr),
		"fusedaggr": fixedSig("fusedaggr", AnyAtomType(), wantStr, wantAtom, wantAtom, wantStr, wantStr),
		"fusedruns": fixedSig("fusedruns", BATOf(monet.OIDT, monet.IntT), wantStr, wantAtom, wantAtom),
		"scale":     fixedSig("scale", BATOf(monet.Void, monet.FloatT), wantNumericBAT, wantNumeric, wantNumeric),
		"clamp":     fixedSig("clamp", BATOf(monet.Void, monet.FloatT), wantNumericBAT, wantNumeric, wantNumeric),
		"threshold": fixedSig("threshold", BATOf(monet.Void, monet.BoolT), wantNumericBAT, wantNumeric),
		"mavg":      fixedSig("mavg", BATOf(monet.Void, monet.FloatT), wantNumericBAT, wantNumeric),
	}
	for _, name := range []string{"calcadd", "calcsub", "calcmul", "calcdiv", "calcmin", "calcmax"} {
		sigs[name] = fixedSig(name, BATOf(monet.Void, monet.FloatT), wantNumericBAT, wantNumericBAT)
	}
	return sigs
}

// ExtensionSigs returns the signatures of the extension-module
// operations the repo's MEL-style modules register (internal/ext): the
// Fig. 4 hmmOneCall/hmmClassify operators. DBN operators are
// registered under model-specific names and stay unknown unless the
// caller adds them via Options.Funcs.
func ExtensionSigs() map[string]Sig {
	return map[string]Sig{
		"hmmonecall":  fixedSig("hmmOneCall", AtomOf(monet.FloatT), wantStr, wantBAT),
		"hmmclassify": fixedSig("hmmClassify", AtomOf(monet.StrT), wantBAT),
	}
}

// methodSig checks one BAT method call, returning the result type, a
// problem string ("" when well-typed) and whether the method exists.
// recv is the receiver's BAT type (possibly AnyBAT when unknown).
func methodSig(name string, recv VType, args []VType) (res VType, problem string, known bool) {
	h, t := AnyAtom, AnyAtom
	if recv.Kind == BATK {
		h, t = recv.Head, recv.Tail
	}
	argc := func(n int) string {
		if len(args) != n {
			return fmt.Sprintf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return ""
	}
	// keyArg verifies that an atom argument can be compared against a
	// column of type col: the kernel compares values of unequal types
	// by type id, which silently selects nothing, so a static mismatch
	// is an error.
	keyArg := func(i int, col monet.Type, what string) string {
		a := args[i]
		if !a.IsAtom() {
			return fmt.Sprintf("%s argument %d: want an atom, got %s", name, i+1, a)
		}
		if a.Kind == AtomK && !atomsUnify(a.Atom, col) {
			return fmt.Sprintf("%s argument %d: %s key %s does not match column type %s",
				name, i+1, what, atomName(a.Atom), atomName(col))
		}
		return ""
	}
	sameBAT := func(i int) (VType, string) {
		a := args[i]
		if !a.IsBAT() {
			return recv, fmt.Sprintf("%s argument %d: want a BAT, got %s", name, i+1, a)
		}
		return recv, ""
	}
	switch name {
	case "insert":
		if msg := argc(2); msg != "" {
			return recv, msg, true
		}
		// The interpreter substitutes nil heads for void-head BATs, so
		// any head atom is fine there; otherwise types must match.
		if h != monet.Void {
			if msg := keyArg(0, h, "head"); msg != "" {
				return recv, msg, true
			}
		} else if !args[0].IsAtom() {
			return recv, fmt.Sprintf("insert argument 1: want an atom, got %s", args[0]), true
		}
		if t != monet.Void {
			if msg := keyArg(1, t, "tail"); msg != "" {
				return recv, msg, true
			}
		} else if !args[1].IsAtom() {
			return recv, fmt.Sprintf("insert argument 2: want an atom, got %s", args[1]), true
		}
		return recv, "", true
	case "append", "kunion":
		if msg := argc(1); msg != "" {
			return recv, msg, true
		}
		res, msg := sameBAT(0)
		if msg != "" {
			return res, msg, true
		}
		o := args[0]
		if o.Kind == BATK && recv.Kind == BATK &&
			(!atomsUnify(o.Head, h) || !atomsUnify(o.Tail, t)) {
			return recv, fmt.Sprintf("%s: cannot union %s with %s", name, o, recv), true
		}
		return recv, "", true
	case "kdiff", "semijoin":
		if msg := argc(1); msg != "" {
			return recv, msg, true
		}
		res, msg := sameBAT(0)
		if msg != "" {
			return res, msg, true
		}
		o := args[0]
		if o.Kind == BATK && recv.Kind == BATK && !atomsUnify(o.Head, h) {
			return recv, fmt.Sprintf("%s: head %s is incompatible with head %s", name, atomName(h), atomName(o.Head)), true
		}
		return recv, "", true
	case "join":
		if msg := argc(1); msg != "" {
			return AnyBAT(), msg, true
		}
		o := args[0]
		if !o.IsBAT() {
			return AnyBAT(), fmt.Sprintf("join argument 1: want a BAT, got %s", o), true
		}
		if o.Kind == BATK && recv.Kind == BATK {
			if !atomsUnify(t, o.Head) {
				return AnyBAT(), fmt.Sprintf("join: tail %s does not match head %s", atomName(t), atomName(o.Head)), true
			}
			return BATOf(materialAtom(h), materialAtom(o.Tail)), "", true
		}
		return AnyBAT(), "", true
	case "reverse":
		return BATOf(t, h), argc(0), true
	case "mirror":
		return BATOf(h, h), argc(0), true
	case "mark":
		if len(args) > 1 {
			return BATOf(materialAtom(h), monet.OIDT), fmt.Sprintf("mark expects 0 or 1 argument(s), got %d", len(args)), true
		}
		if len(args) == 1 {
			if msg := wantNumeric(args[0]); msg != "" {
				return BATOf(materialAtom(h), monet.OIDT), "mark argument 1: " + msg, true
			}
		}
		return BATOf(materialAtom(h), monet.OIDT), "", true
	case "select":
		if len(args) != 1 && len(args) != 2 {
			return recv, fmt.Sprintf("select expects 1 or 2 argument(s), got %d", len(args)), true
		}
		for i := range args {
			if msg := keyArg(i, t, "tail"); msg != "" {
				return recv, msg, true
			}
		}
		return recv, "", true
	case "uselect":
		if len(args) != 1 && len(args) != 2 {
			return BATOf(materialAtom(h), monet.Void), fmt.Sprintf("uselect expects 1 or 2 argument(s), got %d", len(args)), true
		}
		for i := range args {
			if msg := keyArg(i, t, "tail"); msg != "" {
				return BATOf(materialAtom(h), monet.Void), msg, true
			}
		}
		return BATOf(materialAtom(h), monet.Void), "", true
	case "find":
		if msg := argc(1); msg != "" {
			return AnyAtomType(), msg, true
		}
		if msg := keyArg(0, h, "head"); msg != "" {
			return AnyAtomType(), msg, true
		}
		return AtomOf(t), "", true
	case "exists":
		if msg := argc(1); msg != "" {
			return AtomOf(monet.BoolT), msg, true
		}
		if msg := keyArg(0, h, "head"); msg != "" {
			return AtomOf(monet.BoolT), msg, true
		}
		return AtomOf(monet.BoolT), "", true
	case "count":
		return AtomOf(monet.IntT), argc(0), true
	case "sum", "avg":
		if msg := argc(0); msg != "" {
			return AtomOf(monet.FloatT), msg, true
		}
		if recv.Kind == BATK && !numericAtom(t) {
			return AtomOf(monet.FloatT), fmt.Sprintf("%s over non-numeric tail %s", name, atomName(t)), true
		}
		return AtomOf(monet.FloatT), "", true
	case "max", "min":
		return AtomOf(t), argc(0), true
	case "argmax", "argmin":
		if msg := argc(0); msg != "" {
			return AtomOf(materialAtom(h)), msg, true
		}
		if recv.Kind == BATK && !numericAtom(t) {
			return AtomOf(materialAtom(h)), fmt.Sprintf("%s over non-numeric tail %s", name, atomName(t)), true
		}
		return AtomOf(materialAtom(h)), "", true
	case "sort", "sorthead", "copy":
		return recv, argc(0), true
	case "slice":
		if msg := argc(2); msg != "" {
			return recv, msg, true
		}
		for i := range args {
			if msg := wantNumeric(args[i]); msg != "" {
				return recv, fmt.Sprintf("slice argument %d: %s", i+1, msg), true
			}
		}
		return recv, "", true
	case "histogram":
		return BATOf(materialAtom(t), monet.IntT), argc(0), true
	case "map":
		// Result tail depends on the named PROC; the checker resolves
		// it separately when the name is a literal.
		return BATOf(materialAtom(h), AnyAtom), argc(1), true
	case "filterproc":
		return recv, argc(1), true
	}
	return Any(), "", false
}
