package milcheck

import (
	"fmt"
	"sort"
	"strings"

	"cobra/internal/mil"
	"cobra/internal/monet"
)

// Options configures a check run.
type Options struct {
	// Globals pre-binds variables the session environment provides
	// (e.g. BATs published via Interp.SetGlobal) with their types; use
	// Any() when the type is unknown.
	Globals map[string]VType
	// Funcs adds callable signatures beyond the stdlib, e.g. extension
	// operations registered by MEL-style modules. Keys are
	// case-insensitive.
	Funcs map[string]Sig
	// KnownFuncs names callables that exist but have no signature;
	// calls to them accept any arguments and return Any.
	KnownFuncs []string
	// ResolveBAT resolves bat("name") calls with literal names against
	// a store schema, giving plans over registered BATs precise column
	// types.
	ResolveBAT func(name string) (head, tail monet.Type, ok bool)
	// LenientCalls downgrades calls to unknown functions from errors
	// to warnings, for sessions that register builtins dynamically.
	LenientCalls bool
}

// Result is the outcome of analyzing a program.
type Result struct {
	Diags []Diagnostic
	// Vars holds the final inferred types of top-level variables.
	Vars map[string]VType
	// Value is the type of the program's result: a top-level RETURN,
	// or the last top-level expression statement.
	Value VType
	// Registered maps BAT names register()ed with literal names to
	// their inferred types.
	Registered map[string]VType
}

// Analyze runs the full static analysis over a parsed program.
func Analyze(prog *mil.Program, opts *Options) *Result {
	if opts == nil {
		opts = &Options{}
	}
	c := newChecker(opts)
	c.collectProcs(prog.Stmts)
	c.resolveProcRets()
	res := &Result{Value: None()}

	terminated := false
	for i, s := range prog.Stmts {
		if terminated {
			l, col := s.Pos()
			c.warnf(l, col, "unreachable", "unreachable statement")
			terminated = true // report once, keep checking
			c.silent = true
		}
		t := c.exec(s)
		if !c.silent {
			if t.terminates {
				terminated = true
			}
			if _, ok := s.(*mil.ExprStmt); ok && i == len(prog.Stmts)-1 {
				res.Value = t.val
			}
		}
	}
	c.silent = false
	if len(c.topRets) > 0 {
		res.Value = c.topRets[0]
		for _, t := range c.topRets[1:] {
			res.Value = merge(res.Value, t)
		}
	}
	c.popScope()
	res.Vars = map[string]VType{}
	for name, vi := range c.rootVars {
		res.Vars[name] = vi.typ
	}
	res.Registered = c.registered
	sortDiags(c.diags)
	res.Diags = c.diags
	return res
}

// Check analyzes a parsed program and returns its diagnostics.
func Check(prog *mil.Program, opts *Options) []Diagnostic {
	return Analyze(prog, opts).Diags
}

// CheckSource parses and analyzes MIL source. Parse errors (which
// carry their own line/col) are returned as err; semantic findings
// come back as diagnostics.
func CheckSource(src string, opts *Options) ([]Diagnostic, error) {
	prog, err := mil.Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(prog, opts), nil
}

// varInfo tracks one declared variable.
type varInfo struct {
	name  string
	typ   VType
	line  int
	col   int
	used  bool
	param bool
}

// scope is one lexical scope level.
type scope struct {
	parent *scope
	depth  int
	vars   map[string]*varInfo
	order  []string
}

// accessKind records how a PARALLEL branch touches a shared variable.
type accessKind uint8

const (
	accRead accessKind = 1 << iota
	accAssign
	accMutate
)

// branchAccess is the access profile of one branch for one variable.
type branchAccess struct {
	mask accessKind
	// first position per kind, for diagnostics
	readL, readC     int
	assignL, assignC int
	mutateL, mutateC int
}

// parCtx tracks shared-variable accesses across the branches of one
// PARALLEL block.
type parCtx struct {
	line, col int
	depth     int // depth of the scope enclosing the block
	branch    int // current branch index
	acc       map[string]map[int]*branchAccess
	order     []string
}

// procInfo is a collected PROC declaration plus its resolved return
// type.
type procInfo struct {
	decl  *mil.ProcDecl
	ret   VType
	state uint8 // 0 unresolved, 1 resolving, 2 resolved
}

type checker struct {
	opts     *Options
	funcs    map[string]Sig
	known    map[string]bool
	procs    map[string]*procInfo
	diags    []Diagnostic
	scope    *scope
	rootVars map[string]*varInfo
	parStack []*parCtx
	// registered maps literal names register()ed so far to the BAT
	// type, so later bat("name") calls in the same plan resolve.
	registered map[string]VType
	// retTypes collects RETURN types of the proc body being checked;
	// nil at top level.
	retTypes *[]VType
	topRets  []VType
	silent   bool
}

func newChecker(opts *Options) *checker {
	c := &checker{
		opts:       opts,
		funcs:      stdlibSigs(),
		known:      map[string]bool{},
		procs:      map[string]*procInfo{},
		registered: map[string]VType{},
	}
	for name, sig := range opts.Funcs {
		c.funcs[strings.ToLower(name)] = sig
	}
	for _, name := range opts.KnownFuncs {
		c.known[strings.ToLower(name)] = true
	}
	c.scope = &scope{vars: map[string]*varInfo{}}
	c.rootVars = c.scope.vars
	// The interpreter pre-binds atomic type names as string globals so
	// the constructor syntax new(void,int) evaluates.
	for _, tn := range []string{"void", "oid", "int", "lng", "dbl", "flt", "str", "bit", "bool"} {
		c.scope.vars[tn] = &varInfo{name: tn, typ: AtomOf(monet.StrT), used: true}
	}
	for name, t := range opts.Globals {
		c.scope.vars[name] = &varInfo{name: name, typ: t, used: true}
	}
	return c
}

func (c *checker) report(line, col int, sev Severity, code, format string, args ...any) {
	if c.silent {
		return
	}
	c.diags = append(c.diags, Diagnostic{Line: line, Col: col, Severity: sev,
		Code: code, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) errorf(line, col int, code, format string, args ...any) {
	c.report(line, col, Error, code, format, args...)
}

func (c *checker) warnf(line, col int, code, format string, args ...any) {
	c.report(line, col, Warning, code, format, args...)
}

func (c *checker) pushScope() {
	c.scope = &scope{parent: c.scope, depth: c.scope.depth + 1, vars: map[string]*varInfo{}}
}

// popScope leaves the current scope, reporting variables that were
// declared but never read. Underscore-prefixed names opt out.
func (c *checker) popScope() {
	s := c.scope
	for _, name := range s.order {
		vi := s.vars[name]
		if vi == nil || vi.used || vi.param || strings.HasPrefix(vi.name, "_") {
			continue
		}
		c.warnf(vi.line, vi.col, "unused-var", "variable %q is declared but never read", vi.name)
	}
	c.scope = s.parent
}

// define declares a variable in the current scope.
func (c *checker) define(name string, t VType, line, col int, param bool) {
	if prev, ok := c.scope.vars[name]; ok && !prev.param {
		c.warnf(line, col, "redeclared", "variable %q redeclared in the same scope (first declared at %d:%d)",
			name, prev.line, prev.col)
	}
	c.scope.vars[name] = &varInfo{name: name, typ: t, line: line, col: col, param: param}
	c.scope.order = append(c.scope.order, name)
}

// resolve finds a variable walking outward; it returns the holding
// scope's depth for PARALLEL sharing analysis.
func (c *checker) resolve(name string) (*varInfo, int, bool) {
	for s := c.scope; s != nil; s = s.parent {
		if vi, ok := s.vars[name]; ok {
			return vi, s.depth, true
		}
	}
	return nil, 0, false
}

// recordAccess notes an access to a variable held at scopeDepth for
// every PARALLEL block whose branches can share it.
func (c *checker) recordAccess(name string, scopeDepth int, kind accessKind, line, col int) {
	for _, ctx := range c.parStack {
		if scopeDepth > ctx.depth {
			continue // branch-local for this block
		}
		byBranch := ctx.acc[name]
		if byBranch == nil {
			byBranch = map[int]*branchAccess{}
			ctx.acc[name] = byBranch
			ctx.order = append(ctx.order, name)
		}
		ba := byBranch[ctx.branch]
		if ba == nil {
			ba = &branchAccess{}
			byBranch[ctx.branch] = ba
		}
		if ba.mask&kind == 0 {
			ba.mask |= kind
			switch kind {
			case accRead:
				ba.readL, ba.readC = line, col
			case accAssign:
				ba.assignL, ba.assignC = line, col
			case accMutate:
				ba.mutateL, ba.mutateC = line, col
			}
		}
	}
}

// collectProcs gathers every PROC declaration in the statement tree so
// calls resolve regardless of declaration order.
func (c *checker) collectProcs(stmts []mil.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *mil.ProcDecl:
			name := strings.ToLower(st.Name)
			if prev, ok := c.procs[name]; ok {
				l, col := st.Pos()
				pl, pc := prev.decl.Pos()
				c.warnf(l, col, "proc-redefined", "PROC %q redefined (first declared at %d:%d)", st.Name, pl, pc)
			}
			c.procs[name] = &procInfo{decl: st, ret: specType(st.Ret)}
			c.collectProcs(st.Body.Stmts)
		case *mil.Block:
			c.collectProcs(st.Stmts)
		case *mil.ParallelBlock:
			c.collectProcs(st.Stmts)
		case *mil.If:
			c.collectProcs(st.Then.Stmts)
			if st.Else != nil {
				c.collectProcs(st.Else.Stmts)
			}
		case *mil.While:
			c.collectProcs(st.Body.Stmts)
		}
	}
}

// resolveProcRets infers return types for PROCs without annotations by
// silently checking their bodies; recursion falls back to Any.
func (c *checker) resolveProcRets() {
	for name := range c.procs {
		c.resolveProcRet(name)
	}
}

func (c *checker) resolveProcRet(name string) VType {
	p, ok := c.procs[name]
	if !ok {
		return Any()
	}
	switch p.state {
	case 1: // recursive: cut the cycle
		return p.ret
	case 2:
		return p.ret
	}
	p.state = 1
	if p.decl.Ret == nil {
		wasSilent := c.silent
		c.silent = true
		rets, _ := c.checkProcBody(p.decl)
		c.silent = wasSilent
		if len(rets) > 0 {
			t := rets[0]
			for _, r := range rets[1:] {
				t = merge(t, r)
			}
			p.ret = t
		}
	}
	p.state = 2
	return p.ret
}

// checkProcBody checks a PROC body in a fresh scope seeded with its
// parameters, returning the RETURN types seen and whether every path
// returns.
func (c *checker) checkProcBody(decl *mil.ProcDecl) ([]VType, bool) {
	outerScope := c.scope
	outerRets := c.retTypes
	outerPar := c.parStack
	c.scope = &scope{parent: nil, depth: 0, vars: map[string]*varInfo{}}
	// Procs see globals (the interpreter's callProc scope delegates to
	// globals), so re-root on the root scope.
	root := outerScope
	for root.parent != nil {
		root = root.parent
	}
	c.scope.parent = root
	c.scope.depth = root.depth + 1
	c.parStack = nil

	seen := map[string]bool{}
	for _, p := range decl.Params {
		if seen[p.Name] {
			c.errorf(p.Line, p.Col, "dup-param", "duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		t := AtomOf(p.Atom)
		if p.IsBAT {
			t = BATOf(p.Head, p.Tail)
		}
		c.define(p.Name, t, p.Line, p.Col, true)
	}

	var rets []VType
	c.retTypes = &rets
	terminated := false
	reported := false
	for _, s := range decl.Body.Stmts {
		if terminated && !reported {
			l, col := s.Pos()
			c.warnf(l, col, "unreachable", "unreachable statement")
			reported = true
		}
		if c.exec(s).terminates {
			terminated = true
		}
	}
	c.popScope()
	c.scope = outerScope
	c.retTypes = outerRets
	c.parStack = outerPar
	return rets, terminated
}

// flow is the result of checking one statement: whether control flow
// terminates, and for expression statements the expression's type.
type flow struct {
	terminates bool
	val        VType
}

func (c *checker) exec(s mil.Stmt) flow {
	switch st := s.(type) {
	case *mil.VarDecl:
		t := c.eval(st.Init)
		l, col := st.Pos()
		if t.Kind == NoneK {
			c.errorf(l, col, "no-value", "initializer of %q produces no value", st.Name)
			t = Any()
		}
		if st.Type != nil {
			declared := specType(st.Type)
			if !assignable(declared, t) {
				c.errorf(l, col, "type-mismatch", "cannot initialize %s %q with %s", declared, st.Name, t)
			}
			t = declared
		}
		c.define(st.Name, t, l, col, false)
		return flow{}

	case *mil.Assign:
		t := c.eval(st.Expr)
		l, col := st.Pos()
		if t.Kind == NoneK {
			c.errorf(l, col, "no-value", "assignment to %q from an expression that produces no value", st.Name)
			t = Any()
		}
		vi, depth, ok := c.resolve(st.Name)
		if !ok {
			c.errorf(l, col, "unbound-var", "assignment to undeclared variable %q (declare it with VAR)", st.Name)
			c.define(st.Name, t, l, col, false)
			return flow{}
		}
		if !assignable(vi.typ, t) {
			c.errorf(l, col, "type-mismatch", "cannot assign %s to %q of type %s", t, st.Name, vi.typ)
		} else if vi.typ.Kind != AnyK {
			vi.typ = merge(vi.typ, t)
		} else {
			vi.typ = t
		}
		c.recordAccess(st.Name, depth, accAssign, l, col)
		return flow{}

	case *mil.ExprStmt:
		return flow{val: c.eval(st.Expr)}

	case *mil.Return:
		t := c.eval(st.Expr)
		l, col := st.Pos()
		if len(c.parStack) > 0 {
			c.warnf(l, col, "return-in-parallel", "RETURN inside a PARALLEL block returns from a nondeterministic branch")
		}
		if c.retTypes != nil {
			*c.retTypes = append(*c.retTypes, t)
		} else {
			c.topRets = append(c.topRets, t)
		}
		return flow{terminates: true}

	case *mil.If:
		c.checkCond(st.Cond)
		c.pushScope()
		thenTerm := c.execStmts(st.Then.Stmts)
		c.popScope()
		elseTerm := false
		if st.Else != nil {
			c.pushScope()
			elseTerm = c.execStmts(st.Else.Stmts)
			c.popScope()
		}
		return flow{terminates: thenTerm && elseTerm}

	case *mil.While:
		c.checkCond(st.Cond)
		c.pushScope()
		c.execStmts(st.Body.Stmts)
		c.popScope()
		return flow{}

	case *mil.Block:
		c.pushScope()
		term := c.execStmts(st.Stmts)
		c.popScope()
		return flow{terminates: term}

	case *mil.ParallelBlock:
		l, col := st.Pos()
		ctx := &parCtx{line: l, col: col, depth: c.scope.depth, acc: map[string]map[int]*branchAccess{}}
		c.parStack = append(c.parStack, ctx)
		for i, branch := range st.Stmts {
			ctx.branch = i
			c.pushScope()
			c.exec(branch)
			c.popScope()
		}
		c.parStack = c.parStack[:len(c.parStack)-1]
		c.reportParallelConflicts(ctx)
		return flow{}

	case *mil.ProcDecl:
		rets, allReturn := c.checkProcBody(st)
		l, col := st.Pos()
		if st.Ret != nil {
			declared := specType(st.Ret)
			for _, r := range rets {
				if !assignable(declared, r) {
					c.errorf(l, col, "type-mismatch", "PROC %q declared to return %s but returns %s", st.Name, declared, r)
				}
			}
			if !allReturn {
				c.warnf(l, col, "missing-return", "PROC %q declares return type %s but not every path RETURNs", st.Name, declared)
			}
		}
		if len(c.parStack) > 0 {
			c.warnf(l, col, "proc-in-parallel", "PROC declaration inside a PARALLEL block registers globally from a branch")
		}
		return flow{}
	}
	return flow{}
}

// execStmts checks a statement list, reporting the first unreachable
// statement after a terminating one.
func (c *checker) execStmts(stmts []mil.Stmt) (terminates bool) {
	reported := false
	for _, s := range stmts {
		if terminates && !reported {
			l, col := s.Pos()
			c.warnf(l, col, "unreachable", "unreachable statement")
			reported = true
		}
		if c.exec(s).terminates {
			terminates = true
		}
	}
	return terminates
}

// checkCond checks an IF/WHILE condition expression.
func (c *checker) checkCond(e mil.Expr) {
	t := c.eval(e)
	l, col := e.Pos()
	if t.Kind == NoneK {
		c.errorf(l, col, "no-value", "condition produces no value")
	}
	if lit, ok := e.(*mil.Lit); ok && lit.Val.Typ == monet.BoolT {
		c.warnf(l, col, "const-cond", "condition is constant %v", lit.Val.Bool())
	}
}

// reportParallelConflicts flags unsafe sharing across the branches of
// one PARALLEL block: assignments to the same outer variable from two
// branches (write-write), an assignment in one branch with any use in
// another (read-write), and in-place mutation racing a read.
func (c *checker) reportParallelConflicts(ctx *parCtx) {
	for _, name := range ctx.order {
		byBranch := ctx.acc[name]
		branches := make([]int, 0, len(byBranch))
		for b := range byBranch {
			branches = append(branches, b)
		}
		sort.Ints(branches)
		var assigns, mutates, reads []*branchAccess
		for _, b := range branches {
			ba := byBranch[b]
			if ba.mask&accAssign != 0 {
				assigns = append(assigns, ba)
			}
			if ba.mask&accMutate != 0 {
				mutates = append(mutates, ba)
			}
			if ba.mask&accRead != 0 && ba.mask&(accAssign|accMutate) == 0 {
				reads = append(reads, ba)
			}
		}
		switch {
		case len(assigns) >= 2:
			c.errorf(assigns[1].assignL, assigns[1].assignC, "parallel-write-write",
				"variable %q assigned in %d PARALLEL branches (also at %d:%d); last write wins nondeterministically",
				name, len(assigns), assigns[0].assignL, assigns[0].assignC)
		case len(assigns) == 1 && (len(reads) > 0 || len(mutates) > 0):
			other := ctx.line
			otherC := ctx.col
			if len(reads) > 0 {
				other, otherC = reads[0].readL, reads[0].readC
			} else {
				other, otherC = mutates[0].mutateL, mutates[0].mutateC
			}
			c.errorf(assigns[0].assignL, assigns[0].assignC, "parallel-read-write",
				"variable %q assigned in one PARALLEL branch and used in another (at %d:%d)",
				name, other, otherC)
		case len(mutates) >= 1 && len(reads) > 0:
			c.warnf(reads[0].readL, reads[0].readC, "parallel-mutate-read",
				"variable %q read here while another PARALLEL branch mutates it (at %d:%d)",
				name, mutates[0].mutateL, mutates[0].mutateC)
		}
	}
}

func (c *checker) eval(e mil.Expr) VType {
	switch ex := e.(type) {
	case *mil.Lit:
		return AtomOf(ex.Val.Typ)

	case *mil.Ident:
		vi, depth, ok := c.resolve(ex.Name)
		if !ok {
			l, col := ex.Pos()
			c.errorf(l, col, "unbound-var", "undefined variable %q", ex.Name)
			return Any()
		}
		vi.used = true
		l, col := ex.Pos()
		c.recordAccess(ex.Name, depth, accRead, l, col)
		return vi.typ

	case *mil.Unary:
		t := c.eval(ex.X)
		l, col := ex.Pos()
		if t.Kind == BATK || t.Kind == NoneK ||
			(t.Kind == AtomK && t.Atom != AnyAtom && t.Atom != monet.IntT && t.Atom != monet.FloatT) {
			c.errorf(l, col, "type-mismatch", "cannot negate %s", t)
			return AnyAtomType()
		}
		return t

	case *mil.Binary:
		return c.evalBinary(ex)

	case *mil.Call:
		return c.evalCall(ex)

	case *mil.MethodCall:
		return c.evalMethod(ex)
	}
	return Any()
}

func (c *checker) evalBinary(ex *mil.Binary) VType {
	l := c.eval(ex.L)
	r := c.eval(ex.R)
	line, col := ex.Pos()
	if l.Kind == BATK || r.Kind == BATK {
		c.errorf(line, col, "type-mismatch", "operator %q over BAT operands", ex.Op)
		return AnyAtomType()
	}
	if l.Kind == NoneK || r.Kind == NoneK {
		c.errorf(line, col, "no-value", "operand of %q produces no value", ex.Op)
		return AnyAtomType()
	}
	known := l.Kind == AtomK && l.Atom != AnyAtom && r.Kind == AtomK && r.Atom != AnyAtom
	switch ex.Op {
	case "=", "!=", "<", ">", "<=", ">=":
		if known && l.Atom != r.Atom && !(numericAtom(l.Atom) && numericAtom(r.Atom)) {
			c.errorf(line, col, "type-mismatch", "comparing %s with %s", l, r)
		}
		return AtomOf(monet.BoolT)
	case "+":
		if known && l.Atom == monet.StrT && r.Atom == monet.StrT {
			return AtomOf(monet.StrT)
		}
		fallthrough
	case "-", "*", "/", "%":
		if !l.IsNumeric() || !r.IsNumeric() {
			c.errorf(line, col, "type-mismatch", "operator %q over %s and %s", ex.Op, l, r)
			return AnyAtomType()
		}
		if known && l.Atom == monet.IntT && r.Atom == monet.IntT {
			return AtomOf(monet.IntT)
		}
		if ex.Op == "%" {
			if known {
				c.errorf(line, col, "type-mismatch", "modulo over non-integer operands %s and %s", l, r)
			}
			return AnyAtomType()
		}
		if !known {
			return AnyAtomType()
		}
		return AtomOf(monet.FloatT)
	}
	return AnyAtomType()
}

// litStr returns the string literal value of an expression, if it is
// one.
func litStr(e mil.Expr) (string, bool) {
	lit, ok := e.(*mil.Lit)
	if !ok || lit.Val.Typ != monet.StrT {
		return "", false
	}
	return lit.Val.Str(), true
}

// typeNameArg resolves a `new` type argument: a bare type-name
// identifier or a string literal.
func typeNameArg(e mil.Expr) (monet.Type, bool) {
	var name string
	switch a := e.(type) {
	case *mil.Ident:
		name = a.Name
	case *mil.Lit:
		if a.Val.Typ != monet.StrT {
			return 0, false
		}
		name = a.Val.Str()
	default:
		return 0, false
	}
	t, err := mil.ParseTypeName(name)
	if err != nil {
		return 0, false
	}
	return t, true
}

func (c *checker) evalCall(ex *mil.Call) VType {
	line, col := ex.Pos()
	name := strings.ToLower(ex.Name)

	// The constructor's type arguments are identifiers, not values;
	// resolve them by name before ordinary evaluation.
	if name == "new" {
		if len(ex.Args) != 2 {
			c.errorf(line, col, "bad-call", "new expects 2 type arguments, got %d", len(ex.Args))
			return AnyBAT()
		}
		h, okH := typeNameArg(ex.Args[0])
		t, okT := typeNameArg(ex.Args[1])
		if okH && okT {
			return BATOf(h, t)
		}
		// Not literal type names: check them as ordinary str values.
		for i, a := range ex.Args {
			at := c.eval(a)
			if msg := wantStr(at); msg != "" {
				al, ac := a.Pos()
				c.errorf(al, ac, "bad-call", "new argument %d: %s", i+1, msg)
			}
		}
		return AnyBAT()
	}

	args := make([]VType, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.eval(a)
	}

	// Index builders mutate shared per-BAT index state: they are
	// serialized on the store's index lock, but the piece layout the
	// branches observe depends on scheduling, so flag them inside
	// PARALLEL blocks.
	if (name == "crack" || name == "zonemap") && len(c.parStack) > 0 {
		c.warnf(line, col, "index-in-parallel",
			"%s() rebuilds shared index state; inside a PARALLEL block the layout branches observe is nondeterministic", name)
	}

	switch name {
	case "print":
		return None()
	case "bat":
		if len(args) != 1 {
			c.errorf(line, col, "bad-call", "bat expects 1 argument, got %d", len(args))
			return AnyBAT()
		}
		if msg := wantStr(args[0]); msg != "" {
			c.errorf(line, col, "bad-call", "bat argument 1: %s", msg)
			return AnyBAT()
		}
		if lit, ok := litStr(ex.Args[0]); ok {
			if t, ok := c.registered[lit]; ok {
				return t
			}
			if c.opts.ResolveBAT != nil {
				if h, t, ok := c.opts.ResolveBAT(lit); ok {
					return BATOf(h, t)
				}
				c.warnf(line, col, "unknown-bat", "BAT %q is not registered in the store", lit)
			}
		}
		return AnyBAT()
	case "register":
		if len(args) != 2 {
			c.errorf(line, col, "bad-call", "register expects 2 arguments, got %d", len(args))
			return AnyBAT()
		}
		if msg := wantStr(args[0]); msg != "" {
			c.errorf(line, col, "bad-call", "register argument 1: %s", msg)
		}
		if msg := wantBAT(args[1]); msg != "" {
			c.errorf(line, col, "bad-call", "register argument 2: %s", msg)
		}
		if lit, ok := litStr(ex.Args[0]); ok && args[1].Kind == BATK {
			c.registered[lit] = args[1]
		}
		return args[1]
	}

	// User PROCs shadow builtins, matching the interpreter's dispatch.
	if p, ok := c.procs[name]; ok {
		c.checkProcCall(ex, p, args)
		return c.resolveProcRet(name)
	}
	if sig, ok := c.funcs[name]; ok {
		res, problem := sig(args)
		if problem != "" {
			c.errorf(line, col, "bad-call", "%s", problem)
		}
		return res
	}
	if c.known[name] {
		return Any()
	}
	sev := Error
	if c.opts.LenientCalls {
		sev = Warning
	}
	c.report(line, col, sev, "unknown-func", "call to unknown function %q", ex.Name)
	return Any()
}

// checkProcCall verifies a call against a PROC's declared parameters.
func (c *checker) checkProcCall(ex *mil.Call, p *procInfo, args []VType) {
	line, col := ex.Pos()
	params := p.decl.Params
	if len(args) != len(params) {
		c.errorf(line, col, "bad-call", "PROC %q expects %d argument(s), got %d", p.decl.Name, len(params), len(args))
		return
	}
	for i, prm := range params {
		a := args[i]
		if prm.IsBAT {
			if !a.IsBAT() {
				c.errorf(line, col, "bad-call", "PROC %q parameter %q expects a BAT, got %s", p.decl.Name, prm.Name, a)
				continue
			}
			want := BATOf(prm.Head, prm.Tail)
			if a.Kind == BATK && (!atomsUnify(a.Head, prm.Head) || !atomsUnify(a.Tail, prm.Tail)) {
				c.errorf(line, col, "type-mismatch", "PROC %q parameter %q expects %s, got %s", p.decl.Name, prm.Name, want, a)
			}
			continue
		}
		if !a.IsAtom() {
			c.errorf(line, col, "bad-call", "PROC %q parameter %q expects an atom, got %s", p.decl.Name, prm.Name, a)
			continue
		}
		if a.Kind == AtomK && !atomsUnify(a.Atom, prm.Atom) && !(numericAtom(a.Atom) && numericAtom(prm.Atom)) {
			c.errorf(line, col, "type-mismatch", "PROC %q parameter %q expects %s, got %s", p.decl.Name, prm.Name, AtomOf(prm.Atom), a)
		}
	}
}

// baseIdent unwraps method-call chains to the underlying variable, if
// any: (x.reverse).insert mutates x's columns.
func baseIdent(e mil.Expr) *mil.Ident {
	for {
		switch x := e.(type) {
		case *mil.Ident:
			return x
		case *mil.MethodCall:
			e = x.Recv
		default:
			return nil
		}
	}
}

func (c *checker) evalMethod(ex *mil.MethodCall) VType {
	recv := c.eval(ex.Recv)
	args := make([]VType, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.eval(a)
	}
	line, col := ex.Pos()
	name := strings.ToLower(ex.Name)
	if recv.Kind == NoneK || recv.Kind == AtomK {
		c.errorf(line, col, "type-mismatch", "method %q on non-BAT value of type %s", ex.Name, recv)
		return Any()
	}
	res, problem, knownMethod := methodSig(name, recv, args)
	if !knownMethod {
		c.errorf(line, col, "unknown-method", "unknown BAT method %q", ex.Name)
		return Any()
	}
	if problem != "" {
		c.errorf(line, col, "bad-call", "%s", problem)
	}
	// In-place mutation of a shared receiver matters to the PARALLEL
	// safety pass; the interpreter serializes it, so it is not itself
	// a conflict.
	if name == "insert" {
		if id := baseIdent(ex.Recv); id != nil {
			if _, depth, ok := c.resolve(id.Name); ok {
				c.recordAccess(id.Name, depth, accMutate, line, col)
			}
		}
	}
	// Higher-order methods take a PROC name literal; verify it.
	if (name == "map" || name == "filterproc") && len(ex.Args) == 1 {
		if procName, ok := litStr(ex.Args[0]); ok {
			p, exists := c.procs[strings.ToLower(procName)]
			if !exists {
				c.errorf(line, col, "unbound-var", "%s references unknown PROC %q", name, procName)
			} else {
				if len(p.decl.Params) != 2 || p.decl.Params[0].IsBAT || p.decl.Params[1].IsBAT {
					c.errorf(line, col, "bad-call", "%s PROC %q must take (atom, atom) parameters", name, procName)
				}
				if name == "map" {
					ret := c.resolveProcRet(strings.ToLower(procName))
					if ret.Kind == BATK {
						c.errorf(line, col, "bad-call", "map PROC %q must return an atom, not a BAT", procName)
					} else if ret.Kind == AtomK && res.Kind == BATK {
						res = BATOf(res.Head, ret.Atom)
					}
				}
			}
		}
	}
	return res
}
