package milcheck

import (
	"fmt"

	"cobra/internal/mil"
	"cobra/internal/monet"
)

// Kind classifies an inferred MIL value type.
type Kind uint8

// Value kinds: AnyK is the unknown top element, AtomK an atomic kernel
// value, BATK a two-column BAT, NoneK the absence of a value (the
// result of statements like print that yield nothing usable).
const (
	AnyK Kind = iota
	AtomK
	BATK
	NoneK
)

// AnyAtom marks an atomic type that could not be inferred; it unifies
// with every atomic type.
const AnyAtom = monet.Type(0xFF)

// VType is the inferred type of a MIL expression: a kind plus, for
// atoms, the atomic type and, for BATs, the head/tail column types.
// Column types may be AnyAtom when unknown.
type VType struct {
	Kind Kind
	Atom monet.Type
	Head monet.Type
	Tail monet.Type
}

// Any returns the unknown type.
func Any() VType { return VType{Kind: AnyK} }

// AtomOf returns the type of an atomic value.
func AtomOf(t monet.Type) VType { return VType{Kind: AtomK, Atom: t} }

// AnyAtomType returns an atom of unknown atomic type.
func AnyAtomType() VType { return VType{Kind: AtomK, Atom: AnyAtom} }

// BATOf returns the type of a BAT with the given column types.
func BATOf(h, t monet.Type) VType { return VType{Kind: BATK, Head: h, Tail: t} }

// AnyBAT returns a BAT type with unknown column types.
func AnyBAT() VType { return BATOf(AnyAtom, AnyAtom) }

// None returns the no-value type.
func None() VType { return VType{Kind: NoneK} }

// String renders the type MIL-style: "int", "BAT[void,dbl]", "any",
// "none".
func (v VType) String() string {
	switch v.Kind {
	case AtomK:
		return atomName(v.Atom)
	case BATK:
		return fmt.Sprintf("BAT[%s,%s]", atomName(v.Head), atomName(v.Tail))
	case NoneK:
		return "none"
	default:
		return "any"
	}
}

func atomName(t monet.Type) string {
	if t == AnyAtom {
		return "any"
	}
	return t.String()
}

// IsBAT reports whether the type is (or may be) a BAT: AnyK counts.
func (v VType) IsBAT() bool { return v.Kind == BATK || v.Kind == AnyK }

// IsAtom reports whether the type is (or may be) an atom.
func (v VType) IsAtom() bool { return v.Kind == AtomK || v.Kind == AnyK }

// numericAtom reports whether t behaves numerically in the kernel
// (ints, floats, OIDs and bits all coerce through Float/Int).
func numericAtom(t monet.Type) bool {
	return t == monet.IntT || t == monet.FloatT || t == monet.OIDT || t == monet.BoolT || t == AnyAtom
}

// IsNumeric reports whether the type is (or may be) a numeric atom.
func (v VType) IsNumeric() bool {
	return v.Kind == AnyK || (v.Kind == AtomK && numericAtom(v.Atom))
}

// materialAtom mirrors the kernel's materialType: void columns
// materialize as dense OIDs when their values are observed.
func materialAtom(t monet.Type) monet.Type {
	if t == monet.Void {
		return monet.OIDT
	}
	return t
}

// atomsUnify reports whether two atomic types can be the same type:
// either unknown, or equal after void materialization.
func atomsUnify(a, b monet.Type) bool {
	return a == AnyAtom || b == AnyAtom || materialAtom(a) == materialAtom(b)
}

// mergeAtom joins two atomic types, widening to AnyAtom on conflict.
func mergeAtom(a, b monet.Type) monet.Type {
	if a == b {
		return a
	}
	if a == AnyAtom || b == AnyAtom {
		return AnyAtom
	}
	if materialAtom(a) == materialAtom(b) {
		return materialAtom(a)
	}
	return AnyAtom
}

// merge joins two types at a control-flow join point, widening where
// the branches disagree.
func merge(a, b VType) VType {
	if a == b {
		return a
	}
	if a.Kind == AnyK || b.Kind == AnyK {
		return Any()
	}
	if a.Kind != b.Kind {
		return Any()
	}
	switch a.Kind {
	case AtomK:
		return AtomOf(mergeAtom(a.Atom, b.Atom))
	case BATK:
		return BATOf(mergeAtom(a.Head, b.Head), mergeAtom(a.Tail, b.Tail))
	}
	return a
}

// assignable reports whether a value of type v may be assigned to a
// variable currently holding cur without changing its nature: kinds
// must agree, atom reassignments may move between numeric types, and
// BAT columns may be retyped (plans rebind BAT variables freely).
func assignable(cur, v VType) bool {
	if cur.Kind == AnyK || v.Kind == AnyK || cur.Kind == NoneK {
		return true
	}
	if cur.Kind != v.Kind {
		return false
	}
	if cur.Kind == AtomK {
		if atomsUnify(cur.Atom, v.Atom) {
			return true
		}
		return numericAtom(cur.Atom) && numericAtom(v.Atom)
	}
	return true
}

// specType converts a parsed annotation into a VType.
func specType(s *mil.TypeSpec) VType {
	if s == nil {
		return Any()
	}
	if s.IsBAT {
		return BATOf(s.Head, s.Tail)
	}
	return AtomOf(s.Atom)
}
