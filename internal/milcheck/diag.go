// Package milcheck is the static verification layer over MIL plans:
// a semantic analyzer that runs before the interpreter, the way Monet
// front-loads plan validation before kernel dispatch. It performs
// symbol resolution (use-before-def, unused and redeclared variables),
// BAT head/tail type inference through every stdlib operator and
// kernel method, dead-code detection, and a PARALLEL-block safety pass
// that flags write-write and read-write conflicts on variables shared
// across branches (the paper's Fig. 4 threadcnt pattern).
//
// The checker is wired in at three layers of the stack: moa plan
// emission is proven type-correct in tests, the COQL engine and the
// server validate plans at EXPLAIN / CHECK time, and cmd/milcheck
// lints .mil files from the command line.
package milcheck

import (
	"fmt"
	"sort"
)

// Severity classifies a diagnostic.
type Severity int

// Severity levels: errors make a plan invalid; warnings flag suspect
// but executable constructs.
const (
	Warning Severity = iota
	Error
)

// String renders the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Line     int
	Col      int
	Severity Severity
	// Code is a stable machine-readable identifier, e.g. "unbound-var".
	Code string
	Msg  string
}

// String renders the diagnostic as "line:col: severity: msg [code]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s: %s [%s]", d.Line, d.Col, d.Severity, d.Msg, d.Code)
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// sortDiags orders diagnostics by position, errors before warnings at
// the same position.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Severity > b.Severity
	})
}
