package keyword

import (
	"math/rand"
	"testing"
)

func TestPhoneSequence(t *testing.T) {
	ph := PhoneSequence("Pit-Stop 1")
	if string(ph) != "PITSTOP" {
		t.Fatalf("phones = %q", ph)
	}
	if len(PhoneSequence("!!")) != 0 {
		t.Fatal("non-letters should drop")
	}
}

func TestNewSpotterValidation(t *testing.T) {
	if _, err := NewSpotter(nil); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := NewSpotter([]string{"A"}); err == nil {
		t.Fatal("1-phone keyword accepted")
	}
	s, err := NewSpotter([]string{"crash", "CRASH", " crash "})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Keywords()) != 1 {
		t.Fatalf("keywords = %v", s.Keywords())
	}
}

// cleanStream renders words into a perfect phone stream.
func cleanStream(words []SpokenWord) []Phone {
	var out []Phone
	for _, w := range words {
		t := w.Time
		for _, p := range PhoneSequence(w.Word) {
			out = append(out, Phone{Symbol: p, Time: t, Score: 1})
			t += 1 / PhoneRate
		}
	}
	return out
}

func TestSpotCleanStream(t *testing.T) {
	s, err := NewSpotter([]string{"CRASH", "OVERTAKE"})
	if err != nil {
		t.Fatal(err)
	}
	stream := cleanStream([]SpokenWord{
		{Word: "AND", Time: 0},
		{Word: "CRASH", Time: 1},
		{Word: "THERE", Time: 2},
		{Word: "OVERTAKE", Time: 3},
	})
	hits := s.Normalize(s.Spot(stream))
	foundCrash, foundOvertake := false, false
	for _, h := range hits {
		switch h.Word {
		case "CRASH":
			foundCrash = true
			if h.Start < 0.9 || h.Start > 1.1 {
				t.Fatalf("CRASH start = %v", h.Start)
			}
			if h.Score < 0.8 {
				t.Fatalf("CRASH score = %v", h.Score)
			}
		case "OVERTAKE":
			foundOvertake = true
		}
	}
	if !foundCrash || !foundOvertake {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSpotRejectsAbsentKeyword(t *testing.T) {
	s, _ := NewSpotter([]string{"MONTOYA"})
	stream := cleanStream([]SpokenWord{
		{Word: "THE", Time: 0},
		{Word: "WEATHER", Time: 1},
		{Word: "TODAY", Time: 2},
	})
	if hits := s.Spot(stream); len(hits) != 0 {
		t.Fatalf("false hits = %v", hits)
	}
}

func TestSpotNoisyStream(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s, _ := NewSpotter([]string{"ACCIDENT", "FANTASTIC"})
	words := []SpokenWord{
		{Word: "WHAT", Time: 0},
		{Word: "AN", Time: 0.5},
		{Word: "ACCIDENT", Time: 1},
		{Word: "OUT", Time: 2},
		{Word: "THERE", Time: 2.5},
	}
	found := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		stream := SimulateStream(words, TVNews, rng)
		hits := s.Spot(stream)
		for _, h := range hits {
			if h.Word == "ACCIDENT" && h.Start > 0.5 && h.Start < 1.5 {
				found++
				break
			}
		}
	}
	if found < trials*3/4 {
		t.Fatalf("ACCIDENT found in only %d/%d noisy trials", found, trials)
	}
}

// TestAcousticModelComparison reproduces the paper's finding: the TV
// news model clearly outperforms the clean-speech model on broadcast
// commentary.
func TestAcousticModelComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	s, _ := NewSpotter([]string{"SCHUMACHER", "ACCIDENT", "INCREDIBLE"})
	words := []SpokenWord{
		{Word: "SCHUMACHER", Time: 0},
		{Word: "LEADS", Time: 1},
		{Word: "INCREDIBLE", Time: 2},
		{Word: "STUFF", Time: 3},
		{Word: "ACCIDENT", Time: 4},
	}
	keywordsIn := map[string][2]float64{
		"SCHUMACHER": {0, 1}, "INCREDIBLE": {2, 3}, "ACCIDENT": {4, 5},
	}
	recall := func(m AcousticModel) float64 {
		const trials = 30
		hit := 0
		for i := 0; i < trials; i++ {
			stream := SimulateStream(words, m, rng)
			got := map[string]bool{}
			for _, h := range s.Spot(stream) {
				if win, ok := keywordsIn[h.Word]; ok && h.Start >= win[0]-0.3 && h.Start <= win[1] {
					got[h.Word] = true
				}
			}
			hit += len(got)
		}
		return float64(hit) / float64(trials*len(keywordsIn))
	}
	rClean := recall(CleanSpeech)
	rNews := recall(TVNews)
	if rNews <= rClean {
		t.Fatalf("tvnews recall %v not above clean %v", rNews, rClean)
	}
	if rNews < 0.7 {
		t.Fatalf("tvnews recall too low: %v", rNews)
	}
}

func TestNormalizeClamps(t *testing.T) {
	s, _ := NewSpotter([]string{"GO", "STOP"})
	hits := s.Normalize([]Hit{
		{Word: "GO", Score: 5},
		{Word: "STOP", Score: -1},
	})
	if hits[0].Score != 1 || hits[1].Score != 0 {
		t.Fatalf("normalized = %v", hits)
	}
}

func TestEvidenceSeries(t *testing.T) {
	hits := []Hit{
		{Word: "CRASH", Score: 0.8, Start: 1.0, Duration: 0.4},
		{Word: "CRASH", Score: 0.6, Start: 1.2, Duration: 0.4},
	}
	ev := EvidenceSeries(hits, 30, 0.1)
	if ev[5] != 0 {
		t.Fatalf("ev[5] = %v", ev[5])
	}
	if ev[10] != 0.8 || ev[12] != 0.8 {
		t.Fatalf("ev[10..12] = %v %v", ev[10], ev[12])
	}
	if ev[29] != 0 {
		t.Fatal("tail should be 0")
	}
	// Out-of-range hits are clipped, not panicking.
	ev2 := EvidenceSeries([]Hit{{Word: "X", Score: 1, Start: 5, Duration: 10}}, 10, 1)
	if ev2[9] != 1 {
		t.Fatalf("clipped series = %v", ev2)
	}
}

func TestSimulateStreamOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	words := []SpokenWord{{Word: "ZEBRA", Time: 2}, {Word: "APPLE", Time: 0}}
	stream := SimulateStream(words, TVNews, rng)
	for i := 1; i < len(stream); i++ {
		if stream[i].Time < stream[i-1].Time-1e-9 {
			t.Fatal("stream not time-ordered")
		}
	}
}
