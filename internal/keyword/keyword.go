// Package keyword implements the keyword-spotting subsystem (§5.2).
// The paper used an external finite-state-grammar spotting tool with
// two candidate acoustic models ("clean speech" vs "TV news"); here the
// spotter is a dynamic-programming aligner over a phone stream, and the
// acoustic models are simulated as confusion processes applied to the
// true phone sequence of the commentary. The spotter emits the same
// tuple the paper consumes: word, non-normalized score, start time and
// duration, plus the normalization step that feeds the probabilistic
// network.
package keyword

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
)

// AcousticModel simulates the error profile of a recognizer front-end
// on broadcast audio.
type AcousticModel struct {
	// Name labels the model.
	Name string
	// ConfusionRate is the probability a phone is observed as a random
	// other phone.
	ConfusionRate float64
	// DeletionRate is the probability a phone is dropped.
	DeletionRate float64
	// InsertionRate is the probability a spurious phone is inserted
	// after a true one.
	InsertionRate float64
}

// CleanSpeech is an acoustic model trained on clean read speech. On
// noisy Formula 1 broadcast audio it is badly mismatched, which is why
// the paper rejected it.
var CleanSpeech = AcousticModel{Name: "clean", ConfusionRate: 0.35, DeletionRate: 0.12, InsertionRate: 0.10}

// TVNews is an acoustic model aimed at word recognition in TV news;
// the paper found it clearly better on the Formula 1 program.
var TVNews = AcousticModel{Name: "tvnews", ConfusionRate: 0.12, DeletionRate: 0.04, InsertionRate: 0.04}

// Phone is one observed phone with its confidence and time stamp.
type Phone struct {
	Symbol byte
	Time   float64
	Score  float64 // recognizer confidence in (0, 1]
}

// phoneAlphabet is the simulated phone inventory (letter phones).
const phoneAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

// PhoneSequence maps a word to its phone string. The simulation uses
// letter phones: each letter of the (upper-cased) word is one phone;
// non-letters are dropped.
func PhoneSequence(word string) []byte {
	up := strings.ToUpper(word)
	out := make([]byte, 0, len(up))
	for i := 0; i < len(up); i++ {
		c := up[i]
		if c >= 'A' && c <= 'Z' {
			out = append(out, c)
		}
	}
	return out
}

// SpokenWord is one ground-truth word utterance in the commentary.
type SpokenWord struct {
	Word string
	// Time is the utterance start in seconds.
	Time float64
}

// PhoneRate is the simulated phones-per-second speaking rate.
const PhoneRate = 12.0

// SimulateStream converts ground-truth utterances into an observed
// phone stream under the acoustic model: phones are confused, deleted
// and joined by insertions; confidences are high for correct phones and
// lower for corrupted ones.
func SimulateStream(words []SpokenWord, m AcousticModel, rng *rand.Rand) []Phone {
	var out []Phone
	sorted := append([]SpokenWord(nil), words...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	for _, w := range sorted {
		t := w.Time
		for _, p := range PhoneSequence(w.Word) {
			dt := 1 / PhoneRate
			switch {
			case rng.Float64() < m.DeletionRate:
				// dropped
			case rng.Float64() < m.ConfusionRate:
				out = append(out, Phone{
					Symbol: phoneAlphabet[rng.Intn(len(phoneAlphabet))],
					Time:   t,
					Score:  0.3 + 0.3*rng.Float64(),
				})
			default:
				out = append(out, Phone{Symbol: p, Time: t, Score: 0.7 + 0.3*rng.Float64()})
			}
			if rng.Float64() < m.InsertionRate {
				out = append(out, Phone{
					Symbol: phoneAlphabet[rng.Intn(len(phoneAlphabet))],
					Time:   t + dt/2,
					Score:  0.2 + 0.3*rng.Float64(),
				})
			}
			t += dt
		}
	}
	return out
}

// Hit is one spotted keyword occurrence: the tuple the paper's
// keyword-spotting system outputs.
type Hit struct {
	Word string
	// Score is the non-normalized alignment score.
	Score float64
	// Start is the hit's start time in seconds.
	Start float64
	// Duration is the hit's length in seconds.
	Duration float64
}

// Spotter spots a fixed keyword list in phone streams using a
// finite-state alignment (one linear phone chain per keyword with
// skip and insertion arcs).
type Spotter struct {
	// Threshold is the minimum per-phone alignment score to report.
	Threshold float64
	keywords  []string
	phones    [][]byte
}

// NewSpotter builds a spotter for the given keywords (the "couple of
// tens of words that can usually be heard when the commentator is
// excited").
func NewSpotter(keywords []string) (*Spotter, error) {
	s := &Spotter{Threshold: 0.45}
	seen := map[string]bool{}
	for _, k := range keywords {
		u := strings.ToUpper(strings.TrimSpace(k))
		if u == "" || seen[u] {
			continue
		}
		ph := PhoneSequence(u)
		if len(ph) < 2 {
			return nil, errors.New("keyword: keywords need >= 2 phones")
		}
		seen[u] = true
		s.keywords = append(s.keywords, u)
		s.phones = append(s.phones, ph)
	}
	if len(s.keywords) == 0 {
		return nil, errors.New("keyword: empty keyword list")
	}
	return s, nil
}

// Keywords returns the spotter's keyword list.
func (s *Spotter) Keywords() []string { return append([]string(nil), s.keywords...) }

// alignment scoring constants.
const (
	gapPenalty      = 0.5 // skipping an observed phone (insertion)
	deletionPenalty = 0.6 // skipping a keyword phone (deletion)
)

// Spot scans the phone stream for every keyword and returns hits whose
// normalized per-phone score clears the threshold, sorted by start
// time.
func (s *Spotter) Spot(stream []Phone) []Hit {
	var hits []Hit
	for k := range s.keywords {
		hits = append(hits, s.spotOne(stream, k)...)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Start < hits[j].Start })
	return hits
}

// spotOne aligns one keyword against the stream with a local DP:
// rows = keyword phones, columns = stream positions.
func (s *Spotter) spotOne(stream []Phone, k int) []Hit {
	ph := s.phones[k]
	n, T := len(ph), len(stream)
	if T == 0 {
		return nil
	}
	// score[j] = best alignment score covering the first j phones,
	// ending at the current stream position; start[j] tracks the
	// stream index where that alignment began.
	const neg = -1e9
	score := make([]float64, n+1)
	start := make([]int, n+1)
	prevScore := make([]float64, n+1)
	prevStart := make([]int, n+1)
	for j := 1; j <= n; j++ {
		prevScore[j] = neg
	}
	var hits []Hit
	bestEnd := map[int]Hit{} // dedupe overlapping hits: keep best per region
	for i := 0; i < T; i++ {
		score[0] = 0
		start[0] = i
		for j := 1; j <= n; j++ {
			var match float64
			if stream[i].Symbol == ph[j-1] {
				match = prevScore[j-1] + stream[i].Score
			} else {
				match = prevScore[j-1] - stream[i].Score // mismatch penalty
			}
			// An alignment whose first consumed stream phone is this
			// one starts here.
			matchStart := prevStart[j-1]
			if j == 1 {
				matchStart = i
			}
			skipObs := prevScore[j] - gapPenalty
			skipPhone := score[j-1] - deletionPenalty
			best := match
			bs := matchStart
			if skipObs > best {
				best = skipObs
				bs = prevStart[j]
			}
			if skipPhone > best {
				best = skipPhone
				bs = start[j-1]
			}
			score[j] = best
			start[j] = bs
		}
		if score[n] > neg/2 {
			norm := score[n] / float64(n)
			if norm >= s.Threshold {
				st := stream[start[n]].Time
				dur := stream[i].Time - st + 1/PhoneRate
				h := Hit{Word: s.keywords[k], Score: score[n], Start: st, Duration: dur}
				// Keep the best hit per start region (within a word's span).
				key := int(st * PhoneRate)
				if prev, ok := bestEnd[key]; !ok || h.Score > prev.Score {
					bestEnd[key] = h
				}
			}
		}
		copy(prevScore, score)
		copy(prevStart, start)
	}
	for _, h := range bestEnd {
		hits = append(hits, h)
	}
	return hits
}

// Normalize maps non-normalized hit scores into [0, 1] by the per-word
// maximum attainable score, the paper's normalization step before the
// scores enter the probabilistic network.
func (s *Spotter) Normalize(hits []Hit) []Hit {
	out := make([]Hit, len(hits))
	for i, h := range hits {
		n := float64(len(PhoneSequence(h.Word)))
		v := h.Score / n
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = h
		out[i].Score = v
	}
	return out
}

// EvidenceSeries converts normalized hits into a per-clip keyword
// evidence series over total clips of clipDur seconds: each clip
// covered by a hit carries the hit's normalized score (max when hits
// overlap).
func EvidenceSeries(hits []Hit, total int, clipDur float64) []float64 {
	out := make([]float64, total)
	for _, h := range hits {
		lo := int(h.Start / clipDur)
		hi := int((h.Start + h.Duration) / clipDur)
		for c := lo; c <= hi && c < total; c++ {
			if c >= 0 && h.Score > out[c] {
				out[c] = h.Score
			}
		}
	}
	return out
}
