package server

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/qcache"
	"cobra/internal/query"
)

// The serving layer's core safety property: a response served through
// the cache is byte-identical to one executed fresh, at every kernel
// pool width, under concurrent appends and cache eviction pressure.
// The comparison is epoch-gated — when a dependency epoch moved
// between the two reads the data genuinely changed and the responses
// may legitimately differ; when the epochs held, any byte of
// difference is a stale serve, a torn fingerprint, or a broken
// single-flight, and the test fails.
func TestCachedUncachedEquivalence(t *testing.T) {
	queries := []string{
		`SELECT SEGMENTS FROM v WHERE EVENT('overtake')`,
		`SELECT SEGMENTS FROM v WHERE FEATURE('speed') > 0.5`,
		`SELECT SEGMENTS FROM v WHERE EVENT('overtake') AND FEATURE('speed') > 0.5`,
		`SELECT SEGMENTS FROM v WHERE EVENT('overtake') OR EVENT('pit')`,
		`SELECT EVENTS FROM v WHERE EVENT('overtake') ORDER BY CONFIDENCE DESC LIMIT 5`,
	}
	for _, width := range []int{1, 4, 8} {
		width := width
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			prev := monet.SetDefaultPoolWorkers(width)
			defer monet.SetDefaultPoolWorkers(prev)

			store := monet.NewStore()
			cat := cobra.NewCatalog(store)
			cat.PutVideo(cobra.Video{Name: "v", Duration: 1000, FPS: 10})
			cat.PutEvents("v", []cobra.Event{
				{Type: "overtake", Interval: cobra.Interval{Start: 5, End: 9}, Confidence: 0.9},
				{Type: "pit", Interval: cobra.Interval{Start: 20, End: 30}, Confidence: 0.7},
			})
			if _, err := cat.AppendFeatureSamples("v", "speed", 10, seedSamples(200)); err != nil {
				t.Fatal(err)
			}
			srv := New(cobra.NewPreprocessor(cat), nil)
			// A deliberately tiny cache: entries churn out under LRU
			// pressure while the test runs, so eviction races are
			// exercised, not just the warm-hit path.
			srv.SetCache(qcache.New(2048))

			deps := make(map[string][]string, len(queries))
			for _, src := range queries {
				q, err := query.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				deps[src] = query.DepNamesOf(q)
			}

			stop := make(chan struct{})
			var writerDone sync.WaitGroup
			// Writer: events and feature samples append concurrently
			// with the reads, moving dependency epochs mid-flight.
			writerDone.Add(1)
			go func() {
				defer writerDone.Done()
				rng := rand.New(rand.NewSource(int64(width)))
				// Paced so epochs move steadily through the read phase
				// without the dataset outgrowing the readers: unbounded
				// appends would make every later query scan arbitrarily
				// more rows and the test's runtime quadratic.
				for i := 0; i < 400; i++ {
					select {
					case <-stop:
						return
					default:
					}
					start := float64(40 + i)
					cat.AppendEvents("v", []cobra.Event{{
						Type: "overtake", Interval: cobra.Interval{Start: start, End: start + 2},
						Confidence: 0.5 + rng.Float64()/2,
					}})
					cat.AppendFeatureSamples("v", "speed", 10, []float64{rng.Float64()})
					time.Sleep(100 * time.Microsecond)
				}
			}()

			const readers, iters = 4, 60
			errs := make(chan error, readers)
			var readerDone sync.WaitGroup
			for r := 0; r < readers; r++ {
				readerDone.Add(1)
				go func(r int) {
					defer readerDone.Done()
					rng := rand.New(rand.NewSource(int64(1000*width + r)))
					for i := 0; i < iters; i++ {
						src := queries[rng.Intn(len(queries))]
						before := qcache.Fingerprint(store, deps[src])
						var cached, fresh strings.Builder
						srv.Serve(src, &cached)  // through the pipeline (may hit)
						srv.Execute(src, &fresh) // always executes
						after := qcache.Fingerprint(store, deps[src])
						if before != after {
							continue // data moved mid-pair: no equivalence claim
						}
						if cached.String() != fresh.String() {
							errs <- fmt.Errorf("width %d query %q: cached response diverged at stable epochs:\n--- cached\n%s--- fresh\n%s",
								width, src, cached.String(), fresh.String())
							return
						}
					}
				}(r)
			}
			// Readers finish first (the writer appends until told to
			// stop), then the writer is released and drained.
			readerDone.Wait()
			close(stop)
			writerDone.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// seedSamples builds a deterministic speed series crossing the 0.5
// threshold repeatedly, so FEATURE runs exist at every watermark.
func seedSamples(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%10) / 10
	}
	return vals
}
