package server

import (
	"errors"
	"strings"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/wal"
)

func TestCheckpointWithoutDurability(t *testing.T) {
	_, cl := testServer(t)
	_, err := cl.Do("CHECKPOINT")
	if err == nil || !strings.Contains(err.Error(), "durability disabled") {
		t.Fatalf("err = %v, want durability-disabled error", err)
	}
}

type stubCheckpointer struct {
	calls int
	err   error
}

func (s *stubCheckpointer) Checkpoint() error {
	s.calls++
	return s.err
}

func TestCheckpointOverWire(t *testing.T) {
	srv, cl := testServer(t)
	cp := &stubCheckpointer{}
	srv.SetCheckpointer(cp)
	out, err := cl.Do("CHECKPOINT")
	if err != nil {
		t.Fatal(err)
	}
	if cp.calls != 1 {
		t.Fatalf("checkpointer invoked %d times", cp.calls)
	}
	if len(out) != 1 || !strings.Contains(out[0], "checkpoint complete") {
		t.Fatalf("out = %v", out)
	}
	cp.err = errors.New("disk on fire")
	if _, err := cl.Do("CHECKPOINT"); err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v, want propagated checkpoint error", err)
	}
}

// TestServerKillRecoverServe is the end-to-end durability test: write
// through a durable store, "kill" the process (abandon the manager
// without closing), recover the data directory into a fresh store, and
// serve queries over the recovered data through a new server.
func TestServerKillRecoverServe(t *testing.T) {
	dir := t.TempDir()

	// Life 1: durable writes, no clean shutdown.
	store := monet.NewStore()
	if _, err := wal.Open(dir, store, wal.Options{Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	laps := monet.NewBAT(monet.OIDT, monet.FloatT)
	if err := store.Put("f1/laps", laps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := store.Append("f1/laps", monet.NewOID(monet.OID(i)), monet.NewFloat(80+float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	// Life 2: recover and serve.
	store2 := monet.NewStore()
	mgr, err := wal.Open(dir, store2, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	cat := cobra.NewCatalog(store2)
	pre := cobra.NewPreprocessor(cat)
	srv := New(pre, nil)
	srv.SetCheckpointer(mgr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	out, err := cl.Do(`MIL bat("f1/laps").count;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "10" {
		t.Fatalf("count over recovered data = %v, want 10", out)
	}
	out, err = cl.Do(`MIL bat("f1/laps").max;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "89" {
		t.Fatalf("max over recovered data = %v, want 89", out)
	}

	// CHECKPOINT over the wire against the real manager.
	if _, err := cl.Do("CHECKPOINT"); err != nil {
		t.Fatal(err)
	}

	// Life 3: recovery after the checkpoint needs no replay.
	store3 := monet.NewStore()
	mgr3, err := wal.Open(dir, store3, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if mgr3.Recovery.Replayed != 0 {
		t.Errorf("post-checkpoint recovery replayed %d records", mgr3.Recovery.Replayed)
	}
	b, err := store3.Get("f1/laps")
	if err != nil || b.Len() != 10 {
		t.Fatalf("life 3 laps: %v, %v", b, err)
	}
	for i := 0; i < 10; i++ {
		if got := b.Tail(i).Float(); got != 80+float64(i) {
			t.Fatalf("row %d = %v", i, got)
		}
	}
}
