package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"

	"cobra/internal/obs"
	"cobra/internal/qcache"
	"cobra/internal/query"
)

// The serving pipeline. Every request line — whether it arrived over
// TCP or through the in-process Serve entry point — flows through the
// same composable middleware chain before reaching the verb
// dispatcher:
//
//	auth -> gate -> cache -> admit -> execute
//
// Each stage is a plain func(Handler) Handler, so the order is
// spelled in exactly one place (buildChain) and a stage that has
// nothing to say about a request costs one function call. The order
// is deliberate: authentication is checked before any work; feature
// gates can turn a verb class off per tenant before it touches the
// engine; a cache hit is served before admission control, so a loaded
// server keeps answering repeated queries from memory even while it
// sheds fresh work; and only requests that will actually execute
// occupy an admission slot.

// Serving metrics.
var (
	cBusy        = obs.C("server.busy_responses")
	cAuthDenied  = obs.C("server.auth_denied")
	cGateBlocked = obs.C("server.gate_blocked")
)

// Gate names the server registers at construction. All default on:
// gates exist to turn serving features off (or ramp them back on)
// at runtime without a restart.
const (
	// GateQueryCache gates the semantic result cache per tenant.
	GateQueryCache = "qcache.enabled"
	// GateAdmission gates admission control (shedding, rate limits).
	GateAdmission = "admit.enabled"
	// GateMIL gates raw physical-layer access (MIL, CHECK): the verbs
	// that bypass the conceptual schema entirely.
	GateMIL = "mil.enabled"
)

// Request is one protocol line flowing through the middleware chain.
type Request struct {
	// Ctx carries the request context (traces ride on it).
	Ctx context.Context
	// Line is the full request line; Verb its upper-cased first word
	// and Rest everything after it.
	Line, Verb, Rest string
	// Tenant identifies the caller for gates, rate limits and cache
	// ramp decisions: the AUTH identity, or "anon" before AUTH.
	Tenant string
	// Authed reports whether the connection presented credentials.
	Authed bool
}

// newRequest splits a protocol line into a Request.
func newRequest(ctx context.Context, line, tenant string, authed bool) *Request {
	verb, rest, _ := strings.Cut(line, " ")
	return &Request{
		Ctx:    ctx,
		Line:   line,
		Verb:   strings.ToUpper(verb),
		Rest:   rest,
		Tenant: tenant,
		Authed: authed,
	}
}

// Handler answers one request, writing a complete wire response.
type Handler func(req *Request, w io.Writer)

// Middleware wraps a Handler with one serving concern.
type Middleware func(next Handler) Handler

// Chain composes middlewares around a terminal handler, outermost
// first: Chain(h, a, b) runs a, then b, then h.
func Chain(h Handler, mw ...Middleware) Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// buildChain assembles the serving pipeline around a terminal
// executor. The connection loop passes a terminal that also knows the
// connection-scoped streaming verbs; Serve passes the bare dispatcher.
func (s *Server) buildChain(terminal Handler) Handler {
	return Chain(terminal, s.authStage, s.gateStage, s.cacheStage, s.admitStage)
}

// Serve runs one protocol line through the full middleware chain —
// the in-process equivalent of a TCP request, used by tests and
// benchmarks. Execute, by contrast, dispatches the verb directly with
// no serving stages.
func (s *Server) Serve(line string, w io.Writer) {
	s.ServeCtx(context.Background(), line, w)
}

// ServeCtx is Serve under a caller context. In-process callers are
// implicitly authenticated as tenant "local".
func (s *Server) ServeCtx(ctx context.Context, line string, w io.Writer) {
	s.inprocOnce.Do(func() {
		s.inproc = s.buildChain(func(req *Request, w io.Writer) {
			s.ExecuteCtx(req.Ctx, req.Line, w)
		})
	})
	s.inproc(newRequest(ctx, line, "local", true), w)
}

// heavyVerb reports whether a verb does engine or kernel work worth
// an admission slot. Everything else — PING, STATS, introspection,
// subscription management — is answered unconditionally: an operator
// debugging an overloaded server must not be shed by it.
func heavyVerb(v string) bool {
	switch v {
	case "COQL", "SELECT", "RETRIEVE", "MIL", "HMM", "TRACE", "EXPLAIN", "CHECK", "EXPORT":
		return true
	}
	return false
}

// queryVerb reports whether a verb is a plain one-shot COQL query —
// the only response shape the result cache stores.
func queryVerb(v string) bool {
	return v == "COQL" || v == "SELECT" || v == "RETRIEVE"
}

// authStage rejects heavy verbs from unauthenticated connections when
// the server requires a token. Introspection verbs stay open: PING
// and STATS answering is how an operator discovers the server is
// alive but locked.
func (s *Server) authStage(next Handler) Handler {
	return func(req *Request, w io.Writer) {
		if req.Tenant == "" {
			req.Tenant = "anon"
		}
		s.mu.Lock()
		tokenRequired := s.authToken != ""
		s.mu.Unlock()
		if tokenRequired && !req.Authed && heavyVerb(req.Verb) {
			cAuthDenied.Inc()
			fmt.Fprintln(w, "ERR authentication required (AUTH <tenant> <token>)")
			return
		}
		next(req, w)
	}
}

// gateStage enforces verb-class feature gates. Only MIL-level access
// is gated here; the cache and admission stages consult their own
// flags so a gate flip takes effect exactly where the feature lives.
func (s *Server) gateStage(next Handler) Handler {
	return func(req *Request, w io.Writer) {
		if (req.Verb == "MIL" || req.Verb == "CHECK") && s.gates != nil &&
			!s.gates.Enabled(GateMIL, req.Tenant) {
			cGateBlocked.Inc()
			fmt.Fprintln(w, "ERR physical-layer access is gated off (GATES SET mil.enabled on)")
			return
		}
		next(req, w)
	}
}

// rawResponse carries a downstream response the cache stage must
// relay verbatim instead of caching: an ERR, a BUSY, anything that is
// not a well-formed OK body.
type rawResponse struct{ text string }

func (r *rawResponse) Error() string { return "server: uncacheable response" }

// cacheStage serves one-shot COQL queries from the semantic result
// cache. Keyed on the statement's canonical form and fingerprinted by
// its dependency BAT epochs, a hit replays the stored body —
// byte-identical to execution, because the stored body IS a previous
// execution's body — without touching the engine, the kernel pool, or
// the admission controller. A miss executes through the rest of the
// chain (so fresh work still pays admission) into a capture buffer,
// and concurrent identical misses collapse into one execution.
func (s *Server) cacheStage(next Handler) Handler {
	return func(req *Request, w io.Writer) {
		cache := s.Cache()
		if cache == nil || !queryVerb(req.Verb) {
			next(req, w)
			return
		}
		if s.gates != nil && !s.gates.Enabled(GateQueryCache, req.Tenant) {
			next(req, w)
			return
		}
		stmt := req.Rest
		if req.Verb != "COQL" {
			stmt = req.Line // SELECT/RETRIEVE given directly
		}
		q, err := query.Parse(stmt)
		if err != nil {
			// Let the engine surface parse errors with its own wording.
			next(req, w)
			return
		}
		key := q.Canonical()
		// The fingerprint is observed BEFORE execution: a write racing
		// the miss leaves the stored entry stale by its own fingerprint,
		// so the race resolves to a recomputation, never a stale serve.
		fp := qcache.Fingerprint(s.cat.Store(), query.DepNamesOf(q))
		lines, hit, err := cache.Do(key, fp, func() ([]string, error) {
			var buf bytes.Buffer
			next(req, &buf)
			body, ok := parseOKBody(buf.String())
			if !ok {
				return nil, &rawResponse{text: buf.String()}
			}
			return body, nil
		})
		if err != nil {
			if raw, ok := err.(*rawResponse); ok {
				io.WriteString(w, raw.text)
				return
			}
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if hit {
			s.traceCacheHit(stmt, len(lines))
		}
		writeLines(w, lines)
	}
}

// traceCacheHit records a cache-served query in the trace ring, so
// TRACEDUMP shows cached answers alongside executed ones instead of
// queries silently vanishing from the timeline when the cache warms.
func (s *Server) traceCacheHit(stmt string, nLines int) {
	root := obs.StartTrace("coql.query")
	root.SetAttr("level", "conceptual")
	root.SetAttr("query", stmt)
	root.SetAttr("cache", "hit")
	root.Resources().RowsReturned.Store(int64(nLines))
	stat := root.Resources().Stat()
	root.SetAttr("resources", stat.String())
	d := root.Finish()
	obs.DefaultTraces.Add(obs.Trace{
		ID:       root.TraceID(),
		Query:    stmt,
		Start:    root.StartTime(),
		Duration: d,
		Res:      stat,
		Root:     root,
	})
}

// parseOKBody strips "OK <n>" / body / "END" framing, reporting false
// for any other response shape.
func parseOKBody(resp string) ([]string, bool) {
	lines := strings.Split(strings.TrimRight(resp, "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "OK ") || lines[len(lines)-1] != "END" {
		return nil, false
	}
	body := lines[1 : len(lines)-1]
	if len(body) == 0 {
		return nil, true
	}
	return body, true
}

// admitStage charges heavy verbs against the admission controller. A
// shed request is answered with a one-line BUSY frame — the wire-level
// cousin of ERR that tells clients "retry later" — and never reaches
// the engine: shedding costs the server a map lookup, not a worker.
func (s *Server) admitStage(next Handler) Handler {
	return func(req *Request, w io.Writer) {
		adm := s.Admission()
		if adm == nil || !heavyVerb(req.Verb) {
			next(req, w)
			return
		}
		if s.gates != nil && !s.gates.Enabled(GateAdmission, req.Tenant) {
			next(req, w)
			return
		}
		release, err := adm.Acquire(req.Tenant)
		if err != nil {
			cBusy.Inc()
			fmt.Fprintf(w, "BUSY %v\n", strings.TrimPrefix(err.Error(), "busy: "))
			return
		}
		defer release()
		next(req, w)
	}
}
