package server

import (
	"strings"
	"testing"

	"cobra/internal/cobra"
	"cobra/internal/hmm"
	"cobra/internal/monet"
)

func testServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	cat.PutVideo(cobra.Video{Name: "v", Duration: 100, FPS: 10})
	cat.PutEvents("v", []cobra.Event{
		{Type: "highlight", Interval: cobra.Interval{Start: 10, End: 20}, Confidence: 0.9,
			Attrs: map[string]string{"driver": "RALF"}},
	})
	pre := cobra.NewPreprocessor(cat)

	pool := hmm.NewEnginePool(2)
	m := hmm.NewModel("Service", 2, 2)
	if err := pool.Register(m); err != nil {
		t.Fatal(err)
	}
	srv := New(pre, pool)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestPing(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("PING")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestCOQLOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "driver=RALF") {
		t.Fatalf("out = %v", out)
	}
	// Explicit COQL prefix works too.
	out, err = cl.Do(`COQL SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestCOQLError(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do(`SELECT NONSENSE`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestMILOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`MIL VAR b := new(void,int); b.insert(nil, 41); RETURN b.sum + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "42" {
		t.Fatalf("out = %v", out)
	}
}

func TestMILReachesCatalogBATs(t *testing.T) {
	_, cl := testServer(t)
	// The catalog's event columns are plain BATs visible to MIL.
	out, err := cl.Do(`MIL RETURN bat("cobra/event/v/type").count;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "1" {
		t.Fatalf("out = %v", out)
	}
}

func TestHMMOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("HMM EVAL Service 0,1,0,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	out, err = cl.Do("HMM CLASSIFY 0,1,0")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "Service" {
		t.Fatalf("classify = %v", out)
	}
	if _, err := cl.Do("HMM EVAL Nope 0,1"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := cl.Do("HMM EVAL Service x,y"); err == nil {
		t.Fatal("bad observations accepted")
	}
}

func TestListVideos(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("LIST VIDEOS")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "v" {
		t.Fatalf("out = %v", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do("FROBNICATE"); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := testServer(t)
	addrStr := srv.listener.Addr().String()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cl, err := Dial(addrStr)
			if err != nil {
				done <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 10; j++ {
				if _, err := cl.Do("PING"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestExportOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("EXPORT v")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "<Mpeg7>") || !strings.Contains(joined, `type="highlight"`) {
		t.Fatalf("export = %s", joined)
	}
	if _, err := cl.Do("EXPORT nope"); err == nil {
		t.Fatal("unknown video accepted")
	}
}
