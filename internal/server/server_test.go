package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/hmm"
	"cobra/internal/monet"
	"cobra/internal/obs"
)

func testServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	cat.PutVideo(cobra.Video{Name: "v", Duration: 100, FPS: 10})
	cat.PutEvents("v", []cobra.Event{
		{Type: "highlight", Interval: cobra.Interval{Start: 10, End: 20}, Confidence: 0.9,
			Attrs: map[string]string{"driver": "RALF"}},
	})
	pre := cobra.NewPreprocessor(cat)

	pool := hmm.NewEnginePool(2)
	m := hmm.NewModel("Service", 2, 2)
	if err := pool.Register(m); err != nil {
		t.Fatal(err)
	}
	srv := New(pre, pool)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestPing(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("PING")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestCOQLOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "driver=RALF") {
		t.Fatalf("out = %v", out)
	}
	// Explicit COQL prefix works too.
	out, err = cl.Do(`COQL SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestCOQLError(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do(`SELECT NONSENSE`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestMILOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`MIL VAR b := new(void,int); b.insert(nil, 41); RETURN b.sum + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "42" {
		t.Fatalf("out = %v", out)
	}
}

func TestMILReachesCatalogBATs(t *testing.T) {
	_, cl := testServer(t)
	// The catalog's event columns are plain BATs visible to MIL.
	out, err := cl.Do(`MIL RETURN bat("cobra/event/v/type").count;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "1" {
		t.Fatalf("out = %v", out)
	}
}

func TestHMMOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("HMM EVAL Service 0,1,0,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	out, err = cl.Do("HMM CLASSIFY 0,1,0")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "Service" {
		t.Fatalf("classify = %v", out)
	}
	if _, err := cl.Do("HMM EVAL Nope 0,1"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := cl.Do("HMM EVAL Service x,y"); err == nil {
		t.Fatal("bad observations accepted")
	}
}

func TestListVideos(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("LIST VIDEOS")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "v" {
		t.Fatalf("out = %v", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do("FROBNICATE"); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := testServer(t)
	addrStr := srv.listener.Addr().String()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cl, err := Dial(addrStr)
			if err != nil {
				done <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 10; j++ {
				if _, err := cl.Do("PING"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatsOverWire(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
		t.Fatal(err)
	}
	out, err := cl.Do("STATS")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	for _, want := range []string{
		"counter coql.queries ",
		"counter server.requests ",
		"hist coql.query.latency count=",
		"p95_ns=",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("STATS missing %q:\n%s", want, joined)
		}
	}
	// The query counter must be at least the one query this test ran.
	for _, l := range out {
		if strings.HasPrefix(l, "counter coql.queries ") {
			if strings.TrimPrefix(l, "counter coql.queries ") == "0" {
				t.Errorf("coql.queries = 0 after a query: %s", l)
			}
		}
	}
}

func TestTraceOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`TRACE SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	// The span tree must cover all three levels with non-zero timings.
	for _, want := range []string{
		"# 1 segments",
		"coql.query ",
		"level=conceptual",
		"moa.eval ",
		"level=logical",
		"monet.scan ",
		"level=physical",
		"rows=1",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("TRACE missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, " 0ns") {
		t.Errorf("TRACE has a zero timing:\n%s", joined)
	}
	if _, err := cl.Do("TRACE"); err == nil {
		t.Fatal("bare TRACE accepted")
	}
	if _, err := cl.Do("TRACE SELECT NONSENSE"); err == nil {
		t.Fatal("bad traced query accepted")
	}
}

func TestTraceDumpOverWire(t *testing.T) {
	_, cl := testServer(t)
	if _, err := cl.Do(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
		t.Fatal(err)
	}

	// Bare TRACEDUMP: a newest-first listing. The ring is process-wide,
	// so pick the newest entry for the query this test just ran.
	out, err := cl.Do("TRACEDUMP")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.HasPrefix(out[0], "# ") {
		t.Fatalf("TRACEDUMP header = %v", out)
	}
	var id string
	for _, l := range out[1:] {
		if strings.Contains(l, "EVENT('highlight')") {
			id = strings.Fields(l)[0]
			break
		}
	}
	if !strings.HasPrefix(id, "t") {
		t.Fatalf("no trace ID for the query in TRACEDUMP listing:\n%s", strings.Join(out, "\n"))
	}

	// TRACEDUMP <id>: resource attribution plus the full span tree.
	out, err = cl.Do("TRACEDUMP " + id)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	for _, want := range []string{
		"# trace " + id,
		"# query SELECT SEGMENTS",
		"rows_scanned=",
		"coql.query ",
		"level=conceptual",
		"level=logical",
		"level=physical",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("TRACEDUMP %s missing %q:\n%s", id, want, joined)
		}
	}

	// TRACEDUMP <id> CHROME: one line of trace-event JSON.
	out, err = cl.Do("TRACEDUMP " + id + " CHROME")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], `"traceEvents"`) {
		t.Fatalf("TRACEDUMP CHROME = %v", out)
	}

	// Unknown IDs are an error, not an empty dump.
	if _, err := cl.Do("TRACEDUMP t000000f00d"); err == nil {
		t.Fatal("unknown trace ID accepted")
	}
}

func TestSlowlogOverWire(t *testing.T) {
	_, cl := testServer(t)
	old := obs.DefaultSlowLog.Threshold()
	obs.DefaultSlowLog.SetThreshold(time.Nanosecond)
	defer obs.DefaultSlowLog.SetThreshold(old)
	if _, err := cl.Do(`SELECT SEGMENTS FROM v WHERE EVENT('highlight')`); err != nil {
		t.Fatal(err)
	}
	out, err := cl.Do("SLOWLOG")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	if !strings.HasPrefix(out[0], "# threshold ") {
		t.Fatalf("SLOWLOG header = %q", out[0])
	}
	if !strings.Contains(joined, "EVENT('highlight')") {
		t.Errorf("SLOWLOG missing the slow query:\n%s", joined)
	}
}

func TestCloseSentinelAndDrain(t *testing.T) {
	srv, cl := testServer(t)
	// A live client is connected; Close must drain it and return.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("first Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain in-flight connections")
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second Close = %v, want ErrServerClosed", err)
	}
	// The drained connection no longer serves requests.
	if _, err := cl.Do("PING"); err == nil {
		t.Fatal("request succeeded after Close")
	}
	// Listen after Close is refused.
	if _, err := srv.Listen("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Listen after Close = %v, want ErrServerClosed", err)
	}
}

func TestExportOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do("EXPORT v")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "<Mpeg7>") || !strings.Contains(joined, `type="highlight"`) {
		t.Fatalf("export = %s", joined)
	}
	if _, err := cl.Do("EXPORT nope"); err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestCheckOverWire(t *testing.T) {
	_, cl := testServer(t)
	// A clean program answers "program OK".
	out, err := cl.Do(`CHECK VAR b := new(void,int); b.insert(nil, 41); RETURN b.sum;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "program OK" {
		t.Fatalf("out = %v", out)
	}
	// An unbound variable is diagnosed with its position — and the
	// statement is NOT executed.
	out, err = cl.Do(`CHECK RETURN nosuchvar;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.Contains(out[0], "unbound") {
		t.Fatalf("out = %v", out)
	}
	// Catalog BATs resolve with their true types: a string uselect over
	// the dbl start column is a type error.
	out, err = cl.Do(`CHECK RETURN bat("cobra/event/v/start").uselect("x");`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.Contains(strings.Join(out, "\n"), "error") {
		t.Fatalf("out = %v", out)
	}
	// Parse errors come back as protocol errors.
	if _, err := cl.Do(`CHECK VAR := ;`); err == nil {
		t.Fatal("unparseable program accepted")
	}
}

func TestCheckSeesSessionState(t *testing.T) {
	_, cl := testServer(t)
	// Globals and procs created by earlier MIL commands are in scope
	// for CHECK on the same server.
	if _, err := cl.Do(`MIL sessiong := 7; PROC twice(int x) : int := { RETURN x + x; } RETURN sessiong;`); err != nil {
		t.Fatal(err)
	}
	out, err := cl.Do(`CHECK RETURN twice(sessiong);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "program OK" {
		t.Fatalf("out = %v", out)
	}
	// The extension operations registered with the HMM pool carry
	// signatures: wrong argument types are diagnosed.
	out, err = cl.Do(`CHECK RETURN hmmonecall(1, 2);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || out[0] == "program OK" {
		t.Fatalf("out = %v", out)
	}
}

func TestExplainOverWire(t *testing.T) {
	_, cl := testServer(t)
	out, err := cl.Do(`EXPLAIN SELECT SEGMENTS FROM v WHERE EVENT('highlight')`)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Join(out, "\n")
	for _, want := range []string{
		`bat("cobra/event/v/type").uselect("highlight")`,
		"RETURN res_start;",
		"# milcheck: plan OK",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, body)
		}
	}
	if _, err := cl.Do(`EXPLAIN`); err == nil {
		t.Fatal("bare EXPLAIN accepted")
	}
	if _, err := cl.Do(`EXPLAIN SELECT NONSENSE`); err == nil {
		t.Fatal("unparseable COQL accepted")
	}
}

func TestExplainAnalyzeOverWire(t *testing.T) {
	srv, cl := testServer(t)
	vals := make([]float64, 40000)
	for i := 5000; i < 9000; i++ {
		vals[i] = 0.9
	}
	srv.cat.PutFeature(cobra.Feature{Video: "v", Name: "dust", SampleRate: 10, Values: vals})
	out, err := cl.Do(`EXPLAIN ANALYZE SELECT SEGMENTS FROM v WHERE FEATURE('dust') > 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Join(out, "\n")
	for _, want := range []string{
		"# s1: access path:", // static plan annotation
		"# executed: 1 segments",
		"coql.query", // the execution trace follows the plan
	} {
		if !strings.Contains(body, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, body)
		}
	}
	if _, err := cl.Do(`EXPLAIN ANALYZE`); err == nil {
		t.Fatal("bare EXPLAIN ANALYZE accepted")
	}
}

func TestIndexInfoOverWire(t *testing.T) {
	srv, cl := testServer(t)
	vals := make([]float64, 40000)
	srv.cat.PutFeature(cobra.Feature{Video: "v", Name: "dust", SampleRate: 10, Values: vals})
	out, err := cl.Do(`INDEXINFO cobra/feature/v/dust`)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Join(out, "\n")
	for _, want := range []string{"name cobra/feature/v/dust", "rows 40000", "crack ", "zonemap ", "dict "} {
		if !strings.Contains(body, want) {
			t.Errorf("INDEXINFO output missing %q:\n%s", want, body)
		}
	}
	if _, err := cl.Do(`INDEXINFO`); err == nil {
		t.Fatal("bare INDEXINFO accepted")
	}
	if _, err := cl.Do(`INDEXINFO no/such/bat`); err == nil {
		t.Fatal("missing BAT accepted")
	}
}
