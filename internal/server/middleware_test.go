package server

import (
	"errors"
	"strings"
	"testing"

	"cobra/internal/admit"
	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/obs"
	"cobra/internal/qcache"
)

// servingFixture builds a server with the full serving pipeline
// attached — result cache, and optionally admission — plus a client
// and the live catalog for mutating mid-test.
func servingFixture(t *testing.T, adm *admit.Controller) (*Server, *Client, *cobra.Catalog) {
	t.Helper()
	store := monet.NewStore()
	cat := cobra.NewCatalog(store)
	cat.PutVideo(cobra.Video{Name: "v", Duration: 100, FPS: 10})
	cat.PutEvents("v", []cobra.Event{
		{Type: "highlight", Interval: cobra.Interval{Start: 10, End: 20}, Confidence: 0.9},
	})
	pre := cobra.NewPreprocessor(cat)
	srv := New(pre, nil)
	srv.SetCache(qcache.New(1 << 20))
	if adm != nil {
		srv.SetAdmission(adm)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl, cat
}

// cacheStat reads one counter out of a CACHESTATS response.
func cacheStat(t *testing.T, cl *Client, name string) string {
	t.Helper()
	lines, err := cl.Do("CACHESTATS")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if k, v, ok := strings.Cut(l, " "); ok && k == name {
			return v
		}
	}
	t.Fatalf("CACHESTATS has no %q in %v", name, lines)
	return ""
}

const cachedQuery = `SELECT SEGMENTS FROM v WHERE EVENT('highlight')`

func TestCacheMissThenHitOverWire(t *testing.T) {
	_, cl, _ := servingFixture(t, nil)
	first, err := cl.Do(cachedQuery)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Do(cachedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatalf("cached response differs:\n%v\n%v", first, second)
	}
	if got := cacheStat(t, cl, "qcache.hits"); got != "1" {
		t.Fatalf("hits = %s", got)
	}
	if got := cacheStat(t, cl, "qcache.misses"); got != "1" {
		t.Fatalf("misses = %s", got)
	}
	// Spelling variations share the canonical entry.
	if _, err := cl.Do(`COQL select   SEGMENTS from v where event('highlight')`); err != nil {
		t.Fatal(err)
	}
	if got := cacheStat(t, cl, "qcache.hits"); got != "2" {
		t.Fatalf("hits after respelling = %s", got)
	}
}

func TestCacheEpochInvalidationOverWire(t *testing.T) {
	_, cl, cat := servingFixture(t, nil)
	before, err := cl.Do(cachedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEvents("v", []cobra.Event{
		{Type: "highlight", Interval: cobra.Interval{Start: 30, End: 40}, Confidence: 0.8},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := cl.Do(cachedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("append not visible through the cache: %v -> %v", before, after)
	}
	if got := cacheStat(t, cl, "qcache.invalidations"); got != "1" {
		t.Fatalf("invalidations = %s", got)
	}
	// The recomputed result is itself cached again.
	if _, err := cl.Do(cachedQuery); err != nil {
		t.Fatal(err)
	}
	if got := cacheStat(t, cl, "qcache.hits"); got != "1" {
		t.Fatalf("hits = %s", got)
	}
}

func TestCacheGateTurnsCacheOff(t *testing.T) {
	_, cl, _ := servingFixture(t, nil)
	if _, err := cl.Do("GATES SET qcache.enabled off"); err != nil {
		t.Fatal(err)
	}
	cl.Do(cachedQuery)
	cl.Do(cachedQuery)
	if got := cacheStat(t, cl, "qcache.misses"); got != "0" {
		t.Fatalf("gated-off cache saw traffic: misses = %s", got)
	}
	if _, err := cl.Do("GATES SET qcache.enabled on"); err != nil {
		t.Fatal(err)
	}
	cl.Do(cachedQuery)
	if got := cacheStat(t, cl, "qcache.misses"); got != "1" {
		t.Fatalf("re-enabled cache ignored: misses = %s", got)
	}
}

func TestGatesListAndValidation(t *testing.T) {
	_, cl, _ := servingFixture(t, nil)
	lines, err := cl.Do("GATES")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"qcache.enabled on", "admit.enabled on", "mil.enabled on"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("GATES missing %q:\n%s", want, joined)
		}
	}
	if _, err := cl.Do("GATES SET nope on"); err == nil {
		t.Fatal("unknown gate accepted")
	}
	if _, err := cl.Do("GATES SET qcache.enabled maybe"); err == nil {
		t.Fatal("bad gate value accepted")
	}
}

func TestMILGateBlocksPhysicalAccess(t *testing.T) {
	_, cl, _ := servingFixture(t, nil)
	if _, err := cl.Do("GATES SET mil.enabled off"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do("MIL RETURN 1 + 1;"); err == nil {
		t.Fatal("gated-off MIL served")
	}
	if _, err := cl.Do("CHECK RETURN 1;"); err == nil {
		t.Fatal("gated-off CHECK served")
	}
	// Conceptual-level queries are unaffected.
	if _, err := cl.Do(cachedQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do("GATES SET mil.enabled on"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do("MIL RETURN 1 + 1;"); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionShedsWithBusy(t *testing.T) {
	adm := admit.New(admit.Config{MaxInFlight: 1})
	_, cl, _ := servingFixture(t, adm)
	// Occupy the only slot out-of-band, then prove a heavy request is
	// shed with BUSY while light verbs keep answering.
	release, err := adm.Acquire("occupant")
	if err != nil {
		t.Fatal(err)
	}
	tracesBefore := len(obs.DefaultTraces.Recent())
	_, err = cl.Do(cachedQuery)
	if !errors.Is(err, admit.ErrBusy) {
		t.Fatalf("shed request err = %v, want BUSY", err)
	}
	// The shed request never reached the engine: no new trace, no pool
	// work, nothing cached. (It still counts as a cache miss — the
	// cache was consulted and had nothing — but the miss's execution
	// was shed downstream.)
	if got := len(obs.DefaultTraces.Recent()); got != tracesBefore {
		t.Fatalf("shed request produced a trace (%d -> %d)", tracesBefore, got)
	}
	if got := cacheStat(t, cl, "qcache.entries"); got != "0" {
		t.Fatalf("shed request stored a result: entries = %s", got)
	}
	if _, err := cl.Do("PING"); err != nil {
		t.Fatalf("light verb shed: %v", err)
	}
	release()
	// With the slot free the same query executes and caches...
	if _, err := cl.Do(cachedQuery); err != nil {
		t.Fatalf("post-release query failed: %v", err)
	}
	// ...and a cache hit is served even while the server is saturated
	// again: hits bypass admission entirely.
	release2, err := adm.Acquire("occupant")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if _, err := cl.Do(cachedQuery); err != nil {
		t.Fatalf("cache hit shed under load: %v", err)
	}
	if got := cacheStat(t, cl, "qcache.hits"); got != "1" {
		t.Fatalf("hits = %s", got)
	}
}

func TestBusyResponseNotCached(t *testing.T) {
	adm := admit.New(admit.Config{MaxInFlight: 1})
	_, cl, _ := servingFixture(t, adm)
	release, err := adm.Acquire("occupant")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(cachedQuery); !errors.Is(err, admit.ErrBusy) {
		t.Fatalf("err = %v, want BUSY", err)
	}
	release()
	// The BUSY answer must not have been stored as the query's result.
	out, err := cl.Do(cachedQuery)
	if err != nil {
		t.Fatalf("query after shed failed: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestAuthTokenGatesHeavyVerbs(t *testing.T) {
	srv, cl, _ := servingFixture(t, nil)
	srv.SetAuthToken("sekret")
	if _, err := cl.Do(cachedQuery); err == nil || !strings.Contains(err.Error(), "authentication required") {
		t.Fatalf("unauthenticated heavy verb err = %v", err)
	}
	if _, err := cl.Do("PING"); err != nil {
		t.Fatalf("PING locked out: %v", err)
	}
	if _, err := cl.Do("AUTH team-a wrong"); err == nil {
		t.Fatal("bad credentials accepted")
	}
	out, err := cl.Do("AUTH team-a sekret")
	if err != nil || len(out) != 1 || out[0] != "authenticated team-a" {
		t.Fatalf("AUTH = %v, %v", out, err)
	}
	if _, err := cl.Do(cachedQuery); err != nil {
		t.Fatalf("authenticated query failed: %v", err)
	}
}

func TestServeInProcessUsesPipeline(t *testing.T) {
	srv, _, _ := servingFixture(t, nil)
	var b1, b2 strings.Builder
	srv.Serve(cachedQuery, &b1)
	srv.Serve(cachedQuery, &b2)
	if b1.String() != b2.String() {
		t.Fatalf("in-process serve unstable:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	st := srv.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPreparedPlanCacheOverWire(t *testing.T) {
	_, cl, _ := servingFixture(t, nil)
	stmt := "EXPLAIN " + strings.TrimPrefix(cachedQuery, "")
	first, err := cl.Do(stmt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Do(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(first, "\n"), "plan cache hit") {
		t.Fatalf("cold EXPLAIN claimed a cache hit: %v", first)
	}
	if !strings.Contains(strings.Join(second, "\n"), "plan cache hit") {
		t.Fatalf("warm EXPLAIN recompiled: %v", second)
	}
	if got := cacheStat(t, cl, "plancache.hits"); got != "1" {
		t.Fatalf("plancache.hits = %s", got)
	}
}
