package server

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cobra/internal/cobra"
	"cobra/internal/monet"
	"cobra/internal/query"
	"cobra/internal/stream"
)

// liveFeed appends catalog state directly, standing in for the ingest
// loop (the realistic path is exercised by scripts/smoke.sh and the
// query package's equivalence test).
type liveFeed struct {
	cat *cobra.Catalog
	w   float64
	n   int
}

func (f *liveFeed) step(t *testing.T, dt float64) {
	t.Helper()
	f.n++
	from := f.w
	f.w += dt
	_, err := f.cat.AppendEvents("live-gp", []cobra.Event{{
		Video: "live-gp", Type: "passing", Confidence: 1,
		Interval: cobra.Interval{Start: from, End: f.w},
		Attrs:    map[string]string{"driver": fmt.Sprintf("D%d", f.n)},
	}})
	if err != nil {
		t.Fatalf("AppendEvents: %v", err)
	}
	if err := f.cat.SetDuration("live-gp", f.w); err != nil {
		t.Fatalf("SetDuration: %v", err)
	}
}

func streamServer(t *testing.T) (*Client, *stream.Manager, *liveFeed) {
	t.Helper()
	cat := cobra.NewCatalog(monet.NewStore())
	if err := cat.PutVideo(cobra.Video{Name: "live-gp", Duration: 0.1, FPS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetLive("live-gp", true); err != nil {
		t.Fatal(err)
	}
	pre := cobra.NewPreprocessor(cat)
	srv := New(pre, nil)
	mgr := stream.NewManager(query.NewEngine(pre))
	srv.SetStream(mgr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, mgr, &liveFeed{cat: cat}
}

// TestSubscribeOverWire is the streaming acceptance test: a standing
// SUBSCRIBE receives pushed EVENT frames, and the final frame's lines
// are byte-identical to a one-shot COQL response at the same
// watermark. The re-evaluations also appear in TRACEDUMP.
func TestSubscribeOverWire(t *testing.T) {
	cl, mgr, feed := streamServer(t)
	src := "SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')"
	id, err := cl.Subscribe(src)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if id != "s1" {
		t.Fatalf("subscription ID = %q", id)
	}
	// Initial snapshot: no material has aired.
	ev, err := cl.NextEvent(5 * time.Second)
	if err != nil {
		t.Fatalf("initial frame: %v", err)
	}
	if ev.SubID != id || ev.Seq != 1 || len(ev.Lines) != 0 {
		t.Fatalf("initial frame = %+v", ev)
	}
	var last PushEvent
	for i := 0; i < 3; i++ {
		feed.step(t, 5.0)
		mgr.Advance(context.Background())
		last, err = cl.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i+2, err)
		}
		if last.Seq != i+2 || last.Watermark != feed.w {
			t.Fatalf("frame = %+v, want seq %d at watermark %g", last, i+2, feed.w)
		}
	}
	if len(last.Lines) != 3 {
		t.Fatalf("final frame has %d lines, want 3: %v", len(last.Lines), last.Lines)
	}

	// Byte-identity with a one-shot query at the same watermark, over a
	// second connection so no frames interleave.
	cl2, err := Dial(cl.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	oneShot, err := cl2.Do("COQL " + src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	if strings.Join(oneShot, "\n") != strings.Join(last.Lines, "\n") {
		t.Fatalf("push/one-shot mismatch:\npush:     %v\none-shot: %v", last.Lines, oneShot)
	}

	// Standing-query re-evaluations are traced.
	dump, err := cl2.Do("TRACEDUMP")
	if err != nil {
		t.Fatalf("TRACEDUMP: %v", err)
	}
	found := false
	for _, l := range dump {
		if strings.Contains(l, "SUBSCRIBE[s1] "+src) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no stream.eval trace in TRACEDUMP:\n%s", strings.Join(dump, "\n"))
	}
}

// TestUnsubscribeOverWire cancels a standing query and checks frames
// stop and foreign IDs are rejected.
func TestUnsubscribeOverWire(t *testing.T) {
	cl, mgr, feed := streamServer(t)
	id, err := cl.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := cl.NextEvent(5 * time.Second); err != nil {
		t.Fatalf("initial frame: %v", err)
	}
	if _, err := cl.Do("UNSUBSCRIBE " + id); err != nil {
		t.Fatalf("UNSUBSCRIBE: %v", err)
	}
	if _, err := cl.Do("UNSUBSCRIBE " + id); err == nil {
		t.Fatal("double UNSUBSCRIBE succeeded")
	}
	if _, err := cl.Do("UNSUBSCRIBE nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
	feed.step(t, 5.0)
	if n := mgr.Advance(context.Background()); n != 0 {
		t.Fatalf("Advance pushed %d notifications after UNSUBSCRIBE", n)
	}
	if got := len(mgr.List()); got != 0 {
		t.Fatalf("%d subscriptions left", got)
	}
}

// TestSubscriptionsListing lists active standing queries.
func TestSubscriptionsListing(t *testing.T) {
	cl, _, _ := streamServer(t)
	if _, err := cl.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := cl.NextEvent(5 * time.Second); err != nil {
		t.Fatalf("initial frame: %v", err)
	}
	out, err := cl.Do("SUBSCRIPTIONS")
	if err != nil {
		t.Fatalf("SUBSCRIPTIONS: %v", err)
	}
	if len(out) != 1 || !strings.HasPrefix(out[0], "s1 dropped=0 SELECT") {
		t.Fatalf("listing = %v", out)
	}
}

// TestDisconnectCleansSubscriptions closes a subscribed connection and
// waits for its standing queries to be dropped.
func TestDisconnectCleansSubscriptions(t *testing.T) {
	cl, mgr, _ := streamServer(t)
	if _, err := cl.Subscribe("SELECT SEGMENTS FROM live-gp WHERE EVENT('passing')"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(mgr.List()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d subscriptions still registered after disconnect", len(mgr.List()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamingDisabled pins the error answers without a manager.
func TestStreamingDisabled(t *testing.T) {
	_, cl := testServer(t)
	for _, cmd := range []string{"SUBSCRIBE SELECT SEGMENTS FROM v", "UNSUBSCRIBE s1", "SUBSCRIPTIONS"} {
		if _, err := cl.Do(cmd); err == nil || !strings.Contains(err.Error(), "streaming disabled") {
			t.Fatalf("%s: err = %v, want streaming disabled", cmd, err)
		}
	}
}
