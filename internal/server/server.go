// Package server exposes the Cobra VDBMS over a line-oriented TCP
// protocol: COQL queries at the conceptual level, MIL statements at
// the physical level, and remote HMM evaluation in the style of the
// paper's distributed HMM servers (Fig. 3).
//
// Protocol: one request per line.
//
//	COQL <statement>      -> "OK <n>" then n result lines, then "END"
//	MIL <statement(s)>    -> "OK 1", the value, "END"
//	HMM EVAL <model> <c,s,v>  -> "OK 1", log-likelihood, "END"
//	HMM CLASSIFY <c,s,v>      -> "OK 1", best model name, "END"
//	LIST VIDEOS           -> videos known to the catalog
//	EXPORT <video>        -> MPEG-7-style metadata XML
//	PING                  -> "OK 0", "END"
//
// Errors answer "ERR <message>".
package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"cobra/internal/cobra"
	"cobra/internal/ext"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/query"
)

// Server serves the database over TCP.
type Server struct {
	eng    *query.Engine
	cat    *cobra.Catalog
	interp *mil.Interp
	pool   *hmm.EnginePool

	mu       sync.Mutex
	listener net.Listener
}

// New builds a server over the preprocessor (COQL), its catalog's
// store (MIL) and an optional HMM pool (nil disables HMM commands).
// When a pool is attached, the MIL session gains the Fig. 4 extension
// operations (hmmOneCall, hmmClassify).
func New(pre *cobra.Preprocessor, pool *hmm.EnginePool) *Server {
	interp := mil.NewInterp(pre.Catalog().Store())
	if pool != nil {
		ext.RegisterHMM(interp, pool)
	}
	return &Server{
		eng:    query.NewEngine(pre),
		cat:    pre.Catalog(),
		interp: interp,
		pool:   pool,
	}
}

// Listen binds the address and starts serving until the listener is
// closed. It returns the bound address immediately via the channel
// pattern: callers use ListenAddr.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	err := s.listener.Close()
	s.listener = nil
	return err
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Fprintln(w, "OK 0")
			fmt.Fprintln(w, "END")
			w.Flush()
			return
		}
		s.Execute(line, w)
		w.Flush()
	}
}

// Execute runs one protocol line, writing the response to w. Exposed
// for in-process use and testing.
func (s *Server) Execute(line string, w io.Writer) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintln(w, "OK 0")
		fmt.Fprintln(w, "END")
	case "COQL", "SELECT", "RETRIEVE":
		stmt := rest
		if !strings.EqualFold(cmd, "COQL") {
			stmt = line // SELECT/RETRIEVE given directly
		}
		res, err := s.eng.Run(stmt)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d\n", len(res))
		for _, r := range res {
			fmt.Fprintf(w, "%.1f %.1f %.3f %s\n", r.Interval.Start, r.Interval.End, r.Confidence, encodeAttrs(r.Attrs))
		}
		fmt.Fprintln(w, "END")
	case "MIL":
		v, err := s.interp.Exec(rest)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintln(w, v.String())
		fmt.Fprintln(w, "END")
	case "HMM":
		s.execHMM(rest, w)
	case "EXPORT":
		video := strings.TrimSpace(rest)
		out, err := cobra.ExportMPEG7(s.cat, video)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
		fmt.Fprintf(w, "OK %d\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, "END")
	case "LIST":
		if strings.EqualFold(strings.TrimSpace(rest), "videos") {
			videos := s.cat.Videos()
			fmt.Fprintf(w, "OK %d\n", len(videos))
			for _, v := range videos {
				fmt.Fprintln(w, v)
			}
			fmt.Fprintln(w, "END")
			return
		}
		fmt.Fprintln(w, "ERR unknown LIST target")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
}

func (s *Server) execHMM(rest string, w io.Writer) {
	if s.pool == nil {
		fmt.Fprintln(w, "ERR no HMM pool attached")
		return
	}
	op, args, _ := strings.Cut(strings.TrimSpace(rest), " ")
	switch strings.ToUpper(op) {
	case "EVAL":
		model, obsCSV, ok := strings.Cut(strings.TrimSpace(args), " ")
		if !ok {
			fmt.Fprintln(w, "ERR usage: HMM EVAL <model> <obs,csv>")
			return
		}
		obs, err := parseObs(obsCSV)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		evals, err := s.pool.EvaluateAll(obs)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		for _, e := range evals {
			if e.Model == model {
				fmt.Fprintln(w, "OK 1")
				fmt.Fprintf(w, "%g\n", e.LogLikelihood)
				fmt.Fprintln(w, "END")
				return
			}
		}
		fmt.Fprintf(w, "ERR unknown model %q\n", model)
	case "CLASSIFY":
		obs, err := parseObs(strings.TrimSpace(args))
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		best, err := s.pool.Classify(obs)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintln(w, best)
		fmt.Fprintln(w, "END")
	default:
		fmt.Fprintf(w, "ERR unknown HMM operation %q\n", op)
	}
}

func parseObs(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	obs := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad observation %q", p)
		}
		obs = append(obs, v)
	}
	return obs, nil
}

func encodeAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(attrs))
	for k, v := range attrs {
		parts = append(parts, k+"="+v)
	}
	// Stable output for tests and scripts.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// Client is a minimal protocol client for the shell and tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Do sends one request line and collects the response body.
func (c *Client) Do(line string) ([]string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return nil, err
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	head = strings.TrimSpace(head)
	if strings.HasPrefix(head, "ERR ") {
		return nil, fmt.Errorf("server: %s", strings.TrimPrefix(head, "ERR "))
	}
	var out []string
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		l = strings.TrimRight(l, "\n")
		if l == "END" {
			return out, nil
		}
		out = append(out, l)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
