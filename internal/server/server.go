// Package server exposes the Cobra VDBMS over a line-oriented TCP
// protocol: COQL queries at the conceptual level, MIL statements at
// the physical level, and remote HMM evaluation in the style of the
// paper's distributed HMM servers (Fig. 3).
//
// Protocol: one request per line.
//
//	COQL <statement>      -> "OK <n>" then n result lines, then "END"
//	MIL <statement(s)>    -> "OK 1", the value, "END"
//	CHECK <mil>           -> static verification: diagnostics, or "program OK"
//	EXPLAIN <coql>        -> the verified MIL access plan for the statement
//	EXPLAIN ANALYZE <coql> -> the plan, then the executed trace with access paths
//	INDEXINFO <bat>       -> adaptive index state of a stored BAT
//	HMM EVAL <model> <c,s,v>  -> "OK 1", log-likelihood, "END"
//	HMM CLASSIFY <c,s,v>      -> "OK 1", best model name, "END"
//	LIST VIDEOS           -> videos known to the catalog
//	EXPORT <video>        -> MPEG-7-style metadata XML
//	STATS                 -> telemetry counters, gauges and latency quantiles
//	TRACE <statement>     -> run the COQL statement, return its span tree
//	TRACEDUMP [id [CHROME]] -> recent completed traces; one trace's resources
//	                         and span tree; or its Chrome trace-event JSON
//	SLOWLOG               -> slow queries with trace IDs and full span trees
//	CHECKPOINT            -> force a durability checkpoint (WAL truncation)
//	SUBSCRIBE <coql>      -> register a standing query; matches are pushed
//	                         asynchronously as EVENT frames (see below)
//	UNSUBSCRIBE <id>      -> cancel one of this connection's subscriptions
//	SUBSCRIPTIONS         -> list active subscriptions
//	AUTH <tenant> [token] -> name the connection (gates, rate limits);
//	                         unlocks heavy verbs when a token is required
//	CACHESTATS            -> result-cache and plan-cache counters
//	GATES [SET <f> <v>]   -> list feature gates; flip one at runtime
//	PING                  -> "OK 0", "END"
//
// Every request line flows through the serving middleware chain
// (auth -> gate -> cache -> admit -> execute; see middleware.go).
// One-shot COQL responses may be served from the semantic result
// cache — byte-identical to execution and invalidated by dependency
// epoch, never stale. An overloaded server answers heavy requests
// with a one-line "BUSY <reason>" frame instead of queuing them.
//
// A subscribed connection additionally receives asynchronous push
// frames between responses, never inside one:
//
//	EVENT <subID> <seq> <watermark> <n>
//	<n result lines, as a COQL response>
//	END
//
// Each frame carries the standing query's full current result set at
// the watermark — byte-identical to a one-shot COQL response at that
// point — so the latest frame always supersedes earlier ones.
//
// Errors answer "ERR <message>". The full wire protocol, with framing
// and examples, is specified in docs/PROTOCOL.md.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cobra/internal/admit"
	"cobra/internal/cobra"
	"cobra/internal/ext"
	"cobra/internal/gate"
	"cobra/internal/hmm"
	"cobra/internal/mil"
	"cobra/internal/milcheck"
	"cobra/internal/obs"
	"cobra/internal/qcache"
	"cobra/internal/query"
	"cobra/internal/stream"
)

// Protocol-level metrics.
var (
	cRequests    = obs.C("server.requests")
	cConnections = obs.C("server.connections")
	cCheckpoints = obs.C("server.checkpoint_requests")
)

// Checkpointer forces a durability checkpoint: snapshot the store,
// flip the snapshot pointer, truncate the write-ahead log. The wal
// package's Manager implements it; a server without one rejects the
// CHECKPOINT command.
type Checkpointer interface {
	// Checkpoint blocks until the checkpoint is durable.
	Checkpoint() error
}

// ErrServerClosed is returned by Close and Listen after the server has
// already been shut down.
var ErrServerClosed = errors.New("server: already closed")

// Server serves the database over TCP.
type Server struct {
	eng    *query.Engine
	cat    *cobra.Catalog
	interp *mil.Interp
	pool   *hmm.EnginePool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	cp     Checkpointer
	stream *stream.Manager

	// Serving pipeline state (see middleware.go): the semantic result
	// cache, the prepared-plan cache behind EXPLAIN, the admission
	// controller, the feature-gate registry, and the optional shared
	// auth token.
	cache     *qcache.Cache
	planCache *query.PlanCache
	adm       *admit.Controller
	gates     *gate.Registry
	authToken string

	inprocOnce sync.Once
	inproc     Handler
}

// New builds a server over the preprocessor (COQL), its catalog's
// store (MIL) and an optional HMM pool (nil disables HMM commands).
// When a pool is attached, the MIL session gains the Fig. 4 extension
// operations (hmmOneCall, hmmClassify).
func New(pre *cobra.Preprocessor, pool *hmm.EnginePool) *Server {
	interp := mil.NewInterp(pre.Catalog().Store())
	if pool != nil {
		ext.RegisterHMM(interp, pool)
	}
	gates := gate.NewRegistry()
	gates.Register(GateQueryCache, true)
	gates.Register(GateAdmission, true)
	gates.Register(GateMIL, true)
	return &Server{
		eng:       query.NewEngine(pre),
		cat:       pre.Catalog(),
		interp:    interp,
		pool:      pool,
		planCache: query.NewPlanCache(0),
		gates:     gates,
	}
}

// SetCache attaches the semantic result cache. Call before Listen;
// without one COQL queries always execute.
func (s *Server) SetCache(c *qcache.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// Cache returns the attached result cache (nil if none).
func (s *Server) Cache() *qcache.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache
}

// SetAdmission attaches the admission controller. Call before Listen;
// without one every request is admitted.
func (s *Server) SetAdmission(a *admit.Controller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adm = a
}

// Admission returns the attached admission controller (nil if none).
func (s *Server) Admission() *admit.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm
}

// SetAuthToken requires connections to authenticate (AUTH <tenant>
// <token>) before heavy verbs are served. Empty disables the check.
func (s *Server) SetAuthToken(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authToken = token
}

// Gates returns the server's feature-gate registry, live for runtime
// flips (also reachable over the wire via GATES SET).
func (s *Server) Gates() *gate.Registry { return s.gates }

// SetCheckpointer attaches the durability subsystem serving the
// CHECKPOINT command. Call before Listen; a nil (or absent)
// checkpointer makes CHECKPOINT answer an error.
func (s *Server) SetCheckpointer(cp Checkpointer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp = cp
}

// SetStream attaches the subscription manager serving SUBSCRIBE /
// UNSUBSCRIBE / SUBSCRIPTIONS. Call before Listen; without one the
// streaming verbs answer an error.
func (s *Server) SetStream(m *stream.Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stream = m
}

// Stream returns the attached subscription manager (nil if none).
func (s *Server) Stream() *stream.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream
}

// Listen binds the address and starts serving until the listener is
// closed. It returns the bound address immediately via the channel
// pattern: callers use ListenAddr.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.mu.Unlock()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr(), nil
}

// Close shuts the server down: it stops the listener, unblocks every
// connection's pending read so in-flight handlers finish their current
// request and drain, and waits for all of them to exit before
// returning. A second Close returns ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
		s.listener = nil
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Expire pending reads instead of closing the connections outright:
	// a handler mid-request finishes and flushes its response, then its
	// next read fails and it exits, closing the connection itself.
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return err
}

// track registers a live connection, reporting false once the server
// is closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = map[net.Conn]struct{}{}
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		cConnections.Inc()
		go func() {
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// connState is the per-connection write side: command responses and
// asynchronous push frames share the writer, serialized by mu so a
// frame never interleaves inside a response.
type connState struct {
	mu sync.Mutex
	w  *bufio.Writer
	// pushers counts this connection's frame-push goroutines.
	pushers sync.WaitGroup
	// tenant and authed are the connection's AUTH identity; guarded by
	// mu like the writer (requests on one connection are serial).
	tenant string
	authed bool
}

func (s *Server) handle(conn net.Conn) {
	st := &connState{w: bufio.NewWriter(conn)}
	defer conn.Close()
	defer func() {
		// Cancel the connection's standing queries, then let the pushers
		// drain and exit before the connection closes under them.
		if m := s.Stream(); m != nil {
			m.UnsubscribeOwner(conn)
		}
		st.pushers.Wait()
	}()
	// Every request line flows through the serving pipeline; the
	// terminal handler knows the connection-scoped streaming verbs.
	chain := s.buildChain(func(req *Request, w io.Writer) {
		if !s.execStream(conn, st, req.Line) {
			s.ExecuteCtx(req.Ctx, req.Line, w)
		}
	})
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			st.mu.Lock()
			fmt.Fprintln(st.w, "OK 0")
			fmt.Fprintln(st.w, "END")
			st.w.Flush()
			st.mu.Unlock()
			return
		}
		st.mu.Lock()
		if cmd, rest, _ := strings.Cut(line, " "); strings.EqualFold(cmd, "AUTH") {
			s.execAuth(st, rest)
		} else {
			chain(newRequest(context.Background(), line, st.tenant, st.authed), st.w)
		}
		st.w.Flush()
		st.mu.Unlock()
	}
}

// execAuth serves the connection-scoped AUTH verb: "AUTH <tenant>
// [token]" names the connection for gates, rate limits and cache ramp
// decisions, and — when the server requires a token — unlocks the
// heavy verbs. Called with st.mu held.
func (s *Server) execAuth(st *connState, rest string) {
	cRequests.Inc()
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		fmt.Fprintln(st.w, "ERR usage: AUTH <tenant> [token]")
		return
	}
	s.mu.Lock()
	want := s.authToken
	s.mu.Unlock()
	if want != "" && (len(fields) < 2 || fields[1] != want) {
		fmt.Fprintln(st.w, "ERR bad credentials")
		return
	}
	st.tenant = fields[0]
	st.authed = true
	writeLines(st.w, []string{"authenticated " + st.tenant})
}

// execStream handles the connection-scoped streaming verbs; it
// reports false when the line is not one of them (the generic
// dispatcher takes over). Called with st.mu held.
func (s *Server) execStream(conn net.Conn, st *connState, line string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "SUBSCRIBE":
		cRequests.Inc()
		m := s.Stream()
		if m == nil {
			fmt.Fprintln(st.w, "ERR streaming disabled (no subscription manager attached)")
			return true
		}
		stmt := strings.TrimSpace(rest)
		if stmt == "" {
			fmt.Fprintln(st.w, "ERR usage: SUBSCRIBE <coql statement>")
			return true
		}
		sub, err := m.Subscribe(stmt, conn)
		if err != nil {
			fmt.Fprintf(st.w, "ERR %v\n", err)
			return true
		}
		writeLines(st.w, []string{sub.ID})
		// The pusher starts while the response is still being written
		// (st.mu is held), so the SUBSCRIBE reply always precedes the
		// subscription's first frame.
		st.pushers.Add(1)
		go func() {
			defer st.pushers.Done()
			for {
				n, ok := sub.Next()
				if !ok {
					return
				}
				st.mu.Lock()
				fmt.Fprintf(st.w, "EVENT %s %d %g %d\n", n.SubID, n.Seq, n.Watermark, len(n.Lines))
				for _, l := range n.Lines {
					fmt.Fprintln(st.w, l)
				}
				fmt.Fprintln(st.w, "END")
				st.w.Flush()
				st.mu.Unlock()
			}
		}()
		return true
	case "UNSUBSCRIBE":
		cRequests.Inc()
		m := s.Stream()
		if m == nil {
			fmt.Fprintln(st.w, "ERR streaming disabled (no subscription manager attached)")
			return true
		}
		id := strings.TrimSpace(rest)
		sub, ok := m.Get(id)
		if !ok || sub.Owner != conn {
			fmt.Fprintf(st.w, "ERR no subscription %q on this connection\n", id)
			return true
		}
		m.Unsubscribe(id)
		writeLines(st.w, []string{id + " unsubscribed"})
		return true
	}
	return false
}

// Execute runs one protocol line, writing the response to w. Exposed
// for in-process use and testing.
func (s *Server) Execute(line string, w io.Writer) {
	s.ExecuteCtx(context.Background(), line, w)
}

// ExecuteCtx runs one protocol line under a context. Requests that do
// work (COQL, MIL) become traces: the engine or server assigns a trace
// ID, threads the trace handle down the stack, and pushes the
// completed span tree into obs.DefaultTraces for TRACEDUMP.
func (s *Server) ExecuteCtx(ctx context.Context, line string, w io.Writer) {
	cRequests.Inc()
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintln(w, "OK 0")
		fmt.Fprintln(w, "END")
	case "COQL", "SELECT", "RETRIEVE":
		stmt := rest
		if !strings.EqualFold(cmd, "COQL") {
			stmt = line // SELECT/RETRIEVE given directly
		}
		res, _, err := s.eng.RunTracedCtx(ctx, stmt)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d\n", len(res))
		for _, r := range res {
			fmt.Fprintln(w, query.FormatResult(r))
		}
		fmt.Fprintln(w, "END")
	case "MIL":
		v, err := s.execMILTraced(ctx, rest)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintln(w, v.String())
		fmt.Fprintln(w, "END")
	case "CHECK":
		stmt := strings.TrimSpace(rest)
		if stmt == "" {
			fmt.Fprintln(w, "ERR usage: CHECK <mil statement(s)>")
			return
		}
		diags, err := milcheck.CheckSource(stmt, s.checkOptions())
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if len(diags) == 0 {
			writeLines(w, []string{"program OK"})
			return
		}
		lines := make([]string, len(diags))
		for i, d := range diags {
			lines[i] = d.String()
		}
		writeLines(w, lines)
	case "EXPLAIN":
		stmt := strings.TrimSpace(rest)
		if stmt == "" {
			fmt.Fprintln(w, "ERR usage: EXPLAIN [ANALYZE] <coql statement>")
			return
		}
		if fields := strings.Fields(stmt); len(fields) > 0 && strings.EqualFold(fields[0], "ANALYZE") {
			stmt = strings.TrimSpace(stmt[len(fields[0]):])
			if stmt == "" {
				fmt.Fprintln(w, "ERR usage: EXPLAIN ANALYZE <coql statement>")
				return
			}
			ex, res, span, err := s.eng.ExplainAnalyze(stmt)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				return
			}
			lines := strings.Split(strings.TrimRight(ex.String(), "\n"), "\n")
			lines = append(lines, fmt.Sprintf("# executed: %d segments", len(res)))
			lines = append(lines, strings.Split(strings.TrimRight(span.Render(), "\n"), "\n")...)
			writeLines(w, lines)
			return
		}
		ex, cached, err := s.explain(stmt)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		lines := strings.Split(strings.TrimRight(ex.String(), "\n"), "\n")
		if cached {
			lines = append(lines, "# plan: prepared (plan cache hit)")
		}
		writeLines(w, lines)
	case "INDEXINFO":
		name := strings.TrimSpace(rest)
		if name == "" {
			fmt.Fprintln(w, "ERR usage: INDEXINFO <bat name>")
			return
		}
		b, err := s.cat.Store().IndexInfo(name)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		lines := make([]string, b.Len())
		for i := 0; i < b.Len(); i++ {
			lines[i] = b.Head(i).Str() + " " + b.Tail(i).Str()
		}
		writeLines(w, lines)
	case "HMM":
		s.execHMM(rest, w)
	case "EXPORT":
		video := strings.TrimSpace(rest)
		out, err := cobra.ExportMPEG7(s.cat, video)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
		fmt.Fprintf(w, "OK %d\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, "END")
	case "STATS":
		var sb strings.Builder
		if err := obs.Default.WriteText(&sb); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		writeLines(w, strings.Split(strings.TrimRight(sb.String(), "\n"), "\n"))
	case "TRACE":
		stmt := strings.TrimSpace(rest)
		if stmt == "" {
			fmt.Fprintln(w, "ERR usage: TRACE <coql statement>")
			return
		}
		res, span, err := s.eng.RunTraced(stmt)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		lines := []string{fmt.Sprintf("# %d segments", len(res))}
		lines = append(lines, strings.Split(strings.TrimRight(span.Render(), "\n"), "\n")...)
		writeLines(w, lines)
	case "CHECKPOINT":
		cCheckpoints.Inc()
		s.mu.Lock()
		cp := s.cp
		s.mu.Unlock()
		if cp == nil {
			fmt.Fprintln(w, "ERR durability disabled (start the server with -data-dir)")
			return
		}
		start := time.Now()
		if err := cp.Checkpoint(); err != nil {
			fmt.Fprintf(w, "ERR checkpoint: %v\n", err)
			return
		}
		writeLines(w, []string{fmt.Sprintf("checkpoint complete in %v", time.Since(start).Round(time.Millisecond))})
	case "CACHESTATS":
		s.execCacheStats(w)
	case "GATES":
		s.execGates(rest, w)
	case "AUTH":
		// Reached only without a connection (in-process Execute); the
		// connection handler owns AUTH because it mutates conn state.
		fmt.Fprintln(w, "ERR AUTH requires a client connection")
	case "TRACEDUMP":
		s.execTraceDump(rest, w)
	case "SLOWLOG":
		entries := obs.DefaultSlowLog.Entries()
		lines := make([]string, 0, len(entries)+1)
		lines = append(lines, fmt.Sprintf("# threshold %v", obs.DefaultSlowLog.Threshold()))
		for _, e := range entries {
			head := fmt.Sprintf("%s %v", e.When.Format(time.RFC3339), e.Duration)
			if e.TraceID != "" {
				head += " trace=" + e.TraceID
			}
			lines = append(lines, head+" "+e.Query)
			if e.Root != nil {
				for _, l := range strings.Split(strings.TrimRight(e.Root.Render(), "\n"), "\n") {
					lines = append(lines, "  "+l)
				}
			}
		}
		writeLines(w, lines)
	case "SUBSCRIPTIONS":
		m := s.Stream()
		if m == nil {
			fmt.Fprintln(w, "ERR streaming disabled (no subscription manager attached)")
			return
		}
		subs := m.List()
		sort.Slice(subs, func(i, j int) bool { return subNum(subs[i].ID) < subNum(subs[j].ID) })
		lines := make([]string, len(subs))
		for i, sub := range subs {
			lines[i] = fmt.Sprintf("%s dropped=%d %s", sub.ID, sub.Dropped(), sub.Query)
		}
		writeLines(w, lines)
	case "SUBSCRIBE", "UNSUBSCRIBE":
		// Reached only without a connection (in-process Execute); the
		// connection handler intercepts these verbs first.
		fmt.Fprintf(w, "ERR %s requires a client connection\n", strings.ToUpper(cmd))
	case "LIST":
		if strings.EqualFold(strings.TrimSpace(rest), "videos") {
			videos := s.cat.Videos()
			fmt.Fprintf(w, "OK %d\n", len(videos))
			for _, v := range videos {
				fmt.Fprintln(w, v)
			}
			fmt.Fprintln(w, "END")
			return
		}
		fmt.Fprintln(w, "ERR unknown LIST target")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
}

// explain compiles a COQL statement through the prepared-plan cache
// when one is attached, falling back to direct compilation.
func (s *Server) explain(stmt string) (*query.Explanation, bool, error) {
	if s.planCache != nil {
		return s.planCache.Explain(s.eng, stmt)
	}
	ex, err := s.eng.Explain(stmt)
	return ex, false, err
}

// execCacheStats serves CACHESTATS: the result cache's counters and
// the prepared-plan cache's hit rate, one "name value" pair per line
// in the same dotted namespace the /metrics endpoint exports.
func (s *Server) execCacheStats(w io.Writer) {
	cache := s.Cache()
	if cache == nil {
		fmt.Fprintln(w, "ERR result cache disabled (start the server with -qcache-bytes)")
		return
	}
	st := cache.Stats()
	lines := []string{
		fmt.Sprintf("qcache.hits %d", st.Hits),
		fmt.Sprintf("qcache.misses %d", st.Misses),
		fmt.Sprintf("qcache.singleflight_waits %d", st.SingleflightWaits),
		fmt.Sprintf("qcache.evictions %d", st.Evictions),
		fmt.Sprintf("qcache.invalidations %d", st.Invalidations),
		fmt.Sprintf("qcache.entries %d", st.Entries),
		fmt.Sprintf("qcache.bytes %d", st.Bytes),
		fmt.Sprintf("qcache.max_bytes %d", st.MaxBytes),
	}
	if s.planCache != nil {
		hits, misses, entries := s.planCache.Stats()
		lines = append(lines,
			fmt.Sprintf("plancache.hits %d", hits),
			fmt.Sprintf("plancache.misses %d", misses),
			fmt.Sprintf("plancache.entries %d", entries),
		)
	}
	writeLines(w, lines)
}

// execGates serves the GATES verb: bare GATES lists every flag with
// its live state and registered default; "GATES SET <name> <value>"
// flips one at runtime (on, off, or "NN%" for a percentage ramp).
func (s *Server) execGates(rest string, w io.Writer) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		flags := s.gates.List()
		lines := make([]string, len(flags))
		for i, f := range flags {
			def := "off"
			if f.Default() {
				def = "on"
			}
			lines[i] = fmt.Sprintf("%s %s default=%s", f.Name(), f.State(), def)
		}
		writeLines(w, lines)
		return
	}
	if len(fields) != 3 || !strings.EqualFold(fields[0], "SET") {
		fmt.Fprintln(w, "ERR usage: GATES [SET <flag> <on|off|NN%>]")
		return
	}
	if err := s.gates.Set(fields[1], fields[2]); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	writeLines(w, []string{fields[1] + " " + s.gates.Lookup(fields[1]).State()})
}

// execMILTraced runs one MIL request as its own trace ("mil.request"):
// the span handle rides ctx into the interpreter and the kernel, and
// the completed trace lands in obs.DefaultTraces like a COQL query.
func (s *Server) execMILTraced(ctx context.Context, src string) (mil.Value, error) {
	root := obs.StartTrace("mil.request")
	root.SetAttr("level", "physical")
	root.SetAttr("query", src)
	v, err := s.interp.ExecCtx(obs.ContextWithSpan(ctx, root), src)
	errStr := ""
	if err != nil {
		errStr = err.Error()
		root.SetAttr("error", errStr)
	}
	stat := root.Resources().Stat()
	root.SetAttr("resources", stat.String())
	d := root.Finish()
	obs.DefaultTraces.Add(obs.Trace{
		ID:       root.TraceID(),
		Query:    src,
		Start:    root.StartTime(),
		Duration: d,
		Err:      errStr,
		Res:      stat,
		Root:     root,
	})
	return v, err
}

// execTraceDump serves the TRACEDUMP verb. Bare TRACEDUMP lists the
// trace ring newest first; TRACEDUMP <id> prints one trace's resource
// attribution and span tree; TRACEDUMP <id> CHROME prints the trace as
// one line of Chrome trace-event JSON for about:tracing / Perfetto.
func (s *Server) execTraceDump(rest string, w io.Writer) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		traces := obs.DefaultTraces.Recent()
		lines := make([]string, 0, len(traces)+1)
		lines = append(lines, fmt.Sprintf("# %d traces", len(traces)))
		for _, t := range traces {
			l := fmt.Sprintf("%s %s %v %s", t.ID, t.Start.Format(time.RFC3339), t.Duration, t.Query)
			if t.Err != "" {
				l += " [error: " + t.Err + "]"
			}
			lines = append(lines, l)
		}
		writeLines(w, lines)
		return
	}
	t, ok := obs.DefaultTraces.Get(fields[0])
	if !ok {
		fmt.Fprintf(w, "ERR no trace %q (see TRACEDUMP for recent IDs)\n", fields[0])
		return
	}
	if len(fields) > 1 && strings.EqualFold(fields[1], "CHROME") {
		out, err := obs.ChromeTraceJSON(t.Root)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		writeLines(w, []string{string(out)})
		return
	}
	lines := []string{
		fmt.Sprintf("# trace %s %s %v", t.ID, t.Start.Format(time.RFC3339), t.Duration),
		"# query " + t.Query,
		"# " + t.Res.String(),
	}
	lines = append(lines, strings.Split(strings.TrimRight(t.Root.Render(), "\n"), "\n")...)
	writeLines(w, lines)
}

// checkOptions builds the verification context for CHECK: the live
// session's globals and registered procs are in scope (typed Any —
// their values are only known at run time), extension operations carry
// their real signatures, and bat() calls resolve against the store.
func (s *Server) checkOptions() *milcheck.Options {
	opts := &milcheck.Options{
		Globals:    map[string]milcheck.VType{},
		Funcs:      milcheck.ExtensionSigs(),
		KnownFuncs: s.interp.BuiltinNames(),
		ResolveBAT: milcheck.StoreResolver(s.cat.Store()),
	}
	for _, name := range s.interp.GlobalNames() {
		opts.Globals[name] = milcheck.Any()
	}
	for _, name := range s.interp.Procs() {
		opts.KnownFuncs = append(opts.KnownFuncs, name)
	}
	return opts
}

// writeLines emits a standard "OK <n>" body.
func writeLines(w io.Writer, lines []string) {
	fmt.Fprintf(w, "OK %d\n", len(lines))
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) execHMM(rest string, w io.Writer) {
	if s.pool == nil {
		fmt.Fprintln(w, "ERR no HMM pool attached")
		return
	}
	op, args, _ := strings.Cut(strings.TrimSpace(rest), " ")
	switch strings.ToUpper(op) {
	case "EVAL":
		model, obsCSV, ok := strings.Cut(strings.TrimSpace(args), " ")
		if !ok {
			fmt.Fprintln(w, "ERR usage: HMM EVAL <model> <obs,csv>")
			return
		}
		obs, err := parseObs(obsCSV)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		evals, err := s.pool.EvaluateAll(obs)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		for _, e := range evals {
			if e.Model == model {
				fmt.Fprintln(w, "OK 1")
				fmt.Fprintf(w, "%g\n", e.LogLikelihood)
				fmt.Fprintln(w, "END")
				return
			}
		}
		fmt.Fprintf(w, "ERR unknown model %q\n", model)
	case "CLASSIFY":
		obs, err := parseObs(strings.TrimSpace(args))
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		best, err := s.pool.Classify(obs)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintln(w, best)
		fmt.Fprintln(w, "END")
	default:
		fmt.Fprintf(w, "ERR unknown HMM operation %q\n", op)
	}
}

func parseObs(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	obs := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad observation %q", p)
		}
		obs = append(obs, v)
	}
	return obs, nil
}

// subNum orders subscription IDs ("s12") numerically for listings.
func subNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "s"))
	return n
}

// Client is a minimal protocol client for the shell and tests. It is
// push-aware: EVENT frames arriving while a response is awaited are
// buffered and readable via NextEvent. Not safe for concurrent use.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	pending []PushEvent
}

// PushEvent is one asynchronous notification frame: a standing
// query's full result set at a watermark.
type PushEvent struct {
	SubID     string
	Seq       int
	Watermark float64
	Lines     []string
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Do sends one request line and collects the response body. EVENT
// frames interleaved ahead of the response are buffered for NextEvent.
func (c *Client) Do(line string) ([]string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return nil, err
	}
	for {
		head, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		head = strings.TrimSpace(head)
		if strings.HasPrefix(head, "EVENT ") {
			ev, err := c.readFrame(head)
			if err != nil {
				return nil, err
			}
			c.pending = append(c.pending, ev)
			continue
		}
		if strings.HasPrefix(head, "ERR ") {
			return nil, fmt.Errorf("server: %s", strings.TrimPrefix(head, "ERR "))
		}
		if strings.HasPrefix(head, "BUSY ") {
			return nil, fmt.Errorf("server: %w: %s", admit.ErrBusy, strings.TrimPrefix(head, "BUSY "))
		}
		var out []string
		for {
			l, err := c.r.ReadString('\n')
			if err != nil {
				return nil, err
			}
			l = strings.TrimRight(l, "\n")
			if l == "END" {
				return out, nil
			}
			out = append(out, l)
		}
	}
}

// Subscribe registers a standing query and returns its subscription
// ID; matches arrive via NextEvent.
func (c *Client) Subscribe(coql string) (string, error) {
	lines, err := c.Do("SUBSCRIBE " + coql)
	if err != nil {
		return "", err
	}
	if len(lines) != 1 {
		return "", fmt.Errorf("server: unexpected SUBSCRIBE response %q", lines)
	}
	return lines[0], nil
}

// NextEvent returns the next pushed notification, blocking up to
// timeout for one to arrive (0 = block indefinitely).
func (c *Client) NextEvent(timeout time.Duration) (PushEvent, error) {
	if len(c.pending) > 0 {
		ev := c.pending[0]
		c.pending = c.pending[1:]
		return ev, nil
	}
	if timeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return PushEvent{}, err
	}
	head = strings.TrimSpace(head)
	if !strings.HasPrefix(head, "EVENT ") {
		return PushEvent{}, fmt.Errorf("server: expected EVENT frame, got %q", head)
	}
	return c.readFrame(head)
}

// readFrame parses "EVENT <subID> <seq> <watermark> <n>" plus its n
// body lines and trailing END (the head line has been consumed).
func (c *Client) readFrame(head string) (PushEvent, error) {
	f := strings.Fields(head)
	if len(f) != 5 {
		return PushEvent{}, fmt.Errorf("server: malformed frame %q", head)
	}
	seq, err1 := strconv.Atoi(f[2])
	wm, err2 := strconv.ParseFloat(f[3], 64)
	n, err3 := strconv.Atoi(f[4])
	if err1 != nil || err2 != nil || err3 != nil || n < 0 {
		return PushEvent{}, fmt.Errorf("server: malformed frame %q", head)
	}
	ev := PushEvent{SubID: f[1], Seq: seq, Watermark: wm}
	for i := 0; i < n; i++ {
		l, err := c.r.ReadString('\n')
		if err != nil {
			return PushEvent{}, err
		}
		ev.Lines = append(ev.Lines, strings.TrimRight(l, "\n"))
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return PushEvent{}, err
	}
	if strings.TrimSpace(end) != "END" {
		return PushEvent{}, fmt.Errorf("server: frame not END-terminated: %q", end)
	}
	return ev, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
