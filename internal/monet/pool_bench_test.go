package monet

import (
	"context"
	"runtime"
	"testing"
)

// The Benchmark{Serial,Parallel}* pairs below measure the same
// operator bodies with the kernel pool pinned to one worker versus
// widened to at least four, so `go test -bench` shows the morsel
// scheduler's speedup directly; cobra-bench -run micro captures the
// same pairs into BENCH_baseline.json for the CI bench-gate.

func benchWidth() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

func withPoolWidth(b *testing.B, width int, fn func(b *testing.B)) {
	prev := SetDefaultPoolWorkers(width)
	defer SetDefaultPoolWorkers(prev)
	fn(b)
}

func benchIntBAT(n, mod int) *BAT {
	bat := NewBATCap(Void, IntT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(VoidValue(), NewInt(int64(i%mod)))
	}
	return bat
}

func selectBody(b *testing.B) {
	bat := benchIntBAT(1<<20, 1000)
	lo, hi := NewInt(100), NewInt(199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Select(lo, hi)
	}
}

func BenchmarkSerialSelect1M(b *testing.B)   { withPoolWidth(b, 1, selectBody) }
func BenchmarkParallelSelect1M(b *testing.B) { withPoolWidth(b, benchWidth(), selectBody) }

func groupAggBody(b *testing.B) {
	bat := NewBATCap(IntT, IntT, 1<<20)
	for i := 0; i < 1<<20; i++ {
		bat.MustInsert(NewInt(int64(i%64)), NewInt(int64(i%100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.GroupSum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialGroupAgg1M(b *testing.B)   { withPoolWidth(b, 1, groupAggBody) }
func BenchmarkParallelGroupAgg1M(b *testing.B) { withPoolWidth(b, benchWidth(), groupAggBody) }

func joinBody(b *testing.B) {
	const keys = 100_000
	left := benchIntBAT(1<<20, keys)
	right := NewBATCap(IntT, IntT, keys)
	for i := 0; i < keys; i++ {
		right.MustInsert(NewInt(int64(i)), NewInt(int64(i)*2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialJoin1M(b *testing.B)   { withPoolWidth(b, 1, joinBody) }
func BenchmarkParallelJoin1M(b *testing.B) { withPoolWidth(b, benchWidth(), joinBody) }

func sumBody(b *testing.B) {
	bat := benchIntBAT(1<<20, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.Sum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialSum1M(b *testing.B)   { withPoolWidth(b, 1, sumBody) }
func BenchmarkParallelSum1M(b *testing.B) { withPoolWidth(b, benchWidth(), sumBody) }

// benchFusedStore builds the fused-pipeline fixture: "bench/val", a
// 1M-row int column cycling [0, 1000), and "bench/cat", an aligned
// 64-label string column for dictionary-domain grouping.
func benchFusedStore(b *testing.B) *Store {
	store := NewStore()
	n := 1 << 20
	val := NewBATCap(Void, IntT, n)
	cat := NewBATCap(Void, StrT, n)
	labels := make([]Value, 64)
	for i := range labels {
		labels[i] = NewStr("team-" + string(rune('a'+i/8)) + string(rune('a'+i%8)))
	}
	for i := 0; i < n; i++ {
		val.MustInsert(VoidValue(), NewInt(int64(i%1000)))
		cat.MustInsert(VoidValue(), labels[i%64])
	}
	if err := store.Put("bench/val", val); err != nil {
		b.Fatal(err)
	}
	if err := store.Put("bench/cat", cat); err != nil {
		b.Fatal(err)
	}
	return store
}

// unfusedSelectAggBody is the operator-at-a-time baseline the fused
// pipeline is judged against: materialize the filtered BAT, then sum
// the intermediate. Same ~10% selectivity workload as the fused body.
func unfusedSelectAggBody(b *testing.B) {
	bat := benchIntBAT(1<<20, 1000)
	lo, hi := NewInt(100), NewInt(199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.Select(lo, hi).Sum(); err != nil {
			b.Fatal(err)
		}
	}
}

// fusedSelectAggBody runs the fused select→sum pipeline: qualifying
// runs feed the sum per morsel with no materialized intermediate. One
// untimed call warms the store's adaptive index state.
func fusedSelectAggBody(b *testing.B) {
	store := benchFusedStore(b)
	p := store.Pipeline("bench/val", NewInt(100), NewInt(199))
	ctx := context.Background()
	if _, _, err := p.Aggregate(ctx, "bench/val", "sum"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Aggregate(ctx, "bench/val", "sum"); err != nil {
			b.Fatal(err)
		}
	}
}

// dictGroupAggBody runs the fused dictionary-domain grouped sum: an
// ~80%-selective predicate feeding a 64-group sum keyed on int32
// dictionary codes, labels decoded once per group instead of per row.
func dictGroupAggBody(b *testing.B) {
	store := benchFusedStore(b)
	p := store.Pipeline("bench/val", NewInt(100), NewInt(899))
	ctx := context.Background()
	if _, _, err := p.GroupAggregate(ctx, "bench/cat", "bench/val", "sum"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.GroupAggregate(ctx, "bench/cat", "bench/val", "sum"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnfusedSelectAgg1M(b *testing.B) { withPoolWidth(b, 1, unfusedSelectAggBody) }

func BenchmarkFusedSelectAgg1M(b *testing.B)   { withPoolWidth(b, 1, fusedSelectAggBody) }
func BenchmarkFusedSelectAgg1MW4(b *testing.B) { withPoolWidth(b, 4, fusedSelectAggBody) }
func BenchmarkFusedSelectAgg1MW8(b *testing.B) { withPoolWidth(b, 8, fusedSelectAggBody) }

func BenchmarkDictGroupAgg1M(b *testing.B)   { withPoolWidth(b, 1, dictGroupAggBody) }
func BenchmarkDictGroupAgg1MW4(b *testing.B) { withPoolWidth(b, 4, dictGroupAggBody) }
func BenchmarkDictGroupAgg1MW8(b *testing.B) { withPoolWidth(b, 8, dictGroupAggBody) }
