package monet

import (
	"runtime"
	"testing"
)

// The Benchmark{Serial,Parallel}* pairs below measure the same
// operator bodies with the kernel pool pinned to one worker versus
// widened to at least four, so `go test -bench` shows the morsel
// scheduler's speedup directly; cobra-bench -run micro captures the
// same pairs into BENCH_baseline.json for the CI bench-gate.

func benchWidth() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

func withPoolWidth(b *testing.B, width int, fn func(b *testing.B)) {
	prev := SetDefaultPoolWorkers(width)
	defer SetDefaultPoolWorkers(prev)
	fn(b)
}

func benchIntBAT(n, mod int) *BAT {
	bat := NewBATCap(Void, IntT, n)
	for i := 0; i < n; i++ {
		bat.MustInsert(VoidValue(), NewInt(int64(i%mod)))
	}
	return bat
}

func selectBody(b *testing.B) {
	bat := benchIntBAT(1<<20, 1000)
	lo, hi := NewInt(100), NewInt(199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Select(lo, hi)
	}
}

func BenchmarkSerialSelect1M(b *testing.B)   { withPoolWidth(b, 1, selectBody) }
func BenchmarkParallelSelect1M(b *testing.B) { withPoolWidth(b, benchWidth(), selectBody) }

func groupAggBody(b *testing.B) {
	bat := NewBATCap(IntT, IntT, 1<<20)
	for i := 0; i < 1<<20; i++ {
		bat.MustInsert(NewInt(int64(i%64)), NewInt(int64(i%100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.GroupSum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialGroupAgg1M(b *testing.B)   { withPoolWidth(b, 1, groupAggBody) }
func BenchmarkParallelGroupAgg1M(b *testing.B) { withPoolWidth(b, benchWidth(), groupAggBody) }

func joinBody(b *testing.B) {
	const keys = 100_000
	left := benchIntBAT(1<<20, keys)
	right := NewBATCap(IntT, IntT, keys)
	for i := 0; i < keys; i++ {
		right.MustInsert(NewInt(int64(i)), NewInt(int64(i)*2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.Join(right); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialJoin1M(b *testing.B)   { withPoolWidth(b, 1, joinBody) }
func BenchmarkParallelJoin1M(b *testing.B) { withPoolWidth(b, benchWidth(), joinBody) }

func sumBody(b *testing.B) {
	bat := benchIntBAT(1<<20, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.Sum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialSum1M(b *testing.B)   { withPoolWidth(b, 1, sumBody) }
func BenchmarkParallelSum1M(b *testing.B) { withPoolWidth(b, benchWidth(), sumBody) }
