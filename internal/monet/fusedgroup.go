package monet

import (
	"context"
	"fmt"
	"math"

	"cobra/internal/obs"
)

// Fused grouped aggregation and join probes: the select→group→agg and
// select→join-probe shapes of pipeline.go. Grouping runs in the
// integer domain — int/oid/bit group columns key on their raw payload,
// and dict-encoded string columns key on their int32 codes, decoding
// each distinct group label exactly once for the output (dictionary-
// domain execution). Per-morsel group tables live in arena scratch;
// only the exact-size per-morsel partials are allocated.

// fusedGroupPart is one morsel's grouped partial state: the group keys
// in first-occurrence order plus per-group fold values and row counts,
// copied exact-size out of the arena scratch.
type fusedGroupPart struct {
	keys   []int64
	accs   []float64
	counts []int64
}

// dictCodes returns (building on demand) the dictionary codes and keys
// of a stored string column, or nils when the column has no
// dictionary form. It locks only the named column's own index — never
// nested inside another index lock — so pipelines over two columns
// cannot deadlock.
func (s *Store) dictCodes(name string) ([]int32, []string) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, nil
	}
	defer ix.mu.Unlock()
	if _, ok := b.tail.(*strColumn); !ok {
		return nil, nil
	}
	if ix.dict == nil {
		ix.dict = buildDict(b.tail)
		cDictBuilds.Inc()
	}
	if ix.dict == nil {
		return nil, nil
	}
	return ix.dict.codes, ix.dict.keys
}

// GroupAggregate executes select→group→aggregate fused: rows matched
// by the pipeline's predicate are grouped by the named group column
// and the op ("count", "sum", "avg", "min", "max") folds the named
// aggregate column per group, producing the same [group, value] BAT —
// same group order (first occurrence in ascending row order), same
// bits — as gathering both columns through the selected positions and
// running the BAT group operators. The gate falls back to exactly
// that path when it cannot prove identity.
func (p *Pipeline) GroupAggregate(ctx context.Context, group, agg, op string) (*BAT, *FusedInfo, error) {
	gb, err := p.s.Get(group)
	if err != nil {
		return nil, nil, err
	}
	ab, err := p.s.Get(agg)
	if err != nil {
		return nil, nil, err
	}
	// Dict codes are fetched (and built) under the group column's own
	// index lock, released before the predicate index is locked: index
	// locks never nest.
	var codes []int32
	var keyStrs []string
	if gb.TailType() == StrT {
		codes, keyStrs = p.s.dictCodes(group)
	}

	b, ix, err := p.s.capture(p.pred)
	if err != nil {
		return nil, nil, err
	}
	defer ix.mu.Unlock()
	if gb.Len() != b.Len() || ab.Len() != b.Len() {
		return nil, nil, fmt.Errorf("monet: fused group aggregate: misaligned columns %q/%q/%q (%d/%d/%d rows)",
			p.pred, group, agg, b.Len(), gb.Len(), ab.Len())
	}
	cIdxSelects.Inc()
	sp := obs.SpanFromContext(ctx).StartChild("monet.select")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", p.pred)
	defer sp.Finish()

	stages := "select→group[" + op + "]"
	if codes != nil {
		stages = "select→dictgroup[" + op + "]"
	}
	needVal := op != "count"
	var init float64
	var fold func(acc, x float64) float64
	switch op {
	case "count":
	case "sum", "avg":
		fold, init = func(acc, x float64) float64 { return acc + x }, 0
	case "min":
		fold, init = math.Min, math.Inf(1)
	case "max":
		fold, init = math.Max, math.Inf(-1)
	default:
		return nil, nil, fmt.Errorf("monet: fused group aggregate: unknown op %q", op)
	}

	fs, reason := ix.fuseLocked(b.tail, p.lo, p.hi)
	keyAt := intReader(gb.tail)
	if codes != nil && len(codes) == gb.Len() {
		c := codes
		keyAt = func(i int) int64 { return int64(c[i]) }
	}
	if reason == "" && keyAt == nil {
		reason = fmt.Sprintf("unfusable group column type %v", gb.TailType())
	}
	valAt := intReader(ab.tail)
	if reason == "" && needVal && valAt == nil {
		reason = fmt.Sprintf("inexact or non-integer aggregate column %v", ab.TailType())
	}
	if reason != "" {
		out, info, err := p.fallbackGroup(ix, b, gb, ab, op, sp)
		fi := &FusedInfo{Fused: false, Stages: stages, Fallback: reason, Access: info}
		cFusedFallbacks.Inc()
		sp.SetAttr("fused", fi.String())
		return out, fi, err
	}

	// accumulate folds one dense partial (a morsel, or the whole crack
	// answer) into arena scratch sized bound — the largest possible
	// distinct-group count for the ranges it will visit.
	accumulate := func(part *fusedGroupPart, bound int, ranges func(visit func(s, e int))) {
		a := GetArena()
		slots := a.IntSlots()
		keys := a.Int64s(bound)
		counts := a.Int64s(bound)
		var accs []float64
		if needVal {
			accs = a.Floats(bound)
		}
		ng := 0
		ranges(func(s, e int) {
			for i := s; i < e; i++ {
				kk := keyAt(i)
				slot, ok := slots[kk]
				if !ok {
					slot = int32(ng)
					slots[kk] = slot
					keys[ng] = kk
					counts[ng] = 0
					if needVal {
						accs[ng] = init
					}
					ng++
				}
				counts[slot]++
				if needVal {
					accs[slot] = fold(accs[slot], float64(valAt(i)))
				}
			}
		})
		// Copy out of the arena: partials outlive the morsel.
		part.keys = append([]int64(nil), keys[:ng]...)
		part.counts = append([]int64(nil), counts[:ng]...)
		if needVal {
			part.accs = append([]float64(nil), accs[:ng]...)
		}
		PutArena(a)
	}

	var parts []fusedGroupPart
	if fs.pos != nil {
		parts = make([]fusedGroupPart, 1)
		runs := RunsOf(fs.pos)
		cFusedRuns.Add(int64(len(runs)))
		accumulate(&parts[0], len(fs.pos), func(visit func(s, e int)) {
			for _, r := range runs {
				visit(r.Start, r.Start+r.Len)
			}
		})
	} else {
		nm := numMorsels(fs.col.Len())
		if fs.morsels != nil {
			nm = len(fs.morsels)
		}
		parts = make([]fusedGroupPart, nm)
		fs.forEachMorsel(sp, func(k, lo, hi int) {
			accumulate(&parts[k], hi-lo, func(visit func(s, e int)) {
				a := GetArena()
				starts := a.Ints((hi-lo)/2 + 1)
				lens := a.Ints((hi-lo)/2 + 1)
				nr := fs.matchRuns(lo, hi, starts, lens)
				for r := 0; r < nr; r++ {
					visit(starts[r], starts[r]+lens[r])
				}
				PutArena(a)
			})
		})
	}

	// Merge partials in morsel order: global first-occurrence group
	// order equals the serial gathered scan's, whatever the morsel
	// boundaries were.
	a := GetArena()
	gslots := a.IntSlots()
	totalG := 0
	for i := range parts {
		totalG += len(parts[i].keys)
	}
	keys := a.Int64s(totalG)
	counts := a.Int64s(totalG)
	var accs []float64
	if needVal {
		accs = a.Floats(totalG)
	}
	ng := 0
	matched := int64(0)
	for pi := range parts {
		part := &parts[pi]
		for gi, k := range part.keys {
			slot, ok := gslots[k]
			if !ok {
				slot = int32(ng)
				gslots[k] = slot
				keys[ng] = k
				counts[ng] = 0
				if needVal {
					accs[ng] = init
				}
				ng++
			}
			counts[slot] += part.counts[gi]
			if needVal {
				accs[slot] = fold(accs[slot], part.accs[gi])
			}
		}
		for _, c := range part.counts {
			matched += c
		}
	}

	headVal := func(k int64) Value {
		if codes != nil {
			return NewStr(keyStrs[k])
		}
		return typedInt(gb.TailType(), k)
	}
	outTail := FloatT
	if op == "count" {
		outTail = IntT
	}
	out := NewBATCap(materialType(gb.TailType()), outTail, ng)
	for g := 0; g < ng; g++ {
		switch op {
		case "count":
			out.MustInsert(headVal(keys[g]), NewInt(counts[g]))
		case "avg":
			out.MustInsert(headVal(keys[g]), NewFloat(accs[g]/float64(counts[g])))
		default:
			out.MustInsert(headVal(keys[g]), NewFloat(accs[g]))
		}
	}
	PutArena(a)

	fs.info.Matched = int(matched)
	fi := &FusedInfo{Fused: true, Stages: stages, Access: fs.info}
	cFusedPipelines.Inc()
	cFusedRows.Add(matched)
	sp.SetAttr("access", fs.info.String())
	sp.SetAttr("fused", fi.String())
	sp.Resources().AddScanned(scannedRows(fs.info))
	return out, fi, nil
}

// fallbackGroup is the operator-at-a-time reference for GroupAggregate:
// select positions, gather group and aggregate columns, run the BAT
// group operators.
func (p *Pipeline) fallbackGroup(ix *batIndex, b, gb, ab *BAT, op string, sp *obs.Span) (*BAT, *AccessInfo, error) {
	idx, info := ix.selectLocked(b.tail, p.lo, p.hi, sp)
	sp.SetAttr("access", info.String())
	sp.Resources().AddScanned(scannedRows(info))
	wrap := &BAT{head: gb.tail.Gather(idx), tail: ab.tail.Gather(idx)}
	var out *BAT
	var err error
	switch op {
	case "count":
		out, err = wrap.GroupCount()
	case "sum":
		out, err = wrap.GroupSum()
	case "avg":
		out, err = wrap.GroupAvg()
	case "min":
		out, err = wrap.GroupMin()
	case "max":
		out, err = wrap.GroupMax()
	default:
		err = fmt.Errorf("monet: fused group aggregate: unknown op %q", op)
	}
	return out, info, err
}

// JoinProbe executes select→join-probe fused: the rows of the
// pipeline's predicate BAT whose tail qualifies probe the hash index
// of other's head directly, emitting [pred.head, other.tail] match
// pairs morsel-at-a-time without materializing the filtered BAT. The
// result is byte-identical to SelectRange followed by Join.
func (p *Pipeline) JoinProbe(ctx context.Context, other *BAT) (*BAT, *FusedInfo, error) {
	b, ix, err := p.s.capture(p.pred)
	if err != nil {
		return nil, nil, err
	}
	defer ix.mu.Unlock()
	cIdxSelects.Inc()
	sp := obs.SpanFromContext(ctx).StartChild("monet.select")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", p.pred)
	defer sp.Finish()
	stages := "select→probe"

	fs, reason := ix.fuseLocked(b.tail, p.lo, p.hi)
	if reason == "" && !headCompatible(b.tail.Type(), other.head.Type()) {
		return nil, nil, fmt.Errorf("%w: join tail %v with head %v", ErrTypeMismatch, b.tail.Type(), other.head.Type())
	}
	if reason != "" {
		idx, info := ix.selectLocked(b.tail, p.lo, p.hi, sp)
		sp.SetAttr("access", info.String())
		sp.Resources().AddScanned(scannedRows(info))
		filtered := &BAT{head: b.head.Gather(idx), tail: b.tail.Gather(idx)}
		out, err := filtered.Join(other)
		fi := &FusedInfo{Fused: false, Stages: stages, Fallback: reason, Access: info}
		cFusedFallbacks.Inc()
		sp.SetAttr("fused", fi.String())
		return out, fi, err
	}

	opJoin.Inc()
	ht := buildHashIndex(other.head)
	probe := func(lIdx, rIdx *[]int, ranges func(visit func(s, e int))) int {
		matched := 0
		ranges(func(s, e int) {
			for i := s; i < e; i++ {
				matched++
				t := b.tail.Get(i)
				for _, j := range ht.lookup(t) {
					*lIdx = append(*lIdx, i)
					*rIdx = append(*rIdx, j)
				}
			}
		})
		return matched
	}

	var lIdx, rIdx []int
	matched := 0
	if fs.pos != nil {
		runs := RunsOf(fs.pos)
		cFusedRuns.Add(int64(len(runs)))
		matched = probe(&lIdx, &rIdx, func(visit func(s, e int)) {
			for _, r := range runs {
				visit(r.Start, r.Start+r.Len)
			}
		})
	} else {
		nm := numMorsels(fs.col.Len())
		if fs.morsels != nil {
			nm = len(fs.morsels)
		}
		lParts := make([][]int, nm)
		rParts := make([][]int, nm)
		mParts := make([]int, nm)
		fs.forEachMorsel(sp, func(k, lo, hi int) {
			var ls, rs []int
			mParts[k] = probe(&ls, &rs, func(visit func(s, e int)) {
				a := GetArena()
				starts := a.Ints((hi-lo)/2 + 1)
				lens := a.Ints((hi-lo)/2 + 1)
				nr := fs.matchRuns(lo, hi, starts, lens)
				for r := 0; r < nr; r++ {
					visit(starts[r], starts[r]+lens[r])
				}
				PutArena(a)
			})
			lParts[k], rParts[k] = ls, rs
		})
		total := 0
		for _, part := range lParts {
			total += len(part)
		}
		lIdx = make([]int, 0, total)
		rIdx = make([]int, 0, total)
		for m := range lParts {
			lIdx = append(lIdx, lParts[m]...)
			rIdx = append(rIdx, rParts[m]...)
			matched += mParts[m]
		}
	}

	out := &BAT{head: b.head.Gather(lIdx), tail: other.tail.Gather(rIdx)}
	fs.info.Matched = matched
	fi := &FusedInfo{Fused: true, Stages: stages, Access: fs.info}
	cFusedPipelines.Inc()
	cFusedRows.Add(int64(matched))
	sp.SetAttr("access", fs.info.String())
	sp.SetAttr("fused", fi.String())
	sp.Resources().AddScanned(scannedRows(fs.info))
	return out, fi, nil
}
