package monet

import (
	"math"
	"path/filepath"
	"testing"
)

// naiveIdx is the reference result every access path must reproduce:
// the serial full scan under kernel Compare semantics.
func naiveIdx(b *BAT, lo, hi Value) []int {
	idx := make([]int, 0)
	for i := 0; i < b.Len(); i++ {
		t := b.Tail(i)
		if Compare(t, lo) >= 0 && Compare(t, hi) <= 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

func sameIdx(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d positions, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// modIntBAT builds a [void,int] BAT with tails cycling over [0, mod).
func modIntBAT(n, mod int) *BAT {
	b := NewBATCap(Void, IntT, n)
	for i := 0; i < n; i++ {
		b.MustInsert(VoidValue(), NewInt(int64(i%mod)))
	}
	return b
}

// clusteredIntBAT builds a [void,int] BAT with ascending tails in
// [0, vals): the layout zone maps reward.
func clusteredIntBAT(n, vals int) *BAT {
	b := NewBATCap(Void, IntT, n)
	for i := 0; i < n; i++ {
		b.MustInsert(VoidValue(), NewInt(int64(i*vals/n)))
	}
	return b
}

func TestAdaptivePathProgression(t *testing.T) {
	s := NewStore()
	n := 5 * MorselSize
	s.Put("col", modIntBAT(n, 1000))
	lo, hi := NewInt(100), NewInt(199)
	want := naiveIdx(mustGet(t, s, "col"), lo, hi)
	wantPaths := []AccessPath{PathZoneMap, PathZoneMap, PathCrack, PathCrack}
	for q, wp := range wantPaths {
		idx, info, err := s.SelectPositions("col", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		sameIdx(t, idx, want)
		// Cyclic tails defeat pruning, so the zone-map rounds report
		// themselves as scans; the gate still graduates to cracking.
		if wp == PathCrack && info.Path != PathCrack {
			t.Fatalf("query %d: path %v, want crack", q, info.Path)
		}
		if wp == PathCrack && info.CrackPieces < 2 {
			t.Fatalf("query %d: %d pieces, want >= 2", q, info.CrackPieces)
		}
	}
}

func mustGet(t *testing.T, s *Store, name string) *BAT {
	t.Helper()
	b, err := s.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestZoneMapPrunesClusteredColumn(t *testing.T) {
	s := NewStore()
	n := 40 * MorselSize
	s.Put("col", clusteredIntBAT(n, 1000))
	lo, hi := NewInt(500), NewInt(509) // 1% of the value domain
	idx, info, err := s.SelectPositions("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameIdx(t, idx, naiveIdx(mustGet(t, s, "col"), lo, hi))
	if info.Path != PathZoneMap {
		t.Fatalf("path %v, want zonemap", info.Path)
	}
	if info.MorselsTotal != numMorsels(n) {
		t.Fatalf("morsels %d, want %d", info.MorselsTotal, numMorsels(n))
	}
	if pruned := float64(info.MorselsPruned) / float64(info.MorselsTotal); pruned < 0.9 {
		t.Fatalf("pruned %.2f of morsels, want >= 0.90", pruned)
	}
}

func TestCrackConvergesOnRepeatedRanges(t *testing.T) {
	s := NewStore()
	n := 8 * MorselSize
	s.Put("col", modIntBAT(n, 1000))
	b := mustGet(t, s, "col")
	ranges := [][2]int64{{100, 199}, {100, 199}, {50, 149}, {700, 899}, {100, 199}, {0, 999}, {999, 0}}
	for round := 0; round < 3; round++ {
		for _, r := range ranges {
			lo, hi := NewInt(r[0]), NewInt(r[1])
			idx, info, err := s.SelectPositions("col", lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			sameIdx(t, idx, naiveIdx(b, lo, hi))
			if info.Path == PathCrack && info.CrackPieces < 2 {
				t.Fatalf("crack path with %d pieces", info.CrackPieces)
			}
		}
	}
	pieces, err := s.Crack("col")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct crack bounds: 100, 200, 50, 150, 700, 900, 0, 1000 (as
	// boundary values); pieces stay bounded by the query bound count.
	if pieces < 4 || pieces > 16 {
		t.Fatalf("pieces = %d, want a small partition count", pieces)
	}
}

func TestCrackerExtremeBounds(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 7))
	b := mustGet(t, s, "col")
	cases := [][2]Value{
		{NewInt(math.MinInt64), NewInt(math.MaxInt64)},
		{NewInt(3), NewInt(math.MaxInt64)},
		{NewInt(math.MinInt64), NewInt(3)},
		{NewInt(6), NewInt(6)},
		{NewInt(7), NewInt(100)}, // out of domain
	}
	if _, err := s.Crack("col"); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		idx, info, err := s.SelectPositions("col", c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if info.Path != PathCrack {
			t.Fatalf("bounds %v..%v: path %v, want crack", c[0], c[1], info.Path)
		}
		sameIdx(t, idx, naiveIdx(b, c[0], c[1]))
	}
}

func TestFloatCrackerStrictBounds(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	b := NewBATCap(Void, FloatT, n)
	for i := 0; i < n; i++ {
		b.MustInsert(VoidValue(), NewFloat(float64(i%100)/10))
	}
	s.Put("col", b)
	if _, err := s.Crack("col"); err != nil {
		t.Fatal(err)
	}
	cases := [][2]float64{
		{2.5, 7.5},
		{math.Nextafter(2.5, math.Inf(1)), math.Nextafter(7.5, math.Inf(-1))},
		{math.Inf(-1), 5},
		{5, math.Inf(1)},
		{math.Inf(-1), math.Inf(1)},
		{7.5, 2.5}, // empty
	}
	for _, c := range cases {
		lo, hi := NewFloat(c[0]), NewFloat(c[1])
		idx, info, err := s.SelectPositions("col", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if info.Path != PathCrack {
			t.Fatalf("bounds %v..%v: path %v, want crack", lo, hi, info.Path)
		}
		sameIdx(t, idx, naiveIdx(b, lo, hi))
	}
}

func TestDictAnswersStringSelects(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	classes := []string{"overtake", "pitstop", "crash", "start", "podium"}
	b := NewBATCap(Void, StrT, n)
	for i := 0; i < n; i++ {
		b.MustInsert(VoidValue(), NewStr(classes[i%len(classes)]))
	}
	s.Put("col", b)
	eq := NewStr("pitstop")
	// First select warms the gate, second runs the dictionary.
	if _, _, err := s.SelectPositions("col", eq, eq); err != nil {
		t.Fatal(err)
	}
	idx, info, err := s.SelectPositions("col", eq, eq)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != PathDict {
		t.Fatalf("path %v, want dict", info.Path)
	}
	if info.DictSize != len(classes) {
		t.Fatalf("dict size %d, want %d", info.DictSize, len(classes))
	}
	sameIdx(t, idx, naiveIdx(b, eq, eq))

	// Absent value: empty without touching rows.
	miss := NewStr("zzz-absent")
	idx, info, err = s.SelectPositions("col", miss, miss)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != PathDict || len(idx) != 0 {
		t.Fatalf("miss: path %v, %d rows", info.Path, len(idx))
	}

	// Range over strings runs on codes too.
	lo, hi := NewStr("crash"), NewStr("pitstop")
	idx, _, err = s.SelectPositions("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameIdx(t, idx, naiveIdx(b, lo, hi))
}

func TestInvalidationOnMutation(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 100))
	lo, hi := NewInt(10), NewInt(19)
	for i := 0; i < 4; i++ { // graduate to the cracker
		if _, _, err := s.SelectPositions("col", lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	epoch := s.Epoch("col")

	// Append: epoch bumps, next select sees the new row.
	if err := s.Append("col", VoidValue(), NewInt(15)); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("col"); got <= epoch {
		t.Fatalf("epoch %d after append, want > %d", got, epoch)
	}
	idx, _, err := s.SelectPositions("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameIdx(t, idx, naiveIdx(mustGet(t, s, "col"), lo, hi))
	if idx[len(idx)-1] != n {
		t.Fatalf("appended row %d missing from select (last=%d)", n, idx[len(idx)-1])
	}

	// Put: replacement column, fresh results.
	s.Put("col", modIntBAT(n, 10))
	idx, _, err = s.SelectPositions("col", NewInt(3), NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	sameIdx(t, idx, naiveIdx(mustGet(t, s, "col"), NewInt(3), NewInt(4)))

	// Drop: selects fail, epoch keeps rising for the name.
	before := s.Epoch("col")
	if err := s.Drop("col"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("col"); got <= before {
		t.Fatalf("epoch %d after drop, want > %d", got, before)
	}
	if _, _, err := s.SelectPositions("col", lo, hi); err == nil {
		t.Fatal("select after drop succeeded")
	}
}

func TestIndexesRebuildAfterSnapshotLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 50))
	lo, hi := NewInt(10), NewInt(19)
	for i := 0; i < 4; i++ {
		if _, _, err := s.SelectPositions("col", lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if restored.Epoch("col") == 0 {
		t.Fatal("restored BAT has epoch 0: recovery bypassed the epoch bump")
	}
	idx, _, err := restored.SelectPositions("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameIdx(t, idx, naiveIdx(mustGet(t, restored, "col"), lo, hi))
}

func TestNaNColumnFallsBackToScan(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	b := NewBATCap(Void, FloatT, n)
	for i := 0; i < n; i++ {
		v := float64(i % 100)
		if i%977 == 0 {
			v = math.NaN()
		}
		b.MustInsert(VoidValue(), NewFloat(v))
	}
	s.Put("col", b)
	lo, hi := NewFloat(10), NewFloat(19)
	want := naiveIdx(b, lo, hi) // includes the NaN rows: Compare(NaN, x) == 0
	for q := 0; q < 5; q++ {
		idx, info, err := s.SelectPositions("col", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if info.Path != PathScan {
			t.Fatalf("query %d: path %v, want scan on NaN column", q, info.Path)
		}
		sameIdx(t, idx, want)
	}
	if _, err := s.Crack("col"); err == nil {
		t.Fatal("Crack succeeded on a NaN column")
	}
}

func TestMixedTypeBoundsFallBackToScan(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 100))
	lo, hi := NewFloat(10), NewFloat(19) // float bounds on an int column
	for q := 0; q < 5; q++ {
		idx, info, err := s.SelectPositions("col", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if info.Path != PathScan {
			t.Fatalf("query %d: path %v, want scan for mixed-type bounds", q, info.Path)
		}
		sameIdx(t, idx, naiveIdx(mustGet(t, s, "col"), lo, hi))
	}
}

func TestPlanAccessHasNoSideEffects(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 100))
	lo, hi := NewInt(10), NewInt(19)
	info, err := s.PlanAccess("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != PathZoneMap {
		t.Fatalf("plan %v, want zonemap for a cold numeric column", info.Path)
	}
	ii, err := s.IndexInfo("col")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ii.Find(NewStr("selects")); !ok || v.Str() != "0" {
		t.Fatalf("PlanAccess advanced the select counter: %v", v)
	}
	if v, ok := ii.Find(NewStr("zonemap")); !ok || v.Str() != "none" {
		t.Fatalf("PlanAccess built a zone map: %v", v)
	}
	// After real selects the plan graduates too.
	for i := 0; i < 3; i++ {
		if _, _, err := s.SelectPositions("col", lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	info, err = s.PlanAccess("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != PathCrack {
		t.Fatalf("plan %v after repeated selects, want crack", info.Path)
	}
}

func TestUselectRangeAndSelectRangeShapes(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 100))
	lo, hi := NewInt(10), NewInt(19)
	want := mustGet(t, s, "col").Select(lo, hi)
	got, _, err := s.SelectRange("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("SelectRange %d rows, scan %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if !Equal(got.Head(i), want.Head(i)) || !Equal(got.Tail(i), want.Tail(i)) {
			t.Fatalf("row %d: [%v,%v] != [%v,%v]", i, got.Head(i), got.Tail(i), want.Head(i), want.Tail(i))
		}
	}
	u, _, err := s.UselectRange("col", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	wu := mustGet(t, s, "col").Uselect(lo, hi)
	if u.Len() != wu.Len() || u.TailType() != Void {
		t.Fatalf("UselectRange [%v,%v]#%d, want [%v,void]#%d", u.HeadType(), u.TailType(), u.Len(), wu.HeadType(), wu.Len())
	}
	for i := 0; i < u.Len(); i++ {
		if !Equal(u.Head(i), wu.Head(i)) {
			t.Fatalf("head %d: %v != %v", i, u.Head(i), wu.Head(i))
		}
	}
}

func TestIndexInfoReport(t *testing.T) {
	s := NewStore()
	n := 3 * MorselSize
	s.Put("col", modIntBAT(n, 100))
	if _, err := s.BuildZoneMap("col"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Crack("col"); err != nil {
		t.Fatal(err)
	}
	ii, err := s.IndexInfo("col")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "rows", "epoch", "selects", "zonemap", "crack", "dict", "unsafe"} {
		if _, ok := ii.Find(NewStr(key)); !ok {
			t.Fatalf("IndexInfo missing %q", key)
		}
	}
	if v, _ := ii.Find(NewStr("zonemap")); v.Str() == "none" {
		t.Fatal("zonemap reported none after BuildZoneMap")
	}
	if v, _ := ii.Find(NewStr("crack")); v.Str() == "none" {
		t.Fatal("crack reported none after Crack")
	}
	if _, err := s.IndexInfo("nope"); err == nil {
		t.Fatal("IndexInfo on a missing BAT succeeded")
	}
}
