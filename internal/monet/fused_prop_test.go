package monet_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cobra/internal/monet"
)

// Randomized equivalence property for the fused pipelines: for random
// column types, data distributions, and bounds, every fused operator
// (Aggregate, GroupAggregate, JoinProbe, SelectRuns) must reproduce
// its operator-at-a-time reference byte-for-byte — at pool widths 1, 4
// and 8, and while a writer concurrently appends to a different BAT in
// the same store (run with -race this doubles as a locking proof).
// The reference is computed here from first principles: a full
// Compare-based scan for the qualifying positions, then the public BAT
// operators over explicitly gathered copies.

// refIdx is the ground-truth range select: ascending positions whose
// tail lies in [lo, hi] under Compare — the same predicate every
// unfused path reduces to.
func refIdx(b *monet.BAT, lo, hi monet.Value) []int {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		t := b.Tail(i)
		if monet.Compare(t, lo) >= 0 && monet.Compare(t, hi) <= 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// gather builds the materialized intermediate the unfused plan would:
// a fresh BAT holding (head(i), tail(i)) for each qualifying i.
func gather(heads, tails *monet.BAT, idx []int) *monet.BAT {
	out := monet.NewBATCap(heads.HeadType(), tails.TailType(), len(idx))
	for _, i := range idx {
		out.MustInsert(heads.Head(i), tails.Tail(i))
	}
	return out
}

// sameBAT compares two BATs by rendered rows — the byte-identity the
// fused pipelines promise.
func sameBAT(a, b *monet.BAT) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("length %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Head(i).String() != b.Head(i).String() || a.Tail(i).String() != b.Tail(i).String() {
			return fmt.Errorf("row %d: [%s,%s] vs [%s,%s]",
				i, a.Head(i), a.Tail(i), b.Head(i), b.Tail(i))
		}
	}
	return nil
}

// fusedTrial is one randomized fixture: an OID-headed predicate column
// of a random type, an aligned int aggregate column, an aligned string
// group column, a join build side keyed in the predicate's domain, and
// bounds drawn from (and around) the data's domain.
type fusedTrial struct {
	store      *monet.Store
	pred, agg  *monet.BAT
	grp, other *monet.BAT
	predName   string
	aggName    string
	grpName    string
	lo, hi     monet.Value
	joinable   bool
}

func newFusedTrial(t *testing.T, rng *rand.Rand, trial int) *fusedTrial {
	t.Helper()
	n := 512 + rng.Intn(4096)
	if trial%3 == 0 {
		// Cross the parallel threshold so wide pools take the fused
		// morsel fan-out rather than the serial consumer.
		n = monet.ParallelThreshold + rng.Intn(8192)
	}
	tr := &fusedTrial{
		store:    monet.NewStore(),
		predName: fmt.Sprintf("t%d/pred", trial),
		aggName:  fmt.Sprintf("t%d/agg", trial),
		grpName:  fmt.Sprintf("t%d/grp", trial),
	}
	kind := trial % 3
	switch kind {
	case 0: // int predicate
		mod := 50 + rng.Intn(1000)
		tr.pred = monet.NewBATCap(monet.OIDT, monet.IntT, n)
		for i := 0; i < n; i++ {
			tr.pred.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(int64(rng.Intn(mod))))
		}
		a := int64(rng.Intn(mod))
		tr.lo, tr.hi = monet.NewInt(a), monet.NewInt(a+int64(rng.Intn(mod/2+1)))
		tr.other = monet.NewBATCap(monet.IntT, monet.IntT, mod)
		for k := 0; k < mod; k += 1 + rng.Intn(3) {
			tr.other.MustInsert(monet.NewInt(int64(k)), monet.NewInt(int64(k)*7))
		}
		tr.joinable = true
	case 1: // float predicate (no join: float keys are not a join domain here)
		tr.pred = monet.NewBATCap(monet.OIDT, monet.FloatT, n)
		for i := 0; i < n; i++ {
			tr.pred.MustInsert(monet.NewOID(monet.OID(i)), monet.NewFloat(rng.Float64()*1000))
		}
		a := rng.Float64() * 1000
		tr.lo, tr.hi = monet.NewFloat(a), monet.NewFloat(a+rng.Float64()*500)
	default: // string predicate, dictionary domain
		labels := 16 + rng.Intn(64)
		tr.pred = monet.NewBATCap(monet.OIDT, monet.StrT, n)
		for i := 0; i < n; i++ {
			tr.pred.MustInsert(monet.NewOID(monet.OID(i)), monet.NewStr(fmt.Sprintf("lab-%03d", rng.Intn(labels))))
		}
		a := rng.Intn(labels)
		tr.lo = monet.NewStr(fmt.Sprintf("lab-%03d", a))
		tr.hi = monet.NewStr(fmt.Sprintf("lab-%03d", a+rng.Intn(labels-a)))
		tr.other = monet.NewBAT(monet.StrT, monet.IntT)
		for k := 0; k < labels; k += 1 + rng.Intn(2) {
			tr.other.MustInsert(monet.NewStr(fmt.Sprintf("lab-%03d", k)), monet.NewInt(int64(k)))
		}
		tr.joinable = true
	}
	tr.agg = monet.NewBATCap(monet.OIDT, monet.IntT, n)
	tr.grp = monet.NewBATCap(monet.OIDT, monet.StrT, n)
	for i := 0; i < n; i++ {
		tr.agg.MustInsert(monet.NewOID(monet.OID(i)), monet.NewInt(rng.Int63n(1000)))
		tr.grp.MustInsert(monet.NewOID(monet.OID(i)), monet.NewStr(fmt.Sprintf("g%02d", rng.Intn(16))))
	}
	for name, b := range map[string]*monet.BAT{tr.predName: tr.pred, tr.aggName: tr.agg, tr.grpName: tr.grp} {
		if err := tr.store.Put(name, b); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// checkScalar compares every scalar aggregate op against the gathered
// reference.
func (tr *fusedTrial) checkScalar(t *testing.T, ctx context.Context, idx []int) {
	t.Helper()
	wrap := gather(tr.agg, tr.agg, idx)
	for _, op := range []string{"count", "sum", "avg", "min", "max"} {
		got, fi, err := tr.store.Pipeline(tr.predName, tr.lo, tr.hi).Aggregate(ctx, tr.aggName, op)
		if len(idx) == 0 && (op == "min" || op == "max") {
			if err == nil {
				t.Fatalf("%s over empty selection succeeded with %s", op, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("fused %s: %v (fi=%v)", op, err, fi)
		}
		var want monet.Value
		switch op {
		case "count":
			want = monet.NewInt(int64(len(idx)))
		case "sum":
			s, err := wrap.Sum()
			if err != nil {
				t.Fatal(err)
			}
			want = monet.NewFloat(s)
		case "avg":
			if len(idx) == 0 {
				want = monet.NewFloat(math.NaN())
			} else {
				s, err := wrap.Avg()
				if err != nil {
					t.Fatal(err)
				}
				want = monet.NewFloat(s)
			}
		case "min":
			want, _ = wrap.Min()
		case "max":
			want, _ = wrap.Max()
		}
		if got.String() != want.String() {
			t.Fatalf("%s: fused %s != reference %s (matched %d rows, %s)", op, got, want, len(idx), fi)
		}
	}
}

// checkGroup compares one grouped aggregate op against the gathered
// reference.
func (tr *fusedTrial) checkGroup(t *testing.T, ctx context.Context, idx []int, op string) {
	t.Helper()
	got, fi, err := tr.store.Pipeline(tr.predName, tr.lo, tr.hi).GroupAggregate(ctx, tr.grpName, tr.aggName, op)
	if err != nil {
		t.Fatalf("fused group %s: %v (fi=%v)", op, err, fi)
	}
	wrap := gather(tr.grp.Reverse(), tr.agg, idx)
	var want *monet.BAT
	switch op {
	case "count":
		want, err = wrap.GroupCount()
	case "sum":
		want, err = wrap.GroupSum()
	case "avg":
		want, err = wrap.GroupAvg()
	case "min":
		want, err = wrap.GroupMin()
	case "max":
		want, err = wrap.GroupMax()
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := sameBAT(got, want); err != nil {
		t.Fatalf("group %s (%s): %v", op, fi, err)
	}
}

// checkJoin compares the fused select→probe against Select + Join.
func (tr *fusedTrial) checkJoin(t *testing.T, ctx context.Context, idx []int) {
	t.Helper()
	if !tr.joinable {
		return
	}
	got, fi, err := tr.store.Pipeline(tr.predName, tr.lo, tr.hi).JoinProbe(ctx, tr.other)
	if err != nil {
		t.Fatalf("fused join probe: %v (fi=%v)", err, fi)
	}
	want, err := gather(tr.pred, tr.pred, idx).Join(tr.other)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameBAT(got, want); err != nil {
		t.Fatalf("join probe (%s): %v", fi, err)
	}
}

// checkRuns compares SelectRuns against RunsOf over the ground-truth
// positions.
func (tr *fusedTrial) checkRuns(t *testing.T, ctx context.Context, idx []int) {
	t.Helper()
	runs, fi, err := tr.store.SelectRunsCtx(ctx, tr.predName, tr.lo, tr.hi)
	if err != nil {
		t.Fatalf("select runs: %v (fi=%v)", err, fi)
	}
	want := monet.RunsOf(idx)
	if len(runs) != len(want) {
		t.Fatalf("select runs (%s): %d runs, reference %d", fi, len(runs), len(want))
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("select runs (%s): run %d = %+v, reference %+v", fi, i, runs[i], want[i])
		}
	}
}

// TestFusedEquivalenceProperty is the randomized fused ≡ unfused
// property at pool widths 1, 4, and 8, with a concurrent writer
// appending to a separate BAT in a separate store for the duration
// (the kernel supports racing readers OR a writer per BAT, not both on
// one BAT — cross-BAT concurrency is the supported surface).
func TestFusedEquivalenceProperty(t *testing.T) {
	groupOps := []string{"count", "sum", "avg", "min", "max"}
	for _, width := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			prev := monet.SetDefaultPoolWorkers(width)
			defer monet.SetDefaultPoolWorkers(prev)

			noise := monet.NewStore()
			if err := noise.Put("noise", monet.NewBAT(monet.Void, monet.IntT)); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := noise.Append("noise", monet.VoidValue(), monet.NewInt(int64(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			defer wg.Wait()
			defer close(stop)

			rng := rand.New(rand.NewSource(int64(1009 * width)))
			ctx := context.Background()
			for trial := 0; trial < 6; trial++ {
				tr := newFusedTrial(t, rng, trial)
				idx := refIdx(tr.pred, tr.lo, tr.hi)
				tr.checkScalar(t, ctx, idx)
				tr.checkGroup(t, ctx, idx, groupOps[trial%len(groupOps)])
				tr.checkJoin(t, ctx, idx)
				tr.checkRuns(t, ctx, idx)
			}
		})
	}
}

// TestFusedGatePinsFallback proves the cost gate refuses to fuse in
// every situation where the typed loops could diverge from Compare
// semantics — and that the fallback it takes still matches the
// reference.
func TestFusedGatePinsFallback(t *testing.T) {
	ctx := context.Background()
	n := 4096

	build := func(tail monet.Type, vals func(i int) monet.Value) (*monet.Store, *monet.BAT) {
		store := monet.NewStore()
		b := monet.NewBATCap(monet.OIDT, tail, n)
		for i := 0; i < n; i++ {
			b.MustInsert(monet.NewOID(monet.OID(i)), vals(i))
		}
		if err := store.Put("pred", b); err != nil {
			t.Fatal(err)
		}
		return store, b
	}

	intVals := func(i int) monet.Value { return monet.NewInt(int64(i % 100)) }

	t.Run("mixed-type bounds", func(t *testing.T) {
		store, b := build(monet.IntT, intVals)
		lo, hi := monet.NewFloat(10), monet.NewFloat(20)
		got, fi, err := store.Pipeline("pred", lo, hi).Aggregate(ctx, "pred", "count")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Fused || fi.Fallback != "mixed-type bounds" {
			t.Fatalf("gate did not pin fallback: %v", fi)
		}
		if want := int64(len(refIdx(b, lo, hi))); got.I != want {
			t.Fatalf("fallback count %d != reference %d", got.I, want)
		}
	})

	t.Run("nan bound", func(t *testing.T) {
		store, b := build(monet.FloatT, func(i int) monet.Value { return monet.NewFloat(float64(i % 100)) })
		lo, hi := monet.NewFloat(10), monet.NewFloat(math.NaN())
		got, fi, err := store.Pipeline("pred", lo, hi).Aggregate(ctx, "pred", "count")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Fused || fi.Fallback != "nan bound" {
			t.Fatalf("gate did not pin fallback: %v", fi)
		}
		if want := int64(len(refIdx(b, lo, hi))); got.I != want {
			t.Fatalf("fallback count %d != reference %d", got.I, want)
		}
	})

	t.Run("nan in column", func(t *testing.T) {
		store, b := build(monet.FloatT, func(i int) monet.Value {
			if i == n/2 {
				return monet.NewFloat(math.NaN())
			}
			return monet.NewFloat(float64(i % 100))
		})
		lo, hi := monet.NewFloat(10), monet.NewFloat(20)
		got, fi, err := store.Pipeline("pred", lo, hi).Aggregate(ctx, "pred", "count")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Fused || fi.Fallback != "nan in column" {
			t.Fatalf("gate did not pin fallback: %v", fi)
		}
		// The NaN row compares equal to everything under Compare, so the
		// reference includes it — only the fallback reproduces that.
		if want := int64(len(refIdx(b, lo, hi))); got.I != want {
			t.Fatalf("fallback count %d != reference %d", got.I, want)
		}
	})

	t.Run("float aggregate column", func(t *testing.T) {
		store, b := build(monet.IntT, intVals)
		fagg := monet.NewBATCap(monet.OIDT, monet.FloatT, n)
		for i := 0; i < n; i++ {
			fagg.MustInsert(monet.NewOID(monet.OID(i)), monet.NewFloat(float64(i)*0.25))
		}
		if err := store.Put("fagg", fagg); err != nil {
			t.Fatal(err)
		}
		lo, hi := monet.NewInt(10), monet.NewInt(20)
		got, fi, err := store.Pipeline("pred", lo, hi).Aggregate(ctx, "fagg", "sum")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Fused {
			t.Fatalf("float aggregate column fused: %v", fi)
		}
		idx := refIdx(b, lo, hi)
		s, err := gather(fagg, fagg, idx).Sum()
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != monet.NewFloat(s).String() {
			t.Fatalf("fallback sum %s != reference %s", got, monet.NewFloat(s))
		}
		// count needs no aggregate reader, so the same predicate still
		// fuses for it.
		_, fi, err = store.Pipeline("pred", lo, hi).Aggregate(ctx, "fagg", "count")
		if err != nil {
			t.Fatal(err)
		}
		if !fi.Fused {
			t.Fatalf("count over float aggregate column did not fuse: %v", fi)
		}
	})
}
