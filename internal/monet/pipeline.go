package monet

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"cobra/internal/obs"
)

// Fused vectorized pipelines: select→project→aggregate and
// select→join-probe executed morsel-at-a-time with no intermediate
// OID BAT between the operators. The classic operator-at-a-time path
// materializes the qualifying positions of a range select as an []int,
// gathers every downstream column through it, and only then
// aggregates; a Pipeline instead pushes the predicate into the
// consumer: each morsel finds its matching rows as in-register runs in
// arena scratch (arena.go) and feeds them straight to the aggregate,
// group table, or join probe. Per-morsel partials merge in morsel
// order, so a fused result is byte-identical to the unfused one — and
// whenever the cost gate cannot prove that identity (mixed-type or NaN
// bounds, NaN values in a float column, inexact float sums, column
// shapes without a typed kernel), the pipeline silently executes the
// unfused operator-at-a-time path instead.
//
// The predicate reuses the adaptive access paths of accesspath.go:
// zone maps prune whole morsels before the fused scan runs, crackers
// answer with their cached position lists, and dict-encoded string
// columns match int32 codes without ever decoding the tail
// (dictionary-domain execution; grouped aggregation over a dict column
// also groups on codes and decodes each distinct group label once).

// Fused-execution metrics (monet.fused.*): pipelines that ran fused vs
// fell back to the operator-at-a-time path, rows consumed in-register,
// and runs emitted instead of position slices.
var (
	cFusedPipelines = obs.C("monet.fused.pipelines")
	cFusedFallbacks = obs.C("monet.fused.fallbacks")
	cFusedRows      = obs.C("monet.fused.rows")
	cFusedRuns      = obs.C("monet.fused.runs")
	hFusedLat       = obs.H("monet.fused.latency")
	hFusedSpd       = obs.H("monet.fused.speedup")
)

// Run is a maximal range of consecutive qualifying positions
// [Start, Start+Len). Fused pipelines hand candidate positions to
// consumers as runs instead of allocated position slices.
type Run struct {
	// Start is the first qualifying position of the run.
	Start int
	// Len is the number of consecutive qualifying positions.
	Len int
}

// RunsOf converts an ascending position list to its maximal runs.
func RunsOf(pos []int) []Run {
	var runs []Run
	for i := 0; i < len(pos); {
		j := i + 1
		for j < len(pos) && pos[j] == pos[j-1]+1 {
			j++
		}
		runs = append(runs, Run{Start: pos[i], Len: j - i})
		i = j
	}
	return runs
}

// FusedInfo describes how one pipeline executed: whether it ran fused,
// the pipeline stages, the fallback reason when it did not, and the
// access-path detail of the selection stage.
type FusedInfo struct {
	// Fused reports whether the fused path ran (false = the gate chose
	// the byte-identical operator-at-a-time fallback).
	Fused bool
	// Stages names the pipeline stages, e.g. "select→sum" or
	// "select→group[count]".
	Stages string
	// Fallback is the cost-gate reason when Fused is false.
	Fallback string
	// Access describes the selection stage's access path.
	Access *AccessInfo
}

// String renders the info the way EXPLAIN and trace spans attach it.
func (fi *FusedInfo) String() string {
	s := "fused=" + fi.Stages
	if !fi.Fused {
		s = "fused=no(" + fi.Fallback + ")"
	}
	if fi.Access != nil {
		s += " " + fi.Access.String()
	}
	return s
}

// Pipeline is a fused select→consume execution over a stored BAT: a
// range predicate over one named column, pushed directly into an
// aggregate, grouped aggregate, or join probe over positionally
// aligned columns of the same store.
type Pipeline struct {
	s    *Store
	pred string
	lo   Value
	hi   Value
}

// Pipeline starts a fused pipeline selecting the rows of the named
// BAT whose tail lies in [lo, hi].
func (s *Store) Pipeline(pred string, lo, hi Value) *Pipeline {
	return &Pipeline{s: s, pred: pred, lo: lo, hi: hi}
}

// fusedSource is the prepared selection stage of a fused pipeline:
// either an inline typed predicate over (possibly zone-map-pruned)
// morsels, a dictionary-code predicate, or a position list already
// answered by the cracker.
type fusedSource struct {
	col     Column
	lo, hi  Value
	morsels []int   // surviving morsel indices under zone-map pruning (nil = all)
	pos     []int   // index-answered positions (crack path); nil otherwise
	codes   []int32 // dict codes when the predicate runs in code domain
	cl, ch  int32   // dict code bounds: match is cl <= code < ch
	info    *AccessInfo
}

// fuseLocked is the fused cost gate: it decides whether a fused
// pipeline over col can reproduce the unfused result bit-for-bit and
// prepares the selection stage, building zone maps / dictionaries and
// consulting the cracker exactly like selectLocked would. A non-empty
// reason means the caller must take the operator-at-a-time fallback.
// The caller holds ix.mu.
func (ix *batIndex) fuseLocked(col Column, lo, hi Value) (*fusedSource, string) {
	if lo.Typ != col.Type() || hi.Typ != col.Type() {
		return nil, "mixed-type bounds"
	}
	if isNaNValue(lo) || isNaNValue(hi) {
		return nil, "nan bound"
	}
	if ix.unsafe {
		return nil, "nan in column"
	}
	fs := &fusedSource{col: col, lo: lo, hi: hi, info: &AccessInfo{Path: PathScan, Rows: col.Len()}}
	path := ix.planLocked(col, lo, hi)
	ix.selects++
	switch c := col.(type) {
	case *strColumn:
		if ix.dict == nil {
			ix.dict = buildDict(c)
			cDictBuilds.Inc()
		}
		cl := int32(searchStrings(ix.dict.keys, lo.Str()))
		ch := int32(searchStringsAfter(ix.dict.keys, hi.Str()))
		if cl < ch {
			cDictHits.Inc()
		} else {
			cDictMisses.Inc()
		}
		fs.codes, fs.cl, fs.ch = ix.dict.codes, cl, ch
		fs.info.Path = PathDict
		fs.info.DictSize = len(ix.dict.keys)
		return fs, ""
	case *intColumn, *oidColumn:
		// Always exactly representable; no pre-pass needed.
	case *floatColumn:
		// A NaN row compares equal to everything under Compare, so the
		// scan would match it against any bounds; the typed fused loop
		// would not. The zone map (built here if missing — it doubles
		// as the pruning structure) proves the column NaN-free.
		if ix.zm == nil {
			ix.zm = buildZoneMap(col)
			cZmBuilds.Inc()
		}
		if ix.zm.unsafe {
			ix.unsafe = true
			return nil, "nan in column"
		}
	default:
		return nil, fmt.Sprintf("unfusable predicate column type %v", col.Type())
	}
	if path == PathCrack {
		if ix.cr == nil {
			cr, ok := buildCracker(col)
			if ok && cr != nil {
				ix.cr = cr
				cCrBuilds.Inc()
			}
		}
		if ix.cr != nil {
			before := ix.cr.cracks()
			fs.pos = ix.cr.selectRange(lo, hi)
			cCrCracks.Add(int64(ix.cr.cracks() - before))
			hCrPieces.ObserveNs(int64(ix.cr.pieces()))
			fs.info.Path = PathCrack
			fs.info.CrackPieces = ix.cr.pieces()
			fs.info.Matched = len(fs.pos)
			return fs, ""
		}
	}
	if ix.zm == nil && col.Len() >= ParallelThreshold {
		ix.zm = buildZoneMap(col)
		cZmBuilds.Inc()
		if ix.zm.unsafe {
			ix.unsafe = true
			return nil, "nan in column"
		}
	}
	if ix.zm != nil {
		fs.morsels = ix.zm.prune(lo, hi)
		fs.info.MorselsTotal = numMorsels(col.Len())
		fs.info.MorselsPruned = fs.info.MorselsTotal - len(fs.morsels)
		cZmScanned.Add(int64(len(fs.morsels)))
		cZmPruned.Add(int64(fs.info.MorselsPruned))
		if fs.info.MorselsPruned > 0 {
			fs.info.Path = PathZoneMap
		}
	}
	return fs, ""
}

// searchStrings is sort.SearchStrings without the import knot: the
// first index whose key >= s.
func searchStrings(keys []string, s string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchStringsAfter returns the first index whose key > s.
func searchStringsAfter(keys []string, s string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// matchRuns writes the maximal runs of qualifying rows inside
// [lo, hi) into starts/lens (arena scratch sized (hi-lo)/2+1) and
// returns the run count. The loops are typed: no Value boxing, no
// Compare calls — the gate already proved the raw comparisons agree
// with Compare for these operands.
func (fs *fusedSource) matchRuns(lo, hi int, starts, lens []int) int {
	nr := 0
	open := false
	emit := func(i int, match bool) {
		if match {
			if !open {
				starts[nr] = i
				lens[nr] = 1
				nr++
				open = true
			} else {
				lens[nr-1]++
			}
			return
		}
		open = false
	}
	switch {
	case fs.codes != nil:
		v, cl, ch := fs.codes, fs.cl, fs.ch
		for i := lo; i < hi; i++ {
			emit(i, v[i] >= cl && v[i] < ch)
		}
	default:
		switch c := fs.col.(type) {
		case *intColumn:
			v, lb, ub := c.v, fs.lo.I, fs.hi.I
			for i := lo; i < hi; i++ {
				emit(i, v[i] >= lb && v[i] <= ub)
			}
		case *oidColumn:
			v, lb, ub := c.v, fs.lo.I, fs.hi.I
			for i := lo; i < hi; i++ {
				k := int64(v[i])
				emit(i, k >= lb && k <= ub)
			}
		case *floatColumn:
			v, lb, ub := c.v, fs.lo.F, fs.hi.F
			for i := lo; i < hi; i++ {
				emit(i, v[i] >= lb && v[i] <= ub)
			}
		}
	}
	return nr
}

// forEachMorsel fans the fused consumer over the source's morsels —
// all of them, or only the zone-map survivors — passing each callback
// a dense slot k for its partial-state cell plus the row range. Wide
// inputs run on the shared pool; the caller merges partials in slot
// order, which is morsel order. Traced runs record morsel child spans
// marked fused=1 under sp (capped at maxMorselSpans) and accumulate
// queue-wait/run time into the trace's shared Resources.
func (fs *fusedSource) forEachMorsel(sp *obs.Span, fn func(k, lo, hi int)) int {
	n := fs.col.Len()
	nm := numMorsels(n)
	all := fs.morsels == nil
	slots := nm
	if !all {
		slots = len(fs.morsels)
	}
	rowRange := func(k int) (int, int) {
		m := k
		if !all {
			m = fs.morsels[k]
		}
		lo := m * MorselSize
		hi := lo + MorselSize
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	p, ok := poolFor(n)
	if !ok || slots <= 1 {
		for k := 0; k < slots; k++ {
			lo, hi := rowRange(k)
			fn(k, lo, hi)
		}
		return slots
	}
	res := sp.Resources()
	start := time.Now()
	var busy atomic.Int64
	b := p.Batch()
	for k := 0; k < slots; k++ {
		k := k
		var msp *obs.Span
		if sp != nil && k < maxMorselSpans {
			msp = sp.StartChild("monet.morsel")
			msp.SetAttr("morsel", strconv.Itoa(k))
			msp.SetAttr("fused", "1")
		}
		submitted := time.Now()
		//cobravet:allow allochot // one closure per morsel IS the fan-out unit; bounded by morsel count, not rows
		b.Submit(func() {
			t0 := time.Now()
			lo, hi := rowRange(k)
			fn(k, lo, hi)
			run := time.Since(t0)
			busy.Add(int64(run))
			if sp != nil {
				wait := t0.Sub(submitted)
				if wait < 0 {
					wait = 0
				}
				res.AddMorsel(wait, run)
				if msp != nil {
					msp.SetAttr("queue_wait", obs.FormatDuration(wait))
					msp.SetAttr("run", obs.FormatDuration(run))
					msp.Finish()
				}
			}
		})
	}
	b.Wait()
	wall := int64(time.Since(start))
	hFusedLat.ObserveNs(wall)
	if wall > 0 {
		hFusedSpd.ObserveNs(busy.Load() * 1000 / wall)
	}
	return slots
}

// intReader returns an int64 accessor over a column whose values are
// exactly representable integers (int/oid/bit), or nil: the agg-side
// gate for fused sum/avg/min/max, where float tails must fall back to
// keep bit-identity under reordered partial sums.
func intReader(c Column) func(i int) int64 {
	switch c := c.(type) {
	case *intColumn:
		v := c.v
		return func(i int) int64 { return v[i] }
	case *oidColumn:
		v := c.v
		return func(i int) int64 { return int64(v[i]) }
	case *boolColumn:
		v := c.v
		return func(i int) int64 {
			if v[i] {
				return 1
			}
			return 0
		}
	}
	return nil
}

// scalarPart is one morsel's partial scalar-aggregate state.
type scalarPart struct {
	sum    float64
	count  int64
	best   int64
	bestOK bool
}

// mergeScalar folds src into dst in morsel order: sums add, counts
// add, and min/max keep the first-occurrence extreme under the same
// strict compare the serial scan uses.
func mergeScalar(dst, src *scalarPart, sign int64) {
	dst.sum += src.sum
	dst.count += src.count
	if src.bestOK && (!dst.bestOK || sign*(src.best-dst.best) > 0) {
		dst.best = src.best
		dst.bestOK = true
	}
}

// Aggregate executes select→aggregate fused: the op ("count", "sum",
// "avg", "min", "max") over the named aggregate column restricted to
// the rows matched by the pipeline's predicate, without materializing
// positions or a filtered BAT. Results are byte-identical to
// SelectPositions + Gather + the BAT aggregate; when the gate cannot
// prove that (NaN/mixed-type predicates, float aggregate columns), it
// executes exactly that fallback.
func (p *Pipeline) Aggregate(ctx context.Context, agg, op string) (Value, *FusedInfo, error) {
	b, ix, err := p.s.capture(p.pred)
	if err != nil {
		return Value{}, nil, err
	}
	defer ix.mu.Unlock()
	ab, err := p.s.Get(agg)
	if err != nil {
		return Value{}, nil, err
	}
	if ab.Len() != b.Len() {
		return Value{}, nil, fmt.Errorf("monet: fused aggregate: %q has %d rows, %q has %d", p.pred, b.Len(), agg, ab.Len())
	}
	cIdxSelects.Inc()
	sp := obs.SpanFromContext(ctx).StartChild("monet.select")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", p.pred)
	defer sp.Finish()
	stages := "select→" + op

	fs, reason := ix.fuseLocked(b.tail, p.lo, p.hi)
	var sign int64
	readerNeeded := op != "count"
	valAt := intReader(ab.tail)
	if reason == "" && readerNeeded && valAt == nil {
		reason = fmt.Sprintf("inexact or non-integer aggregate column %v", ab.TailType())
	}
	switch op {
	case "min":
		sign = -1
	case "max":
		sign = 1
	case "count", "sum", "avg":
	default:
		return Value{}, nil, fmt.Errorf("monet: fused aggregate: unknown op %q", op)
	}
	if reason != "" {
		v, info, err := p.fallbackAggregate(ix, b, ab, op, sp)
		fi := &FusedInfo{Fused: false, Stages: stages, Fallback: reason, Access: info}
		cFusedFallbacks.Inc()
		sp.SetAttr("fused", fi.String())
		return v, fi, err
	}

	total := p.consumeScalar(fs, sp, op, valAt, sign)
	fs.info.Matched = int(total.count)
	fi := &FusedInfo{Fused: true, Stages: stages, Access: fs.info}
	cFusedPipelines.Inc()
	cFusedRows.Add(total.count)
	sp.SetAttr("access", fs.info.String())
	sp.SetAttr("fused", fi.String())
	sp.Resources().AddScanned(scannedRows(fs.info))

	switch op {
	case "count":
		return NewInt(total.count), fi, nil
	case "sum":
		return NewFloat(total.sum), fi, nil
	case "avg":
		if total.count == 0 {
			return NewFloat(math.NaN()), fi, nil
		}
		return NewFloat(total.sum / float64(total.count)), fi, nil
	}
	if !total.bestOK {
		return Value{}, fi, fmt.Errorf("monet: fused aggregate: %s over empty selection", op)
	}
	return typedInt(ab.TailType(), total.best), fi, nil
}

// typedInt reconstructs the Value an integer-domain column's Get would
// box for payload k.
func typedInt(t Type, k int64) Value {
	switch t {
	case OIDT:
		return NewOID(OID(k))
	case BoolT:
		return NewBool(k != 0)
	}
	return NewInt(k)
}

// consumeScalar runs the fused scalar-aggregate consumer over the
// prepared source and returns the morsel-order merge of the partials.
func (p *Pipeline) consumeScalar(fs *fusedSource, sp *obs.Span, op string, valAt func(i int) int64, sign int64) scalarPart {
	var total scalarPart
	consume := func(part *scalarPart, lo, hi int) {
		for i := lo; i < hi; i++ {
			part.count++
			if valAt == nil {
				continue
			}
			v := valAt(i)
			switch op {
			case "sum", "avg":
				part.sum += float64(v)
			case "min", "max":
				if !part.bestOK || sign*(v-part.best) > 0 {
					part.best = v
					part.bestOK = true
				}
			}
		}
	}
	if fs.pos != nil {
		// Crack path: the index answered with its cached position list;
		// consume it in-register, run by run, without gathering.
		runs := RunsOf(fs.pos)
		for _, r := range runs {
			consume(&total, r.Start, r.Start+r.Len)
		}
		cFusedRuns.Add(int64(len(runs)))
		return total
	}
	nm := numMorsels(fs.col.Len())
	if fs.morsels != nil {
		nm = len(fs.morsels)
	}
	parts := make([]scalarPart, nm)
	var runsSeen int64
	fs.forEachMorsel(sp, func(k, lo, hi int) {
		a := GetArena()
		starts := a.Ints((hi-lo)/2 + 1)
		lens := a.Ints((hi-lo)/2 + 1)
		nr := fs.matchRuns(lo, hi, starts, lens)
		part := &parts[k]
		for r := 0; r < nr; r++ {
			consume(part, starts[r], starts[r]+lens[r])
		}
		PutArena(a)
	})
	for m := range parts {
		mergeScalar(&total, &parts[m], sign)
		runsSeen++
	}
	cFusedRuns.Add(runsSeen)
	return total
}

// SelectRuns returns the qualifying rows of the named BAT's tail range
// select as maximal runs instead of a position slice. On the fused
// path each morsel emits its runs in-register (arena scratch, no
// per-position allocation) and adjacent morsel boundaries merge, so a
// 50%-selective scan over a clustered column returns a handful of
// runs where SelectPositions would allocate half a million ints. The
// result is always exactly RunsOf(SelectPositions(...)).
func (s *Store) SelectRuns(name string, lo, hi Value) ([]Run, *FusedInfo, error) {
	return s.SelectRunsCtx(context.Background(), name, lo, hi)
}

// SelectRunsCtx is SelectRuns under a trace context: the select
// records a "monet.select" span whose access and fused attrs describe
// the pipeline, with fused morsel child spans for parallel scans.
func (s *Store) SelectRunsCtx(ctx context.Context, name string, lo, hi Value) ([]Run, *FusedInfo, error) {
	b, ix, err := s.capture(name)
	if err != nil {
		return nil, nil, err
	}
	defer ix.mu.Unlock()
	cIdxSelects.Inc()
	sp := obs.SpanFromContext(ctx).StartChild("monet.select")
	sp.SetAttr("level", "physical")
	sp.SetAttr("bat", name)
	defer sp.Finish()

	fs, reason := ix.fuseLocked(b.tail, lo, hi)
	if reason != "" {
		idx, info := ix.selectLocked(b.tail, lo, hi, sp)
		fi := &FusedInfo{Fused: false, Stages: "select→runs", Fallback: reason, Access: info}
		cFusedFallbacks.Inc()
		sp.SetAttr("access", info.String())
		sp.SetAttr("fused", fi.String())
		sp.Resources().AddScanned(scannedRows(info))
		return RunsOf(idx), fi, nil
	}
	var runs []Run
	matched := 0
	if fs.pos != nil {
		runs = RunsOf(fs.pos)
		matched = len(fs.pos)
	} else {
		nm := numMorsels(fs.col.Len())
		if fs.morsels != nil {
			nm = len(fs.morsels)
		}
		parts := make([][]Run, nm)
		fs.forEachMorsel(sp, func(k, mlo, mhi int) {
			a := GetArena()
			starts := a.Ints((mhi-mlo)/2 + 1)
			lens := a.Ints((mhi-mlo)/2 + 1)
			nr := fs.matchRuns(mlo, mhi, starts, lens)
			if nr > 0 {
				// Copy out of the arena: the runs outlive the morsel.
				part := make([]Run, nr)
				for r := 0; r < nr; r++ {
					part[r] = Run{Start: starts[r], Len: lens[r]}
				}
				parts[k] = part
			}
			PutArena(a)
		})
		for _, part := range parts {
			for _, r := range part {
				matched += r.Len
				if n := len(runs); n > 0 && runs[n-1].Start+runs[n-1].Len == r.Start {
					runs[n-1].Len += r.Len
					continue
				}
				runs = append(runs, r)
			}
		}
	}
	fs.info.Matched = matched
	fi := &FusedInfo{Fused: true, Stages: "select→runs", Access: fs.info}
	cFusedPipelines.Inc()
	cFusedRows.Add(int64(matched))
	cFusedRuns.Add(int64(len(runs)))
	sp.SetAttr("access", fs.info.String())
	sp.SetAttr("fused", fi.String())
	sp.Resources().AddScanned(scannedRows(fs.info))
	return runs, fi, nil
}

// FusedDecision reports, without executing the pipeline or building
// indexes, the cost-gate verdict for a select→aggregate pipeline over
// pred/agg: "fused" or "fallback(<reason>)". Plan caches fold it into
// their keys so a memoized fused plan is never replayed once column
// state (a NaN discovered mid-scan, a type change, re-registration)
// flips the decision.
func (s *Store) FusedDecision(pred, agg string, lo, hi Value, op string) string {
	b, ix, err := s.capture(pred)
	if err != nil {
		return "fallback(" + err.Error() + ")"
	}
	defer ix.mu.Unlock()
	col := b.tail
	reason := ""
	switch {
	case lo.Typ != col.Type() || hi.Typ != col.Type():
		reason = "mixed-type bounds"
	case isNaNValue(lo) || isNaNValue(hi):
		reason = "nan bound"
	case ix.unsafe:
		reason = "nan in column"
	default:
		switch col.(type) {
		case *strColumn, *intColumn, *oidColumn, *floatColumn:
		default:
			reason = fmt.Sprintf("unfusable predicate column type %v", col.Type())
		}
	}
	if reason == "" && op != "count" {
		ab, err := s.Get(agg)
		switch {
		case err != nil:
			reason = err.Error()
		case intReader(ab.tail) == nil:
			reason = fmt.Sprintf("inexact or non-integer aggregate column %v", ab.TailType())
		}
	}
	if reason != "" {
		return "fallback(" + reason + ")"
	}
	return "fused"
}

// fallbackAggregate is the operator-at-a-time reference path the gate
// falls back to: materialize the qualifying positions through the
// adaptive select, gather the aggregate column, aggregate the result.
func (p *Pipeline) fallbackAggregate(ix *batIndex, b, ab *BAT, op string, sp *obs.Span) (Value, *AccessInfo, error) {
	idx, info := ix.selectLocked(b.tail, p.lo, p.hi, sp)
	sp.SetAttr("access", info.String())
	sp.Resources().AddScanned(scannedRows(info))
	if op == "count" {
		return NewInt(int64(len(idx))), info, nil
	}
	wrap := &BAT{head: &voidColumn{n: len(idx)}, tail: ab.tail.Gather(idx)}
	switch op {
	case "sum":
		s, err := wrap.Sum()
		if err != nil {
			return Value{}, info, err
		}
		return NewFloat(s), info, nil
	case "avg":
		s, err := wrap.Avg()
		if err != nil {
			return Value{}, info, err
		}
		return NewFloat(s), info, nil
	case "min":
		v, ok := wrap.Min()
		if !ok {
			return Value{}, info, fmt.Errorf("monet: fused aggregate: min over empty selection")
		}
		return v, info, nil
	case "max":
		v, ok := wrap.Max()
		if !ok {
			return Value{}, info, fmt.Errorf("monet: fused aggregate: max over empty selection")
		}
		return v, info, nil
	}
	return Value{}, info, fmt.Errorf("monet: fused aggregate: unknown op %q", op)
}
