package monet

import (
	"fmt"
	"math"
)

// Columnar calculus over dense numeric BATs: the batcalc-style bulk
// operations the feature pipeline and MIL sessions use to combine
// feature streams without leaving the kernel.

// numericTail extracts a BAT's tail as float64s, requiring a numeric
// type.
func numericTail(b *BAT, op string) ([]float64, error) {
	if err := b.requireNumericTail(op); err != nil {
		return nil, err
	}
	if fs := Floats(b.tail); fs != nil {
		return fs, nil
	}
	out := make([]float64, b.Len())
	for i := range out {
		out[i] = b.Tail(i).Float()
	}
	return out, nil
}

// CalcBinary applies an elementwise arithmetic operation over two
// aligned numeric BATs, producing a [void, dbl] BAT. Supported ops:
// "+", "-", "*", "/", "min", "max".
func CalcBinary(a, b *BAT, op string) (*BAT, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("monet: calc %q over misaligned BATs (%d vs %d)", op, a.Len(), b.Len())
	}
	av, err := numericTail(a, "calc")
	if err != nil {
		return nil, err
	}
	bv, err := numericTail(b, "calc")
	if err != nil {
		return nil, err
	}
	var f func(x, y float64) float64
	switch op {
	case "+":
		f = func(x, y float64) float64 { return x + y }
	case "-":
		f = func(x, y float64) float64 { return x - y }
	case "*":
		f = func(x, y float64) float64 { return x * y }
	case "/":
		f = func(x, y float64) float64 {
			if y == 0 {
				return math.NaN()
			}
			return x / y
		}
	case "min":
		f = math.Min
	case "max":
		f = math.Max
	default:
		return nil, fmt.Errorf("monet: unknown calc op %q", op)
	}
	out := NewBATCap(Void, FloatT, len(av))
	for i := range av {
		out.MustInsert(VoidValue(), NewFloat(f(av[i], bv[i])))
	}
	return out, nil
}

// CalcScale multiplies every tail value by factor and adds offset,
// producing [void, dbl].
func CalcScale(b *BAT, factor, offset float64) (*BAT, error) {
	vs, err := numericTail(b, "scale")
	if err != nil {
		return nil, err
	}
	out := NewBATCap(Void, FloatT, len(vs))
	for _, v := range vs {
		out.MustInsert(VoidValue(), NewFloat(v*factor+offset))
	}
	return out, nil
}

// CalcClamp limits every tail value to [lo, hi], producing [void, dbl].
func CalcClamp(b *BAT, lo, hi float64) (*BAT, error) {
	if hi < lo {
		return nil, fmt.Errorf("monet: clamp bounds inverted [%g, %g]", lo, hi)
	}
	vs, err := numericTail(b, "clamp")
	if err != nil {
		return nil, err
	}
	out := NewBATCap(Void, FloatT, len(vs))
	for _, v := range vs {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out.MustInsert(VoidValue(), NewFloat(v))
	}
	return out, nil
}

// CalcThreshold marks tail values strictly above the threshold,
// producing [void, bit].
func CalcThreshold(b *BAT, threshold float64) (*BAT, error) {
	vs, err := numericTail(b, "threshold")
	if err != nil {
		return nil, err
	}
	out := NewBATCap(Void, BoolT, len(vs))
	for _, v := range vs {
		out.MustInsert(VoidValue(), NewBool(v > threshold))
	}
	return out, nil
}

// CalcMovingAvg computes a trailing moving average with the given
// window (in rows), producing [void, dbl]. Rows before a full window
// average what is available — the accumulation the paper applies to
// static-BN outputs.
func CalcMovingAvg(b *BAT, window int) (*BAT, error) {
	if window < 1 {
		return nil, fmt.Errorf("monet: moving average window %d < 1", window)
	}
	vs, err := numericTail(b, "mavg")
	if err != nil {
		return nil, err
	}
	out := NewBATCap(Void, FloatT, len(vs))
	sum := 0.0
	for i, v := range vs {
		sum += v
		if i >= window {
			sum -= vs[i-window]
		}
		n := i + 1
		if n > window {
			n = window
		}
		out.MustInsert(VoidValue(), NewFloat(sum/float64(n)))
	}
	return out, nil
}
