package monet

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkIntBAT(t *testing.T, pairs ...int64) *BAT {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatal("pairs must be even")
	}
	b := NewBAT(OIDT, IntT)
	for i := 0; i < len(pairs); i += 2 {
		if err := b.Insert(NewOID(OID(pairs[i])), NewInt(pairs[i+1])); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestInsertAndLen(t *testing.T) {
	b := mkIntBAT(t, 0, 10, 1, 20, 2, 30)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if got := b.Tail(1).Int(); got != 20 {
		t.Fatalf("Tail(1) = %d, want 20", got)
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	b := NewBAT(OIDT, IntT)
	if err := b.Insert(NewOID(1), NewStr("x")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
	if err := b.Insert(NewInt(1), NewInt(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("head err = %v, want ErrTypeMismatch", err)
	}
}

func TestReverseIsView(t *testing.T) {
	b := mkIntBAT(t, 0, 10, 1, 20)
	r := b.Reverse()
	if r.HeadType() != IntT || r.TailType() != OIDT {
		t.Fatalf("reversed types = [%v,%v]", r.HeadType(), r.TailType())
	}
	if got := r.Head(0).Int(); got != 10 {
		t.Fatalf("reversed Head(0) = %d, want 10", got)
	}
	// Double reverse restores the original association order.
	rr := r.Reverse()
	for i := 0; i < b.Len(); i++ {
		if !Equal(rr.Head(i), b.Head(i)) || !Equal(rr.Tail(i), b.Tail(i)) {
			t.Fatalf("double reverse mismatch at %d", i)
		}
	}
}

func TestMirrorAndMark(t *testing.T) {
	b := mkIntBAT(t, 5, 10, 6, 20)
	m := b.Mirror()
	if !Equal(m.Tail(0), NewOID(5)) {
		t.Fatalf("mirror tail = %v", m.Tail(0))
	}
	mk := b.Mark(100)
	if !Equal(mk.Tail(0), NewOID(100)) || !Equal(mk.Tail(1), NewOID(101)) {
		t.Fatalf("mark tails = %v, %v", mk.Tail(0), mk.Tail(1))
	}
}

func TestSelectRange(t *testing.T) {
	b := mkIntBAT(t, 0, 5, 1, 15, 2, 25, 3, 35)
	sel := b.Select(NewInt(10), NewInt(30))
	if sel.Len() != 2 {
		t.Fatalf("Select len = %d, want 2", sel.Len())
	}
	if sel.Head(0).OID() != 1 || sel.Head(1).OID() != 2 {
		t.Fatalf("Select heads = %v, %v", sel.Head(0), sel.Head(1))
	}
}

func TestSelectEqAndUselect(t *testing.T) {
	b := mkIntBAT(t, 0, 7, 1, 8, 2, 7)
	eq := b.SelectEq(NewInt(7))
	if eq.Len() != 2 {
		t.Fatalf("SelectEq len = %d, want 2", eq.Len())
	}
	u := b.Uselect(NewInt(7), NewInt(7))
	if u.Len() != 2 || u.TailType() != Void {
		t.Fatalf("Uselect = %v", u)
	}
}

func TestFilter(t *testing.T) {
	b := mkIntBAT(t, 0, 1, 1, 2, 2, 3, 3, 4)
	odd := b.Filter(func(_, tl Value) bool { return tl.Int()%2 == 1 })
	if odd.Len() != 2 {
		t.Fatalf("Filter len = %d, want 2", odd.Len())
	}
}

func TestJoin(t *testing.T) {
	// names: [oid, str], ages: [oid, int]; join names.reverse? Use
	// classic: left [oid,oid] pointing into right [oid,int].
	left := NewBAT(OIDT, OIDT)
	left.MustInsert(NewOID(0), NewOID(100))
	left.MustInsert(NewOID(1), NewOID(101))
	left.MustInsert(NewOID(2), NewOID(100))
	right := NewBAT(OIDT, IntT)
	right.MustInsert(NewOID(100), NewInt(42))
	right.MustInsert(NewOID(101), NewInt(43))
	j, err := left.Join(right)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("Join len = %d, want 3", j.Len())
	}
	if got, _ := j.Find(NewOID(2)); got.Int() != 42 {
		t.Fatalf("join value for 2 = %v, want 42", got)
	}
}

func TestJoinTypeMismatch(t *testing.T) {
	a := NewBAT(OIDT, StrT)
	b := NewBAT(OIDT, IntT)
	if _, err := a.Join(b); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
}

func TestSemijoinKDiff(t *testing.T) {
	b := mkIntBAT(t, 0, 10, 1, 20, 2, 30)
	keys := NewBAT(OIDT, Void)
	keys.MustInsert(NewOID(0), VoidValue())
	keys.MustInsert(NewOID(2), VoidValue())
	sj, err := b.Semijoin(keys)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Len() != 2 || sj.Head(1).OID() != 2 {
		t.Fatalf("semijoin = %s", sj.Dump(10))
	}
	kd, err := b.KDiff(keys)
	if err != nil {
		t.Fatal(err)
	}
	if kd.Len() != 1 || kd.Head(0).OID() != 1 {
		t.Fatalf("kdiff = %s", kd.Dump(10))
	}
}

func TestKUnion(t *testing.T) {
	a := mkIntBAT(t, 0, 1)
	b := mkIntBAT(t, 1, 2)
	u, err := a.KUnion(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Fatalf("kunion len = %d", u.Len())
	}
	// Operands unchanged.
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("kunion mutated operand")
	}
}

func TestFindExists(t *testing.T) {
	b := mkIntBAT(t, 7, 70)
	v, ok := b.Find(NewOID(7))
	if !ok || v.Int() != 70 {
		t.Fatalf("Find = %v, %v", v, ok)
	}
	if _, ok := b.Find(NewOID(8)); ok {
		t.Fatal("Find(8) should miss")
	}
	if !b.Exists(NewOID(7)) || b.Exists(NewOID(8)) {
		t.Fatal("Exists wrong")
	}
}

func TestSortTailHead(t *testing.T) {
	b := mkIntBAT(t, 2, 30, 0, 10, 1, 20)
	st := b.SortTail()
	for i := 1; i < st.Len(); i++ {
		if Compare(st.Tail(i-1), st.Tail(i)) > 0 {
			t.Fatal("SortTail not ascending")
		}
	}
	sh := b.SortHead()
	for i := 1; i < sh.Len(); i++ {
		if Compare(sh.Head(i-1), sh.Head(i)) > 0 {
			t.Fatal("SortHead not ascending")
		}
	}
}

func TestAggregates(t *testing.T) {
	b := mkIntBAT(t, 0, 1, 1, 2, 2, 3, 3, 4)
	if s, _ := b.Sum(); s != 10 {
		t.Fatalf("Sum = %v", s)
	}
	if a, _ := b.Avg(); a != 2.5 {
		t.Fatalf("Avg = %v", a)
	}
	if m, _ := b.Max(); m.Int() != 4 {
		t.Fatalf("Max = %v", m)
	}
	if m, _ := b.Min(); m.Int() != 1 {
		t.Fatalf("Min = %v", m)
	}
	if am, _ := b.ArgMax(); am.OID() != 3 {
		t.Fatalf("ArgMax = %v", am)
	}
	if am, _ := b.ArgMin(); am.OID() != 0 {
		t.Fatalf("ArgMin = %v", am)
	}
}

func TestAggregateEmptyAndErrors(t *testing.T) {
	e := NewBAT(OIDT, IntT)
	if _, ok := e.Max(); ok {
		t.Fatal("Max of empty should report !ok")
	}
	if _, ok := e.ArgMax(); ok {
		t.Fatal("ArgMax of empty should report !ok")
	}
	s := NewBAT(OIDT, StrT)
	s.MustInsert(NewOID(0), NewStr("x"))
	if _, err := s.Sum(); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Sum over str err = %v", err)
	}
}

func TestGroup(t *testing.T) {
	b := NewBAT(OIDT, StrT)
	b.MustInsert(NewOID(0), NewStr("a"))
	b.MustInsert(NewOID(1), NewStr("b"))
	b.MustInsert(NewOID(2), NewStr("a"))
	members, groups := b.Group()
	if groups.Len() != 2 {
		t.Fatalf("groups = %d, want 2", groups.Len())
	}
	g0, _ := members.Find(NewOID(0))
	g2, _ := members.Find(NewOID(2))
	if !Equal(g0, g2) {
		t.Fatal("same tail values should share a group")
	}
}

func TestGroupedAggregates(t *testing.T) {
	// [group, value]
	b := NewBAT(IntT, IntT)
	for _, p := range [][2]int64{{1, 10}, {1, 20}, {2, 5}, {2, 15}, {2, 10}} {
		b.MustInsert(NewInt(p[0]), NewInt(p[1]))
	}
	gs, err := b.GroupSum()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gs.Find(NewInt(1)); v.Float() != 30 {
		t.Fatalf("GroupSum(1) = %v", v)
	}
	gc, _ := b.GroupCount()
	if v, _ := gc.Find(NewInt(2)); v.Int() != 3 {
		t.Fatalf("GroupCount(2) = %v", v)
	}
	ga, _ := b.GroupAvg()
	if v, _ := ga.Find(NewInt(2)); v.Float() != 10 {
		t.Fatalf("GroupAvg(2) = %v", v)
	}
	gm, _ := b.GroupMax()
	if v, _ := gm.Find(NewInt(1)); v.Float() != 20 {
		t.Fatalf("GroupMax(1) = %v", v)
	}
	gn, _ := b.GroupMin()
	if v, _ := gn.Find(NewInt(2)); v.Float() != 5 {
		t.Fatalf("GroupMin(2) = %v", v)
	}
}

func TestHistogram(t *testing.T) {
	b := NewBAT(OIDT, StrT)
	for i, s := range []string{"x", "y", "x", "x"} {
		b.MustInsert(NewOID(OID(i)), NewStr(s))
	}
	h := b.Histogram()
	if v, _ := h.Find(NewStr("x")); v.Int() != 3 {
		t.Fatalf("Histogram(x) = %v", v)
	}
}

func TestVoidHead(t *testing.T) {
	b := NewBAT(Void, FloatT)
	for i := 0; i < 5; i++ {
		b.MustInsert(VoidValue(), NewFloat(float64(i)*1.5))
	}
	if b.Len() != 5 {
		t.Fatalf("void head len = %d", b.Len())
	}
	if b.Head(3).OID() != 3 {
		t.Fatalf("void head value = %v", b.Head(3))
	}
	sel := b.Select(NewFloat(1.0), NewFloat(4.0))
	if sel.Len() != 2 {
		t.Fatalf("select over void-head = %d", sel.Len())
	}
}

func TestSliceAndClone(t *testing.T) {
	b := mkIntBAT(t, 0, 1, 1, 2, 2, 3)
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.Tail(0).Int() != 2 {
		t.Fatalf("slice = %s", s.Dump(10))
	}
	c := b.Clone()
	c.MustInsert(NewOID(9), NewInt(9))
	if b.Len() != 3 {
		t.Fatal("clone aliases original")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	types := []struct {
		name string
		mk   func() *BAT
	}{
		{"oid-int", func() *BAT { return mkIntBAT(t, 0, 1, 1, -5, 2, 1<<40) }},
		{"oid-str", func() *BAT {
			b := NewBAT(OIDT, StrT)
			b.MustInsert(NewOID(0), NewStr("héllo"))
			b.MustInsert(NewOID(1), NewStr(""))
			return b
		}},
		{"void-dbl", func() *BAT {
			b := NewBAT(Void, FloatT)
			b.MustInsert(VoidValue(), NewFloat(3.14))
			b.MustInsert(VoidValue(), NewFloat(-0.5))
			return b
		}},
		{"int-bool", func() *BAT {
			b := NewBAT(IntT, BoolT)
			b.MustInsert(NewInt(1), NewBool(true))
			b.MustInsert(NewInt(2), NewBool(false))
			return b
		}},
	}
	for _, tc := range types {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mk()
			var buf bytes.Buffer
			if _, err := b.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBAT(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != b.Len() {
				t.Fatalf("len = %d, want %d", got.Len(), b.Len())
			}
			for i := 0; i < b.Len(); i++ {
				if !Equal(got.Head(i), b.Head(i)) && b.HeadType() != Void {
					t.Fatalf("head %d mismatch: %v vs %v", i, got.Head(i), b.Head(i))
				}
				if !Equal(got.Tail(i), b.Tail(i)) {
					t.Fatalf("tail %d mismatch: %v vs %v", i, got.Tail(i), b.Tail(i))
				}
			}
		})
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	s.Put("features/ste", mkIntBAT(t, 0, 1, 1, 2))
	s.Put("weird name:with/chars", mkIntBAT(t, 0, 9))
	if err := s.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("loaded %d BATs, want 2", s2.Len())
	}
	b, err := s2.Get("weird name:with/chars")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Find(NewOID(0)); v.Int() != 9 {
		t.Fatalf("loaded value = %v", v)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNoSuchBAT) {
		t.Fatalf("err = %v", err)
	}
	s.Put("a", NewBAT(OIDT, IntT))
	s.Put("b", NewBAT(OIDT, IntT))
	if !s.Has("a") || s.Has("c") {
		t.Fatal("Has wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
	s.Drop("a")
	if s.Has("a") || s.Len() != 1 {
		t.Fatal("Drop failed")
	}
}

func TestParallel(t *testing.T) {
	n := 64
	results := make([]int, n)
	tasks := make([]func() error, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() error { results[i] = i * i; return nil }
	}
	if err := Parallel(7, tasks...); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("task %d result = %d", i, r)
		}
	}
}

func TestParallelError(t *testing.T) {
	boom := errors.New("boom")
	err := Parallel(3,
		func() error { return nil },
		func() error { return boom },
		func() error { return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestParallelSingleThread(t *testing.T) {
	order := []int{}
	err := Parallel(1,
		func() error { order = append(order, 0); return nil },
		func() error { order = append(order, 1); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
}

func TestParallelMap(t *testing.T) {
	got := ParallelMap(4, 100, func(i int) int { return i * 2 })
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if len(ParallelMap(4, 0, func(i int) int { return i })) != 0 {
		t.Fatal("empty map")
	}
}

// Property: join of b with the mirror of its reversed tail values is b itself.
func TestJoinMirrorProperty(t *testing.T) {
	f := func(vals []int64) bool {
		b := NewBAT(OIDT, IntT)
		for i, v := range vals {
			b.MustInsert(NewOID(OID(i)), NewInt(v%100))
		}
		// mirror over int domain present in b's tails
		dom := b.Reverse().Mirror() // [int,int]
		j, err := b.Join(dom)
		if err != nil {
			return false
		}
		if j.Len() < b.Len() {
			return false
		}
		// every original pair appears
		for i := 0; i < b.Len(); i++ {
			if v, ok := j.Find(b.Head(i)); !ok || v.Typ != IntT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select(lo,hi) returns exactly the rows whose tails are in range.
func TestSelectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		n := int(seed%50) + 1
		if n < 0 {
			n = -n + 1
		}
		b := NewBAT(OIDT, IntT)
		for i := 0; i < n; i++ {
			b.MustInsert(NewOID(OID(i)), NewInt(rng.Int63n(100)))
		}
		lo, hi := rng.Int63n(100), rng.Int63n(100)
		if lo > hi {
			lo, hi = hi, lo
		}
		sel := b.Select(NewInt(lo), NewInt(hi))
		want := 0
		for i := 0; i < b.Len(); i++ {
			v := b.Tail(i).Int()
			if v >= lo && v <= hi {
				want++
			}
		}
		return sel.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary string BATs.
func TestSerializeStringProperty(t *testing.T) {
	f := func(ss []string) bool {
		b := NewBAT(Void, StrT)
		for _, s := range ss {
			b.MustInsert(VoidValue(), NewStr(s))
		}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadBAT(&buf)
		if err != nil || got.Len() != b.Len() {
			return false
		}
		for i := range ss {
			if got.Tail(i).Str() != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mkFloatBAT(vals ...float64) *BAT {
	b := NewBAT(Void, FloatT)
	for _, v := range vals {
		b.MustInsert(VoidValue(), NewFloat(v))
	}
	return b
}

func TestCalcBinary(t *testing.T) {
	a := mkFloatBAT(1, 2, 3)
	b := mkFloatBAT(4, 5, 6)
	cases := map[string][3]float64{
		"+":   {5, 7, 9},
		"-":   {-3, -3, -3},
		"*":   {4, 10, 18},
		"min": {1, 2, 3},
		"max": {4, 5, 6},
	}
	for op, want := range cases {
		got, err := CalcBinary(a, b, op)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got.Tail(i).Float() != want[i] {
				t.Fatalf("%s[%d] = %v, want %v", op, i, got.Tail(i), want[i])
			}
		}
	}
	div, err := CalcBinary(a, mkFloatBAT(2, 0, 3), "/")
	if err != nil {
		t.Fatal(err)
	}
	if div.Tail(0).Float() != 0.5 || !math.IsNaN(div.Tail(1).Float()) {
		t.Fatalf("div = %v %v", div.Tail(0), div.Tail(1))
	}
	if _, err := CalcBinary(a, mkFloatBAT(1), "+"); err == nil {
		t.Fatal("misaligned accepted")
	}
	if _, err := CalcBinary(a, b, "pow"); err == nil {
		t.Fatal("unknown op accepted")
	}
	s := NewBAT(Void, StrT)
	s.MustInsert(VoidValue(), NewStr("x"))
	if _, err := CalcBinary(s, s, "+"); err == nil {
		t.Fatal("string calc accepted")
	}
}

func TestCalcScaleClamp(t *testing.T) {
	b := mkFloatBAT(0, 0.5, 1)
	scaled, err := CalcScale(b, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Tail(2).Float() != 3 {
		t.Fatalf("scaled = %v", scaled.Tail(2))
	}
	clamped, err := CalcClamp(scaled, 1.5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Tail(0).Float() != 1.5 || clamped.Tail(2).Float() != 2.5 {
		t.Fatalf("clamped = %s", clamped.Dump(5))
	}
	if _, err := CalcClamp(b, 2, 1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestCalcThreshold(t *testing.T) {
	b := mkFloatBAT(0.2, 0.6, 0.5)
	got, err := CalcThreshold(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tail(1).Bool() || got.Tail(0).Bool() || got.Tail(2).Bool() {
		t.Fatalf("threshold = %s", got.Dump(5))
	}
}

func TestCalcMovingAvg(t *testing.T) {
	b := mkFloatBAT(1, 2, 3, 4)
	got, err := CalcMovingAvg(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got.Tail(i).Float()-want[i]) > 1e-12 {
			t.Fatalf("mavg[%d] = %v, want %v", i, got.Tail(i), want[i])
		}
	}
	if _, err := CalcMovingAvg(b, 0); err == nil {
		t.Fatal("window 0 accepted")
	}
}

// TestVoidHeadMaterialization guards the void-head identity bug: ops
// that build outputs by insertion must materialize real OIDs rather
// than recounting a dense sequence.
func TestVoidHeadMaterialization(t *testing.T) {
	b := NewBAT(Void, IntT)
	for i := 0; i < 6; i++ {
		b.MustInsert(VoidValue(), NewInt(int64(i*10)))
	}
	// Uselect keeps sparse row ids.
	keys := b.Uselect(NewInt(30), NewInt(50))
	if keys.HeadType() != OIDT {
		t.Fatalf("uselect head type = %v", keys.HeadType())
	}
	if keys.Len() != 3 || keys.Head(0).OID() != 3 || keys.Head(2).OID() != 5 {
		t.Fatalf("uselect keys = %s", keys.Dump(10))
	}
	// Semijoin of a void-headed BAT against those keys returns the
	// right rows, not the first len(keys) rows.
	sel, err := b.Semijoin(keys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 3 || sel.Tail(0).Int() != 30 {
		t.Fatalf("semijoin = %s", sel.Dump(10))
	}
	// Mark keeps head identities.
	mk := b.Slice(2, 4).Mark(0)
	if mk.Head(0).OID() != 2 {
		t.Fatalf("mark head = %v", mk.Head(0))
	}
	// Join of a void-headed left operand keeps row ids.
	right := NewBAT(IntT, StrT)
	right.MustInsert(NewInt(40), NewStr("forty"))
	j, err := b.Join(right)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Head(0).OID() != 4 {
		t.Fatalf("join = %s", j.Dump(10))
	}
}

func TestStoreStats(t *testing.T) {
	s := NewStore()
	s.Put("cobra/videos", mkFloatBAT(1, 2, 3))
	s.Put("cobra/feature/x", mkFloatBAT(1, 2))
	s.Put("plain", mkFloatBAT(1))
	st := s.Stats()
	if st.BATs != 3 || st.BUNs != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByPrefix["cobra"] != 5 || st.ByPrefix["plain"] != 1 {
		t.Fatalf("prefixes = %v", st.ByPrefix)
	}
}
