package monet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cobra/internal/obs"
)

// Worker-pool metrics: task volume, queue pressure and the configured
// width. Queue depth is sampled by the STATS report while operators
// run, so it is maintained on every enqueue/dequeue.
var (
	cPoolTasks   = obs.C("monet.pool.tasks")
	cPoolInline  = obs.C("monet.pool.inline")
	cPoolMorsels = obs.C("monet.pool.morsels")
	gPoolQueue   = obs.G("monet.pool.queue.depth")
	gPoolWorkers = obs.G("monet.pool.workers")
)

// MorselSize is the number of BAT rows one pool task processes: the
// fixed morsel granularity of the kernel's data-parallel operators.
// Morsel boundaries depend only on the BAT length, never on the worker
// count, which is what makes parallel results deterministic across
// pool sizes.
const MorselSize = 16384

// ParallelThreshold is the minimum BAT length at which the bulk
// operators fan out over the shared pool; smaller inputs take the
// serial path and pay no scheduling overhead.
const ParallelThreshold = 2 * MorselSize

// maxPoolWorkers caps SetDefaultPoolWorkers so a runaway MIL
// threadcnt() cannot spawn unbounded goroutines.
const maxPoolWorkers = 256

// Pool is a fixed-size worker pool executing submitted tasks — the
// kernel's rendering of Monet's intra-query parallelism (the threadcnt
// block of the paper's Fig. 4) as a shared, morsel-driven scheduler
// rather than per-operator fork/join goroutines.
type Pool struct {
	workers int
	mu      sync.RWMutex // guards tasks against a concurrent Close
	closed  bool
	tasks   chan func()
	done    sync.WaitGroup
}

// NewPool starts a pool of the given width; workers <= 0 selects
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan func(), 4*workers)}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	defer p.done.Done()
	for t := range p.tasks {
		gPoolQueue.Add(-1)
		t()
	}
}

// Workers returns the pool's configured width.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after the queued tasks drain. Submissions
// arriving after Close run inline on the submitter, so a handle to a
// closed pool stays usable.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.done.Wait()
}

// Batch returns an empty task group on the pool. Every Submit must be
// matched by a Wait on all return paths (the cobravet poolleak
// analyzer enforces this).
func (p *Pool) Batch() *Batch { return &Batch{pool: p} }

// Batch tracks a group of tasks submitted to a pool so the submitter
// can join on exactly its own work while the pool stays shared.
type Batch struct {
	pool    *Pool
	pending atomic.Int64
	wg      sync.WaitGroup
}

// Submit schedules fn on the pool. When the queue is full — or the
// pool is closed — fn runs inline on the submitter instead, which
// bounds queue memory and guarantees progress for nested fan-out.
func (b *Batch) Submit(fn func()) {
	b.wg.Add(1)
	b.pending.Add(1)
	task := func() {
		defer b.wg.Done()
		defer b.pending.Add(-1)
		fn()
	}
	cPoolTasks.Inc()
	b.pool.mu.RLock()
	if !b.pool.closed {
		select {
		case b.pool.tasks <- task:
			gPoolQueue.Add(1)
			b.pool.mu.RUnlock()
			return
		default:
		}
	}
	b.pool.mu.RUnlock()
	cPoolInline.Inc()
	task()
}

// Wait blocks until every task submitted to this batch has finished.
// While its own tasks are still queued it helps drain the pool, which
// keeps nested fork-joins deadlock-free: a waiter never idles while
// runnable tasks exist, so a pool task may itself batch sub-tasks onto
// the same pool.
func (b *Batch) Wait() {
	for b.pending.Load() > 0 {
		select {
		case t, ok := <-b.pool.tasks:
			if !ok {
				// Pool closed mid-wait: our queued tasks were drained
				// by the exiting workers; just join the stragglers.
				b.wg.Wait()
				return
			}
			gPoolQueue.Add(-1)
			t()
		default:
			// Nothing queued: the rest of our tasks are running on
			// other workers; block until they finish.
			b.wg.Wait()
			return
		}
	}
	b.wg.Wait()
}

// defaultPool holds the process-wide pool the kernel operators use.
var defaultPool struct {
	mu sync.RWMutex
	p  *Pool
}

// DefaultPool returns the shared kernel pool, creating it with
// GOMAXPROCS workers on first use.
func DefaultPool() *Pool {
	defaultPool.mu.RLock()
	p := defaultPool.p
	defaultPool.mu.RUnlock()
	if p != nil {
		return p
	}
	defaultPool.mu.Lock()
	defer defaultPool.mu.Unlock()
	if defaultPool.p == nil {
		defaultPool.p = NewPool(0)
		gPoolWorkers.Set(int64(defaultPool.p.workers))
	}
	return defaultPool.p
}

// SetDefaultPoolWorkers resizes the shared pool (n <= 0 selects
// GOMAXPROCS; n is clamped to 256) and returns the previous width.
// It backs `cobra-server -threads` and the MIL threadcnt() setting.
// With width 1 the kernel operators take their serial paths. In-flight
// operators holding the old pool finish on it; it is then drained and
// closed.
func SetDefaultPoolWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	defaultPool.mu.Lock()
	old := defaultPool.p
	prev := runtime.GOMAXPROCS(0)
	if old != nil {
		prev = old.workers
	}
	if old != nil && old.workers == n {
		defaultPool.mu.Unlock()
		return prev
	}
	defaultPool.p = NewPool(n)
	gPoolWorkers.Set(int64(n))
	defaultPool.mu.Unlock()
	resizeArenaPool(n)
	if old != nil {
		old.Close()
	}
	return prev
}

// poolFor returns the shared pool when a bulk operation over n rows
// should go parallel: the input clears the morsel threshold and the
// pool is wider than one worker.
func poolFor(n int) (*Pool, bool) {
	if n < ParallelThreshold {
		return nil, false
	}
	p := DefaultPool()
	if p.Workers() <= 1 {
		return nil, false
	}
	return p, true
}
