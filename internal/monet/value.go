// Package monet implements the physical layer of the Cobra VDBMS: a
// main-memory database kernel with a binary relational model, modeled
// after the Monet system the paper builds on.
//
// The central structure is the BAT (Binary Association Table), a
// two-column table of (head, tail) associations. All kernel operations
// — selections, joins, aggregation, grouping — are defined over BATs.
// A Store names BATs and provides atomic snapshot persistence, and
// Parallel mirrors Monet's intra-query parallel execution operator
// (the threadcnt block of the paper's Fig. 4).
//
// Unlike the 2002 Monet, the Store can be made durable: a Journal
// attached via SetJournal receives every store-level mutation (Put,
// Append, Drop) before it becomes visible, which internal/wal uses to
// write-ahead log the kernel and recover it after a crash.
package monet

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
)

// Type identifies the atomic type of a kernel value or column.
type Type uint8

// Atomic kernel types. Void is the virtual dense-OID column type used
// for BAT heads that are simply consecutive object identifiers. BlobT
// holds raw byte strings — MPEG-7 binary descriptors, thumbnails, or
// any other opaque extracted content stored inside the DBMS proper.
const (
	Void Type = iota
	OIDT
	IntT
	FloatT
	StrT
	BoolT
	BlobT
)

// String returns the MIL-style name of the type.
func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case OIDT:
		return "oid"
	case IntT:
		return "int"
	case FloatT:
		return "dbl"
	case StrT:
		return "str"
	case BoolT:
		return "bit"
	case BlobT:
		return "blob"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// OID is an object identifier, the glue type of the binary relational
// model: multi-attribute relations are decomposed into BATs that share
// head OIDs.
type OID uint64

// Value is a tagged atomic kernel value. The zero Value is void.
type Value struct {
	Typ Type
	I   int64   // IntT, OIDT (as int64), BoolT (0/1)
	F   float64 // FloatT
	S   string  // StrT
	B   []byte  // BlobT
}

// Convenience constructors.

// NewOID returns an OID-typed value.
func NewOID(o OID) Value { return Value{Typ: OIDT, I: int64(o)} }

// NewInt returns an int-typed value.
func NewInt(i int64) Value { return Value{Typ: IntT, I: i} }

// NewFloat returns a dbl-typed value.
func NewFloat(f float64) Value { return Value{Typ: FloatT, F: f} }

// NewStr returns a str-typed value.
func NewStr(s string) Value { return Value{Typ: StrT, S: s} }

// NewBool returns a bit-typed value.
func NewBool(b bool) Value {
	v := Value{Typ: BoolT}
	if b {
		v.I = 1
	}
	return v
}

// NewBlob returns a blob-typed value. The byte slice is held by
// reference, not copied; callers must not mutate it afterwards.
func NewBlob(b []byte) Value { return Value{Typ: BlobT, B: b} }

// VoidValue is the single value of the void type.
func VoidValue() Value { return Value{Typ: Void} }

// OID returns the value as an OID; valid for OIDT values.
func (v Value) OID() OID { return OID(v.I) }

// Int returns the integer payload (IntT, OIDT, BoolT).
func (v Value) Int() int64 { return v.I }

// Float returns the value as float64, converting integers.
func (v Value) Float() float64 {
	switch v.Typ {
	case FloatT:
		return v.F
	case IntT, OIDT, BoolT:
		return float64(v.I)
	default:
		return math.NaN()
	}
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// Blob returns the byte payload of a blob value.
func (v Value) Blob() []byte { return v.B }

// Bool reports the boolean payload.
func (v Value) Bool() bool { return v.I != 0 }

// IsNil reports whether the value is the void value.
func (v Value) IsNil() bool { return v.Typ == Void }

// String renders the value in MIL literal style.
func (v Value) String() string {
	switch v.Typ {
	case Void:
		return "nil"
	case OIDT:
		return fmt.Sprintf("%d@0", v.I)
	case IntT:
		return strconv.FormatInt(v.I, 10)
	case FloatT:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case StrT:
		return strconv.Quote(v.S)
	case BoolT:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case BlobT:
		return fmt.Sprintf("blob(%d)", len(v.B))
	default:
		return "?"
	}
}

// Compare orders two values of the same type. It returns a negative
// number, zero, or a positive number as a sorts before, equal to, or
// after b. Comparing values of different types compares their types.
func Compare(a, b Value) int {
	if a.Typ != b.Typ {
		return int(a.Typ) - int(b.Typ)
	}
	switch a.Typ {
	case Void:
		return 0
	case OIDT, IntT, BoolT:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case FloatT:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case StrT:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case BlobT:
		return bytes.Compare(a.B, b.B)
	}
	return 0
}

// Equal reports whether two values are identical in type and payload.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }
