package monet

import (
	"context"
	"runtime"
	"testing"
)

// Allocation-regression tests for the morsel-body fixes the allochot
// analyzer drove: parallel filter, grouped aggregation, hash-join
// probe, and the sharded hash build must not allocate per ROW — only
// per MORSEL (a handful of fixed-size scratch buffers each). The
// bounds below are per-operation ceilings in units of morsels, with
// generous headroom for pool scheduling noise; before the fixes the
// per-row append/map growth put these one to two orders of magnitude
// higher.

// allocsPerOp measures total heap allocations per run of fn across all
// goroutines (runtime.MemStats, not testing.AllocsPerRun, because the
// morsel work happens on pool workers).
func allocsPerOp(runs int, fn func()) float64 {
	fn() // warm caches, pool, lazily built state
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

const allocRows = 1 << 16 // 64 morsels at MorselSize 1024

func allocBudget(perMorsel int) float64 {
	return float64(numMorsels(allocRows)*perMorsel + 256)
}

func TestSelectAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		bat := benchIntBAT(allocRows, 1000)
		lo, hi := NewInt(100), NewInt(199)
		got = allocsPerOp(5, func() { bat.Select(lo, hi) })
	})
	// Morsel scratch: one preallocated index slice per morsel, plus
	// fan-out closures, spans, and the result BAT.
	if max := allocBudget(8); got > max {
		t.Fatalf("Select allocates %.0f/op, budget %.0f (per-row growth crept back in?)", got, max)
	}
}

func TestGroupSumAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		bat := NewBATCap(IntT, IntT, allocRows)
		for i := 0; i < allocRows; i++ {
			bat.MustInsert(NewInt(int64(i%64)), NewInt(int64(i%100)))
		}
		got = allocsPerOp(5, func() {
			if _, err := bat.GroupSum(); err != nil {
				t.Fatal(err)
			}
		})
	})
	// The arena-backed typed grouping (groupParFast) reuses every
	// per-morsel table and key buffer across morsels and operations, so
	// steady state is a fixed handful of allocations per OPERATION —
	// fan-out plumbing, partial copy-outs, and the output BAT — not per
	// morsel. The ceiling is a tenth of the pre-arena per-morsel budget
	// (allocBudget(24)); regressing past it means either the typed fast
	// path stopped engaging or arena reuse broke. Measured steady state
	// is ~31/op against a ceiling of ~179.
	if max := allocBudget(24) / 10; got > max {
		t.Fatalf("GroupSum allocates %.0f/op, budget %.0f (arena reuse broken or fast path disengaged?)", got, max)
	}
}

func TestJoinAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		const keys = 1 << 12
		left := benchIntBAT(allocRows, keys)
		right := NewBATCap(IntT, IntT, keys)
		for i := 0; i < keys; i++ {
			right.MustInsert(NewInt(int64(i)), NewInt(int64(i)*2))
		}
		got = allocsPerOp(5, func() {
			if _, err := left.Join(right); err != nil {
				t.Fatal(err)
			}
		})
	})
	// The compact int hash table (one flat position array + one slot
	// map per shard) replaced the per-key position lists, and the probe
	// and build morsel scratch comes from arenas, so the whole join —
	// build AND probe — costs a fixed handful of allocations per
	// operation. The ceiling is a tenth of the pre-arena budget
	// (allocBudget(48) + 2 per distinct build key); measured steady
	// state is ~67/op against a ceiling of ~1150.
	if max := (allocBudget(48) + 2*(1<<12)) / 10; got > max {
		t.Fatalf("Join allocates %.0f/op, budget %.0f (arena reuse or compact table broken?)", got, max)
	}
}

// TestFusedAggregateAllocs pins the fused select→sum pipeline's
// steady-state allocation count: consuming index-answered runs into a
// scalar must not materialize positions or gather an intermediate.
func TestFusedAggregateAllocs(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		store := NewStore()
		val := NewBATCap(Void, IntT, allocRows)
		for i := 0; i < allocRows; i++ {
			val.MustInsert(VoidValue(), NewInt(int64(i%1000)))
		}
		if err := store.Put("bench/val", val); err != nil {
			t.Fatal(err)
		}
		p := store.Pipeline("bench/val", NewInt(100), NewInt(199))
		ctx := context.Background()
		got = allocsPerOp(5, func() {
			if _, _, err := p.Aggregate(ctx, "bench/val", "sum"); err != nil {
				t.Fatal(err)
			}
		})
	})
	// Capture, gate probe, span bookkeeping, and the scalar merge — all
	// fixed-count; measured steady state is ~30/op.
	if got > 256 {
		t.Fatalf("fused Aggregate allocates %.0f/op, budget 256 (materialization crept back in?)", got)
	}
}

// TestArenaShrinkAfterResize proves narrowing the pool releases the
// excess parked arenas instead of leaking them: after wide-pool work
// populates the free list, shrinking the pool must cap both the
// parked-arena count and the retained scratch bytes at the new width.
func TestArenaShrinkAfterResize(t *testing.T) {
	prev := SetDefaultPoolWorkers(8)
	defer SetDefaultPoolWorkers(prev)
	bat := NewBATCap(IntT, IntT, allocRows)
	for i := 0; i < allocRows; i++ {
		bat.MustInsert(NewInt(int64(i%64)), NewInt(int64(i%100)))
	}
	for r := 0; r < 3; r++ {
		if _, err := bat.GroupSum(); err != nil {
			t.Fatal(err)
		}
	}
	if wide, _ := ArenaStats(); wide == 0 {
		t.Fatal("wide-pool work parked no arenas; fixture no longer exercises the pool")
	}
	SetDefaultPoolWorkers(2)
	retained, bytes := ArenaStats()
	if retained > 2 {
		t.Fatalf("after shrinking the pool to 2 workers, %d arenas remain parked (leak)", retained)
	}
	if retained == 0 && bytes != 0 {
		t.Fatalf("free list empty but %d scratch bytes still reported retained", bytes)
	}
}
