package monet

import (
	"runtime"
	"testing"
)

// Allocation-regression tests for the morsel-body fixes the allochot
// analyzer drove: parallel filter, grouped aggregation, hash-join
// probe, and the sharded hash build must not allocate per ROW — only
// per MORSEL (a handful of fixed-size scratch buffers each). The
// bounds below are per-operation ceilings in units of morsels, with
// generous headroom for pool scheduling noise; before the fixes the
// per-row append/map growth put these one to two orders of magnitude
// higher.

// allocsPerOp measures total heap allocations per run of fn across all
// goroutines (runtime.MemStats, not testing.AllocsPerRun, because the
// morsel work happens on pool workers).
func allocsPerOp(runs int, fn func()) float64 {
	fn() // warm caches, pool, lazily built state
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

const allocRows = 1 << 16 // 64 morsels at MorselSize 1024

func allocBudget(perMorsel int) float64 {
	return float64(numMorsels(allocRows)*perMorsel + 256)
}

func TestSelectAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		bat := benchIntBAT(allocRows, 1000)
		lo, hi := NewInt(100), NewInt(199)
		got = allocsPerOp(5, func() { bat.Select(lo, hi) })
	})
	// Morsel scratch: one preallocated index slice per morsel, plus
	// fan-out closures, spans, and the result BAT.
	if max := allocBudget(8); got > max {
		t.Fatalf("Select allocates %.0f/op, budget %.0f (per-row growth crept back in?)", got, max)
	}
}

func TestGroupSumAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		bat := NewBATCap(IntT, IntT, allocRows)
		for i := 0; i < allocRows; i++ {
			bat.MustInsert(NewInt(int64(i%64)), NewInt(int64(i%100)))
		}
		got = allocsPerOp(5, func() {
			if _, err := bat.GroupSum(); err != nil {
				t.Fatal(err)
			}
		})
	})
	// Per morsel: order/keys slices, sized accs map (its buckets), the
	// fan-out closure — but nothing per row beyond key strings, which
	// the 64-group input keeps interned small. The pre-fix growth
	// pattern (unsized map rehashes + slice doubling) blows well past
	// this.
	if max := allocBudget(24); got > max {
		t.Fatalf("GroupSum allocates %.0f/op, budget %.0f (per-row growth crept back in?)", got, max)
	}
}

func TestJoinAllocsPerMorsel(t *testing.T) {
	var got float64
	withWorkers(t, 4, func() {
		const keys = 1 << 12
		left := benchIntBAT(allocRows, keys)
		right := NewBATCap(IntT, IntT, keys)
		for i := 0; i < keys; i++ {
			right.MustInsert(NewInt(int64(i)), NewInt(int64(i)*2))
		}
		got = allocsPerOp(5, func() {
			if _, err := left.Join(right); err != nil {
				t.Fatal(err)
			}
		})
	})
	// Probe morsels: two sized match slices each; hash build: four
	// fixed buffers per morsel plus per-shard tables, whose entries and
	// per-key position lists cost a couple of allocations per DISTINCT
	// key (inherent to the table, unlike per-row growth); output: two
	// gathered columns.
	if max := allocBudget(48) + 2*(1<<12); got > max {
		t.Fatalf("Join allocates %.0f/op, budget %.0f (per-row growth crept back in?)", got, max)
	}
}
